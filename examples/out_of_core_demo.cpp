// Out-of-core strategy demo: runs the same PageRank workload under a
// sweep of memory budgets and prints which strategy the engine chose and
// what it cost in disk traffic — a live, measured rendition of the
// paper's Table II trade-off.
#include <cstdio>

#include "src/core/nxgraph.h"
#include "src/engine/io_model.h"
#include "src/util/byte_size.h"

using namespace nxgraph;

int main() {
  RmatOptions rmat;
  rmat.scale = 15;
  rmat.edge_factor = 16.0;
  EdgeList edges = GenerateRmat(rmat);

  BuildOptions build;
  build.num_intervals = 16;
  auto store = BuildGraphStore(edges, "/tmp/nxgraph_ooc", build);
  NX_CHECK_OK(store.status());
  const uint64_t n = (*store)->num_vertices();
  const uint64_t state = 2 * n * sizeof(double);
  std::printf("graph: n=%llu m=%llu, PageRank state (ping-pong) = %s\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>((*store)->num_edges()),
              FormatByteSize(state).c_str());

  std::printf("\n%-14s %-12s %10s %12s %12s\n", "budget", "strategy",
              "seconds", "read", "written");
  for (double fraction : {0.05, 0.25, 0.5, 0.75, 1.5, 0.0}) {
    RunOptions run;
    run.num_threads = 4;
    run.memory_budget_bytes =
        fraction == 0.0 ? 0
                        : static_cast<uint64_t>(fraction * state) + 4 * n;
    auto result = RunPageRank(*store, PageRankOptions{}, run);
    NX_CHECK_OK(result.status());
    std::printf("%-14s %-12s %10.3f %12s %12s\n",
                fraction == 0.0
                    ? "unlimited"
                    : FormatByteSize(run.memory_budget_bytes).c_str(),
                result->stats.strategy.c_str(), result->stats.seconds,
                FormatByteSize(result->stats.bytes_read).c_str(),
                FormatByteSize(result->stats.bytes_written).c_str());
  }

  // Analytic expectation for the same sweep (paper Table II).
  std::printf("\nAnalytic model (Table II), same graph:\n");
  IoModelParams p;
  p.n = static_cast<double>(n);
  p.m = static_cast<double>((*store)->num_edges());
  p.Ba = sizeof(double);
  p.Bv = 4;
  p.Be = static_cast<double>((*store)->TotalSubShardBytes(false)) / p.m;
  p.d = 10;
  p.P = 16;
  std::printf("%-14s %12s %12s\n", "budget", "model read", "model write");
  for (double fraction : {0.05, 0.25, 0.5, 0.75}) {
    p.BM = fraction * state;
    const IoCost cost = MpuIoCost(p);
    std::printf("%-14s %12s %12s\n",
                FormatByteSize(static_cast<uint64_t>(p.BM)).c_str(),
                FormatByteSize(static_cast<uint64_t>(cost.read_bytes)).c_str(),
                FormatByteSize(static_cast<uint64_t>(cost.write_bytes)).c_str());
  }
  return 0;
}
