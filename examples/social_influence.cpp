// Social-influence analysis: the workload class the paper's introduction
// motivates (Facebook/Twitter-scale social graphs). Generates a skewed
// follower graph, then answers three product questions:
//   1. Who are the influencers?            -> PageRank
//   2. How far does a post travel?         -> BFS depth from a seed user
//   3. Is the network one community?       -> WCC
// Also demonstrates running under a constrained memory budget, where the
// engine degrades SPU -> MPU -> DPU automatically.
#include <cstdio>

#include "src/core/nxgraph.h"
#include "src/util/byte_size.h"

using namespace nxgraph;

int main() {
  // A Twitter-like follower graph: heavy-tailed in-degree.
  RmatOptions rmat;
  rmat.scale = 15;          // 32k users
  rmat.edge_factor = 24.0;  // ~786k follow edges
  rmat.a = 0.6;             // strong skew: celebrities exist
  EdgeList follows = GenerateRmat(rmat);
  std::printf("social graph: %zu follow edges\n", follows.num_edges());

  BuildOptions build;
  build.num_intervals = 16;
  build.build_transpose = true;  // WCC propagates both directions
  auto store = BuildGraphStore(follows, "/tmp/nxgraph_social", build);
  NX_CHECK_OK(store.status());

  // --- 1. Influencers (PageRank over "who follows whom"). ---
  RunOptions run;
  run.num_threads = 4;
  auto ranks = RunPageRank(*store, PageRankOptions{}, run);
  NX_CHECK_OK(ranks.status());
  VertexId top = 0;
  for (VertexId v = 1; v < ranks->ranks.size(); ++v) {
    if (ranks->ranks[v] > ranks->ranks[top]) top = v;
  }
  std::printf("[influence] strategy=%s  %.3fs  top user id=%u rank=%.5f\n",
              ranks->stats.strategy.c_str(), ranks->stats.seconds, top,
              ranks->ranks[top]);

  // --- 2. Reach of a post seeded at the top influencer. ---
  auto bfs = RunBfs(*store, top, run);
  NX_CHECK_OK(bfs.status());
  std::printf(
      "[reach] %llu of %llu users reachable, max forwarding depth %u, "
      "%d iterations in %.3fs\n",
      static_cast<unsigned long long>(bfs->reached),
      static_cast<unsigned long long>((*store)->num_vertices()),
      bfs->max_depth, bfs->stats.iterations, bfs->stats.seconds);

  // --- 3. Community structure. ---
  auto wcc = RunWcc(*store, run);
  NX_CHECK_OK(wcc.status());
  std::printf("[components] %llu weakly connected components (%.3fs)\n",
              static_cast<unsigned long long>(wcc->num_components),
              wcc->stats.seconds);

  // --- 4. Same PageRank, but pretend we only have a little memory: the
  //        engine switches to MPU/DPU and streams hubs through disk. ---
  const uint64_t tight =
      (2 * (*store)->num_vertices() * sizeof(double)) / 4;
  RunOptions tight_run = run;
  tight_run.memory_budget_bytes = tight;
  auto tight_ranks = RunPageRank(*store, PageRankOptions{}, tight_run);
  NX_CHECK_OK(tight_ranks.status());
  std::printf(
      "[tight memory] budget=%s -> strategy=%s  %.3fs  (read %s, wrote %s "
      "per run)\n",
      FormatByteSize(tight).c_str(), tight_ranks->stats.strategy.c_str(),
      tight_ranks->stats.seconds,
      FormatByteSize(tight_ranks->stats.bytes_read).c_str(),
      FormatByteSize(tight_ranks->stats.bytes_written).c_str());

  // Results must agree regardless of strategy.
  double max_delta = 0;
  for (size_t v = 0; v < ranks->ranks.size(); ++v) {
    max_delta = std::max(max_delta,
                         std::abs(ranks->ranks[v] - tight_ranks->ranks[v]));
  }
  std::printf("[check] max |SPU - %s| rank delta = %.2e\n",
              tight_ranks->stats.strategy.c_str(), max_delta);
  return 0;
}
