// Road-network routing: planar, low-degree graphs (the delaunay family of
// the paper's Fig. 11) with travel-time weights, queried with SSSP.
// Demonstrates weighted stores and the targeted-query activity skipping
// that makes NXgraph efficient for search-like workloads (paper §II-B).
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/core/nxgraph.h"
#include "src/util/random.h"

using namespace nxgraph;

int main() {
  // Build a delaunay-like "road map" and weight each road by its
  // (synthetic) travel time.
  DelaunayLikeOptions map_options;
  map_options.num_points = 1 << 15;  // 32k junctions
  EdgeList roads = GenerateDelaunayLike(map_options);
  Xoshiro256 rng(7);
  EdgeList weighted;
  for (size_t e = 0; e < roads.num_edges(); ++e) {
    const float minutes = 1.0f + static_cast<float>(rng.NextDouble()) * 9.0f;
    weighted.AddWeighted(roads.src(e), roads.dst(e), minutes);
  }
  std::printf("road network: %zu road segments, %zu junctions\n",
              weighted.num_edges(), weighted.CountDistinctVertices());

  BuildOptions build;
  build.num_intervals = 12;
  auto store = BuildGraphStore(weighted, "/tmp/nxgraph_roads", build);
  NX_CHECK_OK(store.status());

  RunOptions run;
  run.num_threads = 4;
  const VertexId depot = 0;
  auto sssp = RunSssp(*store, depot, run);
  NX_CHECK_OK(sssp.status());

  // Travel-time histogram from the depot.
  uint64_t buckets[6] = {0};  // <10, <20, <30, <40, <50, >=50 minutes
  float farthest = 0;
  for (float minutes : sssp->distances) {
    if (!std::isfinite(minutes)) continue;
    farthest = std::max(farthest, minutes);
    const int b = std::min(5, static_cast<int>(minutes / 10));
    ++buckets[b];
  }
  std::printf("[sssp] reached %llu junctions in %d iterations (%.3fs)\n",
              static_cast<unsigned long long>(sssp->reached),
              sssp->stats.iterations, sssp->stats.seconds);
  std::printf("[sssp] farthest junction: %.1f minutes\n", farthest);
  for (int b = 0; b < 6; ++b) {
    std::printf("  %s%2d-%2d min: %llu junctions\n", b == 5 ? ">=" : "  ",
                b * 10, b * 10 + 10,
                static_cast<unsigned long long>(buckets[b]));
  }

  // BFS gives hop counts (number of road segments) for comparison.
  auto bfs = RunBfs(*store, depot, run);
  NX_CHECK_OK(bfs.status());
  std::printf("[bfs] max hops %u; targeted-query skipping traversed %llu "
              "edges over %d iterations (graph has %llu)\n",
              bfs->max_depth,
              static_cast<unsigned long long>(bfs->stats.edges_traversed),
              bfs->stats.iterations,
              static_cast<unsigned long long>((*store)->num_edges()));
  return 0;
}
