// Quickstart: build a graph store from an edge list and run PageRank.
//
//   ./quickstart [path/to/edges.txt]
//
// Without an argument, a small synthetic social graph is generated. With
// one, the file is parsed as "src dst [weight]" lines (SNAP format).
#include <algorithm>
#include <cstdio>

#include "src/core/nxgraph.h"
#include "src/prep/degreer.h"

using namespace nxgraph;

int main(int argc, char** argv) {
  // 1. Obtain edges: from a file, or generate an R-MAT social graph.
  EdgeList edges;
  if (argc > 1) {
    auto loaded = LoadEdgeListText(Env::Default(), argv[1]);
    if (!loaded.ok()) {
      std::fprintf(stderr, "failed to load %s: %s\n", argv[1],
                   loaded.status().ToString().c_str());
      return 1;
    }
    edges = std::move(loaded).value();
  } else {
    RmatOptions rmat;
    rmat.scale = 14;        // 16k vertices
    rmat.edge_factor = 16;  // 262k edges
    edges = GenerateRmat(rmat);
  }
  std::printf("input: %zu edges\n", edges.num_edges());

  // 2. Preprocess into the Destination-Sorted Sub-Shard store
  //    (degreeing + sharding, paper §III-A).
  BuildOptions build;
  build.num_intervals = 16;
  auto store = BuildGraphStore(edges, "/tmp/nxgraph_quickstart", build);
  if (!store.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }
  std::printf("store: %llu vertices, %llu edges, P=%u intervals\n",
              static_cast<unsigned long long>((*store)->num_vertices()),
              static_cast<unsigned long long>((*store)->num_edges()),
              (*store)->num_intervals());

  // 3. Run 10 iterations of PageRank. The engine picks SPU/DPU/MPU from
  //    the memory budget automatically (unlimited here => SPU).
  RunOptions run;
  run.num_threads = 4;
  auto result = RunPageRank(*store, PageRankOptions{}, run);
  if (!result.ok()) {
    std::fprintf(stderr, "pagerank failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("pagerank: %d iterations in %.3fs (%s, %.1f MTEPS)\n",
              result->stats.iterations, result->stats.seconds,
              result->stats.strategy.c_str(), result->stats.Mteps());

  // 4. Report the top 5 vertices (translate dense ids back to the input's
  //    indices via the mapping file).
  auto mapping = LoadMapping((*store)->env(), (*store)->dir());
  std::vector<VertexId> order((*store)->num_vertices());
  for (VertexId v = 0; v < order.size(); ++v) order[v] = v;
  std::partial_sort(order.begin(), order.begin() + 5, order.end(),
                    [&](VertexId a, VertexId b) {
                      return result->ranks[a] > result->ranks[b];
                    });
  std::printf("top-5 vertices by rank:\n");
  for (int k = 0; k < 5; ++k) {
    const VertexId id = order[k];
    std::printf("  #%d: vertex %llu  rank %.6f\n", k + 1,
                static_cast<unsigned long long>(
                    mapping.ok() ? (*mapping)[id] : id),
                result->ranks[id]);
  }
  return 0;
}
