// Graceful shutdown: drain a live GraphServer on SIGTERM.
//
//   ./example_graceful_shutdown
//
// Starts a server over a synthetic social graph, keeps it busy with a
// mixed query stream from three client threads plus one deliberately
// endless analytics job, then delivers SIGTERM to itself. The handler
// only sets a flag (async-signal-safe); the main thread reacts by
// calling Drain(5s) — admission closes immediately, queued and running
// queries get 5 seconds to finish, and stragglers are cooperatively
// cancelled with CancelReason::kShutdown, returning deterministic
// partial results. Per-reason completion counts are printed at the end.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/algos/programs.h"
#include "src/core/nxgraph.h"
#include "src/server/graph_server.h"

using namespace nxgraph;

namespace {
volatile std::sig_atomic_t g_sigterm = 0;
}
extern "C" void OnSigterm(int) { g_sigterm = 1; }

int main() {
  // 1. A small R-MAT store to serve from.
  RmatOptions rmat;
  rmat.scale = 13;        // 8k vertices
  rmat.edge_factor = 16;  // 131k edges
  BuildOptions build;
  build.num_intervals = 8;
  build.build_transpose = true;
  auto store = BuildGraphStore(GenerateRmat(rmat),
                               "/tmp/nxgraph_graceful_shutdown", build);
  if (!store.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 store.status().ToString().c_str());
    return 1;
  }

  // 2. A server with a few workers; modest queue so the stream backs up
  //    realistically.
  GraphServer::Options opts;
  opts.num_workers = 3;
  opts.max_queue = 32;
  auto server = GraphServer::Open(Env::Default(), (*store)->dir(), opts);
  if (!server.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::signal(SIGTERM, OnSigterm);

  // 3. One "overnight" analytics job that cannot finish on its own —
  //    PageRank with an absurd iteration cap. Drain's soft wait will
  //    expire and cancel it; its future still carries the deterministic
  //    partial result of every completed round.
  PageRankProgram pr;
  pr.num_vertices = (*server)->store().num_vertices();
  pr.tolerance = -1.0;  // Changed() is always true: no vertex ever settles
  BatchQuery endless;
  endless.max_iterations = 1'000'000;
  auto analytics = (*server)->SubmitBatch(pr, endless);

  // 4. Three closed-loop clients hammering point queries (some with
  //    tight deadlines) until shutdown closes admission.
  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      uint64_t k = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        PointQuery q;
        q.kind = (k % 2 == 0) ? QueryKind::kBfs : QueryKind::kSssp;
        q.root = (k * 37 + static_cast<uint64_t>(c) * 101) %
                 (*server)->store().num_vertices();
        if (k % 5 == 0) q.limits.deadline = std::chrono::milliseconds(2);
        auto f = (*server)->Submit(q);
        if (f.Wait().status.IsAborted()) break;  // draining: stop cleanly
        ++k;
      }
    });
  }

  // 5. Simulate the operator: SIGTERM arrives after two seconds of
  //    steady traffic.
  std::thread operator_thread([] {
    std::this_thread::sleep_for(std::chrono::seconds(2));
    std::printf("-- delivering SIGTERM --\n");
    std::raise(SIGTERM);
  });
  while (g_sigterm == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // 6. Graceful shutdown: stop producing, drain with a 5 s grace period.
  std::printf("SIGTERM received; draining (5 s grace)...\n");
  stop.store(true, std::memory_order_relaxed);
  const auto drain_start = std::chrono::steady_clock::now();
  Status drained = (*server)->Drain(std::chrono::seconds(5));
  const double drain_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    drain_start)
          .count();
  for (auto& t : clients) t.join();
  operator_thread.join();

  auto out = analytics.Wait();
  std::printf("drain: %s in %.2f s\n", drained.ToString().c_str(), drain_s);
  std::printf("analytics job: %s after %d completed rounds\n",
              out.status.ToString().c_str(), out.result.stats.iterations);

  // 7. The lifecycle ledger: every submitted query landed in exactly one
  //    of these buckets.
  const GraphServer::Stats stats = (*server)->stats();
  std::printf("\nper-reason completion counts:\n");
  std::printf("  submitted          %llu\n",
              static_cast<unsigned long long>(stats.submitted));
  std::printf("  completed          %llu\n",
              static_cast<unsigned long long>(stats.completed));
  std::printf("  truncated          %llu\n",
              static_cast<unsigned long long>(stats.truncated));
  std::printf("  shed (deadline in queue)      %llu\n",
              static_cast<unsigned long long>(stats.shed));
  std::printf("  deadline-cancelled (running)  %llu\n",
              static_cast<unsigned long long>(stats.deadline_cancelled));
  std::printf("  client-cancelled   %llu\n",
              static_cast<unsigned long long>(stats.cancelled));
  std::printf("  drain-cancelled    %llu\n",
              static_cast<unsigned long long>(stats.drain_cancelled));
  std::printf("  rejected           %llu\n",
              static_cast<unsigned long long>(stats.rejected));
  std::printf("  failed             %llu\n",
              static_cast<unsigned long long>(stats.failed));
  return drained.ok() ? 0 : 1;
}
