// Web-graph structure analysis: the bow-tie decomposition question that
// motivated SCC on crawls like Yahoo-web. Builds a skewed hyperlink
// graph, finds strongly and weakly connected components, and reports the
// core/in/out structure — exercising forward + transpose sub-shards and
// the multi-round coloring SCC (paper Fig. 12's hardest task).
#include <cstdio>
#include <unordered_map>

#include "src/core/nxgraph.h"

using namespace nxgraph;

int main() {
  // Hyperlink-like graph: very skewed, with a directed core.
  RmatOptions rmat;
  rmat.scale = 14;  // 16k pages
  rmat.edge_factor = 12.0;
  rmat.a = 0.62;
  EdgeList links = GenerateRmat(rmat);
  std::printf("web graph: %zu hyperlinks\n", links.num_edges());

  BuildOptions build;
  build.num_intervals = 16;
  build.build_transpose = true;  // SCC needs backward propagation
  auto store = BuildGraphStore(links, "/tmp/nxgraph_web", build);
  NX_CHECK_OK(store.status());

  RunOptions run;
  run.num_threads = 4;

  // --- Strongly connected components (multi-round color/claim). ---
  auto scc = RunScc(*store, run);
  NX_CHECK_OK(scc.status());
  std::printf("[scc] %llu components, largest (the \"core\") has %llu pages; "
              "%d rounds, %.3fs total engine time\n",
              static_cast<unsigned long long>(scc->num_components),
              static_cast<unsigned long long>(scc->largest_component),
              scc->rounds, scc->stats.seconds);

  // --- Weak connectivity for comparison. ---
  auto wcc = RunWcc(*store, run);
  NX_CHECK_OK(wcc.status());
  std::printf("[wcc] %llu weak components\n",
              static_cast<unsigned long long>(wcc->num_components));

  // --- Bow-tie: which pages can reach the core / be reached from it? ---
  uint32_t core_label = 0;
  {
    std::unordered_map<uint32_t, uint64_t> sizes;
    for (uint32_t c : scc->component) ++sizes[c];
    uint64_t best = 0;
    for (const auto& [label, size] : sizes) {
      if (size > best) {
        best = size;
        core_label = label;
      }
    }
  }
  // BFS from a core page (forward: OUT set side).
  VertexId core_page = 0;
  for (VertexId v = 0; v < scc->component.size(); ++v) {
    if (scc->component[v] == core_label) {
      core_page = v;
      break;
    }
  }
  auto out_side = RunBfs(*store, core_page, run);
  NX_CHECK_OK(out_side.status());
  std::printf("[bow-tie] core + OUT: %llu pages reachable from the core "
              "(seed page %u)\n",
              static_cast<unsigned long long>(out_side->reached), core_page);

  const double core_fraction =
      static_cast<double>(scc->largest_component) /
      static_cast<double>((*store)->num_vertices());
  std::printf("[bow-tie] core holds %.1f%% of pages; %s\n",
              100.0 * core_fraction,
              core_fraction > 0.2
                  ? "a classic bow-tie with a dominant core"
                  : "a fragmented crawl (no dominant core)");
  return 0;
}
