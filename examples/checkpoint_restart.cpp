// Checkpoint/restart demo: a long out-of-core PageRank that survives being
// killed.
//
//   ./checkpoint_restart [dir] [iterations]
//
// The store is built once under `dir` (default /tmp/nxgraph_ckpt_demo) and
// reused on rerun; the engine checkpoints every iteration boundary, so a
// rerun after a mid-run SIGKILL resumes where the dead process left off
// instead of recomputing from iteration 0. The CI smoke test does exactly
// that: start, kill -9 mid-iteration, rerun, and assert
// "resumed_from_iteration" > 0 with final ranks intact.
#include <cstdio>
#include <cstdlib>

#include "src/core/nxgraph.h"

using namespace nxgraph;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/nxgraph_ckpt_demo";
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 40;
  Env* env = Env::Default();

  // Build once; reruns (including the post-kill one) must reuse the store
  // AND its scratch directory, where the checkpoint record lives.
  std::shared_ptr<GraphStore> store;
  if (env->FileExists(dir + "/manifest.nxm")) {
    auto opened = OpenGraphStore(dir);
    NX_CHECK_OK(opened.status());
    store = *opened;
    std::printf("reusing store %s\n", dir.c_str());
  } else {
    RmatOptions rmat;
    rmat.scale = 16;  // 65k vertices, ~1M edges
    rmat.edge_factor = 16;
    BuildOptions build;
    build.num_intervals = 16;
    auto built = BuildGraphStore(GenerateRmat(rmat), dir, build);
    NX_CHECK_OK(built.status());
    store = *built;
    std::printf("built store %s\n", dir.c_str());
  }

  RunOptions run;
  run.strategy = UpdateStrategy::kDoublePhase;  // out-of-core: every
  run.num_threads = 2;                          // iteration hits the disk
  run.max_iterations = iterations;
  run.checkpoint_interval = 1;
  PageRankOptions pr;
  pr.iterations = iterations;
  auto result = RunPageRank(store, pr, run);
  NX_CHECK_OK(result.status());

  double sum = 0;
  for (double r : result->ranks) sum += r;
  std::printf(
      "pagerank: %d iterations (%s), resumed_from_iteration=%d, "
      "checkpoints=%d, ckpt time %.3fs of %.3fs wall, rank sum %.6f\n",
      result->stats.iterations, result->stats.strategy.c_str(),
      result->stats.resumed_from_iteration, result->stats.checkpoints_written,
      result->stats.checkpoint_seconds, result->stats.seconds, sum);
  return 0;
}
