#include "src/util/cancel.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace nxgraph {

const char* CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kClient:
      return "client";
    case CancelReason::kDeadline:
      return "deadline";
    case CancelReason::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

struct CancelToken::State {
  explicit State(Clock::time_point dl) : deadline(dl) {}

  /// CancelReason; flips exactly once away from kNone via CAS. Readers on
  /// the hot path do a single acquire load.
  std::atomic<uint8_t> reason{0};
  const Clock::time_point deadline;  // time_point::max() == none

  std::mutex mu;
  std::condition_variable cv;
  uint64_t next_callback_id = 1;                                 // under mu
  std::vector<std::pair<uint64_t, std::function<void()>>> callbacks;
  std::vector<std::weak_ptr<State>> children;                    // under mu
};

namespace {

/// Tries to claim the one live→cancelled transition. Returns true for the
/// winner (who must then notify/fan out), false if someone else already won.
bool ClaimCancel(std::atomic<uint8_t>& reason, CancelReason r) {
  uint8_t expected = 0;
  return reason.compare_exchange_strong(expected, static_cast<uint8_t>(r),
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

}  // namespace

CancelToken::CancelToken()
    : state_(std::make_shared<State>(Clock::time_point::max())) {}

CancelToken CancelToken::WithDeadline(Clock::time_point deadline) {
  return CancelToken(std::make_shared<State>(deadline));
}

CancelToken CancelToken::Child(Clock::time_point deadline) const {
  const Clock::time_point effective = std::min(deadline, state_->deadline);
  auto child = std::make_shared<State>(effective);
  CancelReason parent_reason = CancelReason::kNone;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    parent_reason =
        static_cast<CancelReason>(state_->reason.load(std::memory_order_acquire));
    if (parent_reason == CancelReason::kNone) {
      // Amortized pruning keeps a long-lived parent (the server drain
      // token) from accumulating a weak_ptr per query ever served.
      if (state_->children.size() >= 64 &&
          (state_->children.size() & (state_->children.size() - 1)) == 0) {
        state_->children.erase(
            std::remove_if(state_->children.begin(), state_->children.end(),
                           [](const std::weak_ptr<State>& w) {
                             return w.expired();
                           }),
            state_->children.end());
      }
      state_->children.emplace_back(child);
    }
  }
  if (parent_reason != CancelReason::kNone) CancelState(child, parent_reason);
  return CancelToken(std::move(child));
}

void CancelToken::CancelState(const std::shared_ptr<State>& state,
                              CancelReason reason) {
  if (!ClaimCancel(state->reason, reason)) return;
  std::vector<std::pair<uint64_t, std::function<void()>>> callbacks;
  std::vector<std::weak_ptr<State>> children;
  {
    std::lock_guard<std::mutex> lock(state->mu);
    callbacks.swap(state->callbacks);
    children.swap(state->children);
  }
  // notify_all after holding mu: a WaitFor() sleeper either saw the flipped
  // reason before blocking or is inside cv.wait and receives this wake.
  state->cv.notify_all();
  for (auto& cb : callbacks) cb.second();
  for (auto& weak : children) {
    if (auto child = weak.lock()) CancelState(child, reason);
  }
}

void CancelToken::Cancel(CancelReason reason) const {
  if (reason == CancelReason::kNone) return;
  CancelState(state_, reason);
}

bool CancelToken::cancelled() const {
  if (state_->reason.load(std::memory_order_acquire) != 0) return true;
  if (state_->deadline != Clock::time_point::max() &&
      Clock::now() >= state_->deadline) {
    // Lazy deadline: first observer past the due time fires the full
    // cancellation (callbacks + children), exactly as Cancel() would.
    CancelState(state_, CancelReason::kDeadline);
    return true;
  }
  return false;
}

CancelReason CancelToken::reason() const {
  if (!cancelled()) return CancelReason::kNone;
  return static_cast<CancelReason>(
      state_->reason.load(std::memory_order_acquire));
}

Status CancelToken::ToStatus() const {
  switch (reason()) {
    case CancelReason::kNone:
      return Status::OK();
    case CancelReason::kClient:
      return Status::Cancelled("cancelled by client");
    case CancelReason::kDeadline:
      return Status::DeadlineExceeded("query deadline exceeded");
    case CancelReason::kShutdown:
      return Status::Cancelled("cancelled by server drain");
  }
  return Status::Cancelled("cancelled");
}

bool CancelToken::has_deadline() const {
  return state_->deadline != Clock::time_point::max();
}

CancelToken::Clock::time_point CancelToken::deadline() const {
  return state_->deadline;
}

double CancelToken::RemainingSeconds() const {
  if (!has_deadline()) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(state_->deadline - Clock::now())
      .count();
}

bool CancelToken::WaitFor(std::chrono::microseconds wait) const {
  if (cancelled()) return true;
  Clock::time_point until = Clock::now() + wait;
  if (state_->deadline < until) until = state_->deadline;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait_until(lock, until, [this] {
      return state_->reason.load(std::memory_order_acquire) != 0;
    });
  }
  return cancelled();
}

uint64_t CancelToken::AddCallback(std::function<void()> fn) const {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->reason.load(std::memory_order_acquire) == 0) {
      const uint64_t id = state_->next_callback_id++;
      state_->callbacks.emplace_back(id, std::move(fn));
      return id;
    }
  }
  fn();  // already cancelled: run inline, outside the lock
  return 0;
}

void CancelToken::RemoveCallback(uint64_t id) const {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(state_->mu);
  state_->callbacks.erase(
      std::remove_if(state_->callbacks.begin(), state_->callbacks.end(),
                     [id](const std::pair<uint64_t, std::function<void()>>& c) {
                       return c.first == id;
                     }),
      state_->callbacks.end());
}

}  // namespace nxgraph
