#include "src/util/byte_size.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace nxgraph {

std::string FormatByteSize(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB", "PiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 5) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu%s",
                  static_cast<unsigned long long>(bytes), kUnits[unit]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f%s", v, kUnits[unit]);
  }
  return buf;
}

Result<uint64_t> ParseByteSize(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty byte-size string");
  }
  size_t pos = 0;
  double value = 0.0;
  try {
    value = std::stod(text, &pos);
  } catch (...) {
    return Status::InvalidArgument("unparsable byte-size: " + text);
  }
  if (value < 0) {
    return Status::InvalidArgument("negative byte-size: " + text);
  }
  // Skip whitespace between number and unit.
  while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  std::string unit;
  for (; pos < text.size(); ++pos) {
    unit += static_cast<char>(std::tolower(static_cast<unsigned char>(text[pos])));
  }
  double mult = 1.0;
  if (unit.empty() || unit == "b") {
    mult = 1.0;
  } else if (unit == "k" || unit == "kb" || unit == "kib") {
    mult = 1024.0;
  } else if (unit == "m" || unit == "mb" || unit == "mib") {
    mult = 1024.0 * 1024.0;
  } else if (unit == "g" || unit == "gb" || unit == "gib") {
    mult = 1024.0 * 1024.0 * 1024.0;
  } else if (unit == "t" || unit == "tb" || unit == "tib") {
    mult = 1024.0 * 1024.0 * 1024.0 * 1024.0;
  } else {
    return Status::InvalidArgument("unknown byte-size unit: " + text);
  }
  return static_cast<uint64_t>(std::llround(value * mult));
}

}  // namespace nxgraph
