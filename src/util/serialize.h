// Little-endian binary encode/decode helpers for on-disk formats.
#ifndef NXGRAPH_UTIL_SERIALIZE_H_
#define NXGRAPH_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace nxgraph {

// All on-disk formats are little-endian. The helpers below are correct on
// any host byte order but compile to plain loads/stores on LE machines.

template <typename T>
inline void EncodeFixed(std::string* dst, T value) {
  static_assert(std::is_integral_v<T> || std::is_floating_point_v<T>);
  char buf[sizeof(T)];
  std::memcpy(buf, &value, sizeof(T));
  dst->append(buf, sizeof(T));
}

template <typename T>
inline T DecodeFixed(const char* src) {
  static_assert(std::is_integral_v<T> || std::is_floating_point_v<T>);
  T value;
  std::memcpy(&value, src, sizeof(T));
  return value;
}

/// \brief Sequential reader over a byte buffer with bounds checking.
class SliceReader {
 public:
  SliceReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit SliceReader(const std::string& s) : data_(s.data()), size_(s.size()) {}

  /// Remaining unread bytes.
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

  /// Reads a fixed-width value; returns false on underflow.
  template <typename T>
  bool Read(T* out) {
    if (remaining() < sizeof(T)) return false;
    *out = DecodeFixed<T>(data_ + pos_);
    pos_ += sizeof(T);
    return true;
  }

  /// Reads `n` raw bytes into out; returns false on underflow.
  bool ReadBytes(void* out, size_t n) {
    if (remaining() < n) return false;
    // n == 0 legitimately pairs with a null destination (an empty
    // vector's data()), which memcpy's contract forbids passing.
    if (n > 0) std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  /// Reads a length-prefixed (uint32) string.
  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!Read(&len)) return false;
    if (remaining() < len) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Appends a length-prefixed (uint32) string.
inline void EncodeString(std::string* dst, const std::string& s) {
  EncodeFixed<uint32_t>(dst, static_cast<uint32_t>(s.size()));
  dst->append(s);
}

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_SERIALIZE_H_
