// Wall-clock timing helpers.
#ifndef NXGRAPH_UTIL_TIMER_H_
#define NXGRAPH_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace nxgraph {

/// \brief Monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Microseconds elapsed since construction or the last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_TIMER_H_
