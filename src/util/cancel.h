// CancelToken: cooperative cancellation + deadline propagation.
//
// A token is a cheap shared handle that flips exactly once from "live" to
// "cancelled(reason)". Nothing is preempted: holders *observe* the token at
// natural boundaries (sub-shard consume, engine iteration, retry backoff,
// single-flight cache wait) and unwind cleanly, releasing pins and
// completing futures on the way out. Tokens compose parent→child so a
// server-wide drain token fans out to every per-query token, and a deadline
// is just a token that cancels itself lazily the first time anyone looks at
// it past the due time — no timer thread required.
//
// Thread-safety: every method is safe to call concurrently from any number
// of threads. `cancelled()` is lock-free (one relaxed-ish atomic load on
// the hot path) so it can sit inside per-sub-shard loops.
#ifndef NXGRAPH_UTIL_CANCEL_H_
#define NXGRAPH_UTIL_CANCEL_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/util/status.h"

namespace nxgraph {

/// Why a token was cancelled. Ordered so that "stronger" reasons do not
/// overwrite weaker ones — whichever cause fires first wins and sticks.
enum class CancelReason : uint8_t {
  kNone = 0,      ///< live
  kClient = 1,    ///< explicit Cancel() from the query's owner
  kDeadline = 2,  ///< the token's deadline passed
  kShutdown = 3,  ///< server drain / shutdown fan-out
};

const char* CancelReasonName(CancelReason reason);

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// A live root token with no deadline. Tokens are never "null": a
  /// default-constructed token is simply one nobody will ever cancel.
  CancelToken();

  /// A live root token that self-cancels (reason kDeadline) once
  /// `deadline` passes. The deadline is immutable after construction.
  static CancelToken WithDeadline(Clock::time_point deadline);

  /// A child token: cancelling the parent cancels the child (same
  /// reason), but cancelling the child leaves the parent untouched. The
  /// child inherits the parent's deadline; `deadline` tightens it
  /// further (never loosens). If the parent is already cancelled the
  /// child is born cancelled.
  CancelToken Child(Clock::time_point deadline = Clock::time_point::max()) const;

  /// Flips the token to cancelled. First caller wins; later calls (and
  /// later deadline expiry) are no-ops. Wakes WaitFor() sleepers, runs
  /// registered callbacks, and fans out to children.
  void Cancel(CancelReason reason = CancelReason::kClient) const;

  /// True once cancelled for any reason. Lock-free; lazily fires the
  /// deadline (and its callbacks/children) the first time it is observed
  /// to have passed.
  bool cancelled() const;

  /// The winning reason, or kNone while live. Performs the same lazy
  /// deadline check as cancelled().
  CancelReason reason() const;

  /// OK while live; otherwise the canonical status for the reason:
  /// kClient/kShutdown → Cancelled, kDeadline → DeadlineExceeded.
  Status ToStatus() const;

  bool has_deadline() const;
  Clock::time_point deadline() const;

  /// Seconds until the deadline: +inf without one, <= 0 once passed.
  double RemainingSeconds() const;

  /// Interruptible sleep: blocks up to `wait`, waking early on Cancel()
  /// or deadline expiry. Returns cancelled().
  bool WaitFor(std::chrono::microseconds wait) const;

  /// Registers `fn` to run exactly once when the token is cancelled (on
  /// the cancelling thread, outside all token locks). If already
  /// cancelled, runs `fn` inline and returns 0. Returns an id for
  /// RemoveCallback. NOTE: removal races with an in-progress Cancel —
  /// a removed callback may still run once, so `fn` must only touch
  /// state that outlives it (e.g. notify a shared condition variable).
  uint64_t AddCallback(std::function<void()> fn) const;
  void RemoveCallback(uint64_t id) const;

 private:
  struct State;
  explicit CancelToken(std::shared_ptr<State> state)
      : state_(std::move(state)) {}

  static void CancelState(const std::shared_ptr<State>& state,
                          CancelReason reason);

  std::shared_ptr<State> state_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_CANCEL_H_
