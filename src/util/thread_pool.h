// Fixed-size worker pool with chunked parallel-for, the substrate for the
// engines' fine-grained destination-chunk parallelism.
#ifndef NXGRAPH_UTIL_THREAD_POOL_H_
#define NXGRAPH_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/util/macros.h"

namespace nxgraph {

/// \brief Counts outstanding tasks; lets a caller block until all complete.
class WaitGroup {
 public:
  /// Registers `n` tasks that must later call Done().
  void Add(int n);
  /// Marks one task complete; wakes waiters when the count reaches zero.
  void Done();
  /// Blocks until the outstanding count reaches zero.
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

/// \brief Fixed pool of worker threads consuming a FIFO task queue.
///
/// `num_threads == 0` is allowed and means "run everything inline on the
/// submitting thread" — useful for tests and the single-thread rows of the
/// paper's thread-sweep experiments.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  NX_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task. Tasks must not throw.
  void Submit(std::function<void()> fn);

  /// Runs `fn(begin, end)` over chunked subranges of [begin, end) on all
  /// workers plus the calling thread; returns when the range is exhausted.
  /// `grain` is the chunk size (>=1); chunks are claimed dynamically, which
  /// load-balances skewed work such as power-law destination ranges.
  void ParallelFor(size_t begin, size_t end, size_t grain,
                   const std::function<void(size_t, size_t)>& fn);

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  bool stop_ = false;
};

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_THREAD_POOL_H_
