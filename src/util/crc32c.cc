#include "src/util/crc32c.h"

#include <array>

namespace nxgraph {
namespace crc32c {

namespace {

// Table-driven CRC-32C (polynomial 0x1EDC6F41, reflected 0x82F63B78).
constexpr uint32_t kPoly = 0x82F63B78u;

std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = MakeTable();
  return table;
}

uint32_t ExtendPortable(uint32_t crc, const uint8_t* p, size_t n) {
  const auto& table = Table();
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define NX_CRC32C_HAVE_HW 1

// SSE4.2 CRC32 instruction path; ~an order of magnitude faster than the
// table walk, which matters because every sub-shard load verifies its
// blob on first contact.
__attribute__((target("sse4.2"))) uint32_t ExtendHardware(uint32_t crc,
                                                          const uint8_t* p,
                                                          size_t n) {
  uint64_t crc64 = crc;
  while (n >= 8) {
    uint64_t chunk;
    __builtin_memcpy(&chunk, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, chunk);
    p += 8;
    n -= 8;
  }
  uint32_t crc32 = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc32 = __builtin_ia32_crc32qi(crc32, *p);
    ++p;
    --n;
  }
  return crc32;
}

bool HardwareAvailable() {
  static const bool available = __builtin_cpu_supports("sse4.2");
  return available;
}
#endif  // __x86_64__

}  // namespace

uint32_t Extend(uint32_t init_crc, const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  const uint32_t crc = ~init_crc;
#if defined(NX_CRC32C_HAVE_HW)
  if (HardwareAvailable()) {
    return ~ExtendHardware(crc, p, n);
  }
#endif
  return ~ExtendPortable(crc, p, n);
}

}  // namespace crc32c
}  // namespace nxgraph
