// Minimal leveled logging to stderr.
#ifndef NXGRAPH_UTIL_LOGGING_H_
#define NXGRAPH_UTIL_LOGGING_H_

#include <sstream>
#include <string>

#include "src/util/macros.h"

namespace nxgraph {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kFatal = 4,
};

/// Sets the global minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace nxgraph

#define NX_LOG(level)                                              \
  ::nxgraph::internal::LogMessage(::nxgraph::LogLevel::k##level,   \
                                  __FILE__, __LINE__)

// Fatal check: always on, aborts with a message when the condition fails.
#define NX_CHECK(cond)                                       \
  if (NX_PREDICT_FALSE(!(cond)))                             \
  ::nxgraph::internal::LogMessage(::nxgraph::LogLevel::kFatal, __FILE__, \
                                  __LINE__)                  \
      << "Check failed: " #cond " "

#define NX_CHECK_OK(expr)                                         \
  do {                                                            \
    ::nxgraph::Status _nx_st = (expr);                            \
    NX_CHECK(_nx_st.ok()) << _nx_st.ToString();                   \
  } while (0)

#endif  // NXGRAPH_UTIL_LOGGING_H_
