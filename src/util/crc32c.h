// CRC-32C (Castagnoli) checksums for on-disk format integrity.
#ifndef NXGRAPH_UTIL_CRC32C_H_
#define NXGRAPH_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace nxgraph {
namespace crc32c {

/// Extends `init_crc` with `n` bytes of `data`; pass 0 to start a new CRC.
uint32_t Extend(uint32_t init_crc, const void* data, size_t n);

/// CRC-32C of a buffer.
inline uint32_t Value(const void* data, size_t n) {
  return Extend(0, data, n);
}

}  // namespace crc32c
}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_CRC32C_H_
