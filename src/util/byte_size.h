// Human-readable byte-size parsing and formatting ("512MB", "1.5GiB").
#ifndef NXGRAPH_UTIL_BYTE_SIZE_H_
#define NXGRAPH_UTIL_BYTE_SIZE_H_

#include <cstdint>
#include <string>

#include "src/util/result.h"

namespace nxgraph {

/// Formats a byte count with a binary-unit suffix, e.g. 1536 -> "1.5KiB".
std::string FormatByteSize(uint64_t bytes);

/// Parses strings like "64", "4K", "512MB", "1.5GiB" (case-insensitive,
/// binary units) into a byte count.
Result<uint64_t> ParseByteSize(const std::string& text);

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_BYTE_SIZE_H_
