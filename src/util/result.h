// Result<T>: a Status or a value (Arrow's Result idiom).
#ifndef NXGRAPH_UTIL_RESULT_H_
#define NXGRAPH_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "src/util/status.h"

namespace nxgraph {

/// \brief Holds either a value of type T or an error Status.
///
/// Construction from a T yields an OK result; construction from a non-OK
/// Status yields an error. Constructing from an OK Status is a programming
/// error (asserted in debug builds, converted to InvalidArgument otherwise).
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs an error result.
  Result(Status status) : status_(std::move(status)) {  // NOLINT implicit
    assert(!status_.ok());
    if (status_.ok()) {
      status_ = Status::InvalidArgument("Result constructed from OK status");
    }
  }

  /// Constructs a success result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the held value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when this result is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_RESULT_H_
