// Deterministic, fast PRNGs used by graph generators and tests.
#ifndef NXGRAPH_UTIL_RANDOM_H_
#define NXGRAPH_UTIL_RANDOM_H_

#include <cstdint>

namespace nxgraph {

/// \brief SplitMix64 generator; used to seed Xoshiro and for cheap hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief xoshiro256** PRNG: fast, high quality, deterministic across
/// platforms (unlike std::mt19937 distributions).
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.Next();
  }

  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's nearly-divisionless method would be faster; modulo bias is
    // negligible for bound << 2^64 and keeps the code obvious.
    return Next() % bound;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_RANDOM_H_
