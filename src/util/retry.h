// RetryPolicy: bounded retries with exponential backoff for transient I/O.
//
// Retries live at the *pipeline* layer (prefetcher read jobs, writeback
// writes/flushes, checkpoint commits, store re-reads) — never inside Env
// backends, which only classify failures (Status::FromErrno sets the
// retryability bit). Keeping the loop in one place means every retry is
// counted, its wait time is measured, and the backoff schedule is
// deterministic: jitter comes from SplitMix64 seeded by (policy seed,
// per-counter attempt index), not from wall-clock entropy, so a soak run
// under a fixed FlakyEnv seed replays bit-identically.
#ifndef NXGRAPH_UTIL_RETRY_H_
#define NXGRAPH_UTIL_RETRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>

#include "src/util/cancel.h"
#include "src/util/random.h"
#include "src/util/status.h"

namespace nxgraph {

/// \brief How a pipeline reacts to a retryable failure.
///
/// Defaults are tuned for transient glitches (interrupted syscalls,
/// momentary EAGAIN/ENOBUFS): a handful of quick attempts whose waits sum
/// to well under a second, bounded by a per-operation deadline so a
/// persistently failing device cannot stall a drain barrier indefinitely.
struct RetryPolicy {
  /// Total attempts including the first (1 == no retries, 0 disables
  /// retries entirely and is treated as 1).
  int max_attempts = 4;
  /// Backoff before retry k (1-based) is
  ///   min(initial * multiplier^(k-1), max) * uniform[0.5, 1.0)
  /// — full-jitter-halved, deterministic via `jitter_seed`.
  uint64_t backoff_initial_micros = 100;
  double backoff_multiplier = 8.0;
  uint64_t backoff_max_micros = 50'000;
  /// Upper bound on the summed backoff waits for one logical operation;
  /// once exceeded no further attempts are made even if attempts remain.
  double op_deadline_seconds = 2.0;
  /// Seed for deterministic jitter (combined with a per-retry counter).
  uint64_t jitter_seed = 0x6e786772ULL;  // "nxgr"

  /// Backoff wait (microseconds) before 1-based retry `attempt`, with
  /// deterministic jitter drawn from `salt` (a monotone per-process retry
  /// index keeps consecutive retries from thundering in lockstep).
  uint64_t BackoffMicros(int attempt, uint64_t salt) const {
    double raw = static_cast<double>(backoff_initial_micros);
    for (int i = 1; i < attempt; ++i) raw *= backoff_multiplier;
    const double capped = raw < static_cast<double>(backoff_max_micros)
                              ? raw
                              : static_cast<double>(backoff_max_micros);
    SplitMix64 sm(jitter_seed ^ (salt * 0x9e3779b97f4a7c15ULL) ^
                  static_cast<uint64_t>(attempt));
    const double frac = 0.5 + 0.5 * ((sm.Next() >> 11) * 0x1.0p-53);
    return static_cast<uint64_t>(capped * frac);
  }
};

/// \brief Shared, thread-safe tally of retry activity across pipelines.
///
/// One instance per run (owned by the engine; standalone WritebackQueue /
/// Prefetcher users may pass nullptr to skip counting). Relaxed ordering:
/// the counters are reporting, not synchronization.
struct RetryCounters {
  std::atomic<uint64_t> io_retries{0};
  std::atomic<uint64_t> retry_wait_micros{0};
  std::atomic<uint64_t> dropped_write_errors{0};
  std::atomic<uint64_t> checksum_rereads{0};
  std::atomic<uint64_t> backend_downgrades{0};
  /// Monotone salt source for jitter decorrelation across threads.
  std::atomic<uint64_t> retry_salt{0};
};

/// Runs `op` (a callable returning Status) under `policy`: retryable
/// failures are retried with backoff until attempts or the deadline run
/// out; the first non-retryable failure (or success) is returned as-is.
/// `op` must be idempotent. `counters` may be null.
///
/// `cancel` (optional) makes the loop observe external state instead of
/// sleeping blind: cancellation is checked before every attempt, backoff
/// waits are interruptible (a mid-backoff Cancel returns the token's
/// status immediately, distinguishable from retryable-exhausted), and the
/// op deadline is capped at the token's remaining deadline so a query
/// with 10ms left never funds a 2s retry storm.
template <typename Op>
Status RunWithRetry(const RetryPolicy& policy, RetryCounters* counters,
                    Op&& op, const CancelToken* cancel = nullptr) {
  const int attempts = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  double deadline_seconds = policy.op_deadline_seconds;
  if (cancel != nullptr && deadline_seconds > cancel->RemainingSeconds()) {
    deadline_seconds = cancel->RemainingSeconds();
  }
  uint64_t waited_micros = 0;
  Status s;
  for (int attempt = 1;; ++attempt) {
    if (cancel != nullptr && cancel->cancelled()) return cancel->ToStatus();
    s = op();
    if (s.ok() || !s.retryable() || attempt >= attempts) return s;
    const uint64_t salt =
        counters ? counters->retry_salt.fetch_add(1, std::memory_order_relaxed)
                 : static_cast<uint64_t>(attempt);
    const uint64_t wait = policy.BackoffMicros(attempt, salt);
    if (static_cast<double>(waited_micros + wait) * 1e-6 > deadline_seconds) {
      return s;
    }
    if (wait > 0) {
      if (cancel != nullptr) {
        if (cancel->WaitFor(std::chrono::microseconds(wait))) {
          return cancel->ToStatus();
        }
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(wait));
      }
    }
    waited_micros += wait;
    if (counters) {
      counters->io_retries.fetch_add(1, std::memory_order_relaxed);
      counters->retry_wait_micros.fetch_add(wait, std::memory_order_relaxed);
    }
  }
}

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_RETRY_H_
