// SIMD bulk LEB128 decode (see simd_varint.h for the contract).
//
// Kernel shape (masked-VByte style): load 8 stream bytes, movemask the
// continuation bits into an 8-bit window signature, and look up a
// precomputed entry telling how to shuffle those bytes into fixed lanes.
// Windows of 1–2 byte codes gather (low, high) byte pairs: one pshufb, an
// AND stripping the continuation bits, and one pmaddubsw combining each
// pair as lo + 128*hi — up to eight varints per iteration with no
// data-dependent branches. Windows containing a 3-byte code gather up to
// four codes into u32 lanes instead: the same pshufb + pmaddubsw produce
// (b0 + 128*b1, b2) 16-bit halves, and a pmaddwd merges them as
// half0 + half1 << 14. Strictness is preserved in-register: each multi-byte
// lane must decode to at least the minimum value for its width (128 for
// 2-byte codes, 2^14 for 3-byte), or the whole bulk call fails exactly like
// the scalar codec would on the overlong encoding. Codes of 4+ bytes, codes
// straddling the 8-byte window, and short tails all go through the scalar
// reference decoder, so the accept/reject set is identical by construction.
#include "src/util/simd_varint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/util/varint.h"

#if defined(__x86_64__) || defined(__amd64__)
#define NXGRAPH_SIMD_X86 1
#include <immintrin.h>
#endif

namespace nxgraph {
namespace {

// ---- scalar reference paths ------------------------------------------------

const char* ScalarBulk32(const char* p, const char* limit, uint32_t* out,
                         size_t n) {
  return GetVarint32Array(p, limit, n, out);
}

const char* ScalarBulk64(const char* p, const char* limit, uint64_t* out,
                         size_t n) {
  for (size_t k = 0; k < n; ++k) {
    if (p < limit && static_cast<uint8_t>(*p) < 0x80) {
      out[k] = static_cast<uint8_t>(*p++);
      continue;
    }
    p = GetVarint64(p, limit, &out[k]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

uint64_t ScalarDeltaPrefixSum(const uint32_t* deltas, size_t n, uint32_t bias,
                              uint32_t* out) {
  if (n == 0) return 0;
  uint32_t acc = deltas[0];
  uint64_t total = deltas[0];
  out[0] = acc;
  for (size_t k = 1; k < n; ++k) {
    acc += deltas[k] + bias;  // 32-bit wraparound, matching the SIMD lanes
    total += deltas[k];
    out[k] = acc;
  }
  return total + static_cast<uint64_t>(bias) * (n - 1);
}

#ifdef NXGRAPH_SIMD_X86

// ---- shuffle window table --------------------------------------------------

// One entry per 8-bit continuation signature (bit b set <=> stream byte b
// has its high bit set, i.e. is a non-final byte). Two lane schemes share
// the entry:
//
// - The u16 scheme (shuf/min/consumed/count) covers windows whose leading
//   codes are all 1–2 bytes: a pshufb control gathering each code into a
//   (low, high) byte pair (0x80 lanes shuffle in zero) and the minimum
//   legal decoded value per lane (128 for 2-byte codes — anything smaller
//   is an overlong encoding the strict codec rejects).
// - The u32 scheme (shuf32/min32/consumed32/count32) covers windows whose
//   leading codes are 1–3 bytes with at least one 3-byte code: up to four
//   codes gathered into 32-bit lanes (bytes b0,b1,b2 at lane offsets
//   0,1,2; offset 3 zeroed), with per-lane minima of 0 / 128 / 2^14.
//
// Exactly one scheme is active per entry — whichever consumes more stream
// bytes per window. Both counts == 0 marks windows whose *first* code is
// >= 4 bytes or straddles the window; those fall back to one scalar decode.
struct alignas(16) WindowEntry {
  uint8_t shuf[16];
  alignas(16) uint16_t min[8];
  alignas(16) uint8_t shuf32[16];
  alignas(16) uint32_t min32[4];
  uint8_t consumed;
  uint8_t count;
  uint8_t consumed32;
  uint8_t count32;
};

struct WindowTable {
  WindowEntry entries[256];
  WindowTable() {
    for (int mask = 0; mask < 256; ++mask) {
      WindowEntry& e = entries[mask];
      std::memset(e.shuf, 0x80, sizeof(e.shuf));
      std::memset(e.min, 0, sizeof(e.min));
      std::memset(e.shuf32, 0x80, sizeof(e.shuf32));
      std::memset(e.min32, 0, sizeof(e.min32));
      e.consumed = 0;
      e.count = 0;
      e.consumed32 = 0;
      e.count32 = 0;
      int pos = 0;
      for (int lane = 0; lane < 8 && pos < 8; ++lane) {
        if ((mask >> pos) & 1) {
          if (pos + 1 >= 8) break;          // code straddles the window
          if ((mask >> (pos + 1)) & 1) break;  // 3+ byte code: u32 scheme
          e.shuf[2 * lane] = static_cast<uint8_t>(pos);
          e.shuf[2 * lane + 1] = static_cast<uint8_t>(pos + 1);
          e.min[lane] = 128;
          pos += 2;
        } else {
          e.shuf[2 * lane] = static_cast<uint8_t>(pos);
          pos += 1;
        }
        e.consumed = static_cast<uint8_t>(pos);
        e.count = static_cast<uint8_t>(lane + 1);
      }
      bool saw_triple = false;
      pos = 0;
      for (int lane = 0; lane < 4 && pos < 8; ++lane) {
        int len = 1;
        while (len < 4 && pos + len - 1 < 8 && ((mask >> (pos + len - 1)) & 1))
          ++len;
        if (len == 4) break;       // 4+ byte code: scalar decodes it
        if (pos + len > 8) break;  // code straddles the window
        for (int b = 0; b < len; ++b)
          e.shuf32[4 * lane + b] = static_cast<uint8_t>(pos + b);
        e.min32[lane] = len == 1 ? 0 : (len == 2 ? 128u : (1u << 14));
        if (len == 3) saw_triple = true;
        pos += len;
        e.consumed32 = static_cast<uint8_t>(pos);
        e.count32 = static_cast<uint8_t>(lane + 1);
      }
      // Keep exactly one scheme per entry: the u32 scheme only where it
      // makes strictly more byte progress than the u16 scheme (it decodes
      // at most half as many codes per window, so on 1-2 byte windows the
      // u16 scheme always wins).
      if (!saw_triple || e.consumed >= e.consumed32) {
        std::memset(e.shuf32, 0x80, sizeof(e.shuf32));
        std::memset(e.min32, 0, sizeof(e.min32));
        e.consumed32 = 0;
        e.count32 = 0;
      } else {
        std::memset(e.shuf, 0x80, sizeof(e.shuf));
        std::memset(e.min, 0, sizeof(e.min));
        e.consumed = 0;
        e.count = 0;
      }
    }
  }
};

const WindowEntry* Windows() {
  static const WindowTable table;
  return table.entries;
}

// Decodes one 8-byte window in-register. Returns the 8 values as u16 lanes
// in *vals; false when a 2-byte lane is overlong (caller must fail the bulk
// call). Lanes >= e.count decode to 0 and always validate.
__attribute__((target("ssse3"))) inline bool DecodeWindowSsse3(
    const char* p, const WindowEntry& e, __m128i* vals) {
  const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m128i gathered = _mm_shuffle_epi8(
      bytes, _mm_load_si128(reinterpret_cast<const __m128i*>(e.shuf)));
  const __m128i payload = _mm_and_si128(gathered, _mm_set1_epi8(0x7F));
  // pmaddubsw: first operand unsigned (the {1, 128} multipliers), second
  // signed (payload bytes are <= 0x7F, so sign-safe): lane = lo + 128*hi.
  const __m128i v =
      _mm_maddubs_epi16(_mm_set1_epi16(int16_t(0x8001)), payload);
  const __m128i mins =
      _mm_load_si128(reinterpret_cast<const __m128i*>(e.min));
  // subs_epu16(min, v) is nonzero exactly where v < min (overlong lane).
  const __m128i deficit = _mm_subs_epu16(mins, v);
  if (_mm_movemask_epi8(_mm_cmpeq_epi16(deficit, _mm_setzero_si128())) !=
      0xFFFF) {
    return false;
  }
  *vals = v;
  return true;
}

// Decodes one 8-byte window whose leading codes are 1–3 bytes into four
// u32 lanes. Returns false when a multi-byte lane is overlong (caller must
// fail the bulk call). Lanes >= e.count32 decode to 0 and always validate.
__attribute__((target("ssse3"))) inline bool DecodeWindow32Ssse3(
    const char* p, const WindowEntry& e, __m128i* vals) {
  const __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  const __m128i gathered = _mm_shuffle_epi8(
      bytes, _mm_load_si128(reinterpret_cast<const __m128i*>(e.shuf32)));
  const __m128i payload = _mm_and_si128(gathered, _mm_set1_epi8(0x7F));
  // Per 32-bit lane holding payload bytes (b0, b1, b2, 0):
  // pmaddubsw -> 16-bit halves (b0 + 128*b1, b2); pmaddwd merges them as
  // half0 + half1 << 14 = b0 | b1 << 7 | b2 << 14 (max 2^21 - 1, so the
  // signed multiply-add never overflows).
  const __m128i halves =
      _mm_maddubs_epi16(_mm_set1_epi16(int16_t(0x8001)), payload);
  const __m128i v =
      _mm_madd_epi16(halves, _mm_set1_epi32(int32_t((1 << 14) << 16 | 1)));
  const __m128i mins =
      _mm_load_si128(reinterpret_cast<const __m128i*>(e.min32));
  // All lanes are < 2^22, so the signed comparison is exact.
  if (_mm_movemask_epi8(_mm_cmplt_epi32(v, mins)) != 0) return false;
  *vals = v;
  return true;
}

__attribute__((target("ssse3"))) const char* BulkSsse3U32(const char* p,
                                                          const char* limit,
                                                          uint32_t* out,
                                                          size_t n) {
  const WindowEntry* windows = Windows();
  const __m128i zero = _mm_setzero_si128();
  size_t k = 0;
  while (k < n) {
    // All-final fast path: 16 single-byte values in one load.
    if (limit - p >= 16 && n - k >= 16) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      if (_mm_movemask_epi8(v) == 0) {
        const __m128i lo = _mm_unpacklo_epi8(v, zero);
        const __m128i hi = _mm_unpackhi_epi8(v, zero);
        __m128i* o = reinterpret_cast<__m128i*>(out + k);
        _mm_storeu_si128(o + 0, _mm_unpacklo_epi16(lo, zero));
        _mm_storeu_si128(o + 1, _mm_unpackhi_epi16(lo, zero));
        _mm_storeu_si128(o + 2, _mm_unpacklo_epi16(hi, zero));
        _mm_storeu_si128(o + 3, _mm_unpackhi_epi16(hi, zero));
        p += 16;
        k += 16;
        continue;
      }
    }
    if (limit - p < 8 || n - k < 8) break;  // scalar tail
    const uint32_t mask =
        _mm_movemask_epi8(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))) &
        0xFF;
    const WindowEntry& e = windows[mask];
    if (e.count != 0) {
      __m128i vals;
      if (!DecodeWindowSsse3(p, e, &vals)) return nullptr;
      // Store all 8 widened lanes (in-bounds: n - k >= 8); lanes past
      // e.count are zeros the next iteration or the tail overwrites.
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                       _mm_unpacklo_epi16(vals, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k + 4),
                       _mm_unpackhi_epi16(vals, zero));
      p += e.consumed;
      k += e.count;
    } else if (e.count32 != 0) {
      // Window leads with a 3-byte code: four u32 lanes per iteration.
      __m128i vals;
      if (!DecodeWindow32Ssse3(p, e, &vals)) return nullptr;
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), vals);
      p += e.consumed32;
      k += e.count32;
    } else {
      // Window leads with a 4+ byte or straddling code: scalar-decode it
      // (full strictness — overflow, overlong, truncation) and re-window.
      p = GetVarint32(p, limit, &out[k]);
      if (p == nullptr) return nullptr;
      ++k;
    }
  }
  return ScalarBulk32(p, limit, out + k, n - k);
}

__attribute__((target("avx2"))) const char* BulkAvx2U32(const char* p,
                                                        const char* limit,
                                                        uint32_t* out,
                                                        size_t n) {
  const WindowEntry* windows = Windows();
  const __m128i zero = _mm_setzero_si128();
  size_t k = 0;
  while (k < n) {
    // All-final fast path: 32 single-byte values per load, widened with
    // vpmovzxbd straight to u32 lanes.
    if (limit - p >= 32 && n - k >= 32) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
      if (_mm256_movemask_epi8(v) == 0) {
        for (int g = 0; g < 4; ++g) {
          const __m128i b = _mm_loadl_epi64(
              reinterpret_cast<const __m128i*>(p + 8 * g));
          _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + k + 8 * g),
                              _mm256_cvtepu8_epi32(b));
        }
        p += 32;
        k += 32;
        continue;
      }
    }
    if (limit - p < 8 || n - k < 8) break;
    const uint32_t mask =
        _mm_movemask_epi8(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))) &
        0xFF;
    const WindowEntry& e = windows[mask];
    if (e.count != 0) {
      __m128i vals;
      if (!DecodeWindowSsse3(p, e, &vals)) return nullptr;
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k),
                       _mm_unpacklo_epi16(vals, zero));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k + 4),
                       _mm_unpackhi_epi16(vals, zero));
      p += e.consumed;
      k += e.count;
    } else if (e.count32 != 0) {
      __m128i vals;
      if (!DecodeWindow32Ssse3(p, e, &vals)) return nullptr;
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), vals);
      p += e.consumed32;
      k += e.count32;
    } else {
      p = GetVarint32(p, limit, &out[k]);
      if (p == nullptr) return nullptr;
      ++k;
    }
  }
  return ScalarBulk32(p, limit, out + k, n - k);
}

__attribute__((target("ssse3"))) const char* BulkSsse3U64(const char* p,
                                                          const char* limit,
                                                          uint64_t* out,
                                                          size_t n) {
  const WindowEntry* windows = Windows();
  const __m128i zero = _mm_setzero_si128();
  size_t k = 0;
  while (k < n) {
    if (limit - p >= 16 && n - k >= 16) {
      const __m128i v =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
      if (_mm_movemask_epi8(v) == 0) {
        const __m128i u16s[2] = {_mm_unpacklo_epi8(v, zero),
                                 _mm_unpackhi_epi8(v, zero)};
        __m128i* o = reinterpret_cast<__m128i*>(out + k);
        for (int h = 0; h < 2; ++h) {
          const __m128i u32lo = _mm_unpacklo_epi16(u16s[h], zero);
          const __m128i u32hi = _mm_unpackhi_epi16(u16s[h], zero);
          _mm_storeu_si128(o++, _mm_unpacklo_epi32(u32lo, zero));
          _mm_storeu_si128(o++, _mm_unpackhi_epi32(u32lo, zero));
          _mm_storeu_si128(o++, _mm_unpacklo_epi32(u32hi, zero));
          _mm_storeu_si128(o++, _mm_unpackhi_epi32(u32hi, zero));
        }
        p += 16;
        k += 16;
        continue;
      }
    }
    if (limit - p < 8 || n - k < 8) break;
    const uint32_t mask =
        _mm_movemask_epi8(
            _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))) &
        0xFF;
    const WindowEntry& e = windows[mask];
    if (e.count != 0) {
      __m128i vals;
      if (!DecodeWindowSsse3(p, e, &vals)) return nullptr;
      const __m128i u32lo = _mm_unpacklo_epi16(vals, zero);
      const __m128i u32hi = _mm_unpackhi_epi16(vals, zero);
      __m128i* o = reinterpret_cast<__m128i*>(out + k);
      _mm_storeu_si128(o + 0, _mm_unpacklo_epi32(u32lo, zero));
      _mm_storeu_si128(o + 1, _mm_unpackhi_epi32(u32lo, zero));
      _mm_storeu_si128(o + 2, _mm_unpacklo_epi32(u32hi, zero));
      _mm_storeu_si128(o + 3, _mm_unpackhi_epi32(u32hi, zero));
      p += e.consumed;
      k += e.count;
    } else if (e.count32 != 0) {
      __m128i vals;
      if (!DecodeWindow32Ssse3(p, e, &vals)) return nullptr;
      __m128i* o = reinterpret_cast<__m128i*>(out + k);
      _mm_storeu_si128(o + 0, _mm_unpacklo_epi32(vals, zero));
      _mm_storeu_si128(o + 1, _mm_unpackhi_epi32(vals, zero));
      p += e.consumed32;
      k += e.count32;
    } else {
      p = GetVarint64(p, limit, &out[k]);
      if (p == nullptr) return nullptr;
      ++k;
    }
  }
  return ScalarBulk64(p, limit, out + k, n - k);
}

// SSE2 (x86-64 baseline, no dispatch needed) in-register prefix sum over
// blocks of four deltas, carrying the last lane across blocks. The u32
// lanes wrap exactly like the scalar loop; the exact 64-bit total is
// accumulated from the raw deltas separately so the caller's overflow
// check sees the true sum even when the lanes wrapped.
uint64_t Sse2DeltaPrefixSum(const uint32_t* deltas, size_t n, uint32_t bias,
                            uint32_t* out) {
  if (n == 0) return 0;
  out[0] = deltas[0];
  const __m128i zero = _mm_setzero_si128();
  const __m128i vbias = _mm_set1_epi32(static_cast<int>(bias));
  __m128i carry = _mm_set1_epi32(static_cast<int>(deltas[0]));
  __m128i total2 = _mm_setzero_si128();
  size_t k = 1;
  for (; n - k >= 4; k += 4) {
    const __m128i d =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(deltas + k));
    total2 = _mm_add_epi64(total2, _mm_add_epi64(_mm_unpacklo_epi32(d, zero),
                                                 _mm_unpackhi_epi32(d, zero)));
    __m128i x = _mm_add_epi32(d, vbias);
    x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
    x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
    x = _mm_add_epi32(x, carry);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + k), x);
    carry = _mm_shuffle_epi32(x, _MM_SHUFFLE(3, 3, 3, 3));
  }
  alignas(16) uint64_t halves[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(halves), total2);
  uint64_t total = static_cast<uint64_t>(deltas[0]) + halves[0] + halves[1];
  uint32_t acc = out[k - 1];
  for (; k < n; ++k) {
    acc += deltas[k] + bias;
    total += deltas[k];
    out[k] = acc;
  }
  return total + static_cast<uint64_t>(bias) * (n - 1);
}

#endif  // NXGRAPH_SIMD_X86

DecodePath EnvDecodeCeiling() {
  static const DecodePath ceiling = [] {
    const char* name = std::getenv("NXGRAPH_SIMD");
    if (name == nullptr) return DecodePath::kAvx2;  // no cap
    const std::string v(name);
    if (v == "off" || v == "scalar" || v == "0") return DecodePath::kScalar;
    if (v == "sse" || v == "ssse3") return DecodePath::kSsse3;
    return DecodePath::kAvx2;  // "avx2" or unrecognized: no cap
  }();
  return ceiling;
}

}  // namespace

const char* DecodePathName(DecodePath path) {
  switch (path) {
    case DecodePath::kAvx2:
      return "avx2";
    case DecodePath::kSsse3:
      return "ssse3";
    case DecodePath::kScalar:
    default:
      return "scalar";
  }
}

bool ParseSimdDecode(const std::string& name, SimdDecode* out) {
  if (name == "auto") {
    *out = SimdDecode::kAuto;
  } else if (name == "scalar" || name == "force-scalar") {
    *out = SimdDecode::kForceScalar;
  } else if (name == "simd" || name == "force-simd") {
    *out = SimdDecode::kForceSimd;
  } else {
    return false;
  }
  return true;
}

DecodePath BestHardwareDecodePath() {
#ifdef NXGRAPH_SIMD_X86
  static const DecodePath best = [] {
    if (__builtin_cpu_supports("avx2")) return DecodePath::kAvx2;
    if (__builtin_cpu_supports("ssse3")) return DecodePath::kSsse3;
    return DecodePath::kScalar;
  }();
  return best;
#else
  return DecodePath::kScalar;
#endif
}

bool DecodePathSupported(DecodePath path) {
  return static_cast<int>(path) <= static_cast<int>(BestHardwareDecodePath());
}

DecodePath ResolveDecodePath(SimdDecode mode) {
  switch (mode) {
    case SimdDecode::kForceScalar:
      return DecodePath::kScalar;
    case SimdDecode::kForceSimd:
      return BestHardwareDecodePath();
    case SimdDecode::kAuto:
    default:
      return std::min(BestHardwareDecodePath(), EnvDecodeCeiling());
  }
}

const char* BulkGetVarint32(const char* p, const char* limit, uint32_t* out,
                            size_t n, DecodePath path) {
#ifdef NXGRAPH_SIMD_X86
  if (path == DecodePath::kAvx2) return BulkAvx2U32(p, limit, out, n);
  if (path == DecodePath::kSsse3) return BulkSsse3U32(p, limit, out, n);
#else
  (void)path;
#endif
  return ScalarBulk32(p, limit, out, n);
}

const char* BulkGetVarint64(const char* p, const char* limit, uint64_t* out,
                            size_t n, DecodePath path) {
#ifdef NXGRAPH_SIMD_X86
  if (path != DecodePath::kScalar) return BulkSsse3U64(p, limit, out, n);
#else
  (void)path;
#endif
  return ScalarBulk64(p, limit, out, n);
}

uint64_t DeltaPrefixSumU32(const uint32_t* deltas, size_t n, uint32_t bias,
                           uint32_t* out, DecodePath path) {
#ifdef NXGRAPH_SIMD_X86
  if (path != DecodePath::kScalar) {
    return Sse2DeltaPrefixSum(deltas, n, bias, out);
  }
#else
  (void)path;
#endif
  return ScalarDeltaPrefixSum(deltas, n, bias, out);
}

}  // namespace nxgraph
