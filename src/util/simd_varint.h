// Bulk LEB128 varint decoding with an SSSE3/AVX2 shuffle-table fast path.
//
// The scalar codec in src/util/varint.h is strict and bijective: it rejects
// truncation, overflow past the output width, and overlong zero-padded
// encodings. Everything here preserves that contract exactly — for any byte
// range, BulkGetVarint32/64 succeeds iff the scalar decoder succeeds, returns
// the same past-the-end pointer, and produces the same values. A corrupt blob
// must surface as Status::Corruption from the sub-shard decoder no matter
// which path decoded it, so the SIMD kernels validate overlong encodings
// in-register and defer every code they cannot prove valid (>= 3-byte codes,
// window-straddling codes, short tails) to the scalar decoder.
//
// Dispatch is resolved once per process from CPUID (BestHardwareDecodePath)
// and can be narrowed by the NXGRAPH_SIMD environment variable
// (off|sse|avx2) or forced per run via RunOptions::simd_decode. Force-simd
// on hardware without SSSE3 degrades to scalar rather than faulting.
#ifndef NXGRAPH_UTIL_SIMD_VARINT_H_
#define NXGRAPH_UTIL_SIMD_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nxgraph {

/// User-facing decode-path knob (RunOptions::simd_decode,
/// GraphServer::Options::simd_decode).
///  - kAuto: best path the CPU supports, capped by NXGRAPH_SIMD=off|sse|avx2.
///  - kForceScalar: always the scalar reference codec.
///  - kForceSimd: best hardware path, ignoring the environment cap (used by
///    parity tests that must exercise SIMD even inside an NXGRAPH_SIMD=off
///    sweep); still scalar when the CPU has no SSSE3.
enum class SimdDecode { kAuto = 0, kForceScalar = 1, kForceSimd = 2 };

/// Concrete decode implementation, ordered by capability.
enum class DecodePath { kScalar = 0, kSsse3 = 1, kAvx2 = 2 };

/// "scalar" / "ssse3" / "avx2" — stable names for stats and logs.
const char* DecodePathName(DecodePath path);

/// Parses "auto" / "scalar" / "simd" into a SimdDecode. Returns false (and
/// leaves *out untouched) on anything else.
bool ParseSimdDecode(const std::string& name, SimdDecode* out);

/// Best path this CPU supports, from CPUID, cached after the first call.
DecodePath BestHardwareDecodePath();

/// True when `path` can execute on this CPU (kScalar always can).
bool DecodePathSupported(DecodePath path);

/// Maps the user knob to a concrete path (see SimdDecode for the rules).
/// Cached CPUID + cached environment lookup; cheap to call per decode.
DecodePath ResolveDecodePath(SimdDecode mode);

/// Decodes exactly `n` varint32 values from [p, limit) into out[0..n).
/// Returns the position past the last value, or nullptr on any malformed
/// varint (truncated, overlong, or overflowing 32 bits) — the same
/// accept/reject set, final position, and values as GetVarint32Array for
/// every input. On failure the contents of `out` are unspecified.
const char* BulkGetVarint32(const char* p, const char* limit, uint32_t* out,
                            size_t n, DecodePath path);

/// Varint64 counterpart of BulkGetVarint32, same contract.
const char* BulkGetVarint64(const char* p, const char* limit, uint64_t* out,
                            size_t n, DecodePath path);

/// Convenience overloads using the resolved auto path.
inline const char* BulkGetVarint32(const char* p, const char* limit,
                                   uint32_t* out, size_t n) {
  return BulkGetVarint32(p, limit, out, n,
                         ResolveDecodePath(SimdDecode::kAuto));
}
inline const char* BulkGetVarint64(const char* p, const char* limit,
                                   uint64_t* out, size_t n) {
  return BulkGetVarint64(p, limit, out, n,
                         ResolveDecodePath(SimdDecode::kAuto));
}

/// Delta reconstruction for the NXS2 streams: writes the running sum
///   out[0] = deltas[0];  out[k] = out[k-1] + deltas[k] + bias   (k >= 1)
/// in 32-bit wraparound arithmetic and returns the exact 64-bit value of the
/// final sum, deltas[0] + sum(deltas[1..n-1]) + (n-1)*bias (0 when n == 0).
/// Because the sums are monotone, the caller's single end-of-range
/// `> UINT32_MAX` check on the returned value detects any intermediate
/// overflow, exactly like the scalar reconstruction loops it replaces; when
/// the returned value exceeds UINT32_MAX the out[] contents are about to be
/// rejected and are unspecified-but-deterministic (32-bit wraps). `out` may
/// not alias `deltas`. bias=1 reconstructs the strictly-ascending dst
/// stream, bias=0 the counts prefix sums and per-group src streams.
uint64_t DeltaPrefixSumU32(const uint32_t* deltas, size_t n, uint32_t bias,
                           uint32_t* out, DecodePath path);

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_SIMD_VARINT_H_
