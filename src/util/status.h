// Status: lightweight error propagation without exceptions (RocksDB idiom).
#ifndef NXGRAPH_UTIL_STATUS_H_
#define NXGRAPH_UTIL_STATUS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace nxgraph {

/// \brief Result of an operation that may fail.
///
/// A Status is cheap to copy in the OK case (no allocation); error states
/// carry a code and a human-readable message. Library code returns Status
/// (or Result<T>) instead of throwing exceptions.
///
/// Orthogonal to the code, an error may be marked *retryable*: the failure
/// is transient (interrupted syscall, momentary resource exhaustion, a
/// short read that may fill in on the next attempt) and repeating the same
/// operation is both safe and plausibly useful. Retry loops live in the
/// pipelines (prefetcher, writeback, checkpoint commits) — Env backends
/// only classify, via FromErrno / TransientErrno.
class Status {
 public:
  enum class Code : uint8_t {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kInvalidArgument = 3,
    kIOError = 4,
    kNotSupported = 5,
    kAborted = 6,
    kOutOfMemory = 7,
    kResourceExhausted = 8,
    kDeadlineExceeded = 9,
    kCancelled = 10,
  };

  /// Creates an OK (success) status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status OutOfMemory(std::string msg) {
    return Status(Code::kOutOfMemory, std::move(msg));
  }
  /// A bounded resource (admission queue slot, per-query I/O byte budget)
  /// ran out. Not retryable by definition: the caller must shed load or
  /// raise the budget, re-issuing the identical operation cannot help.
  static Status ResourceExhausted(std::string msg) {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  /// The operation's deadline passed before it could run to completion.
  static Status DeadlineExceeded(std::string msg) {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  /// The operation was cooperatively cancelled (client cancel or server
  /// drain — see CancelToken). Not retryable: the caller asked it to stop.
  static Status Cancelled(std::string msg) {
    return Status(Code::kCancelled, std::move(msg));
  }

  /// I/O error already known to be transient (retry may succeed).
  static Status TransientIOError(std::string msg) {
    return Status(Code::kIOError, std::move(msg), /*retryable=*/true, 0);
  }

  /// Builds an IOError from an errno value, formatted as
  /// "<context>: <strerror>", with the retryability bit set when
  /// TransientErrno(err) holds. The single funnel for errno translation
  /// across the posix / direct-I/O / io_uring backends.
  static Status FromErrno(const std::string& context, int err);

  /// True for errnos that name transient conditions worth retrying:
  /// EINTR, EAGAIN/EWOULDBLOCK, EBUSY, ETIMEDOUT, ENOBUFS. Notably
  /// excludes EIO (media/ring failure: degrade, don't retry) and ENOSPC
  /// (retry cannot create space; writeback degrades to sync instead).
  static bool TransientErrno(int err);

  /// Copy of `s` with the retryability bit set (no-op for OK). Used to
  /// mark short-read Corruption as worth one more attempt without
  /// changing its code.
  static Status MakeRetryable(Status s) {
    if (s.ok() || s.retryable()) return s;
    return Status(s.code(), s.message(), /*retryable=*/true, s.sys_errno());
  }

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }
  bool IsNotFound() const { return code() == Code::kNotFound; }
  bool IsCorruption() const { return code() == Code::kCorruption; }
  bool IsInvalidArgument() const { return code() == Code::kInvalidArgument; }
  bool IsIOError() const { return code() == Code::kIOError; }
  bool IsNotSupported() const { return code() == Code::kNotSupported; }
  bool IsAborted() const { return code() == Code::kAborted; }
  bool IsOutOfMemory() const { return code() == Code::kOutOfMemory; }
  bool IsResourceExhausted() const {
    return code() == Code::kResourceExhausted;
  }
  bool IsDeadlineExceeded() const {
    return code() == Code::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code() == Code::kCancelled; }

  Code code() const { return rep_ ? rep_->code : Code::kOk; }

  /// True when the error is transient and the operation may be retried.
  /// Always false for OK.
  bool retryable() const { return rep_ && rep_->retryable; }

  /// Originating errno when built via FromErrno, else 0.
  int sys_errno() const { return rep_ ? rep_->sys_errno : 0; }

  /// Error message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<code>: <message>", for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const { return code() == other.code(); }

 private:
  struct Rep {
    Code code;
    std::string message;
    bool retryable = false;
    int sys_errno = 0;
  };

  Status(Code code, std::string msg, bool retryable = false,
         int sys_errno = 0)
      : rep_(std::make_shared<Rep>(
            Rep{code, std::move(msg), retryable, sys_errno})) {}

  std::shared_ptr<Rep> rep_;  // null == OK
};

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_STATUS_H_
