#include "src/util/thread_pool.h"

#include <algorithm>

namespace nxgraph {

void WaitGroup::Add(int n) {
  std::lock_guard<std::mutex> lock(mu_);
  count_ += n;
}

void WaitGroup::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--count_ <= 0) cv_.notify_all();
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return count_ <= 0; });
}

ThreadPool::ThreadPool(int num_threads) {
  threads_.reserve(std::max(num_threads, 0));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  if (threads_.empty()) {
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t begin, size_t end, size_t grain,
                             const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  grain = std::max<size_t>(grain, 1);
  const size_t total = end - begin;
  if (threads_.empty() || total <= grain) {
    fn(begin, end);
    return;
  }

  auto next = std::make_shared<std::atomic<size_t>>(begin);
  auto wg = std::make_shared<WaitGroup>();
  auto worker = [next, wg, begin, end, grain, &fn] {
    for (;;) {
      size_t chunk_begin = next->fetch_add(grain, std::memory_order_relaxed);
      if (chunk_begin >= end) break;
      size_t chunk_end = std::min(chunk_begin + grain, end);
      fn(chunk_begin, chunk_end);
    }
    wg->Done();
  };

  // Enough workers to cover the range, at most one per pool thread. The
  // calling thread also participates so a pool of k threads yields k+1-way
  // parallelism, matching "worker threads plus the issuing thread".
  const size_t max_workers = threads_.size();
  const size_t num_chunks = (total + grain - 1) / grain;
  const size_t num_workers = std::min(max_workers, num_chunks);
  wg->Add(static_cast<int>(num_workers));
  for (size_t i = 0; i < num_workers; ++i) {
    Submit(worker);
  }
  // Participate inline until the range is exhausted.
  for (;;) {
    size_t chunk_begin = next->fetch_add(grain, std::memory_order_relaxed);
    if (chunk_begin >= end) break;
    size_t chunk_end = std::min(chunk_begin + grain, end);
    fn(chunk_begin, chunk_end);
  }
  wg->Wait();
}

}  // namespace nxgraph
