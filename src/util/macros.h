// Common macros used across NXgraph.
#ifndef NXGRAPH_UTIL_MACROS_H_
#define NXGRAPH_UTIL_MACROS_H_

// Disallows copy construction and copy assignment.
#define NX_DISALLOW_COPY(ClassName)      \
  ClassName(const ClassName&) = delete;  \
  ClassName& operator=(const ClassName&) = delete

// Propagates a non-OK Status out of the current function.
#define NX_RETURN_NOT_OK(expr)                 \
  do {                                         \
    ::nxgraph::Status _nx_status = (expr);     \
    if (!_nx_status.ok()) return _nx_status;   \
  } while (0)

// Assigns the value of a Result<T> expression to `lhs`, or propagates its
// error Status. `lhs` may include a declaration, e.g.
//   NX_ASSIGN_OR_RETURN(auto file, env->NewWritableFile(path));
#define NX_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  NX_ASSIGN_OR_RETURN_IMPL_(NX_CONCAT_(_nx_result, __LINE__), lhs, rexpr)

#define NX_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                              \
  if (!result.ok()) return result.status();           \
  lhs = std::move(result).value()

#define NX_CONCAT_(a, b) NX_CONCAT_IMPL_(a, b)
#define NX_CONCAT_IMPL_(a, b) a##b

#if defined(__GNUC__) || defined(__clang__)
#define NX_PREDICT_TRUE(x) (__builtin_expect(!!(x), 1))
#define NX_PREDICT_FALSE(x) (__builtin_expect(!!(x), 0))
#else
#define NX_PREDICT_TRUE(x) (x)
#define NX_PREDICT_FALSE(x) (x)
#endif

#endif  // NXGRAPH_UTIL_MACROS_H_
