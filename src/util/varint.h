// LEB128 varint codec for the compact on-disk formats (NXS2 sub-shards).
//
// Encoding: little-endian base-128 — 7 payload bits per byte, high bit set
// on every byte except the last. Decoding is strict and bijective:
//   - truncation (limit hit mid-value) fails;
//   - overflow (payload bits beyond the output width) fails;
//   - overlong encodings (a non-final representation padded with a zero
//     continuation group, e.g. 0x80 0x00 for 0) fail.
// Strictness matters because the sub-shard decoder must reject corrupt
// blobs as Status::Corruption rather than silently normalizing them, and
// bijectivity makes Encode(Decode(blob)) == blob testable.
#ifndef NXGRAPH_UTIL_VARINT_H_
#define NXGRAPH_UTIL_VARINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace nxgraph {

inline constexpr size_t kMaxVarint32Bytes = 5;
inline constexpr size_t kMaxVarint64Bytes = 10;

inline void PutVarint32(std::string* dst, uint32_t v) {
  char buf[kMaxVarint32Bytes];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  dst->append(buf, n);
}

inline void PutVarint64(std::string* dst, uint64_t v) {
  char buf[kMaxVarint64Bytes];
  size_t n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<char>(v | 0x80);
    v >>= 7;
  }
  buf[n++] = static_cast<char>(v);
  dst->append(buf, n);
}

/// Encoded size of `v` (1..5 bytes), for exact reserve() calls.
inline size_t Varint32Size(uint32_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Encoded size of `v` (1..10 bytes), for exact reserve() calls.
inline size_t Varint64Size(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Decodes one varint32 from [p, limit). Returns the position past the
/// value, or nullptr on truncation, overflow, or an overlong encoding.
inline const char* GetVarint32(const char* p, const char* limit,
                               uint32_t* out) {
  uint32_t value = 0;
  for (int shift = 0; shift <= 28 && p < limit; shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(*p++);
    if (byte < 0x80) {
      // Final byte: reject overflow past 32 bits (shift 28 leaves 4 usable
      // bits) and non-canonical zero continuation groups.
      if (shift == 28 && byte > 0x0F) return nullptr;
      if (shift > 0 && byte == 0) return nullptr;
      *out = value | (static_cast<uint32_t>(byte) << shift);
      return p;
    }
    value |= static_cast<uint32_t>(byte & 0x7F) << shift;
  }
  return nullptr;  // truncated, or a 6th continuation byte
}

/// Decodes one varint64 from [p, limit); same strictness as GetVarint32.
inline const char* GetVarint64(const char* p, const char* limit,
                               uint64_t* out) {
  uint64_t value = 0;
  for (int shift = 0; shift <= 63 && p < limit; shift += 7) {
    const uint8_t byte = static_cast<uint8_t>(*p++);
    if (byte < 0x80) {
      if (shift == 63 && byte > 0x01) return nullptr;
      if (shift > 0 && byte == 0) return nullptr;
      *out = value | (static_cast<uint64_t>(byte) << shift);
      return p;
    }
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
  }
  return nullptr;
}

/// Bulk decode of `n` varint32 values into `out` (caller-sized to >= n).
/// The hot loop of the NXS2 decoder: raw varints land in a flat scratch
/// array first, so the delta/prefix-sum reconstruction over it is a tight
/// branch-light loop the compiler can unroll and vectorize, instead of a
/// varint decode interleaved with data-dependent arithmetic. Returns the
/// position past the last value, or nullptr on any malformed varint.
inline const char* GetVarint32Array(const char* p, const char* limit,
                                    size_t n, uint32_t* out) {
  for (size_t k = 0; k < n; ++k) {
    // Single-byte fast path: the overwhelmingly common case for deltas.
    if (p < limit && static_cast<uint8_t>(*p) < 0x80) {
      out[k] = static_cast<uint8_t>(*p++);
      continue;
    }
    p = GetVarint32(p, limit, &out[k]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

}  // namespace nxgraph

#endif  // NXGRAPH_UTIL_VARINT_H_
