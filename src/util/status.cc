#include "src/util/status.h"

#include <cerrno>
#include <cstring>

namespace nxgraph {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kOutOfMemory:
      return "OutOfMemory";
    case Status::Code::kResourceExhausted:
      return "ResourceExhausted";
    case Status::Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Status::Code::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  if (retryable()) out += " (retryable)";
  return out;
}

bool Status::TransientErrno(int err) {
  switch (err) {
    case EINTR:
    case EAGAIN:
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case EBUSY:
    case ETIMEDOUT:
    case ENOBUFS:
      return true;
    default:
      return false;
  }
}

Status Status::FromErrno(const std::string& context, int err) {
  return Status(Code::kIOError, context + ": " + std::strerror(err),
                TransientErrno(err), err);
}

}  // namespace nxgraph
