#include "src/util/status.h"

namespace nxgraph {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kOutOfMemory:
      return "OutOfMemory";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace nxgraph
