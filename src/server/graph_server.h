// GraphServer: a long-lived multi-tenant query server over one shared
// GraphStore + SubShardCache + I/O stack. See docs/serving.md.
#ifndef NXGRAPH_SERVER_GRAPH_SERVER_H_
#define NXGRAPH_SERVER_GRAPH_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/io/env.h"
#include "src/server/query.h"
#include "src/server/query_runner.h"
#include "src/storage/graph_store.h"
#include "src/util/macros.h"
#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"

namespace nxgraph {

/// \brief Long-lived query server: owns one open GraphStore, one shared
/// evictable SubShardCache, one shared I/O pool, and a fixed pool of query
/// workers; serves many concurrent point (BFS/SSSP/k-hop) and batch
/// queries against them.
///
/// Shared across queries: the store, the decoded-sub-shard cache (read
/// pins keep a query's rows from being evicted under it), the I/O threads,
/// and the degree arrays. Per query: all value/accumulator state, so
/// queries never contend on vertex values and every result is bit-identical
/// to the same query run alone (see query_runner.h).
///
/// Admission control: at most `num_workers` queries execute at once;
/// beyond that, up to `max_queue` wait in FIFO order. Submissions past the
/// queue bound are rejected immediately with ResourceExhausted, and queued
/// queries whose queue_deadline passes before a worker picks them up are
/// shed with DeadlineExceeded — the future always completes, nothing
/// hangs.
class GraphServer {
 public:
  struct Options {
    /// Shared decoded-sub-shard cache budget (evictable, pin-aware).
    uint64_t cache_budget_bytes = 256ull << 20;
    /// Concurrent query executions (dedicated worker threads).
    int num_workers = 4;
    /// Queries allowed to WAIT beyond the in-flight limit before admission
    /// rejects.
    int max_queue = 64;
    /// Shared I/O threads serving all queries' cache loads.
    int io_threads = 2;
    /// Per-query read-ahead window over the shared cache (0 = synchronous).
    int prefetch_depth = 2;
    /// Transient-fault retry policy for query I/O (see RunOptions::retry).
    RetryPolicy retry;
    /// Consult per-blob source summaries when planning query rounds (see
    /// QueryContext::selective). Defaults to the NXGRAPH_SELECTIVE
    /// override; inert on stores without summaries.
    bool selective = DefaultSelectiveScheduling();
    /// Varint decode implementation for every blob decode this server's
    /// store performs (RunOptions::simd_decode semantics: kAuto resolves
    /// CPUID capped by NXGRAPH_SIMD; results are bit-identical across
    /// paths). Stats::decode_path reports the resolution.
    SimdDecode simd_decode = SimdDecode::kAuto;
    /// Start with dispatch paused (test hook): submissions queue (and shed
    /// and reject) normally but no worker picks anything up until
    /// SetPaused(false).
    bool start_paused = false;
  };

  /// \brief Server-level statistics (the serving analogue of RunStats).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;  ///< includes truncated
    uint64_t truncated = 0;  ///< completed with partial results (budget)
    uint64_t rejected = 0;   ///< admission-rejected (queue full)
    uint64_t shed = 0;       ///< queue_deadline passed while queued
    uint64_t failed = 0;     ///< execution errors
    uint64_t queued = 0;     ///< currently waiting
    uint64_t running = 0;    ///< currently executing
    double uptime_seconds = 0;
    double qps = 0;          ///< completed / uptime
    /// End-to-end latency (queue + run) percentiles over completed queries,
    /// milliseconds. 0 when nothing completed yet.
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    /// Shared-cache behavior across all queries.
    SubShardCache::Counters cache;
    uint64_t cache_bytes_cached = 0;
    double cache_hit_rate = 0;  ///< hits / (hits + misses)
    /// Decode path serving the shared store ("scalar"/"ssse3"/"avx2") and
    /// its lifetime decode totals across all queries (see QueryStats for
    /// the per-query attribution).
    std::string decode_path;
    uint64_t bulk_decode_calls = 0;
    double decode_seconds = 0;
  };

  /// Opens the store and starts the worker/I/O pools. The Env must outlive
  /// the server.
  static Result<std::unique_ptr<GraphServer>> Open(Env* env,
                                                   const std::string& dir,
                                                   const Options& options);

  /// Completes all queued queries with Aborted, then joins the workers.
  ~GraphServer();
  NX_DISALLOW_COPY(GraphServer);

  /// Submits a point query; returns immediately. The future completes with
  /// the result, a partial result (ResourceExhausted, stats.truncated), or
  /// the rejection/shedding status.
  QueryFuture<PointResult> Submit(const PointQuery& query);

  /// Submits a batch-analytics program (PageRank, WCC, ...) through the
  /// same admission/budget path as point queries.
  template <VertexProgram Program>
  QueryFuture<BatchResult<typename Program::Value>> SubmitBatch(
      const Program& program, const BatchQuery& spec) {
    using R = BatchResult<typename Program::Value>;
    QueryFuture<R> future;
    EnqueueTicket(
        spec.limits.queue_deadline,
        [this, program, spec, future](double queue_seconds) {
          const auto start = std::chrono::steady_clock::now();
          Outcome<R> out = RunBatchQuery(program, MakeContext(),
                                         spec.direction, spec.max_iterations,
                                         spec.limits.io_byte_budget);
          out.result.stats.queue_seconds = queue_seconds;
          out.result.stats.run_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          FinishQuery(out.status, out.result.stats);
          future.Complete(std::move(out));
        },
        [future](Status s) { future.Complete({std::move(s), {}}); });
    return future;
  }

  /// Pauses / resumes dispatch (test hook; see Options::start_paused).
  void SetPaused(bool paused);

  Stats stats() const;
  const GraphStore& store() const { return *store_; }
  SubShardCache* cache() { return cache_.get(); }

 private:
  /// A queued query: `run(queue_seconds)` executes and completes the
  /// future; `abort(status)` completes it without running (rejection,
  /// shedding, shutdown).
  struct Ticket {
    std::chrono::steady_clock::time_point submitted;
    std::chrono::steady_clock::time_point deadline;  // ::max() = none
    std::function<void(double)> run;
    std::function<void(Status)> abort;
  };

  GraphServer(Env* env, Options options);

  QueryContext MakeContext() const;

  /// Admission control: queues the ticket, or calls `abort` inline with
  /// ResourceExhausted (queue full) / Aborted (shutting down).
  void EnqueueTicket(std::chrono::milliseconds queue_deadline,
                     std::function<void(double)> run,
                     std::function<void(Status)> abort);

  /// Server-side completion accounting (latency sample + counters).
  void FinishQuery(const Status& status, const QueryStats& stats);

  void WorkerLoop();

  Env* env_;
  const Options options_;
  std::shared_ptr<GraphStore> store_;
  std::unique_ptr<SubShardCache> cache_;
  std::unique_ptr<ThreadPool> io_pool_;
  std::vector<uint32_t> out_degrees_;
  std::vector<uint32_t> in_degrees_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> queue_;
  bool paused_ = false;
  bool stopping_ = false;
  uint64_t running_ = 0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t truncated_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_ = 0;
  uint64_t failed_ = 0;
  std::vector<double> latencies_ms_;
  std::vector<std::thread> workers_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_SERVER_GRAPH_SERVER_H_
