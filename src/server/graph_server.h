// GraphServer: a long-lived multi-tenant query server over one shared
// GraphStore + SubShardCache + I/O stack. See docs/serving.md.
#ifndef NXGRAPH_SERVER_GRAPH_SERVER_H_
#define NXGRAPH_SERVER_GRAPH_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/io/env.h"
#include "src/server/query.h"
#include "src/server/query_runner.h"
#include "src/storage/graph_store.h"
#include "src/util/cancel.h"
#include "src/util/macros.h"
#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"

namespace nxgraph {

/// \brief Long-lived query server: owns one open GraphStore, one shared
/// evictable SubShardCache, one shared I/O pool, and a fixed pool of query
/// workers; serves many concurrent point (BFS/SSSP/k-hop) and batch
/// queries against them.
///
/// Shared across queries: the store, the decoded-sub-shard cache (read
/// pins keep a query's rows from being evicted under it), the I/O threads,
/// and the degree arrays. Per query: all value/accumulator state, so
/// queries never contend on vertex values and every result is bit-identical
/// to the same query run alone (see query_runner.h).
///
/// Admission control: at most `num_workers` queries execute at once;
/// beyond that, up to `max_queue` wait in FIFO order. Submissions past the
/// queue bound are rejected immediately with ResourceExhausted, and queued
/// queries whose deadline passes before a worker picks them up are shed
/// with DeadlineExceeded — the future always completes, nothing hangs.
///
/// Lifecycle: every admitted query gets an id (stamped on its future) and
/// a CancelToken that is a child of the server-wide drain token and
/// carries the query's end-to-end deadline. Cancel(id) fires one token;
/// Drain(timeout) closes admission and fans shutdown out to all of them;
/// a deadline fires its own token lazily. Running queries observe their
/// token cooperatively at sub-shard checkpoints (query_runner.h), return
/// deterministic partial results, and release every cache pin on the way
/// out. A stall watchdog flags queries that stop reaching checkpoints.
class GraphServer {
 public:
  struct Options {
    /// Shared decoded-sub-shard cache budget (evictable, pin-aware).
    uint64_t cache_budget_bytes = 256ull << 20;
    /// Concurrent query executions (dedicated worker threads).
    int num_workers = 4;
    /// Queries allowed to WAIT beyond the in-flight limit before admission
    /// rejects.
    int max_queue = 64;
    /// Shared I/O threads serving all queries' cache loads.
    int io_threads = 2;
    /// Per-query read-ahead window over the shared cache (0 = synchronous).
    int prefetch_depth = 2;
    /// Transient-fault retry policy for query I/O (see RunOptions::retry).
    RetryPolicy retry;
    /// Consult per-blob source summaries when planning query rounds (see
    /// QueryContext::selective). Defaults to the NXGRAPH_SELECTIVE
    /// override; inert on stores without summaries.
    bool selective = DefaultSelectiveScheduling();
    /// Varint decode implementation for every blob decode this server's
    /// store performs (RunOptions::simd_decode semantics: kAuto resolves
    /// CPUID capped by NXGRAPH_SIMD; results are bit-identical across
    /// paths). Stats::decode_path reports the resolution.
    SimdDecode simd_decode = SimdDecode::kAuto;
    /// Start with dispatch paused (test hook): submissions queue (and shed
    /// and reject) normally but no worker picks anything up until
    /// SetPaused(false).
    bool start_paused = false;
    /// Stall-watchdog scan period, seconds; <= 0 disables the watchdog
    /// thread entirely.
    double watchdog_interval_seconds = 0.05;
    /// A RUNNING query older than stall_multiplier × its deadline is
    /// flagged as stalled: logged once (with the phase and blob it is
    /// stuck in, from QueryProgress) and surfaced in Stats. Flagging never
    /// kills the query — the deadline cancellation already fired at
    /// 1× deadline; a stall flag means the query is not reaching
    /// checkpoints (wedged I/O, a blocked hook). Queries without a
    /// deadline are never flagged.
    double stall_multiplier = 4.0;
    /// TEST HOOK: forwarded to every query's
    /// QueryContext::boundary_hook — invoked at each cancellation
    /// checkpoint. Empty in production.
    std::function<void()> boundary_hook;
  };

  /// \brief A query the stall watchdog flagged: still running past
  /// stall_multiplier × its deadline, last seen at this phase/blob.
  struct StalledQuery {
    uint64_t id = 0;
    double running_seconds = 0;
    QueryPhase phase = QueryPhase::kQueued;
    uint32_t round = 0;
    uint32_t i = 0;
    uint32_t j = 0;
  };

  /// \brief Server-level statistics (the serving analogue of RunStats).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t completed = 0;  ///< includes truncated
    uint64_t truncated = 0;  ///< completed with partial results (budget)
    uint64_t rejected = 0;   ///< admission-rejected (queue full)
    uint64_t shed = 0;       ///< deadline passed while still QUEUED
    uint64_t failed = 0;     ///< execution errors
    /// Client Cancel() completions (status Cancelled, reason kClient) —
    /// both mid-run and while still queued.
    uint64_t cancelled = 0;
    /// Deadline fired while the query was RUNNING: cancelled at its next
    /// checkpoint with a partial result (status DeadlineExceeded, reason
    /// kDeadline). Counted separately from `shed`, which never ran at all.
    uint64_t deadline_cancelled = 0;
    /// Queries cancelled by Drain()'s straggler sweep (reason kShutdown).
    uint64_t drain_cancelled = 0;
    /// Lifetime stall-watchdog flags (see Options::stall_multiplier).
    uint64_t stalled = 0;
    uint64_t queued = 0;     ///< currently waiting
    uint64_t running = 0;    ///< currently executing
    bool draining = false;   ///< Drain() has closed admission
    /// Currently-running queries holding a stall flag, with where they are.
    std::vector<StalledQuery> stalled_queries;
    double uptime_seconds = 0;
    double qps = 0;          ///< completed / uptime
    /// End-to-end latency (queue + run) percentiles over completed queries,
    /// milliseconds. 0 when nothing completed yet.
    double p50_ms = 0;
    double p95_ms = 0;
    double p99_ms = 0;
    /// Shared-cache behavior across all queries.
    SubShardCache::Counters cache;
    uint64_t cache_bytes_cached = 0;
    double cache_hit_rate = 0;  ///< hits / (hits + misses)
    /// Decode path serving the shared store ("scalar"/"ssse3"/"avx2") and
    /// its lifetime decode totals across all queries (see QueryStats for
    /// the per-query attribution).
    std::string decode_path;
    uint64_t bulk_decode_calls = 0;
    double decode_seconds = 0;
  };

  /// Opens the store and starts the worker/I/O pools. The Env must outlive
  /// the server.
  static Result<std::unique_ptr<GraphServer>> Open(Env* env,
                                                   const std::string& dir,
                                                   const Options& options);

  /// Completes all queued queries with Aborted, then joins the workers.
  ~GraphServer();
  NX_DISALLOW_COPY(GraphServer);

  /// Submits a point query; returns immediately. The future completes with
  /// the result, a partial result (ResourceExhausted, stats.truncated), or
  /// the rejection/shedding status.
  QueryFuture<PointResult> Submit(const PointQuery& query);

  /// Submits a batch-analytics program (PageRank, WCC, ...) through the
  /// same admission/budget path as point queries.
  template <VertexProgram Program>
  QueryFuture<BatchResult<typename Program::Value>> SubmitBatch(
      const Program& program, const BatchQuery& spec) {
    using R = BatchResult<typename Program::Value>;
    QueryFuture<R> future;
    std::shared_ptr<LiveQuery> lq = NewLiveQuery(spec.limits.deadline);
    future.SetId(lq->id);
    EnqueueTicket(
        lq,
        [this, program, spec, lq, future](double queue_seconds) {
          const auto start = std::chrono::steady_clock::now();
          Outcome<R> out = RunBatchQuery(program, MakeContext(lq.get()),
                                         spec.direction, spec.max_iterations,
                                         spec.limits.io_byte_budget);
          out.result.stats.queue_seconds = queue_seconds;
          out.result.stats.run_seconds =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
          FinishQuery(lq, out.status, out.result.stats);
          future.Complete(std::move(out));
        },
        [future](Status s) { future.Complete({std::move(s), {}}); });
    return future;
  }

  /// Requests cooperative cancellation of a live query by the id stamped
  /// on its future. A queued query completes immediately with Cancelled;
  /// a running one unwinds at its next checkpoint, returning Cancelled
  /// with the deterministic partial result of its completed rounds.
  /// Returns false when the id names no live query (already finished,
  /// rejected, or unknown) — cancellation raced completion, and the
  /// future holds the run's real outcome.
  bool Cancel(uint64_t query_id);

  /// Graceful shutdown of admission: immediately stops accepting new
  /// queries (submissions complete with Aborted), lets queued + running
  /// work finish for up to `timeout`, then fans CancelReason::kShutdown
  /// out to every remaining query and waits for them to unwind. Returns
  /// OK once the server is idle (whether or not stragglers had to be
  /// cancelled — Stats::drain_cancelled says how many were), or
  /// DeadlineExceeded if a wedged query failed to reach a cancellation
  /// checkpoint within a generous hard cap. Idempotent; admission stays
  /// closed afterwards. The destructor remains the non-graceful path
  /// (aborts the queue, finishes only what is mid-run).
  Status Drain(std::chrono::milliseconds timeout);

  /// Pauses / resumes dispatch (test hook; see Options::start_paused).
  void SetPaused(bool paused);

  Stats stats() const;
  const GraphStore& store() const { return *store_; }
  SubShardCache* cache() { return cache_.get(); }

 private:
  /// \brief Per-query lifecycle record, registered from admission until
  /// FinishQuery (or queue-time abort). The token is a child of the
  /// server-wide drain token, carrying the query's end-to-end deadline;
  /// `progress` is written lock-free by the running query and read by the
  /// stall watchdog. `running`/`stall_flagged` are guarded by mu_.
  struct LiveQuery {
    uint64_t id = 0;
    CancelToken token;
    QueryProgress progress;
    std::chrono::steady_clock::time_point submitted;
    std::chrono::milliseconds deadline{0};  // 0 = none
    bool running = false;
    bool stall_flagged = false;
  };

  /// A queued query: `run(queue_seconds)` executes and completes the
  /// future; `abort(status)` completes it without running (rejection,
  /// shedding, cancellation, shutdown).
  struct Ticket {
    std::shared_ptr<LiveQuery> lq;
    std::function<void(double)> run;
    std::function<void(Status)> abort;
  };

  GraphServer(Env* env, Options options);

  QueryContext MakeContext(LiveQuery* lq) const;

  /// Allocates an id and a drain-token child carrying the deadline.
  std::shared_ptr<LiveQuery> NewLiveQuery(std::chrono::milliseconds deadline);

  /// Admission control: queues the ticket and registers it live, or calls
  /// `abort` inline with ResourceExhausted (queue full) / Aborted
  /// (draining or shutting down) without registering.
  void EnqueueTicket(std::shared_ptr<LiveQuery> lq,
                     std::function<void(double)> run,
                     std::function<void(Status)> abort);

  /// Server-side completion accounting (latency sample + counters) and
  /// live-registry removal.
  void FinishQuery(const std::shared_ptr<LiveQuery>& lq, const Status& status,
                   const QueryStats& stats);

  void WorkerLoop();
  void WatchdogLoop();

  Env* env_;
  const Options options_;
  std::shared_ptr<GraphStore> store_;
  std::unique_ptr<SubShardCache> cache_;
  std::unique_ptr<ThreadPool> io_pool_;
  std::vector<uint32_t> out_degrees_;
  std::vector<uint32_t> in_degrees_;
  std::chrono::steady_clock::time_point started_;

  /// Root of the cancellation tree: Drain() fires it with kShutdown and
  /// every per-query token is its child. Never carries a deadline itself.
  CancelToken drain_token_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  /// Signalled whenever the server may have gone idle (queue empty, no
  /// runners) — Drain() blocks on it.
  std::condition_variable drained_cv_;
  std::condition_variable watchdog_cv_;
  std::deque<Ticket> queue_;
  /// Queries between admission and completion, by id (queued + running).
  std::unordered_map<uint64_t, std::shared_ptr<LiveQuery>> live_;
  uint64_t next_query_id_ = 1;
  bool paused_ = false;
  bool stopping_ = false;
  bool draining_ = false;
  uint64_t running_ = 0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t truncated_ = 0;
  uint64_t rejected_ = 0;
  uint64_t shed_ = 0;
  uint64_t failed_ = 0;
  uint64_t cancelled_ = 0;
  uint64_t deadline_cancelled_ = 0;
  uint64_t drain_cancelled_ = 0;
  uint64_t stalled_ = 0;
  std::vector<double> latencies_ms_;
  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_SERVER_GRAPH_SERVER_H_
