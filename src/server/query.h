// Query specs, results, and completion futures for the serving layer.
#ifndef NXGRAPH_SERVER_QUERY_H_
#define NXGRAPH_SERVER_QUERY_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "src/engine/options.h"
#include "src/graph/types.h"
#include "src/util/cancel.h"
#include "src/util/status.h"

namespace nxgraph {

/// What a point query computes from its root.
enum class QueryKind {
  kBfs,   ///< hop distances, optionally capped at max_hops
  kSssp,  ///< weighted shortest-path costs, optionally capped at max_cost
  kKHop,  ///< the k-hop neighborhood (BFS reachability within max_hops)
};

/// \brief Per-query resource limits, enforced by the server.
struct QueryLimits {
  /// BFS / k-hop: stop after this many propagation rounds (every vertex at
  /// hop distance <= max_hops is final). 0 = run to convergence.
  int max_hops = 0;

  /// SSSP: paths costlier than this are pruned (treated as unreachable).
  /// 0 = no cap.
  float max_cost = 0;

  /// Encoded sub-shard bytes this query may pull through the shared cache.
  /// Every sub-shard the query visits is charged at its manifest size —
  /// HIT OR MISS — so the truncation point is a deterministic function of
  /// the query alone, never of what other queries happen to have cached.
  /// On exhaustion the query stops cleanly with ResourceExhausted and
  /// whatever partial result it reached. 0 = unlimited.
  uint64_t io_byte_budget = 0;

  /// End-to-end deadline, measured from submission, covering queueing AND
  /// execution. Still queued when it passes → shed with DeadlineExceeded
  /// before ever occupying a worker (counted in Stats::shed). Already
  /// running → cancelled cooperatively at the next sub-shard / iteration
  /// boundary, returning DeadlineExceeded with the deterministic partial
  /// result of the rounds that completed (counted in
  /// Stats::deadline_cancelled). 0 = no deadline.
  std::chrono::milliseconds deadline{0};
};

/// \brief A point query: traversal from one root over the shared store.
struct PointQuery {
  QueryKind kind = QueryKind::kBfs;
  VertexId root = 0;
  QueryLimits limits;
};

/// \brief A batch-analytics query: a full VertexProgram run (PageRank, WCC,
/// ...) executed over the server's shared cache instead of a private engine
/// stack. Submitted via GraphServer::SubmitBatch, which carries the
/// program itself.
struct BatchQuery {
  EdgeDirection direction = EdgeDirection::kForward;
  /// Iteration cap; <= 0 runs until every interval goes inactive (programs
  /// that never converge on their own — PageRank with tolerance 0 — must
  /// set this).
  int max_iterations = 0;
  QueryLimits limits;  ///< max_hops / max_cost are ignored for batch
};

/// \brief Per-query execution accounting (the query-side analogue of
/// RunStats).
struct QueryStats {
  uint64_t subshards_visited = 0;  ///< sub-shards pulled through the cache
  /// Non-empty sub-shards dropped because their source summary did not
  /// intersect the query's frontier (selective scheduling; 0 when the
  /// store has no summaries or the program is not monotone-skippable).
  /// Skipped sub-shards are neither visited nor charged to the budget.
  uint64_t subshards_skipped = 0;
  uint64_t bytes_charged = 0;      ///< encoded bytes charged to the budget
  /// Total bytes of the manifest's per-blob source summaries the planner
  /// consulted (0 when selective scheduling was off for this query).
  uint64_t summary_bytes = 0;
  int iterations = 0;              ///< propagation rounds fully applied
  bool truncated = false;          ///< stopped early on io_byte_budget
  /// Why the query was cancelled (kNone for a run that finished on its
  /// own). The partial result of a cancelled query is deterministic: it
  /// equals the same query run to completion with its round cap set to
  /// `iterations` — the round in flight at cancellation is discarded
  /// whole, never half-applied.
  CancelReason cancel_reason = CancelReason::kNone;
  double queue_seconds = 0;        ///< submission -> start of execution
  double run_seconds = 0;          ///< execution wall-clock

  // -- decode path --------------------------------------------------------
  /// Varint decode implementation in effect for this query's blob decodes
  /// ("scalar" / "ssse3" / "avx2") — GraphServer::Options::simd_decode
  /// after CPUID + NXGRAPH_SIMD resolution. Bit-identical results across
  /// paths.
  std::string decode_path;
  /// NXS2 bulk varint scans THIS query's cache misses performed (tallied
  /// inside the load, wherever it ran — worker thread or shared I/O pool).
  /// A fully cache-hit query reports 0; waiting on another query's
  /// in-flight load attributes the work to that query.
  uint64_t bulk_decode_calls = 0;
  /// Wall-clock inside SubShard::Decode for those loads.
  double decode_seconds = 0;
};

/// Where a running query currently is (for the stall watchdog and stats).
enum class QueryPhase : uint8_t {
  kQueued = 0,   ///< admitted, waiting for a worker
  kPlan = 1,     ///< planning the round's sub-shard visits
  kLoad = 2,     ///< pulling a sub-shard through the cache
  kApply = 3,    ///< applying the round's accumulators
  kCollect = 4,  ///< materializing the final result
};

const char* QueryPhaseName(QueryPhase phase);

/// \brief Live position of a running query, updated at every cancellation
/// checkpoint with relaxed atomics (reporting, not synchronization). The
/// stall watchdog snapshots this to say *where* a wedged query is stuck —
/// phase plus the (round, i, j) blob coordinates it last touched.
struct QueryProgress {
  std::atomic<uint8_t> phase{0};       // QueryPhase
  std::atomic<uint32_t> round{0};
  std::atomic<uint32_t> i{0};
  std::atomic<uint32_t> j{0};
  std::atomic<uint64_t> checkpoints{0};  ///< cancellation checks passed

  void Set(QueryPhase p, uint32_t r, uint32_t ii, uint32_t jj) {
    phase.store(static_cast<uint8_t>(p), std::memory_order_relaxed);
    round.store(r, std::memory_order_relaxed);
    i.store(ii, std::memory_order_relaxed);
    j.store(jj, std::memory_order_relaxed);
    checkpoints.fetch_add(1, std::memory_order_relaxed);
  }
};

/// \brief Result of a point query: the reached vertices (ascending id) and
/// their values. `hops` is filled for kBfs/kKHop, `costs` for kSssp.
struct PointResult {
  std::vector<VertexId> vertices;
  std::vector<uint32_t> hops;
  std::vector<float> costs;
  QueryStats stats;
};

/// \brief Result of a batch-analytics query: final values for all vertices,
/// indexed by id — what Engine::Run's CollectFinalValues produces.
template <typename V>
struct BatchResult {
  std::vector<V> values;
  QueryStats stats;
};

/// \brief Terminal state of one query. `status` is OK for a complete
/// result, ResourceExhausted for a budget-truncated one (partial `result`
/// is still populated, stats.truncated set), DeadlineExceeded for a shed
/// or deadline-cancelled query (the latter with the deterministic partial
/// result and stats.cancel_reason = kDeadline), Cancelled for a
/// client-cancelled or drain-cancelled query (partial result populated,
/// cancel_reason kClient / kShutdown), ResourceExhausted with empty stats
/// for an admission rejection, Aborted when the server shut down first, or
/// the execution error.
template <typename R>
struct Outcome {
  Status status;
  R result;
};

/// \brief Completion handle for a submitted query. Copyable; all copies
/// share one outcome. Wait() blocks until the server completes, sheds, or
/// rejects the query — rejection completes the future immediately at
/// Submit time, so Wait never hangs.
template <typename R>
class QueryFuture {
 public:
  QueryFuture() : state_(std::make_shared<State>()) {}

  /// The reference lives as long as some copy of this future does. On a
  /// temporary future (`Submit(q).Wait()`) the outcome is returned by value
  /// instead — the server side may drop its copy the moment it completes
  /// the query, so a reference into an expiring future would dangle.
  const Outcome<R>& Wait() const& {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    return state_->outcome;
  }

  Outcome<R> Wait() const&& { return Wait(); }

  bool Done() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->done;
  }

  /// Server-assigned query id (for GraphServer::Cancel). 0 until the
  /// server admits the query; stays 0 for inline rejections, which are
  /// already complete and cannot be cancelled.
  uint64_t id() const {
    std::lock_guard<std::mutex> lock(state_->mu);
    return state_->id;
  }

  /// Server-side: stamps the id at admission, before the ticket can run.
  void SetId(uint64_t id) const {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->id = id;
  }

  /// Completes the future (server-side; calling twice is a bug guarded by
  /// the scheduler, the second outcome would be dropped).
  void Complete(Outcome<R> outcome) const {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->done) return;
      state_->outcome = std::move(outcome);
      state_->done = true;
    }
    state_->cv.notify_all();
  }

 private:
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    uint64_t id = 0;
    Outcome<R> outcome;
  };
  std::shared_ptr<State> state_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_SERVER_QUERY_H_
