// Per-query execution over the server's shared store/cache/I-O stack.
//
// Every query computes SINGLE-THREADED: the server's concurrency is across
// queries, not within one, so a query's accumulation order is a fixed
// function of the manifest (i ascending, j ascending, destination groups in
// stored order) and its results are bit-identical whether it runs alone or
// next to a hundred others. Sub-shards are pulled through the shared
// SubShardCache with bounded read-ahead on the shared I/O pool; concurrent
// queries missing on the same sub-shard share one disk load.
#ifndef NXGRAPH_SERVER_QUERY_RUNNER_H_
#define NXGRAPH_SERVER_QUERY_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "src/engine/options.h"
#include "src/engine/traversal.h"
#include "src/engine/vertex_program.h"
#include "src/io/prefetcher.h"
#include "src/prep/manifest.h"
#include "src/server/query.h"
#include "src/storage/graph_store.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"

namespace nxgraph {

/// \brief The shared server state one query executes against. All pointers
/// are borrowed from the GraphServer and outlive the query.
struct QueryContext {
  const GraphStore* store = nullptr;
  SubShardCache* cache = nullptr;
  ThreadPool* io_pool = nullptr;
  size_t prefetch_depth = 0;  ///< 0 = synchronous loads
  RetryPolicy retry;
  const std::vector<uint32_t>* out_degrees = nullptr;
  /// In-degrees; empty unless the store has a transpose.
  const std::vector<uint32_t>* in_degrees = nullptr;
  /// Consult per-blob source summaries (manifest v3) when planning rounds:
  /// sub-shards whose summary cannot intersect the query's frontier are
  /// skipped — not visited, not charged. Only effective for
  /// monotone-skippable programs on stores carrying summaries; results are
  /// bit-identical either way. Defaults to the NXGRAPH_SELECTIVE override.
  bool selective = DefaultSelectiveScheduling();
  /// Cooperative cancellation/deadline token (may be null). Observed at
  /// every checkpoint: round plan, each sub-shard consume, and round
  /// apply. On cancellation the round in flight is DISCARDED whole and the
  /// query returns the token's status with the deterministic partial
  /// result of the rounds that fully applied (equal to the same query run
  /// with its round cap at stats.iterations). The token also flows into
  /// the prefetch stream, cache gets, and retry backoffs this query issues.
  const CancelToken* cancel = nullptr;
  /// Live (round, i, j, phase) position, updated at every checkpoint with
  /// relaxed atomics (may be null). The server's stall watchdog reads it.
  QueryProgress* progress = nullptr;
  /// TEST HOOK: invoked at every checkpoint, before the cancellation
  /// check. Lets tests cancel at the k-th boundary deterministically or
  /// block a query to exercise the stall watchdog. Empty in production.
  std::function<void()> boundary_hook;
};

/// \brief Sparse traversal output: reached vertices (ascending id) and
/// their final values. Value must be equality-comparable — "reached" means
/// value != program.DefaultValue().
template <typename V>
struct SparseTraversalResult {
  std::vector<VertexId> vertices;
  std::vector<V> values;
  QueryStats stats;
};

/// \brief SSSP with a path-cost cap: contributions costlier than max_cost
/// are pruned, so capped vertices report unreachable. With the default cap
/// (+inf) this is exactly SsspProgram.
struct CostCappedSsspProgram {
  using Value = float;
  static constexpr Value kInfinity = std::numeric_limits<Value>::infinity();
  static constexpr bool kMonotoneSkippable = true;

  VertexId root = 0;
  float max_cost = kInfinity;

  Value Init(VertexId v, uint32_t) const { return v == root ? 0.0f : kInfinity; }
  static Value Identity() { return kInfinity; }
  Value Gather(const EdgeContext& e, const Value& src_value) const {
    if (src_value == kInfinity) return kInfinity;
    const float cost = src_value + e.weight;
    return cost > max_cost ? kInfinity : cost;
  }
  static Value Accumulate(const Value& a, const Value& b) {
    return a < b ? a : b;
  }
  Value Apply(VertexId, const Value& acc, const Value& old_value) const {
    return acc < old_value ? acc : old_value;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return old_value != new_value;
  }
  bool InitiallyActive(VertexId v) const { return v == root; }
  Value DefaultValue() const { return kInfinity; }
  std::vector<VertexId> SeedVertices() const { return {root}; }
};

namespace server_internal {

/// One planned sub-shard visit of a propagation round.
struct Visit {
  bool transpose;
  uint32_t i;
  uint32_t j;
};

/// Plans one round's visits in the fixed deterministic order (direction,
/// then i ascending, then j ascending), charging each non-empty sub-shard's
/// encoded size against the byte budget. Charging is independent of cache
/// residency, so the plan — including the truncation point — depends only
/// on the query. Returns false (and stops planning) once the budget cannot
/// fund the next sub-shard; in particular a first sub-shard larger than
/// the whole budget deterministically yields an empty plan (a point query
/// then returns its root-only partial result).
///
/// Rows iterate the manifest's per-row nonempty-column index instead of
/// rescanning all P² slots. When `frontier` is non-null (selective
/// scheduling), a blob whose source summary cannot intersect the frontier
/// is dropped BEFORE the budget check — skipped blobs are neither charged
/// nor visited, and an unreachable oversized blob cannot truncate the
/// query. Each skip increments *skipped.
inline bool PlanRound(const Manifest& m, const std::vector<uint8_t>& active,
                      bool skip_inactive, bool use_forward, bool use_transpose,
                      const std::vector<FrontierFilter>* frontier,
                      uint64_t budget, uint64_t* charged, uint64_t* skipped,
                      std::vector<Visit>* visits) {
  visits->clear();
  for (int dir = 0; dir < 2; ++dir) {
    const bool transpose = dir == 1;
    if (transpose ? !use_transpose : !use_forward) continue;
    for (uint32_t i = 0; i < m.num_intervals; ++i) {
      if (skip_inactive && !active[i]) continue;
      // Plans the blob at (i, j); returns false when the budget ran out.
      auto plan_one = [&](uint32_t j) {
        const SubShardMeta& meta = m.subshard(i, j, transpose);
        if (meta.num_edges == 0) return true;
        if (frontier != nullptr &&
            !(*frontier)[i].MayIntersect(meta.summary)) {
          ++*skipped;
          return true;
        }
        if (budget > 0 && *charged + meta.size > budget) return false;
        *charged += meta.size;
        visits->push_back({transpose, i, j});
        return true;
      };
      const std::vector<uint32_t>* cols = m.NonEmptyColumns(i, transpose);
      if (cols != nullptr) {
        for (uint32_t j : *cols) {
          if (!plan_one(j)) return false;
        }
      } else {
        for (uint32_t j = 0; j < m.num_intervals; ++j) {
          if (!plan_one(j)) return false;
        }
      }
    }
  }
  return true;
}

/// Per-interval frontier filters for one query, sized to the manifest's
/// summary layouts. Inert (MayIntersect always true) when the store has no
/// summaries.
inline std::vector<FrontierFilter> MakeQueryFrontier(const Manifest& m) {
  std::vector<FrontierFilter> frontier(m.num_intervals);
  for (uint32_t i = 0; i < m.num_intervals; ++i) {
    frontier[i].layout = m.summary_layout(i);
    frontier[i].ResetToAll();
  }
  return frontier;
}

/// Accumulates one sub-shard's contributions. `ensure_acc(j)` materializes
/// the destination interval's Identity-filled accumulator on the first
/// contribution that Changed from Identity (for monotone programs, whole
/// intervals that receive nothing never allocate).
template <VertexProgram Program, typename EnsureAcc>
void AccumulateSubShard(const Program& program, const SubShard& ss,
                        const typename Program::Value* src_vals,
                        VertexId src_base, VertexId dst_base,
                        const std::vector<uint32_t>& degrees,
                        std::vector<typename Program::Value>* acc,
                        EnsureAcc ensure_acc) {
  using Value = typename Program::Value;
  const bool weighted = !ss.weights.empty();
  for (size_t g = 0; g < ss.dsts.size(); ++g) {
    const VertexId dst = ss.dsts[g];
    Value a = Program::Identity();
    for (uint32_t k = ss.offsets[g]; k < ss.offsets[g + 1]; ++k) {
      const VertexId src = ss.srcs[k];
      const EdgeContext edge{src, dst, weighted ? ss.weights[k] : 1.0f,
                             degrees[src]};
      a = Program::Accumulate(a, program.Gather(edge, src_vals[src - src_base]));
    }
    if (!program.Changed(Program::Identity(), a)) continue;
    if (acc->empty()) ensure_acc();
    Value& slot = (*acc)[dst - dst_base];
    slot = Program::Accumulate(slot, a);
  }
}

/// One cooperative cancellation checkpoint: publish where the query is,
/// fire the test hook, observe the token. Returns true when the query must
/// unwind (the caller discards the round in flight and returns the token's
/// status with the completed-rounds partial result).
inline bool Checkpoint(const QueryContext& ctx, QueryPhase phase,
                       uint32_t round, uint32_t i, uint32_t j) {
  if (ctx.progress != nullptr) ctx.progress->Set(phase, round, i, j);
  if (ctx.boundary_hook) ctx.boundary_hook();
  return ctx.cancel != nullptr && ctx.cancel->cancelled();
}

inline Status TruncatedStatus(uint64_t budget) {
  return Status::ResourceExhausted(
      "io byte budget exhausted (" + std::to_string(budget) +
      " bytes); partial result returned");
}

/// Per-query decode accounting, shared with the load closures. Loads may
/// execute on the shared I/O pool rather than the query's worker thread,
/// so each closure folds its own thread's DecodeTallies delta in here —
/// the query is charged exactly the decodes its loads performed, wherever
/// they ran. Cache hits and waits on another query's in-flight load fold
/// zero.
struct QueryDecodeTally {
  std::atomic<uint64_t> calls{0};
  std::atomic<uint64_t> nanos{0};
};

/// Wraps one sub-shard load for PrefetchStream, folding the executing
/// thread's decode-tally delta into `tally`.
inline auto TalliedLoad(SubShardCache* cache, Visit v,
                        std::shared_ptr<QueryDecodeTally> tally,
                        const CancelToken* cancel = nullptr) {
  return [cache, v, tally = std::move(tally),
          cancel]() -> Result<SubShardCache::Pin> {
    const DecodeTallies before = ThreadDecodeTallies();
    Result<SubShardCache::Pin> r =
        cache->GetPinned(v.i, v.j, v.transpose, cancel);
    const DecodeTallies& after = ThreadDecodeTallies();
    tally->calls.fetch_add(after.bulk_decode_calls - before.bulk_decode_calls,
                           std::memory_order_relaxed);
    tally->nanos.fetch_add(after.decode_nanos - before.decode_nanos,
                           std::memory_order_relaxed);
    return r;
  };
}

/// Copies the accumulated decode tally into the query's stats (called on
/// every exit path, including load failures, so partial stats still report
/// the decode work done so far).
inline void SettleDecodeStats(const QueryContext& ctx,
                              const QueryDecodeTally& tally,
                              QueryStats* stats) {
  stats->decode_path = DecodePathName(ctx.store->decode_path());
  stats->bulk_decode_calls = tally.calls.load(std::memory_order_relaxed);
  stats->decode_seconds =
      static_cast<double>(tally.nanos.load(std::memory_order_relaxed)) / 1e9;
}

}  // namespace server_internal

/// \brief Runs a root-seeded point traversal (BFS / SSSP / k-hop) to
/// convergence, the hop cap, or budget exhaustion. Value state is lazy:
/// intervals the traversal never reaches are never allocated, and the
/// initial activity is O(|seeds|) (src/engine/traversal.h) — a point query
/// on a quiet corner of the graph touches a handful of intervals, not V.
///
/// Semantics are the engine's synchronous (Jacobi) model: one round
/// accumulates over all planned sub-shards from the previous round's
/// values, then applies. `max_rounds` caps propagation (BFS: every vertex
/// within max_rounds hops is final); <= 0 runs to convergence.
template <SeededProgram Program>
Outcome<SparseTraversalResult<typename Program::Value>> RunPointTraversal(
    const Program& program, const QueryContext& ctx, int max_rounds,
    uint64_t io_byte_budget) {
  using Value = typename Program::Value;
  Outcome<SparseTraversalResult<Value>> out;
  const Manifest& m = ctx.store->manifest();
  const uint32_t p = m.num_intervals;
  const std::vector<uint32_t>& degrees = *ctx.out_degrees;
  QueryStats& stats = out.result.stats;
  const auto decode_tally =
      std::make_shared<server_internal::QueryDecodeTally>();

  std::vector<uint8_t> active = InitialActivity(program, m);
  std::vector<std::vector<Value>> values(p);
  auto ensure_values = [&](uint32_t i) {
    if (values[i].empty()) InitIntervalValues(program, m, i, degrees, &values[i]);
  };
  // The seeds are part of the result even if the budget funds no I/O at
  // all (a zero-budget BFS still reports its root at hop 0).
  for (VertexId v : program.SeedVertices()) ensure_values(m.IntervalOf(v));

  // Selective scheduling: seeded traversals start from an EXACT frontier
  // (only the seeds differ from the default value), so round 1 already
  // skips every blob the seeds cannot contribute to.
  const bool selective =
      ctx.selective && Program::kMonotoneSkippable && m.has_summaries();
  std::vector<FrontierFilter> frontier;
  std::vector<FrontierFilter> next_frontier;
  if (selective) {
    frontier = server_internal::MakeQueryFrontier(m);
    next_frontier = server_internal::MakeQueryFrontier(m);
    for (uint32_t i = 0; i < p; ++i) frontier[i].ResetToEmpty();
    for (VertexId v : program.SeedVertices()) {
      frontier[m.IntervalOf(v)].Add(v);
    }
    stats.summary_bytes = m.TotalSummaryBytes();
  }

  bool truncated = false;
  bool cancelled = false;
  std::vector<server_internal::Visit> visits;
  for (int round = 1; max_rounds <= 0 || round <= max_rounds; ++round) {
    if (server_internal::Checkpoint(ctx, QueryPhase::kPlan,
                                    static_cast<uint32_t>(round), 0, 0)) {
      cancelled = true;  // values hold rounds 1..round-1; iterations agree
      break;
    }
    truncated = !server_internal::PlanRound(
        m, active, /*skip_inactive=*/Program::kMonotoneSkippable,
        /*use_forward=*/true, /*use_transpose=*/false,
        selective ? &frontier : nullptr, io_byte_budget,
        &stats.bytes_charged, &stats.subshards_skipped, &visits);
    if (visits.empty()) break;  // converged, or nothing left the budget funds
    stats.iterations = round;

    PrefetchStream<SubShardCache::Pin> pins(ctx.io_pool, nullptr,
                                            ctx.prefetch_depth, ctx.retry,
                                            nullptr, ctx.cancel);
    for (const auto& v : visits) {
      pins.Push(
          server_internal::TalliedLoad(ctx.cache, v, decode_tally, ctx.cancel));
    }
    std::vector<std::vector<Value>> acc(p);
    for (const auto& v : visits) {
      if (server_internal::Checkpoint(ctx, QueryPhase::kLoad,
                                      static_cast<uint32_t>(round), v.i, v.j)) {
        cancelled = true;
        break;
      }
      Result<SubShardCache::Pin> pin = pins.Next();
      if (!pin.ok()) {
        // A load that failed BECAUSE the token fired (cache detach, retry
        // abort, unissued prefetch slot) is a cancellation, not an error:
        // the completed rounds are still a valid deterministic result.
        if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
          cancelled = true;
          break;
        }
        out.status = pin.status();
        server_internal::SettleDecodeStats(ctx, *decode_tally, &stats);
        return out;
      }
      ++stats.subshards_visited;
      ensure_values(v.i);
      server_internal::AccumulateSubShard(
          program, **pin, values[v.i].data(), m.interval_begin(v.i),
          m.interval_begin(v.j), degrees, &acc[v.j],
          [&] { acc[v.j].assign(m.interval_size(v.j), Program::Identity()); });
    }
    // The round in flight is discarded WHOLE on cancellation (its
    // accumulators die here, unapplied; `pins` cancels queued loads and
    // drops every pin on destruction) so the surviving values are exactly
    // rounds 1..round-1 — the same contract as a round cap.
    if (!cancelled &&
        server_internal::Checkpoint(ctx, QueryPhase::kApply,
                                    static_cast<uint32_t>(round), 0, 0)) {
      cancelled = true;
    }
    if (cancelled) {
      stats.iterations = round - 1;
      break;
    }

    bool any_next = false;
    std::vector<uint8_t> next_active(p, 0);
    if (selective) {
      for (uint32_t i = 0; i < p; ++i) next_frontier[i].ResetToEmpty();
    }
    for (uint32_t j = 0; j < p; ++j) {
      if (acc[j].empty()) continue;
      ensure_values(j);
      const VertexId begin = m.interval_begin(j);
      bool changed = false;
      for (uint32_t k = 0; k < values[j].size(); ++k) {
        const Value old = values[j][k];
        const Value next = program.Apply(begin + k, acc[j][k], old);
        if (program.Changed(old, next)) {
          changed = true;
          if (selective) next_frontier[j].Add(begin + static_cast<VertexId>(k));
        }
        values[j][k] = next;
      }
      next_active[j] = changed ? 1 : 0;
      any_next = any_next || changed;
    }
    active.swap(next_active);
    if (selective) frontier.swap(next_frontier);
    if (truncated || !any_next) break;
  }

  stats.truncated = !cancelled && truncated;
  if (ctx.progress != nullptr) {
    ctx.progress->Set(QueryPhase::kCollect, 0, 0, 0);
  }
  const Value dflt = program.DefaultValue();
  for (uint32_t i = 0; i < p; ++i) {
    if (values[i].empty()) continue;
    const VertexId begin = m.interval_begin(i);
    for (uint32_t k = 0; k < values[i].size(); ++k) {
      if (values[i][k] == dflt) continue;
      out.result.vertices.push_back(begin + k);
      out.result.values.push_back(values[i][k]);
    }
  }
  if (cancelled) {
    stats.cancel_reason = ctx.cancel->reason();
    out.status = ctx.cancel->ToStatus();
  } else {
    out.status = truncated ? server_internal::TruncatedStatus(io_byte_budget)
                           : Status::OK();
  }
  server_internal::SettleDecodeStats(ctx, *decode_tally, &stats);
  return out;
}

/// \brief Runs a batch-analytics program (the Engine::Run workloads) over
/// the server's SHARED cache instead of a private engine stack — dense
/// per-query values, the same Jacobi rounds, and the same deterministic
/// order as RunPointTraversal. `max_iterations <= 0` runs until every
/// interval goes inactive.
template <VertexProgram Program>
Outcome<BatchResult<typename Program::Value>> RunBatchQuery(
    const Program& program, const QueryContext& ctx, EdgeDirection direction,
    int max_iterations, uint64_t io_byte_budget) {
  using Value = typename Program::Value;
  Outcome<BatchResult<Value>> out;
  const Manifest& m = ctx.store->manifest();
  const uint32_t p = m.num_intervals;
  const bool use_forward = direction != EdgeDirection::kTranspose;
  const bool use_transpose = direction != EdgeDirection::kForward;
  QueryStats& stats = out.result.stats;
  const auto decode_tally =
      std::make_shared<server_internal::QueryDecodeTally>();

  if (use_transpose && !ctx.store->has_transpose()) {
    out.status = Status::InvalidArgument(
        "batch query needs transpose edges but the store has none");
    return out;
  }
  const std::vector<uint32_t>& fwd_degrees = *ctx.out_degrees;
  const std::vector<uint32_t>& t_degrees =
      use_transpose ? *ctx.in_degrees : *ctx.out_degrees;

  std::vector<uint8_t> active(p, 0);
  std::vector<std::vector<Value>> values(p);
  for (uint32_t i = 0; i < p; ++i) {
    active[i] =
        InitIntervalValues(program, m, i, fwd_degrees, &values[i]) ? 1 : 0;
  }

  // Dense-init programs start all-pass (every vertex may differ from the
  // default); the frontier tightens to the changed set after iteration 1 —
  // WCC on a mostly-converged graph skips the quiet blobs from then on.
  const bool selective =
      ctx.selective && Program::kMonotoneSkippable && m.has_summaries();
  std::vector<FrontierFilter> frontier;
  std::vector<FrontierFilter> next_frontier;
  if (selective) {
    frontier = server_internal::MakeQueryFrontier(m);
    next_frontier = server_internal::MakeQueryFrontier(m);
    stats.summary_bytes = m.TotalSummaryBytes();
  }

  bool truncated = false;
  bool cancelled = false;
  std::vector<server_internal::Visit> visits;
  for (int iter = 1; max_iterations <= 0 || iter <= max_iterations; ++iter) {
    bool any_active = false;
    for (uint32_t i = 0; i < p; ++i) any_active = any_active || active[i];
    if (!any_active) break;

    if (server_internal::Checkpoint(ctx, QueryPhase::kPlan,
                                    static_cast<uint32_t>(iter), 0, 0)) {
      cancelled = true;
      break;
    }
    truncated = !server_internal::PlanRound(
        m, active, /*skip_inactive=*/Program::kMonotoneSkippable, use_forward,
        use_transpose, selective ? &frontier : nullptr, io_byte_budget,
        &stats.bytes_charged, &stats.subshards_skipped, &visits);
    if (visits.empty()) break;
    stats.iterations = iter;

    PrefetchStream<SubShardCache::Pin> pins(ctx.io_pool, nullptr,
                                            ctx.prefetch_depth, ctx.retry,
                                            nullptr, ctx.cancel);
    for (const auto& v : visits) {
      pins.Push(
          server_internal::TalliedLoad(ctx.cache, v, decode_tally, ctx.cancel));
    }
    // Dense accumulators: non-monotone programs (PageRank) need Apply on
    // every vertex each iteration, contributions or not.
    std::vector<std::vector<Value>> acc(p);
    for (uint32_t j = 0; j < p; ++j) {
      acc[j].assign(m.interval_size(j), Program::Identity());
    }
    for (const auto& v : visits) {
      if (server_internal::Checkpoint(ctx, QueryPhase::kLoad,
                                      static_cast<uint32_t>(iter), v.i, v.j)) {
        cancelled = true;
        break;
      }
      Result<SubShardCache::Pin> pin = pins.Next();
      if (!pin.ok()) {
        if (ctx.cancel != nullptr && ctx.cancel->cancelled()) {
          cancelled = true;
          break;
        }
        out.status = pin.status();
        server_internal::SettleDecodeStats(ctx, *decode_tally, &stats);
        return out;
      }
      ++stats.subshards_visited;
      server_internal::AccumulateSubShard(
          program, **pin, values[v.i].data(), m.interval_begin(v.i),
          m.interval_begin(v.j), v.transpose ? t_degrees : fwd_degrees,
          &acc[v.j], [] {});
    }
    // As in RunPointTraversal: a cancelled iteration is discarded whole, so
    // the surviving values equal a run capped at iter-1 iterations.
    if (!cancelled &&
        server_internal::Checkpoint(ctx, QueryPhase::kApply,
                                    static_cast<uint32_t>(iter), 0, 0)) {
      cancelled = true;
    }
    if (cancelled) {
      stats.iterations = iter - 1;
      break;
    }

    bool any_next = false;
    if (selective) {
      for (uint32_t i = 0; i < p; ++i) next_frontier[i].ResetToEmpty();
    }
    for (uint32_t j = 0; j < p; ++j) {
      const VertexId begin = m.interval_begin(j);
      bool changed = false;
      for (uint32_t k = 0; k < values[j].size(); ++k) {
        const Value old = values[j][k];
        const Value next = program.Apply(begin + k, acc[j][k], old);
        if (program.Changed(old, next)) {
          changed = true;
          if (selective) next_frontier[j].Add(begin + static_cast<VertexId>(k));
        }
        values[j][k] = next;
      }
      active[j] = changed ? 1 : 0;
      any_next = any_next || changed;
    }
    if (selective) frontier.swap(next_frontier);
    if (truncated || !any_next) break;
  }

  stats.truncated = !cancelled && truncated;
  if (ctx.progress != nullptr) {
    ctx.progress->Set(QueryPhase::kCollect, 0, 0, 0);
  }
  out.result.values.reserve(m.num_vertices);
  for (uint32_t i = 0; i < p; ++i) {
    out.result.values.insert(out.result.values.end(), values[i].begin(),
                             values[i].end());
  }
  if (cancelled) {
    stats.cancel_reason = ctx.cancel->reason();
    out.status = ctx.cancel->ToStatus();
  } else {
    out.status = truncated ? server_internal::TruncatedStatus(io_byte_budget)
                           : Status::OK();
  }
  server_internal::SettleDecodeStats(ctx, *decode_tally, &stats);
  return out;
}

}  // namespace nxgraph

#endif  // NXGRAPH_SERVER_QUERY_RUNNER_H_
