#include "src/server/graph_server.h"

#include <algorithm>
#include <cmath>

#include "src/algos/programs.h"
#include "src/util/logging.h"

namespace nxgraph {

const char* QueryPhaseName(QueryPhase phase) {
  switch (phase) {
    case QueryPhase::kQueued:
      return "queued";
    case QueryPhase::kPlan:
      return "plan";
    case QueryPhase::kLoad:
      return "load";
    case QueryPhase::kApply:
      return "apply";
    case QueryPhase::kCollect:
      return "collect";
  }
  return "unknown";
}

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

Outcome<PointResult> ExecutePoint(const PointQuery& query,
                                  const QueryContext& ctx) {
  Outcome<PointResult> out;
  if (query.kind == QueryKind::kSssp) {
    CostCappedSsspProgram program;
    program.root = query.root;
    if (query.limits.max_cost > 0) program.max_cost = query.limits.max_cost;
    auto r = RunPointTraversal(program, ctx, query.limits.max_hops,
                               query.limits.io_byte_budget);
    out.status = std::move(r.status);
    out.result.stats = r.result.stats;
    out.result.vertices = std::move(r.result.vertices);
    out.result.costs = std::move(r.result.values);
  } else {  // kBfs and kKHop: k-hop is BFS with the hop cap as the radius
    BfsProgram program;
    program.root = query.root;
    auto r = RunPointTraversal(program, ctx, query.limits.max_hops,
                               query.limits.io_byte_budget);
    out.status = std::move(r.status);
    out.result.stats = r.result.stats;
    out.result.vertices = std::move(r.result.vertices);
    out.result.hops = std::move(r.result.values);
  }
  return out;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Result<std::unique_ptr<GraphServer>> GraphServer::Open(Env* env,
                                                       const std::string& dir,
                                                       const Options& options) {
  Options opts = options;
  if (opts.num_workers < 1) opts.num_workers = 1;
  if (opts.max_queue < 0) opts.max_queue = 0;
  if (opts.prefetch_depth > 0 && opts.io_threads < 1) opts.io_threads = 1;
  if (opts.io_threads < 0) opts.io_threads = 0;

  std::unique_ptr<GraphServer> server(new GraphServer(env, opts));
  NX_ASSIGN_OR_RETURN(server->store_, GraphStore::Open(env, dir));
  server->store_->SetSimdDecode(opts.simd_decode);
  server->cache_ = std::make_unique<SubShardCache>(
      server->store_, opts.cache_budget_bytes, /*evictable=*/true);
  server->io_pool_ = std::make_unique<ThreadPool>(opts.io_threads);
  NX_ASSIGN_OR_RETURN(server->out_degrees_, server->store_->LoadOutDegrees());
  if (server->store_->has_transpose()) {
    NX_ASSIGN_OR_RETURN(server->in_degrees_, server->store_->LoadInDegrees());
  }
  server->started_ = std::chrono::steady_clock::now();
  server->workers_.reserve(opts.num_workers);
  for (int w = 0; w < opts.num_workers; ++w) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  if (opts.watchdog_interval_seconds > 0) {
    server->watchdog_ = std::thread([s = server.get()] { s->WatchdogLoop(); });
  }
  return server;
}

GraphServer::GraphServer(Env* env, Options options)
    : env_(env), options_(std::move(options)), paused_(options_.start_paused) {}

GraphServer::~GraphServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  for (std::thread& w : workers_) w.join();
  std::deque<Ticket> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
    live_.clear();
  }
  for (Ticket& t : leftover) {
    t.abort(Status::Aborted("GraphServer shutting down"));
  }
}

QueryContext GraphServer::MakeContext(LiveQuery* lq) const {
  QueryContext ctx;
  ctx.store = store_.get();
  ctx.cache = cache_.get();
  ctx.io_pool = io_pool_.get();
  ctx.prefetch_depth = static_cast<size_t>(options_.prefetch_depth);
  ctx.retry = options_.retry;
  ctx.out_degrees = &out_degrees_;
  ctx.in_degrees = &in_degrees_;
  ctx.selective = options_.selective;
  ctx.cancel = &lq->token;
  ctx.progress = &lq->progress;
  ctx.boundary_hook = options_.boundary_hook;
  return ctx;
}

std::shared_ptr<GraphServer::LiveQuery> GraphServer::NewLiveQuery(
    std::chrono::milliseconds deadline) {
  auto lq = std::make_shared<LiveQuery>();
  lq->submitted = std::chrono::steady_clock::now();
  lq->deadline = deadline;
  lq->token = deadline.count() > 0 ? drain_token_.Child(lq->submitted + deadline)
                                   : drain_token_.Child();
  {
    std::lock_guard<std::mutex> lock(mu_);
    lq->id = next_query_id_++;
  }
  return lq;
}

void GraphServer::EnqueueTicket(std::shared_ptr<LiveQuery> lq,
                                std::function<void(double)> run,
                                std::function<void(Status)> abort) {
  Ticket ticket;
  ticket.lq = lq;
  ticket.run = std::move(run);
  ticket.abort = std::move(abort);

  Status reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    if (stopping_) {
      reject = Status::Aborted("GraphServer shutting down");
    } else if (draining_) {
      reject = Status::Aborted("GraphServer draining; admission closed");
    } else if (queue_.size() >= static_cast<size_t>(options_.max_queue)) {
      ++rejected_;
      reject = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " waiting queries)");
    } else {
      live_.emplace(lq->id, lq);
      queue_.push_back(std::move(ticket));
    }
  }
  if (!reject.ok()) {
    ticket.abort(std::move(reject));
    return;
  }
  cv_.notify_one();
}

void GraphServer::WorkerLoop() {
  for (;;) {
    Ticket ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (stopping_) return;
      ticket = std::move(queue_.front());
      queue_.pop_front();
      // A token that fired while the query was still QUEUED: classify by
      // reason and complete without ever running. (cancelled() lazily
      // fires the deadline, replacing the old wall-clock dequeue check.)
      if (ticket.lq->token.cancelled()) {
        Status s = ticket.lq->token.ToStatus();
        switch (ticket.lq->token.reason()) {
          case CancelReason::kDeadline:
            ++shed_;
            s = Status::DeadlineExceeded(
                "deadline passed before a worker was free");
            break;
          case CancelReason::kClient:
            ++cancelled_;
            break;
          case CancelReason::kShutdown:
            ++drain_cancelled_;
            break;
          case CancelReason::kNone:
            break;
        }
        live_.erase(ticket.lq->id);
        const bool idle = queue_.empty() && running_ == 0;
        lock.unlock();
        if (idle) drained_cv_.notify_all();
        ticket.abort(std::move(s));
        continue;
      }
      ++running_;
      ticket.lq->running = true;
    }
    ticket.run(SecondsSince(ticket.lq->submitted));
    bool idle;
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
      idle = queue_.empty() && running_ == 0;
    }
    if (idle) drained_cv_.notify_all();
  }
}

void GraphServer::FinishQuery(const std::shared_ptr<LiveQuery>& lq,
                              const Status& status, const QueryStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok() || (status.IsResourceExhausted() && stats.truncated)) {
    ++completed_;
    if (stats.truncated) ++truncated_;
  } else {
    switch (stats.cancel_reason) {
      case CancelReason::kClient:
        ++cancelled_;
        break;
      case CancelReason::kDeadline:
        ++deadline_cancelled_;
        break;
      case CancelReason::kShutdown:
        ++drain_cancelled_;
        break;
      case CancelReason::kNone:
        ++failed_;
        break;
    }
  }
  latencies_ms_.push_back((stats.queue_seconds + stats.run_seconds) * 1e3);
  live_.erase(lq->id);
}

QueryFuture<PointResult> GraphServer::Submit(const PointQuery& query) {
  QueryFuture<PointResult> future;
  if (query.root >= store_->num_vertices()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++submitted_;
      ++failed_;
    }
    future.Complete({Status::InvalidArgument(
                         "query root " + std::to_string(query.root) +
                         " out of range (" +
                         std::to_string(store_->num_vertices()) + " vertices)"),
                     {}});
    return future;
  }
  std::shared_ptr<LiveQuery> lq = NewLiveQuery(query.limits.deadline);
  future.SetId(lq->id);
  EnqueueTicket(
      lq,
      [this, query, lq, future](double queue_seconds) {
        const auto start = std::chrono::steady_clock::now();
        Outcome<PointResult> out = ExecutePoint(query, MakeContext(lq.get()));
        out.result.stats.queue_seconds = queue_seconds;
        out.result.stats.run_seconds = SecondsSince(start);
        FinishQuery(lq, out.status, out.result.stats);
        future.Complete(std::move(out));
      },
      [future](Status s) { future.Complete({std::move(s), {}}); });
  return future;
}

bool GraphServer::Cancel(uint64_t query_id) {
  std::shared_ptr<LiveQuery> lq;
  std::function<void(Status)> abort;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = live_.find(query_id);
    if (it == live_.end()) return false;
    lq = it->second;
    // If the query is still queued, pull its ticket out so a worker never
    // sees it; classify the cancel right here.
    for (auto qit = queue_.begin(); qit != queue_.end(); ++qit) {
      if (qit->lq->id == query_id) {
        abort = std::move(qit->abort);
        queue_.erase(qit);
        ++cancelled_;
        live_.erase(query_id);
        break;
      }
    }
  }
  // Fire the token outside mu_: its callbacks (single-flight waiter wakeups)
  // take unrelated locks and must not nest under the server lock.
  lq->token.Cancel(CancelReason::kClient);
  if (abort) {
    abort(Status::Cancelled("cancelled by client"));
    bool idle;
    {
      std::lock_guard<std::mutex> lock(mu_);
      idle = queue_.empty() && running_ == 0;
    }
    if (idle) drained_cv_.notify_all();
  }
  return true;
}

Status GraphServer::Drain(std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
    paused_ = false;  // a paused queue would never drain
  }
  cv_.notify_all();

  const auto soft_deadline = start + timeout;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (drained_cv_.wait_until(lock, soft_deadline, [&] {
          return queue_.empty() && running_ == 0;
        })) {
      return Status::OK();
    }
  }

  // Grace period expired: cancel every straggler via the drain token and
  // wait again. Running queries observe the token at their next sub-shard
  // boundary, so this should resolve within roughly one sub-shard load; the
  // hard cap below only trips if a query is truly wedged.
  drain_token_.Cancel(CancelReason::kShutdown);
  const auto hard_deadline =
      std::chrono::steady_clock::now() + timeout + std::chrono::seconds(30);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (drained_cv_.wait_until(lock, hard_deadline, [&] {
          return queue_.empty() && running_ == 0;
        })) {
      return Status::OK();
    }
  }
  return Status::DeadlineExceeded(
      "queries still running after drain cancellation");
}

void GraphServer::WatchdogLoop() {
  const auto interval = std::chrono::duration<double>(
      options_.watchdog_interval_seconds);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, interval, [&] { return stopping_; });
    if (stopping_) return;
    const auto now = std::chrono::steady_clock::now();
    for (auto& [id, lq] : live_) {
      if (!lq->running || lq->stall_flagged || lq->deadline.count() <= 0) {
        continue;
      }
      const auto budget = std::chrono::duration_cast<
          std::chrono::steady_clock::duration>(
          lq->deadline * options_.stall_multiplier);
      if (now - lq->submitted <= budget) continue;
      lq->stall_flagged = true;
      ++stalled_;
      const auto phase =
          static_cast<QueryPhase>(lq->progress.phase.load(std::memory_order_relaxed));
      NX_LOG(Warn) << "stalled query " << id << ": running "
                   << std::chrono::duration<double>(now - lq->submitted).count()
                   << "s against a "
                   << std::chrono::duration<double>(lq->deadline).count()
                   << "s deadline; phase=" << QueryPhaseName(phase)
                   << " round=" << lq->progress.round.load(std::memory_order_relaxed)
                   << " blob=(" << lq->progress.i.load(std::memory_order_relaxed)
                   << "," << lq->progress.j.load(std::memory_order_relaxed) << ")";
    }
  }
}

void GraphServer::SetPaused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

GraphServer::Stats GraphServer::stats() const {
  Stats s;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.truncated = truncated_;
    s.rejected = rejected_;
    s.shed = shed_;
    s.failed = failed_;
    s.cancelled = cancelled_;
    s.deadline_cancelled = deadline_cancelled_;
    s.drain_cancelled = drain_cancelled_;
    s.stalled = stalled_;
    s.draining = draining_;
    s.queued = queue_.size();
    s.running = running_;
    for (const auto& [id, lq] : live_) {
      if (!lq->stall_flagged) continue;
      StalledQuery sq;
      sq.id = id;
      sq.running_seconds = SecondsSince(lq->submitted);
      sq.phase = static_cast<QueryPhase>(
          lq->progress.phase.load(std::memory_order_relaxed));
      sq.round = lq->progress.round.load(std::memory_order_relaxed);
      sq.i = lq->progress.i.load(std::memory_order_relaxed);
      sq.j = lq->progress.j.load(std::memory_order_relaxed);
      s.stalled_queries.push_back(sq);
    }
    sorted = latencies_ms_;
  }
  s.uptime_seconds = SecondsSince(started_);
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = Percentile(sorted, 0.50);
  s.p95_ms = Percentile(sorted, 0.95);
  s.p99_ms = Percentile(sorted, 0.99);
  s.cache = cache_->counters();
  s.cache_bytes_cached = cache_->bytes_cached();
  const double lookups = static_cast<double>(s.cache.hits + s.cache.misses);
  s.cache_hit_rate = lookups > 0 ? static_cast<double>(s.cache.hits) / lookups : 0;
  s.decode_path = DecodePathName(store_->decode_path());
  s.bulk_decode_calls = store_->bulk_decode_calls();
  s.decode_seconds = static_cast<double>(store_->decode_nanos()) / 1e9;
  return s;
}

}  // namespace nxgraph
