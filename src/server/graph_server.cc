#include "src/server/graph_server.h"

#include <algorithm>
#include <cmath>

#include "src/algos/programs.h"

namespace nxgraph {

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

double SecondsSince(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

Outcome<PointResult> ExecutePoint(const PointQuery& query,
                                  const QueryContext& ctx) {
  Outcome<PointResult> out;
  if (query.kind == QueryKind::kSssp) {
    CostCappedSsspProgram program;
    program.root = query.root;
    if (query.limits.max_cost > 0) program.max_cost = query.limits.max_cost;
    auto r = RunPointTraversal(program, ctx, query.limits.max_hops,
                               query.limits.io_byte_budget);
    out.status = std::move(r.status);
    out.result.stats = r.result.stats;
    out.result.vertices = std::move(r.result.vertices);
    out.result.costs = std::move(r.result.values);
  } else {  // kBfs and kKHop: k-hop is BFS with the hop cap as the radius
    BfsProgram program;
    program.root = query.root;
    auto r = RunPointTraversal(program, ctx, query.limits.max_hops,
                               query.limits.io_byte_budget);
    out.status = std::move(r.status);
    out.result.stats = r.result.stats;
    out.result.vertices = std::move(r.result.vertices);
    out.result.hops = std::move(r.result.values);
  }
  return out;
}

double Percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t idx = static_cast<size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

}  // namespace

Result<std::unique_ptr<GraphServer>> GraphServer::Open(Env* env,
                                                       const std::string& dir,
                                                       const Options& options) {
  Options opts = options;
  if (opts.num_workers < 1) opts.num_workers = 1;
  if (opts.max_queue < 0) opts.max_queue = 0;
  if (opts.prefetch_depth > 0 && opts.io_threads < 1) opts.io_threads = 1;
  if (opts.io_threads < 0) opts.io_threads = 0;

  std::unique_ptr<GraphServer> server(new GraphServer(env, opts));
  NX_ASSIGN_OR_RETURN(server->store_, GraphStore::Open(env, dir));
  server->store_->SetSimdDecode(opts.simd_decode);
  server->cache_ = std::make_unique<SubShardCache>(
      server->store_, opts.cache_budget_bytes, /*evictable=*/true);
  server->io_pool_ = std::make_unique<ThreadPool>(opts.io_threads);
  NX_ASSIGN_OR_RETURN(server->out_degrees_, server->store_->LoadOutDegrees());
  if (server->store_->has_transpose()) {
    NX_ASSIGN_OR_RETURN(server->in_degrees_, server->store_->LoadInDegrees());
  }
  server->started_ = std::chrono::steady_clock::now();
  server->workers_.reserve(opts.num_workers);
  for (int w = 0; w < opts.num_workers; ++w) {
    server->workers_.emplace_back([s = server.get()] { s->WorkerLoop(); });
  }
  return server;
}

GraphServer::GraphServer(Env* env, Options options)
    : env_(env), options_(std::move(options)), paused_(options_.start_paused) {}

GraphServer::~GraphServer() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  std::deque<Ticket> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(queue_);
  }
  for (Ticket& t : leftover) {
    t.abort(Status::Aborted("GraphServer shutting down"));
  }
}

QueryContext GraphServer::MakeContext() const {
  QueryContext ctx;
  ctx.store = store_.get();
  ctx.cache = cache_.get();
  ctx.io_pool = io_pool_.get();
  ctx.prefetch_depth = static_cast<size_t>(options_.prefetch_depth);
  ctx.retry = options_.retry;
  ctx.out_degrees = &out_degrees_;
  ctx.in_degrees = &in_degrees_;
  ctx.selective = options_.selective;
  return ctx;
}

void GraphServer::EnqueueTicket(std::chrono::milliseconds queue_deadline,
                                std::function<void(double)> run,
                                std::function<void(Status)> abort) {
  Ticket ticket;
  ticket.submitted = std::chrono::steady_clock::now();
  ticket.deadline = queue_deadline.count() > 0 ? ticket.submitted + queue_deadline
                                               : kNoDeadline;
  ticket.run = std::move(run);
  ticket.abort = std::move(abort);

  Status reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++submitted_;
    if (stopping_) {
      reject = Status::Aborted("GraphServer shutting down");
    } else if (queue_.size() >= static_cast<size_t>(options_.max_queue)) {
      ++rejected_;
      reject = Status::ResourceExhausted(
          "admission queue full (" + std::to_string(options_.max_queue) +
          " waiting queries)");
    } else {
      queue_.push_back(std::move(ticket));
    }
  }
  if (!reject.ok()) {
    ticket.abort(std::move(reject));
    return;
  }
  cv_.notify_one();
}

void GraphServer::WorkerLoop() {
  for (;;) {
    Ticket ticket;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || (!paused_ && !queue_.empty()); });
      if (stopping_) return;
      ticket = std::move(queue_.front());
      queue_.pop_front();
      if (std::chrono::steady_clock::now() > ticket.deadline) {
        ++shed_;
        lock.unlock();
        ticket.abort(Status::DeadlineExceeded(
            "queue deadline passed before a worker was free"));
        continue;
      }
      ++running_;
    }
    ticket.run(SecondsSince(ticket.submitted));
    {
      std::lock_guard<std::mutex> lock(mu_);
      --running_;
    }
  }
}

void GraphServer::FinishQuery(const Status& status, const QueryStats& stats) {
  std::lock_guard<std::mutex> lock(mu_);
  if (status.ok() || (status.IsResourceExhausted() && stats.truncated)) {
    ++completed_;
    if (stats.truncated) ++truncated_;
  } else {
    ++failed_;
  }
  latencies_ms_.push_back((stats.queue_seconds + stats.run_seconds) * 1e3);
}

QueryFuture<PointResult> GraphServer::Submit(const PointQuery& query) {
  QueryFuture<PointResult> future;
  if (query.root >= store_->num_vertices()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++submitted_;
      ++failed_;
    }
    future.Complete({Status::InvalidArgument(
                         "query root " + std::to_string(query.root) +
                         " out of range (" +
                         std::to_string(store_->num_vertices()) + " vertices)"),
                     {}});
    return future;
  }
  EnqueueTicket(
      query.limits.queue_deadline,
      [this, query, future](double queue_seconds) {
        const auto start = std::chrono::steady_clock::now();
        Outcome<PointResult> out = ExecutePoint(query, MakeContext());
        out.result.stats.queue_seconds = queue_seconds;
        out.result.stats.run_seconds = SecondsSince(start);
        FinishQuery(out.status, out.result.stats);
        future.Complete(std::move(out));
      },
      [future](Status s) { future.Complete({std::move(s), {}}); });
  return future;
}

void GraphServer::SetPaused(bool paused) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
  }
  cv_.notify_all();
}

GraphServer::Stats GraphServer::stats() const {
  Stats s;
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.submitted = submitted_;
    s.completed = completed_;
    s.truncated = truncated_;
    s.rejected = rejected_;
    s.shed = shed_;
    s.failed = failed_;
    s.queued = queue_.size();
    s.running = running_;
    sorted = latencies_ms_;
  }
  s.uptime_seconds = SecondsSince(started_);
  s.qps = s.uptime_seconds > 0
              ? static_cast<double>(s.completed) / s.uptime_seconds
              : 0;
  std::sort(sorted.begin(), sorted.end());
  s.p50_ms = Percentile(sorted, 0.50);
  s.p95_ms = Percentile(sorted, 0.95);
  s.p99_ms = Percentile(sorted, 0.99);
  s.cache = cache_->counters();
  s.cache_bytes_cached = cache_->bytes_cached();
  const double lookups = static_cast<double>(s.cache.hits + s.cache.misses);
  s.cache_hit_rate = lookups > 0 ? static_cast<double>(s.cache.hits) / lookups : 0;
  s.decode_path = DecodePathName(store_->decode_path());
  s.bulk_decode_calls = store_->bulk_decode_calls();
  s.decode_seconds = static_cast<double>(store_->decode_nanos()) / 1e9;
  return s;
}

}  // namespace nxgraph
