// Deterministic synthetic graph generators. These are the offline stand-ins
// for the paper's real-world datasets (see DESIGN.md, "Substitutions").
#ifndef NXGRAPH_GRAPH_GENERATORS_H_
#define NXGRAPH_GRAPH_GENERATORS_H_

#include <cstdint>

#include "src/graph/edge_list.h"

namespace nxgraph {

/// \brief Recursive-matrix (R-MAT) generator parameters.
///
/// Defaults (a,b,c)= (0.57,0.19,0.19) are the Graph500 values, producing the
/// skewed in/out-degree distributions characteristic of social and web
/// graphs such as Twitter and Yahoo-web.
struct RmatOptions {
  uint32_t scale = 16;          ///< num_vertices = 2^scale
  double edge_factor = 16.0;    ///< num_edges = edge_factor * num_vertices
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  uint64_t seed = 1;
  bool with_weights = false;    ///< uniform (0,1] weights when set
};

/// Generates an R-MAT graph (may contain duplicate edges and self-loops,
/// like real crawls; the preprocessing pipeline tolerates both).
EdgeList GenerateRmat(const RmatOptions& options);

/// Generates a uniform G(n, m) Erdős–Rényi multigraph.
EdgeList GenerateErdosRenyi(uint64_t num_vertices, uint64_t num_edges,
                            uint64_t seed);

/// \brief Zipf/power-law out-degree graph: vertex out-degrees follow a
/// discrete power law with the given exponent; destinations are chosen by
/// preferential attachment over a shuffled id space.
struct PowerLawOptions {
  uint64_t num_vertices = 1 << 16;
  double avg_degree = 10.0;
  double exponent = 2.0;
  uint32_t max_degree = 1 << 20;
  uint64_t seed = 1;
};
EdgeList GeneratePowerLaw(const PowerLawOptions& options);

/// \brief Delaunay-like planar graph: n uniform random points in the unit
/// square, each connected to its k nearest neighbours found via a uniform
/// grid, then symmetrized.
///
/// With k=3 the average directed degree is ~6, matching the DIMACS
/// delaunay_n* family used in the paper's Fig. 11 (e.g. delaunay_n20:
/// 1.05M vertices, 6.29M directed edges).
struct DelaunayLikeOptions {
  uint64_t num_points = 1 << 16;
  uint32_t neighbors = 3;
  uint64_t seed = 1;
};
EdgeList GenerateDelaunayLike(const DelaunayLikeOptions& options);

}  // namespace nxgraph

#endif  // NXGRAPH_GRAPH_GENERATORS_H_
