#include "src/graph/datasets.h"

#include <cmath>

#include "src/graph/generators.h"

namespace nxgraph {

namespace {

// log2 of a scale divisor, rounded to nearest power of two.
uint32_t Log2Divisor(uint64_t divisor) {
  uint32_t bits = 0;
  while ((1ULL << (bits + 1)) <= divisor) ++bits;
  return bits;
}

}  // namespace

std::vector<DatasetInfo> ListDatasets() {
  return {
      {"live-journal-sim", "Live-journal", 4'850'000, 69'000'000,
       "R-MAT scale 23/div, edge factor 14.2"},
      {"twitter-sim", "Twitter", 41'700'000, 1'470'000'000,
       "R-MAT scale 25/div, edge factor 35.3"},
      {"yahoo-web-sim", "Yahoo-web", 720'000'000, 6'640'000'000,
       "R-MAT scale 30/div, edge factor 9.2"},
      {"delaunay_n20", "delaunay_n20", 1'048'576, 6'291'456,
       "grid 3-NN planar, n=2^20/div"},
      {"delaunay_n21", "delaunay_n21", 2'097'152, 12'582'912,
       "grid 3-NN planar, n=2^21/div"},
      {"delaunay_n22", "delaunay_n22", 4'194'304, 25'165'824,
       "grid 3-NN planar, n=2^22/div"},
      {"delaunay_n23", "delaunay_n23", 8'388'608, 50'331'648,
       "grid 3-NN planar, n=2^23/div"},
      {"delaunay_n24", "delaunay_n24", 16'777'216, 101'000'000,
       "grid 3-NN planar, n=2^24/div"},
  };
}

Result<EdgeList> MakeDataset(const std::string& name, uint64_t scale_divisor,
                             uint64_t seed) {
  if (scale_divisor == 0) {
    return Status::InvalidArgument("scale_divisor must be >= 1");
  }
  const uint32_t shift = Log2Divisor(scale_divisor);

  auto rmat = [&](uint32_t paper_scale, double edge_factor,
                  double a) -> EdgeList {
    RmatOptions opt;
    opt.scale = paper_scale > shift ? paper_scale - shift : 10;
    opt.edge_factor = edge_factor;
    opt.a = a;
    opt.b = opt.c = (1.0 - a) / 3.0;
    opt.seed = seed;
    return GenerateRmat(opt);
  };

  // The paper-scale parameters approximate each dataset's density
  // (edges/vertex) and skew; `a` controls degree skew (higher => heavier
  // tail, web graphs are more skewed than social graphs).
  if (name == "live-journal-sim") {
    // 4.85M vertices, 69M edges => ~14 edges/vertex, moderate skew.
    return rmat(23, 14.2, 0.55);
  }
  if (name == "twitter-sim") {
    // 41.7M vertices, 1.47B edges => ~35 edges/vertex, strong skew.
    return rmat(25, 35.3, 0.57);
  }
  if (name == "yahoo-web-sim") {
    // 720M vertices, 6.64B edges => ~9 edges/vertex, very strong skew.
    return rmat(30, 9.2, 0.62);
  }
  for (uint32_t s = 20; s <= 24; ++s) {
    if (name == "delaunay_n" + std::to_string(s)) {
      DelaunayLikeOptions opt;
      const uint32_t eff = s > shift ? s - shift : 8;
      opt.num_points = 1ULL << eff;
      opt.neighbors = 3;
      opt.seed = seed;
      return GenerateDelaunayLike(opt);
    }
  }
  return Status::InvalidArgument("unknown dataset: " + name);
}

}  // namespace nxgraph
