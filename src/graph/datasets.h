// Registry of the synthetic datasets standing in for the paper's benchmarks
// (Table III). Each dataset is generated deterministically and scaled by a
// configurable factor so benches run at laptop size by default.
#ifndef NXGRAPH_GRAPH_DATASETS_H_
#define NXGRAPH_GRAPH_DATASETS_H_

#include <string>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Description of one synthetic stand-in dataset.
struct DatasetInfo {
  std::string name;           ///< e.g. "twitter-sim"
  std::string paper_name;     ///< e.g. "Twitter"
  uint64_t paper_vertices;    ///< paper-reported vertex count
  uint64_t paper_edges;       ///< paper-reported edge count
  std::string generator;      ///< human-readable generator description
};

/// All registered datasets, in Table III order.
std::vector<DatasetInfo> ListDatasets();

/// \brief Generates a registered dataset.
///
/// `scale_divisor` divides the paper-scale vertex count; the default 64
/// keeps the largest graph (yahoo-sim) around a few million edges. Returns
/// InvalidArgument for unknown names. Recognized names:
///   live-journal-sim, twitter-sim, yahoo-web-sim,
///   delaunay_n20 .. delaunay_n24 (also scaled by scale_divisor).
Result<EdgeList> MakeDataset(const std::string& name,
                             uint64_t scale_divisor = 64, uint64_t seed = 42);

}  // namespace nxgraph

#endif  // NXGRAPH_GRAPH_DATASETS_H_
