// Binary edge-file format ("pre-shard"): the degreer's output and the
// sharder's input. Stores edges in dense-id space with optional weights.
#ifndef NXGRAPH_GRAPH_BINARY_IO_H_
#define NXGRAPH_GRAPH_BINARY_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/graph/types.h"
#include "src/io/env.h"
#include "src/util/result.h"

namespace nxgraph {

// Layout: header (magic, version, flags, num_edges, header crc), then
// num_edges records of {src u32, dst u32, [weight f32]}.
inline constexpr uint32_t kEdgeFileMagic = 0x4C45584Eu;  // "NXEL"
inline constexpr uint32_t kEdgeFileVersion = 1;

/// \brief Streams dense-id edges to a binary pre-shard file.
class EdgeFileWriter {
 public:
  /// Creates (truncates) `path`. Set `weighted` when every edge carries a
  /// weight.
  static Result<std::unique_ptr<EdgeFileWriter>> Create(
      Env* env, const std::string& path, bool weighted);

  Status Add(VertexId src, VertexId dst);
  Status AddWeighted(VertexId src, VertexId dst, float weight);

  /// Seals the file (rewrites the header with the final edge count).
  Status Finish();

  uint64_t num_edges() const { return num_edges_; }

 private:
  EdgeFileWriter(Env* env, std::string path, bool weighted)
      : env_(env), path_(std::move(path)), weighted_(weighted) {}

  Env* env_;
  std::string path_;
  bool weighted_;
  uint64_t num_edges_ = 0;
  std::unique_ptr<WritableFile> file_;
};

/// \brief Streams dense-id edges back from a binary pre-shard file.
class EdgeFileReader {
 public:
  static Result<std::unique_ptr<EdgeFileReader>> Open(Env* env,
                                                      const std::string& path);

  uint64_t num_edges() const { return num_edges_; }
  bool weighted() const { return weighted_; }

  /// Reads up to `max_edges` edges into the output vectors (cleared first).
  /// Returns the number read; 0 signals end-of-file. Weights are filled only
  /// for weighted files.
  Result<size_t> ReadBatch(size_t max_edges, std::vector<Edge>* edges,
                           std::vector<float>* weights);

 private:
  EdgeFileReader() = default;

  std::unique_ptr<SequentialFile> file_;
  uint64_t num_edges_ = 0;
  uint64_t edges_read_ = 0;
  bool weighted_ = false;
};

}  // namespace nxgraph

#endif  // NXGRAPH_GRAPH_BINARY_IO_H_
