#include "src/graph/edge_list.h"

#include <algorithm>

namespace nxgraph {

void EdgeList::Symmetrize() {
  const size_t m = num_edges();
  const bool weighted = has_weights();
  Reserve(2 * m);
  for (size_t i = 0; i < m; ++i) {
    if (weighted) {
      AddWeighted(dst(i), src(i), weight(i));
    } else {
      Add(dst(i), src(i));
    }
  }
}

size_t EdgeList::CountDistinctVertices() const {
  std::vector<VertexIndex> all;
  all.reserve(2 * num_edges());
  all.insert(all.end(), srcs_.begin(), srcs_.end());
  all.insert(all.end(), dsts_.begin(), dsts_.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all.size();
}

}  // namespace nxgraph
