#include "src/graph/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "src/util/logging.h"
#include "src/util/random.h"

namespace nxgraph {

EdgeList GenerateRmat(const RmatOptions& options) {
  NX_CHECK(options.scale > 0 && options.scale < 32);
  const uint64_t n = 1ULL << options.scale;
  const uint64_t m =
      static_cast<uint64_t>(options.edge_factor * static_cast<double>(n));
  const double d = 1.0 - options.a - options.b - options.c;
  NX_CHECK(d >= 0.0) << "RMAT quadrant probabilities exceed 1";

  Xoshiro256 rng(options.seed);
  EdgeList edges;
  edges.Reserve(m);
  for (uint64_t e = 0; e < m; ++e) {
    uint64_t src = 0, dst = 0;
    for (uint32_t bit = 0; bit < options.scale; ++bit) {
      const double r = rng.NextDouble();
      // Pick one of the four quadrants; noise on the probabilities (a common
      // R-MAT refinement) is omitted to keep generation exactly reproducible.
      uint64_t sbit, dbit;
      if (r < options.a) {
        sbit = 0;
        dbit = 0;
      } else if (r < options.a + options.b) {
        sbit = 0;
        dbit = 1;
      } else if (r < options.a + options.b + options.c) {
        sbit = 1;
        dbit = 0;
      } else {
        sbit = 1;
        dbit = 1;
      }
      src = (src << 1) | sbit;
      dst = (dst << 1) | dbit;
    }
    if (options.with_weights) {
      edges.AddWeighted(src, dst, static_cast<float>(rng.NextDouble()) + 1e-6f);
    } else {
      edges.Add(src, dst);
    }
  }
  return edges;
}

EdgeList GenerateErdosRenyi(uint64_t num_vertices, uint64_t num_edges,
                            uint64_t seed) {
  NX_CHECK(num_vertices > 0);
  Xoshiro256 rng(seed);
  EdgeList edges;
  edges.Reserve(num_edges);
  for (uint64_t e = 0; e < num_edges; ++e) {
    edges.Add(rng.NextBounded(num_vertices), rng.NextBounded(num_vertices));
  }
  return edges;
}

EdgeList GeneratePowerLaw(const PowerLawOptions& options) {
  NX_CHECK(options.num_vertices > 0);
  NX_CHECK(options.exponent > 1.0);
  Xoshiro256 rng(options.seed);

  // Draw out-degrees from a discrete bounded Pareto via inverse transform,
  // then rescale to hit the requested average degree.
  const uint64_t n = options.num_vertices;
  std::vector<double> raw(n);
  const double alpha = options.exponent - 1.0;
  double total = 0.0;
  for (uint64_t v = 0; v < n; ++v) {
    const double u = rng.NextDouble();
    raw[v] = std::pow(1.0 - u, -1.0 / alpha);  // Pareto(1, alpha)
    total += raw[v];
  }
  const double scale_factor =
      options.avg_degree * static_cast<double>(n) / total;

  EdgeList edges;
  edges.Reserve(static_cast<size_t>(options.avg_degree * n));
  for (uint64_t v = 0; v < n; ++v) {
    uint64_t degree = static_cast<uint64_t>(raw[v] * scale_factor);
    degree = std::min<uint64_t>(degree, options.max_degree);
    for (uint64_t k = 0; k < degree; ++k) {
      // Preferential-attachment-like target choice: square one uniform draw
      // so low ids (which also tend to have high out-degree) attract more
      // in-edges, giving correlated in/out skew as in web crawls.
      const double u = rng.NextDouble();
      const auto dst = static_cast<uint64_t>(u * u * static_cast<double>(n));
      edges.Add(v, std::min(dst, n - 1));
    }
  }
  return edges;
}

EdgeList GenerateDelaunayLike(const DelaunayLikeOptions& options) {
  const uint64_t n = options.num_points;
  NX_CHECK(n >= 2);
  Xoshiro256 rng(options.seed);

  std::vector<float> xs(n), ys(n);
  for (uint64_t i = 0; i < n; ++i) {
    xs[i] = static_cast<float>(rng.NextDouble());
    ys[i] = static_cast<float>(rng.NextDouble());
  }

  // Uniform grid bucketing: ~2 points per cell on average.
  const auto grid_dim = static_cast<uint32_t>(
      std::max(1.0, std::sqrt(static_cast<double>(n) / 2.0)));
  std::vector<std::vector<uint32_t>> cells(
      static_cast<size_t>(grid_dim) * grid_dim);
  auto cell_of = [&](float x, float y) {
    auto cx = std::min<uint32_t>(static_cast<uint32_t>(x * grid_dim),
                                 grid_dim - 1);
    auto cy = std::min<uint32_t>(static_cast<uint32_t>(y * grid_dim),
                                 grid_dim - 1);
    return cy * grid_dim + cx;
  };
  for (uint64_t i = 0; i < n; ++i) {
    cells[cell_of(xs[i], ys[i])].push_back(static_cast<uint32_t>(i));
  }

  const uint32_t k = std::max<uint32_t>(options.neighbors, 1);
  EdgeList edges;
  edges.Reserve(2 * k * n);
  std::vector<std::pair<float, uint32_t>> candidates;
  for (uint64_t i = 0; i < n; ++i) {
    candidates.clear();
    const auto cx = std::min<uint32_t>(
        static_cast<uint32_t>(xs[i] * grid_dim), grid_dim - 1);
    const auto cy = std::min<uint32_t>(
        static_cast<uint32_t>(ys[i] * grid_dim), grid_dim - 1);
    // Expand the search ring until enough candidates are found (ring 1 is
    // almost always sufficient at ~2 points/cell).
    for (uint32_t ring = 1; ring <= grid_dim; ++ring) {
      candidates.clear();
      const uint32_t x0 = cx >= ring ? cx - ring : 0;
      const uint32_t x1 = std::min(cx + ring, grid_dim - 1);
      const uint32_t y0 = cy >= ring ? cy - ring : 0;
      const uint32_t y1 = std::min(cy + ring, grid_dim - 1);
      for (uint32_t gy = y0; gy <= y1; ++gy) {
        for (uint32_t gx = x0; gx <= x1; ++gx) {
          for (uint32_t j : cells[gy * grid_dim + gx]) {
            if (j == i) continue;
            const float dx = xs[i] - xs[j];
            const float dy = ys[i] - ys[j];
            candidates.emplace_back(dx * dx + dy * dy, j);
          }
        }
      }
      if (candidates.size() >= k || (x0 == 0 && y0 == 0 &&
                                     x1 == grid_dim - 1 &&
                                     y1 == grid_dim - 1)) {
        break;
      }
    }
    const size_t take = std::min<size_t>(k, candidates.size());
    std::partial_sort(candidates.begin(), candidates.begin() + take,
                      candidates.end());
    for (size_t t = 0; t < take; ++t) {
      edges.Add(i, candidates[t].second);
      edges.Add(candidates[t].second, i);  // symmetrize
    }
  }
  return edges;
}

}  // namespace nxgraph
