// Text edge-list loader: SNAP-style "src dst [weight]" lines.
#ifndef NXGRAPH_GRAPH_TEXT_LOADER_H_
#define NXGRAPH_GRAPH_TEXT_LOADER_H_

#include <string>

#include "src/graph/edge_list.h"
#include "src/io/env.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Parses a whitespace- or comma-separated edge list.
///
/// Lines starting with '#' or '%' are comments; blank lines are skipped.
/// A third numeric column, when present, is parsed as the edge weight.
/// Malformed lines produce an InvalidArgument error naming the line number.
Result<EdgeList> LoadEdgeListText(Env* env, const std::string& path);

/// Parses the same format from an in-memory buffer (used by tests).
Result<EdgeList> ParseEdgeListText(const std::string& text);

/// Writes an EdgeList in "src dst [weight]" text form.
Status WriteEdgeListText(Env* env, const std::string& path,
                         const EdgeList& edges);

}  // namespace nxgraph

#endif  // NXGRAPH_GRAPH_TEXT_LOADER_H_
