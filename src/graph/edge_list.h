// In-memory edge list: the interchange format between loaders/generators and
// the preprocessing pipeline.
#ifndef NXGRAPH_GRAPH_EDGE_LIST_H_
#define NXGRAPH_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/types.h"

namespace nxgraph {

/// \brief A graph as a flat list of directed edges in raw index space,
/// with optional per-edge weights.
///
/// Indices may be sparse and unordered; the Degreer densifies them.
class EdgeList {
 public:
  EdgeList() = default;

  /// Appends an unweighted edge.
  void Add(VertexIndex src, VertexIndex dst) {
    srcs_.push_back(src);
    dsts_.push_back(dst);
  }

  /// Appends a weighted edge; mixing weighted and unweighted edges in one
  /// list backfills weight 1.0 for earlier edges.
  void AddWeighted(VertexIndex src, VertexIndex dst, float weight) {
    if (weights_.size() < srcs_.size()) weights_.resize(srcs_.size(), 1.0f);
    srcs_.push_back(src);
    dsts_.push_back(dst);
    weights_.push_back(weight);
  }

  size_t num_edges() const { return srcs_.size(); }
  bool has_weights() const { return !weights_.empty(); }

  VertexIndex src(size_t i) const { return srcs_[i]; }
  VertexIndex dst(size_t i) const { return dsts_[i]; }
  float weight(size_t i) const {
    return i < weights_.size() ? weights_[i] : 1.0f;
  }

  void Reserve(size_t n) {
    srcs_.reserve(n);
    dsts_.reserve(n);
  }

  void Clear() {
    srcs_.clear();
    dsts_.clear();
    weights_.clear();
  }

  /// Appends the reverse of every edge (used to symmetrize an undirected
  /// input, per the paper: "undirected graph is supported by adding two
  /// opposite edges").
  void Symmetrize();

  /// Number of distinct vertex indices that appear as an endpoint.
  size_t CountDistinctVertices() const;

 private:
  std::vector<VertexIndex> srcs_;
  std::vector<VertexIndex> dsts_;
  std::vector<float> weights_;  // empty == unweighted
};

}  // namespace nxgraph

#endif  // NXGRAPH_GRAPH_EDGE_LIST_H_
