#include "src/graph/binary_io.h"

#include <cstring>

#include "src/util/crc32c.h"
#include "src/util/serialize.h"

namespace nxgraph {

namespace {

constexpr size_t kHeaderSize = 4 + 4 + 4 + 8 + 4;  // magic,ver,flags,m,crc
constexpr uint32_t kFlagWeighted = 1u << 0;

std::string EncodeHeader(bool weighted, uint64_t num_edges) {
  std::string h;
  EncodeFixed<uint32_t>(&h, kEdgeFileMagic);
  EncodeFixed<uint32_t>(&h, kEdgeFileVersion);
  EncodeFixed<uint32_t>(&h, weighted ? kFlagWeighted : 0);
  EncodeFixed<uint64_t>(&h, num_edges);
  EncodeFixed<uint32_t>(&h, crc32c::Value(h.data(), h.size()));
  return h;
}

}  // namespace

Result<std::unique_ptr<EdgeFileWriter>> EdgeFileWriter::Create(
    Env* env, const std::string& path, bool weighted) {
  std::unique_ptr<EdgeFileWriter> writer(
      new EdgeFileWriter(env, path, weighted));
  NX_RETURN_NOT_OK(env->NewWritableFile(path, &writer->file_));
  // Placeholder header; Finish() rewrites it with the real edge count.
  NX_RETURN_NOT_OK(writer->file_->Append(EncodeHeader(weighted, 0)));
  return writer;
}

Status EdgeFileWriter::Add(VertexId src, VertexId dst) {
  if (weighted_) {
    return Status::InvalidArgument("weighted file requires AddWeighted");
  }
  char buf[8];
  std::memcpy(buf, &src, 4);
  std::memcpy(buf + 4, &dst, 4);
  ++num_edges_;
  return file_->Append(buf, sizeof(buf));
}

Status EdgeFileWriter::AddWeighted(VertexId src, VertexId dst, float weight) {
  if (!weighted_) {
    return Status::InvalidArgument("unweighted file requires Add");
  }
  char buf[12];
  std::memcpy(buf, &src, 4);
  std::memcpy(buf + 4, &dst, 4);
  std::memcpy(buf + 8, &weight, 4);
  ++num_edges_;
  return file_->Append(buf, sizeof(buf));
}

Status EdgeFileWriter::Finish() {
  NX_RETURN_NOT_OK(file_->Close());
  file_.reset();
  // Rewrite the header in place with the final count.
  std::unique_ptr<RandomWriteFile> rw;
  NX_RETURN_NOT_OK(env_->NewRandomWriteFile(path_, &rw));
  const std::string header = EncodeHeader(weighted_, num_edges_);
  NX_RETURN_NOT_OK(rw->WriteAt(0, header.data(), header.size()));
  return rw->Close();
}

Result<std::unique_ptr<EdgeFileReader>> EdgeFileReader::Open(
    Env* env, const std::string& path) {
  std::unique_ptr<EdgeFileReader> reader(new EdgeFileReader());
  NX_RETURN_NOT_OK(env->NewSequentialFile(path, &reader->file_));
  char buf[kHeaderSize];
  size_t n = 0;
  NX_RETURN_NOT_OK(reader->file_->Read(sizeof(buf), buf, &n));
  if (n != sizeof(buf)) {
    return Status::Corruption("edge file too short: " + path);
  }
  SliceReader sr(buf, sizeof(buf));
  uint32_t magic = 0, version = 0, flags = 0, crc = 0;
  uint64_t num_edges = 0;
  sr.Read(&magic);
  sr.Read(&version);
  sr.Read(&flags);
  sr.Read(&num_edges);
  sr.Read(&crc);
  if (magic != kEdgeFileMagic) {
    return Status::Corruption("bad edge-file magic in " + path);
  }
  if (version != kEdgeFileVersion) {
    return Status::NotSupported("edge-file version " + std::to_string(version));
  }
  if (crc != crc32c::Value(buf, kHeaderSize - 4)) {
    return Status::Corruption("edge-file header checksum mismatch in " + path);
  }
  reader->weighted_ = (flags & kFlagWeighted) != 0;
  reader->num_edges_ = num_edges;
  return reader;
}

Result<size_t> EdgeFileReader::ReadBatch(size_t max_edges,
                                         std::vector<Edge>* edges,
                                         std::vector<float>* weights) {
  edges->clear();
  if (weights != nullptr) weights->clear();
  const uint64_t remaining = num_edges_ - edges_read_;
  const size_t want =
      static_cast<size_t>(std::min<uint64_t>(max_edges, remaining));
  if (want == 0) return size_t{0};

  const size_t record = weighted_ ? 12 : 8;
  std::vector<char> buf(want * record);
  size_t n = 0;
  NX_RETURN_NOT_OK(file_->Read(buf.size(), buf.data(), &n));
  if (n != buf.size()) {
    return Status::Corruption("edge file truncated: expected " +
                              std::to_string(buf.size()) + " bytes, got " +
                              std::to_string(n));
  }
  edges->resize(want);
  if (weighted_ && weights != nullptr) weights->resize(want);
  for (size_t i = 0; i < want; ++i) {
    const char* p = buf.data() + i * record;
    Edge e;
    std::memcpy(&e.src, p, 4);
    std::memcpy(&e.dst, p + 4, 4);
    (*edges)[i] = e;
    if (weighted_ && weights != nullptr) {
      std::memcpy(&(*weights)[i], p + 8, 4);
    }
  }
  edges_read_ += want;
  return want;
}

}  // namespace nxgraph
