// Fundamental graph types shared across NXgraph.
#ifndef NXGRAPH_GRAPH_TYPES_H_
#define NXGRAPH_GRAPH_TYPES_H_

#include <cstdint>
#include <limits>

namespace nxgraph {

/// Dense vertex identifier assigned by the degreer: the vertices of a graph
/// with n vertices are exactly the ids [0, n). (The paper numbers 1..n; we
/// use 0-based ids so that ids double as array offsets.)
using VertexId = uint32_t;

/// Raw vertex index as it appears in input files: possibly sparse,
/// possibly 64-bit.
using VertexIndex = uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

/// \brief Directed edge in dense-id space. 8 bytes, matching the paper's
/// "each edge is represented by 8 bytes" storage estimate.
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
};
static_assert(sizeof(Edge) == 8);

/// \brief Directed edge with a weight, for SSSP-style algorithms.
struct WeightedEdge {
  VertexId src = 0;
  VertexId dst = 0;
  float weight = 1.0f;

  friend bool operator==(const WeightedEdge&, const WeightedEdge&) = default;
};

}  // namespace nxgraph

#endif  // NXGRAPH_GRAPH_TYPES_H_
