#include "src/graph/text_loader.h"

#include <cctype>
#include <charconv>
#include <cstdio>

namespace nxgraph {

namespace {

// Parses one token starting at text[pos]; advances pos past the token.
// Returns false if no token is found before end-of-line.
bool NextToken(const std::string& text, size_t line_end, size_t* pos,
               std::string_view* token) {
  size_t p = *pos;
  while (p < line_end &&
         (text[p] == ' ' || text[p] == '\t' || text[p] == ',')) {
    ++p;
  }
  if (p >= line_end) return false;
  size_t start = p;
  while (p < line_end && text[p] != ' ' && text[p] != '\t' && text[p] != ',') {
    ++p;
  }
  *token = std::string_view(text.data() + start, p - start);
  *pos = p;
  return true;
}

}  // namespace

Result<EdgeList> ParseEdgeListText(const std::string& text) {
  EdgeList edges;
  size_t pos = 0;
  size_t line_no = 0;
  while (pos < text.size()) {
    ++line_no;
    size_t line_end = text.find('\n', pos);
    if (line_end == std::string::npos) line_end = text.size();

    size_t p = pos;
    while (p < line_end &&
           std::isspace(static_cast<unsigned char>(text[p]))) {
      ++p;
    }
    const bool blank = (p >= line_end);
    const bool comment = !blank && (text[p] == '#' || text[p] == '%');
    if (!blank && !comment) {
      std::string_view src_tok, dst_tok, w_tok;
      if (!NextToken(text, line_end, &p, &src_tok) ||
          !NextToken(text, line_end, &p, &dst_tok)) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'src dst [weight]'");
      }
      VertexIndex src = 0, dst = 0;
      auto r1 = std::from_chars(src_tok.data(), src_tok.data() + src_tok.size(), src);
      auto r2 = std::from_chars(dst_tok.data(), dst_tok.data() + dst_tok.size(), dst);
      if (r1.ec != std::errc() || r1.ptr != src_tok.data() + src_tok.size() ||
          r2.ec != std::errc() || r2.ptr != dst_tok.data() + dst_tok.size()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": non-numeric vertex index");
      }
      if (NextToken(text, line_end, &p, &w_tok)) {
        // std::from_chars for float is available in GCC 11+; use strtof on a
        // bounded copy to stay portable.
        std::string w_str(w_tok);
        char* endp = nullptr;
        float w = std::strtof(w_str.c_str(), &endp);
        if (endp != w_str.c_str() + w_str.size()) {
          return Status::InvalidArgument("line " + std::to_string(line_no) +
                                         ": non-numeric weight");
        }
        edges.AddWeighted(src, dst, w);
      } else {
        edges.Add(src, dst);
      }
    }
    pos = line_end + 1;
  }
  return edges;
}

Result<EdgeList> LoadEdgeListText(Env* env, const std::string& path) {
  std::string text;
  NX_RETURN_NOT_OK(ReadFileToString(env, path, &text));
  return ParseEdgeListText(text);
}

Status WriteEdgeListText(Env* env, const std::string& path,
                         const EdgeList& edges) {
  std::unique_ptr<WritableFile> file;
  NX_RETURN_NOT_OK(env->NewWritableFile(path, &file));
  char buf[96];
  const bool weighted = edges.has_weights();
  for (size_t i = 0; i < edges.num_edges(); ++i) {
    int len;
    if (weighted) {
      len = std::snprintf(buf, sizeof(buf), "%llu %llu %g\n",
                          static_cast<unsigned long long>(edges.src(i)),
                          static_cast<unsigned long long>(edges.dst(i)),
                          edges.weight(i));
    } else {
      len = std::snprintf(buf, sizeof(buf), "%llu %llu\n",
                          static_cast<unsigned long long>(edges.src(i)),
                          static_cast<unsigned long long>(edges.dst(i)));
    }
    NX_RETURN_NOT_OK(file->Append(buf, static_cast<size_t>(len)));
  }
  return file->Close();
}

}  // namespace nxgraph
