// Graph-store manifest: the root metadata file describing a preprocessed
// graph (intervals, sub-shard segment tables, degree files).
#ifndef NXGRAPH_PREP_MANIFEST_H_
#define NXGRAPH_PREP_MANIFEST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/types.h"
#include "src/io/env.h"
#include "src/prep/source_summary.h"
#include "src/storage/subshard_format.h"
#include "src/util/result.h"

namespace nxgraph {

// File names inside a graph-store directory.
inline constexpr char kManifestFileName[] = "manifest.nxm";
inline constexpr char kDegreesFileName[] = "degrees.nxd";
inline constexpr char kMappingFileName[] = "mapping.nxmap";
inline constexpr char kSubShardsFileName[] = "subshards.nxs";
inline constexpr char kSubShardsTransposeFileName[] = "subshards_t.nxs";

inline constexpr uint32_t kManifestMagic = 0x314D584Eu;  // "NXM1"
/// Version 2 added a per-blob format byte to the sub-shard tables (NXS2).
/// Version 3 added per-blob source-vertex summaries (source_summary.h):
/// two sizing params in the header plus a kind byte and filter words per
/// table entry. Older manifests still decode — v1 implies NXS1 blobs, v1/v2
/// imply no summaries — and Fingerprint() hashes topology-stable fields
/// only, so a store re-encoded at a newer manifest version keeps its
/// identity and existing checkpoints stay resumable.
inline constexpr uint32_t kManifestVersion = 3;

/// \brief Location and shape of one sub-shard blob inside a shard file.
struct SubShardMeta {
  uint64_t offset = 0;     ///< byte offset of the blob
  uint64_t size = 0;       ///< blob size in bytes (including checksum);
                           ///< the ENCODED (possibly compressed) size
  uint64_t num_edges = 0;  ///< edges stored in this sub-shard
  uint32_t num_dsts = 0;   ///< distinct destination vertices
  /// Blob encoding this sub-shard was written with. Informational — every
  /// blob is self-describing via its magic — but recorded so tooling and
  /// benches can report a store's format without reading shard bytes.
  SubShardFormat format = SubShardFormat::kNxs1;

  /// Source-vertex summary (v3): a filter over this blob's source vertices
  /// in the layout Manifest::summary_layout derives for the blob's source
  /// interval. kNone / empty on v1/v2 manifests and empty blobs — absent
  /// summaries always schedule conservatively ("may contribute").
  SummaryKind summary_kind = SummaryKind::kNone;
  std::vector<uint64_t> summary;

  /// Exact in-memory footprint of the decoded SubShard (dsts + offsets +
  /// srcs + optional weights, 4 bytes each; offsets always holds
  /// num_dsts + 1 entries, so an empty blob decodes to 4 bytes). Matches
  /// SubShard::MemoryBytes() exactly — decoded bytes are what the
  /// sub-shard cache and the strategy's pin/funding math account, while
  /// meta.size is what a disk read of the blob moves.
  uint64_t DecodedBytes(bool weighted) const {
    return (2ull * num_dsts + 1) * sizeof(uint32_t) +
           num_edges * (weighted ? 2 : 1) * sizeof(uint32_t);
  }
};

/// \brief Everything needed to open and schedule over a prepared graph.
struct Manifest {
  uint64_t num_vertices = 0;
  uint64_t num_edges = 0;
  uint32_t num_intervals = 0;  ///< P
  bool weighted = false;
  bool has_transpose = false;

  /// Summary sizing the sharder used (v3); both 0 when the store carries no
  /// summaries (v1/v2 manifests, or summaries disabled at build time).
  /// Persisted so every reader derives exactly the layout that was written.
  uint32_t summary_bitmap_max_bits = 0;
  uint32_t summary_bloom_bits = 0;

  /// Interval boundaries: interval i covers ids
  /// [interval_offsets[i], interval_offsets[i+1]). Size P+1.
  std::vector<VertexId> interval_offsets;

  /// Row-major P*P table for the forward sub-shards; SS_{i.j} is entry
  /// i * P + j (i = source interval, j = destination interval).
  std::vector<SubShardMeta> subshards;

  /// Same table for the transpose graph when has_transpose.
  std::vector<SubShardMeta> subshards_transpose;

  /// Serializes to the on-disk manifest representation.
  std::string Encode() const;

  /// Parses and validates a manifest blob.
  static Result<Manifest> Decode(const std::string& data);

  /// Stable identity of the prepared graph: a hash over the TOPOLOGY only —
  /// counts, interval boundaries, weightedness, and each sub-shard's
  /// edge/destination counts. Byte-layout details (blob offsets, encoded
  /// sizes, per-blob format, summaries, manifest version) are deliberately
  /// excluded, so re-encoding a store — NXS1 -> NXS2, v2 -> v3, summaries
  /// on/off — keeps its fingerprint and existing checkpoints stay
  /// resumable. Two stores with the same fingerprint propagate values
  /// identically, which is what the checkpoint subsystem validates before
  /// resuming a run against a store.
  uint64_t Fingerprint() const;

  const SubShardMeta& subshard(uint32_t i, uint32_t j,
                               bool transpose = false) const {
    const auto& table = transpose ? subshards_transpose : subshards;
    return table[static_cast<size_t>(i) * num_intervals + j];
  }

  /// Sum of DecodedBytes over one direction's table: the memory needed to
  /// pin every decoded sub-shard (what the fill-once cache and the
  /// strategy's never-demote rule compare budgets against). The encoded
  /// counterpart — bytes a full scan READS — is the sum of meta.size
  /// (GraphStore::TotalSubShardBytes).
  uint64_t TotalDecodedSubShardBytes(bool transpose = false) const;

  VertexId interval_begin(uint32_t i) const { return interval_offsets[i]; }
  VertexId interval_end(uint32_t i) const { return interval_offsets[i + 1]; }
  uint32_t interval_size(uint32_t i) const {
    return interval_end(i) - interval_begin(i);
  }

  /// Interval containing vertex `v`.
  uint32_t IntervalOf(VertexId v) const;

  SummaryParams summary_params() const {
    return SummaryParams{summary_bitmap_max_bits, summary_bloom_bits};
  }
  bool has_summaries() const {
    return summary_bitmap_max_bits != 0 || summary_bloom_bits != 0;
  }

  /// Filter layout shared by every blob whose SOURCE interval is `i` and by
  /// interval i's frontier filter. kNone when the store has no summaries.
  SummaryLayout summary_layout(uint32_t i) const {
    return MakeSummaryLayout(summary_params(), interval_begin(i),
                             interval_size(i));
  }

  /// Bytes of summary filter words across both tables — the metadata cost
  /// of selective scheduling, surfaced in RunStats/QueryStats.
  uint64_t TotalSummaryBytes() const;

  /// Ascending destination intervals j with subshard(i, j).num_edges > 0,
  /// so planners iterate work that exists instead of rescanning all P^2
  /// slots. Built by BuildColumnIndex() — Decode() runs it automatically;
  /// hand-assembled manifests call it after filling the tables. Returns
  /// nullptr when the index is absent (callers fall back to a full scan).
  const std::vector<uint32_t>* NonEmptyColumns(uint32_t i,
                                               bool transpose = false) const {
    const auto& rows = transpose ? nonempty_cols_transpose_ : nonempty_cols_;
    if (i >= rows.size()) return nullptr;
    return &rows[i];
  }
  void BuildColumnIndex();

 private:
  std::vector<std::vector<uint32_t>> nonempty_cols_;
  std::vector<std::vector<uint32_t>> nonempty_cols_transpose_;
};

/// Writes the manifest atomically into `dir`.
Status WriteManifest(Env* env, const std::string& dir, const Manifest& m);

/// Reads and validates the manifest from `dir`.
Result<Manifest> ReadManifest(Env* env, const std::string& dir);

}  // namespace nxgraph

#endif  // NXGRAPH_PREP_MANIFEST_H_
