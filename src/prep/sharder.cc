#include "src/prep/sharder.h"

#include <algorithm>
#include <numeric>

#include "src/graph/binary_io.h"
#include "src/storage/subshard.h"
#include "src/util/logging.h"

namespace nxgraph {

namespace {

// One buffered edge destined for a particular sub-shard row.
struct RowEdge {
  VertexId src;
  VertexId dst;
  float weight;
};

// Builds the destination-sorted CSR sub-shard from a bucket of edges.
SubShard BuildSubShard(uint32_t i, uint32_t j, std::vector<RowEdge>* edges,
                       bool weighted, bool dedup) {
  // Primary sort by destination, secondary by source (paper §III-A: "we
  // also sort all edges with the same destination vertex by their source").
  std::sort(edges->begin(), edges->end(), [](const RowEdge& a, const RowEdge& b) {
    if (a.dst != b.dst) return a.dst < b.dst;
    return a.src < b.src;
  });
  if (dedup) {
    edges->erase(std::unique(edges->begin(), edges->end(),
                             [](const RowEdge& a, const RowEdge& b) {
                               return a.dst == b.dst && a.src == b.src;
                             }),
                 edges->end());
  }
  SubShard ss;
  ss.src_interval = i;
  ss.dst_interval = j;
  ss.srcs.reserve(edges->size());
  if (weighted) ss.weights.reserve(edges->size());
  ss.offsets.push_back(0);
  for (const RowEdge& e : *edges) {
    if (ss.dsts.empty() || ss.dsts.back() != e.dst) {
      if (!ss.dsts.empty()) {
        ss.offsets.push_back(static_cast<uint32_t>(ss.srcs.size()));
      }
      ss.dsts.push_back(e.dst);
    }
    ss.srcs.push_back(e.src);
    if (weighted) ss.weights.push_back(e.weight);
  }
  if (!ss.dsts.empty()) {
    ss.offsets.push_back(static_cast<uint32_t>(ss.srcs.size()));
  }
  return ss;
}

// Streams the pre-shard into P row-bucket temp files (edges grouped by
// source interval). `transpose` swaps src/dst first.
Status BucketRows(Env* env, const std::string& dir,
                  const std::vector<VertexId>& interval_offsets,
                  bool weighted, bool transpose, uint64_t batch_edges,
                  std::vector<std::string>* row_paths) {
  const uint32_t p = static_cast<uint32_t>(interval_offsets.size()) - 1;
  std::vector<std::unique_ptr<EdgeFileWriter>> writers(p);
  row_paths->clear();
  for (uint32_t i = 0; i < p; ++i) {
    std::string path = dir + "/row_" + (transpose ? "t_" : "") +
                       std::to_string(i) + ".tmp";
    row_paths->push_back(path);
    NX_ASSIGN_OR_RETURN(writers[i], EdgeFileWriter::Create(env, path, weighted));
  }

  NX_ASSIGN_OR_RETURN(auto reader,
                      EdgeFileReader::Open(env, dir + "/" + kPreShardFileName));
  std::vector<Edge> batch;
  std::vector<float> weights;
  auto interval_of = [&interval_offsets](VertexId v) {
    auto it = std::upper_bound(interval_offsets.begin(),
                               interval_offsets.end(), v);
    return static_cast<uint32_t>(it - interval_offsets.begin()) - 1;
  };
  for (;;) {
    NX_ASSIGN_OR_RETURN(size_t n, reader->ReadBatch(batch_edges, &batch,
                                                    weighted ? &weights
                                                             : nullptr));
    if (n == 0) break;
    for (size_t k = 0; k < n; ++k) {
      VertexId src = batch[k].src;
      VertexId dst = batch[k].dst;
      if (transpose) std::swap(src, dst);
      const uint32_t row = interval_of(src);
      if (weighted) {
        NX_RETURN_NOT_OK(writers[row]->AddWeighted(src, dst, weights[k]));
      } else {
        NX_RETURN_NOT_OK(writers[row]->Add(src, dst));
      }
    }
  }
  for (auto& w : writers) NX_RETURN_NOT_OK(w->Finish());
  return Status::OK();
}

// Processes one direction (forward or transpose): bucket into rows, then
// for each row sort/split into P sub-shards and append blobs to `file_name`.
Status ShardOneDirection(Env* env, const std::string& dir,
                         const std::vector<VertexId>& interval_offsets,
                         bool weighted, bool transpose,
                         const SharderOptions& options,
                         std::vector<SubShardMeta>* table) {
  const uint32_t p = static_cast<uint32_t>(interval_offsets.size()) - 1;
  std::vector<std::string> row_paths;
  NX_RETURN_NOT_OK(BucketRows(env, dir, interval_offsets, weighted, transpose,
                              options.batch_edges, &row_paths));

  const std::string shard_path =
      dir + "/" +
      (transpose ? kSubShardsTransposeFileName : kSubShardsFileName);
  std::unique_ptr<WritableFile> out;
  NX_RETURN_NOT_OK(env->NewWritableFile(shard_path, &out));

  table->assign(static_cast<size_t>(p) * p, SubShardMeta{});
  uint64_t offset = 0;
  std::vector<Edge> batch;
  std::vector<float> weights;
  for (uint32_t i = 0; i < p; ++i) {
    // Load the whole row and bucket it by destination interval.
    NX_ASSIGN_OR_RETURN(auto reader, EdgeFileReader::Open(env, row_paths[i]));
    std::vector<std::vector<RowEdge>> buckets(p);
    auto interval_of = [&interval_offsets](VertexId v) {
      auto it = std::upper_bound(interval_offsets.begin(),
                                 interval_offsets.end(), v);
      return static_cast<uint32_t>(it - interval_offsets.begin()) - 1;
    };
    for (;;) {
      NX_ASSIGN_OR_RETURN(size_t n,
                          reader->ReadBatch(options.batch_edges, &batch,
                                            weighted ? &weights : nullptr));
      if (n == 0) break;
      for (size_t k = 0; k < n; ++k) {
        const uint32_t j = interval_of(batch[k].dst);
        buckets[j].push_back(RowEdge{batch[k].src, batch[k].dst,
                                     weighted ? weights[k] : 1.0f});
      }
    }
    reader.reset();
    NX_RETURN_NOT_OK(env->RemoveFile(row_paths[i]));

    // All blobs of row i share interval i's summary layout: their sources
    // all fall in [interval_offsets[i], interval_offsets[i+1]).
    const SummaryLayout row_layout = MakeSummaryLayout(
        options.summary, interval_offsets[i],
        interval_offsets[i + 1] - interval_offsets[i]);
    for (uint32_t j = 0; j < p; ++j) {
      SubShard ss =
          BuildSubShard(i, j, &buckets[j], weighted, options.dedup);
      buckets[j].clear();
      buckets[j].shrink_to_fit();
      const std::string blob = ss.Encode(options.format);
      NX_RETURN_NOT_OK(out->Append(blob));
      SubShardMeta& meta = (*table)[static_cast<size_t>(i) * p + j];
      meta.offset = offset;
      meta.size = blob.size();
      meta.num_edges = ss.num_edges();
      meta.num_dsts = ss.num_dsts();
      meta.format = options.format;
      if (row_layout.kind != SummaryKind::kNone && !ss.srcs.empty()) {
        meta.summary_kind = row_layout.kind;
        meta.summary.assign(row_layout.words(), 0);
        for (VertexId src : ss.srcs) {
          SummaryAddVertex(row_layout, src, meta.summary.data());
        }
      }
      offset += blob.size();
    }
  }
  return out->Close();
}

}  // namespace

std::vector<VertexId> MakeEqualIntervals(uint64_t num_vertices, uint32_t p) {
  std::vector<VertexId> offsets(p + 1);
  for (uint32_t i = 0; i <= p; ++i) {
    offsets[i] = static_cast<VertexId>(num_vertices * i / p);
  }
  return offsets;
}

Result<Manifest> RunSharder(Env* env, const std::string& dir,
                            const DegreeResult& degrees,
                            const SharderOptions& options) {
  if (options.num_intervals == 0) {
    return Status::InvalidArgument("num_intervals must be >= 1");
  }
  if (degrees.num_vertices == 0) {
    return Status::InvalidArgument("graph has no vertices");
  }
  // More intervals than vertices would create empty intervals whose
  // boundaries collide; clamp (tiny graphs only).
  const uint32_t p = static_cast<uint32_t>(
      std::min<uint64_t>(options.num_intervals, degrees.num_vertices));

  Manifest m;
  m.num_vertices = degrees.num_vertices;
  m.num_edges = degrees.num_edges;
  m.num_intervals = p;
  m.weighted = degrees.weighted;
  m.has_transpose = options.build_transpose;
  m.summary_bitmap_max_bits = options.summary.bitmap_max_bits;
  m.summary_bloom_bits = options.summary.bloom_bits;
  m.interval_offsets = MakeEqualIntervals(degrees.num_vertices, p);

  NX_RETURN_NOT_OK(ShardOneDirection(env, dir, m.interval_offsets,
                                     m.weighted, /*transpose=*/false, options,
                                     &m.subshards));
  if (options.build_transpose) {
    NX_RETURN_NOT_OK(ShardOneDirection(env, dir, m.interval_offsets,
                                       m.weighted, /*transpose=*/true,
                                       options, &m.subshards_transpose));
  }
  m.BuildColumnIndex();
  NX_RETURN_NOT_OK(WriteManifest(env, dir, m));
  return m;
}

}  // namespace nxgraph
