// Per-blob source-vertex summaries (manifest v3).
//
// Every sub-shard SS_{i.j} stores a tiny filter over its SOURCE vertices —
// an exact bitmap when interval i is small enough, a 2-probe bloom filter
// above that threshold. The engine and the serving planner keep a frontier
// filter per interval in the SAME layout, so "can this blob contribute this
// iteration?" is a word-wise AND across a few dozen bytes, answered before
// any read is enqueued.
//
// Conservativeness: both sides insert a vertex with the same probe
// positions (identical layout, identical hash), so an active vertex that is
// a source of the blob sets the same bits in both filters and the AND test
// can never miss it. Bloom collisions only ever produce false *positives*
// (a useless read), never a skipped contribution — which is why consulting
// summaries is bit-identical for monotone-skippable programs.
#ifndef NXGRAPH_PREP_SOURCE_SUMMARY_H_
#define NXGRAPH_PREP_SOURCE_SUMMARY_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include "src/graph/types.h"

namespace nxgraph {

/// Filter flavor of one blob summary / frontier filter.
enum class SummaryKind : uint8_t {
  kNone = 0,    ///< no filter — always treated as "may intersect"
  kBitmap = 1,  ///< exact bitmap, bit v - base per source vertex
  kBloom = 2,   ///< fixed-size 2-probe bloom over source ids
};

/// \brief Store-wide summary sizing, persisted in the v3 manifest header so
/// every reader derives the exact same per-interval layout the sharder
/// wrote. Both fields 0 means the store carries no summaries (v1/v2
/// manifests, or summaries disabled at build time).
struct SummaryParams {
  /// Intervals with at most this many vertices get an exact bitmap
  /// (interval_size bits); larger intervals fall back to the bloom filter.
  uint32_t bitmap_max_bits = 4096;
  /// Bloom filter size in bits for intervals above the bitmap threshold.
  uint32_t bloom_bits = 512;

  bool enabled() const { return bitmap_max_bits != 0 || bloom_bits != 0; }
};

/// `NXGRAPH_SELECTIVE=0|off|false` disables selective scheduling end to end
/// for A/B runs and CI sweeps: the sharder writes v3 manifests without
/// summaries and the engine/server skip the frontier consult. Anything else
/// (including unset) leaves it on.
inline bool DefaultSelectiveScheduling() {
  const char* env = std::getenv("NXGRAPH_SELECTIVE");
  if (env == nullptr || env[0] == '\0') return true;
  const bool off = env[0] == '0' || env[0] == 'f' || env[0] == 'F' ||
                   ((env[0] == 'o' || env[0] == 'O') &&
                    (env[1] == 'f' || env[1] == 'F'));
  return !off;
}

/// \brief Shape of the filter shared by every blob whose SOURCE interval is
/// i, and by interval i's frontier filter. Purely derived from
/// SummaryParams + the interval bounds — never persisted per blob.
struct SummaryLayout {
  SummaryKind kind = SummaryKind::kNone;
  VertexId base = 0;   ///< interval_begin(i); bitmap bit 0 is this vertex
  uint32_t bits = 0;   ///< filter width in bits (0 for kNone)

  size_t words() const { return (static_cast<size_t>(bits) + 63) / 64; }
};

inline SummaryLayout MakeSummaryLayout(const SummaryParams& p,
                                       VertexId interval_begin,
                                       uint32_t interval_size) {
  SummaryLayout l;
  l.base = interval_begin;
  if (!p.enabled() || interval_size == 0) return l;
  if (p.bitmap_max_bits != 0 && interval_size <= p.bitmap_max_bits) {
    l.kind = SummaryKind::kBitmap;
    l.bits = interval_size;
  } else if (p.bloom_bits != 0) {
    l.kind = SummaryKind::kBloom;
    l.bits = p.bloom_bits;
  }
  return l;
}

/// splitmix64 finalizer — both bloom probes come from one invocation.
inline uint64_t SummaryMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline void SummarySetBit(uint64_t* words, uint32_t bit) {
  words[bit >> 6] |= 1ull << (bit & 63);
}

/// Thread-safe variant for the engine's apply loops, where a ParallelFor
/// over one interval inserts changed vertices concurrently.
inline void SummarySetBitAtomic(uint64_t* words, uint32_t bit) {
  std::atomic_ref<uint64_t>(words[bit >> 6])
      .fetch_or(1ull << (bit & 63), std::memory_order_relaxed);
}

template <bool kAtomic = false>
inline void SummaryAddVertex(const SummaryLayout& l, VertexId v,
                             uint64_t* words) {
  switch (l.kind) {
    case SummaryKind::kNone:
      return;
    case SummaryKind::kBitmap:
      if constexpr (kAtomic) {
        SummarySetBitAtomic(words, v - l.base);
      } else {
        SummarySetBit(words, v - l.base);
      }
      return;
    case SummaryKind::kBloom: {
      const uint64_t h = SummaryMix(v);
      const uint32_t b1 = static_cast<uint32_t>(h) % l.bits;
      const uint32_t b2 = static_cast<uint32_t>(h >> 32) % l.bits;
      if constexpr (kAtomic) {
        SummarySetBitAtomic(words, b1);
        SummarySetBitAtomic(words, b2);
      } else {
        SummarySetBit(words, b1);
        SummarySetBit(words, b2);
      }
      return;
    }
  }
}

/// Word-wise AND test between a blob summary and a frontier filter of the
/// same layout. Empty filters (kNone / absent summaries) must be handled by
/// the caller as "true" — this helper assumes both sides have `nwords`
/// valid words.
inline bool SummaryMayIntersect(const uint64_t* a, const uint64_t* b,
                                size_t nwords) {
  for (size_t k = 0; k < nwords; ++k) {
    if ((a[k] & b[k]) != 0) return true;
  }
  return false;
}

/// \brief One interval's frontier filter: the set of sources that changed
/// last iteration, in the same layout as that interval's blob summaries.
/// `all` is the conservative pass-everything state (iteration 0, resume,
/// non-seeded InitValues, or summaries absent).
struct FrontierFilter {
  SummaryLayout layout;
  bool all = true;
  std::vector<uint64_t> words;

  void ResetToEmpty() {
    all = false;
    words.assign(layout.words(), 0);
  }
  void ResetToAll() {
    all = true;
    words.assign(layout.words(), 0);
  }
  void Add(VertexId v) { SummaryAddVertex(layout, v, words.data()); }
  void AddAtomic(VertexId v) {
    SummaryAddVertex<true>(layout, v, words.data());
  }

  /// May any vertex in this frontier be a source of a blob carrying
  /// `summary` (same layout)? Conservatively true when either side has no
  /// filter material.
  bool MayIntersect(const std::vector<uint64_t>& summary) const {
    if (all) return true;
    if (layout.kind == SummaryKind::kNone) return true;
    if (summary.size() < layout.words()) return true;  // absent/foreign
    return SummaryMayIntersect(words.data(), summary.data(), layout.words());
  }
};

}  // namespace nxgraph

#endif  // NXGRAPH_PREP_SOURCE_SUMMARY_H_
