// Degreeing: first preprocessing step (paper §III-A). Maps sparse vertex
// indices to dense, continuous ids, computes per-vertex degrees, and emits
// the pre-shard consumed by the Sharder.
#ifndef NXGRAPH_PREP_DEGREER_H_
#define NXGRAPH_PREP_DEGREER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/io/env.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Output of the degreeing step.
///
/// Ids are assigned in ascending index order, so `mapping` (id -> original
/// index) is sorted; index -> id lookups are binary searches over it. The
/// paper stores a forward and reverse mapping file; one sorted array serves
/// both directions.
struct DegreeResult {
  uint64_t num_vertices = 0;  ///< vertices with at least one edge
  uint64_t num_edges = 0;
  bool weighted = false;
  std::vector<VertexIndex> mapping;   ///< id -> original index, ascending
  std::vector<uint32_t> out_degrees;  ///< indexed by id
  std::vector<uint32_t> in_degrees;   ///< indexed by id
};

/// \brief Runs degreeing over an in-memory edge list.
///
/// Writes into `dir`:
///  - the pre-shard (`preshard.nxel`): edges re-labelled to dense ids;
///  - the mapping file (`mapping.nxmap`);
///  - the degrees file (`degrees.nxd`): out-degrees then in-degrees.
/// Isolated vertices (no incident edge) receive no id, matching the paper's
/// "eliminate non-existing vertices".
Result<DegreeResult> RunDegreer(Env* env, const EdgeList& edges,
                                const std::string& dir);

inline constexpr char kPreShardFileName[] = "preshard.nxel";

/// Loads the mapping file (id -> original index).
Result<std::vector<VertexIndex>> LoadMapping(Env* env, const std::string& dir);

/// Loads degrees; `out_degrees`/`in_degrees` may be null when not needed.
Status LoadDegrees(Env* env, const std::string& dir, uint64_t num_vertices,
                   std::vector<uint32_t>* out_degrees,
                   std::vector<uint32_t>* in_degrees);

/// Translates an original index to its dense id via binary search;
/// returns kInvalidVertex when the index has no id (isolated/unknown).
VertexId IndexToId(const std::vector<VertexIndex>& mapping, VertexIndex index);

}  // namespace nxgraph

#endif  // NXGRAPH_PREP_DEGREER_H_
