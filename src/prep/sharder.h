// Sharding: second preprocessing step (paper §III-A). Partitions vertices
// into P equal intervals and edges into P^2 destination-sorted sub-shards.
#ifndef NXGRAPH_PREP_SHARDER_H_
#define NXGRAPH_PREP_SHARDER_H_

#include <cstdint>
#include <string>

#include "src/io/env.h"
#include "src/prep/degreer.h"
#include "src/prep/manifest.h"
#include "src/storage/subshard_format.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Sharding configuration.
struct SharderOptions {
  /// Number of intervals P. The paper finds P = 12..48 all work well
  /// (Fig. 7); 16 is a robust default at our scales.
  uint32_t num_intervals = 16;

  /// Also build the transposed sub-shards (edges reversed). Required by
  /// algorithms that propagate against edge direction (WCC over in+out
  /// edges, the backward phase of SCC).
  bool build_transpose = true;

  /// Remove duplicate (src, dst) pairs within each sub-shard. Off by
  /// default: degrees were computed over the multiset, and PageRank treats
  /// parallel edges as distinct contributions (GraphChi behaves the same).
  bool dedup = false;

  /// Rows are bucketed to temporary files and processed one source interval
  /// at a time, so peak memory is O(largest row), not O(m). This caps the
  /// edge count per bucketing batch.
  uint64_t batch_edges = 4 << 20;

  /// Blob encoding for the written sub-shards (recorded per blob in the
  /// manifest). Defaults to the process default — NXS2 (delta-varint),
  /// overridable via NXGRAPH_SUBSHARD_FORMAT; pass kNxs1 explicitly to
  /// write the raw fixed-width format. Readers dispatch on each blob's
  /// magic, so stores of either (or mixed) format load identically.
  SubShardFormat format = DefaultSubShardFormat();

  /// Per-blob source-vertex summary sizing (manifest v3). Defaults to
  /// summaries ON (bitmap up to 4096-vertex intervals, 512-bit bloom
  /// above) unless NXGRAPH_SELECTIVE=0 disables selective scheduling
  /// process-wide, in which case the written manifest carries no summaries.
  /// Set both fields to 0 to force a summary-free store explicitly.
  SummaryParams summary = DefaultSelectiveScheduling()
                              ? SummaryParams{}
                              : SummaryParams{0, 0};
};

/// \brief Runs sharding over the pre-shard produced by RunDegreer in `dir`,
/// writing `subshards.nxs` (+ `subshards_t.nxs`) and the manifest.
///
/// Returns the manifest it wrote.
Result<Manifest> RunSharder(Env* env, const std::string& dir,
                            const DegreeResult& degrees,
                            const SharderOptions& options);

/// Convenience: equal-size interval boundaries for n vertices in P parts.
std::vector<VertexId> MakeEqualIntervals(uint64_t num_vertices, uint32_t p);

}  // namespace nxgraph

#endif  // NXGRAPH_PREP_SHARDER_H_
