#include "src/prep/degreer.h"

#include <algorithm>

#include "src/graph/binary_io.h"
#include "src/prep/manifest.h"
#include "src/util/crc32c.h"
#include "src/util/serialize.h"

namespace nxgraph {

namespace {

constexpr uint32_t kMappingMagic = 0x50414D4Eu;  // "NMAP"
constexpr uint32_t kDegreesMagic = 0x4745444Eu;  // "NDEG"

Status WriteMappingFile(Env* env, const std::string& dir,
                        const std::vector<VertexIndex>& mapping) {
  std::string out;
  EncodeFixed<uint32_t>(&out, kMappingMagic);
  EncodeFixed<uint64_t>(&out, mapping.size());
  out.append(reinterpret_cast<const char*>(mapping.data()),
             mapping.size() * sizeof(VertexIndex));
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return WriteStringToFile(env, dir + "/" + kMappingFileName, out);
}

Status WriteDegreesFile(Env* env, const std::string& dir,
                        const std::vector<uint32_t>& out_degrees,
                        const std::vector<uint32_t>& in_degrees) {
  std::string out;
  EncodeFixed<uint32_t>(&out, kDegreesMagic);
  EncodeFixed<uint64_t>(&out, out_degrees.size());
  out.append(reinterpret_cast<const char*>(out_degrees.data()),
             out_degrees.size() * sizeof(uint32_t));
  out.append(reinterpret_cast<const char*>(in_degrees.data()),
             in_degrees.size() * sizeof(uint32_t));
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return WriteStringToFile(env, dir + "/" + kDegreesFileName, out);
}

}  // namespace

Result<DegreeResult> RunDegreer(Env* env, const EdgeList& edges,
                                const std::string& dir) {
  if (edges.num_edges() == 0) {
    return Status::InvalidArgument("cannot degree an empty edge list");
  }
  NX_RETURN_NOT_OK(env->CreateDirs(dir));

  DegreeResult result;
  result.num_edges = edges.num_edges();
  result.weighted = edges.has_weights();

  // Collect and sort distinct endpoint indices; position == dense id.
  result.mapping.reserve(2 * edges.num_edges());
  for (size_t e = 0; e < edges.num_edges(); ++e) {
    result.mapping.push_back(edges.src(e));
    result.mapping.push_back(edges.dst(e));
  }
  std::sort(result.mapping.begin(), result.mapping.end());
  result.mapping.erase(
      std::unique(result.mapping.begin(), result.mapping.end()),
      result.mapping.end());
  result.num_vertices = result.mapping.size();
  if (result.num_vertices > static_cast<uint64_t>(kInvalidVertex)) {
    return Status::InvalidArgument("graph exceeds 2^32-1 vertices");
  }

  // Re-label edges and accumulate degrees while streaming out the pre-shard.
  result.out_degrees.assign(result.num_vertices, 0);
  result.in_degrees.assign(result.num_vertices, 0);
  NX_ASSIGN_OR_RETURN(
      auto writer,
      EdgeFileWriter::Create(env, dir + "/" + kPreShardFileName,
                             result.weighted));
  for (size_t e = 0; e < edges.num_edges(); ++e) {
    const VertexId src = IndexToId(result.mapping, edges.src(e));
    const VertexId dst = IndexToId(result.mapping, edges.dst(e));
    ++result.out_degrees[src];
    ++result.in_degrees[dst];
    if (result.weighted) {
      NX_RETURN_NOT_OK(writer->AddWeighted(src, dst, edges.weight(e)));
    } else {
      NX_RETURN_NOT_OK(writer->Add(src, dst));
    }
  }
  NX_RETURN_NOT_OK(writer->Finish());

  NX_RETURN_NOT_OK(WriteMappingFile(env, dir, result.mapping));
  NX_RETURN_NOT_OK(
      WriteDegreesFile(env, dir, result.out_degrees, result.in_degrees));
  return result;
}

Result<std::vector<VertexIndex>> LoadMapping(Env* env,
                                             const std::string& dir) {
  std::string data;
  NX_RETURN_NOT_OK(ReadFileToString(env, dir + "/" + kMappingFileName, &data));
  if (data.size() < 16) return Status::Corruption("mapping file too short");
  const uint32_t crc = DecodeFixed<uint32_t>(data.data() + data.size() - 4);
  if (crc != crc32c::Value(data.data(), data.size() - 4)) {
    return Status::Corruption("mapping file checksum mismatch");
  }
  SliceReader r(data.data(), data.size() - 4);
  uint32_t magic = 0;
  uint64_t count = 0;
  r.Read(&magic);
  r.Read(&count);
  if (magic != kMappingMagic) return Status::Corruption("bad mapping magic");
  std::vector<VertexIndex> mapping(count);
  if (!r.ReadBytes(mapping.data(), count * sizeof(VertexIndex))) {
    return Status::Corruption("mapping file truncated");
  }
  return mapping;
}

Status LoadDegrees(Env* env, const std::string& dir, uint64_t num_vertices,
                   std::vector<uint32_t>* out_degrees,
                   std::vector<uint32_t>* in_degrees) {
  std::string data;
  NX_RETURN_NOT_OK(ReadFileToString(env, dir + "/" + kDegreesFileName, &data));
  if (data.size() < 16) return Status::Corruption("degrees file too short");
  const uint32_t crc = DecodeFixed<uint32_t>(data.data() + data.size() - 4);
  if (crc != crc32c::Value(data.data(), data.size() - 4)) {
    return Status::Corruption("degrees file checksum mismatch");
  }
  SliceReader r(data.data(), data.size() - 4);
  uint32_t magic = 0;
  uint64_t count = 0;
  r.Read(&magic);
  r.Read(&count);
  if (magic != kDegreesMagic) return Status::Corruption("bad degrees magic");
  if (count != num_vertices) {
    return Status::Corruption("degrees file vertex count mismatch");
  }
  if (out_degrees != nullptr) {
    out_degrees->resize(count);
    if (!r.ReadBytes(out_degrees->data(), count * sizeof(uint32_t))) {
      return Status::Corruption("degrees file truncated");
    }
  } else {
    std::vector<uint32_t> skip(count);
    if (!r.ReadBytes(skip.data(), count * sizeof(uint32_t))) {
      return Status::Corruption("degrees file truncated");
    }
  }
  if (in_degrees != nullptr) {
    in_degrees->resize(count);
    if (!r.ReadBytes(in_degrees->data(), count * sizeof(uint32_t))) {
      return Status::Corruption("degrees file truncated");
    }
  }
  return Status::OK();
}

VertexId IndexToId(const std::vector<VertexIndex>& mapping,
                   VertexIndex index) {
  auto it = std::lower_bound(mapping.begin(), mapping.end(), index);
  if (it == mapping.end() || *it != index) return kInvalidVertex;
  return static_cast<VertexId>(it - mapping.begin());
}

}  // namespace nxgraph
