#include "src/prep/manifest.h"

#include <algorithm>

#include "src/util/crc32c.h"
#include "src/util/serialize.h"

namespace nxgraph {

namespace {

void EncodeSubShardTable(std::string* out,
                         const std::vector<SubShardMeta>& table) {
  EncodeFixed<uint64_t>(out, table.size());
  for (const auto& s : table) {
    EncodeFixed<uint64_t>(out, s.offset);
    EncodeFixed<uint64_t>(out, s.size);
    EncodeFixed<uint64_t>(out, s.num_edges);
    EncodeFixed<uint32_t>(out, s.num_dsts);
    EncodeFixed<uint8_t>(out, static_cast<uint8_t>(s.format));
    EncodeFixed<uint8_t>(out, static_cast<uint8_t>(s.summary_kind));
    EncodeFixed<uint16_t>(out, static_cast<uint16_t>(s.summary.size()));
    for (uint64_t w : s.summary) EncodeFixed<uint64_t>(out, w);
  }
}

// `version` selects the per-entry layout: version 1 entries end at
// num_dsts (every blob implied NXS1), version 2 adds the format byte,
// version 3 adds the source-summary kind byte and filter words.
bool DecodeSubShardTable(SliceReader* r, uint32_t version,
                         std::vector<SubShardMeta>* table) {
  uint64_t count = 0;
  if (!r->Read(&count)) return false;
  if (count > (1ULL << 32)) return false;  // implausible; corrupt
  table->resize(count);
  for (auto& s : *table) {
    if (!r->Read(&s.offset) || !r->Read(&s.size) || !r->Read(&s.num_edges) ||
        !r->Read(&s.num_dsts)) {
      return false;
    }
    uint8_t format = static_cast<uint8_t>(SubShardFormat::kNxs1);
    if (version >= 2 && !r->Read(&format)) return false;
    if (format != static_cast<uint8_t>(SubShardFormat::kNxs1) &&
        format != static_cast<uint8_t>(SubShardFormat::kNxs2)) {
      return false;
    }
    s.format = static_cast<SubShardFormat>(format);
    s.summary_kind = SummaryKind::kNone;
    s.summary.clear();
    if (version >= 3) {
      uint8_t kind = 0;
      uint16_t words = 0;
      if (!r->Read(&kind) || !r->Read(&words)) return false;
      if (kind > static_cast<uint8_t>(SummaryKind::kBloom)) return false;
      s.summary_kind = static_cast<SummaryKind>(kind);
      s.summary.resize(words);
      for (auto& w : s.summary) {
        if (!r->Read(&w)) return false;
      }
    }
  }
  return true;
}

}  // namespace

std::string Manifest::Encode() const {
  std::string out;
  EncodeFixed<uint32_t>(&out, kManifestMagic);
  EncodeFixed<uint32_t>(&out, kManifestVersion);
  EncodeFixed<uint64_t>(&out, num_vertices);
  EncodeFixed<uint64_t>(&out, num_edges);
  EncodeFixed<uint32_t>(&out, num_intervals);
  EncodeFixed<uint8_t>(&out, weighted ? 1 : 0);
  EncodeFixed<uint8_t>(&out, has_transpose ? 1 : 0);
  EncodeFixed<uint32_t>(&out, summary_bitmap_max_bits);
  EncodeFixed<uint32_t>(&out, summary_bloom_bits);
  EncodeFixed<uint64_t>(&out, interval_offsets.size());
  for (VertexId v : interval_offsets) EncodeFixed<uint32_t>(&out, v);
  EncodeSubShardTable(&out, subshards);
  EncodeSubShardTable(&out, subshards_transpose);
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return out;
}

Result<Manifest> Manifest::Decode(const std::string& data) {
  if (data.size() < 4) return Status::Corruption("manifest too short");
  const uint32_t stored_crc = DecodeFixed<uint32_t>(data.data() + data.size() - 4);
  if (stored_crc != crc32c::Value(data.data(), data.size() - 4)) {
    return Status::Corruption("manifest checksum mismatch");
  }
  SliceReader r(data.data(), data.size() - 4);
  Manifest m;
  uint32_t magic = 0, version = 0;
  uint8_t weighted = 0, transpose = 0;
  uint64_t offsets_count = 0;
  if (!r.Read(&magic) || !r.Read(&version) || !r.Read(&m.num_vertices) ||
      !r.Read(&m.num_edges) || !r.Read(&m.num_intervals) ||
      !r.Read(&weighted) || !r.Read(&transpose)) {
    return Status::Corruption("manifest truncated");
  }
  if (magic != kManifestMagic) return Status::Corruption("bad manifest magic");
  if (version < 1 || version > kManifestVersion) {
    return Status::NotSupported("manifest version " + std::to_string(version));
  }
  if (version >= 3 && (!r.Read(&m.summary_bitmap_max_bits) ||
                       !r.Read(&m.summary_bloom_bits))) {
    return Status::Corruption("manifest truncated");
  }
  if (!r.Read(&offsets_count)) return Status::Corruption("manifest truncated");
  m.weighted = weighted != 0;
  m.has_transpose = transpose != 0;
  if (offsets_count != static_cast<uint64_t>(m.num_intervals) + 1) {
    return Status::Corruption("manifest interval table size mismatch");
  }
  m.interval_offsets.resize(offsets_count);
  for (auto& v : m.interval_offsets) {
    if (!r.Read(&v)) return Status::Corruption("manifest truncated");
  }
  if (!DecodeSubShardTable(&r, version, &m.subshards) ||
      !DecodeSubShardTable(&r, version, &m.subshards_transpose)) {
    return Status::Corruption("manifest sub-shard table truncated");
  }
  const uint64_t expected =
      static_cast<uint64_t>(m.num_intervals) * m.num_intervals;
  if (m.subshards.size() != expected ||
      (m.has_transpose && m.subshards_transpose.size() != expected)) {
    return Status::Corruption("manifest sub-shard table size mismatch");
  }
  m.BuildColumnIndex();
  return m;
}

uint64_t Manifest::Fingerprint() const {
  // Canonical topology bytes only: NOT blob offsets/sizes, per-blob format,
  // summaries, or the manifest version — anything a re-encode of the same
  // graph can change must stay out, or a store upgrade would orphan every
  // checkpoint written against it.
  std::string canon;
  EncodeFixed<uint64_t>(&canon, num_vertices);
  EncodeFixed<uint64_t>(&canon, num_edges);
  EncodeFixed<uint32_t>(&canon, num_intervals);
  EncodeFixed<uint8_t>(&canon, weighted ? 1 : 0);
  EncodeFixed<uint8_t>(&canon, has_transpose ? 1 : 0);
  for (VertexId v : interval_offsets) EncodeFixed<uint32_t>(&canon, v);
  for (const auto* table : {&subshards, &subshards_transpose}) {
    EncodeFixed<uint64_t>(&canon, table->size());
    for (const auto& s : *table) {
      EncodeFixed<uint64_t>(&canon, s.num_edges);
      EncodeFixed<uint32_t>(&canon, s.num_dsts);
    }
  }
  const uint64_t crc = crc32c::Value(canon.data(), canon.size());
  // Mix in the counts so the high half is not constant.
  return (crc << 32) ^ (num_vertices * 0x9E3779B97F4A7C15ull) ^ num_edges;
}

uint64_t Manifest::TotalSummaryBytes() const {
  uint64_t total = 0;
  for (const auto* table : {&subshards, &subshards_transpose}) {
    for (const auto& s : *table) {
      total += s.summary.size() * sizeof(uint64_t);
    }
  }
  return total;
}

void Manifest::BuildColumnIndex() {
  const uint32_t p = num_intervals;
  auto build = [p](const std::vector<SubShardMeta>& table,
                   std::vector<std::vector<uint32_t>>* rows) {
    rows->assign(table.empty() ? 0 : p, {});
    for (uint32_t i = 0; i < rows->size(); ++i) {
      auto& cols = (*rows)[i];
      for (uint32_t j = 0; j < p; ++j) {
        if (table[static_cast<size_t>(i) * p + j].num_edges > 0) {
          cols.push_back(j);
        }
      }
    }
  };
  build(subshards, &nonempty_cols_);
  build(subshards_transpose, &nonempty_cols_transpose_);
}

uint64_t Manifest::TotalDecodedSubShardBytes(bool transpose) const {
  const auto& table = transpose ? subshards_transpose : subshards;
  uint64_t total = 0;
  for (const auto& meta : table) total += meta.DecodedBytes(weighted);
  return total;
}

uint32_t Manifest::IntervalOf(VertexId v) const {
  // interval_offsets is ascending; find the last offset <= v.
  auto it = std::upper_bound(interval_offsets.begin(), interval_offsets.end(),
                             v);
  return static_cast<uint32_t>(it - interval_offsets.begin()) - 1;
}

Status WriteManifest(Env* env, const std::string& dir, const Manifest& m) {
  return WriteStringToFile(env, dir + "/" + kManifestFileName, m.Encode());
}

Result<Manifest> ReadManifest(Env* env, const std::string& dir) {
  std::string data;
  NX_RETURN_NOT_OK(ReadFileToString(env, dir + "/" + kManifestFileName, &data));
  return Manifest::Decode(data);
}

}  // namespace nxgraph
