#include "src/prep/manifest.h"

#include <algorithm>

#include "src/util/crc32c.h"
#include "src/util/serialize.h"

namespace nxgraph {

namespace {

void EncodeSubShardTable(std::string* out,
                         const std::vector<SubShardMeta>& table) {
  EncodeFixed<uint64_t>(out, table.size());
  for (const auto& s : table) {
    EncodeFixed<uint64_t>(out, s.offset);
    EncodeFixed<uint64_t>(out, s.size);
    EncodeFixed<uint64_t>(out, s.num_edges);
    EncodeFixed<uint32_t>(out, s.num_dsts);
    EncodeFixed<uint8_t>(out, static_cast<uint8_t>(s.format));
  }
}

// `with_format` distinguishes the version-2 table layout (trailing format
// byte per entry) from version 1, where every blob is implied NXS1.
bool DecodeSubShardTable(SliceReader* r, bool with_format,
                         std::vector<SubShardMeta>* table) {
  uint64_t count = 0;
  if (!r->Read(&count)) return false;
  if (count > (1ULL << 32)) return false;  // implausible; corrupt
  table->resize(count);
  for (auto& s : *table) {
    if (!r->Read(&s.offset) || !r->Read(&s.size) || !r->Read(&s.num_edges) ||
        !r->Read(&s.num_dsts)) {
      return false;
    }
    uint8_t format = static_cast<uint8_t>(SubShardFormat::kNxs1);
    if (with_format && !r->Read(&format)) return false;
    if (format != static_cast<uint8_t>(SubShardFormat::kNxs1) &&
        format != static_cast<uint8_t>(SubShardFormat::kNxs2)) {
      return false;
    }
    s.format = static_cast<SubShardFormat>(format);
  }
  return true;
}

}  // namespace

std::string Manifest::Encode() const {
  std::string out;
  EncodeFixed<uint32_t>(&out, kManifestMagic);
  EncodeFixed<uint32_t>(&out, kManifestVersion);
  EncodeFixed<uint64_t>(&out, num_vertices);
  EncodeFixed<uint64_t>(&out, num_edges);
  EncodeFixed<uint32_t>(&out, num_intervals);
  EncodeFixed<uint8_t>(&out, weighted ? 1 : 0);
  EncodeFixed<uint8_t>(&out, has_transpose ? 1 : 0);
  EncodeFixed<uint64_t>(&out, interval_offsets.size());
  for (VertexId v : interval_offsets) EncodeFixed<uint32_t>(&out, v);
  EncodeSubShardTable(&out, subshards);
  EncodeSubShardTable(&out, subshards_transpose);
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return out;
}

Result<Manifest> Manifest::Decode(const std::string& data) {
  if (data.size() < 4) return Status::Corruption("manifest too short");
  const uint32_t stored_crc = DecodeFixed<uint32_t>(data.data() + data.size() - 4);
  if (stored_crc != crc32c::Value(data.data(), data.size() - 4)) {
    return Status::Corruption("manifest checksum mismatch");
  }
  SliceReader r(data.data(), data.size() - 4);
  Manifest m;
  uint32_t magic = 0, version = 0;
  uint8_t weighted = 0, transpose = 0;
  uint64_t offsets_count = 0;
  if (!r.Read(&magic) || !r.Read(&version) || !r.Read(&m.num_vertices) ||
      !r.Read(&m.num_edges) || !r.Read(&m.num_intervals) ||
      !r.Read(&weighted) || !r.Read(&transpose) || !r.Read(&offsets_count)) {
    return Status::Corruption("manifest truncated");
  }
  if (magic != kManifestMagic) return Status::Corruption("bad manifest magic");
  if (version < 1 || version > kManifestVersion) {
    return Status::NotSupported("manifest version " + std::to_string(version));
  }
  m.weighted = weighted != 0;
  m.has_transpose = transpose != 0;
  if (offsets_count != static_cast<uint64_t>(m.num_intervals) + 1) {
    return Status::Corruption("manifest interval table size mismatch");
  }
  m.interval_offsets.resize(offsets_count);
  for (auto& v : m.interval_offsets) {
    if (!r.Read(&v)) return Status::Corruption("manifest truncated");
  }
  const bool with_format = version >= 2;
  if (!DecodeSubShardTable(&r, with_format, &m.subshards) ||
      !DecodeSubShardTable(&r, with_format, &m.subshards_transpose)) {
    return Status::Corruption("manifest sub-shard table truncated");
  }
  const uint64_t expected =
      static_cast<uint64_t>(m.num_intervals) * m.num_intervals;
  if (m.subshards.size() != expected ||
      (m.has_transpose && m.subshards_transpose.size() != expected)) {
    return Status::Corruption("manifest sub-shard table size mismatch");
  }
  return m;
}

uint64_t Manifest::Fingerprint() const {
  const std::string encoded = Encode();
  const uint64_t crc = crc32c::Value(encoded.data(), encoded.size());
  // Mix in the counts so the high half is not constant.
  return (crc << 32) ^ (num_vertices * 0x9E3779B97F4A7C15ull) ^ num_edges;
}

uint64_t Manifest::TotalDecodedSubShardBytes(bool transpose) const {
  const auto& table = transpose ? subshards_transpose : subshards;
  uint64_t total = 0;
  for (const auto& meta : table) total += meta.DecodedBytes(weighted);
  return total;
}

uint32_t Manifest::IntervalOf(VertexId v) const {
  // interval_offsets is ascending; find the last offset <= v.
  auto it = std::upper_bound(interval_offsets.begin(), interval_offsets.end(),
                             v);
  return static_cast<uint32_t>(it - interval_offsets.begin()) - 1;
}

Status WriteManifest(Env* env, const std::string& dir, const Manifest& m) {
  return WriteStringToFile(env, dir + "/" + kManifestFileName, m.Encode());
}

Result<Manifest> ReadManifest(Env* env, const std::string& dir) {
  std::string data;
  NX_RETURN_NOT_OK(ReadFileToString(env, dir + "/" + kManifestFileName, &data));
  return Manifest::Decode(data);
}

}  // namespace nxgraph
