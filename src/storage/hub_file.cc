#include "src/storage/hub_file.h"

#include <cstring>
#include <utility>

#include "src/io/writeback.h"
#include "src/util/serialize.h"

namespace nxgraph {

Result<std::unique_ptr<HubFile>> HubFile::Create(Env* env,
                                                 const std::string& path,
                                                 const Manifest& manifest,
                                                 uint32_t q,
                                                 uint32_t value_bytes,
                                                 bool transpose) {
  const uint32_t p = manifest.num_intervals;
  if (q > p) return Status::InvalidArgument("q exceeds interval count");
  std::unique_ptr<HubFile> hub(new HubFile());
  hub->p_ = p;
  hub->q_ = q;
  hub->value_bytes_ = value_bytes;
  const uint32_t side = p - q;
  hub->offsets_.resize(static_cast<size_t>(side) * side);
  hub->capacities_.resize(static_cast<size_t>(side) * side);
  uint64_t offset = 0;
  for (uint32_t i = q; i < p; ++i) {
    for (uint32_t j = q; j < p; ++j) {
      const auto& meta = manifest.subshard(i, j, transpose);
      const uint64_t capacity =
          8 + static_cast<uint64_t>(meta.num_dsts) * (4 + value_bytes);
      const size_t idx =
          static_cast<size_t>(i - q) * side + (j - q);
      hub->offsets_[idx] = offset;
      hub->capacities_[idx] = capacity;
      offset += capacity;
    }
  }
  hub->total_bytes_ = offset;
  std::unique_ptr<WritableFile> init;
  NX_RETURN_NOT_OK(env->NewWritableFile(path, &init));
  NX_RETURN_NOT_OK(init->Close());
  NX_RETURN_NOT_OK(env->NewRandomWriteFile(path, &hub->writer_));
  NX_RETURN_NOT_OK(hub->writer_->Truncate(offset));
  NX_RETURN_NOT_OK(env->NewRandomAccessFile(path, &hub->reader_));
  return hub;
}

size_t HubFile::SegmentIndex(uint32_t i, uint32_t j) const {
  const uint32_t side = p_ - q_;
  return static_cast<size_t>(i - q_) * side + (j - q_);
}

uint64_t HubFile::SegmentCapacity(uint32_t i, uint32_t j) const {
  return capacities_[SegmentIndex(i, j)];
}

Status HubFile::WriteHub(uint32_t i, uint32_t j, const void* data,
                         size_t bytes) {
  const size_t idx = SegmentIndex(i, j);
  if (bytes > capacities_[idx]) {
    return Status::InvalidArgument("hub payload exceeds segment capacity");
  }
  return writer_->WriteAt(offsets_[idx], data, bytes);
}

Status HubFile::WriteHub(WritebackQueue* wb, uint32_t i, uint32_t j,
                         std::string payload) {
  if (wb == nullptr) return WriteHub(i, j, payload.data(), payload.size());
  const size_t idx = SegmentIndex(i, j);
  if (payload.size() > capacities_[idx]) {
    return Status::InvalidArgument("hub payload exceeds segment capacity");
  }
  return wb->Push(writer_.get(), offsets_[idx], std::move(payload));
}

Status HubFile::ReadHub(uint32_t i, uint32_t j, std::string* out) const {
  const size_t idx = SegmentIndex(i, j);
  // Read the count prefix first, then exactly the payload.
  char count_buf[8];
  size_t n = 0;
  NX_RETURN_NOT_OK(
      reader_->ReadAt(offsets_[idx], sizeof(count_buf), count_buf, &n));
  // The truncation and bad-count cases are marked retryable: the file has
  // its full preallocated size (Create wrote every segment), so a short
  // read is a transient transfer hiccup and a count exceeding the segment
  // capacity is bus/DMA garbage — both heal on a fresh read, and a real
  // on-medium corruption still fails after the pipeline's bounded retries.
  if (n != sizeof(count_buf)) {
    return Status::MakeRetryable(Status::Corruption("hub prefix truncated"));
  }
  const uint64_t count = DecodeFixed<uint64_t>(count_buf);
  const uint64_t payload = count * (4 + value_bytes_);
  if (8 + payload > capacities_[idx]) {
    return Status::MakeRetryable(
        Status::Corruption("hub entry count exceeds capacity"));
  }
  out->resize(8 + payload);
  std::memcpy(out->data(), count_buf, 8);
  if (payload > 0) {
    NX_RETURN_NOT_OK(reader_->ReadAt(offsets_[idx] + 8, payload,
                                     out->data() + 8, &n));
    if (n != payload) {
      return Status::MakeRetryable(
          Status::Corruption("hub payload truncated"));
    }
  }
  return Status::OK();
}

}  // namespace nxgraph
