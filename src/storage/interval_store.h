// IntervalStore: on-disk vertex attribute segments with ping-pong parity,
// used by DPU/MPU for intervals that do not fit in memory.
#ifndef NXGRAPH_STORAGE_INTERVAL_STORE_H_
#define NXGRAPH_STORAGE_INTERVAL_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/prep/manifest.h"
#include "src/util/result.h"

namespace nxgraph {

class WritebackQueue;

/// \brief Raw attribute file: for each interval i, two fixed segments
/// ("ping" and "pong") of interval_size(i) * value_bytes bytes. The engine
/// reads the previous iteration's parity and writes the next one, so a
/// consistent snapshot always exists (paper §II-B consistency task).
///
/// Value types are engine templates; this class moves opaque bytes.
class IntervalStore {
 public:
  /// Creates (truncating) the attribute file sized for `manifest` with
  /// `value_bytes` per vertex.
  static Result<std::unique_ptr<IntervalStore>> Create(
      Env* env, const std::string& path, const Manifest& manifest,
      uint32_t value_bytes);

  /// Opens an existing attribute file WITHOUT truncating it — the resume
  /// path: the surviving ping/pong segments are the checkpointed state.
  /// Fails with NotFound when the file is missing and Corruption when its
  /// size does not match the manifest/value_bytes layout.
  static Result<std::unique_ptr<IntervalStore>> Open(
      Env* env, const std::string& path, const Manifest& manifest,
      uint32_t value_bytes);

  /// Reads interval `i`'s segment of the given parity (0 or 1) into `buf`
  /// (must hold interval_size(i) * value_bytes bytes).
  Status Read(uint32_t interval, int parity, void* buf) const;

  /// Writes interval `i`'s segment of the given parity from `buf`.
  Status Write(uint32_t interval, int parity, const void* buf);

  /// Write-behind variant: `buf` (segment_bytes(interval) long) is copied
  /// into the queue only when `wb` is asynchronous — write errors then
  /// surface from its next Drain(). `wb == nullptr` or a synchronous
  /// queue writes inline straight from `buf`.
  Status Write(WritebackQueue* wb, uint32_t interval, int parity,
               const void* buf);

  /// Durability barrier: forces every completed Write to the device.
  /// The checkpoint path calls this when no write-behind queue exists to
  /// carry the flush (writes pushed through a queue are synced by its
  /// Drain(sync=true) instead).
  Status Sync() { return writer_->Flush(); }

  uint64_t segment_bytes(uint32_t interval) const {
    return static_cast<uint64_t>(sizes_[interval]) * value_bytes_;
  }

  /// Total file size: sum of both parity segments over all intervals.
  uint64_t total_bytes() const { return total_bytes_; }

 private:
  IntervalStore() = default;

  static Result<std::unique_ptr<IntervalStore>> Layout(
      const Manifest& manifest, uint32_t value_bytes);

  uint32_t value_bytes_ = 0;
  uint64_t total_bytes_ = 0;
  std::vector<uint64_t> offsets_;  // byte offset of interval i's ping segment
  std::vector<uint32_t> sizes_;    // vertices per interval
  std::unique_ptr<RandomWriteFile> writer_;
  std::unique_ptr<RandomAccessFile> reader_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_INTERVAL_STORE_H_
