// The Destination-Sorted Sub-Shard (DSSS): the paper's core storage unit.
#ifndef NXGRAPH_STORAGE_SUBSHARD_H_
#define NXGRAPH_STORAGE_SUBSHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/types.h"
#include "src/storage/subshard_format.h"
#include "src/util/result.h"
#include "src/util/simd_varint.h"

namespace nxgraph {

/// \brief Reusable decode working memory. The NXS2 decoder stages raw
/// varint values in a flat scratch array before the delta reconstruction
/// loops; callers decoding many blobs (GraphStore::DecodeSubShardRow) keep
/// one of these per thread so the staging buffer is allocated once instead
/// of per blob. Passing nullptr makes Decode use a local buffer.
struct SubShardDecodeScratch {
  std::vector<uint32_t> u32;
};

/// \brief Per-thread decode accounting, accumulated by SubShard::Decode.
/// Queries run single-threaded on a worker (and a cache-miss leader decodes
/// on its own thread), so snapshotting these around a section attributes
/// decode work to exactly that section; GraphStore folds thread deltas into
/// process-wide atomics for RunStats / server stats.
struct DecodeTallies {
  uint64_t blob_decodes = 0;      ///< SubShard::Decode calls (any format)
  uint64_t bulk_decode_calls = 0; ///< BulkGetVarint32 stream scans (NXS2)
  uint64_t decode_nanos = 0;      ///< wall time inside SubShard::Decode
};

/// The calling thread's decode tallies (monotone; never reset).
DecodeTallies& ThreadDecodeTallies();

/// \brief One decoded sub-shard SS_{i.j}: all edges with source in interval
/// I_i and destination in interval I_j, in compressed sparse (CSR-like) form
/// grouped by destination.
///
/// Invariants:
///  - `dsts` is strictly ascending (each destination appears once);
///  - `offsets.size() == dsts.size() + 1`, `offsets.front() == 0`,
///    `offsets.back() == srcs.size()`;
///  - within each destination group, `srcs` is ascending (the paper's
///    secondary sort for CPU-cache-friendly source interval reads);
///  - `weights` is empty or parallel to `srcs`.
struct SubShard {
  uint32_t src_interval = 0;
  uint32_t dst_interval = 0;

  std::vector<VertexId> dsts;
  std::vector<uint32_t> offsets;
  std::vector<VertexId> srcs;
  std::vector<float> weights;

  uint64_t num_edges() const { return srcs.size(); }
  uint32_t num_dsts() const { return static_cast<uint32_t>(dsts.size()); }
  bool empty() const { return srcs.empty(); }

  /// Approximate decoded footprint, used for cache accounting.
  uint64_t MemoryBytes() const {
    return dsts.size() * sizeof(VertexId) + offsets.size() * sizeof(uint32_t) +
           srcs.size() * sizeof(VertexId) + weights.size() * sizeof(float);
  }

  /// Serializes to the on-disk blob representation (with checksum) in the
  /// given format; the no-argument overload uses the process default
  /// (NXGRAPH_SUBSHARD_FORMAT, kNxs2 when unset). Both formats decode to
  /// the exact same in-memory SubShard.
  std::string Encode(SubShardFormat format) const;
  std::string Encode() const { return Encode(DefaultSubShardFormat()); }

  /// Decodes a blob produced by Encode() of either format (the leading
  /// magic dispatches). `verify_checksum` may be false when the same blob
  /// was already verified this session (repeat streaming reloads);
  /// structural validation still runs. `scratch`, when non-null, provides
  /// reusable staging memory for the NXS2 varint decoder. `path` selects
  /// the varint decode implementation; every path produces bit-identical
  /// SubShards and the identical accept/reject set (corrupt blobs are
  /// Status::Corruption on all of them), so it is purely a performance
  /// knob (RunOptions::simd_decode).
  static Result<SubShard> Decode(
      const char* data, size_t size, uint32_t src_interval,
      uint32_t dst_interval, bool verify_checksum = true,
      SubShardDecodeScratch* scratch = nullptr,
      DecodePath path = ResolveDecodePath(SimdDecode::kAuto));

  /// Index of the first entry in `dsts` with id >= `v` (for destination-
  /// chunked scheduling).
  uint32_t LowerBoundDst(VertexId v) const;
};

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_SUBSHARD_H_
