// HubFile: preallocated per-sub-shard segments holding the DPU/MPU
// intermediate "hub" data — (destination id, partial accumulated value)
// pairs written in the ToHub phase and folded in the FromHub phase.
#ifndef NXGRAPH_STORAGE_HUB_FILE_H_
#define NXGRAPH_STORAGE_HUB_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/prep/manifest.h"
#include "src/util/result.h"

namespace nxgraph {

class WritebackQueue;

/// \brief Hub storage for the sub-shards SS_{i.j} with i >= q and j >= q
/// (q = number of memory-resident intervals; q = 0 for pure DPU).
///
/// Segment capacity is num_dsts(i,j) * (4 + value_bytes) + 8 — every
/// destination with any in-edge in the sub-shard can appear at most once
/// because the ToHub phase pre-accumulates per destination. Segments are
/// written whole with pwrite, so rows can overlap without locking, and both
/// phases touch each hub exactly once per iteration (sequential within a
/// segment, forward-marching across segments => streamlined I/O).
class HubFile {
 public:
  /// `transpose` selects which sub-shard table sizes the segments (the
  /// transpose table generally has different num_dsts per sub-shard).
  static Result<std::unique_ptr<HubFile>> Create(Env* env,
                                                 const std::string& path,
                                                 const Manifest& manifest,
                                                 uint32_t q,
                                                 uint32_t value_bytes,
                                                 bool transpose = false);

  /// Writes the hub payload for SS_{i.j}. `data` is the serialized entry
  /// array (count-prefixed); its size must not exceed the segment capacity.
  Status WriteHub(uint32_t i, uint32_t j, const void* data, size_t bytes);

  /// Write-behind variant: validates the payload against the segment
  /// capacity, then hands the owned buffer to `wb` (write errors surface
  /// from the queue's next Drain()). `wb == nullptr` writes synchronously.
  Status WriteHub(WritebackQueue* wb, uint32_t i, uint32_t j,
                  std::string payload);

  /// Reads the hub payload for SS_{i.j} into `out` (resized to the
  /// count-prefixed payload length).
  Status ReadHub(uint32_t i, uint32_t j, std::string* out) const;

  /// Capacity in bytes of segment (i, j).
  uint64_t SegmentCapacity(uint32_t i, uint32_t j) const;

  uint64_t total_bytes() const { return total_bytes_; }

 private:
  HubFile() = default;

  size_t SegmentIndex(uint32_t i, uint32_t j) const;

  uint32_t p_ = 0;
  uint32_t q_ = 0;
  uint32_t value_bytes_ = 0;
  uint64_t total_bytes_ = 0;
  std::vector<uint64_t> offsets_;     // per segment
  std::vector<uint64_t> capacities_;  // per segment
  std::unique_ptr<RandomWriteFile> writer_;
  std::unique_ptr<RandomAccessFile> reader_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_HUB_FILE_H_
