// SubShard blob encode/decode: the raw fixed-width NXS1 format and the
// delta-varint NXS2 format. Byte layouts are specified in
// docs/storage-format.md; both decode to the exact same in-memory SubShard.
#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "src/storage/subshard.h"
#include "src/util/crc32c.h"
#include "src/util/serialize.h"
#include "src/util/simd_varint.h"
#include "src/util/varint.h"

namespace nxgraph {

namespace {
constexpr uint32_t kSubShardMagicV1 = 0x3153584Eu;  // "NXS1"
constexpr uint32_t kSubShardMagicV2 = 0x3253584Eu;  // "NXS2"
constexpr uint32_t kFlagWeighted = 1u << 0;

// ---- NXS1: raw fixed-width arrays -----------------------------------------

std::string EncodeNxs1(const SubShard& ss) {
  std::string out;
  EncodeFixed<uint32_t>(&out, kSubShardMagicV1);
  EncodeFixed<uint32_t>(&out, ss.weights.empty() ? 0 : kFlagWeighted);
  EncodeFixed<uint32_t>(&out, static_cast<uint32_t>(ss.dsts.size()));
  EncodeFixed<uint64_t>(&out, ss.srcs.size());
  auto append_array = [&out](const void* data, size_t bytes) {
    out.append(static_cast<const char*>(data), bytes);
  };
  append_array(ss.dsts.data(), ss.dsts.size() * sizeof(VertexId));
  // Offsets are stored as per-destination counts; prefix sums are
  // reconstructed on load. Counts compress better and cannot be internally
  // inconsistent.
  for (size_t k = 0; k < ss.dsts.size(); ++k) {
    EncodeFixed<uint32_t>(&out, ss.offsets[k + 1] - ss.offsets[k]);
  }
  append_array(ss.srcs.data(), ss.srcs.size() * sizeof(VertexId));
  if (!ss.weights.empty()) {
    append_array(ss.weights.data(), ss.weights.size() * sizeof(float));
  }
  return out;
}

Result<SubShard> DecodeNxs1(const char* data, size_t size) {
  if (size < 20) return Status::Corruption("sub-shard blob too short");
  SliceReader r(data, size);
  uint32_t magic = 0, flags = 0, num_dsts = 0;
  uint64_t num_edges = 0;
  r.Read(&magic);
  r.Read(&flags);
  r.Read(&num_dsts);
  r.Read(&num_edges);
  // Every destination costs 8 body bytes (dsts + counts) and every edge at
  // least 4 (srcs), so counts beyond those bounds are corrupt — checked
  // before any resize so a corrupt header (reachable with verify_checksum
  // off) fails as Corruption instead of attempting a huge allocation.
  if (num_dsts > r.remaining() / 8 || num_edges > r.remaining() / 4) {
    return Status::Corruption("sub-shard header counts exceed blob size");
  }
  SubShard ss;
  ss.dsts.resize(num_dsts);
  if (!r.ReadBytes(ss.dsts.data(), num_dsts * sizeof(VertexId))) {
    return Status::Corruption("sub-shard dsts truncated");
  }
  ss.offsets.resize(num_dsts + 1);
  ss.offsets[0] = 0;
  for (uint32_t k = 0; k < num_dsts; ++k) {
    uint32_t count = 0;
    if (!r.Read(&count)) return Status::Corruption("sub-shard counts truncated");
    ss.offsets[k + 1] = ss.offsets[k] + count;
  }
  if (ss.offsets[num_dsts] != num_edges) {
    return Status::Corruption("sub-shard count/edge mismatch");
  }
  ss.srcs.resize(num_edges);
  if (!r.ReadBytes(ss.srcs.data(), num_edges * sizeof(VertexId))) {
    return Status::Corruption("sub-shard srcs truncated");
  }
  if (flags & kFlagWeighted) {
    ss.weights.resize(num_edges);
    if (!r.ReadBytes(ss.weights.data(), num_edges * sizeof(float))) {
      return Status::Corruption("sub-shard weights truncated");
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption("sub-shard trailing bytes");
  }
  return ss;
}

// ---- NXS2: delta-varint streams -------------------------------------------
//
// The SubShard invariants make the arrays near-ideal varint material:
// `dsts` is strictly ascending (delta - 1 per entry), per-destination
// counts are small, and `srcs` is ascending within each destination group
// (group-leading absolute value, then deltas). Weights stay raw floats —
// they do not compress. Streams are kept separate (all dst deltas, then
// all counts, then all src values) so each decode stage is one bulk varint
// scan into scratch followed by a tight reconstruction loop.

std::string EncodeNxs2(const SubShard& ss) {
  std::string out;
  const uint32_t num_dsts = static_cast<uint32_t>(ss.dsts.size());
  // Exact sizing pass: Varint32Size/Varint64Size are a few cycles per value
  // and encode runs at build time, so one extra scan buys a single
  // allocation instead of a worst-case-guess reserve that either wastes
  // memory or reallocates mid-append.
  size_t need = 8 + Varint32Size(num_dsts) + Varint64Size(ss.srcs.size());
  for (uint32_t k = 0; k < num_dsts; ++k) {
    need += Varint32Size(k == 0 ? ss.dsts[0]
                                : ss.dsts[k] - ss.dsts[k - 1] - 1);
    need += Varint32Size(ss.offsets[k + 1] - ss.offsets[k]);
  }
  for (uint32_t g = 0; g < num_dsts; ++g) {
    for (uint32_t k = ss.offsets[g]; k < ss.offsets[g + 1]; ++k) {
      need += Varint32Size(k == ss.offsets[g] ? ss.srcs[k]
                                              : ss.srcs[k] - ss.srcs[k - 1]);
    }
  }
  need += ss.weights.size() * sizeof(float);
  out.reserve(need);
  EncodeFixed<uint32_t>(&out, kSubShardMagicV2);
  EncodeFixed<uint32_t>(&out, ss.weights.empty() ? 0 : kFlagWeighted);
  PutVarint32(&out, num_dsts);
  PutVarint64(&out, ss.srcs.size());
  for (uint32_t k = 0; k < num_dsts; ++k) {
    PutVarint32(&out, k == 0 ? ss.dsts[0] : ss.dsts[k] - ss.dsts[k - 1] - 1);
  }
  for (uint32_t k = 0; k < num_dsts; ++k) {
    PutVarint32(&out, ss.offsets[k + 1] - ss.offsets[k]);
  }
  for (uint32_t g = 0; g < num_dsts; ++g) {
    for (uint32_t k = ss.offsets[g]; k < ss.offsets[g + 1]; ++k) {
      PutVarint32(&out,
                  k == ss.offsets[g] ? ss.srcs[k] : ss.srcs[k] - ss.srcs[k - 1]);
    }
  }
  if (!ss.weights.empty()) {
    out.append(reinterpret_cast<const char*>(ss.weights.data()),
               ss.weights.size() * sizeof(float));
  }
  assert(out.size() == need);  // the sizing pass is exact: no reallocation
  return out;
}

Result<SubShard> DecodeNxs2(const char* data, size_t size,
                            SubShardDecodeScratch* scratch, DecodePath path) {
  const char* p = data + 8;  // past magic + flags
  const char* limit = data + size;
  const uint32_t flags = DecodeFixed<uint32_t>(data + 4);
  uint32_t num_dsts = 0;
  uint64_t num_edges = 0;
  if ((p = GetVarint32(p, limit, &num_dsts)) == nullptr ||
      (p = GetVarint64(p, limit, &num_edges)) == nullptr) {
    return Status::Corruption("sub-shard header varint malformed");
  }
  // Every destination and edge costs at least one stream byte, so counts
  // beyond the body size are corrupt — checked before any resize so a
  // corrupt header (reachable with verify_checksum off) cannot trigger a
  // huge allocation.
  const size_t body = static_cast<size_t>(limit - p);
  if (num_dsts > body || num_edges > body) {
    return Status::Corruption("sub-shard header counts exceed blob size");
  }

  SubShardDecodeScratch local;
  if (scratch == nullptr) scratch = &local;
  // One resize sized from the header's value counts covers all three
  // stream scans; nothing below may grow the staging buffer.
  scratch->u32.resize(std::max<size_t>(num_dsts, num_edges));
  uint32_t* stage = scratch->u32.data();

  DecodeTallies& tallies = ThreadDecodeTallies();

  SubShard ss;
  ss.dsts.resize(num_dsts);
  ss.offsets.resize(num_dsts + 1);
  ss.srcs.resize(num_edges);

  // dsts: leading absolute value, then (delta - 1) per entry — strict
  // ascent is guaranteed by construction, so reconstruction needs no
  // per-element comparison; only the final accumulator can overflow 32
  // bits, and monotonicity makes the single end check on the exact 64-bit
  // sum returned by DeltaPrefixSumU32 sufficient.
  if ((p = BulkGetVarint32(p, limit, stage, num_dsts, path)) == nullptr) {
    return Status::Corruption("sub-shard dsts truncated");
  }
  ++tallies.bulk_decode_calls;
  if (DeltaPrefixSumU32(stage, num_dsts, 1, ss.dsts.data(), path) >
      UINT32_MAX) {
    return Status::Corruption("sub-shard dsts overflow");
  }

  // Per-destination counts -> offsets prefix sums.
  if ((p = BulkGetVarint32(p, limit, stage, num_dsts, path)) == nullptr) {
    return Status::Corruption("sub-shard counts truncated");
  }
  ++tallies.bulk_decode_calls;
  ss.offsets[0] = 0;
  if (DeltaPrefixSumU32(stage, num_dsts, 0, ss.offsets.data() + 1, path) !=
      num_edges) {
    return Status::Corruption("sub-shard count/edge mismatch");
  }

  // srcs: per group, a leading absolute value followed by deltas (ascending
  // within the group, so deltas are >= 0 and per-group monotone).
  if ((p = BulkGetVarint32(p, limit, stage, num_edges, path)) == nullptr) {
    return Status::Corruption("sub-shard srcs truncated");
  }
  ++tallies.bulk_decode_calls;
  // Destination groups average only a handful of edges, so per-group kernel
  // dispatch would dominate: small groups run a fused inline loop instead,
  // with exactly the arithmetic DeltaPrefixSumU32 specifies (u32 wraparound
  // outputs, exact u64 group total) — outputs and corruption outcomes stay
  // bit-identical across decode paths by construction.
  for (uint32_t g = 0; g < num_dsts; ++g) {
    const uint32_t kb = ss.offsets[g];
    const uint32_t ke = ss.offsets[g + 1];
    if (kb == ke) continue;
    uint64_t group_total;
    if (ke - kb >= 16) {
      group_total = DeltaPrefixSumU32(stage + kb, ke - kb, 0,
                                      ss.srcs.data() + kb, path);
    } else {
      uint32_t acc = stage[kb];
      group_total = acc;
      ss.srcs[kb] = acc;
      for (uint32_t k = kb + 1; k < ke; ++k) {
        acc += stage[k];
        group_total += stage[k];
        ss.srcs[k] = acc;
      }
    }
    if (group_total > UINT32_MAX) {
      return Status::Corruption("sub-shard srcs overflow");
    }
  }
  assert(scratch->u32.data() == stage);  // header-sized; never reallocated

  if (flags & kFlagWeighted) {
    ss.weights.resize(num_edges);
    const size_t weight_bytes = num_edges * sizeof(float);
    if (static_cast<size_t>(limit - p) < weight_bytes) {
      return Status::Corruption("sub-shard weights truncated");
    }
    std::memcpy(ss.weights.data(), p, weight_bytes);
    p += weight_bytes;
  }
  if (p != limit) {
    return Status::Corruption("sub-shard trailing bytes");
  }
  return ss;
}

}  // namespace

DecodeTallies& ThreadDecodeTallies() {
  thread_local DecodeTallies tallies;
  return tallies;
}

std::string SubShard::Encode(SubShardFormat format) const {
  std::string out = format == SubShardFormat::kNxs2 ? EncodeNxs2(*this)
                                                    : EncodeNxs1(*this);
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return out;
}

Result<SubShard> SubShard::Decode(const char* data, size_t size,
                                  uint32_t src_interval,
                                  uint32_t dst_interval,
                                  bool verify_checksum,
                                  SubShardDecodeScratch* scratch,
                                  DecodePath path) {
  const auto start = std::chrono::steady_clock::now();
  // Smallest valid blob: NXS2 magic + flags + two single-byte varints +
  // CRC. The magic is only trusted after the size (and optionally the
  // checksum) admit the blob.
  if (size < 14) return Status::Corruption("sub-shard blob too short");
  if (verify_checksum) {
    const uint32_t stored_crc = DecodeFixed<uint32_t>(data + size - 4);
    if (stored_crc != crc32c::Value(data, size - 4)) {
      return Status::Corruption("sub-shard checksum mismatch");
    }
  }
  const uint32_t magic = DecodeFixed<uint32_t>(data);
  Result<SubShard> decoded =
      magic == kSubShardMagicV1 ? DecodeNxs1(data, size - 4)
      : magic == kSubShardMagicV2
          ? DecodeNxs2(data, size - 4, scratch, path)
          : Status::Corruption("bad sub-shard magic");
  DecodeTallies& tallies = ThreadDecodeTallies();
  ++tallies.blob_decodes;
  tallies.decode_nanos += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  if (!decoded.ok()) return decoded;
  decoded->src_interval = src_interval;
  decoded->dst_interval = dst_interval;
  return decoded;
}

uint32_t SubShard::LowerBoundDst(VertexId v) const {
  return static_cast<uint32_t>(
      std::lower_bound(dsts.begin(), dsts.end(), v) - dsts.begin());
}

bool ParseSubShardFormat(const std::string& name, SubShardFormat* out) {
  if (name == "nxs1") {
    *out = SubShardFormat::kNxs1;
  } else if (name == "nxs2") {
    *out = SubShardFormat::kNxs2;
  } else {
    return false;
  }
  return true;
}

SubShardFormat DefaultSubShardFormat() {
  static const SubShardFormat format = [] {
    SubShardFormat f = SubShardFormat::kNxs2;
    const char* name = std::getenv("NXGRAPH_SUBSHARD_FORMAT");
    if (name != nullptr) (void)ParseSubShardFormat(name, &f);
    return f;
  }();
  return format;
}

}  // namespace nxgraph
