#include <algorithm>
#include <cstring>

#include "src/storage/subshard.h"
#include "src/util/crc32c.h"
#include "src/util/serialize.h"

namespace nxgraph {

namespace {
constexpr uint32_t kSubShardMagic = 0x3153584Eu;  // "NXS1"
constexpr uint32_t kFlagWeighted = 1u << 0;
}  // namespace

std::string SubShard::Encode() const {
  std::string out;
  EncodeFixed<uint32_t>(&out, kSubShardMagic);
  EncodeFixed<uint32_t>(&out, weights.empty() ? 0 : kFlagWeighted);
  EncodeFixed<uint32_t>(&out, static_cast<uint32_t>(dsts.size()));
  EncodeFixed<uint64_t>(&out, srcs.size());
  auto append_array = [&out](const void* data, size_t bytes) {
    out.append(static_cast<const char*>(data), bytes);
  };
  append_array(dsts.data(), dsts.size() * sizeof(VertexId));
  // Offsets are stored as per-destination counts; prefix sums are
  // reconstructed on load. Counts compress better and cannot be internally
  // inconsistent.
  for (size_t k = 0; k < dsts.size(); ++k) {
    EncodeFixed<uint32_t>(&out, offsets[k + 1] - offsets[k]);
  }
  append_array(srcs.data(), srcs.size() * sizeof(VertexId));
  if (!weights.empty()) {
    append_array(weights.data(), weights.size() * sizeof(float));
  }
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return out;
}

Result<SubShard> SubShard::Decode(const char* data, size_t size,
                                  uint32_t src_interval,
                                  uint32_t dst_interval,
                                  bool verify_checksum) {
  if (size < 24) return Status::Corruption("sub-shard blob too short");
  if (verify_checksum) {
    const uint32_t stored_crc = DecodeFixed<uint32_t>(data + size - 4);
    if (stored_crc != crc32c::Value(data, size - 4)) {
      return Status::Corruption("sub-shard checksum mismatch");
    }
  }
  SliceReader r(data, size - 4);
  uint32_t magic = 0, flags = 0, num_dsts = 0;
  uint64_t num_edges = 0;
  r.Read(&magic);
  r.Read(&flags);
  r.Read(&num_dsts);
  r.Read(&num_edges);
  if (magic != kSubShardMagic) {
    return Status::Corruption("bad sub-shard magic");
  }
  SubShard ss;
  ss.src_interval = src_interval;
  ss.dst_interval = dst_interval;
  ss.dsts.resize(num_dsts);
  if (!r.ReadBytes(ss.dsts.data(), num_dsts * sizeof(VertexId))) {
    return Status::Corruption("sub-shard dsts truncated");
  }
  ss.offsets.resize(num_dsts + 1);
  ss.offsets[0] = 0;
  for (uint32_t k = 0; k < num_dsts; ++k) {
    uint32_t count = 0;
    if (!r.Read(&count)) return Status::Corruption("sub-shard counts truncated");
    ss.offsets[k + 1] = ss.offsets[k] + count;
  }
  if (ss.offsets[num_dsts] != num_edges) {
    return Status::Corruption("sub-shard count/edge mismatch");
  }
  ss.srcs.resize(num_edges);
  if (!r.ReadBytes(ss.srcs.data(), num_edges * sizeof(VertexId))) {
    return Status::Corruption("sub-shard srcs truncated");
  }
  if (flags & kFlagWeighted) {
    ss.weights.resize(num_edges);
    if (!r.ReadBytes(ss.weights.data(), num_edges * sizeof(float))) {
      return Status::Corruption("sub-shard weights truncated");
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption("sub-shard trailing bytes");
  }
  return ss;
}

uint32_t SubShard::LowerBoundDst(VertexId v) const {
  return static_cast<uint32_t>(
      std::lower_bound(dsts.begin(), dsts.end(), v) - dsts.begin());
}

}  // namespace nxgraph
