// On-disk sub-shard blob format selection. Kept in its own tiny header so
// the prep layer (SharderOptions) and the public API (BuildOptions) can name
// a format without pulling in the full SubShard interface.
#ifndef NXGRAPH_STORAGE_SUBSHARD_FORMAT_H_
#define NXGRAPH_STORAGE_SUBSHARD_FORMAT_H_

#include <string>

namespace nxgraph {

/// Which blob encoding a sub-shard is written with. Every blob is
/// self-describing (the leading magic names its format), so a store may mix
/// formats and SubShard::Decode dispatches per blob — the format choice only
/// affects what the sharder WRITES. Decoded results are identical.
enum class SubShardFormat {
  kNxs1 = 1,  ///< raw fixed-width arrays ("NXS1"): uint32 dsts/counts/srcs.
  kNxs2 = 2,  ///< delta-varint compact encoding ("NXS2"): varint deltas for
              ///< dsts, varint per-destination counts, delta-varint srcs
              ///< within each destination group; weights stay raw floats.
              ///< 2-4x smaller on unweighted power-law graphs — see
              ///< docs/storage-format.md.
};

inline const char* SubShardFormatName(SubShardFormat f) {
  switch (f) {
    case SubShardFormat::kNxs1:
      return "nxs1";
    case SubShardFormat::kNxs2:
      return "nxs2";
  }
  return "?";
}

/// Parses "nxs1" / "nxs2"; returns false on anything else.
bool ParseSubShardFormat(const std::string& name, SubShardFormat* out);

/// The default write format: kNxs2, overridable by the
/// NXGRAPH_SUBSHARD_FORMAT environment variable ("nxs1" | "nxs2") so the
/// whole test/bench suite can be swept across formats without code changes
/// (CI's subshard-formats job); an unparseable value is ignored. Read once
/// and cached.
SubShardFormat DefaultSubShardFormat();

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_SUBSHARD_FORMAT_H_
