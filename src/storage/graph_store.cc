#include "src/storage/graph_store.h"

#include <mutex>
#include <unordered_map>

#include "src/prep/degreer.h"

namespace nxgraph {

Result<std::shared_ptr<GraphStore>> GraphStore::Open(Env* env,
                                                     const std::string& dir) {
  std::shared_ptr<GraphStore> store(new GraphStore(env, dir));
  NX_ASSIGN_OR_RETURN(store->manifest_, ReadManifest(env, dir));
  NX_RETURN_NOT_OK(env->NewRandomAccessFile(dir + "/" + kSubShardsFileName,
                                            &store->shards_));
  if (store->manifest_.has_transpose) {
    NX_RETURN_NOT_OK(env->NewRandomAccessFile(
        dir + "/" + kSubShardsTransposeFileName, &store->shards_transpose_));
  }
  return store;
}

Result<SubShard> GraphStore::LoadSubShard(uint32_t i, uint32_t j,
                                          bool transpose,
                                          bool verify_checksum) const {
  if (i >= num_intervals() || j >= num_intervals()) {
    return Status::InvalidArgument("sub-shard index out of range");
  }
  if (transpose && !manifest_.has_transpose) {
    return Status::InvalidArgument("store was built without a transpose");
  }
  const SubShardMeta& meta = manifest_.subshard(i, j, transpose);
  std::string buf(meta.size, '\0');
  size_t n = 0;
  const RandomAccessFile* file =
      transpose ? shards_transpose_.get() : shards_.get();
  NX_RETURN_NOT_OK(file->ReadAt(meta.offset, meta.size, buf.data(), &n));
  if (n != meta.size) {
    return Status::Corruption("sub-shard blob truncated on disk");
  }
  return SubShard::Decode(buf.data(), buf.size(), i, j, verify_checksum);
}

Result<std::vector<SubShard>> GraphStore::LoadSubShardRow(
    uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
    bool verify_checksums) const {
  if (i >= num_intervals() || j_begin > j_end || j_end > num_intervals()) {
    return Status::InvalidArgument("sub-shard row range out of bounds");
  }
  if (transpose && !manifest_.has_transpose) {
    return Status::InvalidArgument("store was built without a transpose");
  }
  std::vector<SubShard> row;
  if (j_begin == j_end) return row;
  const SubShardMeta& first = manifest_.subshard(i, j_begin, transpose);
  const SubShardMeta& last = manifest_.subshard(i, j_end - 1, transpose);
  const uint64_t bytes = last.offset + last.size - first.offset;
  std::string buf(bytes, '\0');
  const RandomAccessFile* file =
      transpose ? shards_transpose_.get() : shards_.get();
  size_t n = 0;
  NX_RETURN_NOT_OK(file->ReadAt(first.offset, bytes, buf.data(), &n));
  if (n != bytes) {
    return Status::Corruption("sub-shard row truncated on disk");
  }
  row.reserve(j_end - j_begin);
  for (uint32_t j = j_begin; j < j_end; ++j) {
    const SubShardMeta& meta = manifest_.subshard(i, j, transpose);
    NX_ASSIGN_OR_RETURN(
        SubShard ss,
        SubShard::Decode(buf.data() + (meta.offset - first.offset), meta.size,
                         i, j, verify_checksums));
    row.push_back(std::move(ss));
  }
  return row;
}

Result<std::vector<uint32_t>> GraphStore::LoadOutDegrees() const {
  std::vector<uint32_t> degrees;
  NX_RETURN_NOT_OK(
      LoadDegrees(env_, dir_, num_vertices(), &degrees, nullptr));
  return degrees;
}

Result<std::vector<uint32_t>> GraphStore::LoadInDegrees() const {
  std::vector<uint32_t> degrees;
  NX_RETURN_NOT_OK(
      LoadDegrees(env_, dir_, num_vertices(), nullptr, &degrees));
  return degrees;
}

uint64_t GraphStore::TotalSubShardBytes(bool transpose) const {
  uint64_t total = 0;
  const auto& table =
      transpose ? manifest_.subshards_transpose : manifest_.subshards;
  for (const auto& meta : table) total += meta.size;
  return total;
}

SubShardCache::SubShardCache(std::shared_ptr<const GraphStore> store,
                             uint64_t budget_bytes)
    : store_(std::move(store)), budget_bytes_(budget_bytes) {}

Result<std::shared_ptr<const SubShard>> SubShardCache::Get(uint32_t i,
                                                           uint32_t j,
                                                           bool transpose) {
  const uint64_t p = store_->num_intervals();
  const uint64_t key = ((transpose ? p : 0) + i) * p + j;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  NX_ASSIGN_OR_RETURN(SubShard loaded, store_->LoadSubShard(i, j, transpose));
  auto ss = std::make_shared<const SubShard>(std::move(loaded));
  const uint64_t bytes = ss->MemoryBytes();
  std::lock_guard<std::mutex> lock(mu_);
  bytes_loaded_ += bytes;
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;  // raced with another loader
  if (bytes_cached_ + bytes <= budget_bytes_) {
    cache_.emplace(key, ss);
    bytes_cached_ += bytes;
  }
  return ss;
}

void SubShardCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
  bytes_cached_ = 0;
}

}  // namespace nxgraph
