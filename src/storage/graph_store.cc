#include "src/storage/graph_store.h"

#include <mutex>
#include <unordered_map>

#include "src/prep/degreer.h"

namespace nxgraph {

namespace {

// Folds the calling thread's decode-tally delta over a scope into the
// store's process-wide counters, whatever exit path the scope takes.
class DecodeTallyFold {
 public:
  DecodeTallyFold(std::atomic<uint64_t>* calls, std::atomic<uint64_t>* nanos)
      : calls_(calls), nanos_(nanos), before_(ThreadDecodeTallies()) {}
  ~DecodeTallyFold() {
    const DecodeTallies& after = ThreadDecodeTallies();
    calls_->fetch_add(after.bulk_decode_calls - before_.bulk_decode_calls,
                      std::memory_order_relaxed);
    nanos_->fetch_add(after.decode_nanos - before_.decode_nanos,
                      std::memory_order_relaxed);
  }
  DecodeTallyFold(const DecodeTallyFold&) = delete;
  DecodeTallyFold& operator=(const DecodeTallyFold&) = delete;

 private:
  std::atomic<uint64_t>* calls_;
  std::atomic<uint64_t>* nanos_;
  DecodeTallies before_;
};

}  // namespace

Result<std::shared_ptr<GraphStore>> GraphStore::Open(Env* env,
                                                     const std::string& dir) {
  std::shared_ptr<GraphStore> store(new GraphStore(env, dir));
  NX_ASSIGN_OR_RETURN(store->manifest_, ReadManifest(env, dir));
  NX_RETURN_NOT_OK(env->NewRandomAccessFile(dir + "/" + kSubShardsFileName,
                                            &store->shards_));
  if (store->manifest_.has_transpose) {
    NX_RETURN_NOT_OK(env->NewRandomAccessFile(
        dir + "/" + kSubShardsTransposeFileName, &store->shards_transpose_));
  }
  return store;
}

Result<SubShard> GraphStore::LoadSubShard(uint32_t i, uint32_t j,
                                          bool transpose,
                                          bool verify_checksum) const {
  if (i >= num_intervals() || j >= num_intervals()) {
    return Status::InvalidArgument("sub-shard index out of range");
  }
  if (transpose && !manifest_.has_transpose) {
    return Status::InvalidArgument("store was built without a transpose");
  }
  const SubShardMeta& meta = manifest_.subshard(i, j, transpose);
  std::string buf(meta.size, '\0');
  const RandomAccessFile* file =
      transpose ? shards_transpose_.get() : shards_.get();
  // Same per-thread staging reuse as DecodeSubShardRow: repeated cache-miss
  // loads (the underbudget-cache regime) must not reallocate per blob.
  static thread_local SubShardDecodeScratch scratch;
  auto read = [&]() -> Status {
    size_t n = 0;
    NX_RETURN_NOT_OK(file->ReadAt(meta.offset, meta.size, buf.data(), &n));
    if (n != meta.size) {
      // Retryable: a short read may fill in on the next attempt (an
      // interrupted transfer), unlike a decode-level corruption of a
      // full-length blob.
      return Status::MakeRetryable(
          Status::Corruption("sub-shard blob truncated on disk"));
    }
    return Status::OK();
  };
  NX_RETURN_NOT_OK(read());
  DecodeTallyFold fold(&bulk_decode_calls_, &decode_nanos_);
  auto decoded = SubShard::Decode(buf.data(), buf.size(), i, j,
                                  verify_checksum, &scratch, decode_path());
  if (decoded.ok() || !decoded.status().IsCorruption()) return decoded;
  // One fresh read before declaring the blob corrupt: an in-flight bit
  // flip (bus/DMA/firmware) corrupts the buffer, not the medium, and
  // heals on re-read. A corruption that survives the re-read is real.
  checksum_rereads_.fetch_add(1, std::memory_order_relaxed);
  NX_RETURN_NOT_OK(read());
  return SubShard::Decode(buf.data(), buf.size(), i, j, verify_checksum,
                          &scratch, decode_path());
}

Result<std::string> GraphStore::ReadSubShardRowBytes(uint32_t i,
                                                     uint32_t j_begin,
                                                     uint32_t j_end,
                                                     bool transpose) const {
  if (i >= num_intervals() || j_begin > j_end || j_end > num_intervals()) {
    return Status::InvalidArgument("sub-shard row range out of bounds");
  }
  if (transpose && !manifest_.has_transpose) {
    return Status::InvalidArgument("store was built without a transpose");
  }
  if (j_begin == j_end) return std::string();
  const SubShardMeta& first = manifest_.subshard(i, j_begin, transpose);
  const SubShardMeta& last = manifest_.subshard(i, j_end - 1, transpose);
  const uint64_t bytes = last.offset + last.size - first.offset;
  std::string buf(bytes, '\0');
  const RandomAccessFile* file =
      transpose ? shards_transpose_.get() : shards_.get();
  size_t n = 0;
  NX_RETURN_NOT_OK(file->ReadAt(first.offset, bytes, buf.data(), &n));
  if (n != bytes) {
    // Retryable (see LoadSubShard): short reads may fill in on retry.
    return Status::MakeRetryable(
        Status::Corruption("sub-shard row truncated on disk"));
  }
  return buf;
}

Result<std::vector<SubShard>> GraphStore::DecodeSubShardRow(
    uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
    const std::vector<uint8_t>& verify_mask, const std::string& raw) const {
  if (i >= num_intervals() || j_begin > j_end || j_end > num_intervals()) {
    return Status::InvalidArgument("sub-shard row range out of bounds");
  }
  if (!verify_mask.empty() && verify_mask.size() != j_end - j_begin) {
    return Status::InvalidArgument("verify mask size mismatches row range");
  }
  std::vector<SubShard> row;
  if (j_begin == j_end) return row;
  // The NXS2 decoder stages varints in scratch memory before the delta
  // reconstruction; one buffer per thread means a whole row (and every
  // later row decoded on this compute thread) reuses a single allocation
  // that grows to the largest blob and stays there.
  static thread_local SubShardDecodeScratch scratch;
  const SubShardMeta& first = manifest_.subshard(i, j_begin, transpose);
  row.reserve(j_end - j_begin);
  DecodeTallyFold fold(&bulk_decode_calls_, &decode_nanos_);
  const DecodePath path = decode_path();
  for (uint32_t j = j_begin; j < j_end; ++j) {
    const SubShardMeta& meta = manifest_.subshard(i, j, transpose);
    const bool verify =
        verify_mask.empty() || verify_mask[j - j_begin] != 0;
    if (meta.offset - first.offset + meta.size > raw.size()) {
      return Status::Corruption("sub-shard row buffer too short");
    }
    NX_ASSIGN_OR_RETURN(
        SubShard ss,
        SubShard::Decode(raw.data() + (meta.offset - first.offset), meta.size,
                         i, j, verify, &scratch, path));
    row.push_back(std::move(ss));
  }
  return row;
}

Result<std::vector<SubShard>> GraphStore::DecodeSubShardRowWithReread(
    uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
    const std::vector<uint8_t>& verify_mask, const std::string& raw) const {
  auto row = DecodeSubShardRow(i, j_begin, j_end, transpose, verify_mask, raw);
  if (row.ok() || !row.status().IsCorruption()) return row;
  // The raw bytes failed to decode (checksum mismatch or a mangled
  // header). Before declaring the store corrupt, read the row again: a
  // transfer-level bit flip lives in the buffer, not on the medium, and
  // vanishes on a fresh read. If the re-read itself fails, or the fresh
  // bytes still fail to decode, the corruption is real and the ORIGINAL
  // corruption status surfaces (a transient re-read error must not mask
  // what the caller needs to know).
  checksum_rereads_.fetch_add(1, std::memory_order_relaxed);
  auto reread = ReadSubShardRowBytes(i, j_begin, j_end, transpose);
  if (!reread.ok()) return row.status();
  auto retried =
      DecodeSubShardRow(i, j_begin, j_end, transpose, verify_mask, *reread);
  if (!retried.ok()) return row.status();
  return retried;
}

Result<std::vector<SubShard>> GraphStore::LoadSubShardRow(
    uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
    const std::vector<uint8_t>& verify_mask) const {
  NX_ASSIGN_OR_RETURN(std::string raw,
                      ReadSubShardRowBytes(i, j_begin, j_end, transpose));
  return DecodeSubShardRowWithReread(i, j_begin, j_end, transpose,
                                     verify_mask, raw);
}

Result<std::vector<uint32_t>> GraphStore::LoadOutDegrees() const {
  std::vector<uint32_t> degrees;
  NX_RETURN_NOT_OK(
      LoadDegrees(env_, dir_, num_vertices(), &degrees, nullptr));
  return degrees;
}

Result<std::vector<uint32_t>> GraphStore::LoadInDegrees() const {
  std::vector<uint32_t> degrees;
  NX_RETURN_NOT_OK(
      LoadDegrees(env_, dir_, num_vertices(), nullptr, &degrees));
  return degrees;
}

uint64_t GraphStore::TotalSubShardBytes(bool transpose) const {
  uint64_t total = 0;
  const auto& table =
      transpose ? manifest_.subshards_transpose : manifest_.subshards;
  for (const auto& meta : table) total += meta.size;
  return total;
}

SubShardCache::SubShardCache(std::shared_ptr<const GraphStore> store,
                             uint64_t budget_bytes, bool evictable)
    : store_(std::move(store)),
      budget_bytes_(budget_bytes),
      evictable_(evictable) {}

uint64_t SubShardCache::bytes_cached() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_cached_;
}

uint64_t SubShardCache::bytes_loaded_from_disk() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_loaded_;
}

SubShardCache::Counters SubShardCache::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

bool SubShardCache::Contains(uint32_t i, uint32_t j, bool transpose) const {
  const uint64_t p = store_->num_intervals();
  const uint64_t key = ((transpose ? p : 0) + i) * p + j;
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.find(key) != cache_.end();
}

uint64_t SubShardCache::pinned_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t pins = 0;
  for (const auto& [key, entry] : cache_) pins += entry.pins;
  return pins;
}

void SubShardCache::Pin::Release() {
  if (cache_ != nullptr) {
    cache_->Unpin(key_);
    cache_ = nullptr;
  }
}

void SubShardCache::Unpin(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  // A pinned entry cannot be evicted and Clear skips pinned entries, so
  // the entry is present for as long as any pin on it lives.
  if (it != cache_.end() && it->second.pins > 0) --it->second.pins;
}

bool SubShardCache::MakeRoomLocked(uint64_t bytes) {
  if (bytes_cached_ + bytes <= budget_bytes_) return true;
  if (!evictable_) return false;
  while (bytes_cached_ + bytes > budget_bytes_) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.pins > 0) continue;
      if (victim == cache_.end() ||
          it->second.lru_tick < victim->second.lru_tick) {
        victim = it;
      }
    }
    if (victim == cache_.end()) return false;  // everything left is pinned
    const uint64_t victim_bytes = victim->second.subshard->MemoryBytes();
    bytes_cached_ -= victim_bytes;
    counters_.evicted_bytes += victim_bytes;
    ++counters_.evictions;
    cache_.erase(victim);
  }
  return true;
}

bool SubShardCache::InsertAndMaybePinLocked(
    uint64_t key, const std::shared_ptr<const SubShard>& ss, bool pin) {
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    const uint64_t bytes = ss->MemoryBytes();
    if (!MakeRoomLocked(bytes)) return false;
    it = cache_.emplace(key, Entry{ss, 0, 0}).first;
    bytes_cached_ += bytes;
    counters_.inserted_bytes += bytes;
  }
  it->second.lru_tick = ++lru_clock_;
  if (pin) ++it->second.pins;
  return true;
}

Result<std::shared_ptr<const SubShard>> SubShardCache::Get(
    uint32_t i, uint32_t j, bool transpose, const CancelToken* cancel) {
  return GetImpl(i, j, transpose, /*pin=*/false, nullptr, cancel);
}

Result<SubShardCache::Pin> SubShardCache::GetPinned(uint32_t i, uint32_t j,
                                                    bool transpose,
                                                    const CancelToken* cancel) {
  Pin pin;
  auto ss = GetImpl(i, j, transpose, /*pin=*/true, &pin, cancel);
  if (!ss.ok()) return ss.status();
  if (!pin.pinned()) {
    // The load could not be (or stay) cached: hand the data back as a
    // transient copy with no eviction pin attached.
    return Pin(nullptr, 0, std::move(*ss));
  }
  return pin;
}

Result<std::shared_ptr<const SubShard>> SubShardCache::GetImpl(
    uint32_t i, uint32_t j, bool transpose, bool pin, Pin* out_pin,
    const CancelToken* cancel) {
  // Checked before mu_ (cancelled() may lazily fire deadline callbacks,
  // which must never run under the cache lock). A cancelled Get is counted
  // as neither hit nor miss.
  if (cancel != nullptr && cancel->cancelled()) return cancel->ToStatus();
  const uint64_t p = store_->num_intervals();
  const uint64_t key = ((transpose ? p : 0) + i) * p + j;
  std::shared_ptr<InFlight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) {
      ++counters_.hits;
      it->second.lru_tick = ++lru_clock_;
      if (pin) {
        ++it->second.pins;
        *out_pin = Pin(this, key, it->second.subshard);
      }
      return it->second.subshard;
    }
    ++counters_.misses;
    auto [fit, inserted] = inflight_.try_emplace(key);
    if (inserted) {
      fit->second = std::make_shared<InFlight>();
      leader = true;
    }
    flight = fit->second;
  }

  if (!leader) {
    // Another thread is already reading this blob; share its load instead
    // of issuing a duplicate read and discarding one copy. A token-bearing
    // follower detaches the moment its token fires — the leader's load
    // continues untouched and still publishes for everyone else.
    uint64_t cb_id = 0;
    if (cancel != nullptr) {
      // Lock-then-notify so the wake cannot slip between a waiter's
      // predicate check and its block. The callback only touches `flight`
      // (kept alive by the capture), so a post-Remove straggler fire is
      // harmless.
      cb_id = cancel->AddCallback([flight] {
        { std::lock_guard<std::mutex> lock(flight->mu); }
        flight->cv.notify_all();
      });
    }
    std::shared_ptr<const SubShard> ss;
    bool detached = false;
    {
      std::unique_lock<std::mutex> lock(flight->mu);
      for (;;) {
        if (flight->done) break;
        if (cancel != nullptr) {
          // cancelled() may lazily fire the deadline (running callbacks,
          // including ours) — call it with flight->mu released.
          lock.unlock();
          const bool fired = cancel->cancelled();
          lock.lock();
          if (flight->done) break;
          if (fired) {
            detached = true;
            break;
          }
          if (cancel->has_deadline()) {
            flight->cv.wait_until(lock, cancel->deadline());
          } else {
            flight->cv.wait(lock);
          }
        } else {
          flight->cv.wait(lock);
        }
      }
    }
    if (cancel != nullptr) cancel->RemoveCallback(cb_id);
    if (detached) return cancel->ToStatus();
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      if (!flight->status.ok()) return flight->status;
      ss = flight->subshard;
    }
    if (pin) {
      // Re-pin against whatever the leader left in the map. The entry may
      // already be gone (evicted, or never inserted) — then the shared
      // load is handed over as a transient copy.
      std::lock_guard<std::mutex> lock(mu_);
      auto it = cache_.find(key);
      if (it != cache_.end()) {
        it->second.lru_tick = ++lru_clock_;
        ++it->second.pins;
        *out_pin = Pin(this, key, it->second.subshard);
      }
    }
    return ss;
  }

  // Leader path: disk I/O and decode run without holding mu_.
  auto loaded = store_->LoadSubShard(i, j, transpose);
  std::shared_ptr<const SubShard> ss;
  Status status;
  if (loaded.ok()) {
    ss = std::make_shared<const SubShard>(std::move(loaded).value());
  } else {
    status = loaded.status();
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(key);
    if (ss != nullptr) {
      bytes_loaded_ += ss->MemoryBytes();
      // A warm-up Put may have landed this key while the load was in
      // flight; InsertAndMaybePinLocked only accounts an insert that
      // actually happened (and pins the resident entry either way).
      if (InsertAndMaybePinLocked(key, ss, pin) && pin) {
        *out_pin = Pin(this, key, ss);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->status = status;
    flight->subshard = ss;
    flight->done = true;
  }
  flight->cv.notify_all();
  if (!status.ok()) return status;
  return ss;
}

void SubShardCache::Put(uint32_t i, uint32_t j, bool transpose,
                        std::shared_ptr<const SubShard> subshard) {
  const uint64_t p = store_->num_intervals();
  const uint64_t key = ((transpose ? p : 0) + i) * p + j;
  std::lock_guard<std::mutex> lock(mu_);
  if (cache_.find(key) != cache_.end()) return;
  InsertAndMaybePinLocked(key, subshard, /*pin=*/false);
}

void SubShardCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = cache_.begin(); it != cache_.end();) {
    if (it->second.pins > 0) {
      ++it;
      continue;
    }
    bytes_cached_ -= it->second.subshard->MemoryBytes();
    it = cache_.erase(it);
  }
}

}  // namespace nxgraph
