#include "src/storage/interval_store.h"

#include "src/io/writeback.h"

namespace nxgraph {

Result<std::unique_ptr<IntervalStore>> IntervalStore::Layout(
    const Manifest& manifest, uint32_t value_bytes) {
  if (value_bytes == 0) {
    return Status::InvalidArgument("value_bytes must be positive");
  }
  std::unique_ptr<IntervalStore> store(new IntervalStore());
  store->value_bytes_ = value_bytes;
  const uint32_t p = manifest.num_intervals;
  store->offsets_.resize(p);
  store->sizes_.resize(p);
  uint64_t offset = 0;
  for (uint32_t i = 0; i < p; ++i) {
    store->offsets_[i] = offset;
    store->sizes_[i] = manifest.interval_size(i);
    offset += 2ULL * store->sizes_[i] * value_bytes;  // ping + pong
  }
  store->total_bytes_ = offset;
  return store;
}

Result<std::unique_ptr<IntervalStore>> IntervalStore::Create(
    Env* env, const std::string& path, const Manifest& manifest,
    uint32_t value_bytes) {
  NX_ASSIGN_OR_RETURN(std::unique_ptr<IntervalStore> store,
                      Layout(manifest, value_bytes));
  // Truncate any stale file, then preallocate by extending to full size.
  std::unique_ptr<WritableFile> init;
  NX_RETURN_NOT_OK(env->NewWritableFile(path, &init));
  NX_RETURN_NOT_OK(init->Close());
  NX_RETURN_NOT_OK(env->NewRandomWriteFile(path, &store->writer_));
  NX_RETURN_NOT_OK(store->writer_->Truncate(store->total_bytes_));
  NX_RETURN_NOT_OK(env->NewRandomAccessFile(path, &store->reader_));
  return store;
}

Result<std::unique_ptr<IntervalStore>> IntervalStore::Open(
    Env* env, const std::string& path, const Manifest& manifest,
    uint32_t value_bytes) {
  NX_ASSIGN_OR_RETURN(std::unique_ptr<IntervalStore> store,
                      Layout(manifest, value_bytes));
  if (!env->FileExists(path)) return Status::NotFound(path);
  NX_ASSIGN_OR_RETURN(const uint64_t size, env->GetFileSize(path));
  if (size != store->total_bytes_) {
    return Status::Corruption("interval store size mismatch: " + path);
  }
  NX_RETURN_NOT_OK(env->NewRandomWriteFile(path, &store->writer_));
  NX_RETURN_NOT_OK(env->NewRandomAccessFile(path, &store->reader_));
  return store;
}

Status IntervalStore::Read(uint32_t interval, int parity, void* buf) const {
  const uint64_t bytes = segment_bytes(interval);
  const uint64_t offset =
      offsets_[interval] + (parity ? bytes : 0);
  size_t n = 0;
  NX_RETURN_NOT_OK(reader_->ReadAt(offset, bytes, buf, &n));
  if (n != bytes) {
    // Retryable: a short read of a correctly-sized segment (Open checked
    // the file size) can only be a transient transfer hiccup.
    return Status::MakeRetryable(
        Status::Corruption("interval segment truncated"));
  }
  return Status::OK();
}

Status IntervalStore::Write(uint32_t interval, int parity, const void* buf) {
  const uint64_t bytes = segment_bytes(interval);
  const uint64_t offset =
      offsets_[interval] + (parity ? bytes : 0);
  return writer_->WriteAt(offset, buf, bytes);
}

Status IntervalStore::Write(WritebackQueue* wb, uint32_t interval, int parity,
                            const void* buf) {
  if (wb == nullptr) return Write(interval, parity, buf);
  const uint64_t bytes = segment_bytes(interval);
  const uint64_t offset = offsets_[interval] + (parity ? bytes : 0);
  return wb->Push(writer_.get(), offset, buf, bytes);
}

}  // namespace nxgraph
