// GraphStore: read-side handle to a preprocessed graph directory.
#ifndef NXGRAPH_STORAGE_GRAPH_STORE_H_
#define NXGRAPH_STORAGE_GRAPH_STORE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/io/env.h"
#include "src/prep/manifest.h"
#include "src/storage/subshard.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Opens the manifest and shard files of a prepared graph and serves
/// sub-shard loads (positional reads of whole blobs — each load is one
/// sequential segment, preserving the streamlined access pattern).
///
/// Thread-safe: loads go through pread-style positional reads.
class GraphStore {
 public:
  /// Opens an existing store directory (fails with NotFound/Corruption).
  static Result<std::shared_ptr<GraphStore>> Open(Env* env,
                                                  const std::string& dir);

  const Manifest& manifest() const { return manifest_; }
  uint64_t num_vertices() const { return manifest_.num_vertices; }
  uint64_t num_edges() const { return manifest_.num_edges; }
  uint32_t num_intervals() const { return manifest_.num_intervals; }
  bool weighted() const { return manifest_.weighted; }
  bool has_transpose() const { return manifest_.has_transpose; }
  Env* env() const { return env_; }
  const std::string& dir() const { return dir_; }

  /// Reads and decodes sub-shard SS_{i.j}; `transpose` selects the reversed
  /// graph (requires has_transpose()). `verify_checksum` may be false for
  /// blobs already verified this session.
  Result<SubShard> LoadSubShard(uint32_t i, uint32_t j, bool transpose = false,
                                bool verify_checksum = true) const;

  /// Streams sub-shards SS_{i.j_begin} .. SS_{i.j_end-1} with a single
  /// sequential read (they are contiguous in row-major file order) — the
  /// engines' "streamlined disk access" path. Returns j_end - j_begin
  /// decoded sub-shards (empty ones included). `verify_checksums` may be
  /// false for blobs verified earlier in the session.
  Result<std::vector<SubShard>> LoadSubShardRow(uint32_t i, uint32_t j_begin,
                                                uint32_t j_end, bool transpose,
                                                bool verify_checksums) const;

  /// Out-degrees (or in-degrees) for all vertices, indexed by id.
  Result<std::vector<uint32_t>> LoadOutDegrees() const;
  Result<std::vector<uint32_t>> LoadInDegrees() const;

  /// Total bytes of all sub-shard blobs in one direction — the `m * Be`
  /// term of the paper's I/O model.
  uint64_t TotalSubShardBytes(bool transpose = false) const;

 private:
  GraphStore(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  Manifest manifest_;
  std::unique_ptr<RandomAccessFile> shards_;
  std::unique_ptr<RandomAccessFile> shards_transpose_;
};

/// \brief Byte-budgeted cache of decoded sub-shards ("if there are still
/// memory budget left, sub-shards will also be actively loaded from disk to
/// memory", §III-B1). Fill-once: entries are pinned until Clear().
class SubShardCache {
 public:
  /// `budget_bytes` bounds the sum of decoded sub-shard footprints.
  explicit SubShardCache(std::shared_ptr<const GraphStore> store,
                         uint64_t budget_bytes);

  /// Returns the cached sub-shard, loading (and caching if budget allows)
  /// on miss. Never fails into the cache: over-budget loads are returned
  /// as transient copies.
  Result<std::shared_ptr<const SubShard>> Get(uint32_t i, uint32_t j,
                                              bool transpose = false);

  uint64_t bytes_cached() const { return bytes_cached_; }
  /// Bytes loaded from disk since construction (cache misses only).
  uint64_t bytes_loaded_from_disk() const { return bytes_loaded_; }

  void Clear();

 private:
  std::shared_ptr<const GraphStore> store_;
  uint64_t budget_bytes_;
  uint64_t bytes_cached_ = 0;
  uint64_t bytes_loaded_ = 0;
  std::mutex mu_;
  // Key: ((transpose * P) + i) * P + j.
  std::unordered_map<uint64_t, std::shared_ptr<const SubShard>> cache_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_GRAPH_STORE_H_
