// GraphStore: read-side handle to a preprocessed graph directory.
#ifndef NXGRAPH_STORAGE_GRAPH_STORE_H_
#define NXGRAPH_STORAGE_GRAPH_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/io/env.h"
#include "src/prep/manifest.h"
#include "src/storage/subshard.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Opens the manifest and shard files of a prepared graph and serves
/// sub-shard loads (positional reads of whole blobs — each load is one
/// sequential segment, preserving the streamlined access pattern).
///
/// Thread-safe: loads go through pread-style positional reads.
class GraphStore {
 public:
  /// Opens an existing store directory (fails with NotFound/Corruption).
  static Result<std::shared_ptr<GraphStore>> Open(Env* env,
                                                  const std::string& dir);

  const Manifest& manifest() const { return manifest_; }
  uint64_t num_vertices() const { return manifest_.num_vertices; }
  uint64_t num_edges() const { return manifest_.num_edges; }
  uint32_t num_intervals() const { return manifest_.num_intervals; }
  bool weighted() const { return manifest_.weighted; }
  bool has_transpose() const { return manifest_.has_transpose; }
  Env* env() const { return env_; }
  const std::string& dir() const { return dir_; }

  /// Reads and decodes sub-shard SS_{i.j}; `transpose` selects the reversed
  /// graph (requires has_transpose()). `verify_checksum` may be false for
  /// blobs already verified this session.
  Result<SubShard> LoadSubShard(uint32_t i, uint32_t j, bool transpose = false,
                                bool verify_checksum = true) const;

  /// Streams sub-shards SS_{i.j_begin} .. SS_{i.j_end-1} with a single
  /// sequential read (they are contiguous in row-major file order) — the
  /// engines' "streamlined disk access" path. Returns j_end - j_begin
  /// decoded sub-shards (empty ones included). `verify_mask` selects
  /// per-blob checksum verification: entry j - j_begin must be non-zero for
  /// blobs not yet verified this session; an empty mask verifies everything.
  Result<std::vector<SubShard>> LoadSubShardRow(
      uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
      const std::vector<uint8_t>& verify_mask) const;

  /// Raw-read half of LoadSubShardRow: one sequential positional read of
  /// the row's undecoded bytes. Thread-safe; the prefetcher runs this on an
  /// I/O thread and DecodeSubShardRow on the compute pool.
  Result<std::string> ReadSubShardRowBytes(uint32_t i, uint32_t j_begin,
                                           uint32_t j_end,
                                           bool transpose) const;

  /// Decode half of LoadSubShardRow: decodes bytes returned by
  /// ReadSubShardRowBytes for the same range. Pure CPU work, thread-safe.
  Result<std::vector<SubShard>> DecodeSubShardRow(
      uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
      const std::vector<uint8_t>& verify_mask, const std::string& raw) const;

  /// DecodeSubShardRow with one corruption re-read: a checksum mismatch
  /// (or other decode Corruption) triggers a single fresh
  /// ReadSubShardRowBytes + re-decode before the corruption is declared
  /// real — the defense against in-flight bit flips (bus/DMA/firmware)
  /// that heal on re-read. Counted in checksum_rereads(). The engine's
  /// staged prefetch pipeline decodes through this entry point.
  Result<std::vector<SubShard>> DecodeSubShardRowWithReread(
      uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
      const std::vector<uint8_t>& verify_mask, const std::string& raw) const;

  /// Out-degrees (or in-degrees) for all vertices, indexed by id.
  Result<std::vector<uint32_t>> LoadOutDegrees() const;
  Result<std::vector<uint32_t>> LoadInDegrees() const;

  /// Total bytes of all sub-shard blobs in one direction — the `m * Be`
  /// term of the paper's I/O model.
  uint64_t TotalSubShardBytes(bool transpose = false) const;

  /// Corruption re-reads attempted so far (each one was a decode
  /// Corruption that got a second chance; it may or may not have healed).
  uint64_t checksum_rereads() const {
    return checksum_rereads_.load(std::memory_order_relaxed);
  }

 private:
  GraphStore(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  Manifest manifest_;
  std::unique_ptr<RandomAccessFile> shards_;
  std::unique_ptr<RandomAccessFile> shards_transpose_;
  mutable std::atomic<uint64_t> checksum_rereads_{0};
};

/// \brief Byte-budgeted cache of decoded sub-shards ("if there are still
/// memory budget left, sub-shards will also be actively loaded from disk to
/// memory", §III-B1). Fill-once: entries are pinned until Clear().
///
/// Thread-safe. Concurrent misses on the same key share a single disk load
/// (per-key in-flight tracking), and no lock is held during disk I/O.
class SubShardCache {
 public:
  /// `budget_bytes` bounds the sum of decoded sub-shard footprints.
  explicit SubShardCache(std::shared_ptr<const GraphStore> store,
                         uint64_t budget_bytes);

  /// Returns the cached sub-shard, loading (and caching if budget allows)
  /// on miss. Never fails into the cache: over-budget loads are returned
  /// as transient copies.
  Result<std::shared_ptr<const SubShard>> Get(uint32_t i, uint32_t j,
                                              bool transpose = false);

  /// Inserts a sub-shard decoded externally (the engine's first-iteration
  /// warm-up loads whole rows through the prefetch pipeline and deposits
  /// them here). Budget-checked like Get; a no-op if the key is already
  /// cached or the budget cannot hold it. Does not count towards
  /// bytes_loaded_from_disk() — the caller accounts its own read.
  void Put(uint32_t i, uint32_t j, bool transpose,
           std::shared_ptr<const SubShard> subshard);

  uint64_t bytes_cached() const;
  /// Bytes loaded from disk since construction (cache misses only; a load
  /// shared by concurrent callers counts once).
  uint64_t bytes_loaded_from_disk() const;

  void Clear();

 private:
  /// One outstanding disk load; waiters block on cv until the leader
  /// publishes the result.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::shared_ptr<const SubShard> subshard;
  };

  std::shared_ptr<const GraphStore> store_;
  uint64_t budget_bytes_;
  uint64_t bytes_cached_ = 0;
  uint64_t bytes_loaded_ = 0;
  mutable std::mutex mu_;
  // Key: ((transpose * P) + i) * P + j.
  std::unordered_map<uint64_t, std::shared_ptr<const SubShard>> cache_;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_GRAPH_STORE_H_
