// GraphStore: read-side handle to a preprocessed graph directory.
#ifndef NXGRAPH_STORAGE_GRAPH_STORE_H_
#define NXGRAPH_STORAGE_GRAPH_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/io/env.h"
#include "src/prep/manifest.h"
#include "src/storage/subshard.h"
#include "src/util/cancel.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief Opens the manifest and shard files of a prepared graph and serves
/// sub-shard loads (positional reads of whole blobs — each load is one
/// sequential segment, preserving the streamlined access pattern).
///
/// Thread-safe: loads go through pread-style positional reads.
class GraphStore {
 public:
  /// Opens an existing store directory (fails with NotFound/Corruption).
  static Result<std::shared_ptr<GraphStore>> Open(Env* env,
                                                  const std::string& dir);

  const Manifest& manifest() const { return manifest_; }
  uint64_t num_vertices() const { return manifest_.num_vertices; }
  uint64_t num_edges() const { return manifest_.num_edges; }
  uint32_t num_intervals() const { return manifest_.num_intervals; }
  bool weighted() const { return manifest_.weighted; }
  bool has_transpose() const { return manifest_.has_transpose; }
  Env* env() const { return env_; }
  const std::string& dir() const { return dir_; }

  /// Reads and decodes sub-shard SS_{i.j}; `transpose` selects the reversed
  /// graph (requires has_transpose()). `verify_checksum` may be false for
  /// blobs already verified this session.
  Result<SubShard> LoadSubShard(uint32_t i, uint32_t j, bool transpose = false,
                                bool verify_checksum = true) const;

  /// Streams sub-shards SS_{i.j_begin} .. SS_{i.j_end-1} with a single
  /// sequential read (they are contiguous in row-major file order) — the
  /// engines' "streamlined disk access" path. Returns j_end - j_begin
  /// decoded sub-shards (empty ones included). `verify_mask` selects
  /// per-blob checksum verification: entry j - j_begin must be non-zero for
  /// blobs not yet verified this session; an empty mask verifies everything.
  Result<std::vector<SubShard>> LoadSubShardRow(
      uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
      const std::vector<uint8_t>& verify_mask) const;

  /// Raw-read half of LoadSubShardRow: one sequential positional read of
  /// the row's undecoded bytes. Thread-safe; the prefetcher runs this on an
  /// I/O thread and DecodeSubShardRow on the compute pool.
  Result<std::string> ReadSubShardRowBytes(uint32_t i, uint32_t j_begin,
                                           uint32_t j_end,
                                           bool transpose) const;

  /// Decode half of LoadSubShardRow: decodes bytes returned by
  /// ReadSubShardRowBytes for the same range. Pure CPU work, thread-safe.
  Result<std::vector<SubShard>> DecodeSubShardRow(
      uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
      const std::vector<uint8_t>& verify_mask, const std::string& raw) const;

  /// DecodeSubShardRow with one corruption re-read: a checksum mismatch
  /// (or other decode Corruption) triggers a single fresh
  /// ReadSubShardRowBytes + re-decode before the corruption is declared
  /// real — the defense against in-flight bit flips (bus/DMA/firmware)
  /// that heal on re-read. Counted in checksum_rereads(). The engine's
  /// staged prefetch pipeline decodes through this entry point.
  Result<std::vector<SubShard>> DecodeSubShardRowWithReread(
      uint32_t i, uint32_t j_begin, uint32_t j_end, bool transpose,
      const std::vector<uint8_t>& verify_mask, const std::string& raw) const;

  /// Out-degrees (or in-degrees) for all vertices, indexed by id.
  Result<std::vector<uint32_t>> LoadOutDegrees() const;
  Result<std::vector<uint32_t>> LoadInDegrees() const;

  /// Total bytes of all sub-shard blobs in one direction — the `m * Be`
  /// term of the paper's I/O model.
  uint64_t TotalSubShardBytes(bool transpose = false) const;

  /// Corruption re-reads attempted so far (each one was a decode
  /// Corruption that got a second chance; it may or may not have healed).
  uint64_t checksum_rereads() const {
    return checksum_rereads_.load(std::memory_order_relaxed);
  }

  /// Selects the varint decode implementation for every subsequent decode
  /// through this store (RunOptions::simd_decode). Purely a performance
  /// knob — every path produces bit-identical sub-shards and the identical
  /// accept/reject set — which is why it is settable through the const
  /// handles the engine and cache hold, like the counter atomics below.
  void SetSimdDecode(SimdDecode mode) const {
    decode_path_.store(ResolveDecodePath(mode), std::memory_order_relaxed);
  }
  DecodePath decode_path() const {
    return decode_path_.load(std::memory_order_relaxed);
  }

  /// NXS2 bulk varint stream scans executed so far (three per NXS2 blob;
  /// NXS1 blobs decode without bulk scans).
  uint64_t bulk_decode_calls() const {
    return bulk_decode_calls_.load(std::memory_order_relaxed);
  }
  /// Wall nanoseconds spent inside SubShard::Decode for this store's blobs
  /// (checksum verification included), summed across threads.
  uint64_t decode_nanos() const {
    return decode_nanos_.load(std::memory_order_relaxed);
  }

 private:
  GraphStore(Env* env, std::string dir) : env_(env), dir_(std::move(dir)) {}

  Env* env_;
  std::string dir_;
  Manifest manifest_;
  std::unique_ptr<RandomAccessFile> shards_;
  std::unique_ptr<RandomAccessFile> shards_transpose_;
  mutable std::atomic<uint64_t> checksum_rereads_{0};
  mutable std::atomic<DecodePath> decode_path_{
      ResolveDecodePath(SimdDecode::kAuto)};
  mutable std::atomic<uint64_t> bulk_decode_calls_{0};
  mutable std::atomic<uint64_t> decode_nanos_{0};
};

/// \brief Byte-budgeted cache of decoded sub-shards ("if there are still
/// memory budget left, sub-shards will also be actively loaded from disk to
/// memory", §III-B1).
///
/// Two residency policies share this implementation:
///
///   fill-once (default, the engine's policy) — entries stay until Clear();
///   an over-budget load is returned as a transient copy and never
///   displaces a cached entry. ChooseStrategy sizes the budget so eviction
///   would never fire anyway.
///
///   evictable (the serving policy) — when an insert does not fit, the
///   least-recently-used UNPINNED entries are evicted to make room. Entries
///   a concurrent query holds a Pin on are never evicted, so one
///   scan-heavy query cannot displace the rows another query is actively
///   reading. If pins leave no room, the load degrades to a transient copy
///   exactly like the fill-once path.
///
/// Thread-safe. Concurrent misses on the same key share a single disk load
/// (per-key in-flight tracking), and no lock is held during disk I/O.
/// Returned shared_ptrs (and Pins) keep the decoded data alive regardless
/// of later eviction — eviction only affects cache accounting, never
/// lifetime.
class SubShardCache {
 public:
  /// Monotonic hit/miss/byte counters (relaxed snapshots; exposed as
  /// server-level stats). hits + misses equals the total number of Get /
  /// GetPinned calls: a call served from the map is a hit, everything else
  /// — leader load or waiting on another caller's in-flight load — is a
  /// miss. bytes_cached == inserted_bytes - evicted_bytes at all times
  /// (Clear resets bytes_cached and is not counted as eviction).
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserted_bytes = 0;
    uint64_t evicted_bytes = 0;
    uint64_t evictions = 0;
  };

  /// \brief RAII shared read pin: while alive, the pinned entry cannot be
  /// evicted. Movable, not copyable; destruction (or Release) unpins. A
  /// Pin over a load that could not be cached (over budget, everything
  /// else pinned) still carries the sub-shard as a transient copy —
  /// callers never need to distinguish. Pins must not outlive the cache.
  class Pin {
   public:
    Pin() = default;
    Pin(Pin&& o) noexcept { *this = std::move(o); }
    Pin& operator=(Pin&& o) noexcept {
      if (this != &o) {
        Release();
        cache_ = o.cache_;
        key_ = o.key_;
        subshard_ = std::move(o.subshard_);
        o.cache_ = nullptr;
        o.subshard_.reset();
      }
      return *this;
    }
    ~Pin() { Release(); }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    const SubShard& operator*() const { return *subshard_; }
    const SubShard* operator->() const { return subshard_.get(); }
    const std::shared_ptr<const SubShard>& subshard() const {
      return subshard_;
    }
    /// True when this handle actually holds an eviction pin (as opposed to
    /// a transient, uncached copy).
    bool pinned() const { return cache_ != nullptr; }
    /// Drops the pin (idempotent); the sub-shard data stays alive through
    /// the shared_ptr until the handle itself dies.
    void Release();

   private:
    friend class SubShardCache;
    Pin(SubShardCache* cache, uint64_t key,
        std::shared_ptr<const SubShard> subshard)
        : cache_(cache), key_(key), subshard_(std::move(subshard)) {}

    SubShardCache* cache_ = nullptr;
    uint64_t key_ = 0;
    std::shared_ptr<const SubShard> subshard_;
  };

  /// `budget_bytes` bounds the sum of decoded sub-shard footprints.
  /// `evictable` selects the serving policy described above.
  explicit SubShardCache(std::shared_ptr<const GraphStore> store,
                         uint64_t budget_bytes, bool evictable = false);

  /// Returns the cached sub-shard, loading (and caching if budget allows)
  /// on miss. Never fails into the cache: over-budget loads are returned
  /// as transient copies.
  ///
  /// `cancel` (optional) makes the call cooperative: a token already fired
  /// returns the token's status up front (counted as neither hit nor
  /// miss), and a *follower* blocked on another caller's in-flight load
  /// detaches with the token's status the moment it fires instead of
  /// riding out the leader's read. The leader itself always completes and
  /// publishes its load — other queries waiting on the same blob must
  /// never inherit one tenant's cancellation.
  Result<std::shared_ptr<const SubShard>> Get(
      uint32_t i, uint32_t j, bool transpose = false,
      const CancelToken* cancel = nullptr);

  /// Get plus a shared read pin on the entry (see Pin). Concurrent pins on
  /// one entry stack; the entry stays evictable again once every pin is
  /// released.
  Result<Pin> GetPinned(uint32_t i, uint32_t j, bool transpose = false,
                        const CancelToken* cancel = nullptr);

  /// Inserts a sub-shard decoded externally (the engine's first-iteration
  /// warm-up loads whole rows through the prefetch pipeline and deposits
  /// them here). Budget-checked like Get; a no-op if the key is already
  /// cached or the budget cannot hold it. Does not count towards
  /// bytes_loaded_from_disk() — the caller accounts its own read.
  void Put(uint32_t i, uint32_t j, bool transpose,
           std::shared_ptr<const SubShard> subshard);

  uint64_t bytes_cached() const;
  /// Bytes loaded from disk since construction (cache misses only; a load
  /// shared by concurrent callers counts once).
  uint64_t bytes_loaded_from_disk() const;

  /// Snapshot of the hit/miss/insert/evict counters.
  Counters counters() const;

  /// Whether the key is currently resident (test/diagnostic hook).
  bool Contains(uint32_t i, uint32_t j, bool transpose = false) const;

  /// Total outstanding pin count across all entries (test/diagnostic
  /// hook). 0 whenever no Pin handles are alive — a nonzero value with no
  /// live handles means a pin leaked on some early-exit path.
  uint64_t pinned_entries() const;

  /// Drops every UNPINNED entry (for the engine, which never pins, this is
  /// a full reset). Not counted as eviction.
  void Clear();

 private:
  /// One outstanding disk load; waiters block on cv until the leader
  /// publishes the result.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    std::shared_ptr<const SubShard> subshard;
  };

  struct Entry {
    std::shared_ptr<const SubShard> subshard;
    uint32_t pins = 0;
    uint64_t lru_tick = 0;
  };

  /// Shared implementation of Get / GetPinned. When `pin` is set and the
  /// entry is (still) resident after the load, `*out_pin` receives the
  /// pinned handle; otherwise the caller wraps the bare shared_ptr.
  Result<std::shared_ptr<const SubShard>> GetImpl(uint32_t i, uint32_t j,
                                                  bool transpose, bool pin,
                                                  Pin* out_pin,
                                                  const CancelToken* cancel);

  /// mu_ held. True when `bytes` fit within the budget, evicting
  /// least-recently-used unpinned entries first if the policy allows.
  bool MakeRoomLocked(uint64_t bytes);

  /// mu_ held. Inserts (if room) and optionally pins; returns whether the
  /// key is resident afterwards.
  bool InsertAndMaybePinLocked(uint64_t key,
                               const std::shared_ptr<const SubShard>& ss,
                               bool pin);

  void Unpin(uint64_t key);

  std::shared_ptr<const GraphStore> store_;
  uint64_t budget_bytes_;
  const bool evictable_;
  uint64_t bytes_cached_ = 0;
  uint64_t bytes_loaded_ = 0;
  uint64_t lru_clock_ = 0;
  Counters counters_;
  mutable std::mutex mu_;
  // Key: ((transpose * P) + i) * P + j.
  std::unordered_map<uint64_t, Entry> cache_;
  std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_STORAGE_GRAPH_STORE_H_
