#include "src/engine/strategy.h"

#include <algorithm>

#include "src/engine/io_model.h"
#include "src/io/env.h"

namespace nxgraph {

namespace {

std::string MpuName(uint32_t q, uint32_t p) {
  return "MPU(Q=" + std::to_string(q) + "/" + std::to_string(p) + ")";
}

struct DirectionUse {
  bool forward;
  bool transpose;
};

DirectionUse UsedDirections(const Manifest& manifest,
                            EdgeDirection direction) {
  return {direction == EdgeDirection::kForward ||
              direction == EdgeDirection::kBoth,
          (direction == EdgeDirection::kTranspose ||
           direction == EdgeDirection::kBoth) &&
              manifest.has_transpose};
}

// Largest per-row sum of `meta_bytes(meta)` over the directions this run
// will read — the shared loop behind the raw and decoded row maxima.
template <typename MetaBytes>
uint64_t MaxRowMetaBytes(const Manifest& manifest, EdgeDirection direction,
                         MetaBytes meta_bytes) {
  const uint32_t p = manifest.num_intervals;
  const DirectionUse use = UsedDirections(manifest, direction);
  uint64_t max_row = 0;
  for (int t = 0; t < 2; ++t) {
    if ((t == 0 && !use.forward) || (t == 1 && !use.transpose)) continue;
    for (uint32_t i = 0; i < p; ++i) {
      uint64_t row = 0;
      for (uint32_t j = 0; j < p; ++j) {
        row += meta_bytes(manifest.subshard(i, j, t == 1));
      }
      max_row = std::max(max_row, row);
    }
  }
  return max_row;
}

// Largest encoded sub-shard row: the raw bytes one whole-row disk read
// moves. With a compressed blob format (NXS2) this is substantially
// smaller than the decoded footprint, which is why the raw and decoded
// row sizes are accounted separately — smaller raw slots leave more
// budget for deeper windows.
uint64_t MaxRowBytes(const Manifest& manifest, EdgeDirection direction) {
  return MaxRowMetaBytes(manifest, direction,
                         [](const SubShardMeta& m) { return m.size; });
}

// Largest decoded sub-shard row (exact in-memory footprint from the
// manifest's per-blob edge/destination counts).
uint64_t MaxRowDecodedBytes(const Manifest& manifest, EdgeDirection direction) {
  return MaxRowMetaBytes(manifest, direction,
                         [weighted = manifest.weighted](const SubShardMeta& m) {
                           return m.DecodedBytes(weighted);
                         });
}

// Decoded footprint of every sub-shard this run will read — what the
// fill-once cache (which accounts SubShard::MemoryBytes) needs to pin the
// whole graph decoded.
uint64_t TotalShardBytes(const Manifest& manifest, EdgeDirection direction) {
  const DirectionUse use = UsedDirections(manifest, direction);
  uint64_t total = 0;
  if (use.forward) total += manifest.TotalDecodedSubShardBytes(false);
  if (use.transpose) total += manifest.TotalDecodedSubShardBytes(true);
  return total;
}

// Largest single payload a run with q resident intervals can hand the
// write-behind queue: a hub segment (count prefix + one pre-accumulated
// entry per destination; only sub-shards with i, j >= q have hubs) or a
// non-resident interval's value segment. A budget below this forces every
// push through the oversized-admission path — serialized writes plus
// queue overhead, strictly worse than synchronous mode.
uint64_t MaxWritePayloadBytes(const Manifest& manifest, uint32_t value_bytes,
                              EdgeDirection direction, uint32_t q) {
  const DirectionUse use = UsedDirections(manifest, direction);
  const uint32_t p = manifest.num_intervals;
  uint64_t max_payload = 0;
  for (int t = 0; t < 2; ++t) {
    if ((t == 0 && !use.forward) || (t == 1 && !use.transpose)) continue;
    for (uint32_t i = q; i < p; ++i) {
      for (uint32_t j = q; j < p; ++j) {
        const auto& meta = manifest.subshard(i, j, t == 1);
        max_payload = std::max<uint64_t>(
            max_payload, 8 + static_cast<uint64_t>(meta.num_dsts) *
                                 (4 + value_bytes));
      }
    }
  }
  for (uint32_t i = q; i < p; ++i) {
    max_payload = std::max<uint64_t>(
        max_payload,
        static_cast<uint64_t>(manifest.interval_size(i)) * value_bytes);
  }
  return max_payload;
}

}  // namespace

uint64_t PrefetchSlotBytes(const Manifest& manifest, uint32_t value_bytes,
                           EdgeDirection direction) {
  // One window slot at its peak holds a row's raw bytes and its decoded
  // sub-shards simultaneously (the decode stage overlaps the two), plus the
  // phase's side stream may hold an interval value segment in the same
  // slot position (Phase B pairs every row with its source values; Phase C
  // pairs each column with its write-back values). Raw and decoded sizes
  // come from the manifest separately: with a compressed blob format the
  // raw half of the slot shrinks, so the same budget funds deeper windows.
  uint64_t max_segment = 0;
  for (uint32_t i = 0; i < manifest.num_intervals; ++i) {
    max_segment = std::max<uint64_t>(
        max_segment,
        static_cast<uint64_t>(manifest.interval_size(i)) * value_bytes);
  }
  return MaxRowBytes(manifest, direction) +
         MaxRowDecodedBytes(manifest, direction) + max_segment;
}

StrategyDecision ChooseStrategy(const Manifest& manifest, uint32_t value_bytes,
                                uint64_t fixed_overhead_bytes,
                                const RunOptions& options) {
  const uint32_t p = manifest.num_intervals;
  const uint64_t n = manifest.num_vertices;
  const uint64_t full_state = 2ULL * n * value_bytes;  // ping-pong copies

  StrategyDecision d;
  const bool unlimited = options.memory_budget_bytes == 0;
  const uint64_t budget = options.memory_budget_bytes;
  const uint64_t avail =
      unlimited ? UINT64_MAX
                : (budget > fixed_overhead_bytes ? budget - fixed_overhead_bytes
                                                 : 0);

  // Q from the paper's formula: Q <= BM / (2 n Ba) * P.
  uint32_t q_budget;
  if (unlimited || avail >= full_state) {
    q_budget = p;
  } else {
    q_budget = static_cast<uint32_t>(
        static_cast<double>(avail) / static_cast<double>(full_state) * p);
    q_budget = std::min(q_budget, p);
  }

  switch (options.strategy) {
    case UpdateStrategy::kSinglePhase:
      d.strategy = UpdateStrategy::kSinglePhase;
      d.resident_intervals = p;
      d.name = "SPU";
      break;
    case UpdateStrategy::kDoublePhase:
      d.strategy = UpdateStrategy::kDoublePhase;
      d.resident_intervals = 0;
      d.name = "DPU";
      break;
    case UpdateStrategy::kMixedPhase:
      d.strategy = UpdateStrategy::kMixedPhase;
      d.resident_intervals = q_budget;
      d.name = MpuName(q_budget, p);
      break;
    case UpdateStrategy::kAuto:
      if (q_budget == p) {
        d.strategy = UpdateStrategy::kSinglePhase;
        d.resident_intervals = p;
        d.name = "SPU";
      } else if (q_budget == 0) {
        d.strategy = UpdateStrategy::kDoublePhase;
        d.resident_intervals = 0;
        d.name = "DPU";
      } else {
        d.strategy = UpdateStrategy::kMixedPhase;
        d.resident_intervals = q_budget;
        d.name = MpuName(q_budget, p);
      }
      break;
  }

  // Whatever is left after resident vertex state caches sub-shards
  // ("it is more efficient to store intervals in memory than sub-shards",
  // §III-B1 — intervals claim budget first).
  uint64_t resident_state = 0;
  for (uint32_t i = 0; i < d.resident_intervals; ++i) {
    resident_state += 2ULL * manifest.interval_size(i) * value_bytes;
  }
  d.subshard_cache_budget =
      unlimited ? UINT64_MAX : (avail > resident_state ? avail - resident_state : 0);

  // Cache leftover fundable for the I/O windows without demoting a cached
  // run: when the leftover is big enough to pin the whole graph decoded
  // (the fill-once cache will serve iterations 1+ from memory), only the
  // surplus beyond that pin is up for grabs. Shared by the prefetch and
  // writeback funding below so the two windows obey one rule.
  const uint64_t total_shards = TotalShardBytes(manifest, options.direction);
  auto fundable = [&d, total_shards] {
    return d.subshard_cache_budget >= total_shards
               ? d.subshard_cache_budget - total_shards
               : d.subshard_cache_budget;
  };

  // Fund the prefetch window first: one slot rides in the synchronous
  // loader's transient-row allowance, each deeper slot is paid for out of
  // the cache leftover so the window stays inside the memory model.
  const uint32_t requested =
      options.prefetch_depth > 0 ? static_cast<uint32_t>(options.prefetch_depth)
                                 : 0;
  const uint64_t slot_bytes =
      PrefetchSlotBytes(manifest, value_bytes, options.direction);
  // No edge data to read ahead (empty shard tables) => the window is free.
  const bool no_row_data = MaxRowBytes(manifest, options.direction) == 0;
  if (requested == 0) {
    d.prefetch_depth = 0;
    d.prefetch_buffer_bytes = 0;
  } else if (unlimited || no_row_data || slot_bytes == 0) {
    d.prefetch_depth = requested;
    d.prefetch_buffer_bytes = requested * slot_bytes;
  } else {
    const uint64_t funded_slots =
        std::min<uint64_t>(requested - 1, fundable() / slot_bytes);
    d.prefetch_depth = 1 + static_cast<uint32_t>(funded_slots);
    d.prefetch_buffer_bytes = d.prefetch_depth * slot_bytes;
    d.subshard_cache_budget -= funded_slots * slot_bytes;
  }

  // Fund the write-behind buffer the same way, after the read window: a
  // fully resident run (Q == P) performs no out-of-core writes, so it gets
  // no write buffer and pays nothing; otherwise the requested budget is
  // clamped to what is still fundable after the prefetch spend.
  const uint64_t wb_requested = options.writeback_buffer_bytes;
  if (wb_requested == 0 || d.resident_intervals == p) {
    d.writeback_buffer_bytes = 0;
  } else if (unlimited) {
    d.writeback_buffer_bytes = wb_requested;
  } else {
    uint64_t funded = std::min(wb_requested, fundable());
    // Floor: a window too small for the largest single payload degrades
    // to serialized oversized admissions — synchronous writes plus queue
    // overhead — so fall back to plain synchronous mode instead.
    if (funded < MaxWritePayloadBytes(manifest, value_bytes,
                                      options.direction,
                                      d.resident_intervals)) {
      funded = 0;
    }
    d.writeback_buffer_bytes = funded;
    d.subshard_cache_budget -= funded;
  }

  // Model prediction for a fully-active iteration's reads under the chosen
  // strategy (measured Be/d from this manifest), reported so runs can
  // compare it against measured bytes — selective scheduling shows up as
  // tail iterations undercutting this number.
  {
    IoModelParams mp =
        MakeIoModelParams(manifest, value_bytes, options.memory_budget_bytes);
    IoCost cost;
    switch (d.strategy) {
      case UpdateStrategy::kSinglePhase:
        cost = SpuIoCost(mp);
        break;
      case UpdateStrategy::kDoublePhase:
        cost = DpuIoCost(mp);
        break;
      default:
        cost = MpuIoCost(mp);
        break;
    }
    d.model_bytes_per_iteration = static_cast<uint64_t>(cost.read_bytes);
  }

  // Resolve the I/O backend: uring needs kernel + build support (cached
  // probe); direct always resolves — DirectIOEnv degrades per file where a
  // filesystem refuses O_DIRECT, which only the open can discover.
  d.io_backend = options.io_backend;
  if (d.io_backend == IoBackend::kUring && !UringSupported()) {
    d.io_backend = IoBackend::kBuffered;
  }
  return d;
}

}  // namespace nxgraph
