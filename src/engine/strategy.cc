#include "src/engine/strategy.h"

#include <algorithm>

namespace nxgraph {

namespace {

std::string MpuName(uint32_t q, uint32_t p) {
  return "MPU(Q=" + std::to_string(q) + "/" + std::to_string(p) + ")";
}

}  // namespace

StrategyDecision ChooseStrategy(const Manifest& manifest, uint32_t value_bytes,
                                uint64_t fixed_overhead_bytes,
                                const RunOptions& options) {
  const uint32_t p = manifest.num_intervals;
  const uint64_t n = manifest.num_vertices;
  const uint64_t full_state = 2ULL * n * value_bytes;  // ping-pong copies

  StrategyDecision d;
  const bool unlimited = options.memory_budget_bytes == 0;
  const uint64_t budget = options.memory_budget_bytes;
  const uint64_t avail =
      unlimited ? UINT64_MAX
                : (budget > fixed_overhead_bytes ? budget - fixed_overhead_bytes
                                                 : 0);

  // Q from the paper's formula: Q <= BM / (2 n Ba) * P.
  uint32_t q_budget;
  if (unlimited || avail >= full_state) {
    q_budget = p;
  } else {
    q_budget = static_cast<uint32_t>(
        static_cast<double>(avail) / static_cast<double>(full_state) * p);
    q_budget = std::min(q_budget, p);
  }

  switch (options.strategy) {
    case UpdateStrategy::kSinglePhase:
      d.strategy = UpdateStrategy::kSinglePhase;
      d.resident_intervals = p;
      d.name = "SPU";
      break;
    case UpdateStrategy::kDoublePhase:
      d.strategy = UpdateStrategy::kDoublePhase;
      d.resident_intervals = 0;
      d.name = "DPU";
      break;
    case UpdateStrategy::kMixedPhase:
      d.strategy = UpdateStrategy::kMixedPhase;
      d.resident_intervals = q_budget;
      d.name = MpuName(q_budget, p);
      break;
    case UpdateStrategy::kAuto:
      if (q_budget == p) {
        d.strategy = UpdateStrategy::kSinglePhase;
        d.resident_intervals = p;
        d.name = "SPU";
      } else if (q_budget == 0) {
        d.strategy = UpdateStrategy::kDoublePhase;
        d.resident_intervals = 0;
        d.name = "DPU";
      } else {
        d.strategy = UpdateStrategy::kMixedPhase;
        d.resident_intervals = q_budget;
        d.name = MpuName(q_budget, p);
      }
      break;
  }

  // Whatever is left after resident vertex state caches sub-shards
  // ("it is more efficient to store intervals in memory than sub-shards",
  // §III-B1 — intervals claim budget first).
  uint64_t resident_state = 0;
  for (uint32_t i = 0; i < d.resident_intervals; ++i) {
    resident_state += 2ULL * manifest.interval_size(i) * value_bytes;
  }
  d.subshard_cache_budget =
      unlimited ? UINT64_MAX : (avail > resident_state ? avail - resident_state : 0);
  return d;
}

}  // namespace nxgraph
