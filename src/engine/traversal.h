// Reusable root-seeded traversal initialization, shared by Engine::Run and
// the serving layer's point queries.
#ifndef NXGRAPH_ENGINE_TRAVERSAL_H_
#define NXGRAPH_ENGINE_TRAVERSAL_H_

#include <cstdint>
#include <vector>

#include "src/engine/vertex_program.h"
#include "src/graph/types.h"
#include "src/prep/manifest.h"

namespace nxgraph {

/// A VertexProgram whose initial state is a constant default everywhere
/// except a small explicit seed set (BFS and SSSP: kInfinity everywhere,
/// 0 at the root). The contract:
///
///   Value DefaultValue() const;
///     Init(v, d) == DefaultValue() for every v not in SeedVertices(),
///     regardless of d.
///
///   std::vector<VertexId> SeedVertices() const;
///     The vertices whose Init differs from the default — exactly the
///     initially active set (InitiallyActive(v) iff v is a seed).
///
/// Seeded initialization lets a point query activate only the intervals
/// containing seeds in O(|seeds|) instead of paying a full O(V) InitValues
/// scan, and lets per-query scratch state materialize intervals lazily
/// (fill with DefaultValue on first touch).
template <typename P>
concept SeededProgram = VertexProgram<P> && requires(const P p) {
  { p.DefaultValue() } -> std::same_as<typename P::Value>;
  { p.SeedVertices() } -> std::same_as<std::vector<VertexId>>;
};

/// Fills `values` with interval i's initial attributes and returns whether
/// any vertex activates the interval. For a SeededProgram this is a bulk
/// default-fill plus O(|seeds|) point writes; otherwise it is the dense
/// per-vertex Init/InitiallyActive scan. `degrees` is indexed by global
/// vertex id (out-degrees, or in-degrees for transpose-only stores).
template <VertexProgram Program>
bool InitIntervalValues(const Program& program, const Manifest& m, uint32_t i,
                        const std::vector<uint32_t>& degrees,
                        std::vector<typename Program::Value>* values) {
  const VertexId begin = m.interval_begin(i);
  const uint32_t size = m.interval_size(i);
  if constexpr (SeededProgram<Program>) {
    values->assign(size, program.DefaultValue());
    bool any_active = false;
    for (VertexId v : program.SeedVertices()) {
      if (v < begin || v >= begin + size) continue;
      (*values)[v - begin] = program.Init(v, degrees[v]);
      any_active = true;
    }
    return any_active;
  } else {
    values->resize(size);
    bool any_active = false;
    for (uint32_t k = 0; k < size; ++k) {
      const VertexId v = begin + k;
      (*values)[k] = program.Init(v, degrees[v]);
      any_active = any_active || program.InitiallyActive(v);
    }
    return any_active;
  }
}

/// Initial per-interval activity bitmap (1 = active before iteration 0)
/// without materializing any values: O(|seeds|) for a SeededProgram,
/// O(V) dense scan otherwise.
template <VertexProgram Program>
std::vector<uint8_t> InitialActivity(const Program& program,
                                     const Manifest& m) {
  std::vector<uint8_t> active(m.num_intervals, 0);
  if constexpr (SeededProgram<Program>) {
    for (VertexId v : program.SeedVertices()) {
      active[m.IntervalOf(v)] = 1;
    }
  } else {
    for (uint32_t i = 0; i < m.num_intervals; ++i) {
      const VertexId begin = m.interval_begin(i);
      const VertexId end = begin + m.interval_size(i);
      for (VertexId v = begin; v < end && !active[i]; ++v) {
        if (program.InitiallyActive(v)) active[i] = 1;
      }
    }
  }
  return active;
}

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_TRAVERSAL_H_
