// The NXgraph execution engine: a unified implementation of the paper's
// three update strategies over Destination-Sorted Sub-Shards.
//
//   SPU  == all P intervals memory-resident (Q = P): phases A + D only.
//   DPU  == no resident intervals (Q = 0): phases B (ToHub) + C (FromHub).
//   MPU  == 0 < Q < P: A (resident x resident), B (disk rows: SPU-like into
//           resident columns, ToHub into disk columns), C (disk columns:
//           SPU-like from resident rows, FromHub from disk rows), D (apply
//           resident columns).
//
// Fine-grained parallelism (paper §III-D): within a sub-shard, worker
// threads own disjoint destination-group chunks, so attribute writes need
// no locks or atomics. Across sub-shards of the same destination interval,
// either a per-column completion-callback chain pipelines rows
// (SyncMode::kCallback) or per-(column, block) locks serialize overlapping
// writers (SyncMode::kLock).
#ifndef NXGRAPH_ENGINE_ENGINE_H_
#define NXGRAPH_ENGINE_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <concepts>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <typeinfo>
#include <utility>
#include <vector>

#include "src/engine/checkpoint.h"
#include "src/engine/options.h"
#include "src/engine/strategy.h"
#include "src/engine/traversal.h"
#include "src/engine/vertex_program.h"
#include "src/io/prefetcher.h"
#include "src/io/writeback.h"
#include "src/storage/graph_store.h"
#include "src/storage/hub_file.h"
#include "src/storage/interval_store.h"
#include "src/util/logging.h"
#include "src/util/retry.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace nxgraph {

/// \brief Runs a VertexProgram over a prepared GraphStore.
template <VertexProgram Program>
class Engine {
 public:
  using Value = typename Program::Value;

  Engine(std::shared_ptr<const GraphStore> store, Program program,
         RunOptions options)
      : store_(std::move(store)),
        program_(std::move(program)),
        options_(std::move(options)) {}

  /// Executes the program to termination; final attributes are available
  /// via values() afterwards.
  Result<RunStats> Run();

  /// Final attribute of every vertex, indexed by dense id.
  const std::vector<Value>& values() const { return final_values_; }

 private:
  struct DirectionPlan {
    bool transpose = false;
    const std::vector<uint32_t>* degrees = nullptr;  // per propagating vertex
    HubFile* hubs = nullptr;
  };

  // ---- setup ----
  Status Prepare();
  Status InitValues();

  // ---- checkpoint/restart ----
  // Attempts to seed this run from the scratch directory's checkpoint;
  // returns true on success. Any validation failure (missing/corrupt
  // record, wrong graph/P/Q/value size, unusable value files) logs a
  // warning and returns false — the caller then starts from iteration 0.
  bool TryResume(Env* env, const std::string& scratch);
  // Commits a checkpoint if `completed_iterations` lands on the interval.
  Status MaybeCheckpoint(int completed_iterations);

  // ---- graceful backend degradation ----
  // True when `s` is the kind of failure a backend swap can fix: a
  // permanent (non-retryable — transient ones already got their bounded
  // retries) I/O error while a non-buffered backend serves the run. The
  // canonical producer is a dead io_uring ring, whose every subsequent
  // submission fails with EIO.
  bool ShouldDowngrade(const Status& s) const {
    return !s.ok() && s.IsIOError() && !s.retryable() &&
           effective_backend_ != IoBackend::kBuffered;
  }
  // Re-resolves the run to the buffered backend mid-flight: drains the
  // write-behind queue against the old files, then reopens the graph
  // store, scratch stores, hubs and checkpoint manager against
  // Env::Default() (the reopen mirror of Prepare's backend selection).
  // The caller restores its iteration snapshot and re-runs the failed
  // step. `cause` is the failure being healed, for the log line.
  Status DowngradeToBuffered(const Status& cause);

  // ---- one iteration ----
  // Phases A-D plus the activity-bitmap commit. Restartable until Phase D
  // runs: A-C only read old_values_, the ping-pong writes of Phase C land
  // in the opposite parity, and D (the in-memory swap) cannot fail — so a
  // failed iteration can be re-run after restoring the active_ and
  // value_parity_ snapshots taken at its start (the downgrade path).
  Status RunIteration(int iter);
  Status PhaseResidentRows();                    // A
  Status PhaseDiskRows();                        // B
  Status PhaseDiskColumns();                     // C
  Status PhaseApplyResident();                   // D
  // Reads the final per-vertex values into final_values_.
  Status CollectFinalValues();

  // ---- helpers ----
  void ProcessGroups(const SubShard& ss, const Value* src_vals,
                     VertexId src_base, Value* acc, VertexId dst_base,
                     const std::vector<uint32_t>& degrees, uint32_t gb,
                     uint32_t ge);
  std::vector<std::pair<uint32_t, uint32_t>> ComputeChunks(
      const SubShard& ss) const;
  bool RowShouldProcess(uint32_t i) const {
    return !Program::kMonotoneSkippable || active_[i] != 0;
  }

  // ---- selective scheduling (frontier x per-blob source summary) ----------
  // Planning-time predicate for one blob: true when the blob must be
  // scheduled this iteration. Empty blobs are never scheduled; with
  // selective scheduling on, a nonempty blob is dropped when its source
  // summary intersects no vertex that changed last iteration (the frontier
  // filter is conservative, so a dropped blob provably contributes only
  // identity — bit-identical results for monotone-skippable programs).
  // Stable within an iteration, so push and consume loops agree.
  bool BlobNeeded(uint32_t i, uint32_t j, bool transpose) const {
    const SubShardMeta& meta = store_->manifest().subshard(i, j, transpose);
    if (meta.num_edges == 0) return false;
    if (!selective_) return true;
    return frontier_[i].MayIntersect(meta.summary);
  }

  // Counting wrapper for the planning loops: same verdict as BlobNeeded,
  // and (when selective scheduling is on) lands every nonempty blob in
  // exactly one of the processed/skipped counters — call once per blob per
  // phase.
  bool PlanBlob(uint32_t i, uint32_t j, bool transpose) {
    const SubShardMeta& meta = store_->manifest().subshard(i, j, transpose);
    if (meta.num_edges == 0) return false;
    if (!selective_) return true;
    const bool needed = frontier_[i].MayIntersect(meta.summary);
    (needed ? subshards_processed_ : subshards_skipped_)
        .fetch_add(1, std::memory_order_relaxed);
    return needed;
  }

  // Maximal contiguous column ranges of row i worth one sequential read
  // each, within columns [0, j_limit): runs cover every needed blob, bridge
  // empty blobs (they cost almost no bytes), and break at summary-skipped
  // nonempty blobs so their bytes are never read. With selective scheduling
  // off this is the single whole-range read the phases always issued.
  // Counts skipped/processed via PlanBlob — call once per (row, direction)
  // per phase.
  std::vector<std::pair<uint32_t, uint32_t>> PlanRowRuns(uint32_t i,
                                                         bool transpose,
                                                         uint32_t j_limit) {
    if (!selective_) return {{0, j_limit}};
    std::vector<std::pair<uint32_t, uint32_t>> runs;
    bool open = false;
    uint32_t begin = 0, end = 0;
    for (uint32_t j = 0; j < j_limit; ++j) {
      const SubShardMeta& meta = store_->manifest().subshard(i, j, transpose);
      if (meta.num_edges == 0) continue;
      if (PlanBlob(i, j, transpose)) {
        if (!open) {
          begin = j;
          open = true;
        }
        end = j + 1;
      } else if (open) {
        runs.emplace_back(begin, end);
        open = false;
      }
    }
    if (open) runs.emplace_back(begin, end);
    return runs;
  }
  void RecordError(const Status& s);
  bool HasError();
  uint32_t grain_edges() const {
    return options_.chunk_width > 0 ? options_.chunk_width : 4096;
  }

  // Rows of the resident block this iteration processes, per direction —
  // the Phase A schedule, shared by the streaming driver and the
  // first-touch cache warm-up.
  struct ResidentRow {
    const DirectionPlan* dir;
    uint32_t i;
  };
  std::vector<ResidentRow> ResidentRowSchedule() const {
    std::vector<ResidentRow> rows;
    for (const DirectionPlan& dir : directions_) {
      for (uint32_t i = 0; i < q_; ++i) {
        if (RowShouldProcess(i)) rows.push_back({&dir, i});
      }
    }
    return rows;
  }

  // Funnel for cache-mediated sub-shard loads, with transient-fault
  // retries: each attempt re-enters the cache, so a failed leader load is
  // retried by a freshly elected leader (followers that shared the failed
  // load retry independently and re-coalesce).
  Result<std::shared_ptr<const SubShard>> GetSubShard(uint32_t i, uint32_t j,
                                                      bool transpose) {
    std::shared_ptr<const SubShard> ss;
    Status s = RunWithRetry(
        options_.retry, &counters_,
        [&] {
          auto r = cache_->Get(i, j, transpose, options_.cancel);
          if (!r.ok()) return r.status();
          ss = std::move(r).value();
          return Status::OK();
        },
        options_.cancel);
    if (!s.ok()) return s;
    edges_traversed_.fetch_add(ss->num_edges(), std::memory_order_relaxed);
    return ss;
  }

  // ---- prefetch streams ---------------------------------------------------
  // All out-of-core reads (sub-shard rows, single sub-shards, interval
  // value segments, hub payloads) go through typed PrefetchStreams: jobs
  // are pushed for the whole phase schedule up front, at most
  // prefetch_depth_ reads run ahead on io_pool_, blob decode rides the
  // compute pool, and the phase driver consumes strictly in push order —
  // so results are bit-identical to the synchronous (depth 0) path.

  using RowStream = PrefetchStream<std::vector<SubShard>>;
  using ShardStream = PrefetchStream<std::shared_ptr<const SubShard>>;
  using ValueStream = PrefetchStream<std::vector<Value>>;
  using HubStream = PrefetchStream<std::string>;

  template <typename T>
  PrefetchStream<T> MakeStream() {
    return PrefetchStream<T>(io_pool_.get(), pool_.get(), prefetch_depth_,
                             options_.retry, &counters_, options_.cancel);
  }

  // Queues one row-range read (single sequential I/O + off-thread decode).
  // Checksums are verified per blob on first contact; the verify mask is
  // snapshot at push time and the blobs marked verified, which is safe
  // because every (direction, row) is pushed at most once per phase and a
  // failed decode aborts the run.
  void PushRow(RowStream& stream, uint32_t i, uint32_t j_begin,
               uint32_t j_end, bool transpose) {
    const size_t base = (transpose ? static_cast<size_t>(p_) * p_ : 0) +
                        static_cast<size_t>(i) * p_;
    std::vector<uint8_t> mask(j_end - j_begin);
    uint64_t bytes = 0;
    for (uint32_t j = j_begin; j < j_end; ++j) {
      mask[j - j_begin] = verified_[base + j] ? 0 : 1;
      verified_[base + j] = 1;
      bytes += store_->manifest().subshard(i, j, transpose).size;
    }
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    std::shared_ptr<const GraphStore> store = store_;
    stream.PushStaged(
        [store, i, j_begin, j_end, transpose]() {
          return store->ReadSubShardRowBytes(i, j_begin, j_end, transpose);
        },
        [store, i, j_begin, j_end, transpose,
         mask = std::move(mask)](std::string&& raw) {
          // The re-read variant gives a decode corruption one fresh read
          // (in-flight bit flips heal) before it aborts the run.
          return store->DecodeSubShardRowWithReread(i, j_begin, j_end,
                                                    transpose, mask, raw);
        });
  }

  // Consumes the next row and accounts its traversed edges.
  Result<std::vector<SubShard>> NextRow(RowStream& stream) {
    auto row = stream.Next();
    if (!row.ok()) return row;
    uint64_t edges = 0;
    for (const SubShard& ss : *row) edges += ss.num_edges();
    edges_traversed_.fetch_add(edges, std::memory_order_relaxed);
    return row;
  }

  // Queues one sub-shard load: through the pinning cache when the budget
  // can hold the graph, or as a verify-once transient read when streaming.
  void PushOne(ShardStream& stream, uint32_t i, uint32_t j, bool transpose) {
    if (!stream_mode_) {
      SubShardCache* cache = cache_.get();
      stream.Push([cache, i, j, transpose]() {
        return cache->Get(i, j, transpose);
      });
      return;
    }
    const size_t idx = (transpose ? static_cast<size_t>(p_) * p_ : 0) +
                       static_cast<size_t>(i) * p_ + j;
    std::vector<uint8_t> mask(1, verified_[idx] ? 0 : 1);
    verified_[idx] = 1;
    bytes_read_.fetch_add(store_->manifest().subshard(i, j, transpose).size,
                          std::memory_order_relaxed);
    std::shared_ptr<const GraphStore> store = store_;
    stream.PushStaged(
        [store, i, j, transpose]() {
          return store->ReadSubShardRowBytes(i, j, j + 1, transpose);
        },
        [store, i, j, transpose, mask = std::move(mask)](std::string&& raw)
            -> Result<std::shared_ptr<const SubShard>> {
          auto row = store->DecodeSubShardRowWithReread(i, j, j + 1, transpose,
                                                        mask, raw);
          if (!row.ok()) return row.status();
          return std::make_shared<const SubShard>(
              std::move((*row)[0]));
        });
  }

  Result<std::shared_ptr<const SubShard>> NextOne(ShardStream& stream) {
    auto ss = stream.Next();
    if (!ss.ok()) return ss;
    edges_traversed_.fetch_add((*ss)->num_edges(), std::memory_order_relaxed);
    return ss;
  }

  // Queues one interval-value segment read (raw bytes, no decode stage).
  void PushIntervalValues(ValueStream& stream, uint32_t i) {
    const uint32_t isize = store_->manifest().interval_size(i);
    const int parity = value_parity_[i];
    IntervalStore* istore = interval_store_.get();
    bytes_read_.fetch_add(static_cast<uint64_t>(isize) * sizeof(Value),
                          std::memory_order_relaxed);
    stream.Push([istore, i, parity, isize]() -> Result<std::vector<Value>> {
      std::vector<Value> buf(isize);
      NX_RETURN_NOT_OK(istore->Read(i, parity, buf.data()));
      return buf;
    });
  }

  // Queues one hub payload read.
  void PushHub(HubStream& stream, HubFile* hubs, uint32_t i, uint32_t j) {
    stream.Push([hubs, i, j]() -> Result<std::string> {
      std::string buf;
      NX_RETURN_NOT_OK(hubs->ReadHub(i, j, &buf));
      return buf;
    });
  }

  // ---- I/O backend ----
  // Owns the backend Env (direct/uring) when one is selected. The reopened
  // store_, the scratch stores and every file object they hold reference
  // it, so it is declared FIRST: members are destroyed in reverse
  // declaration order and no file object may outlive its Env.
  std::unique_ptr<Env> backend_env_;
  IoBackend effective_backend_ = IoBackend::kBuffered;

  // ---- inputs ----
  std::shared_ptr<const GraphStore> store_;
  Program program_;
  RunOptions options_;

  // ---- plan ----
  StrategyDecision decision_;
  uint32_t p_ = 0;  // number of intervals
  uint32_t q_ = 0;  // resident intervals
  size_t prefetch_depth_ = 0;  // effective read-ahead window (0 = sync)
  std::vector<DirectionPlan> directions_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<ThreadPool> io_pool_;  // dedicated prefetch I/O threads
  std::unique_ptr<ThreadPool> wb_pool_;  // dedicated write-behind threads
  std::unique_ptr<SubShardCache> cache_;
  std::unique_ptr<IntervalStore> interval_store_;   // non-resident values
  // Snapshot store for checkpoint_interval > 1. Declared (like the stores
  // above) BEFORE writeback_: the queue's destructor drains writes still
  // targeting these files, so it must be destroyed first.
  std::unique_ptr<IntervalStore> ckpt_store_;
  std::unique_ptr<HubFile> hubs_forward_;
  std::unique_ptr<HubFile> hubs_transpose_;
  // Write-behind queue for all out-of-core writes (hub payloads, interval
  // write-backs). Every phase that writes ends with a Drain() barrier, so
  // later reads never race an in-flight write and results stay
  // bit-identical to the synchronous path (budget 0).
  std::unique_ptr<WritebackQueue> writeback_;
  std::vector<uint32_t> out_degrees_;
  std::vector<uint32_t> in_degrees_;

  // ---- checkpoint/restart state ----
  // The record manager plus (ckpt_store_, declared with the other stores
  // above) a side snapshot store for checkpoint_interval > 1: the live
  // interval store's ping-pong only protects ONE iteration of history, so
  // checkpoints further apart must copy the non-resident segments
  // somewhere the intervening iterations never write. Resident intervals
  // always checkpoint into the live store — the engine reads them purely
  // from memory, so their on-disk segments belong to the checkpoint alone
  // and alternate parity per checkpoint.
  std::unique_ptr<CheckpointManager> ckpt_;
  uint64_t fingerprint_ = 0;       // Manifest::Fingerprint of store_

  // Program identity for checkpoint validation: the record must never seed
  // a different algorithm that happens to share the value size (BFS and
  // WCC are both uint32_t). The mangled type name is stable for a given
  // program type; a record written by a differently-compiled binary at
  // worst mismatches and falls back to a fresh start.
  static uint64_t ProgramId() {
    const char* name = typeid(Program).name();
    uint64_t h = 1469598103934665603ull;  // FNV-1a
    for (const char* c = name; *c != '\0'; ++c) {
      h = (h ^ static_cast<uint8_t>(*c)) * 1099511628211ull;
    }
    return h;
  }

  // Parameter fingerprint: programs expose `uint64_t StateFingerprint()
  // const` so a checkpoint is only resumed by a run with the same
  // parameters (SSSP rooted at 7 must not continue a checkpoint rooted at
  // 0). Programs without the hook checkpoint with 0 — their behavior is
  // fully determined by their type.
  static uint64_t ProgramState(const Program& p) {
    if constexpr (requires { { p.StateFingerprint() } -> std::same_as<uint64_t>; }) {
      return p.StateFingerprint();
    } else {
      return 0;
    }
  }
  int ckpt_snapshot_parity_ = 1;   // last snapshot parity written
  int resume_iter_ = 0;            // iteration the run continues from
  bool resumed_ = false;
  int checkpoints_written_ = 0;
  double checkpoint_seconds_ = 0;

  // ---- per-run state ----
  std::vector<std::vector<Value>> old_values_;  // resident ping
  std::vector<std::vector<Value>> acc_values_;  // resident accumulator/pong
  std::vector<uint8_t> active_;
  std::unique_ptr<std::atomic<uint8_t>[]> next_active_;
  std::vector<int> value_parity_;  // parity of latest on-disk values
  std::vector<uint8_t> hub_written_;  // (direction, i, j) hubs valid this iter
  std::vector<uint8_t> verified_;     // (direction, i, j) checksum verified
  bool stream_mode_ = false;  // cache cannot hold the graph: stream rows
  bool cache_warmed_ = false;  // Phase A first-touch warm-up done

  // Selective scheduling: on when the options ask for it, the program is
  // monotone-skippable, AND the store's manifest carries summaries.
  // frontier_[i] holds the interval-i vertices that changed LAST iteration
  // (all-pass before iteration 0 and after a resume); next_frontier_
  // collects this iteration's changes in the apply loops and the two swap
  // at the iteration boundary, alongside active_.
  bool selective_ = false;
  std::vector<FrontierFilter> frontier_;
  std::vector<FrontierFilter> next_frontier_;

  std::atomic<uint64_t> edges_traversed_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> subshards_processed_{0};
  std::atomic<uint64_t> subshards_skipped_{0};

  // Shared tally of retry/degradation activity across every pipeline
  // (prefetch streams, write-behind queue, the engine's own retried ops).
  // checksum_rereads accumulates the counts of stores replaced by a
  // downgrade; the live store's count is added at reporting time.
  RetryCounters counters_;

  // Decode accounting: Run reports folded_* + (live store − base). The
  // base subtracts decodes a shared store served before this run; a
  // downgrade folds the dying store's delta before the reopen starts the
  // replacement store back at zero (same lifecycle as checksum_rereads).
  uint64_t decode_calls_base_ = 0;
  uint64_t decode_nanos_base_ = 0;
  uint64_t folded_decode_calls_ = 0;
  uint64_t folded_decode_nanos_ = 0;

  // Accumulated by the (single-threaded) phase drivers.
  double phase_seconds_[4] = {0, 0, 0, 0};  // A, B, C, D
  double io_wait_seconds_ = 0;

  std::mutex error_mu_;
  Status first_error_;

  std::vector<Value> final_values_;
};

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

template <VertexProgram Program>
void Engine<Program>::RecordError(const Status& s) {
  if (s.ok()) return;
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = s;
}

template <VertexProgram Program>
bool Engine<Program>::HasError() {
  std::lock_guard<std::mutex> lock(error_mu_);
  return !first_error_.ok();
}

template <VertexProgram Program>
Status Engine<Program>::Prepare() {
  // The backend selection below may replace store_ with a reopen against
  // the backend Env; this keepalive pins the original store — and with it
  // the Manifest `m` references — for the whole setup. The two stores
  // describe the same on-disk manifest, so reads through `m` stay valid
  // and identical either way.
  const std::shared_ptr<const GraphStore> setup_store = store_;
  const Manifest& m = setup_store->manifest();
  p_ = m.num_intervals;

  const bool use_forward = options_.direction == EdgeDirection::kForward ||
                           options_.direction == EdgeDirection::kBoth;
  const bool use_transpose = options_.direction == EdgeDirection::kTranspose ||
                             options_.direction == EdgeDirection::kBoth;
  if (use_transpose && !store_->has_transpose()) {
    return Status::InvalidArgument(
        "run direction requires a store built with build_transpose");
  }

  // Degrees of the propagating endpoint: out-degrees for forward edges,
  // in-degrees (== transpose out-degrees) for reversed edges.
  uint64_t fixed_overhead = 0;
  if (use_forward) {
    NX_ASSIGN_OR_RETURN(out_degrees_, store_->LoadOutDegrees());
    fixed_overhead += out_degrees_.size() * sizeof(uint32_t);
  }
  if (use_transpose) {
    NX_ASSIGN_OR_RETURN(in_degrees_, store_->LoadInDegrees());
    fixed_overhead += in_degrees_.size() * sizeof(uint32_t);
  }

  decision_ =
      ChooseStrategy(m, sizeof(Value), fixed_overhead, options_);
  q_ = decision_.resident_intervals;
  prefetch_depth_ = decision_.prefetch_depth;

  // Select the I/O backend (ChooseStrategy already downgraded uring when
  // the kernel/build lacks it). Backends are real-device optimizations:
  // a store on MemEnv/ThrottledEnv/FaultInjectionEnv keeps its own Env,
  // whose semantics (hermeticity, device model, crash model) the backends
  // would bypass. On the default Posix Env the store is reopened against
  // the backend Env, so the prefetcher's sub-shard reads, the writeback
  // queue's hub/interval writes and the checkpoint stores below all go
  // through it — engine logic is untouched, exactly the Env-boundary
  // contract from src/io/README.md.
  effective_backend_ = decision_.io_backend;
  if (effective_backend_ != IoBackend::kBuffered) {
    if (store_->env() != Env::Default()) {
      effective_backend_ = IoBackend::kBuffered;
    } else if (effective_backend_ == IoBackend::kDirect &&
               !DirectIOSupported(store_->dir())) {
      // The store's filesystem refuses O_DIRECT outright (tmpfs): every
      // read would take the per-file buffered fallback, so reporting
      // "direct" would be a lie — the per-file fallback is for mixed
      // setups (e.g. scratch on a different filesystem), not for a run
      // that cannot go direct at all.
      effective_backend_ = IoBackend::kBuffered;
    } else {
      backend_env_ = NewIoBackendEnv(effective_backend_);
      if (backend_env_ == nullptr) {
        effective_backend_ = IoBackend::kBuffered;
      } else {
        auto reopened = GraphStore::Open(backend_env_.get(), store_->dir());
        if (reopened.ok()) {
          store_ = std::move(*reopened);
        } else {
          NX_LOG(Warn) << "io_backend "
                       << IoBackendName(effective_backend_)
                       << " could not reopen the store ("
                       << reopened.status().ToString()
                       << "); falling back to buffered";
          backend_env_.reset();
          effective_backend_ = IoBackend::kBuffered;
        }
      }
    }
  }

  pool_ = std::make_unique<ThreadPool>(std::max(options_.num_threads, 0));
  if (prefetch_depth_ > 0) {
    io_pool_ = std::make_unique<ThreadPool>(std::max(options_.io_threads, 1));
  }
  cache_ = std::make_unique<SubShardCache>(store_,
                                           decision_.subshard_cache_budget);

  // The decode-path knob applies to whichever store the backend selection
  // settled on; the bases make RunStats report this run's decode work even
  // on a shared store that decoded for earlier runs.
  store_->SetSimdDecode(options_.simd_decode);
  decode_calls_base_ = store_->bulk_decode_calls();
  decode_nanos_base_ = store_->decode_nanos();

  active_.assign(p_, 0);
  next_active_ = std::make_unique<std::atomic<uint8_t>[]>(p_);
  value_parity_.assign(p_, 0);
  hub_written_.assign(2 * static_cast<size_t>(p_) * p_, 0);
  verified_.assign(2 * static_cast<size_t>(p_) * p_, 0);

  std::string scratch = options_.scratch_dir.empty()
                            ? store_->dir() + "/run"
                            : options_.scratch_dir;
  Env* env = store_->env();
  const bool checkpointing = options_.checkpoint_interval > 0;
  if (q_ < p_ || checkpointing) {
    NX_RETURN_NOT_OK(env->CreateDirs(scratch));
    // The manager exists whenever the scratch directory does, so even a
    // non-checkpointing run can invalidate a stale record below;
    // checkpoint writes stay gated on checkpoint_interval.
    ckpt_ = std::make_unique<CheckpointManager>(env, scratch);
  }
  if (checkpointing) {
    fingerprint_ = m.Fingerprint();
    resumed_ = TryResume(env, scratch);
  }
  if ((q_ < p_ || checkpointing) && !resumed_) {
    // Fresh start: drop any stale record BEFORE truncating the value
    // stores — a crash between the two steps must never leave a record
    // pointing at zeroed data. Done even when checkpointing is off: a
    // non-checkpointing run overwrites the same scratch files, and a
    // leftover record from an earlier run would otherwise validate
    // against data it never described.
    NX_RETURN_NOT_OK(ckpt_->Remove());
    NX_ASSIGN_OR_RETURN(
        interval_store_,
        IntervalStore::Create(env, scratch + "/values.nxi", m,
                              sizeof(Value)));
  }
  if (checkpointing && options_.checkpoint_interval > 1 && q_ < p_ &&
      ckpt_store_ == nullptr) {
    // TryResume leaves the snapshot store open when the record references
    // it; truncating here is safe exactly because it does not.
    NX_ASSIGN_OR_RETURN(
        ckpt_store_,
        IntervalStore::Create(env, scratch + "/values_ckpt.nxi", m,
                              sizeof(Value)));
  }
  if (q_ < p_) {
    if (use_forward) {
      NX_ASSIGN_OR_RETURN(hubs_forward_,
                          HubFile::Create(env, scratch + "/hubs_f.nxh", m, q_,
                                          sizeof(Value),
                                          /*transpose=*/false));
    }
    if (use_transpose) {
      NX_ASSIGN_OR_RETURN(hubs_transpose_,
                          HubFile::Create(env, scratch + "/hubs_t.nxh", m, q_,
                                          sizeof(Value),
                                          /*transpose=*/true));
    }
    // Writers get their own pool: a slow device write must never occupy a
    // prefetch thread and starve the read window.
    if (decision_.writeback_buffer_bytes > 0) {
      wb_pool_ = std::make_unique<ThreadPool>(
          std::max(options_.writeback_threads, 1));
    }
    writeback_ = std::make_unique<WritebackQueue>(
        wb_pool_.get(), decision_.writeback_buffer_bytes, options_.retry,
        &counters_);
  }

  directions_.clear();
  if (use_forward) {
    directions_.push_back(
        DirectionPlan{false, &out_degrees_, hubs_forward_.get()});
  }
  if (use_transpose) {
    directions_.push_back(
        DirectionPlan{true, &in_degrees_, hubs_transpose_.get()});
  }

  // If the cache budget cannot pin the decoded graph, switch to streaming:
  // whole-row sequential reads in row-major order (paper: "streamlined
  // disk access pattern"). Decoded footprints come from the manifest's
  // per-blob counts — with a compressed blob format (NXS2) the encoded
  // file size undercounts what the cache must actually hold.
  uint64_t decoded_bytes = 0;
  if (use_forward) decoded_bytes += m.TotalDecodedSubShardBytes(false);
  if (use_transpose) decoded_bytes += m.TotalDecodedSubShardBytes(true);
  stream_mode_ = decision_.subshard_cache_budget < decoded_bytes;

  selective_ = options_.selective_scheduling && Program::kMonotoneSkippable &&
               m.has_summaries();
  if (selective_) {
    frontier_.resize(p_);
    next_frontier_.resize(p_);
    for (uint32_t i = 0; i < p_; ++i) {
      frontier_[i].layout = m.summary_layout(i);
      next_frontier_[i].layout = frontier_[i].layout;
      // Conservative until the first apply has run (or forever on resume:
      // the checkpoint records per-interval activity, not per-vertex
      // changes — the first resumed iteration falls back to row-level
      // skipping and the frontier sharpens from the next one).
      frontier_[i].ResetToAll();
      next_frontier_[i].ResetToEmpty();
    }
  }
  return Status::OK();
}

template <VertexProgram Program>
bool Engine<Program>::TryResume(Env* env, const std::string& scratch) {
  auto record_or = ckpt_->Load();
  if (!record_or.ok()) {
    if (!record_or.status().IsNotFound()) {
      NX_LOG(Warn) << "checkpoint unreadable ("
                   << record_or.status().ToString()
                   << "); starting from iteration 0";
    }
    return false;
  }
  CheckpointState rec = std::move(record_or).value();
  if (rec.graph_fingerprint != fingerprint_ || rec.program_id != ProgramId() ||
      rec.program_state != ProgramState(program_) ||
      rec.direction != static_cast<uint8_t>(options_.direction) ||
      rec.value_bytes != sizeof(Value) || rec.num_intervals != p_ ||
      rec.resident_intervals != q_) {
    NX_LOG(Warn) << "checkpoint does not match this run "
                 << "(graph fingerprint / program / parameters / direction "
                 << "/ P / Q / value size); starting from iteration 0";
    return false;
  }
  if (options_.max_iterations > 0 &&
      rec.iteration > static_cast<uint32_t>(options_.max_iterations)) {
    // The record is past this run's cap: "resuming" would return more
    // iterations than asked for. A fresh capped run is the only answer
    // that matches an uninterrupted one.
    NX_LOG(Warn) << "checkpoint at iteration " << rec.iteration
                 << " is beyond max_iterations = " << options_.max_iterations
                 << "; starting from iteration 0";
    return false;
  }
  auto live = IntervalStore::Open(env, scratch + "/values.nxi",
                                  store_->manifest(), sizeof(Value));
  if (!live.ok()) {
    NX_LOG(Warn) << "checkpoint value store unusable ("
                 << live.status().ToString() << "); starting from iteration 0";
    return false;
  }
  if (rec.has_snapshot) {
    // Checkpoints further apart than one iteration park the non-resident
    // segments in the side snapshot store; restore them into the live
    // store at the recorded parity. A crash mid-copy is harmless — the
    // record stays valid and the next attempt redoes the copy.
    auto snap = IntervalStore::Open(env, scratch + "/values_ckpt.nxi",
                                    store_->manifest(), sizeof(Value));
    if (!snap.ok()) {
      NX_LOG(Warn) << "checkpoint snapshot store unusable ("
                   << snap.status().ToString()
                   << "); starting from iteration 0";
      return false;
    }
    std::vector<char> buf;
    for (uint32_t i = q_; i < p_; ++i) {
      buf.resize((*live)->segment_bytes(i));
      Status s = (*snap)->Read(i, rec.snapshot_parity, buf.data());
      if (s.ok()) s = (*live)->Write(i, rec.value_parity[i], buf.data());
      if (!s.ok()) {
        NX_LOG(Warn) << "checkpoint snapshot restore failed (" << s.ToString()
                     << "); starting from iteration 0";
        return false;
      }
    }
    ckpt_store_ = std::move(*snap);
  }
  interval_store_ = std::move(*live);
  ckpt_snapshot_parity_ = rec.snapshot_parity;
  for (uint32_t i = 0; i < p_; ++i) {
    value_parity_[i] = rec.value_parity[i];
    active_[i] = rec.active[i];
  }
  resume_iter_ = static_cast<int>(rec.iteration);
  NX_LOG(Info) << "resuming from checkpoint at iteration " << resume_iter_;
  return true;
}

template <VertexProgram Program>
Status Engine<Program>::MaybeCheckpoint(int completed_iterations) {
  if (options_.checkpoint_interval <= 0 ||
      completed_iterations % options_.checkpoint_interval != 0) {
    return Status::OK();
  }
  Timer timer;
  // Every direct (non-queued) step of the commit below runs under
  // RunWithRetry: a checkpoint is precisely the work worth re-attempting
  // through a transient glitch. All of the ops are idempotent positional
  // reads/writes (or the manager's write-temp + rename), and the
  // downgrade path may re-run this whole function after restoring the
  // parity snapshot taken by the caller.
  //
  // Resident intervals have no disk copy outside the checkpoint: write the
  // freshly applied values into their opposite parity. The engine never
  // reads resident segments, so the parity the current record points at is
  // untouched until the new record commits.
  for (uint32_t i = 0; i < q_; ++i) {
    const int parity = 1 - value_parity_[i];
    NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_, [&] {
      return interval_store_->Write(writeback_.get(), i, parity,
                                    old_values_[i].data());
    }));
    value_parity_[i] = parity;
  }
  // With checkpoints further apart than the ping-pong history (interval
  // > 1), copy the non-resident segments into the side snapshot store,
  // alternating ITS parity per checkpoint for the same protection.
  bool wrote_snapshot = false;
  int snap_parity = ckpt_snapshot_parity_;
  if (ckpt_store_ != nullptr && options_.checkpoint_interval > 1) {
    snap_parity = 1 - ckpt_snapshot_parity_;
    std::vector<char> buf;
    for (uint32_t i = q_; i < p_; ++i) {
      buf.resize(interval_store_->segment_bytes(i));
      NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_, [&] {
        return interval_store_->Read(i, value_parity_[i], buf.data());
      }));
      NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_, [&] {
        return ckpt_store_->Write(writeback_.get(), i, snap_parity,
                                  buf.data());
      }));
    }
    wrote_snapshot = true;
  }
  // Durability barrier: everything the record will point at must be on the
  // device before the record exists. The queue's Drain lands and flushes
  // the writes pushed through it, but a zero writeback budget records no
  // flush targets (it is the pre-writeback synchronous path) and the
  // resume path's snapshot restore writes directly — so the stores are
  // synced explicitly as well; a redundant fdatasync is cheap. Drain
  // retries internally (per write, through the queue's own policy).
  if (writeback_ != nullptr) NX_RETURN_NOT_OK(writeback_->Drain(/*sync=*/true));
  NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_,
                                [&] { return interval_store_->Sync(); }));
  if (wrote_snapshot) {
    NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_,
                                  [&] { return ckpt_store_->Sync(); }));
  }

  CheckpointState rec;
  rec.graph_fingerprint = fingerprint_;
  rec.program_id = ProgramId();
  rec.program_state = ProgramState(program_);
  rec.direction = static_cast<uint8_t>(options_.direction);
  rec.value_bytes = sizeof(Value);
  rec.num_intervals = p_;
  rec.resident_intervals = q_;
  rec.iteration = static_cast<uint32_t>(completed_iterations);
  rec.has_snapshot = wrote_snapshot ? 1 : 0;
  rec.snapshot_parity = static_cast<uint8_t>(snap_parity);
  rec.value_parity.assign(value_parity_.begin(), value_parity_.end());
  rec.active = active_;
  NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_,
                                [&] { return ckpt_->Write(rec); }));
  ckpt_snapshot_parity_ = snap_parity;
  checkpoint_seconds_ += timer.ElapsedSeconds();
  ++checkpoints_written_;
  return Status::OK();
}

template <VertexProgram Program>
Status Engine<Program>::DowngradeToBuffered(const Status& cause) {
  NX_LOG(Warn) << "io backend " << IoBackendName(effective_backend_)
               << " failed mid-run (" << cause.ToString()
               << "); downgrading to buffered and retrying";
  // Settle the write-behind queue against the old file objects before any
  // of them is reopened; failures here are expected (the dying backend is
  // why we are here) and already recorded by the caller's failed step.
  if (writeback_ != nullptr) {
    Status drained = writeback_->Drain(/*sync=*/false);
    if (!drained.ok()) {
      NX_LOG(Warn) << "writeback drain during downgrade: "
                   << drained.ToString();
    }
  }
  const bool had_writeback = writeback_ != nullptr;
  writeback_.reset();
  // Drop the cache before the store: its entries pin the old store (and
  // with it the old backend's file objects). Decoded sub-shards are
  // re-verified lazily like any fresh run. backend_env_ itself stays
  // alive untouched until destruction — it is declared first, so no file
  // object can outlive it even transiently.
  cache_.reset();
  counters_.checksum_rereads.fetch_add(store_->checksum_rereads(),
                                       std::memory_order_relaxed);
  folded_decode_calls_ += store_->bulk_decode_calls() - decode_calls_base_;
  folded_decode_nanos_ += store_->decode_nanos() - decode_nanos_base_;

  Env* env = Env::Default();
  NX_ASSIGN_OR_RETURN(store_, GraphStore::Open(env, store_->dir()));
  store_->SetSimdDecode(options_.simd_decode);
  decode_calls_base_ = 0;
  decode_nanos_base_ = 0;
  cache_ = std::make_unique<SubShardCache>(store_,
                                           decision_.subshard_cache_budget);
  const std::string scratch = options_.scratch_dir.empty()
                                  ? store_->dir() + "/run"
                                  : options_.scratch_dir;
  if (ckpt_ != nullptr) {
    ckpt_ = std::make_unique<CheckpointManager>(env, scratch);
  }
  // Scratch stores reopen (Open, not Create: the values on disk are the
  // run's live state). Hubs are recreated — their contents only live
  // within one iteration, and the caller restarts the failed iteration,
  // so Phase B rewrites everything Phase C will read.
  if (interval_store_ != nullptr) {
    NX_ASSIGN_OR_RETURN(
        interval_store_,
        IntervalStore::Open(env, scratch + "/values.nxi", store_->manifest(),
                            sizeof(Value)));
  }
  if (ckpt_store_ != nullptr) {
    NX_ASSIGN_OR_RETURN(
        ckpt_store_,
        IntervalStore::Open(env, scratch + "/values_ckpt.nxi",
                            store_->manifest(), sizeof(Value)));
  }
  if (hubs_forward_ != nullptr) {
    NX_ASSIGN_OR_RETURN(
        hubs_forward_,
        HubFile::Create(env, scratch + "/hubs_f.nxh", store_->manifest(), q_,
                        sizeof(Value), /*transpose=*/false));
  }
  if (hubs_transpose_ != nullptr) {
    NX_ASSIGN_OR_RETURN(
        hubs_transpose_,
        HubFile::Create(env, scratch + "/hubs_t.nxh", store_->manifest(), q_,
                        sizeof(Value), /*transpose=*/true));
  }
  for (DirectionPlan& dir : directions_) {
    dir.hubs = dir.transpose ? hubs_transpose_.get() : hubs_forward_.get();
  }
  if (had_writeback) {
    writeback_ = std::make_unique<WritebackQueue>(
        wb_pool_.get(), decision_.writeback_buffer_bytes, options_.retry,
        &counters_);
  }
  effective_backend_ = IoBackend::kBuffered;
  counters_.backend_downgrades.fetch_add(1, std::memory_order_relaxed);
  // The failed step recorded its error; the re-run must start clean.
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    first_error_ = Status::OK();
  }
  return Status::OK();
}

template <VertexProgram Program>
Status Engine<Program>::InitValues() {
  const Manifest& m = store_->manifest();
  const std::vector<uint32_t>& degrees =
      !out_degrees_.empty() ? out_degrees_ : in_degrees_;

  old_values_.assign(p_, {});
  acc_values_.assign(p_, {});
  if (resumed_) {
    // The checkpoint seeded parity and activity; only the resident
    // intervals' values need to come back into memory.
    for (uint32_t i = 0; i < q_; ++i) {
      const uint32_t size = m.interval_size(i);
      old_values_[i].resize(size);
      NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_, [&] {
        return interval_store_->Read(i, value_parity_[i],
                                     old_values_[i].data());
      }));
      acc_values_[i].assign(size, Program::Identity());
    }
    return Status::OK();
  }
  for (uint32_t i = 0; i < p_; ++i) {
    const uint32_t size = m.interval_size(i);
    std::vector<Value> init;
    active_[i] = InitIntervalValues(program_, m, i, degrees, &init) ? 1 : 0;
    if (i < q_) {
      old_values_[i] = std::move(init);
      acc_values_[i].assign(size, Program::Identity());
    } else {
      NX_RETURN_NOT_OK(
          interval_store_->Write(writeback_.get(), i, 0, init.data()));
      bytes_written_.fetch_add(size * sizeof(Value),
                               std::memory_order_relaxed);
      value_parity_[i] = 0;
    }
  }
  // Seeded programs (BFS/SSSP point traversals) start with an EXACT
  // frontier — only the seeds differ from the default value — so iteration
  // 0 already skips every blob the seeds cannot reach, instead of paying
  // one all-pass sweep of the seeds' rows. Dense-init programs keep the
  // conservative all-pass filter until the first apply has run.
  if (selective_) {
    if constexpr (SeededProgram<Program>) {
      for (uint32_t i = 0; i < p_; ++i) frontier_[i].ResetToEmpty();
      for (VertexId v : program_.SeedVertices()) {
        frontier_[m.IntervalOf(v)].Add(v);
      }
    }
  }
  // Ordering barrier: the first iteration's Phase B reads these segments.
  if (writeback_ != nullptr) {
    NX_RETURN_NOT_OK(writeback_->Drain(/*sync=*/false));
  }
  return Status::OK();
}

// Core inner loop: accumulate contributions for destination groups
// [gb, ge) of one sub-shard. Destinations in a chunk are exclusive to the
// calling thread, so `acc` writes are plain stores (no atomics).
template <VertexProgram Program>
void Engine<Program>::ProcessGroups(const SubShard& ss, const Value* src_vals,
                                    VertexId src_base, Value* acc,
                                    VertexId dst_base,
                                    const std::vector<uint32_t>& degrees,
                                    uint32_t gb, uint32_t ge) {
  const bool weighted = !ss.weights.empty();
  for (uint32_t g = gb; g < ge; ++g) {
    const VertexId dst = ss.dsts[g];
    Value a = Program::Identity();
    const uint32_t kb = ss.offsets[g];
    const uint32_t ke = ss.offsets[g + 1];
    for (uint32_t k = kb; k < ke; ++k) {
      const VertexId src = ss.srcs[k];
      EdgeContext edge{src, dst, weighted ? ss.weights[k] : 1.0f,
                       degrees[src]};
      a = Program::Accumulate(a, program_.Gather(edge, src_vals[src - src_base]));
    }
    Value& slot = acc[dst - dst_base];
    slot = Program::Accumulate(slot, a);
  }
}

template <VertexProgram Program>
std::vector<std::pair<uint32_t, uint32_t>> Engine<Program>::ComputeChunks(
    const SubShard& ss) const {
  std::vector<std::pair<uint32_t, uint32_t>> chunks;
  const uint32_t grain = grain_edges();
  const uint32_t num_groups = ss.num_dsts();
  uint32_t gb = 0;
  while (gb < num_groups) {
    uint32_t ge = gb;
    uint32_t edges = 0;
    while (ge < num_groups && edges < grain) {
      edges += ss.offsets[ge + 1] - ss.offsets[ge];
      ++ge;
    }
    chunks.emplace_back(gb, ge);
    gb = ge;
  }
  return chunks;
}

// ---- Phase A: resident rows x resident columns --------------------------

template <VertexProgram Program>
Status Engine<Program>::PhaseResidentRows() {
  if (q_ == 0) return Status::OK();
  const Manifest& m = store_->manifest();

  if (stream_mode_) {
    // Streaming schedule: rows load with one sequential read each and are
    // processed with a barrier per row. Within a row every chunk writes a
    // distinct (column, destination-range), so no synchronization beyond
    // the barrier is needed; the disk sees pure forward scans. The whole
    // schedule is pushed up front so the prefetcher keeps iteration i+1's
    // row reads in flight while row i's chunks are still computing.
    // Each row reads as one sequential run per contiguous range of
    // frontier-passing blobs (the whole [0, q_) range when selective
    // scheduling is off — the original single-read-per-row schedule).
    struct StreamRow {
      const DirectionPlan* dir;
      uint32_t i;
      std::vector<std::pair<uint32_t, uint32_t>> runs;
    };
    std::vector<StreamRow> schedule;
    for (const ResidentRow& r : ResidentRowSchedule()) {
      StreamRow sr{r.dir, r.i, PlanRowRuns(r.i, r.dir->transpose, q_)};
      if (!sr.runs.empty()) schedule.push_back(std::move(sr));
    }
    RowStream rows = MakeStream<std::vector<SubShard>>();
    for (const StreamRow& r : schedule) {
      for (auto [jb, je] : r.runs) {
        PushRow(rows, r.i, jb, je, r.dir->transpose);
      }
    }
    for (const StreamRow& r : schedule) {
      const VertexId src_base = m.interval_begin(r.i);
      const Value* src_vals = old_values_[r.i].data();
      for (auto [jb, je] : r.runs) {
        NX_ASSIGN_OR_RETURN(std::vector<SubShard> row, NextRow(rows));
        WaitGroup wg;
        for (uint32_t j = jb; j < je; ++j) {
          const SubShard& ss = row[j - jb];
          if (ss.empty()) continue;
          Value* acc = acc_values_[j].data();
          const VertexId dst_base = m.interval_begin(j);
          const std::vector<uint32_t>* degrees = r.dir->degrees;
          for (auto [gb, ge] : ComputeChunks(ss)) {
            wg.Add(1);
            pool_->Submit([this, &ss, src_vals, src_base, acc, dst_base,
                           degrees, gb, ge, &wg] {
              ProcessGroups(ss, src_vals, src_base, acc, dst_base, *degrees,
                            gb, ge);
              wg.Done();
            });
          }
        }
        wg.Wait();
      }
    }
    io_wait_seconds_ += rows.io_wait_seconds();
    return Status::OK();
  }

  // First-touch warm-up (ROADMAP item): iteration 0 of a cached run used
  // to pay every sub-shard load as a synchronous miss inside the
  // callback/lock chains. Load the resident block as whole rows through
  // the prefetch pipeline instead — one sequential read per row on the I/O
  // pool, decode on the compute pool, bounded by the usual window — and
  // deposit the decoded sub-shards in the cache, which the schedulers
  // below then hit.
  if (!cache_warmed_) {
    cache_warmed_ = true;
    if (prefetch_depth_ > 0) {
      const std::vector<ResidentRow> warm_rows = ResidentRowSchedule();
      RowStream warm = MakeStream<std::vector<SubShard>>();
      for (const ResidentRow& r : warm_rows) {
        PushRow(warm, r.i, 0, q_, r.dir->transpose);
      }
      for (const ResidentRow& r : warm_rows) {
        auto row = warm.Next();
        if (!row.ok()) return row.status();
        for (uint32_t j = 0; j < q_; ++j) {
          if ((*row)[j].empty()) continue;
          cache_->Put(r.i, j, r.dir->transpose,
                      std::make_shared<const SubShard>(std::move((*row)[j])));
        }
      }
      io_wait_seconds_ += warm.io_wait_seconds();
    }
  }

  if (options_.sync_mode == SyncMode::kCallback) {
    // Per-column chains: rows of one column run in order, the completion
    // callback of the last chunk dispatches the next row; rows of
    // different columns overlap freely (paper: "worker threads for the
    // next sub-shard can be issued before all threads for the current
    // sub-shard are finished"). One chain covers BOTH directions of its
    // column — the forward and transpose sub-shards of a column write
    // overlapping destinations, so they must not run concurrently.
    struct Chain {
      struct RowRef {
        const DirectionPlan* dir;
        uint32_t i;
      };
      Engine* engine;
      uint32_t column;
      std::vector<RowRef> rows;
      std::atomic<size_t> next{0};
      std::atomic<uint32_t> pending{0};
      std::shared_ptr<const SubShard> current;
      WaitGroup* wg;

      void Dispatch() {
        Engine* e = engine;
        for (;;) {
          if (e->HasError()) break;
          const size_t r = next.load(std::memory_order_relaxed);
          if (r >= rows.size()) break;
          next.store(r + 1, std::memory_order_relaxed);
          const DirectionPlan* dir = rows[r].dir;
          const uint32_t i = rows[r].i;
          auto ss_or = e->GetSubShard(i, column, dir->transpose);
          if (!ss_or.ok()) {
            e->RecordError(ss_or.status());
            break;
          }
          current = std::move(ss_or).value();
          if (current->empty()) continue;
          auto chunks = e->ComputeChunks(*current);
          const Manifest& mf = e->store_->manifest();
          const VertexId src_base = mf.interval_begin(i);
          const VertexId dst_base = mf.interval_begin(column);
          Value* acc = e->acc_values_[column].data();
          const Value* src_vals = e->old_values_[i].data();
          if (chunks.size() == 1) {
            // Common case for small sub-shards: stay on this thread, no
            // queue round-trip or completion counter.
            e->ProcessGroups(*current, src_vals, src_base, acc, dst_base,
                             *dir->degrees, chunks[0].first,
                             chunks[0].second);
            continue;
          }
          pending.store(static_cast<uint32_t>(chunks.size()),
                        std::memory_order_relaxed);
          std::shared_ptr<const SubShard> ss = current;
          for (auto [gb, ge] : chunks) {
            e->pool_->Submit([this, e, dir, ss, src_vals, src_base, acc,
                              dst_base, gb, ge] {
              e->ProcessGroups(*ss, src_vals, src_base, acc, dst_base,
                               *dir->degrees, gb, ge);
              if (pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                Dispatch();
              }
            });
          }
          return;  // continuation happens in the last chunk's callback
        }
        wg->Done();
      }
    };

    std::vector<std::unique_ptr<Chain>> chains;
    WaitGroup wg;
    for (uint32_t j = 0; j < q_; ++j) {
      auto chain = std::make_unique<Chain>();
      chain->engine = this;
      chain->column = j;
      chain->wg = &wg;
      for (const DirectionPlan& dir : directions_) {
        for (uint32_t i = 0; i < q_; ++i) {
          if (RowShouldProcess(i) && BlobNeeded(i, j, dir.transpose)) {
            chain->rows.push_back({&dir, i});
          }
        }
      }
      chains.push_back(std::move(chain));
    }
    wg.Add(static_cast<int>(chains.size()));
    for (auto& chain : chains) {
      Chain* c = chain.get();
      pool_->Submit([c] { c->Dispatch(); });
    }
    wg.Wait();
  } else {
    // Lock mode: all (sub-shard, chunk) tasks are enqueued at once in any
    // order; a mutex per destination interval serializes the conflicting
    // writers ("set a lock on each destination interval when writing",
    // §IV). Different columns proceed fully in parallel.
    std::vector<std::unique_ptr<std::mutex>> column_locks(q_);
    for (auto& lock : column_locks) lock = std::make_unique<std::mutex>();
    WaitGroup wg;
    for (const DirectionPlan& dir : directions_) {
      for (uint32_t i = 0; i < q_; ++i) {
        if (!RowShouldProcess(i)) continue;
        for (uint32_t j = 0; j < q_; ++j) {
          if (!BlobNeeded(i, j, dir.transpose)) continue;
          auto ss_or = GetSubShard(i, j, dir.transpose);
          if (!ss_or.ok()) {
            RecordError(ss_or.status());
            continue;
          }
          std::shared_ptr<const SubShard> ss = std::move(ss_or).value();
          const VertexId dst_base = m.interval_begin(j);
          const VertexId src_base = m.interval_begin(i);
          const Value* src_vals = old_values_[i].data();
          Value* acc = acc_values_[j].data();
          const std::vector<uint32_t>* degrees = dir.degrees;
          std::mutex* lock = column_locks[j].get();
          for (auto [gb, ge] : ComputeChunks(*ss)) {
            wg.Add(1);
            pool_->Submit([this, ss, src_vals, src_base, acc, dst_base,
                           degrees, gb, ge, lock, &wg] {
              {
                std::lock_guard<std::mutex> guard(*lock);
                ProcessGroups(*ss, src_vals, src_base, acc, dst_base,
                              *degrees, gb, ge);
              }
              // Unlock before signaling: wg.Wait() may destroy the locks
              // the moment the count reaches zero.
              wg.Done();
            });
          }
        }
      }
    }
    wg.Wait();
  }
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

// ---- Phase B: disk rows (SPU-like into resident columns, ToHub) ----------

template <VertexProgram Program>
Status Engine<Program>::PhaseDiskRows() {
  if (q_ == p_) return Status::OK();
  const Manifest& m = store_->manifest();
  std::fill(hub_written_.begin(), hub_written_.end(), 0);

  // Push the whole phase schedule — row i's interval values plus its
  // per-direction sub-shard rows — so reads for row i+1 (and beyond, up to
  // the window depth) are in flight while row i is computing. With
  // selective scheduling each direction's row shrinks to the contiguous
  // runs of blobs whose source summary intersects the frontier; a row
  // where every direction planned empty is dropped entirely (its source
  // values are not even fetched).
  struct DiskRow {
    uint32_t i;
    // runs[d] = contiguous [begin, end) column ranges for directions_[d].
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> runs;
  };
  std::vector<DiskRow> schedule;
  for (uint32_t i = q_; i < p_; ++i) {
    if (!RowShouldProcess(i)) continue;
    DiskRow dr{i, {}};
    bool any = false;
    for (const DirectionPlan& dir : directions_) {
      dr.runs.push_back(PlanRowRuns(i, dir.transpose, p_));
      any = any || !dr.runs.back().empty();
    }
    if (any) schedule.push_back(std::move(dr));
  }
  if (schedule.empty()) return Status::OK();
  ValueStream values = MakeStream<std::vector<Value>>();
  RowStream rows = MakeStream<std::vector<SubShard>>();
  for (const DiskRow& dr : schedule) {
    PushIntervalValues(values, dr.i);
    for (size_t d = 0; d < directions_.size(); ++d) {
      for (auto [jb, je] : dr.runs[d]) {
        PushRow(rows, dr.i, jb, je, directions_[d].transpose);
      }
    }
  }

  for (const DiskRow& dr : schedule) {
    const uint32_t i = dr.i;
    const VertexId src_base = m.interval_begin(i);
    NX_ASSIGN_OR_RETURN(std::vector<Value> src_buf, values.Next());

    for (size_t d = 0; d < directions_.size(); ++d) {
      const DirectionPlan& dir = directions_[d];
      for (auto [run_begin, run_end] : dr.runs[d]) {
      NX_ASSIGN_OR_RETURN(std::vector<SubShard> row, NextRow(rows));
      WaitGroup wg;
      // SPU-like updates into resident destination columns. Within one row
      // all columns are distinct, so chunks across columns run in parallel.
      for (uint32_t j = run_begin; j < std::min(run_end, q_); ++j) {
        const SubShard& ss = row[j - run_begin];
        if (ss.empty()) continue;
        const VertexId dst_base = m.interval_begin(j);
        Value* acc = acc_values_[j].data();
        const Value* src_vals = src_buf.data();
        const std::vector<uint32_t>* degrees = dir.degrees;
        for (auto [gb, ge] : ComputeChunks(ss)) {
          wg.Add(1);
          pool_->Submit([this, &ss, src_vals, src_base, acc, dst_base,
                         degrees, gb, ge, &wg] {
            ProcessGroups(ss, src_vals, src_base, acc, dst_base, *degrees,
                          gb, ge);
            wg.Done();
          });
        }
      }
      // ToHub for disk destination columns: pre-accumulate per destination
      // and write the (dst, partial) entries to the sub-shard's hub. Hub
      // segments are disjoint and WriteHub is a positional (pwrite-style)
      // write, so concurrent tasks need no serialization.
      for (uint32_t j = std::max(run_begin, q_); j < run_end; ++j) {
        const SubShard& ss = row[j - run_begin];
        if (ss.empty()) continue;
        const std::vector<uint32_t>* degrees = dir.degrees;
        const bool transpose = dir.transpose;
        HubFile* hubs = dir.hubs;
        const Value* src_vals = src_buf.data();
        wg.Add(1);
        pool_->Submit([this, &ss, src_vals, src_base, degrees, transpose,
                       hubs, i, j, &wg] {
          const uint32_t num_groups = ss.num_dsts();
          const bool weighted = !ss.weights.empty();
          std::string payload;
          payload.reserve(8 + num_groups * (4 + sizeof(Value)));
          payload.resize(8);
          const uint64_t count = num_groups;
          std::memcpy(payload.data(), &count, 8);
          for (uint32_t g = 0; g < num_groups; ++g) {
            const VertexId dst = ss.dsts[g];
            Value a = Program::Identity();
            for (uint32_t k = ss.offsets[g]; k < ss.offsets[g + 1]; ++k) {
              const VertexId src = ss.srcs[k];
              EdgeContext edge{src, dst, weighted ? ss.weights[k] : 1.0f,
                               (*degrees)[src]};
              a = Program::Accumulate(
                  a, program_.Gather(edge, src_vals[src - src_base]));
            }
            payload.append(reinterpret_cast<const char*>(&dst), 4);
            payload.append(reinterpret_cast<const char*>(&a), sizeof(Value));
          }
          bytes_written_.fetch_add(payload.size(), std::memory_order_relaxed);
          // Hand the serialized payload to the write-behind queue: the
          // compute task moves on immediately, an I/O thread lands the
          // pwrite, and any failure surfaces from the end-of-phase Drain.
          RecordError(
              hubs->WriteHub(writeback_.get(), i, j, std::move(payload)));
          hub_written_[(transpose ? static_cast<size_t>(p_) * p_ : 0) +
                       static_cast<size_t>(i) * p_ + j] = 1;
          wg.Done();
        });
      }
      wg.Wait();
      }  // runs
    }
    if (HasError()) break;
  }
  io_wait_seconds_ += values.io_wait_seconds() + rows.io_wait_seconds();
  // Ordering barrier: Phase C reads every hub written above, so all hub
  // payloads must have landed before this phase ends. A failed write
  // surfaces here instead of being dropped; the flush debt is settled by
  // the iteration-boundary drain (hubs are re-written every iteration, so
  // syncing them mid-iteration would buy no durability).
  if (writeback_ != nullptr) RecordError(writeback_->Drain(/*sync=*/false));
  std::lock_guard<std::mutex> lock(error_mu_);
  return first_error_;
}

// ---- Phase C: disk columns (SPU-like from resident rows, FromHub) --------

template <VertexProgram Program>
Status Engine<Program>::PhaseDiskColumns() {
  if (q_ == p_) return Status::OK();
  const Manifest& m = store_->manifest();

  // Monotone programs can skip a column when no contributing row ran; the
  // activity bitmap is stable within an iteration, so the whole phase
  // schedule is known up front and every read — resident-row sub-shards,
  // hub payloads, and the column's previous values — can be prefetched
  // while earlier columns compute.
  std::vector<uint32_t> columns;
  bool any_source = false;
  if (Program::kMonotoneSkippable) {
    for (uint32_t i = 0; i < p_ && !any_source; ++i) {
      any_source = RowShouldProcess(i);
    }
  } else {
    any_source = true;
  }
  if (any_source) {
    for (uint32_t j = q_; j < p_; ++j) {
      // With selective scheduling a column with no summary-passing
      // resident-row blob and no hub written by Phase B has nothing to
      // fold: its apply is the identity (Apply(v, Identity, old) == old
      // for monotone programs — the same reasoning as the any_source
      // skip above), so the column's values are neither read nor
      // rewritten. PlanBlob counts each nonempty blob's verdict exactly
      // once, here; the push/consume loops below re-test with the pure
      // BlobNeeded so they stay in lockstep without double counting.
      bool any_work = !selective_;
      for (const DirectionPlan& dir : directions_) {
        for (uint32_t i = 0; i < q_; ++i) {
          if (!RowShouldProcess(i)) continue;
          if (PlanBlob(i, j, dir.transpose)) any_work = true;
        }
        for (uint32_t i = q_; i < p_; ++i) {
          const size_t hub_idx =
              (dir.transpose ? static_cast<size_t>(p_) * p_ : 0) +
              static_cast<size_t>(i) * p_ + j;
          if (hub_written_[hub_idx]) any_work = true;
        }
      }
      if (any_work) columns.push_back(j);
    }
  }
  if (columns.empty()) return Status::OK();

  ShardStream shards = MakeStream<std::shared_ptr<const SubShard>>();
  HubStream hubs = MakeStream<std::string>();
  ValueStream olds = MakeStream<std::vector<Value>>();
  for (uint32_t j : columns) {
    for (const DirectionPlan& dir : directions_) {
      for (uint32_t i = 0; i < q_; ++i) {
        if (!RowShouldProcess(i)) continue;
        if (!BlobNeeded(i, j, dir.transpose)) continue;
        PushOne(shards, i, j, dir.transpose);
      }
      for (uint32_t i = q_; i < p_; ++i) {
        const size_t hub_idx =
            (dir.transpose ? static_cast<size_t>(p_) * p_ : 0) +
            static_cast<size_t>(i) * p_ + j;
        if (!hub_written_[hub_idx]) continue;
        PushHub(hubs, dir.hubs, i, j);
      }
    }
    PushIntervalValues(olds, j);
  }

  std::vector<Value> acc_buf;
  for (uint32_t j : columns) {
    const uint32_t isize = m.interval_size(j);
    const VertexId dst_base = m.interval_begin(j);
    acc_buf.assign(isize, Program::Identity());

    for (const DirectionPlan& dir : directions_) {
      // SPU-like: resident source rows gather directly from memory. Rows
      // are processed one at a time (their chunks in parallel) because two
      // rows of the same column write overlapping destinations.
      for (uint32_t i = 0; i < q_; ++i) {
        if (!RowShouldProcess(i)) continue;
        if (!BlobNeeded(i, j, dir.transpose)) continue;
        NX_ASSIGN_OR_RETURN(std::shared_ptr<const SubShard> ss,
                            NextOne(shards));
        const VertexId src_base = m.interval_begin(i);
        const Value* src_vals = old_values_[i].data();
        Value* acc = acc_buf.data();
        const std::vector<uint32_t>* degrees = dir.degrees;
        WaitGroup wg;
        for (auto [gb, ge] : ComputeChunks(*ss)) {
          wg.Add(1);
          pool_->Submit([this, ss, src_vals, src_base, acc, dst_base, degrees,
                         gb, ge, &wg] {
            ProcessGroups(*ss, src_vals, src_base, acc, dst_base, *degrees,
                          gb, ge);
            wg.Done();
          });
        }
        wg.Wait();
      }
      // FromHub: fold the pre-accumulated (dst, partial) entries. Hubs are
      // processed in row order ("threads cannot be overlapped among hubs",
      // §III-D); entries within one hub are chunked in parallel since their
      // destinations are disjoint.
      for (uint32_t i = q_; i < p_; ++i) {
        const size_t hub_idx =
            (dir.transpose ? static_cast<size_t>(p_) * p_ : 0) +
            static_cast<size_t>(i) * p_ + j;
        if (!hub_written_[hub_idx]) continue;
        NX_ASSIGN_OR_RETURN(std::string hub_buf, hubs.Next());
        bytes_read_.fetch_add(hub_buf.size(), std::memory_order_relaxed);
        uint64_t count = 0;
        std::memcpy(&count, hub_buf.data(), 8);
        const char* entries = hub_buf.data() + 8;
        constexpr size_t kEntry = 4 + sizeof(Value);
        Value* acc = acc_buf.data();
        pool_->ParallelFor(
            0, count, 1024, [&](size_t kb, size_t ke) {
              for (size_t k = kb; k < ke; ++k) {
                VertexId dst;
                Value v;
                std::memcpy(&dst, entries + k * kEntry, 4);
                std::memcpy(&v, entries + k * kEntry + 4, sizeof(Value));
                Value& slot = acc[dst - dst_base];
                slot = Program::Accumulate(slot, v);
              }
            });
      }
    }

    // Apply + write back the destination interval.
    NX_ASSIGN_OR_RETURN(std::vector<Value> old_buf, olds.Next());
    std::atomic<uint8_t> changed{0};
    pool_->ParallelFor(0, isize, 4096, [&](size_t kb, size_t ke) {
      bool local_changed = false;
      for (size_t k = kb; k < ke; ++k) {
        const VertexId v = dst_base + static_cast<VertexId>(k);
        const Value next = program_.Apply(v, acc_buf[k], old_buf[k]);
        if (program_.Changed(old_buf[k], next)) {
          local_changed = true;
          if (selective_) next_frontier_[j].AddAtomic(v);
        }
        acc_buf[k] = next;
      }
      if (local_changed) changed.store(1, std::memory_order_relaxed);
    });
    NX_RETURN_NOT_OK(interval_store_->Write(writeback_.get(), j,
                                            1 - value_parity_[j],
                                            acc_buf.data()));
    bytes_written_.fetch_add(isize * sizeof(Value),
                             std::memory_order_relaxed);
    value_parity_[j] = 1 - value_parity_[j];
    if (changed.load(std::memory_order_relaxed)) {
      next_active_[j].store(1, std::memory_order_relaxed);
    }
  }
  io_wait_seconds_ +=
      shards.io_wait_seconds() + hubs.io_wait_seconds() + olds.io_wait_seconds();
  // Iteration barrier, with durability: the next Phase B (and the final
  // value collection) reads the interval segments written above, and the
  // interval store's ping-pong parity makes every iteration boundary a
  // consistent on-disk snapshot — so this is where the accumulated flush
  // debt (hubs included) is settled and flush failures surface.
  if (writeback_ != nullptr) NX_RETURN_NOT_OK(writeback_->Drain());
  return Status::OK();
}

// ---- Phase D: apply + ping-pong swap for resident columns ----------------

template <VertexProgram Program>
Status Engine<Program>::PhaseApplyResident() {
  const Manifest& m = store_->manifest();
  for (uint32_t j = 0; j < q_; ++j) {
    const VertexId base = m.interval_begin(j);
    const uint32_t isize = m.interval_size(j);
    std::vector<Value>& old_vals = old_values_[j];
    std::vector<Value>& acc = acc_values_[j];
    std::atomic<uint8_t> changed{0};
    pool_->ParallelFor(0, isize, 4096, [&](size_t kb, size_t ke) {
      bool local_changed = false;
      for (size_t k = kb; k < ke; ++k) {
        const VertexId v = base + static_cast<VertexId>(k);
        const Value next = program_.Apply(v, acc[k], old_vals[k]);
        if (program_.Changed(old_vals[k], next)) {
          local_changed = true;
          if (selective_) next_frontier_[j].AddAtomic(v);
        }
        acc[k] = next;
      }
      if (local_changed) changed.store(1, std::memory_order_relaxed);
    });
    // Ping-pong: the accumulator buffer becomes the new value array and the
    // old array is recycled as the next iteration's accumulator.
    std::swap(old_values_[j], acc_values_[j]);
    if (changed.load(std::memory_order_relaxed)) {
      next_active_[j].store(1, std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

template <VertexProgram Program>
Status Engine<Program>::RunIteration(int iter) {
  (void)iter;
  for (uint32_t i = 0; i < p_; ++i) {
    next_active_[i].store(0, std::memory_order_relaxed);
  }
  // The frontier consumed this iteration (frontier_) is read-only until the
  // end-of-iteration swap below, so a downgrade re-run of the iteration
  // replans against the same filters; only next_frontier_ is rebuilt.
  if (selective_) {
    for (uint32_t i = 0; i < p_; ++i) next_frontier_[i].ResetToEmpty();
  }
  // Reset resident accumulators (InitializeIteration).
  for (uint32_t j = 0; j < q_; ++j) {
    std::fill(acc_values_[j].begin(), acc_values_[j].end(),
              Program::Identity());
  }
  Timer phase_timer;
  NX_RETURN_NOT_OK(PhaseResidentRows());
  phase_seconds_[0] += phase_timer.ElapsedSeconds();
  phase_timer.Reset();
  NX_RETURN_NOT_OK(PhaseDiskRows());
  phase_seconds_[1] += phase_timer.ElapsedSeconds();
  phase_timer.Reset();
  NX_RETURN_NOT_OK(PhaseDiskColumns());
  phase_seconds_[2] += phase_timer.ElapsedSeconds();
  phase_timer.Reset();
  NX_RETURN_NOT_OK(PhaseApplyResident());
  phase_seconds_[3] += phase_timer.ElapsedSeconds();
  for (uint32_t i = 0; i < p_; ++i) {
    active_[i] = next_active_[i].load(std::memory_order_relaxed);
  }
  // The vertices that changed this iteration become the next iteration's
  // frontier — the per-blob source summaries are intersected against these
  // filters when the next round is planned.
  if (selective_) {
    for (uint32_t i = 0; i < p_; ++i) {
      std::swap(frontier_[i], next_frontier_[i]);
    }
  }
  // The checkpoint due at this iteration boundary is committed by the run
  // loop, NOT here: a checkpoint failure after Phase D's in-memory swap
  // must be retried on its own (re-running the whole iteration would
  // double-apply), while a phase failure restarts the iteration.
  return Status::OK();
}

template <VertexProgram Program>
Result<RunStats> Engine<Program>::Run() {
  RunStats stats;
  Timer total;
  NX_RETURN_NOT_OK(Prepare());
  // Every read/write of the run proper (InitValues onwards) is served by
  // the store's effective Env — scratch stores and hubs are opened against
  // it too — so a snapshot delta of its transfer counters measures the
  // bytes that actually crossed the Env boundary, independent of the
  // engine's own accounting. A mid-run downgrade swaps the run onto
  // Env::Default(); its traffic is added in the same way below.
  Env* run_env = store_->env();
  IoStats::Snapshot env_start = run_env->stats()->snapshot();
  uint64_t env_read_acc = 0;
  uint64_t env_written_acc = 0;
  // Folds the Env transfer delta accumulated so far and re-bases the
  // snapshot; called before a downgrade swaps Envs and at reporting time.
  auto settle_env_stats = [&] {
    const IoStats::Snapshot now = run_env->stats()->snapshot();
    env_read_acc += now.bytes_read - env_start.bytes_read;
    env_written_acc += now.bytes_written - env_start.bytes_written;
    env_start = now;
  };
  // Runs `step` once; on a downgradable backend failure, swaps to the
  // buffered backend and runs `step` a second time (`restore` first puts
  // the engine state back to the step's entry snapshot). Any other
  // failure — including a failure of the re-run, now on the buffered
  // floor — surfaces unchanged.
  auto with_downgrade = [&](auto&& step, auto&& restore) -> Status {
    Status s = step();
    if (!ShouldDowngrade(s)) return s;
    settle_env_stats();
    NX_RETURN_NOT_OK(DowngradeToBuffered(s));
    run_env = store_->env();
    env_start = run_env->stats()->snapshot();
    restore();
    return step();
  };

  Status init = with_downgrade([&] { return InitValues(); }, [] {});
  NX_RETURN_NOT_OK(init);
  stats.preprocess_seconds = total.ElapsedSeconds();
  stats.strategy = decision_.name;
  stats.resident_intervals = q_;

  Timer loop;
  int iter = resume_iter_;
  uint64_t last_subshards_processed = 0;
  uint64_t last_subshards_skipped = 0;
  for (;;) {
    if (options_.max_iterations > 0 && iter >= options_.max_iterations) break;
    // Iteration boundary is the engine's cancellation checkpoint: the
    // ping-pong state on disk is consistent here, so a cancelled run ends
    // exactly as if max_iterations had been `iter` (and, with periodic
    // checkpoints enabled, stays resumable from the last commit).
    if (options_.cancel != nullptr && options_.cancel->cancelled()) {
      return options_.cancel->ToStatus();
    }
    bool any_active = false;
    for (uint32_t i = 0; i < p_ && !any_active; ++i) {
      any_active = active_[i] != 0;
    }
    if (!any_active) break;
    Timer iter_timer;
    // Snapshot the restartable iteration state: phases A-C only read
    // old_values_ and write the opposite value parity, so restoring these
    // two vectors makes the iteration re-runnable (see RunIteration).
    const std::vector<uint8_t> active_snapshot = active_;
    const std::vector<int> parity_snapshot = value_parity_;
    NX_RETURN_NOT_OK(with_downgrade([&] { return RunIteration(iter); },
                                    [&] {
                                      active_ = active_snapshot;
                                      value_parity_ = parity_snapshot;
                                    }));
    // Iteration boundary: the ping-pong snapshot on disk is consistent and
    // the activity bitmap final — commit a checkpoint if one is due. Its
    // parity mutations are restored on a downgrade re-run so the commit
    // replays identically (all its writes are idempotent).
    const std::vector<int> ckpt_parity_snapshot = value_parity_;
    const int snap_parity_snapshot = ckpt_snapshot_parity_;
    NX_RETURN_NOT_OK(
        with_downgrade([&] { return MaybeCheckpoint(iter + 1); },
                       [&] {
                         value_parity_ = ckpt_parity_snapshot;
                         ckpt_snapshot_parity_ = snap_parity_snapshot;
                       }));
    stats.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
    // Per-iteration selective-scheduling deltas: on a downgrade re-run the
    // iteration's planning verdicts are counted twice, matching how
    // bytes_read_ already accounts re-run traffic.
    const uint64_t proc = subshards_processed_.load(std::memory_order_relaxed);
    const uint64_t skip = subshards_skipped_.load(std::memory_order_relaxed);
    stats.iteration_subshards_processed.push_back(proc -
                                                  last_subshards_processed);
    stats.iteration_subshards_skipped.push_back(skip - last_subshards_skipped);
    last_subshards_processed = proc;
    last_subshards_skipped = skip;
    ++iter;
  }
  stats.iterations = iter;
  stats.seconds = loop.ElapsedSeconds();
  stats.edges_traversed = edges_traversed_.load(std::memory_order_relaxed);
  stats.bytes_read =
      bytes_read_.load(std::memory_order_relaxed) +
      cache_->bytes_loaded_from_disk();
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  settle_env_stats();
  stats.env_bytes_read = env_read_acc;
  stats.env_bytes_written = env_written_acc;
  stats.phase_a_seconds = phase_seconds_[0];
  stats.phase_b_seconds = phase_seconds_[1];
  stats.phase_c_seconds = phase_seconds_[2];
  stats.phase_d_seconds = phase_seconds_[3];
  stats.io_wait_seconds = io_wait_seconds_;
  stats.write_wait_seconds =
      writeback_ != nullptr ? writeback_->write_wait_seconds() : 0;
  stats.prefetch_depth = static_cast<uint32_t>(prefetch_depth_);
  stats.writeback_buffer_bytes = decision_.writeback_buffer_bytes;
  stats.io_threads = io_pool_ != nullptr ? io_pool_->num_threads() : 0;
  stats.io_backend = IoBackendName(effective_backend_);
  stats.resumed_from_iteration = resume_iter_;
  stats.checkpoints_written = checkpoints_written_;
  stats.checkpoint_seconds = checkpoint_seconds_;
  stats.subshards_processed =
      subshards_processed_.load(std::memory_order_relaxed);
  stats.subshards_skipped = subshards_skipped_.load(std::memory_order_relaxed);
  stats.summary_bytes = store_->manifest().TotalSummaryBytes();
  stats.model_bytes_per_iteration = decision_.model_bytes_per_iteration;

  NX_RETURN_NOT_OK(with_downgrade([&] { return CollectFinalValues(); }, [] {}));

  // Resilience tallies last: the collection above may retry too.
  stats.io_retries = counters_.io_retries.load(std::memory_order_relaxed);
  stats.retry_wait_seconds =
      static_cast<double>(
          counters_.retry_wait_micros.load(std::memory_order_relaxed)) /
      1e6;
  stats.checksum_rereads =
      counters_.checksum_rereads.load(std::memory_order_relaxed) +
      store_->checksum_rereads();
  stats.backend_downgrades =
      counters_.backend_downgrades.load(std::memory_order_relaxed);
  stats.dropped_write_errors =
      counters_.dropped_write_errors.load(std::memory_order_relaxed);
  stats.io_backend = IoBackendName(effective_backend_);
  stats.decode_path = DecodePathName(store_->decode_path());
  stats.bulk_decode_calls =
      folded_decode_calls_ + store_->bulk_decode_calls() - decode_calls_base_;
  stats.decode_seconds =
      static_cast<double>(folded_decode_nanos_ + store_->decode_nanos() -
                          decode_nanos_base_) /
      1e9;
  return stats;
}

template <VertexProgram Program>
Status Engine<Program>::CollectFinalValues() {
  final_values_.resize(store_->num_vertices());
  const Manifest& m = store_->manifest();
  std::vector<Value> buf;
  for (uint32_t i = 0; i < p_; ++i) {
    const VertexId base = m.interval_begin(i);
    const uint32_t isize = m.interval_size(i);
    if (i < q_) {
      std::copy(old_values_[i].begin(), old_values_[i].end(),
                final_values_.begin() + base);
    } else {
      buf.resize(isize);
      NX_RETURN_NOT_OK(RunWithRetry(options_.retry, &counters_, [&] {
        return interval_store_->Read(i, value_parity_[i], buf.data());
      }));
      std::copy(buf.begin(), buf.end(), final_values_.begin() + base);
    }
  }
  return Status::OK();
}

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_ENGINE_H_
