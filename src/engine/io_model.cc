#include "src/engine/io_model.h"

#include <algorithm>
#include <cmath>

#include "src/prep/manifest.h"

namespace nxgraph {

IoModelParams MakeIoModelParams(const Manifest& manifest, uint32_t value_bytes,
                                uint64_t memory_budget_bytes) {
  IoModelParams p;
  p.n = static_cast<double>(manifest.num_vertices);
  p.m = static_cast<double>(manifest.num_edges);
  p.Ba = value_bytes;
  p.Bv = sizeof(uint32_t);
  p.P = manifest.num_intervals;
  p.BM = static_cast<double>(memory_budget_bytes);
  uint64_t blob_bytes = 0;
  uint64_t total_dsts = 0;
  for (const auto& meta : manifest.subshards) {
    blob_bytes += meta.size;
    total_dsts += meta.num_dsts;
  }
  if (manifest.num_edges > 0) {
    p.Be = static_cast<double>(blob_bytes) / p.m;
  }
  if (total_dsts > 0) {
    p.d = p.m / static_cast<double>(total_dsts);
  }
  return p;
}

IoCost SpuIoCost(const IoModelParams& p) {
  IoCost c;
  // me: edges an iteration actually streams (active_fraction == 1
  // reproduces Table II exactly).
  const double me = p.m * p.active_fraction;
  c.read_bytes = std::max(0.0, me * p.Be + 2 * p.n * p.Ba - p.BM);
  // After the initial load, SPU never writes vertex state to disk.
  c.write_bytes = 0;
  return c;
}

IoCost DpuIoCost(const IoModelParams& p) {
  IoCost c;
  const double me = p.m * p.active_fraction;
  const double hub_bytes = me * (p.Ba + p.Bv) / p.d;
  c.read_bytes = me * p.Be + hub_bytes + p.n * p.Ba;
  c.write_bytes = hub_bytes + p.n * p.Ba;
  return c;
}

uint32_t MpuResidentIntervals(const IoModelParams& p) {
  if (p.n <= 0 || p.Ba <= 0) return 0;
  const double frac = p.BM / (2.0 * p.n * p.Ba);
  const double q = std::floor(frac * p.P);
  return static_cast<uint32_t>(std::clamp(q, 0.0, p.P));
}

IoCost MpuIoCost(const IoModelParams& p) {
  // Table II, MPU row, with the in-memory fraction BM/(2 n Ba) capped at 1.
  const double frac = std::min(1.0, p.BM / (2.0 * p.n * p.Ba));
  const double disk_frac = 1.0 - frac;  // (P - Q) / P
  IoCost c;
  const double me = p.m * p.active_fraction;
  const double hub_bytes =
      me * disk_frac * disk_frac * (p.Ba + p.Bv) / p.d;
  c.read_bytes = me * p.Be + hub_bytes + disk_frac * p.n * p.Ba;
  c.write_bytes = hub_bytes + disk_frac * p.n * p.Ba;
  return c;
}

IoCost TurboGraphLikeIoCost(const IoModelParams& p) {
  IoCost c;
  c.read_bytes = p.m * p.Be + 2.0 * (p.n * p.Ba) * (p.n * p.Ba) / p.BM +
                 p.n * p.Ba;
  c.write_bytes = p.n * p.Ba;
  return c;
}

double MpuToTurboGraphRatio(const IoModelParams& p) {
  const double turbo = TurboGraphLikeIoCost(p).total();
  if (turbo <= 0) return 0;
  return MpuIoCost(p).total() / turbo;
}

}  // namespace nxgraph
