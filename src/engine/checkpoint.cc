#include "src/engine/checkpoint.h"

#include "src/util/crc32c.h"
#include "src/util/serialize.h"

namespace nxgraph {

std::string CheckpointState::Encode() const {
  std::string out;
  EncodeFixed<uint32_t>(&out, kCheckpointMagic);
  EncodeFixed<uint32_t>(&out, kCheckpointVersion);
  EncodeFixed<uint64_t>(&out, graph_fingerprint);
  EncodeFixed<uint64_t>(&out, program_id);
  EncodeFixed<uint64_t>(&out, program_state);
  EncodeFixed<uint8_t>(&out, direction);
  EncodeFixed<uint32_t>(&out, value_bytes);
  EncodeFixed<uint32_t>(&out, num_intervals);
  EncodeFixed<uint32_t>(&out, resident_intervals);
  EncodeFixed<uint32_t>(&out, iteration);
  EncodeFixed<uint8_t>(&out, has_snapshot);
  EncodeFixed<uint8_t>(&out, snapshot_parity);
  out.append(reinterpret_cast<const char*>(value_parity.data()),
             value_parity.size());
  out.append(reinterpret_cast<const char*>(active.data()), active.size());
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return out;
}

Result<CheckpointState> CheckpointState::Decode(const std::string& data) {
  if (data.size() < 4) return Status::Corruption("checkpoint too short");
  const uint32_t stored_crc =
      DecodeFixed<uint32_t>(data.data() + data.size() - 4);
  if (stored_crc != crc32c::Value(data.data(), data.size() - 4)) {
    return Status::Corruption("checkpoint checksum mismatch");
  }
  SliceReader r(data.data(), data.size() - 4);
  CheckpointState s;
  uint32_t magic = 0, version = 0;
  if (!r.Read(&magic) || !r.Read(&version) || !r.Read(&s.graph_fingerprint) ||
      !r.Read(&s.program_id) || !r.Read(&s.program_state) ||
      !r.Read(&s.direction) ||
      !r.Read(&s.value_bytes) || !r.Read(&s.num_intervals) ||
      !r.Read(&s.resident_intervals) || !r.Read(&s.iteration) ||
      !r.Read(&s.has_snapshot) || !r.Read(&s.snapshot_parity)) {
    return Status::Corruption("checkpoint truncated");
  }
  if (magic != kCheckpointMagic) {
    return Status::Corruption("bad checkpoint magic");
  }
  if (version != kCheckpointVersion) {
    return Status::NotSupported("checkpoint version " +
                                std::to_string(version));
  }
  if (r.remaining() != 2 * static_cast<size_t>(s.num_intervals)) {
    return Status::Corruption("checkpoint vector size mismatch");
  }
  s.value_parity.resize(s.num_intervals);
  s.active.resize(s.num_intervals);
  if (!r.ReadBytes(s.value_parity.data(), s.num_intervals) ||
      !r.ReadBytes(s.active.data(), s.num_intervals)) {
    return Status::Corruption("checkpoint truncated");
  }
  for (uint8_t parity : s.value_parity) {
    if (parity > 1) return Status::Corruption("checkpoint parity out of range");
  }
  return s;
}

CheckpointManager::CheckpointManager(Env* env, std::string scratch_dir)
    : env_(env),
      path_(std::move(scratch_dir) + "/" + kCheckpointFileName) {}

Status CheckpointManager::Write(const CheckpointState& state) {
  return WriteStringToFileDurable(env_, path_, state.Encode());
}

Result<CheckpointState> CheckpointManager::Load() const {
  if (!env_->FileExists(path_)) return Status::NotFound(path_);
  std::string data;
  NX_RETURN_NOT_OK(ReadFileToString(env_, path_, &data));
  if (data.empty()) return Status::NotFound(path_ + " (tombstone)");
  return CheckpointState::Decode(data);
}

Status CheckpointManager::Remove() {
  if (!env_->FileExists(path_)) return Status::OK();
  return WriteStringToFileDurable(env_, path_, "");
}

}  // namespace nxgraph
