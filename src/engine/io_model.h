// Analytic I/O cost model: the closed forms of Table II and the MPU vs
// TurboGraph-like ratio of Fig. 6 (paper §III-B, §III-C).
#ifndef NXGRAPH_ENGINE_IO_MODEL_H_
#define NXGRAPH_ENGINE_IO_MODEL_H_

#include <cstdint>

namespace nxgraph {

struct Manifest;

/// \brief Inputs to the I/O model, in the paper's notation.
struct IoModelParams {
  double n = 0;    ///< number of vertices
  double m = 0;    ///< number of edges
  double Ba = 8;   ///< bytes per vertex attribute
  double Bv = 4;   ///< bytes per vertex id
  double Be = 4;   ///< bytes per (compressed) edge
  double BM = 0;   ///< memory budget in bytes
  double d = 15;   ///< average in-degree of sub-shard destinations
  double P = 16;   ///< number of intervals

  /// Fraction of edge traffic an iteration actually touches. 1.0 models a
  /// fully-active iteration (the paper's Table II); selective scheduling
  /// (per-blob source summaries) makes tail iterations of frontier
  /// algorithms read only the blobs whose sources intersect the frontier,
  /// so sweeping this towards 0 models the late-iteration regime. Scales
  /// the m*Be edge terms and the hub terms — value-segment terms (n*Ba)
  /// stay, since interval reads/writes are skipped per column, not per
  /// edge. The TurboGraph-like baseline ignores it (no selective path).
  double active_fraction = 1.0;
};

/// Model parameters measured from a real prepared store instead of
/// assumed: Be is the ACTUAL encoded bytes per edge — total forward-blob
/// bytes from the manifest's segment table divided by m — so a compressed
/// sub-shard format (NXS2) flows straight into every m*Be term, and d is
/// the measured average in-degree of sub-shard destinations
/// (m / sum(num_dsts)). `value_bytes` sets Ba; `memory_budget_bytes` sets
/// BM (0 = unlimited stays 0 — callers sweeping budgets overwrite it).
IoModelParams MakeIoModelParams(const Manifest& manifest, uint32_t value_bytes,
                                uint64_t memory_budget_bytes);

/// \brief Bread/Bwrite per iteration for one strategy.
struct IoCost {
  double read_bytes = 0;
  double write_bytes = 0;
  double total() const { return read_bytes + write_bytes; }
};

/// SPU: Bread = max(0, m*Be + 2n*Ba - BM), Bwrite = 0 (Table II).
IoCost SpuIoCost(const IoModelParams& p);

/// DPU: Bread = m*Be + m*(Ba+Bv)/d + n*Ba, Bwrite = m*(Ba+Bv)/d + n*Ba.
IoCost DpuIoCost(const IoModelParams& p);

/// MPU with the best feasible Q for the given budget (Table II row 4).
IoCost MpuIoCost(const IoModelParams& p);

/// TurboGraph-like: Bread = m*Be + 2(n*Ba)^2/BM + n*Ba, Bwrite = n*Ba
/// (paper §III-C, with P chosen as 2nBa/BM).
IoCost TurboGraphLikeIoCost(const IoModelParams& p);

/// Number of memory-resident intervals Q = floor(BM / (2 n Ba) * P),
/// clamped to [0, P] (paper §III-B3).
uint32_t MpuResidentIntervals(const IoModelParams& p);

/// Fig. 6 series: ratio of MPU total I/O to TurboGraph-like total I/O.
double MpuToTurboGraphRatio(const IoModelParams& p);

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_IO_MODEL_H_
