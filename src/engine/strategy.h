// Update-strategy selection from the memory budget (paper §III-B: "NXgraph
// can adaptively choose the fastest strategy ... according to the graph size
// and the available memory resources").
#ifndef NXGRAPH_ENGINE_STRATEGY_H_
#define NXGRAPH_ENGINE_STRATEGY_H_

#include <cstdint>

#include "src/engine/options.h"
#include "src/prep/manifest.h"

namespace nxgraph {

/// \brief Concrete plan chosen for a run.
struct StrategyDecision {
  UpdateStrategy strategy = UpdateStrategy::kSinglePhase;
  /// Number of memory-resident (ping-pong) intervals, Q. Q == P for SPU,
  /// Q == 0 for DPU.
  uint32_t resident_intervals = 0;
  /// Leftover budget for caching decoded sub-shards in memory.
  uint64_t subshard_cache_budget = 0;
  /// Human-readable name ("SPU", "DPU", "MPU(Q=3/16)").
  std::string name;
};

/// Picks the strategy per the paper's rules:
///  - vertex state costs 2 * n * value_bytes (ping-pong copies);
///  - fits in budget (or budget unlimited) => SPU, leftover caches shards;
///  - otherwise Q = floor(BM / (2 n Ba) * P); Q == 0 => DPU, else MPU.
/// A forced strategy in `options.strategy` is honored; the budget then only
/// sizes Q and the cache.
StrategyDecision ChooseStrategy(const Manifest& manifest, uint32_t value_bytes,
                                uint64_t fixed_overhead_bytes,
                                const RunOptions& options);

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_STRATEGY_H_
