// Update-strategy selection from the memory budget (paper §III-B: "NXgraph
// can adaptively choose the fastest strategy ... according to the graph size
// and the available memory resources").
#ifndef NXGRAPH_ENGINE_STRATEGY_H_
#define NXGRAPH_ENGINE_STRATEGY_H_

#include <cstdint>

#include "src/engine/options.h"
#include "src/prep/manifest.h"

namespace nxgraph {

/// \brief Concrete plan chosen for a run.
struct StrategyDecision {
  UpdateStrategy strategy = UpdateStrategy::kSinglePhase;
  /// Number of memory-resident (ping-pong) intervals, Q. Q == P for SPU,
  /// Q == 0 for DPU.
  uint32_t resident_intervals = 0;
  /// Leftover budget for caching decoded sub-shards in memory (after the
  /// prefetch window has been funded).
  uint64_t subshard_cache_budget = 0;
  /// Effective prefetch window: the requested RunOptions::prefetch_depth
  /// clamped to what the budget can fund (see prefetch_buffer_bytes).
  uint32_t prefetch_depth = 0;
  /// Transient bytes the prefetch window may hold in flight:
  /// prefetch_depth * PrefetchSlotBytes(). The first window slot rides in
  /// the synchronous loader's pre-existing working-set allowance; every
  /// deeper slot is carved out of subshard_cache_budget — but only from
  /// the surplus beyond what the cache needs to pin the whole graph, so
  /// funding the window can neither exceed the paper's memory model nor
  /// demote a fully-cached run into stream mode.
  uint64_t prefetch_buffer_bytes = 0;
  /// Effective write-behind budget: RunOptions::writeback_buffer_bytes
  /// clamped to what the cache leftover can fund after the prefetch window
  /// is paid for. Funding follows the same rule as the read window: when
  /// the leftover can pin the whole decoded graph, only the surplus beyond
  /// that pin is spent — funding write buffers never demotes a fully
  /// cached run into stream mode. 0 when the run has no out-of-core
  /// writes (Q == P) or write-behind is disabled.
  uint64_t writeback_buffer_bytes = 0;
  /// Env backend the run should use: the requested RunOptions::io_backend
  /// downgraded to kBuffered when the platform cannot serve it (kUring
  /// without kernel/build support — probed here so the decision is made in
  /// one place and reported up front). The engine downgrades further at
  /// setup when the store's Env is not the real filesystem; see
  /// RunOptions::io_backend.
  IoBackend io_backend = IoBackend::kBuffered;
  /// io_model prediction of a FULLY-ACTIVE iteration's read bytes under the
  /// chosen strategy (IoModelParams::active_fraction == 1) — surfaced in
  /// RunStats so measured per-iteration bytes can be compared against the
  /// model; with selective scheduling the measured tail iterations should
  /// undercut this by roughly the frontier's activity fraction.
  uint64_t model_bytes_per_iteration = 0;
  /// Human-readable name ("SPU", "DPU", "MPU(Q=3/16)").
  std::string name;
};

/// Picks the strategy per the paper's rules:
///  - vertex state costs 2 * n * value_bytes (ping-pong copies);
///  - fits in budget (or budget unlimited) => SPU, leftover caches shards;
///  - otherwise Q = floor(BM / (2 n Ba) * P); Q == 0 => DPU, else MPU.
/// A forced strategy in `options.strategy` is honored; the budget then only
/// sizes Q and the cache. Finally the prefetch window (options.prefetch_depth)
/// is funded from the cache leftover as described on StrategyDecision.
StrategyDecision ChooseStrategy(const Manifest& manifest, uint32_t value_bytes,
                                uint64_t fixed_overhead_bytes,
                                const RunOptions& options);

/// Peak transient bytes one prefetch window slot can hold: a sub-shard
/// row's raw and decoded form coexisting during the decode stage, plus the
/// interval value segment the phase's side stream keeps in flight at the
/// same position.
uint64_t PrefetchSlotBytes(const Manifest& manifest, uint32_t value_bytes,
                           EdgeDirection direction);

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_STRATEGY_H_
