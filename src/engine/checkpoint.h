// Checkpoint/restart records for the engine's iteration-boundary snapshots.
//
// The interval store's ping-pong parity plus the write-behind queue's
// Drain(sync=true) barrier make every iteration boundary a consistent
// on-disk snapshot; what was missing is a durable record of *which*
// snapshot is current. A CheckpointState captures exactly that: the
// iteration counter, the per-interval parity vector, the per-interval
// activity bitmap (the engine's convergence state), and — when the
// checkpoint interval is longer than one iteration — which parity of the
// side snapshot store holds the non-resident values.
//
// Commit protocol (see src/io/README.md for the full walk-through):
//   1. value data lands and is made durable (writeback Drain(sync=true),
//      or IntervalStore::Sync when no queue exists),
//   2. the record is written atomically and durably
//      (WriteStringToFileDurable: write-temp + Sync + rename).
// A crash at any point leaves either the previous record (whose data the
// next iterations never overwrite — the parity argument in the engine) or
// the new one, never a torn mixture; a corrupted or mismatched record is
// detected by CRC/fingerprint and demoted to a fresh iteration-0 start.
#ifndef NXGRAPH_ENGINE_CHECKPOINT_H_
#define NXGRAPH_ENGINE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/util/result.h"

namespace nxgraph {

inline constexpr char kCheckpointFileName[] = "checkpoint.nxc";
inline constexpr uint32_t kCheckpointMagic = 0x3143584Eu;  // "NXC1"
inline constexpr uint32_t kCheckpointVersion = 1;

/// \brief Everything needed to continue a run at an iteration boundary.
struct CheckpointState {
  /// Manifest::Fingerprint() of the store the run executed against.
  uint64_t graph_fingerprint = 0;
  /// Identity of the vertex program (hash of its type name): BFS depths
  /// must never seed a WCC run just because both use 4-byte values.
  uint64_t program_id = 0;
  /// Parameter fingerprint of the program instance (Engine picks it up
  /// from an optional `uint64_t StateFingerprint() const` on the program):
  /// an SSSP run rooted at 7 must not resume an SSSP checkpoint rooted
  /// at 0. 0 for programs without the hook.
  uint64_t program_state = 0;
  /// EdgeDirection the run processed; a kBoth WCC checkpoint must not
  /// seed a kForward rerun.
  uint8_t direction = 0;
  /// sizeof(Program::Value) — a checkpoint from a different value type
  /// must not be resumed.
  uint32_t value_bytes = 0;
  uint32_t num_intervals = 0;       ///< P
  uint32_t resident_intervals = 0;  ///< Q the run was planned with
  /// Completed iterations; the resumed run continues at this index.
  uint32_t iteration = 0;
  /// True when non-resident values live in the side snapshot store
  /// (checkpoint_interval > 1) rather than the live interval store.
  uint8_t has_snapshot = 0;
  /// Parity of the snapshot store segments this checkpoint wrote.
  uint8_t snapshot_parity = 0;
  /// Per-interval parity of the latest durable segment in the live
  /// interval store (for resident intervals: the segment the checkpoint
  /// itself wrote).
  std::vector<uint8_t> value_parity;
  /// Per-interval activity bitmap entering iteration `iteration`.
  std::vector<uint8_t> active;

  /// Serializes to the CRC-guarded on-disk representation.
  std::string Encode() const;

  /// Parses and validates a record blob (magic, version, CRC, sizes).
  static Result<CheckpointState> Decode(const std::string& data);
};

/// \brief Owns the checkpoint record file of one run directory.
class CheckpointManager {
 public:
  CheckpointManager(Env* env, std::string scratch_dir);

  const std::string& path() const { return path_; }

  /// Commits `state` atomically and durably (write-temp + fsync + rename).
  /// Must only be called after the data the record points at is durable.
  Status Write(const CheckpointState& state);

  /// Loads and validates the current record. NotFound when no checkpoint
  /// exists (or only a removal tombstone does); Corruption when the
  /// record fails its CRC or shape checks.
  Result<CheckpointState> Load() const;

  /// Invalidates a stale record (fresh starts call this BEFORE truncating
  /// the value stores, so a crash between the two steps can never leave a
  /// record pointing at truncated data). Implemented as an atomic durable
  /// overwrite with an empty tombstone rather than an unlink: a plain
  /// unlink's durability would need a directory fsync in Env::RemoveFile,
  /// taxing every hot-path removal for this one rare call.
  Status Remove();

 private:
  Env* env_;
  std::string path_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_CHECKPOINT_H_
