// Engine run options and statistics.
#ifndef NXGRAPH_ENGINE_OPTIONS_H_
#define NXGRAPH_ENGINE_OPTIONS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/io/io_backend.h"
#include "src/prep/source_summary.h"
#include "src/util/retry.h"
#include "src/util/simd_varint.h"

namespace nxgraph {

/// Which update strategy to run (paper §III-B).
enum class UpdateStrategy {
  kAuto,         ///< pick from the memory budget (the paper's default, MPU
                 ///< auto-degrades to SPU/DPU at the extremes)
  kSinglePhase,  ///< SPU: all intervals ping-pong in memory
  kDoublePhase,  ///< DPU: intervals on disk, hub intermediates
  kMixedPhase,   ///< MPU: Q resident intervals, hubs for the rest
};

/// Scheduler synchronization mechanism (paper §IV intro: callback signal
/// vs destination-interval locks; both are implemented and benchmarked).
enum class SyncMode {
  kCallback,  ///< per-column completion counters pipeline rows
  kLock,      ///< per-(column, destination-chunk) spinlocks, any order
};

/// Which edge direction(s) an iteration processes.
enum class EdgeDirection {
  kForward,    ///< stored direction (updates flow source -> destination)
  kTranspose,  ///< reversed edges (requires a store built with transpose)
  kBoth,       ///< both directions in the same iteration (e.g. WCC)
};

/// \brief Options controlling one engine run.
struct RunOptions {
  UpdateStrategy strategy = UpdateStrategy::kAuto;
  SyncMode sync_mode = SyncMode::kCallback;
  EdgeDirection direction = EdgeDirection::kForward;

  /// Memory budget in bytes for vertex state plus sub-shard cache. 0 means
  /// "unlimited" (everything resident; SPU).
  uint64_t memory_budget_bytes = 0;

  /// Worker threads in addition to the calling thread. 0 = single-threaded.
  int num_threads = 3;

  /// Hard iteration cap; <= 0 means run until all intervals are inactive.
  int max_iterations = 0;

  /// Target edges per destination-chunk task (the fine-grained parallelism
  /// grain; paper §III-D: "several thousands of edges"). 0 = 4096.
  uint32_t chunk_width = 0;

  /// Requested read-ahead window for the out-of-core phases: how many loads
  /// (sub-shard rows, interval value segments, hub payloads) may be in
  /// flight ahead of the consumer. 0 disables prefetching entirely (every
  /// read is synchronous — the pre-pipeline behavior and the baseline of
  /// bench_prefetch); 1 is double buffering, 2 triple buffering, and so on.
  ///
  /// The effective depth is budget-arbitrated by ChooseStrategy: the first
  /// window slot rides in the same transient working-set allowance the
  /// synchronous loader always used, and each deeper slot must be funded
  /// from the sub-shard cache leftover (see
  /// StrategyDecision::prefetch_buffer_bytes), so prefetch buffers never
  /// silently exceed the paper's memory model. Prefetching is on by default.
  int prefetch_depth = 2;

  /// Dedicated I/O threads serving prefetch reads (in addition to
  /// num_threads compute workers). Blob decode is offloaded to the compute
  /// pool, so these threads do raw reads only. Clamped to >= 1 whenever the
  /// effective prefetch depth is > 0; ignored when prefetching is off.
  /// Write-behind drains on its own pool — see writeback_threads.
  int io_threads = 1;

  /// Requested write-behind buffer for the out-of-core writes (Phase B hub
  /// payloads, interval value write-backs): producers serialize payloads on
  /// the compute pool and enqueue owned buffers, dedicated I/O threads
  /// drain them as positional writes, and every phase/iteration boundary
  /// ends with a Drain() barrier — so results are bit-identical to the
  /// synchronous path. 0 disables write-behind entirely (each write blocks
  /// its compute task — the pre-writeback behavior and the baseline of
  /// bench_writeback).
  ///
  /// Like the prefetch window, the effective budget is arbitrated by
  /// ChooseStrategy out of the sub-shard cache leftover (see
  /// StrategyDecision::writeback_buffer_bytes), so write buffers never
  /// silently exceed the paper's memory model; a leftover too small to
  /// hold even one payload falls back to synchronous mode rather than
  /// taking a degenerate window. Write-behind is on by default.
  uint64_t writeback_buffer_bytes = 8ull << 20;

  /// Dedicated threads draining the write-behind queue. Separate from
  /// io_threads so throttled/slow writes can never starve the prefetch
  /// read window; 1 keeps the device stream sequential (the queue already
  /// issues writes in elevator order). Clamped to >= 1 whenever the
  /// effective writeback budget is > 0.
  int writeback_threads = 1;

  /// Which Env backend serves this run's disk I/O (see docs/io-stack.md):
  ///   buffered — pread/pwrite through the kernel page cache (the default);
  ///   direct   — O_DIRECT with user-space aligned buffering, so the
  ///              prefetch/write-behind windows face the device instead of
  ///              the page cache (per-file buffered fallback where the
  ///              filesystem refuses O_DIRECT);
  ///   uring    — io_uring submission/completion rings; in-flight reads
  ///              and writes execute asynchronously in the kernel (falls
  ///              back to buffered when the kernel/build lacks io_uring).
  ///
  /// The request is resolved by ChooseStrategy and may be downgraded: uring
  /// without kernel support resolves to buffered, and a store that does not
  /// live on the real filesystem (MemEnv, ThrottledEnv, FaultInjectionEnv)
  /// always runs buffered through its own Env — backends are real-device
  /// optimizations, and modelled/hermetic Envs already define their own I/O
  /// semantics. RunStats::io_backend reports what actually served the run.
  /// Results are bit-identical across backends; only timing changes.
  ///
  /// Defaults to buffered, overridable via the NXGRAPH_IO_BACKEND
  /// environment variable so the whole test/bench suite can be swept
  /// without code changes (CI's io-backends job).
  IoBackend io_backend = DefaultIoBackend();

  /// Iteration-boundary checkpointing: every `checkpoint_interval`-th
  /// completed iteration, the engine persists a small CRC-guarded record
  /// (iteration counter, per-interval parity vector, activity bitmap) plus
  /// the resident intervals' values, committed atomically (write-temp +
  /// fsync + rename) after a durability drain — so a killed run restarts
  /// from the last checkpointed iteration instead of iteration 0. A run
  /// started with the same store, strategy and value type automatically
  /// resumes from a valid checkpoint found in the scratch directory;
  /// corrupted or mismatched checkpoints fall back to a fresh start with a
  /// warning. 0 disables checkpointing (and resuming) entirely.
  ///
  /// At interval 1 the checkpoint is nearly free: the interval store's
  /// ping-pong parity already makes every iteration boundary a consistent
  /// on-disk snapshot, so only the record and the resident values are
  /// written. Intervals > 1 additionally copy the non-resident segments
  /// into a side snapshot store at each checkpoint (the live segments are
  /// overwritten by the iterations in between), trading bigger checkpoint
  /// writes for fewer of them.
  int checkpoint_interval = 0;

  /// Directory for engine scratch files (interval store, hubs, checkpoint
  /// record). Empty uses "<store dir>/run". A resumable run must point at
  /// the scratch directory of the interrupted one.
  std::string scratch_dir;

  /// Transient-fault handling for every I/O the run's pipelines issue
  /// (prefetch reads, write-behind writes/flushes, checkpoint commits):
  /// retryable failures are retried with deterministic-jitter backoff
  /// before they surface (docs/io-stack.md "Error handling, retries, and
  /// degradation"). Set `retry.max_attempts = 1` to disable retries.
  RetryPolicy retry;

  /// Selective scheduling (docs/storage-format.md "Source summaries"):
  /// consult frontier x per-blob source summary before enqueueing any
  /// out-of-core read, skipping sub-shards that cannot contribute this
  /// iteration. Only takes effect for monotone-skippable programs
  /// (Program::kMonotoneSkippable — BFS/SSSP/WCC) on stores whose manifest
  /// carries summaries (v3); results are bit-identical on or off, only
  /// bytes moved change. Defaults on, overridable via NXGRAPH_SELECTIVE=0
  /// so the whole test/bench suite can be swept without code changes (CI's
  /// selective job).
  bool selective_scheduling = DefaultSelectiveScheduling();

  /// Which varint decode implementation serves this run's NXS2 blobs
  /// (src/util/simd_varint.h). kAuto resolves to the best path the CPU
  /// supports, capped by the NXGRAPH_SIMD=off|sse|avx2 environment
  /// variable (the CI decode-matrix sweep); kForceScalar pins the scalar
  /// reference codec (the debugging escape hatch); kForceSimd takes the
  /// best hardware path even inside an NXGRAPH_SIMD=off sweep (parity
  /// tests), degrading to scalar only when the CPU lacks SSSE3. Every path
  /// yields bit-identical results and identical Corruption rejection;
  /// RunStats::decode_path reports what actually ran.
  SimdDecode simd_decode = SimdDecode::kAuto;

  /// Cooperative cancellation/deadline token (not owned, may be null; must
  /// outlive the run). Observed at every iteration boundary in Run() — a
  /// fired token ends the run with the token's status before the next
  /// iteration starts — and threaded into the prefetch streams and retry
  /// backoffs so a cancelled run stops issuing I/O promptly. Within an
  /// iteration the phases complete normally; checkpoint/writeback state is
  /// never left half-committed.
  const CancelToken* cancel = nullptr;
};

/// \brief Statistics from one engine run.
struct RunStats {
  int iterations = 0;
  double seconds = 0;
  double preprocess_seconds = 0;   ///< engine setup (initial loads)
  uint64_t edges_traversed = 0;    ///< summed over processed sub-shards
  uint64_t bytes_read = 0;         ///< engine-accounted disk reads
  uint64_t bytes_written = 0;      ///< engine-accounted disk writes
  /// Bytes MEASURED at the Env layer (every file object's ReadAt/Read and
  /// WriteAt/Append records into its Env's IoStats): a snapshot delta over
  /// the run's effective Env from just after setup to completion. Unlike
  /// the engine-accounted `bytes_read`/`bytes_written` (which count what
  /// the engine *intended* to move, from manifest blob sizes), these are
  /// ground truth for I/O-volume claims — a compressed sub-shard format
  /// shows up here as fewer bytes per iteration without any accounting
  /// change. Runs sharing one Env concurrently (rare outside tests) see
  /// each other's traffic.
  uint64_t env_bytes_read = 0;
  uint64_t env_bytes_written = 0;
  uint32_t resident_intervals = 0; ///< Q actually used
  std::string strategy;            ///< "SPU" / "DPU" / "MPU(Q=...)"
  std::vector<double> iteration_seconds;

  // -- phase / I/O overlap accounting (summed over all iterations) --------
  double phase_a_seconds = 0;  ///< A: resident rows x resident columns
  double phase_b_seconds = 0;  ///< B: disk rows (SPU-like + ToHub)
  double phase_c_seconds = 0;  ///< C: disk columns (SPU-like + FromHub)
  double phase_d_seconds = 0;  ///< D: apply + ping-pong swap
  /// Wall-clock time the phase drivers spent blocked waiting for reads —
  /// the I/O latency the prefetch pipeline failed to hide. With
  /// prefetch_depth == 0 this is simply the total synchronous read+decode
  /// time of the out-of-core phases; depth >= 1 should push it towards 0
  /// while phase seconds stay flat (the overlap is the difference).
  double io_wait_seconds = 0;
  /// Wall-clock time compute tasks and phase barriers spent blocked on the
  /// write-behind queue (Push backpressure plus Drain) — the write latency
  /// the pipeline failed to hide. With writeback_buffer_bytes == 0 this is
  /// simply the total synchronous write time of the out-of-core phases.
  double write_wait_seconds = 0;
  uint32_t prefetch_depth = 0;     ///< effective (budget-arbitrated) depth
  /// Effective (budget-arbitrated) write-behind buffer actually used.
  uint64_t writeback_buffer_bytes = 0;
  int io_threads = 0;              ///< dedicated I/O threads actually used
  /// Env backend that actually served the run ("buffered" / "direct" /
  /// "uring") — the requested RunOptions::io_backend after the support
  /// resolution described there.
  std::string io_backend;

  // -- checkpoint/restart -------------------------------------------------
  /// Iteration the run continued from: 0 for a fresh start, k > 0 when a
  /// valid checkpoint seeded the run at iteration k. `iterations` stays
  /// the LOGICAL total (resumed_from_iteration + iterations executed), so
  /// an interrupted-and-resumed run reports the same count as an
  /// uninterrupted one.
  int resumed_from_iteration = 0;
  int checkpoints_written = 0;     ///< records committed this run
  /// Wall-clock spent writing checkpoints (resident/snapshot segment
  /// writes, the durability drain, and the atomic record commit).
  double checkpoint_seconds = 0;

  // -- transient-fault resilience -----------------------------------------
  /// Retries of transiently-failed I/O operations across every pipeline
  /// (prefetch reads, write-behind writes/flushes, checkpoint commits).
  /// 0 on a healthy device — the retry layer is pure bookkeeping then.
  uint64_t io_retries = 0;
  /// Wall-clock the retry loops spent in backoff waits.
  double retry_wait_seconds = 0;
  /// Decode corruptions given a second read (GraphStore re-read path).
  uint64_t checksum_rereads = 0;
  /// Mid-run I/O backend downgrades (uring ring died -> reopened
  /// buffered). 0 or 1: a downgraded run is already on the buffered floor.
  uint64_t backend_downgrades = 0;
  /// Write/flush errors suppressed by first-error-wins reporting at
  /// write-behind Drain barriers (each was also logged).
  uint64_t dropped_write_errors = 0;

  // -- decode path --------------------------------------------------------
  /// Varint decode implementation that served the run ("scalar" / "ssse3" /
  /// "avx2") — RunOptions::simd_decode after CPUID + NXGRAPH_SIMD
  /// resolution. Results are bit-identical across paths.
  std::string decode_path;
  /// NXS2 bulk varint stream scans executed (three per NXS2 blob decode;
  /// 0 on an all-NXS1 store).
  uint64_t bulk_decode_calls = 0;
  /// Wall-clock spent inside SubShard::Decode (checksum + parse), summed
  /// across decoding threads — the CPU tax the SIMD path exists to shrink.
  double decode_seconds = 0;

  // -- selective scheduling -----------------------------------------------
  /// Out-of-core sub-shard reads the run actually enqueued vs dropped at
  /// planning time because the blob's source summary intersected no active
  /// vertex (Phase B rows and Phase C resident blobs; empty blobs count for
  /// neither). Both stay 0 when selective scheduling is off, the program is
  /// not monotone-skippable, or the store has no summaries.
  uint64_t subshards_processed = 0;
  uint64_t subshards_skipped = 0;
  /// Summary filter bytes the manifest carries for this store (both
  /// directions) — the metadata cost that bought the skips.
  uint64_t summary_bytes = 0;
  /// Per-iteration skip trajectory (parallel to iteration_seconds): tail
  /// iterations of frontier algorithms should show processed collapsing
  /// towards the frontier size while skipped absorbs the rest.
  std::vector<uint64_t> iteration_subshards_processed;
  std::vector<uint64_t> iteration_subshards_skipped;
  /// io_model prediction for a full-activity iteration's read bytes under
  /// the chosen strategy (0 when the model was not consulted) — compare
  /// with env_bytes_read / iterations to see the activity-awareness gap.
  uint64_t model_bytes_per_iteration = 0;

  /// Millions of traversed edges per second (the paper's Fig. 11 metric).
  double Mteps() const {
    return seconds > 0 ? static_cast<double>(edges_traversed) / seconds / 1e6
                       : 0;
  }
};

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_OPTIONS_H_
