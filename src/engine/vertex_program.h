// The vertex-program abstraction implemented by graph algorithms and
// executed by the SPU/DPU/MPU engines (paper §II-B update scheme).
#ifndef NXGRAPH_ENGINE_VERTEX_PROGRAM_H_
#define NXGRAPH_ENGINE_VERTEX_PROGRAM_H_

#include <concepts>
#include <type_traits>

#include "src/graph/types.h"

namespace nxgraph {

/// \brief Per-edge context handed to Program::Gather.
struct EdgeContext {
  VertexId src;
  VertexId dst;
  float weight;             ///< 1.0 for unweighted graphs
  uint32_t src_out_degree;  ///< out-degree of the source vertex
};

/// A graph algorithm is a copyable value type modelling this concept:
///
///   using Value = <trivially copyable attribute type>;
///
///   Value Init(VertexId v, uint32_t out_degree) const;
///     Initial attribute (paper: the Initialize(I) input step).
///
///   static Value Identity();
///     Neutral element of Accumulate: Accumulate(Identity(), x) == x.
///
///   Value Gather(const EdgeContext& e, const Value& src_value) const;
///     Contribution propagated from source to destination along one edge.
///
///   static Value Accumulate(const Value& a, const Value& b);
///     Associative, commutative combine of contributions. Must be valid to
///     pre-accumulate partial sums (this is exactly what hubs store).
///
///   Value Apply(VertexId v, const Value& acc, const Value& old_value) const;
///     New attribute from the accumulated contributions and the previous
///     iteration's attribute (synchronous / Jacobi consistency).
///
///   bool Changed(const Value& old_value, const Value& new_value) const;
///     Whether this vertex "was updated" — drives interval activity and
///     termination (paper: intervals with no updated vertex go inactive).
///
///   bool InitiallyActive(VertexId v) const;
///     Whether this vertex activates its interval before iteration 0
///     (paper: BFS starts with only the root's interval active).
///
///   static constexpr bool kMonotoneSkippable;
///     True when Apply(v, Identity(), old) == old and contributions from
///     unchanged sources can never change the destination (min/max-style
///     propagation: BFS, WCC, SCC, SSSP). Enables skipping sub-shards whose
///     source interval is inactive. PageRank-style programs must set false:
///     every iteration needs all contributions.
template <typename P>
concept VertexProgram = requires(const P p, VertexId v, uint32_t deg,
                                 const typename P::Value& value,
                                 const EdgeContext& edge) {
  requires std::is_trivially_copyable_v<typename P::Value>;
  { p.Init(v, deg) } -> std::same_as<typename P::Value>;
  { P::Identity() } -> std::same_as<typename P::Value>;
  { p.Gather(edge, value) } -> std::same_as<typename P::Value>;
  { P::Accumulate(value, value) } -> std::same_as<typename P::Value>;
  { p.Apply(v, value, value) } -> std::same_as<typename P::Value>;
  { p.Changed(value, value) } -> std::same_as<bool>;
  { p.InitiallyActive(v) } -> std::same_as<bool>;
  { P::kMonotoneSkippable } -> std::convertible_to<bool>;
};

}  // namespace nxgraph

#endif  // NXGRAPH_ENGINE_VERTEX_PROGRAM_H_
