// Asynchronous write-behind I/O pipeline — the write-side twin of the
// prefetcher (paper §IV: the Destination-Sorted Sub-Shard phases overlap
// disk access with computation; PR 1 made the reads asynchronous, this
// queue does the same for hub payloads and interval write-backs).
//
// Producers serialize their payload on the compute pool and enqueue the
// owned buffer; dedicated I/O threads drain the queue as positional
// WriteAt calls, so compute tasks never block on device write latency.
// The queue is bounded by bytes, not entries: Push applies backpressure
// once `budget_bytes` of payload are queued or in flight, which caps the
// transient memory exactly like the prefetch window caps read-ahead.
//
//   budget == 0  — fully synchronous: Push performs the WriteAt inline and
//                  charges its whole duration to write_wait_seconds (the
//                  pre-writeback engine behavior and the baseline of
//                  bench_writeback);
//   budget  > 0  — asynchronous: Push blocks only on backpressure, errors
//                  surface at the next Drain().
//
// Ordering: disjoint writes (the only kind the engine produces between
// barriers) may drain in any order, so the queue issues them with a
// per-file elevator sweep — ascending offset from the last issued write,
// wrapping around — which turns the scrambled completion order of Phase B
// compute tasks back into a near-sequential device stream (hub segments
// are contiguous by (i, j)). At issue time, exactly-adjacent queued writes
// on the same file are group-committed into one WriteAt (byte-identical,
// since queued writes are disjoint): adjacent hub segments written by one
// Phase B row reach the device as a single larger transfer instead of a
// run of small ones. A write that overlaps a pending write on the same
// file is deferred until that file quiesces and then applied in push
// order, so overlapping writes always land exactly as the synchronous
// path would have written them.
//
// Drain() is the durability barrier the engine places at every phase and
// iteration boundary: it blocks until the queue is empty, Flush()es every
// distinct target file written since the previous barrier, and returns the
// first error any write or flush produced — a failed flush surfaces here,
// never silently dropped.
//
// Resilience (docs/io-stack.md "Error handling, retries, and degradation"):
// every WriteAt/Flush the queue issues runs under the RetryPolicy, so
// transient failures (retryable Status) are absorbed invisibly. A write
// that still fails is parked with its payload and re-attempted
// synchronously at the next Drain barrier — an error that heals by then
// (ENOSPC cleared by a log rotation, a device that came back) never
// surfaces at all. Drain keeps first-error-wins semantics for its return
// value but counts and logs every suppressed error (dropped_write_errors).
// An ENOSPC failure, or a queue whose writes fail repeatedly (dead queue),
// flips the queue into degraded mode: subsequent Pushes write inline
// (synchronously, after quiescing the async window) and return their
// status directly to the producer instead of piling more doomed writes
// into the pipeline.
#ifndef NXGRAPH_IO_WRITEBACK_H_
#define NXGRAPH_IO_WRITEBACK_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/util/macros.h"
#include "src/util/retry.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace nxgraph {

/// \brief Bounded-byte write-behind queue over an I/O thread pool.
///
/// Thread contract: Push may be called concurrently from any number of
/// producer threads; Drain from one driver thread at a time (concurrent
/// Push while another thread Drains is allowed — the barrier covers every
/// write enqueued before it returns). Target files must outlive the queue.
class WritebackQueue {
 public:
  /// `io_pool` is not owned and may be null when `budget_bytes == 0`.
  /// Synchronous mode never touches the pool and never records flush
  /// targets either — budget 0 is exactly the pre-writeback write path,
  /// which issued no durability syncs. `counters` (not owned, may be null)
  /// receives retry / suppressed-error tallies; `retry` governs every
  /// WriteAt and Flush the queue issues.
  WritebackQueue(ThreadPool* io_pool, uint64_t budget_bytes,
                 RetryPolicy retry = {}, RetryCounters* counters = nullptr);

  /// Drains outstanding writes (they are completed, never dropped — this
  /// is a write path; cancellation would lose data). Flush errors during
  /// destruction are swallowed; call Drain() first to observe them.
  ~WritebackQueue();
  NX_DISALLOW_COPY(WritebackQueue);

  /// Enqueues one positional write of `data` to `file` at `offset`,
  /// transferring ownership of the buffer. Blocks while the queue holds
  /// `budget_bytes` or more of pending payload (a single payload larger
  /// than the whole budget is admitted once the queue is empty, so Push
  /// can never deadlock). In synchronous mode returns the WriteAt status
  /// directly; in asynchronous mode returns OK — failures surface from
  /// the next Drain() — unless the queue has degraded (see degraded()),
  /// in which case the write runs inline and its status is returned.
  Status Push(RandomWriteFile* file, uint64_t offset, std::string data);

  /// As above, but copies `data` into an owned buffer only when the queue
  /// is asynchronous — synchronous mode writes inline straight from the
  /// caller's buffer, so budget 0 adds no allocation over the old path.
  Status Push(RandomWriteFile* file, uint64_t offset, const void* data,
              size_t n);

  /// Barrier: blocks until every write enqueued so far has landed. With
  /// `sync` (the default) it then Flush()es each distinct target touched
  /// since the last syncing Drain — the durability barrier; `sync = false`
  /// is an ordering-only barrier (reads issued after it see every write)
  /// and leaves the flush debt to the next syncing Drain. Writes that
  /// failed permanently in flight are re-attempted synchronously here
  /// first (degrade, don't abort — see the file comment). Returns the
  /// first surviving write error, else the first flush error; additional
  /// errors are counted in dropped_write_errors and logged. Resets the
  /// error state so the queue can be reused for the next phase.
  Status Drain(bool sync = true);

  /// Bytes queued or in flight right now.
  uint64_t pending_bytes() const;

  /// Total wall-clock time producers spent blocked in Push (backpressure,
  /// or the inline write when synchronous) plus time Drain spent waiting —
  /// the residual write latency the pipeline failed to hide.
  double write_wait_seconds() const {
    return static_cast<double>(
               write_wait_micros_.load(std::memory_order_relaxed)) /
           1e6;
  }

  /// Queued writes absorbed into a neighbor by group commit (each absorbed
  /// write saved one WriteAt).
  uint64_t coalesced_writes() const;

  /// True once the queue has fallen back to synchronous inline writes
  /// (ENOSPC or repeated permanent write failures). Sticky for the life
  /// of the queue.
  bool degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }

  /// Errors suppressed by first-error-wins reporting at Drain barriers
  /// (each was logged when dropped).
  uint64_t dropped_write_errors() const {
    return dropped_write_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    RandomWriteFile* file;
    uint64_t offset;
    std::string data;
    /// Original Push calls folded into this write (group commit); the
    /// barrier counter drops by this much when the write lands.
    uint64_t merged = 1;
    /// Exactly-adjacent successors absorbed by group commit at pick time.
    /// Their payloads are concatenated into `data` by the writer thread
    /// OUTSIDE the queue lock (the copy can be megabytes; holding mu_
    /// across it would stall every producer and the barrier).
    std::vector<std::shared_ptr<Pending>> group;
    /// Authoritative end once grouped (covers the absorbed payloads before
    /// they are concatenated); 0 for ungrouped writes.
    uint64_t span_end = 0;
    uint64_t end() const { return offset + data.size(); }
    uint64_t span() const { return span_end != 0 ? span_end : end(); }
  };

  /// Per-target issue state. Disjoint queued writes live in an
  /// offset-ordered map served by the elevator; writes that overlap any
  /// pending write are parked in `deferred` and issued FIFO once the file
  /// has fully quiesced. At most one write per writer thread is submitted
  /// to the pool at a time (`issue_cap_`), so the reorder window stays in
  /// the sorted map instead of degenerating into the pool's FIFO queue —
  /// each completion picks the next write by offset.
  struct FileState {
    std::map<uint64_t, std::shared_ptr<Pending>> queued;  // disjoint, by offset
    std::deque<std::shared_ptr<Pending>> deferred;        // overlapping, FIFO
    std::vector<std::shared_ptr<Pending>> inflight;
    uint64_t head = 0;  // device position model: end of the last issue
  };

  /// Moves issuable queued writes onto the I/O pool in elevator order. A
  /// single thread runs the issue loop at a time (`issuing_`); the loop
  /// re-examines the queues each round, so completions during the loop are
  /// picked up without a separate wakeup. Called without mu_ held (Submit
  /// may run the write inline on a 0-thread pool).
  void Issue();
  void RunWrite(std::shared_ptr<Pending> w);
  /// Next elevator candidate across all files, or null. Called under mu_.
  /// Group commit: the picked write absorbs exactly-adjacent queued
  /// successors on the same file (Phase B hub segments of one row are
  /// contiguous by (i, j)) into a single larger WriteAt, up to
  /// kCoalesceCapBytes.
  std::shared_ptr<Pending> PickLocked();
  bool OverlapsPendingLocked(const FileState& fs, const Pending& w) const;
  void TaskDone();

  ThreadPool* io_pool_;
  const uint64_t budget_bytes_;
  const size_t issue_cap_;  // max writes submitted to the pool at once
  const RetryPolicy retry_;
  RetryCounters* counters_;  // not owned; may be null

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<RandomWriteFile*, FileState> files_;
  uint64_t pending_bytes_ = 0;   // backpressure (payload bytes)
  uint64_t pending_writes_ = 0;  // barrier (covers zero-length writes too)
  size_t inflight_writes_ = 0;   // issued to the pool, not yet landed
  size_t outstanding_tasks_ = 0;  // pool closures still referencing this
  bool issuing_ = false;
  uint64_t coalesced_writes_ = 0;
  std::vector<RandomWriteFile*> targets_;  // distinct files since last Drain
  /// Writes that failed permanently in flight, parked with their payloads
  /// for the synchronous re-attempt at the next Drain. Their bytes no
  /// longer count against the budget (they left the async pipeline).
  std::vector<std::shared_ptr<Pending>> failed_;

  std::atomic<bool> degraded_{false};
  std::atomic<uint64_t> dropped_write_errors_{0};
  std::atomic<int64_t> write_wait_micros_{0};
};

}  // namespace nxgraph

#endif  // NXGRAPH_IO_WRITEBACK_H_
