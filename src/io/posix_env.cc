// Buffered Posix Env implementation (PosixFsEnv, see posix_base.h): buffered
// sequential streams over open(2)/read(2), pread/pwrite for positional
// access. The fd helpers and the metadata methods here are shared by the
// DirectIOEnv / UringEnv backends.
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "src/io/posix_base.h"

namespace nxgraph {
namespace internal {

namespace fs = std::filesystem;

Status PosixError(const std::string& context, int err) {
  // Single funnel for errno translation across the buffered, direct-I/O
  // and io_uring backends; FromErrno also sets the retryability bit for
  // transient errnos so pipeline retry loops can classify without
  // re-parsing messages.
  return Status::FromErrno(context, err);
}

Status PosixOpenError(const std::string& path) {
  if (errno == ENOENT) {
    return Status::NotFound("open " + path + ": no such file");
  }
  return PosixError("open " + path, errno);
}

Status PReadFull(int fd, uint64_t offset, size_t n, void* buf,
                 size_t* bytes_read) {
  size_t total = 0;
  char* dst = static_cast<char*>(buf);
  while (total < n) {
    ssize_t r = ::pread(fd, dst + total, n - total,
                        static_cast<off_t>(offset + total));
    if (r < 0) {
      if (errno == EINTR) continue;
      return PosixError("pread", errno);
    }
    if (r == 0) break;  // EOF
    total += static_cast<size_t>(r);
  }
  *bytes_read = total;
  return Status::OK();
}

Status PWriteFull(int fd, uint64_t offset, const void* data, size_t n) {
  const char* src = static_cast<const char*>(data);
  size_t total = 0;
  while (total < n) {
    ssize_t w = ::pwrite(fd, src + total, n - total,
                         static_cast<off_t>(offset + total));
    if (w < 0) {
      if (errno == EINTR) continue;
      return PosixError("pwrite", errno);
    }
    total += static_cast<size_t>(w);
  }
  return Status::OK();
}

namespace {

class PosixSequentialFile : public SequentialFile {
 public:
  PosixSequentialFile(int fd, IoStats* stats) : fd_(fd), stats_(stats) {}
  ~PosixSequentialFile() override { ::close(fd_); }

  Status Read(size_t n, void* buf, size_t* bytes_read) override {
    size_t total = 0;
    char* dst = static_cast<char*>(buf);
    while (total < n) {
      ssize_t r = ::read(fd_, dst + total, n - total);
      if (r < 0) {
        if (errno == EINTR) continue;
        return PosixError("read", errno);
      }
      if (r == 0) break;  // EOF
      total += static_cast<size_t>(r);
    }
    *bytes_read = total;
    stats_->RecordRead(total);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    if (::lseek(fd_, static_cast<off_t>(n), SEEK_CUR) < 0) {
      return PosixError("lseek", errno);
    }
    return Status::OK();
  }

 private:
  int fd_;
  IoStats* stats_;
};

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, IoStats* stats) : fd_(fd), stats_(stats) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status ReadAt(uint64_t offset, size_t n, void* buf,
                size_t* bytes_read) const override {
    NX_RETURN_NOT_OK(PReadFull(fd_, offset, n, buf, bytes_read));
    stats_->RecordRead(*bytes_read);
    return Status::OK();
  }

 private:
  int fd_;
  IoStats* stats_;
};

// Buffered appender; 1 MiB buffer keeps sub-shard emission sequential and
// syscall-light.
class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, IoStats* stats) : fd_(fd), stats_(stats) {
    buffer_.reserve(kBufferSize);
  }
  ~PosixWritableFile() override {
    if (fd_ >= 0) {
      FlushBuffer();
      ::close(fd_);
    }
  }

  Status Append(const void* data, size_t n) override {
    stats_->RecordWrite(n);
    const char* src = static_cast<const char*>(data);
    if (buffer_.size() + n <= kBufferSize) {
      buffer_.append(src, n);
      return Status::OK();
    }
    NX_RETURN_NOT_OK(FlushBuffer());
    if (n >= kBufferSize) return WriteRaw(src, n);
    buffer_.append(src, n);
    return Status::OK();
  }

  Status Flush() override { return FlushBuffer(); }

  Status Sync() override {
    NX_RETURN_NOT_OK(FlushBuffer());
    if (::fdatasync(fd_) < 0) return PosixError("fdatasync", errno);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status s = FlushBuffer();
    if (::close(fd_) < 0 && s.ok()) s = PosixError("close", errno);
    fd_ = -1;
    return s;
  }

 private:
  static constexpr size_t kBufferSize = 1 << 20;

  Status FlushBuffer() {
    if (buffer_.empty()) return Status::OK();
    Status s = WriteRaw(buffer_.data(), buffer_.size());
    buffer_.clear();
    return s;
  }

  Status WriteRaw(const char* data, size_t n) {
    size_t total = 0;
    while (total < n) {
      ssize_t w = ::write(fd_, data + total, n - total);
      if (w < 0) {
        if (errno == EINTR) continue;
        return PosixError("write", errno);
      }
      total += static_cast<size_t>(w);
    }
    return Status::OK();
  }

  int fd_;
  IoStats* stats_;
  std::string buffer_;
};

class PosixRandomWriteFile : public RandomWriteFile {
 public:
  PosixRandomWriteFile(int fd, IoStats* stats) : fd_(fd), stats_(stats) {}
  ~PosixRandomWriteFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    stats_->RecordWrite(n);
    return PWriteFull(fd_, offset, data, n);
  }

  Status Flush() override {
    if (::fdatasync(fd_) < 0) return PosixError("fdatasync", errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) < 0) {
      return PosixError("ftruncate", errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status s;
    if (::close(fd_) < 0) s = PosixError("close", errno);
    fd_ = -1;
    return s;
  }

 private:
  int fd_;
  IoStats* stats_;
};

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status SyncDir(const std::string& dir) {
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return PosixError("open dir " + dir, errno);
  Status s;
  if (::fsync(fd) < 0) s = PosixError("fsync dir " + dir, errno);
  ::close(fd);
  return s;
}

}  // namespace

Status PosixFsEnv::NewSequentialFile(const std::string& path,
                                     std::unique_ptr<SequentialFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return PosixOpenError(path);
  *out = std::make_unique<PosixSequentialFile>(fd, stats());
  return Status::OK();
}

Status PosixFsEnv::NewRandomAccessFile(const std::string& path,
                                       std::unique_ptr<RandomAccessFile>* out) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return PosixOpenError(path);
  *out = std::make_unique<PosixRandomAccessFile>(fd, stats());
  return Status::OK();
}

Status PosixFsEnv::NewWritableFile(const std::string& path,
                                   std::unique_ptr<WritableFile>* out) {
  int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return PosixOpenError(path);
  *out = std::make_unique<PosixWritableFile>(fd, stats());
  return Status::OK();
}

Status PosixFsEnv::NewRandomWriteFile(const std::string& path,
                                      std::unique_ptr<RandomWriteFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return PosixOpenError(path);
  *out = std::make_unique<PosixRandomWriteFile>(fd, stats());
  return Status::OK();
}

bool PosixFsEnv::FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<uint64_t> PosixFsEnv::GetFileSize(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("stat " + path + ": " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

Status PosixFsEnv::CreateDirs(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) return Status::IOError("mkdir " + path + ": " + ec.message());
  return Status::OK();
}

Status PosixFsEnv::RemoveFile(const std::string& path) {
  // Plain unlink, no directory fsync: callers on hot paths (per-interval
  // scratch files) must not pay metadata-durability costs. Code that
  // needs a crash-durable removal replaces the file atomically instead
  // (see CheckpointManager::Remove's tombstone).
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return PosixError("unlink " + path, errno);
  }
  return Status::OK();
}

Status PosixFsEnv::RemoveDirRecursively(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
  if (ec) return Status::IOError("rm -r " + path + ": " + ec.message());
  return Status::OK();
}

Status PosixFsEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return PosixError("rename " + from + " -> " + to, errno);
  }
  // The Env contract promises the rename is durable once this returns;
  // POSIX only promises that after the parent directory is fsynced (an
  // fdatasync on the file does not commit directory metadata on every
  // filesystem). The checkpoint commit protocol depends on this: losing
  // a record rename in a power cut while later data syncs survived
  // would resurrect an older record whose segments have been
  // overwritten. Renames are rare (atomic commits only), so the extra
  // fsync is noise.
  NX_RETURN_NOT_OK(SyncDir(ParentDir(to)));
  const std::string from_dir = ParentDir(from);
  if (from_dir != ParentDir(to)) NX_RETURN_NOT_OK(SyncDir(from_dir));
  return Status::OK();
}

Status PosixFsEnv::ListDir(const std::string& path,
                           std::vector<std::string>* names) {
  names->clear();
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(path, ec)) {
    names->push_back(entry.path().filename().string());
  }
  if (ec) return Status::IOError("list " + path + ": " + ec.message());
  return Status::OK();
}

}  // namespace internal

Env* Env::Default() {
  static internal::PosixFsEnv env;
  return &env;
}

}  // namespace nxgraph
