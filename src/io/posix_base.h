// Internal: the buffered Posix Env as a reusable base class.
//
// PosixEnv, DirectIOEnv and UringEnv all live on the real filesystem and
// share every metadata operation (open/rename/fsync-parent-dir/list) and the
// buffered append/sequential paths; they differ only in how the positional
// files — RandomAccessFile (the prefetcher's reads) and RandomWriteFile (the
// writeback queue's writes) — reach the device. Backends subclass PosixFsEnv
// and override exactly those two factories; anything they cannot serve
// (unsupported filesystem, refused O_DIRECT) falls back to the base class's
// buffered implementation per file, so the Env contract (docs/io-stack.md)
// holds identically on every backend.
//
// Not part of the public API — include src/io/env.h instead.
#ifndef NXGRAPH_IO_POSIX_BASE_H_
#define NXGRAPH_IO_POSIX_BASE_H_

#include <string>

#include "src/io/env.h"

namespace nxgraph {
namespace internal {

/// Status from errno, prefixed with `context`. Thin wrapper over
/// Status::FromErrno — the one errno→Status funnel shared by the
/// buffered, direct-I/O and io_uring backends; it sets the retryability
/// bit for transient errnos (Status::TransientErrno).
Status PosixError(const std::string& context, int err);

/// Open-failure status for `path` from the current errno (NotFound for
/// ENOENT, IOError otherwise).
Status PosixOpenError(const std::string& path);

/// Full-coverage pread loop: EINTR-safe, short only at EOF (the Env
/// ReadAt contract). Does not record stats.
Status PReadFull(int fd, uint64_t offset, size_t n, void* buf,
                 size_t* bytes_read);

/// Full-coverage pwrite loop: EINTR-safe. Does not record stats.
Status PWriteFull(int fd, uint64_t offset, const void* data, size_t n);

/// \brief Buffered Posix Env (the kBuffered backend and the base class of
/// DirectIOEnv / UringEnv). Env::Default() returns the process-wide instance.
class PosixFsEnv : public Env {
 public:
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override;

  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursively(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;
};

/// Test-only: a DirectIOEnv whose O_DIRECT opens always fail, so the
/// per-file buffered fallback is exercised deterministically even on
/// kernels whose tmpfs accepts O_DIRECT (Linux >= 6.5 — the natural refusal
/// vehicle disappeared there).
std::unique_ptr<Env> NewDirectIOEnvRefusingODirectForTest();

/// Test-only: makes every UringEnv submission fail permanently (dead-ring
/// -EIO) after `n` more successful positional transfers process-wide, as
/// if the ring died mid-run; 0 re-arms to "never fail". Drives the
/// engine's live uring→buffered downgrade path deterministically. No-op
/// when io_uring support is compiled out.
void SetUringFailAfterForTest(uint64_t n);

}  // namespace internal
}  // namespace nxgraph

#endif  // NXGRAPH_IO_POSIX_BASE_H_
