// I/O backend selection for the real-filesystem Envs. Kept in its own tiny
// header so the engine layer (RunOptions) can name a backend without pulling
// in the full Env interface.
#ifndef NXGRAPH_IO_IO_BACKEND_H_
#define NXGRAPH_IO_IO_BACKEND_H_

#include <string>

namespace nxgraph {

/// Which Env implementation serves the streamed-update phases' disk access.
/// All three present the identical Env contract (see docs/io-stack.md), so
/// engine results are bit-identical across backends; they differ only in how
/// ReadAt/WriteAt reach the device:
enum class IoBackend {
  kBuffered,  ///< PosixEnv: pread/pwrite through the kernel page cache.
  kDirect,    ///< DirectIOEnv: O_DIRECT, page cache bypassed, user-space
              ///< aligned buffering (per-file buffered fallback when the
              ///< filesystem refuses O_DIRECT).
  kUring,     ///< UringEnv: io_uring submission/completion rings; falls back
              ///< to kBuffered when the kernel (or build) lacks io_uring.
};

inline const char* IoBackendName(IoBackend b) {
  switch (b) {
    case IoBackend::kBuffered:
      return "buffered";
    case IoBackend::kDirect:
      return "direct";
    case IoBackend::kUring:
      return "uring";
  }
  return "?";
}

/// Parses "buffered" / "direct" / "uring"; returns false on anything else.
bool ParseIoBackend(const std::string& name, IoBackend* out);

/// The default RunOptions::io_backend: kBuffered, overridable by the
/// NXGRAPH_IO_BACKEND environment variable ("buffered" | "direct" | "uring").
/// The override exists so the whole test/bench suite can be swept across
/// backends without code changes (CI's io-backends job does exactly that);
/// an unparseable value is ignored. Read once and cached.
IoBackend DefaultIoBackend();

}  // namespace nxgraph

#endif  // NXGRAPH_IO_IO_BACKEND_H_
