#include "src/io/env.h"

#include <cstdlib>

namespace nxgraph {

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  out->clear();
  std::unique_ptr<SequentialFile> file;
  NX_RETURN_NOT_OK(env->NewSequentialFile(path, &file));
  char buf[1 << 16];
  for (;;) {
    size_t n = 0;
    NX_RETURN_NOT_OK(file->Read(sizeof(buf), buf, &n));
    if (n == 0) break;
    out->append(buf, n);
    if (n < sizeof(buf)) break;
  }
  return Status::OK();
}

namespace {

Status WriteTempAndRename(Env* env, const std::string& path,
                          const std::string& contents, bool durable) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  NX_RETURN_NOT_OK(env->NewWritableFile(tmp, &file));
  NX_RETURN_NOT_OK(file->Append(contents));
  if (durable) NX_RETURN_NOT_OK(file->Sync());
  NX_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp, path);
}

}  // namespace

Status WriteStringToFile(Env* env, const std::string& path,
                         const std::string& contents) {
  return WriteTempAndRename(env, path, contents, /*durable=*/false);
}

Status WriteStringToFileDurable(Env* env, const std::string& path,
                                const std::string& contents) {
  return WriteTempAndRename(env, path, contents, /*durable=*/true);
}

std::unique_ptr<Env> NewIoBackendEnv(IoBackend backend) {
  switch (backend) {
    case IoBackend::kBuffered:
      return nullptr;  // callers use the base Env they already have
    case IoBackend::kDirect:
      return NewDirectIOEnv();
    case IoBackend::kUring:
      return NewUringEnv();  // nullptr when unsupported
  }
  return nullptr;
}

bool ParseIoBackend(const std::string& name, IoBackend* out) {
  if (name == "buffered") {
    *out = IoBackend::kBuffered;
  } else if (name == "direct") {
    *out = IoBackend::kDirect;
  } else if (name == "uring") {
    *out = IoBackend::kUring;
  } else {
    return false;
  }
  return true;
}

IoBackend DefaultIoBackend() {
  static const IoBackend backend = [] {
    IoBackend b = IoBackend::kBuffered;
    const char* name = std::getenv("NXGRAPH_IO_BACKEND");
    if (name != nullptr) (void)ParseIoBackend(name, &b);
    return b;
  }();
  return backend;
}

}  // namespace nxgraph
