#include "src/io/env.h"

namespace nxgraph {

Status ReadFileToString(Env* env, const std::string& path, std::string* out) {
  out->clear();
  std::unique_ptr<SequentialFile> file;
  NX_RETURN_NOT_OK(env->NewSequentialFile(path, &file));
  char buf[1 << 16];
  for (;;) {
    size_t n = 0;
    NX_RETURN_NOT_OK(file->Read(sizeof(buf), buf, &n));
    if (n == 0) break;
    out->append(buf, n);
    if (n < sizeof(buf)) break;
  }
  return Status::OK();
}

namespace {

Status WriteTempAndRename(Env* env, const std::string& path,
                          const std::string& contents, bool durable) {
  const std::string tmp = path + ".tmp";
  std::unique_ptr<WritableFile> file;
  NX_RETURN_NOT_OK(env->NewWritableFile(tmp, &file));
  NX_RETURN_NOT_OK(file->Append(contents));
  if (durable) NX_RETURN_NOT_OK(file->Sync());
  NX_RETURN_NOT_OK(file->Close());
  return env->RenameFile(tmp, path);
}

}  // namespace

Status WriteStringToFile(Env* env, const std::string& path,
                         const std::string& contents) {
  return WriteTempAndRename(env, path, contents, /*durable=*/false);
}

Status WriteStringToFileDurable(Env* env, const std::string& path,
                                const std::string& contents) {
  return WriteTempAndRename(env, path, contents, /*durable=*/true);
}

}  // namespace nxgraph
