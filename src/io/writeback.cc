#include "src/io/writeback.h"

#include <algorithm>
#include <cerrno>

#include "src/util/logging.h"
#include "src/util/timer.h"

namespace nxgraph {

namespace {

/// Permanent write failures parked before the queue declares itself dead
/// and degrades to synchronous pushes (ENOSPC degrades immediately).
constexpr size_t kDeadQueueFailures = 8;

}  // namespace

WritebackQueue::WritebackQueue(ThreadPool* io_pool, uint64_t budget_bytes,
                               RetryPolicy retry, RetryCounters* counters)
    : io_pool_(io_pool),
      budget_bytes_(budget_bytes),
      issue_cap_(io_pool != nullptr && io_pool->num_threads() > 0
                     ? static_cast<size_t>(io_pool->num_threads())
                     : 1),
      retry_(retry),
      counters_(counters) {}

WritebackQueue::~WritebackQueue() {
  // Writes are never dropped: a write-behind queue that discarded pending
  // data on shutdown would silently corrupt the interval/hub files.
  (void)Drain();
  // The pool thread that landed the last write may still be inside its
  // trailing Issue() call; wait until no closure references this object.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_tasks_ == 0; });
}

bool WritebackQueue::OverlapsPendingLocked(const FileState& fs,
                                           const Pending& w) const {
  // Queued entries are pairwise disjoint, so only the map neighbors can
  // intersect the new range.
  auto it = fs.queued.lower_bound(w.offset);
  if (it != fs.queued.end() && it->second->offset < w.end()) return true;
  if (it != fs.queued.begin() && std::prev(it)->second->end() > w.offset) {
    return true;
  }
  for (const auto& f : fs.inflight) {
    // span() covers a grouped write's absorbed range even before the
    // writer thread has concatenated the payloads.
    if (w.offset < f->span() && f->offset < w.end()) return true;
  }
  for (const auto& d : fs.deferred) {
    if (w.offset < d->end() && d->offset < w.end()) return true;
  }
  return false;
}

Status WritebackQueue::Push(RandomWriteFile* file, uint64_t offset,
                            const void* data, size_t n) {
  if (budget_bytes_ == 0) {
    // Synchronous mode: the write happens right here on the producer
    // thread, straight from the caller's buffer, and its whole duration
    // counts as unhidden write latency. No flush target is recorded —
    // budget 0 reproduces the pre-writeback path exactly, which never
    // synced these files.
    Timer timer;
    Status s = RunWithRetry(retry_, counters_,
                            [&] { return file->WriteAt(offset, data, n); });
    write_wait_micros_.fetch_add(timer.ElapsedMicros(),
                                 std::memory_order_relaxed);
    return s;
  }
  return Push(file, offset, std::string(static_cast<const char*>(data), n));
}

Status WritebackQueue::Push(RandomWriteFile* file, uint64_t offset,
                            std::string data) {
  if (budget_bytes_ == 0) return Push(file, offset, data.data(), data.size());
  if (degraded_.load(std::memory_order_acquire)) {
    // Degraded mode: the async pipeline is considered dead (ENOSPC or
    // repeated permanent failures). Quiesce the remaining window so
    // ordering against earlier queued writes holds, then write inline and
    // hand the status straight to the producer — no more doomed writes
    // enter the pipeline. The target is still recorded so Drain keeps its
    // durability-barrier meaning.
    Timer timer;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return pending_writes_ == 0; });
      if (std::find(targets_.begin(), targets_.end(), file) ==
          targets_.end()) {
        targets_.push_back(file);
      }
    }
    Status s = RunWithRetry(retry_, counters_, [&] {
      return file->WriteAt(offset, data.data(), data.size());
    });
    write_wait_micros_.fetch_add(timer.ElapsedMicros(),
                                 std::memory_order_relaxed);
    return s;
  }

  auto w = std::make_shared<Pending>();
  w->file = file;
  w->offset = offset;
  w->data = std::move(data);
  const uint64_t bytes = w->data.size();
  Timer timer;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Backpressure: admit once the payload fits the budget. A payload
    // larger than the whole budget is admitted alone (empty queue), so a
    // producer can never deadlock against its own oversized write.
    cv_.wait(lock, [&] {
      return pending_bytes_ == 0 || pending_bytes_ + bytes <= budget_bytes_;
    });
    pending_bytes_ += bytes;
    ++pending_writes_;
    FileState& fs = files_[file];
    if (OverlapsPendingLocked(fs, *w) ||
        !fs.queued.emplace(w->offset, w).second) {
      // Overlapping (or zero-length duplicate-offset) writes keep push
      // order: parked until the file quiesces, then issued FIFO.
      fs.deferred.push_back(std::move(w));
    }
    if (std::find(targets_.begin(), targets_.end(), file) == targets_.end()) {
      targets_.push_back(file);
    }
  }
  write_wait_micros_.fetch_add(timer.ElapsedMicros(),
                               std::memory_order_relaxed);
  Issue();
  return Status::OK();
}

std::shared_ptr<WritebackQueue::Pending> WritebackQueue::PickLocked() {
  // Largest write group commit will grow: past a few MiB the transfer is
  // bandwidth-bound anyway and the append-copy only burns memory.
  constexpr uint64_t kCoalesceCapBytes = 4ull << 20;
  // Keep the pool fed with exactly one write per writer thread; the rest
  // of the window waits in the sorted maps so each completion can pick
  // the elevator-best successor instead of a FIFO-frozen one.
  if (inflight_writes_ >= issue_cap_) return nullptr;
  for (auto& [file, fs] : files_) {
    if (!fs.queued.empty()) {
      // Elevator sweep: the queued write at or after the device position
      // model, wrapping to the lowest offset when the sweep runs out.
      auto it = fs.queued.lower_bound(fs.head);
      if (it == fs.queued.end()) it = fs.queued.begin();
      auto w = it->second;
      fs.queued.erase(it);
      // Group commit: absorb exactly-adjacent queued successors into one
      // WriteAt. Queued writes are pairwise disjoint, so byte-identical
      // to issuing them separately — one device op instead of several
      // (hub segments written by one Phase B row are contiguous by
      // (i, j), making this the common case on seek-bound profiles).
      // Only the map surgery happens here; the payload concatenation — up
      // to kCoalesceCapBytes of memcpy — is done by the writer thread in
      // RunWrite, outside mu_.
      uint64_t group_end = w->end();
      uint64_t group_bytes = w->data.size();
      for (auto next = fs.queued.find(group_end);
           next != fs.queued.end() &&
           group_bytes + next->second->data.size() <= kCoalesceCapBytes;
           next = fs.queued.find(group_end)) {
        group_end += next->second->data.size();
        group_bytes += next->second->data.size();
        w->merged += next->second->merged;
        w->group.push_back(next->second);
        ++coalesced_writes_;
        fs.queued.erase(next);
      }
      if (!w->group.empty()) w->span_end = group_end;
      fs.head = group_end;
      fs.inflight.push_back(w);
      ++inflight_writes_;
      return w;
    }
    // Deferred writes wait for full quiescence of their file, which
    // guarantees every earlier overlapping write has landed; they then go
    // out one at a time, preserving push order among themselves.
    if (!fs.deferred.empty() && fs.inflight.empty()) {
      auto w = fs.deferred.front();
      fs.deferred.pop_front();
      fs.head = w->end();
      fs.inflight.push_back(w);
      ++inflight_writes_;
      return w;
    }
  }
  return nullptr;
}

void WritebackQueue::Issue() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One thread runs the issue loop at a time; it re-checks the queues
    // under mu_ every round, so state changes made before a concurrent
    // Issue() call are always observed either by that loop or by the next
    // caller after `issuing_` clears.
    if (issuing_) return;
    issuing_ = true;
  }
  for (;;) {
    std::shared_ptr<Pending> w;
    {
      std::lock_guard<std::mutex> lock(mu_);
      w = PickLocked();
      if (w == nullptr) {
        issuing_ = false;
        return;
      }
      ++outstanding_tasks_;
    }
    // Outside mu_: a 0-thread pool runs the closure inline right here.
    io_pool_->Submit([this, w]() mutable { RunWrite(std::move(w)); });
  }
}

void WritebackQueue::RunWrite(std::shared_ptr<Pending> w) {
  if (!w->group.empty()) {
    // Concatenate the group-committed payloads (outside mu_ — this copy
    // can be megabytes). pending_bytes_ is unchanged: the bytes move from
    // the members into `data`, and completion subtracts the grown size.
    w->data.reserve(static_cast<size_t>(w->span_end - w->offset));
    for (const auto& member : w->group) {
      w->data.append(member->data);
      std::string().swap(member->data);
    }
  }
  Status s = RunWithRetry(retry_, counters_, [&] {
    return w->file->WriteAt(w->offset, w->data.data(), w->data.size());
  });
  {
    std::lock_guard<std::mutex> lock(mu_);
    FileState& fs = files_[w->file];
    fs.inflight.erase(
        std::find(fs.inflight.begin(), fs.inflight.end(), w));
    pending_bytes_ -= w->data.size();
    pending_writes_ -= w->merged;  // a group-committed write retires all
                                   // the pushes folded into it
    --inflight_writes_;
    if (!s.ok()) {
      // Park the write, payload and all, for a synchronous re-attempt at
      // the Drain barrier — the error is only reported if it fails again
      // there (degrade, don't abort). ENOSPC, or a pile of permanent
      // failures, marks the whole queue dead: later Pushes go inline.
      const bool enospc = s.sys_errno() == ENOSPC;
      failed_.push_back(w);
      if (!degraded_.load(std::memory_order_relaxed) &&
          (enospc || failed_.size() >= kDeadQueueFailures)) {
        degraded_.store(true, std::memory_order_release);
        NX_LOG(Warn) << "writeback: degrading to synchronous writes after "
                     << (enospc ? "ENOSPC" : "repeated write failures")
                     << ": " << s.ToString();
      }
    }
    cv_.notify_all();
  }
  Issue();  // the landed write may have released a deferred write
  TaskDone();
}

void WritebackQueue::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--outstanding_tasks_ == 0) cv_.notify_all();
}

Status WritebackQueue::Drain(bool sync) {
  Timer timer;
  std::vector<RandomWriteFile*> targets;
  std::vector<std::shared_ptr<Pending>> failed;
  Status s;
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return pending_writes_ == 0; });
    failed.swap(failed_);
    // Ordering-only barriers leave targets_ accumulating; the next
    // syncing Drain (or destruction) settles the flush debt.
    if (sync) targets.swap(targets_);
  }
  // Second chance for writes that failed permanently in flight: the
  // barrier must not return with data silently missing, so each parked
  // write is re-attempted synchronously right here. One that succeeds now
  // (the condition healed) never surfaces as an error at all.
  for (const auto& w : failed) {
    Status ws = RunWithRetry(retry_, counters_, [&] {
      return w->file->WriteAt(w->offset, w->data.data(), w->data.size());
    });
    if (ws.ok()) continue;
    if (s.ok()) {
      s = std::move(ws);
      continue;
    }
    // First-error-wins for the return value, but never silently: every
    // suppressed error is counted and logged.
    dropped_write_errors_.fetch_add(1, std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->dropped_write_errors.fetch_add(1, std::memory_order_relaxed);
    }
    NX_LOG(Warn) << "writeback: suppressed write error (first error wins): "
                 << ws.ToString();
  }
  // Durability barrier: per-target flush, first error wins (write errors
  // precede flush errors chronologically, so they take precedence).
  for (RandomWriteFile* f : targets) {
    Status fs =
        RunWithRetry(retry_, counters_, [&] { return f->Flush(); });
    if (fs.ok()) continue;
    if (s.ok()) {
      s = std::move(fs);
      continue;
    }
    dropped_write_errors_.fetch_add(1, std::memory_order_relaxed);
    if (counters_ != nullptr) {
      counters_->dropped_write_errors.fetch_add(1, std::memory_order_relaxed);
    }
    NX_LOG(Warn) << "writeback: suppressed flush error (first error wins): "
                 << fs.ToString();
  }
  write_wait_micros_.fetch_add(timer.ElapsedMicros(),
                               std::memory_order_relaxed);
  return s;
}

uint64_t WritebackQueue::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_bytes_;
}

uint64_t WritebackQueue::coalesced_writes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return coalesced_writes_;
}

}  // namespace nxgraph
