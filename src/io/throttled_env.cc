// ThrottledEnv: decorates another Env so that reads and writes pay the
// bandwidth and seek costs of a modelled device. Transfers are recorded in
// the throttled Env's OWN IoStats (as well as the base Env's, via the
// wrapped base file objects), so a run served by this Env reports honest
// RunStats::env_bytes_read/env_bytes_written. Used to reproduce the
// paper's SSD-vs-HDD comparison (Table V) regardless of the real backing
// device: sequential streams pay pure bandwidth, positional accesses to
// non-adjacent offsets additionally pay one seek.
#include <chrono>
#include <mutex>
#include <thread>

#include "src/io/env.h"

namespace nxgraph {
namespace {

class Throttler {
 public:
  explicit Throttler(DeviceProfile profile) : profile_(profile) {}

  void ChargeBytes(uint64_t n) {
    Sleep(static_cast<double>(n) / profile_.bandwidth_bytes_per_sec);
  }
  void ChargeSeek() { Sleep(profile_.seek_latency_sec); }

 private:
  static void Sleep(double seconds) {
    if (seconds <= 0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }

  DeviceProfile profile_;
};

class ThrottledSequentialFile : public SequentialFile {
 public:
  ThrottledSequentialFile(std::unique_ptr<SequentialFile> base, Throttler* t,
                          IoStats* stats)
      : base_(std::move(base)), throttler_(t), stats_(stats) {}

  Status Read(size_t n, void* buf, size_t* bytes_read) override {
    Status s = base_->Read(n, buf, bytes_read);
    if (s.ok()) {
      stats_->RecordRead(*bytes_read);
      throttler_->ChargeBytes(*bytes_read);
    }
    return s;
  }
  Status Skip(uint64_t n) override {
    throttler_->ChargeSeek();
    return base_->Skip(n);
  }

 private:
  std::unique_ptr<SequentialFile> base_;
  Throttler* throttler_;
  IoStats* stats_;
};

class ThrottledRandomAccessFile : public RandomAccessFile {
 public:
  ThrottledRandomAccessFile(std::unique_ptr<RandomAccessFile> base,
                            Throttler* t, IoStats* stats)
      : base_(std::move(base)), throttler_(t), stats_(stats) {}

  Status ReadAt(uint64_t offset, size_t n, void* buf,
                size_t* bytes_read) const override {
    Status s = base_->ReadAt(offset, n, buf, bytes_read);
    if (!s.ok()) return s;
    stats_->RecordRead(*bytes_read);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (offset != next_expected_offset_) throttler_->ChargeSeek();
      next_expected_offset_ = offset + *bytes_read;
    }
    throttler_->ChargeBytes(*bytes_read);
    return s;
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  Throttler* throttler_;
  IoStats* stats_;
  mutable std::mutex mu_;
  mutable uint64_t next_expected_offset_ = 0;
};

class ThrottledWritableFile : public WritableFile {
 public:
  ThrottledWritableFile(std::unique_ptr<WritableFile> base, Throttler* t,
                        IoStats* stats)
      : base_(std::move(base)), throttler_(t), stats_(stats) {}

  Status Append(const void* data, size_t n) override {
    throttler_->ChargeBytes(n);
    Status s = base_->Append(data, n);
    if (s.ok()) stats_->RecordWrite(n);
    return s;
  }
  Status Flush() override { return base_->Flush(); }
  Status Sync() override {
    // Durability sync forces the device's write cache out; charge a seek,
    // matching RandomWriteFile::Flush's model.
    throttler_->ChargeSeek();
    return base_->Sync();
  }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  Throttler* throttler_;
  IoStats* stats_;
};

class ThrottledRandomWriteFile : public RandomWriteFile {
 public:
  ThrottledRandomWriteFile(std::unique_ptr<RandomWriteFile> base, Throttler* t,
                           IoStats* stats)
      : base_(std::move(base)), throttler_(t), stats_(stats) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    Status s = base_->WriteAt(offset, data, n);
    if (!s.ok()) return s;
    stats_->RecordWrite(n);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (offset != next_expected_offset_) throttler_->ChargeSeek();
      next_expected_offset_ = offset + n;
    }
    throttler_->ChargeBytes(n);
    return s;
  }
  Status Flush() override {
    // A durability flush forces the device's write cache out: model it as
    // one seek, and reset the head position so the next positional write
    // pays its own seek like the first write after open does.
    {
      std::lock_guard<std::mutex> lock(mu_);
      next_expected_offset_ = ~0ull;
    }
    throttler_->ChargeSeek();
    return base_->Flush();
  }
  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomWriteFile> base_;
  Throttler* throttler_;
  IoStats* stats_;
  std::mutex mu_;
  uint64_t next_expected_offset_ = 0;
};

class ThrottledEnv : public Env {
 public:
  ThrottledEnv(Env* base, DeviceProfile profile)
      : base_(base), throttler_(profile) {}

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    std::unique_ptr<SequentialFile> f;
    NX_RETURN_NOT_OK(base_->NewSequentialFile(path, &f));
    throttler_.ChargeSeek();  // open positions the head
    *out = std::make_unique<ThrottledSequentialFile>(std::move(f), &throttler_,
                                                     stats());
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    std::unique_ptr<RandomAccessFile> f;
    NX_RETURN_NOT_OK(base_->NewRandomAccessFile(path, &f));
    *out = std::make_unique<ThrottledRandomAccessFile>(std::move(f),
                                                       &throttler_, stats());
    return Status::OK();
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    std::unique_ptr<WritableFile> f;
    NX_RETURN_NOT_OK(base_->NewWritableFile(path, &f));
    throttler_.ChargeSeek();
    *out = std::make_unique<ThrottledWritableFile>(std::move(f), &throttler_,
                                                   stats());
    return Status::OK();
  }

  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override {
    std::unique_ptr<RandomWriteFile> f;
    NX_RETURN_NOT_OK(base_->NewRandomWriteFile(path, &f));
    *out = std::make_unique<ThrottledRandomWriteFile>(std::move(f),
                                                      &throttler_, stats());
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RemoveDirRecursively(const std::string& path) override {
    return base_->RemoveDirRecursively(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    return base_->ListDir(path, names);
  }

 private:
  Env* base_;
  Throttler throttler_;
};

}  // namespace

std::unique_ptr<Env> NewThrottledEnv(Env* base, DeviceProfile profile) {
  return std::make_unique<ThrottledEnv>(base, profile);
}

}  // namespace nxgraph
