// DirectIOEnv: the kDirect backend — positional reads and writes bypass the
// kernel page cache with O_DIRECT, so the depth-vs-throughput tradeoff of
// the prefetch/write-behind pipelines is decided by NXgraph's own windows
// instead of being absorbed by kernel readahead and write-back caching.
//
// O_DIRECT constrains every transfer: file offset, length and user buffer
// must all be aligned (kDirectIOAlignment covers every mainstream
// filesystem's requirement). The engine's logical offsets are NOT aligned —
// sub-shard rows, interval segments and hub segments start wherever the
// layout puts them — so this Env preserves exact logical offsets/lengths by
// padding:
//
//   ReadAt   — reads the aligned span covering [offset, offset + n) into a
//              pooled aligned buffer and copies the logical range out. Short
//              reads at EOF are clamped to the real file size, exactly like
//              the buffered contract.
//   WriteAt  — splits the range at alignment boundaries: the aligned middle
//              is staged through a pooled aligned buffer and written
//              O_DIRECT; the unaligned head and tail go through a second,
//              buffered fd on the same file. Head/middle/tail are disjoint
//              and alignment == the page size, so a buffered region never
//              shares a page with a direct region — concurrent disjoint
//              WriteAts stay safe (no read-modify-write of shared blocks),
//              and Linux keeps the page cache coherent across the two fds
//              (direct reads flush dirty pages in range first; direct writes
//              invalidate the range).
//
// A filesystem that refuses O_DIRECT (tmpfs, some network mounts) fails the
// open with EINVAL; this Env then falls back to the buffered implementation
// for that file — per file, not per Env, so a scratch directory on tmpfs
// degrades gracefully while the store on ext4 still runs direct.
//
// Append/sequential paths (manifest, prep output, checkpoint records) stay
// buffered via the PosixFsEnv base: they are small, cold, and the
// write-temp + Sync + rename commit protocol depends on buffered semantics.
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

#include "src/io/posix_base.h"

namespace nxgraph {
namespace {

using internal::PosixError;
using internal::PosixOpenError;
using internal::PReadFull;
using internal::PWriteFull;

constexpr uint64_t kAlign = kDirectIOAlignment;
// Largest single O_DIRECT transfer staged through one pooled buffer; reads
// and writes both chunk larger ranges at this size, so no pooled buffer
// ever exceeds it and the pool's worst-case footprint stays bounded at
// kMaxPooled * kMaxStagingBytes (32 MiB) regardless of row sizes.
constexpr size_t kMaxStagingBytes = 4u << 20;

uint64_t AlignDown(uint64_t v) { return v & ~(kAlign - 1); }
uint64_t AlignUp(uint64_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

/// \brief Pool of alignment-compliant staging buffers, shared by every file
/// of one DirectIOEnv. Buffers are reused across transfers (an O_DIRECT
/// allocation per read would dominate small transfers) and the pool keeps at
/// most kMaxPooled buffers — concurrent demand beyond that allocates and
/// frees transient buffers instead of blocking the I/O threads.
class AlignedBufferPool {
 public:
  ~AlignedBufferPool() {
    for (const Buf& b : free_) std::free(b.data);
  }

  struct Lease {
    char* data = nullptr;
    size_t capacity = 0;
    AlignedBufferPool* pool = nullptr;

    Lease() = default;
    Lease(char* d, size_t c, AlignedBufferPool* p)
        : data(d), capacity(c), pool(p) {}
    Lease(Lease&& o) noexcept
        : data(o.data), capacity(o.capacity), pool(o.pool) {
      o.data = nullptr;
    }
    Lease& operator=(Lease&&) = delete;
    Lease(const Lease&) = delete;
    ~Lease() {
      if (data != nullptr) pool->Release(data, capacity);
    }
  };

  /// Returns an aligned buffer of at least `n` bytes (n rounded up to the
  /// alignment), or a null lease when allocation fails. Best fit: a 4 KiB
  /// head/tail transfer must not pin a multi-MiB buffer a concurrent large
  /// read could have reused.
  Lease Acquire(size_t n) {
    const size_t need = static_cast<size_t>(AlignUp(n));
    {
      std::lock_guard<std::mutex> lock(mu_);
      size_t best = free_.size();
      for (size_t k = 0; k < free_.size(); ++k) {
        if (free_[k].capacity >= need &&
            (best == free_.size() || free_[k].capacity < free_[best].capacity)) {
          best = k;
        }
      }
      if (best != free_.size()) {
        Buf b = free_[best];
        free_.erase(free_.begin() + static_cast<ptrdiff_t>(best));
        return Lease(b.data, b.capacity, this);
      }
    }
    void* p = std::aligned_alloc(kAlign, need);
    if (p == nullptr) return Lease();
    return Lease(static_cast<char*>(p), need, this);
  }

 private:
  struct Buf {
    char* data;
    size_t capacity;
  };
  static constexpr size_t kMaxPooled = 8;

  void Release(char* data, size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // Retain only staging-sized buffers: an oversized one (a caller that
      // bypassed chunking) must not live in the pool for the Env's
      // lifetime, invisible to the engine's memory accounting.
      if (free_.size() < kMaxPooled && capacity <= kMaxStagingBytes) {
        free_.push_back({data, capacity});
        return;
      }
    }
    std::free(data);
  }

  std::mutex mu_;
  std::vector<Buf> free_;
};

class DirectRandomAccessFile : public RandomAccessFile {
 public:
  DirectRandomAccessFile(int fd, AlignedBufferPool* pool, IoStats* stats)
      : fd_(fd), pool_(pool), stats_(stats) {}
  ~DirectRandomAccessFile() override { ::close(fd_); }

  Status ReadAt(uint64_t offset, size_t n, void* buf,
                size_t* bytes_read) const override {
    *bytes_read = 0;
    if (n == 0) return Status::OK();
    const uint64_t end = offset + n;
    AlignedBufferPool::Lease stage = pool_->Acquire(static_cast<size_t>(
        std::min<uint64_t>(AlignUp(end) - AlignDown(offset),
                           kMaxStagingBytes)));
    if (stage.data == nullptr) {
      return Status::IOError("direct read: aligned buffer allocation failed");
    }
    // Chunked at the staging size, so a multi-MiB row read never grows the
    // pool beyond kMaxStagingBytes per buffer.
    char* dst = static_cast<char*>(buf);
    uint64_t pos = offset;
    while (pos < end) {
      const uint64_t span_begin = AlignDown(pos);
      const uint64_t span_end =
          std::min<uint64_t>(AlignUp(end), span_begin + stage.capacity);
      const size_t span = static_cast<size_t>(span_end - span_begin);
      size_t got = 0;
      NX_RETURN_NOT_OK(PReadFull(fd_, span_begin, span, stage.data, &got));
      // The padded span may end past EOF; clamp the logical range to what
      // the device actually returned so short reads signal EOF exactly
      // like the buffered contract.
      const size_t head = static_cast<size_t>(pos - span_begin);
      const size_t avail = got > head ? got - head : 0;
      const size_t want = static_cast<size_t>(
          std::min<uint64_t>(end - pos, avail));
      std::memcpy(dst + (pos - offset), stage.data + head, want);
      pos += want;
      *bytes_read += want;
      if (got < span) break;  // EOF inside this chunk
    }
    stats_->RecordRead(*bytes_read);
    return Status::OK();
  }

 private:
  int fd_;
  AlignedBufferPool* pool_;
  IoStats* stats_;
};

class DirectRandomWriteFile : public RandomWriteFile {
 public:
  DirectRandomWriteFile(int direct_fd, int buffered_fd,
                        AlignedBufferPool* pool, IoStats* stats)
      : direct_fd_(direct_fd),
        buffered_fd_(buffered_fd),
        pool_(pool),
        stats_(stats) {}
  ~DirectRandomWriteFile() override {
    if (direct_fd_ >= 0) ::close(direct_fd_);
    if (buffered_fd_ >= 0) ::close(buffered_fd_);
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    stats_->RecordWrite(n);
    if (n == 0) return Status::OK();
    const char* src = static_cast<const char*>(data);
    const uint64_t mid_begin = AlignUp(offset);
    const uint64_t mid_end = AlignDown(offset + n);
    if (mid_begin >= mid_end) {
      // The whole range lives inside two alignment blocks: not worth a
      // staged direct transfer, and a sub-block direct write would need a
      // read-modify-write that races concurrent neighbors. Buffered pwrite
      // is byte-granular and safe.
      return PWriteFull(buffered_fd_, offset, src, n);
    }
    if (offset < mid_begin) {
      NX_RETURN_NOT_OK(PWriteFull(buffered_fd_, offset, src,
                                  static_cast<size_t>(mid_begin - offset)));
    }
    // Aligned middle: staged through an aligned buffer in chunks (the
    // caller's buffer has arbitrary alignment, so a copy is unavoidable).
    AlignedBufferPool::Lease stage =
        pool_->Acquire(std::min<uint64_t>(mid_end - mid_begin,
                                          kMaxStagingBytes));
    if (stage.data == nullptr) {
      return Status::IOError("direct write: aligned buffer allocation failed");
    }
    uint64_t pos = mid_begin;
    while (pos < mid_end) {
      const size_t chunk = static_cast<size_t>(
          std::min<uint64_t>(mid_end - pos, stage.capacity));
      std::memcpy(stage.data, src + (pos - offset), chunk);
      NX_RETURN_NOT_OK(PWriteFull(direct_fd_, pos, stage.data, chunk));
      pos += chunk;
    }
    if (mid_end < offset + n) {
      NX_RETURN_NOT_OK(PWriteFull(buffered_fd_, mid_end, src + (mid_end - offset),
                                  static_cast<size_t>(offset + n - mid_end)));
    }
    return Status::OK();
  }

  Status Flush() override {
    // One fdatasync covers both fds — they share the inode; what it must
    // land is the buffered head/tail pages (the direct writes are already
    // past the page cache, but fdatasync also covers the device cache).
    if (::fdatasync(buffered_fd_) < 0) return PosixError("fdatasync", errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(buffered_fd_, static_cast<off_t>(size)) < 0) {
      return PosixError("ftruncate", errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (buffered_fd_ < 0) return Status::OK();
    Status s;
    if (::close(buffered_fd_) < 0) s = PosixError("close", errno);
    buffered_fd_ = -1;
    if (direct_fd_ >= 0 && ::close(direct_fd_) < 0 && s.ok()) {
      s = PosixError("close", errno);
    }
    direct_fd_ = -1;
    return s;
  }

 private:
  int direct_fd_;
  int buffered_fd_;
  AlignedBufferPool* pool_;
  IoStats* stats_;
};

class DirectIOEnv : public internal::PosixFsEnv {
 public:
  explicit DirectIOEnv(bool refuse_o_direct = false)
      : refuse_o_direct_(refuse_o_direct) {}

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    int fd = refuse_o_direct_
                 ? -1
                 : ::open(path.c_str(), O_RDONLY | O_DIRECT | O_CLOEXEC);
    if (fd < 0) {
      if (!refuse_o_direct_ && errno == ENOENT) return PosixOpenError(path);
      // O_DIRECT refused (tmpfs etc.): buffered fallback for this file.
      return PosixFsEnv::NewRandomAccessFile(path, out);
    }
    *out = std::make_unique<DirectRandomAccessFile>(fd, &pool_, stats());
    return Status::OK();
  }

  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override {
    int direct_fd =
        refuse_o_direct_
            ? -1
            : ::open(path.c_str(), O_RDWR | O_CREAT | O_DIRECT | O_CLOEXEC,
                     0644);
    if (direct_fd < 0) {
      if (!refuse_o_direct_ && errno == ENOENT) return PosixOpenError(path);
      return PosixFsEnv::NewRandomWriteFile(path, out);
    }
    int buffered_fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
    if (buffered_fd < 0) {
      Status s = PosixOpenError(path);
      ::close(direct_fd);
      return s;
    }
    *out = std::make_unique<DirectRandomWriteFile>(direct_fd, buffered_fd,
                                                   &pool_, stats());
    return Status::OK();
  }

 private:
  const bool refuse_o_direct_;
  AlignedBufferPool pool_;
};

}  // namespace

namespace internal {

std::unique_ptr<Env> NewDirectIOEnvRefusingODirectForTest() {
  return std::make_unique<DirectIOEnv>(/*refuse_o_direct=*/true);
}

}  // namespace internal

bool DirectIOSupported(const std::string& dir) {
  const std::string probe = dir + "/.nx_direct_probe";
  int fd = ::open(probe.c_str(), O_RDWR | O_CREAT | O_DIRECT | O_CLOEXEC, 0644);
  const bool supported = fd >= 0;
  if (fd >= 0) ::close(fd);
  ::unlink(probe.c_str());
  return supported;
}

std::unique_ptr<Env> NewDirectIOEnv() { return std::make_unique<DirectIOEnv>(); }

}  // namespace nxgraph
