#include "src/io/fault_env.h"

#include <utility>

namespace nxgraph {

namespace {

// Reads the live (base) content of `path`; missing files read as absent.
Result<std::string> ReadBase(Env* base, const std::string& path) {
  std::string data;
  NX_RETURN_NOT_OK(ReadFileToString(base, path, &data));
  return data;
}

}  // namespace

// ---- file wrappers ---------------------------------------------------------

class FaultWritableFile : public WritableFile {
 public:
  FaultWritableFile(FaultInjectionEnv* env, std::string path,
                    std::unique_ptr<WritableFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status Append(const void* data, size_t n) override {
    switch (env_->CheckMutation("Append(" + path_ + ")")) {
      case FaultInjectionEnv::Verdict::kDead:
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kTear:
        // The process died mid-write: a prefix reaches the page cache.
        if (n > 1) {
          base_->Append(data, n / 2);
          base_->Flush();
        }
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kProceed:
        return base_->Append(data, n);
    }
    return Status::OK();
  }

  Status Flush() override {
    // Push-to-page-cache only; the base Env already sees every Append, so
    // this neither counts as a crash point nor changes the durable view.
    return base_->Flush();
  }

  Status Sync() override {
    switch (env_->CheckMutation("Sync(" + path_ + ")")) {
      case FaultInjectionEnv::Verdict::kDead:
      case FaultInjectionEnv::Verdict::kTear:
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kProceed:
        break;
    }
    NX_RETURN_NOT_OK(base_->Flush());
    NX_RETURN_NOT_OK(base_->Sync());
    return env_->MarkDurable(path_);
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> base_;
};

class FaultRandomWriteFile : public RandomWriteFile {
 public:
  FaultRandomWriteFile(FaultInjectionEnv* env, std::string path,
                       std::unique_ptr<RandomWriteFile> base)
      : env_(env), path_(std::move(path)), base_(std::move(base)) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    switch (env_->CheckMutation("WriteAt(" + path_ + ")")) {
      case FaultInjectionEnv::Verdict::kDead:
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kTear:
        if (n > 1) base_->WriteAt(offset, data, n / 2);
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kProceed:
        return base_->WriteAt(offset, data, n);
    }
    return Status::OK();
  }

  // RandomWriteFile::Flush is the durability barrier (fdatasync), so it is
  // both a crash point and the moment the file's content becomes durable.
  Status Flush() override {
    switch (env_->CheckMutation("Flush(" + path_ + ")")) {
      case FaultInjectionEnv::Verdict::kDead:
      case FaultInjectionEnv::Verdict::kTear:
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kProceed:
        break;
    }
    NX_RETURN_NOT_OK(base_->Flush());
    return env_->MarkDurable(path_);
  }

  Status Truncate(uint64_t size) override {
    switch (env_->CheckMutation("Truncate(" + path_ + ")")) {
      case FaultInjectionEnv::Verdict::kDead:
      case FaultInjectionEnv::Verdict::kTear:
        return FaultInjectionEnv::DeadError();
      case FaultInjectionEnv::Verdict::kProceed:
        return base_->Truncate(size);
    }
    return Status::OK();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectionEnv* env_;
  std::string path_;
  std::unique_ptr<RandomWriteFile> base_;
};

// ---- crash controls --------------------------------------------------------

void FaultInjectionEnv::SetKillSwitch(uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  kill_after_ = static_cast<int64_t>(n);
  dead_ = false;
  killed_op_.clear();
}

bool FaultInjectionEnv::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

std::string FaultInjectionEnv::killed_op() const {
  std::lock_guard<std::mutex> lock(mu_);
  return killed_op_;
}

uint64_t FaultInjectionEnv::mutation_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return mutations_;
}

FaultInjectionEnv::Verdict FaultInjectionEnv::CheckMutation(
    const std::string& desc) {
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_) return Verdict::kDead;
  ++mutations_;
  if (kill_after_ < 0) return Verdict::kProceed;
  if (kill_after_ == 0) {
    dead_ = true;
    killed_op_ = desc;
    return Verdict::kTear;
  }
  --kill_after_;
  return Verdict::kProceed;
}

Status FaultInjectionEnv::MarkDurable(const std::string& path) {
  NX_ASSIGN_OR_RETURN(std::string content, ReadBase(base_, path));
  std::lock_guard<std::mutex> lock(mu_);
  durable_[path] = std::move(content);
  return Status::OK();
}

Status FaultInjectionEnv::CrashAndRecover() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& path : tracked_) {
    auto it = durable_.find(path);
    if (it == durable_.end()) {
      NX_RETURN_NOT_OK(base_->RemoveFile(path));
      continue;
    }
    std::unique_ptr<WritableFile> f;
    NX_RETURN_NOT_OK(base_->NewWritableFile(path, &f));
    NX_RETURN_NOT_OK(f->Append(it->second.data(), it->second.size()));
    NX_RETURN_NOT_OK(f->Close());
  }
  dead_ = false;
  kill_after_ = -1;
  return Status::OK();
}

Status FaultInjectionEnv::SyncAllTracked() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::string& path : tracked_) {
    auto content = ReadBase(base_, path);
    if (content.ok()) {
      durable_[path] = std::move(*content);
    } else if (content.status().IsNotFound()) {
      durable_.erase(path);
    } else {
      return content.status();
    }
  }
  return Status::OK();
}

// ---- Env interface ---------------------------------------------------------

Status FaultInjectionEnv::NewSequentialFile(
    const std::string& path, std::unique_ptr<SequentialFile>* out) {
  return base_->NewSequentialFile(path, out);
}

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* out) {
  return base_->NewRandomAccessFile(path, out);
}

Status FaultInjectionEnv::NewWritableFile(const std::string& path,
                                          std::unique_ptr<WritableFile>* out) {
  // Creation-with-truncation is a journaled metadata op: durable once it
  // returns, and also a crash point of its own.
  switch (CheckMutation("Create(" + path + ")")) {
    case Verdict::kDead:
    case Verdict::kTear:
      return DeadError();
    case Verdict::kProceed:
      break;
  }
  std::unique_ptr<WritableFile> base_file;
  NX_RETURN_NOT_OK(base_->NewWritableFile(path, &base_file));
  {
    std::lock_guard<std::mutex> lock(mu_);
    tracked_.insert(path);
    durable_[path].clear();
  }
  *out = std::make_unique<FaultWritableFile>(this, path, std::move(base_file));
  return Status::OK();
}

Status FaultInjectionEnv::NewRandomWriteFile(
    const std::string& path, std::unique_ptr<RandomWriteFile>* out) {
  std::unique_ptr<RandomWriteFile> base_file;
  NX_RETURN_NOT_OK(base_->NewRandomWriteFile(path, &base_file));
  {
    // Opening without truncation mutates nothing; an existing untracked
    // file's current content models data synced before the crash window.
    std::lock_guard<std::mutex> lock(mu_);
    if (tracked_.insert(path).second && durable_.find(path) == durable_.end()) {
      auto content = ReadBase(base_, path);
      durable_[path] = content.ok() ? std::move(*content) : std::string();
    }
  }
  *out =
      std::make_unique<FaultRandomWriteFile>(this, path, std::move(base_file));
  return Status::OK();
}

bool FaultInjectionEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FaultInjectionEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FaultInjectionEnv::CreateDirs(const std::string& path) {
  return base_->CreateDirs(path);
}

Status FaultInjectionEnv::RemoveFile(const std::string& path) {
  switch (CheckMutation("Remove(" + path + ")")) {
    case Verdict::kDead:
    case Verdict::kTear:
      return DeadError();
    case Verdict::kProceed:
      break;
  }
  NX_RETURN_NOT_OK(base_->RemoveFile(path));
  std::lock_guard<std::mutex> lock(mu_);
  durable_.erase(path);
  tracked_.insert(path);  // recovery must keep it gone
  return Status::OK();
}

Status FaultInjectionEnv::RemoveDirRecursively(const std::string& path) {
  // Test-harness cleanup, not part of any commit protocol: applied to both
  // views without arming a crash point.
  NX_RETURN_NOT_OK(base_->RemoveDirRecursively(path));
  std::string prefix = path;
  if (!prefix.empty() && prefix.back() != '/') prefix += '/';
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = durable_.begin(); it != durable_.end();) {
    it = it->first.rfind(prefix, 0) == 0 ? durable_.erase(it) : std::next(it);
  }
  for (auto it = tracked_.begin(); it != tracked_.end();) {
    it = it->rfind(prefix, 0) == 0 ? tracked_.erase(it) : std::next(it);
  }
  return Status::OK();
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  switch (CheckMutation("Rename(" + from + " -> " + to + ")")) {
    case Verdict::kDead:
    case Verdict::kTear:
      // Rename is atomic: it either fully happened or not at all. The
      // crash strikes before the journal commit, so it did not.
      return DeadError();
    case Verdict::kProceed:
      break;
  }
  NX_RETURN_NOT_OK(base_->RenameFile(from, to));
  std::lock_guard<std::mutex> lock(mu_);
  tracked_.insert(from);
  tracked_.insert(to);
  auto it = durable_.find(from);
  if (it != durable_.end()) {
    // The journaled rename carries the synced content to the new name.
    durable_[to] = std::move(it->second);
    durable_.erase(it);
  } else {
    // `to` now references an inode whose content was never synced: after
    // a crash the name is lost along with the data.
    durable_.erase(to);
  }
  return Status::OK();
}

Status FaultInjectionEnv::ListDir(const std::string& path,
                                  std::vector<std::string>* names) {
  return base_->ListDir(path, names);
}

}  // namespace nxgraph
