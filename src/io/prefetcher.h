// Asynchronous prefetching I/O pipeline (paper §III-C/§IV: the
// Destination-Sorted Sub-Shard layout makes every out-of-core phase a
// forward scan, so disk reads can run ahead of the consumer and overlap
// with computation).
//
// The core `Prefetcher` manages a FIFO window of two-stage jobs:
//
//   io stage     — the raw disk read; runs on a dedicated I/O pool so the
//                  device streams continuously while workers compute;
//   decode stage — optional blob decode; submitted to the compute pool the
//                  moment the read lands, keeping I/O threads read-only.
//
// At most `depth` jobs are issued-but-unconsumed at any time (double
// buffering at depth 1, triple at 2, ...), which bounds the transient
// memory to depth in-flight rows. `depth == 0` degrades to fully
// synchronous consumption — the exact behavior of the pre-pipeline engine
// and the baseline of bench_prefetch.
//
// Consumption is strictly FIFO (`Next()` returns results in push order), so
// engines keep their deterministic row-major accumulation order and results
// are bit-identical to the synchronous path.
#ifndef NXGRAPH_IO_PREFETCHER_H_
#define NXGRAPH_IO_PREFETCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <type_traits>
#include <utility>

#include "src/util/result.h"
#include "src/util/retry.h"
#include "src/util/status.h"
#include "src/util/thread_pool.h"

namespace nxgraph {

/// \brief Type-erased bounded-depth read-ahead window. Use the typed
/// PrefetchStream<T> wrapper unless you only need statuses.
///
/// Thread contract: Push/Next/Cancel may be called from one consumer thread;
/// job stages run on the pools. Jobs must not touch the Prefetcher.
class Prefetcher {
 public:
  struct Job {
    /// Raw read; runs on the I/O pool (or inline when depth == 0).
    std::function<Status()> io;
    /// Optional decode; runs on the compute pool once `io` succeeds. With a
    /// null compute pool it runs on the I/O thread.
    std::function<Status()> decode;
  };

  /// Neither pool is owned. `depth == 0` means synchronous: stages run
  /// inline in Next() and the pools are never used. The io stage of every
  /// job runs under `retry`: transient failures (retryable Status) are
  /// retried with backoff before the job's status is surfaced — io
  /// closures must therefore be idempotent (all of the engine's are: they
  /// read into owned buffers). Decode stages are never retried here;
  /// checksum re-reads are the store's job. `counters` (not owned, may be
  /// null) tallies the retries.
  ///
  /// `cancel` (not owned, may be null, must outlive the stream) makes the
  /// window cooperative: once the token fires, no further reads are
  /// issued, unissued jobs complete with the token's status, and retry
  /// backoffs abort mid-sleep. In-flight reads still run to completion —
  /// a read into an owned buffer is bounded — so the destructor's drain
  /// barrier is never longer than one outstanding window.
  Prefetcher(ThreadPool* io_pool, ThreadPool* compute_pool, size_t depth,
             RetryPolicy retry = {}, RetryCounters* counters = nullptr,
             const CancelToken* cancel = nullptr);

  /// Cancels queued jobs and blocks until in-flight stages finish.
  ~Prefetcher();
  NX_DISALLOW_COPY(Prefetcher);

  /// Appends a job and (depth permitting) issues reads immediately.
  void Push(Job job);

  /// Blocks until the oldest unconsumed job finishes; returns its status.
  /// Calling Next() more times than Push() is an InvalidArgument.
  Status Next();

  /// After Cancel(), unstarted jobs complete as Aborted; in-flight jobs
  /// finish normally. Next() keeps draining in FIFO order.
  void Cancel();

  /// Jobs pushed but not yet consumed.
  size_t pending() const;

  /// Total wall-clock time Next() spent blocked — the residual I/O latency
  /// the pipeline failed to hide (plus all read time when depth == 0).
  double io_wait_seconds() const {
    return static_cast<double>(io_wait_micros_.load(std::memory_order_relaxed)) /
           1e6;
  }

 private:
  enum class State { kQueued, kIssued, kDone };

  struct Slot {
    Job job;
    State state = State::kQueued;
    Status status;
  };

  /// Moves queued slots into the window and submits their reads. Called
  /// without mu_ held (Submit may run the job inline on 0-thread pools).
  void Issue();
  void RunIo(std::shared_ptr<Slot> slot);
  void RunDecode(std::shared_ptr<Slot> slot);
  void Finish(const std::shared_ptr<Slot>& slot, Status s);
  void TaskDone();
  Status RunInline(const std::shared_ptr<Slot>& slot);

  /// True once the external token (if any) has fired. Lock-free.
  bool TokenCancelled() const {
    return cancel_ != nullptr && cancel_->cancelled();
  }

  ThreadPool* io_pool_;
  ThreadPool* compute_pool_;
  const size_t depth_;
  const RetryPolicy retry_;
  RetryCounters* counters_;       // not owned; may be null
  const CancelToken* cancel_;     // not owned; may be null

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Slot>> queued_;    // pushed, not yet issued
  std::deque<std::shared_ptr<Slot>> inflight_;  // issued, not yet consumed
  size_t outstanding_tasks_ = 0;                // pool closures referencing this
  bool cancelled_ = false;

  std::atomic<int64_t> io_wait_micros_{0};
};

namespace internal {
template <typename R>
struct ResultValue;
template <typename V>
struct ResultValue<Result<V>> {
  using type = V;
};
}  // namespace internal

/// \brief Typed FIFO prefetch stream over a Prefetcher.
///
///   PrefetchStream<std::vector<SubShard>> rows(io_pool, pool, depth);
///   for (row : schedule) rows.PushStaged(read_fn, decode_fn);
///   for (row : schedule) NX_ASSIGN_OR_RETURN(auto r, rows.Next());
template <typename T>
class PrefetchStream {
 public:
  PrefetchStream(ThreadPool* io_pool, ThreadPool* compute_pool, size_t depth,
                 RetryPolicy retry = {}, RetryCounters* counters = nullptr,
                 const CancelToken* cancel = nullptr)
      : core_(io_pool, compute_pool, depth, retry, counters, cancel) {}

  /// Single-stage job: the whole load (read + any decode) runs on the I/O
  /// pool. Use for raw reads with no decode work worth offloading.
  template <typename LoadFn>
  void Push(LoadFn load) {
    static_assert(
        std::is_same_v<std::invoke_result_t<LoadFn>, Result<T>>,
        "load must return Result<T>");
    auto cell = std::make_shared<std::optional<T>>();
    Prefetcher::Job job;
    job.io = [load = std::move(load), cell]() -> Status {
      Result<T> r = load();
      if (!r.ok()) return r.status();
      cell->emplace(std::move(r).value());
      return Status::OK();
    };
    cells_.push_back(std::move(cell));
    core_.Push(std::move(job));
  }

  /// Two-stage job: `io` produces the raw bytes on the I/O pool, `decode`
  /// turns them into T on the compute pool.
  template <typename IoFn, typename DecodeFn>
  void PushStaged(IoFn io, DecodeFn decode) {
    using Raw =
        typename internal::ResultValue<std::invoke_result_t<IoFn>>::type;
    static_assert(
        std::is_same_v<std::invoke_result_t<DecodeFn, Raw&&>, Result<T>>,
        "decode must map the io stage's value to Result<T>");
    auto cell = std::make_shared<std::optional<T>>();
    auto raw = std::make_shared<std::optional<Raw>>();
    Prefetcher::Job job;
    job.io = [io = std::move(io), raw]() -> Status {
      Result<Raw> r = io();
      if (!r.ok()) return r.status();
      raw->emplace(std::move(r).value());
      return Status::OK();
    };
    job.decode = [decode = std::move(decode), raw, cell]() -> Status {
      Result<T> r = decode(std::move(**raw));
      raw->reset();  // release the raw buffer before the consumer sees T
      if (!r.ok()) return r.status();
      cell->emplace(std::move(r).value());
      return Status::OK();
    };
    cells_.push_back(std::move(cell));
    core_.Push(std::move(job));
  }

  /// Blocks for the oldest unconsumed job and returns its value or error.
  Result<T> Next() {
    if (cells_.empty()) {
      return Status::InvalidArgument("PrefetchStream::Next past the last job");
    }
    Status s = core_.Next();
    auto cell = std::move(cells_.front());
    cells_.pop_front();
    if (!s.ok()) return s;
    return std::move(**cell);
  }

  void Cancel() { core_.Cancel(); }
  size_t pending() const { return core_.pending(); }
  double io_wait_seconds() const { return core_.io_wait_seconds(); }

 private:
  Prefetcher core_;
  std::deque<std::shared_ptr<std::optional<T>>> cells_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_IO_PREFETCHER_H_
