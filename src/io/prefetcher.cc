#include "src/io/prefetcher.h"

#include "src/util/timer.h"

namespace nxgraph {

Prefetcher::Prefetcher(ThreadPool* io_pool, ThreadPool* compute_pool,
                       size_t depth, RetryPolicy retry,
                       RetryCounters* counters, const CancelToken* cancel)
    : io_pool_(io_pool),
      compute_pool_(compute_pool),
      depth_(depth),
      retry_(retry),
      counters_(counters),
      cancel_(cancel) {}

Prefetcher::~Prefetcher() {
  Cancel();
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return outstanding_tasks_ == 0; });
}

void Prefetcher::Push(Job job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto slot = std::make_shared<Slot>();
    slot->job = std::move(job);
    queued_.push_back(std::move(slot));
  }
  Issue();
}

void Prefetcher::Cancel() {
  std::lock_guard<std::mutex> lock(mu_);
  cancelled_ = true;
}

size_t Prefetcher::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_.size() + inflight_.size();
}

void Prefetcher::Issue() {
  if (depth_ == 0) return;  // synchronous mode: Next() runs jobs inline
  for (;;) {
    // Token check outside mu_: a lazy deadline expiry may run cancellation
    // callbacks, which must never happen under this lock.
    const bool token_cancelled = TokenCancelled();
    std::shared_ptr<Slot> slot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (cancelled_ || token_cancelled || queued_.empty() ||
          inflight_.size() >= depth_) {
        return;
      }
      slot = queued_.front();
      queued_.pop_front();
      slot->state = State::kIssued;
      inflight_.push_back(slot);
      ++outstanding_tasks_;
    }
    // Outside mu_: a 0-thread pool runs the closure inline right here.
    io_pool_->Submit([this, slot] { RunIo(std::move(slot)); });
  }
}

void Prefetcher::RunIo(std::shared_ptr<Slot> slot) {
  bool cancelled;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cancelled = cancelled_;
  }
  Status s;
  if (cancelled) {
    s = Status::Aborted("prefetch cancelled");
  } else {
    // RunWithRetry observes the token: cancelled before the first attempt
    // or mid-backoff, the job surfaces the token's status instead of
    // spending the query's corpse on I/O.
    s = RunWithRetry(retry_, counters_, [&] { return slot->job.io(); },
                     cancel_);
  }
  if (s.ok() && slot->job.decode && !cancelled) {
    if (compute_pool_ != nullptr) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++outstanding_tasks_;
      }
      compute_pool_->Submit(
          [this, slot = std::move(slot)] { RunDecode(std::move(slot)); });
      TaskDone();
      return;
    }
    s = slot->job.decode();
  }
  Finish(slot, std::move(s));
  TaskDone();
}

void Prefetcher::RunDecode(std::shared_ptr<Slot> slot) {
  Finish(slot, slot->job.decode());
  TaskDone();
}

void Prefetcher::Finish(const std::shared_ptr<Slot>& slot, Status s) {
  std::lock_guard<std::mutex> lock(mu_);
  slot->status = std::move(s);
  slot->state = State::kDone;
  cv_.notify_all();
}

void Prefetcher::TaskDone() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--outstanding_tasks_ == 0) cv_.notify_all();
}

Status Prefetcher::RunInline(const std::shared_ptr<Slot>& slot) {
  Status s = RunWithRetry(retry_, counters_, [&] { return slot->job.io(); },
                          cancel_);
  if (s.ok() && slot->job.decode) s = slot->job.decode();
  return s;
}

Status Prefetcher::Next() {
  Timer wait_timer;
  if (depth_ == 0) {
    std::shared_ptr<Slot> slot;
    bool cancelled;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queued_.empty()) {
        return Status::InvalidArgument("Prefetcher::Next past the last job");
      }
      slot = queued_.front();
      queued_.pop_front();
      cancelled = cancelled_;
    }
    Status s = cancelled ? Status::Aborted("prefetch cancelled")
                         : RunInline(slot);
    io_wait_micros_.fetch_add(wait_timer.ElapsedMicros(),
                              std::memory_order_relaxed);
    return s;
  }

  Issue();  // make sure the head job is in flight before blocking on it
  std::shared_ptr<Slot> slot;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (inflight_.empty()) {
      if (queued_.empty()) {
        return Status::InvalidArgument("Prefetcher::Next past the last job");
      }
      // Cancelled (explicitly or via token) before the head was issued.
      queued_.pop_front();
      return cancelled_ ? Status::Aborted("prefetch cancelled")
                        : cancel_->ToStatus();
    }
    slot = inflight_.front();
    cv_.wait(lock, [&] { return slot->state == State::kDone; });
    inflight_.pop_front();
  }
  Issue();  // refill the window with the freed slot
  io_wait_micros_.fetch_add(wait_timer.ElapsedMicros(),
                            std::memory_order_relaxed);
  return slot->status;
}

}  // namespace nxgraph
