// FaultInjectionEnv: a crash-simulation Env wrapper (RocksDB's
// FaultInjectionTestEnv idiom) powering the checkpoint/restart crash-matrix
// tests.
//
// All operations pass through to the base Env — which plays the role of the
// page cache plus the live filesystem — while this wrapper separately
// tracks, per path, the content that was durable at the last durability
// barrier (WritableFile::Sync, RandomWriteFile::Flush): the state that
// would survive a power cut. Metadata operations (create, truncate-on-open,
// rename, remove) are modelled as journaled — durable once they return —
// matching the contract documented on Env; file *contents* are only as
// durable as their last sync, so renaming a never-synced temp file loses
// the data in a crash exactly as env.h warns.
//
// Two controls drive crash tests:
//
//  - SetKillSwitch(n): the first `n` mutating operations (Append, WriteAt,
//    Truncate, Flush, Sync, Rename, Remove) succeed; the (n+1)-th applies
//    only a torn prefix (for data writes) and fails with IOError, and every
//    later mutating op fails too — from the disk's point of view the
//    process is dead. Reads keep succeeding so the dying run can flail the
//    way a real process does between its last completed write and exit.
//  - CrashAndRecover(): rewinds every tracked file on the base Env to the
//    durable view — synced content only. A file created but never synced
//    comes back EMPTY (its creation is journaled metadata, its content is
//    not); a name whose last rename carried never-synced content comes
//    back missing (the journaled rename points at an inode whose data was
//    lost). The kill switch is disarmed so the next incarnation of the
//    workload can reopen the "disk" and resume.
#ifndef NXGRAPH_IO_FAULT_ENV_H_
#define NXGRAPH_IO_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "src/io/env.h"
#include "src/util/macros.h"

namespace nxgraph {

/// \brief Env decorator injecting crash points between durability barriers.
///
/// `base` is not owned and must outlive this Env and every file object it
/// creates. Thread-safe: the engine's write-behind pool may mutate files
/// concurrently with the driver thread.
///
/// Files that already exist on `base` before wrapping (e.g. a graph store
/// built directly on a MemEnv) are never touched by CrashAndRecover —
/// they model data synced long before the crash window under test.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  // ---- crash controls -----------------------------------------------------

  /// Arms the kill switch: `n` more mutating ops succeed, the next one
  /// tears and fails, and the env stays dead until CrashAndRecover().
  void SetKillSwitch(uint64_t n);

  /// True once an armed kill switch has fired (or Kill() was called).
  bool dead() const;

  /// Description of the operation the kill switch fired on, e.g.
  /// "WriteAt(g/run/hubs_f.nxh)" — lets the crash matrix assert coverage
  /// of every crash-point class. Empty until dead().
  std::string killed_op() const;

  /// Mutating operations observed so far (survives CrashAndRecover);
  /// used to size a crash-matrix sweep from a clean reference run.
  uint64_t mutation_count() const;

  /// Restores every tracked path on the base Env to its durable content
  /// (paths without a durable entry — removed files, rename targets that
  /// carried never-synced data — are removed; created-but-never-synced
  /// files come back empty), then disarms the kill switch. The base Env
  /// then looks exactly like a disk after power loss plus journal replay.
  Status CrashAndRecover();

  /// Marks the current content of every tracked file durable, as if the
  /// whole filesystem had been synced. Useful to establish a known-good
  /// baseline state before arming the kill switch.
  Status SyncAllTracked();

  // ---- Env interface ------------------------------------------------------

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursively(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;

 private:
  friend class FaultWritableFile;
  friend class FaultRandomWriteFile;

  /// Outcome of the kill-switch check for one mutating op.
  enum class Verdict {
    kProceed,  ///< apply the op normally
    kTear,     ///< this op fires the switch: apply a torn prefix, then fail
    kDead,     ///< env already dead: fail without applying anything
  };
  Verdict CheckMutation(const std::string& desc);

  /// Records the base content of `path` as its durable state.
  Status MarkDurable(const std::string& path);

  static Status DeadError() {
    return Status::IOError("fault injection: crashed");
  }

  Env* base_;

  mutable std::mutex mu_;
  /// Path -> content that survives a crash. Absent == file lost entirely.
  std::map<std::string, std::string> durable_;
  /// Every path this env opened for writing or renamed — the recovery set.
  std::set<std::string> tracked_;
  int64_t kill_after_ = -1;  // mutations left before death; -1 == disarmed
  bool dead_ = false;
  uint64_t mutations_ = 0;
  std::string killed_op_;
};

}  // namespace nxgraph

#endif  // NXGRAPH_IO_FAULT_ENV_H_
