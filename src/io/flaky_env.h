// FlakyEnv: a transient-fault-injection Env wrapper — the sibling of
// FaultInjectionEnv (fault_env.h). Where FaultInjectionEnv models the
// *permanent* failure mode (a crash: the process dies, durability is all
// that matters), FlakyEnv models the *transient* one: an operation fails,
// returns short, or hands back flipped bits — and the very same operation,
// retried, succeeds. It is the test and bench substrate for the retry /
// degradation layer (src/util/retry.h, docs/io-stack.md "Error handling").
//
// Faults are injected ONLY on the positional hot-path ops — ReadAt,
// WriteAt, RandomWriteFile::Flush — because those are the ops the
// pipelines (prefetcher, writeback, checkpoint commits, store re-reads)
// wrap in retry loops. Sequential streams, append files and metadata pass
// through untouched: store open/build paths are deliberately not retried,
// and injecting there would just abort a harness before the code under
// test runs.
//
// Fault model per op (checked in this order, at most one fires):
//   1. scripted faults: ScheduleFault(op_kind, n, fault) fires on the n-th
//      (1-based) op of that kind — exact, for unit tests;
//   2. probabilistic faults: independent per-op draws from a deterministic
//      Xoshiro256 stream under `rates` — for soak tests and benches.
// All injected errors are *transient*: an error op performs no base I/O
// (as if the syscall failed), a short read returns a truncated prefix of
// real data, and a bit-flip corrupts only the caller's buffer, never the
// base file — so every fault heals on re-read/re-write by construction.
//
// Determinism: one PRNG stream + per-kind op counters under a mutex. With
// a fixed seed and a fixed op order the fault sequence replays exactly;
// concurrent callers get a deterministic fault *set* only insofar as their
// op interleaving is deterministic (single-threaded unit tests assert
// exact schedules; multi-threaded soaks assert invariants and totals).
#ifndef NXGRAPH_IO_FLAKY_ENV_H_
#define NXGRAPH_IO_FLAKY_ENV_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/io/env.h"
#include "src/util/random.h"

namespace nxgraph {

/// \brief Per-op fault probabilities for FlakyEnv, all in [0, 1].
struct FlakyFaultRates {
  double read_error = 0.0;   ///< ReadAt fails with a transient IOError
  double write_error = 0.0;  ///< WriteAt fails with a transient IOError
  double flush_error = 0.0;  ///< RandomWriteFile::Flush fails transiently
  double short_read = 0.0;   ///< ReadAt returns a truncated prefix
  double bit_flip = 0.0;     ///< ReadAt flips one bit in the output buffer
  uint64_t seed = 0x666c616bULL;  ///< PRNG seed ("flak")
};

/// \brief Env decorator injecting healing transient faults on the
/// positional I/O paths. `base` is not owned and must outlive this Env and
/// every file object it creates. Thread-safe.
class FlakyEnv : public Env {
 public:
  enum class OpKind : uint8_t { kRead = 0, kWrite = 1, kFlush = 2 };
  enum class FaultKind : uint8_t {
    kTransientError = 0,
    kShortRead = 1,
    kBitFlip = 2,
  };

  explicit FlakyEnv(Env* base, FlakyFaultRates rates = {});

  /// Scripted injection: the `nth` (1-based) op of kind `op` fails with
  /// `fault` (kShortRead/kBitFlip are only meaningful for kRead).
  /// Scripted faults take precedence over probabilistic draws.
  void ScheduleFault(OpKind op, uint64_t nth, FaultKind fault);

  // ---- observability ------------------------------------------------------
  uint64_t injected_errors() const { return injected_errors_.load(); }
  uint64_t injected_short_reads() const {
    return injected_short_reads_.load();
  }
  uint64_t injected_bit_flips() const { return injected_bit_flips_.load(); }
  uint64_t injected_faults() const {
    return injected_errors() + injected_short_reads() + injected_bit_flips();
  }
  /// Positional ops of `op` observed so far (injected or clean).
  uint64_t op_count(OpKind op) const { return op_counts_[Idx(op)].load(); }

  // ---- Env interface ------------------------------------------------------
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override;
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override;
  bool FileExists(const std::string& path) override;
  Result<uint64_t> GetFileSize(const std::string& path) override;
  Status CreateDirs(const std::string& path) override;
  Status RemoveFile(const std::string& path) override;
  Status RemoveDirRecursively(const std::string& path) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override;

 private:
  friend class FlakyRandomAccessFile;
  friend class FlakyRandomWriteFile;

  /// What one positional op should do, decided under mu_.
  struct Injection {
    bool fault = false;
    FaultKind kind = FaultKind::kTransientError;
    /// Raw 64-bit draw for fault shaping (short-read length, flipped bit).
    uint64_t shape = 0;
  };

  static constexpr size_t Idx(OpKind op) { return static_cast<size_t>(op); }

  /// Advances the op counter for `op`, consults the scripted schedule then
  /// the probabilistic rates, and bumps the matching injected_* counter.
  Injection Decide(OpKind op);

  Env* base_;
  const FlakyFaultRates rates_;

  std::mutex mu_;
  Xoshiro256 rng_;  // under mu_
  std::map<std::pair<uint8_t, uint64_t>, FaultKind> scripted_;  // under mu_

  std::atomic<uint64_t> op_counts_[3]{};
  std::atomic<uint64_t> injected_errors_{0};
  std::atomic<uint64_t> injected_short_reads_{0};
  std::atomic<uint64_t> injected_bit_flips_{0};
};

}  // namespace nxgraph

#endif  // NXGRAPH_IO_FLAKY_ENV_H_
