#include "src/io/flaky_env.h"

#include <algorithm>
#include <cstring>

namespace nxgraph {

namespace {

Status InjectedError(const char* op) {
  return Status::TransientIOError(std::string("flaky: injected transient ") +
                                  op + " error");
}

}  // namespace

/// Positional reader: consults the env for a fault decision per ReadAt.
class FlakyRandomAccessFile : public RandomAccessFile {
 public:
  FlakyRandomAccessFile(std::unique_ptr<RandomAccessFile> base, FlakyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status ReadAt(uint64_t offset, size_t n, void* buf,
                size_t* bytes_read) const override {
    const FlakyEnv::Injection inj = env_->Decide(FlakyEnv::OpKind::kRead);
    if (inj.fault && inj.kind == FlakyEnv::FaultKind::kTransientError) {
      // As if the syscall failed: no base I/O happened.
      return InjectedError("read");
    }
    NX_RETURN_NOT_OK(base_->ReadAt(offset, n, buf, bytes_read));
    if (!inj.fault || *bytes_read == 0) return Status::OK();
    if (inj.kind == FlakyEnv::FaultKind::kShortRead) {
      // Truncate to a strict prefix of what actually landed (at least one
      // byte short, possibly zero bytes). The data delivered is real —
      // only the length lies, exactly like an interrupted pread.
      *bytes_read = inj.shape % *bytes_read;
    } else if (inj.kind == FlakyEnv::FaultKind::kBitFlip) {
      // Corrupt one bit in the caller's buffer only; the base file is
      // untouched, so a re-read returns clean data (a heal-on-reread
      // fault, the kind checksum re-reads exist for).
      const uint64_t bit = inj.shape % (*bytes_read * 8);
      static_cast<char*>(buf)[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    }
    return Status::OK();
  }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FlakyEnv* env_;
};

/// Positional writer: faultable WriteAt/Flush; Truncate/Close pass through.
class FlakyRandomWriteFile : public RandomWriteFile {
 public:
  FlakyRandomWriteFile(std::unique_ptr<RandomWriteFile> base, FlakyEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    const FlakyEnv::Injection inj = env_->Decide(FlakyEnv::OpKind::kWrite);
    if (inj.fault) return InjectedError("write");
    return base_->WriteAt(offset, data, n);
  }

  Status Flush() override {
    const FlakyEnv::Injection inj = env_->Decide(FlakyEnv::OpKind::kFlush);
    if (inj.fault) return InjectedError("flush");
    return base_->Flush();
  }

  Status Truncate(uint64_t size) override { return base_->Truncate(size); }
  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<RandomWriteFile> base_;
  FlakyEnv* env_;
};

FlakyEnv::FlakyEnv(Env* base, FlakyFaultRates rates)
    : base_(base), rates_(rates), rng_(rates.seed) {}

void FlakyEnv::ScheduleFault(OpKind op, uint64_t nth, FaultKind fault) {
  std::lock_guard<std::mutex> lock(mu_);
  scripted_[{static_cast<uint8_t>(op), nth}] = fault;
}

FlakyEnv::Injection FlakyEnv::Decide(OpKind op) {
  Injection inj;
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t nth = op_counts_[Idx(op)].fetch_add(1) + 1;
  const auto it = scripted_.find({static_cast<uint8_t>(op), nth});
  if (it != scripted_.end()) {
    inj.fault = true;
    inj.kind = it->second;
    inj.shape = rng_.Next();
    scripted_.erase(it);
  } else {
    // One probability draw per op keeps the stream aligned across op
    // kinds; the shaping draw only happens for ops that fault.
    const double p = rng_.NextDouble();
    double threshold = 0.0;
    switch (op) {
      case OpKind::kRead: {
        // Stack the read fault kinds on one draw: [0, err) -> error,
        // [err, err+short) -> short read, [.., +flip) -> bit flip.
        if (p < (threshold += rates_.read_error)) {
          inj.fault = true;
          inj.kind = FaultKind::kTransientError;
        } else if (p < (threshold += rates_.short_read)) {
          inj.fault = true;
          inj.kind = FaultKind::kShortRead;
        } else if (p < (threshold += rates_.bit_flip)) {
          inj.fault = true;
          inj.kind = FaultKind::kBitFlip;
        }
        break;
      }
      case OpKind::kWrite:
        inj.fault = p < rates_.write_error;
        break;
      case OpKind::kFlush:
        inj.fault = p < rates_.flush_error;
        break;
    }
    if (inj.fault) inj.shape = rng_.Next();
  }
  if (inj.fault) {
    switch (inj.kind) {
      case FaultKind::kTransientError:
        injected_errors_.fetch_add(1);
        break;
      case FaultKind::kShortRead:
        injected_short_reads_.fetch_add(1);
        break;
      case FaultKind::kBitFlip:
        injected_bit_flips_.fetch_add(1);
        break;
    }
  }
  return inj;
}

Status FlakyEnv::NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) {
  return base_->NewSequentialFile(path, out);
}

Status FlakyEnv::NewRandomAccessFile(const std::string& path,
                                     std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> file;
  NX_RETURN_NOT_OK(base_->NewRandomAccessFile(path, &file));
  *out = std::make_unique<FlakyRandomAccessFile>(std::move(file), this);
  return Status::OK();
}

Status FlakyEnv::NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) {
  return base_->NewWritableFile(path, out);
}

Status FlakyEnv::NewRandomWriteFile(const std::string& path,
                                    std::unique_ptr<RandomWriteFile>* out) {
  std::unique_ptr<RandomWriteFile> file;
  NX_RETURN_NOT_OK(base_->NewRandomWriteFile(path, &file));
  *out = std::make_unique<FlakyRandomWriteFile>(std::move(file), this);
  return Status::OK();
}

bool FlakyEnv::FileExists(const std::string& path) {
  return base_->FileExists(path);
}

Result<uint64_t> FlakyEnv::GetFileSize(const std::string& path) {
  return base_->GetFileSize(path);
}

Status FlakyEnv::CreateDirs(const std::string& path) {
  return base_->CreateDirs(path);
}

Status FlakyEnv::RemoveFile(const std::string& path) {
  return base_->RemoveFile(path);
}

Status FlakyEnv::RemoveDirRecursively(const std::string& path) {
  return base_->RemoveDirRecursively(path);
}

Status FlakyEnv::RenameFile(const std::string& from, const std::string& to) {
  return base_->RenameFile(from, to);
}

Status FlakyEnv::ListDir(const std::string& path,
                         std::vector<std::string>* names) {
  return base_->ListDir(path, names);
}

}  // namespace nxgraph
