// In-memory Env for fast, hermetic tests. Paths are treated as flat keys;
// directories exist implicitly once created or once a file lives under them.
#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <set>

#include "src/io/env.h"

namespace nxgraph {
namespace {

struct MemFs {
  std::mutex mu;
  std::map<std::string, std::shared_ptr<std::string>> files;
  std::set<std::string> dirs;
};

class MemSequentialFile : public SequentialFile {
 public:
  MemSequentialFile(std::shared_ptr<std::string> data, IoStats* stats)
      : data_(std::move(data)), stats_(stats) {}

  Status Read(size_t n, void* buf, size_t* bytes_read) override {
    size_t avail = data_->size() > pos_ ? data_->size() - pos_ : 0;
    size_t take = std::min(n, avail);
    std::memcpy(buf, data_->data() + pos_, take);
    pos_ += take;
    *bytes_read = take;
    stats_->RecordRead(take);
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ = std::min<size_t>(pos_ + n, data_->size());
    return Status::OK();
  }

 private:
  std::shared_ptr<std::string> data_;
  IoStats* stats_;
  size_t pos_ = 0;
};

class MemRandomAccessFile : public RandomAccessFile {
 public:
  MemRandomAccessFile(std::shared_ptr<std::string> data, IoStats* stats)
      : data_(std::move(data)), stats_(stats) {}

  Status ReadAt(uint64_t offset, size_t n, void* buf,
                size_t* bytes_read) const override {
    size_t avail = data_->size() > offset ? data_->size() - offset : 0;
    size_t take = std::min(n, avail);
    std::memcpy(buf, data_->data() + offset, take);
    *bytes_read = take;
    stats_->RecordRead(take);
    return Status::OK();
  }

 private:
  std::shared_ptr<std::string> data_;
  IoStats* stats_;
};

class MemWritableFile : public WritableFile {
 public:
  MemWritableFile(std::shared_ptr<std::string> data, IoStats* stats)
      : data_(std::move(data)), stats_(stats) {}

  Status Append(const void* data, size_t n) override {
    data_->append(static_cast<const char*>(data), n);
    stats_->RecordWrite(n);
    return Status::OK();
  }
  // MemEnv has no crash model (see NewMemEnv() in env.h): writes are
  // already visible through the shared backing string, so Flush/Sync have
  // nothing to push. FaultInjectionEnv supplies the durable-vs-volatile
  // distinction when tests need it.
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<std::string> data_;
  IoStats* stats_;
};

class MemRandomWriteFile : public RandomWriteFile {
 public:
  MemRandomWriteFile(std::shared_ptr<std::string> data, IoStats* stats)
      : data_(std::move(data)), stats_(stats) {}

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    if (data_->size() < offset + n) data_->resize(offset + n);
    std::memcpy(data_->data() + offset, data, n);
    stats_->RecordWrite(n);
    return Status::OK();
  }
  Status Truncate(uint64_t size) override {
    data_->resize(size);
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }

 private:
  std::shared_ptr<std::string> data_;
  IoStats* stats_;
};

class MemEnv : public Env {
 public:
  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::NotFound(path);
    *out = std::make_unique<MemSequentialFile>(it->second, &stats_);
    return Status::OK();
  }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::NotFound(path);
    *out = std::make_unique<MemRandomAccessFile>(it->second, &stats_);
    return Status::OK();
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto data = std::make_shared<std::string>();
    fs_.files[path] = data;
    *out = std::make_unique<MemWritableFile>(data, &stats_);
    return Status::OK();
  }

  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    std::shared_ptr<std::string> data;
    if (it == fs_.files.end()) {
      data = std::make_shared<std::string>();
      fs_.files[path] = data;
    } else {
      data = it->second;
    }
    *out = std::make_unique<MemRandomWriteFile>(data, &stats_);
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    return fs_.files.count(path) > 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(path);
    if (it == fs_.files.end()) return Status::NotFound(path);
    return static_cast<uint64_t>(it->second->size());
  }

  Status CreateDirs(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    fs_.dirs.insert(path);
    return Status::OK();
  }

  Status RemoveFile(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    fs_.files.erase(path);
    return Status::OK();
  }

  Status RemoveDirRecursively(const std::string& path) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    for (auto it = fs_.files.begin(); it != fs_.files.end();) {
      if (it->first.rfind(prefix, 0) == 0) {
        it = fs_.files.erase(it);
      } else {
        ++it;
      }
    }
    fs_.dirs.erase(path);
    return Status::OK();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    std::lock_guard<std::mutex> lock(fs_.mu);
    auto it = fs_.files.find(from);
    if (it == fs_.files.end()) return Status::NotFound(from);
    fs_.files[to] = it->second;
    fs_.files.erase(it);
    return Status::OK();
  }

  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    names->clear();
    std::string prefix = path;
    if (!prefix.empty() && prefix.back() != '/') prefix += '/';
    std::lock_guard<std::mutex> lock(fs_.mu);
    for (const auto& [name, _] : fs_.files) {
      if (name.rfind(prefix, 0) == 0) {
        std::string rest = name.substr(prefix.size());
        if (rest.find('/') == std::string::npos) names->push_back(rest);
      }
    }
    return Status::OK();
  }

 private:
  MemFs fs_;
};

}  // namespace

std::unique_ptr<Env> NewMemEnv() { return std::make_unique<MemEnv>(); }

}  // namespace nxgraph
