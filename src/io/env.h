// Filesystem abstraction (RocksDB's Env idiom). All NXgraph disk access goes
// through an Env so tests can run in memory and benches can model device
// characteristics (see ThrottledEnv).
#ifndef NXGRAPH_IO_ENV_H_
#define NXGRAPH_IO_ENV_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/io/io_backend.h"
#include "src/util/macros.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace nxgraph {

/// \brief Aggregate I/O counters, updated atomically by file objects.
class IoStats {
 public:
  struct Snapshot {
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
    uint64_t read_ops = 0;
    uint64_t write_ops = 0;
  };

  void RecordRead(uint64_t bytes) {
    bytes_read_.fetch_add(bytes, std::memory_order_relaxed);
    read_ops_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordWrite(uint64_t bytes) {
    bytes_written_.fetch_add(bytes, std::memory_order_relaxed);
    write_ops_.fetch_add(1, std::memory_order_relaxed);
  }

  Snapshot snapshot() const {
    Snapshot s;
    s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
    s.read_ops = read_ops_.load(std::memory_order_relaxed);
    s.write_ops = write_ops_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    bytes_read_ = 0;
    bytes_written_ = 0;
    read_ops_ = 0;
    write_ops_ = 0;
  }

 private:
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> read_ops_{0};
  std::atomic<uint64_t> write_ops_{0};
};

/// \brief Forward-only streaming reader (the engines' "streamlined" access).
class SequentialFile {
 public:
  virtual ~SequentialFile() = default;

  /// Reads up to `n` bytes into `buf`; `*bytes_read < n` signals EOF.
  virtual Status Read(size_t n, void* buf, size_t* bytes_read) = 0;

  /// Skips `n` bytes forward.
  virtual Status Skip(uint64_t n) = 0;
};

/// \brief Positional reader (pread semantics); safe for concurrent use.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads up to `n` bytes at `offset`; short reads signal EOF.
  virtual Status ReadAt(uint64_t offset, size_t n, void* buf,
                        size_t* bytes_read) const = 0;
};

/// \brief Append-only writer.
///
/// Durability contract (shared by every Env implementation and honored by
/// FaultInjectionEnv's crash model):
///   - Append() may buffer; the data is not even guaranteed to be visible
///     to readers until Flush().
///   - Flush() pushes buffered data to the OS (page cache): subsequent
///     reads through the same Env see it, but a crash may still lose it.
///   - Sync() makes everything appended so far durable (fdatasync on
///     Posix): the data survives a crash.
///   - Close() flushes but does NOT sync — exactly like POSIX close(2).
///     A file that must survive a crash needs an explicit Sync() first.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const void* data, size_t n) = 0;
  virtual Status Flush() = 0;
  /// Durability barrier: flushes, then forces the appended data to the
  /// device. Implementations must not silently equate this with Flush()
  /// unless the medium genuinely has no volatile cache (MemEnv documents
  /// its model at NewMemEnv()).
  virtual Status Sync() = 0;
  /// Flushes and closes the file; must be called before destruction for
  /// the write to be considered complete. Not a durability barrier.
  virtual Status Close() = 0;

  Status Append(const std::string& s) { return Append(s.data(), s.size()); }
};

/// \brief Positional writer (pwrite semantics); used for preallocated hub
/// segments written concurrently by worker rows.
class RandomWriteFile {
 public:
  virtual ~RandomWriteFile() = default;

  virtual Status WriteAt(uint64_t offset, const void* data, size_t n) = 0;
  /// Durability barrier: pushes every preceding WriteAt to the device
  /// (fdatasync on Posix). The write-behind queue calls this per target at
  /// each Drain(); device models charge it a seek.
  virtual Status Flush() { return Status::OK(); }
  virtual Status Truncate(uint64_t size) = 0;
  virtual Status Close() = 0;
};

/// \brief Filesystem interface.
///
/// Lifetime contract: file objects must not outlive the Env that created
/// them — backend Envs own shared machinery (aligned buffer pools, io_uring
/// rings) their files reference.
///
/// Metadata contract relied on by the checkpoint commit protocol
/// (write-temp + Sync + RenameFile):
///   - RenameFile() atomically replaces `to`: readers observe either the
///     old or the new file, never a mixture or a missing file.
///   - A rename is durable once it returns: PosixEnv fsyncs the parent
///     directory (POSIX does not promise directory metadata commits with
///     a file's own fdatasync on every filesystem). The renamed file's
///     *contents* are only as durable as the last Sync()/Flush() on it —
///     renaming an unsynced file can surface a torn or empty file after a
///     crash, which is exactly what FaultInjectionEnv simulates.
class Env {
 public:
  virtual ~Env() = default;

  /// Process-wide Posix environment.
  static Env* Default();

  virtual Status NewSequentialFile(const std::string& path,
                                   std::unique_ptr<SequentialFile>* out) = 0;
  virtual Status NewRandomAccessFile(const std::string& path,
                                     std::unique_ptr<RandomAccessFile>* out) = 0;
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;
  virtual Status NewRandomWriteFile(const std::string& path,
                                    std::unique_ptr<RandomWriteFile>* out) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;
  virtual Status CreateDirs(const std::string& path) = 0;
  virtual Status RemoveFile(const std::string& path) = 0;
  virtual Status RemoveDirRecursively(const std::string& path) = 0;
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status ListDir(const std::string& path,
                         std::vector<std::string>* names) = 0;

  /// Counters covering every file object created by this Env.
  IoStats* stats() { return &stats_; }

 protected:
  IoStats stats_;
};

/// Reads an entire file into `out`.
Status ReadFileToString(Env* env, const std::string& path, std::string* out);

/// Atomically (write + rename) replaces `path` with `contents`. Not a
/// durability barrier: after a crash the new contents may be torn or lost.
Status WriteStringToFile(Env* env, const std::string& path,
                         const std::string& contents);

/// Atomic AND durable replacement: write-temp + Sync + rename. After it
/// returns, a crash leaves either the complete old file or the complete
/// new one — the checkpoint commit protocol.
Status WriteStringToFileDurable(Env* env, const std::string& path,
                                const std::string& contents);

/// Returns a fresh in-memory Env (paths are flat keys; dirs are implicit).
///
/// Durability model: writes become visible to readers immediately (the
/// backing string is shared with open file objects — the "page cache"),
/// Flush()/Sync() are accepted no-ops, and nothing is ever lost because
/// MemEnv has no crash model of its own. Code that needs honest
/// crash-durability semantics in memory must wrap it in
/// NewFaultInjectionEnv (fault_env.h), which tracks the synced-vs-unsynced
/// distinction the raw MemEnv intentionally does not fake.
std::unique_ptr<Env> NewMemEnv();

// ---- real-filesystem backend Envs (see docs/io-stack.md) -------------------

/// Offset/length/buffer alignment every DirectIOEnv transfer is padded to.
/// 4096 covers the direct-I/O requirement of every mainstream filesystem and
/// equals the page size, so buffered and direct sub-ranges of one write
/// never share a page.
constexpr uint64_t kDirectIOAlignment = 4096;

/// O_DIRECT Env (IoBackend::kDirect): positional reads/writes bypass the
/// page cache through pooled aligned buffers while preserving exact logical
/// offsets and lengths; a file whose filesystem refuses O_DIRECT (tmpfs...)
/// falls back to buffered I/O for that file only. Append/sequential paths
/// and all metadata behave exactly like Env::Default().
std::unique_ptr<Env> NewDirectIOEnv();

/// True when files created in `dir` accept O_DIRECT (probes with a temp
/// file). DirectIOEnv works either way — this reports whether it will
/// actually run direct or per-file fall back.
bool DirectIOSupported(const std::string& dir);

/// io_uring Env (IoBackend::kUring): positional reads/writes go through a
/// shared submission/completion ring (no liburing dependency), so the
/// in-flight transfers of concurrent callers execute asynchronously in the
/// kernel while each caller sleeps on its completion. Returns nullptr when
/// io_uring is unavailable — compiled out (header missing), kernel too old
/// for IORING_OP_READ/WRITE (< 5.6), or denied by seccomp — callers then
/// fall back to buffered.
std::unique_ptr<Env> NewUringEnv();

/// Cached end-to-end probe behind NewUringEnv's nullptr contract.
bool UringSupported();

/// Creates the Env serving `backend`, or nullptr when the backend cannot be
/// constructed (kUring unsupported) — callers fall back to buffered.
/// kBuffered also returns nullptr: use Env::Default() (or whatever base Env
/// is already in hand) rather than a second buffered instance.
std::unique_ptr<Env> NewIoBackendEnv(IoBackend backend);

/// \brief Device model for ThrottledEnv.
struct DeviceProfile {
  /// Sustained sequential bandwidth in bytes per second.
  double bandwidth_bytes_per_sec = 500.0 * 1024 * 1024;
  /// Latency charged per non-contiguous access (seek), in seconds.
  double seek_latency_sec = 0.0001;

  static DeviceProfile Ssd() { return {500.0 * 1024 * 1024, 0.0001}; }
  static DeviceProfile Hdd() { return {120.0 * 1024 * 1024, 0.008}; }
};

/// Wraps `base` (not owned) so every read/write pays `profile` time costs.
/// Used to reproduce the paper's SSD-vs-HDD contrast (Table V) on whatever
/// device actually backs the test machine.
std::unique_ptr<Env> NewThrottledEnv(Env* base, DeviceProfile profile);

}  // namespace nxgraph

#endif  // NXGRAPH_IO_ENV_H_
