// UringEnv: the kUring backend — positional reads and writes are submitted
// to an io_uring instance instead of running one blocking pread/pwrite per
// caller. The prefetcher's I/O threads and the writeback queue's writer
// threads all feed the same ring, so their in-flight transfers execute
// asynchronously and concurrently in the kernel while each caller sleeps on
// its op's condition variable — the Env contract stays synchronous per
// call; the concurrency lives in the kernel's execution of the window.
// (Submission itself is a mutex-serialized io_uring_enter per SQE: the 1:1
// SQE-to-enter mapping is what makes the submission-error path provable —
// see SubmitAndWait.)
//
// Implementation notes:
//   - Built directly on the io_uring syscalls and the <linux/io_uring.h>
//     UAPI header — liburing is NOT required. When the header is missing
//     (non-Linux build or ancient kernel headers) this file compiles to the
//     fallback stubs at the bottom: UringSupported() == false and
//     NewUringEnv() == nullptr, which callers treat as "use buffered".
//   - One ring + one completion-reaper thread per Env. Submitters append an
//     SQE and io_uring_enter it under a mutex; the reaper blocks in
//     io_uring_enter(GETEVENTS), walks the CQ ring, and wakes each op by its
//     user_data pointer. Shutdown posts a NOP with null user_data.
//   - An op is failed locally ONLY when its SQE provably never reached the
//     kernel (enter(1) error consumes nothing). An op the kernel owns is
//     always completed by its CQE — failing it early would free the
//     caller's buffer and stack frame while kernel I/O still targets them.
//     After a fatal submission error the ring is marked dead (new submits
//     return -EIO) but the reaper keeps serving outstanding completions.
//   - UringSupported() performs a cached end-to-end probe (setup a ring,
//     round-trip an IORING_OP_READ against a memfd) — io_uring can be
//     compiled out of the kernel or denied by seccomp (common in container
//     sandboxes), and IORING_OP_READ needs Linux >= 5.6, so probing setup
//     alone is not enough.
//   - Only the positional files ride the ring. Sequential/append paths and
//     metadata stay on the buffered PosixFsEnv base, and Flush/Truncate use
//     fdatasync/ftruncate directly — they are barriers, not throughput ops.
#include "src/io/posix_base.h"

#if defined(__linux__) && __has_include(<linux/io_uring.h>)

#include <fcntl.h>
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <thread>

#include "src/util/logging.h"

namespace nxgraph {
namespace {

using internal::PosixError;
using internal::PosixOpenError;

/// Test-only submission budget (SetUringFailAfterForTest): < 0 means
/// unlimited; otherwise each SubmitAndWait decrements and fails with the
/// dead-ring -EIO once the budget is spent, simulating a ring that dies
/// mid-run.
std::atomic<int64_t> g_uring_fail_budget{-1};

int UringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int UringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
               unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

template <typename T>
T* RingPtr(void* base, uint32_t off) {
  return reinterpret_cast<T*>(static_cast<char*>(base) + off);
}

/// One in-flight transfer: the submitting thread sleeps on `cv` until the
/// reaper copies the CQE result in.
struct UringOp {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  int32_t res = 0;
  /// Publish edge from submitter to reaper. The real ordering runs through
  /// the kernel (release-store of the SQ tail -> CQE appears), but that
  /// passes through memory no race detector can see; the submitter
  /// release-stores `ready` after constructing the op and the reaper
  /// acquire-loads it before touching the op, making the happens-before
  /// explicit (and TSan-visible).
  std::atomic<bool> ready{false};
};

/// \brief The ring: mmap'd SQ/CQ, a submission mutex, and the reaper thread.
class UringCore {
 public:
  /// Returns nullptr when the ring cannot be set up (ENOSYS, seccomp, ...).
  static std::unique_ptr<UringCore> Create() {
    auto core = std::unique_ptr<UringCore>(new UringCore());
    if (!core->Init()) return nullptr;
    return core;
  }

  ~UringCore() {
    if (ring_fd_ >= 0) {
      // Wake the reaper with a NOP carrying null user_data. Best effort
      // even on a dead ring (the fatal error may have been transient); by
      // the lifetime contract no op is in flight at destruction. If the
      // NOP cannot be submitted after bounded retries, the reaper may be
      // parked in GETEVENTS with nothing to complete — detach it and leak
      // the ring rather than hang or free memory it still references.
      bool woke = false;
      {
        std::lock_guard<std::mutex> lock(sq_mu_);
        woke = SubmitOneLocked(IORING_OP_NOP, -1, nullptr, 0, 0, nullptr,
                               /*max_attempts=*/1000);
      }
      if (!woke) {
        NX_LOG(Warn) << "io_uring shutdown NOP failed; leaking the ring";
        reaper_.detach();
        return;
      }
      reaper_.join();
    }
    if (sq_ring_ != nullptr && sq_ring_ != MAP_FAILED) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (cq_ring_ != nullptr && cq_ring_ != MAP_FAILED && cq_ring_ != sq_ring_) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != nullptr && sqes_ != MAP_FAILED) {
      ::munmap(sqes_, sqe_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  /// Submits one transfer and blocks until its completion. Returns the raw
  /// CQE result: >= 0 bytes transferred, < 0 is -errno (-EIO when the ring
  /// is dead or the SQE could not be submitted).
  ///
  /// Safety argument for the error path: submission is one enter(1) per
  /// SQE under sq_mu_, and io_uring_enter returns an error only when it
  /// consumed nothing — so a failed submit means the kernel never saw this
  /// op and it is safe to fail it right here. Ops the kernel DID accept
  /// are only ever completed by their CQE (the caller's buffer and the
  /// op's stack frame stay alive until then), which is why no "fail all
  /// waiters" teardown exists: a fatal error just marks the ring dead for
  /// future submitters while the reaper drains what remains.
  int32_t SubmitAndWait(uint8_t opcode, int fd, void* addr, uint32_t len,
                        uint64_t offset) {
    if (g_uring_fail_budget.load(std::memory_order_relaxed) >= 0 &&
        g_uring_fail_budget.fetch_sub(1, std::memory_order_relaxed) <= 0) {
      // Injected ring death: permanent because dead_ sticks, exactly like
      // a real fatal submission error.
      std::lock_guard<std::mutex> lock(sq_mu_);
      dead_ = true;
      return -EIO;
    }
    UringOp op;
    op.ready.store(true, std::memory_order_release);
    {
      std::lock_guard<std::mutex> lock(sq_mu_);
      if (dead_ ||
          !SubmitOneLocked(opcode, fd, addr, len, offset, &op,
                           /*max_attempts=*/1000)) {
        dead_ = true;
        return -EIO;
      }
    }
    std::unique_lock<std::mutex> lock(op.mu);
    op.cv.wait(lock, [&op] { return op.done; });
    return op.res;
  }

 private:
  static constexpr unsigned kEntries = 256;

  UringCore() = default;

  bool Init() {
    io_uring_params p;
    std::memset(&p, 0, sizeof(p));
    ring_fd_ = UringSetup(kEntries, &p);
    if (ring_fd_ < 0) return false;

    sq_ring_bytes_ = p.sq_off.array + p.sq_entries * sizeof(uint32_t);
    cq_ring_bytes_ = p.cq_off.cqes + p.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_ring_bytes_ = cq_ring_bytes_ =
          std::max(sq_ring_bytes_, cq_ring_bytes_);
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return Fail();
    cq_ring_ = single_mmap
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) return Fail();
    sqe_bytes_ = p.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) return Fail();

    sq_head_ = RingPtr<uint32_t>(sq_ring_, p.sq_off.head);
    sq_tail_ = RingPtr<uint32_t>(sq_ring_, p.sq_off.tail);
    sq_mask_ = *RingPtr<uint32_t>(sq_ring_, p.sq_off.ring_mask);
    sq_array_ = RingPtr<uint32_t>(sq_ring_, p.sq_off.array);
    cq_head_ = RingPtr<uint32_t>(cq_ring_, p.cq_off.head);
    cq_tail_ = RingPtr<uint32_t>(cq_ring_, p.cq_off.tail);
    cq_mask_ = *RingPtr<uint32_t>(cq_ring_, p.cq_off.ring_mask);
    cqes_ = RingPtr<io_uring_cqe>(cq_ring_, p.cq_off.cqes);

    reaper_ = std::thread([this] { Reap(); });
    return true;
  }

  bool Fail() {
    // Partial init cleanup happens in the destructor; mark the ring dead so
    // the destructor skips the reaper handshake.
    ::close(ring_fd_);
    ring_fd_ = -1;
    return false;
  }

  /// Appends one SQE and enters it. sq_mu_ must be held. False only when
  /// the kernel consumed nothing (enter(1) error semantics), after
  /// `max_attempts` retries of transient errnos — the caller may then fail
  /// the op locally, no CQE will ever reference it. SQ-full cannot happen
  /// in practice (every SQE is consumed before the mutex is released, so
  /// unconsumed depth never exceeds one).
  bool SubmitOneLocked(uint8_t opcode, int fd, void* addr, uint32_t len,
                       uint64_t offset, UringOp* op, int max_attempts) {
    const uint32_t tail = *sq_tail_;
    const uint32_t head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
    if (tail - head >= kEntries) return false;
    const uint32_t idx = tail & sq_mask_;
    io_uring_sqe* sqe = &sqes_[idx];
    std::memset(sqe, 0, sizeof(*sqe));
    sqe->opcode = opcode;
    sqe->fd = fd;
    sqe->addr = reinterpret_cast<uint64_t>(addr);
    sqe->len = len;
    sqe->off = offset;
    sqe->user_data = reinterpret_cast<uint64_t>(op);
    sq_array_[idx] = idx;
    __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      int r = UringEnter(ring_fd_, 1, 0, 0);
      if (r >= 1) return true;
      if (r == 0) continue;  // nothing consumed: retry immediately
      // Transient-errno classification is shared with the rest of the I/O
      // stack (Status::TransientErrno); EINTR retries immediately, the
      // rest (EAGAIN/EBUSY/...) back off first.
      if (!Status::TransientErrno(errno)) break;  // SQE was not consumed
      if (errno != EINTR) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    // Roll the tail back so the unconsumed SQE cannot be handed to the
    // kernel by a later enter (it would reference this op's dead stack
    // frame). Sound because submission is serialized under sq_mu_ and
    // without SQPOLL the kernel only reads the SQ ring inside enter.
    __atomic_store_n(sq_tail_, tail, __ATOMIC_RELEASE);
    return false;
  }

  void Reap() {
    for (;;) {
      uint32_t head = *cq_head_;
      const uint32_t tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
      bool stop = false;
      while (head != tail) {
        const io_uring_cqe* cqe = &cqes_[head & cq_mask_];
        auto* op = reinterpret_cast<UringOp*>(
            static_cast<uintptr_t>(cqe->user_data));
        if (op == nullptr) {
          stop = true;
        } else {
          // Acquire the submitter's publish edge (always already set — the
          // CQE cannot exist before the submit, which follows the store).
          while (!op->ready.load(std::memory_order_acquire)) {
          }
          const int32_t res = cqe->res;
          std::lock_guard<std::mutex> lock(op->mu);
          op->res = res;
          op->done = true;
          op->cv.notify_one();
        }
        ++head;
      }
      __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
      if (stop) return;
      int r = UringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS);
      if (r < 0 && !Status::TransientErrno(errno)) {
        // Even a "fatal" wait error must not exit the loop: outstanding
        // ops would hang forever, and completing them early would free
        // buffers the kernel still owns. Back off and retry until the NOP
        // arrives (a ring this broken has its submitters failing too, so
        // no new ops accumulate).
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqe_bytes_ = 0;
  uint32_t* sq_head_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t sq_mask_ = 0;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t cq_mask_ = 0;
  io_uring_cqe* cqes_ = nullptr;

  std::mutex sq_mu_;
  bool dead_ = false;  // under sq_mu_: fatal submit error; reject new ops
  std::thread reaper_;
};

/// Full-coverage transfer loop over the ring: EINTR/EAGAIN-safe, short only
/// at EOF for reads (mirrors PReadFull/PWriteFull).
Status UringTransfer(UringCore* core, uint8_t opcode, int fd, void* buf,
                     size_t n, uint64_t offset, size_t* transferred) {
  size_t total = 0;
  char* p = static_cast<char*>(buf);
  while (total < n) {
    const uint32_t len = static_cast<uint32_t>(
        std::min<size_t>(n - total, 1u << 30));
    const int32_t res = core->SubmitAndWait(opcode, fd, p + total, len,
                                            offset + total);
    if (res < 0) {
      // Retry CQE-level transient errnos in place; everything else is
      // translated through the shared errno funnel (PosixError →
      // Status::FromErrno), which still marks e.g. ENOBUFS retryable for
      // the pipeline-level retry loops. The dead-ring -EIO comes out
      // non-retryable by design: it triggers backend downgrade, not retry.
      if (Status::TransientErrno(-res)) continue;
      return PosixError(opcode == IORING_OP_READ ? "io_uring read"
                                                 : "io_uring write",
                        -res);
    }
    if (res == 0) {
      if (opcode == IORING_OP_WRITE) {
        return Status::IOError("io_uring write: zero-byte completion");
      }
      break;  // EOF
    }
    total += static_cast<size_t>(res);
  }
  *transferred = total;
  return Status::OK();
}

class UringRandomAccessFile : public RandomAccessFile {
 public:
  UringRandomAccessFile(int fd, UringCore* core, IoStats* stats)
      : fd_(fd), core_(core), stats_(stats) {}
  ~UringRandomAccessFile() override { ::close(fd_); }

  Status ReadAt(uint64_t offset, size_t n, void* buf,
                size_t* bytes_read) const override {
    NX_RETURN_NOT_OK(UringTransfer(core_, IORING_OP_READ, fd_, buf, n, offset,
                                   bytes_read));
    stats_->RecordRead(*bytes_read);
    return Status::OK();
  }

 private:
  int fd_;
  UringCore* core_;
  IoStats* stats_;
};

class UringRandomWriteFile : public RandomWriteFile {
 public:
  UringRandomWriteFile(int fd, UringCore* core, IoStats* stats)
      : fd_(fd), core_(core), stats_(stats) {}
  ~UringRandomWriteFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status WriteAt(uint64_t offset, const void* data, size_t n) override {
    stats_->RecordWrite(n);
    size_t written = 0;
    return UringTransfer(core_, IORING_OP_WRITE, fd_,
                         const_cast<void*>(data), n, offset, &written);
  }

  Status Flush() override {
    if (::fdatasync(fd_) < 0) return PosixError("fdatasync", errno);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) < 0) {
      return PosixError("ftruncate", errno);
    }
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    Status s;
    if (::close(fd_) < 0) s = PosixError("close", errno);
    fd_ = -1;
    return s;
  }

 private:
  int fd_;
  UringCore* core_;
  IoStats* stats_;
};

class UringEnv : public internal::PosixFsEnv {
 public:
  explicit UringEnv(std::unique_ptr<UringCore> core)
      : core_(std::move(core)) {}

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return PosixOpenError(path);
    *out = std::make_unique<UringRandomAccessFile>(fd, core_.get(), stats());
    return Status::OK();
  }

  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return PosixOpenError(path);
    *out = std::make_unique<UringRandomWriteFile>(fd, core_.get(), stats());
    return Status::OK();
  }

 private:
  std::unique_ptr<UringCore> core_;
};

/// End-to-end probe: ring setup + an IORING_OP_READ round-trip on a memfd.
bool ProbeUring() {
  auto core = UringCore::Create();
  if (core == nullptr) return false;
  int fd = static_cast<int>(::syscall(__NR_memfd_create, "nx_uring_probe", 0u));
  if (fd < 0) return false;
  const char payload[] = "nxgraph";
  bool ok = ::pwrite(fd, payload, sizeof(payload), 0) ==
            static_cast<ssize_t>(sizeof(payload));
  char buf[sizeof(payload)] = {0};
  if (ok) {
    const int32_t res = core->SubmitAndWait(IORING_OP_READ, fd, buf,
                                            sizeof(payload), 0);
    ok = res == static_cast<int32_t>(sizeof(payload)) &&
         std::memcmp(buf, payload, sizeof(payload)) == 0;
  }
  ::close(fd);
  return ok;
}

}  // namespace

namespace internal {

void SetUringFailAfterForTest(uint64_t n) {
  g_uring_fail_budget.store(n == 0 ? -1 : static_cast<int64_t>(n),
                            std::memory_order_relaxed);
}

}  // namespace internal

bool UringSupported() {
  static const bool supported = ProbeUring();
  return supported;
}

std::unique_ptr<Env> NewUringEnv() {
  if (!UringSupported()) return nullptr;
  auto core = UringCore::Create();
  if (core == nullptr) return nullptr;
  return std::make_unique<UringEnv>(std::move(core));
}

}  // namespace nxgraph

#else  // no <linux/io_uring.h>: compile-time fallback

namespace nxgraph {

namespace internal {

void SetUringFailAfterForTest(uint64_t) {}  // no ring to kill

}  // namespace internal

bool UringSupported() { return false; }

std::unique_ptr<Env> NewUringEnv() { return nullptr; }

}  // namespace nxgraph

#endif
