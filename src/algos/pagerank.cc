#include "src/algos/pagerank.h"

#include "src/algos/programs.h"
#include "src/engine/engine.h"

namespace nxgraph {

Result<PageRankResult> RunPageRank(std::shared_ptr<const GraphStore> store,
                                   const PageRankOptions& options,
                                   RunOptions run_options) {
  PageRankProgram program;
  program.num_vertices = store->num_vertices();
  program.damping = options.damping;
  program.tolerance = options.tolerance;
  run_options.direction = EdgeDirection::kForward;
  if (run_options.max_iterations <= 0) {
    run_options.max_iterations = options.iterations;
  }
  Engine<PageRankProgram> engine(store, program, run_options);
  NX_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
  PageRankResult result;
  result.stats = std::move(stats);
  result.ranks = engine.values();
  return result;
}

}  // namespace nxgraph
