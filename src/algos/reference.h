// Single-threaded reference implementations used to validate the engines
// (tests) and to sanity-check example outputs. Not performance-oriented.
#ifndef NXGRAPH_ALGOS_REFERENCE_H_
#define NXGRAPH_ALGOS_REFERENCE_H_

#include <cstdint>
#include <vector>

#include "src/graph/types.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

/// \brief A dense-id graph in flat form for the reference algorithms.
struct ReferenceGraph {
  uint64_t num_vertices = 0;
  std::vector<Edge> edges;
  std::vector<float> weights;  ///< empty == all 1.0
};

/// Reassembles the full edge list from a store's sub-shards (also exercises
/// the DSSS invariant that every edge lives in exactly one sub-shard).
Result<ReferenceGraph> LoadReferenceGraph(const GraphStore& store);

/// Power iteration with the same dangling-mass semantics as
/// PageRankProgram.
std::vector<double> ReferencePageRank(const ReferenceGraph& g, double damping,
                                      int iterations);

/// BFS depths; UINT32_MAX == unreachable.
std::vector<uint32_t> ReferenceBfs(const ReferenceGraph& g, VertexId root);

/// Weakly connected components via union-find; label == min id in the
/// component.
std::vector<uint32_t> ReferenceWcc(const ReferenceGraph& g);

/// Strongly connected components via iterative Tarjan; label == min id in
/// the component.
std::vector<uint32_t> ReferenceScc(const ReferenceGraph& g);

/// Dijkstra distances (weights must be non-negative); +inf == unreachable.
std::vector<float> ReferenceSssp(const ReferenceGraph& g, VertexId root);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_REFERENCE_H_
