#include "src/algos/bfs.h"

#include "src/algos/programs.h"
#include "src/engine/engine.h"

namespace nxgraph {

Result<BfsResult> RunBfs(std::shared_ptr<const GraphStore> store,
                         VertexId root, RunOptions run_options) {
  if (root >= store->num_vertices()) {
    return Status::InvalidArgument("BFS root out of range");
  }
  BfsProgram program;
  program.root = root;
  run_options.direction = EdgeDirection::kForward;
  Engine<BfsProgram> engine(store, program, run_options);
  NX_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
  BfsResult result;
  result.stats = std::move(stats);
  result.depths = engine.values();
  for (uint32_t d : result.depths) {
    if (d != BfsProgram::kInfinity) {
      ++result.reached;
      result.max_depth = std::max(result.max_depth, d);
    }
  }
  return result;
}

}  // namespace nxgraph
