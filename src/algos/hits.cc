#include "src/algos/hits.h"

#include <cmath>

#include "src/engine/engine.h"

namespace nxgraph {

namespace {

// Propagates the current scores (seeded through Init) one step and sums
// them at the destinations.
struct SumProgram {
  using Value = double;
  static constexpr bool kMonotoneSkippable = false;

  const double* seed = nullptr;

  Value Init(VertexId v, uint32_t) const { return seed[v]; }
  static Value Identity() { return 0.0; }
  Value Gather(const EdgeContext&, const Value& src_value) const {
    return src_value;
  }
  static Value Accumulate(const Value& a, const Value& b) { return a + b; }
  Value Apply(VertexId, const Value& acc, const Value&) const { return acc; }
  bool Changed(const Value&, const Value&) const { return false; }
  bool InitiallyActive(VertexId) const { return true; }
};

void Normalize(std::vector<double>* scores) {
  double norm = 0;
  for (double s : *scores) norm += s * s;
  norm = std::sqrt(norm);
  if (norm <= 0) return;
  for (double& s : *scores) s /= norm;
}

void Merge(RunStats* total, const RunStats& part) {
  total->iterations += part.iterations;
  total->seconds += part.seconds;
  total->edges_traversed += part.edges_traversed;
  total->bytes_read += part.bytes_read;
  total->bytes_written += part.bytes_written;
  if (total->strategy.empty()) total->strategy = part.strategy;
}

}  // namespace

Result<HitsResult> RunHits(std::shared_ptr<const GraphStore> store,
                           const HitsOptions& options,
                           RunOptions run_options) {
  if (!store->has_transpose()) {
    return Status::InvalidArgument("HITS requires a store with transpose");
  }
  const uint64_t n = store->num_vertices();
  HitsResult result;
  result.authority.assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  result.hub = result.authority;

  run_options.max_iterations = 1;
  for (int it = 0; it < options.iterations; ++it) {
    // authority[v] = sum over in-edges of hub[u]  (forward propagation).
    {
      SumProgram program;
      program.seed = result.hub.data();
      RunOptions opt = run_options;
      opt.direction = EdgeDirection::kForward;
      Engine<SumProgram> engine(store, program, opt);
      NX_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
      Merge(&result.stats, stats);
      result.authority = engine.values();
      Normalize(&result.authority);
    }
    // hub[v] = sum over out-edges of authority[w]  (transpose propagation).
    {
      SumProgram program;
      program.seed = result.authority.data();
      RunOptions opt = run_options;
      opt.direction = EdgeDirection::kTranspose;
      Engine<SumProgram> engine(store, program, opt);
      NX_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
      Merge(&result.stats, stats);
      result.hub = engine.values();
      Normalize(&result.hub);
    }
  }
  return result;
}

}  // namespace nxgraph
