// Vertex programs for the built-in algorithms (paper §IV: PageRank, BFS,
// SCC, WCC; SSSP added as the weighted-graph extension).
#ifndef NXGRAPH_ALGOS_PROGRAMS_H_
#define NXGRAPH_ALGOS_PROGRAMS_H_

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "src/engine/vertex_program.h"

namespace nxgraph::internal {

/// Folds a raw value's bytes into a parameter fingerprint (FNV-1a step);
/// used by the programs' StateFingerprint hooks, which the engine's
/// checkpoint subsystem consults so a resumed run provably carries the
/// same parameters as the interrupted one.
template <typename T>
inline uint64_t FoldFingerprint(uint64_t h, T value) {
  unsigned char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  for (unsigned char b : bytes) h = (h ^ b) * 1099511628211ull;
  return h;
}

}  // namespace nxgraph::internal

namespace nxgraph {

/// \brief PageRank: PR(v) = (1-damping)/n + damping * sum(PR(u)/outdeg(u)).
///
/// Dangling mass is dropped (GraphChi-compatible), so ranks sum to slightly
/// less than 1 on graphs with sinks.
struct PageRankProgram {
  using Value = double;
  static constexpr bool kMonotoneSkippable = false;

  uint64_t num_vertices = 1;
  double damping = 0.85;
  double tolerance = 0.0;  ///< per-vertex convergence threshold

  Value Init(VertexId, uint32_t) const {
    return 1.0 / static_cast<double>(num_vertices);
  }
  static Value Identity() { return 0.0; }
  Value Gather(const EdgeContext& e, const Value& src_value) const {
    return e.src_out_degree > 0 ? src_value / e.src_out_degree : 0.0;
  }
  static Value Accumulate(const Value& a, const Value& b) { return a + b; }
  Value Apply(VertexId, const Value& acc, const Value&) const {
    return (1.0 - damping) / static_cast<double>(num_vertices) +
           damping * acc;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return std::fabs(new_value - old_value) > tolerance;
  }
  bool InitiallyActive(VertexId) const { return true; }
  uint64_t StateFingerprint() const {
    uint64_t h = internal::FoldFingerprint(1469598103934665603ull,
                                           num_vertices);
    h = internal::FoldFingerprint(h, damping);
    return internal::FoldFingerprint(h, tolerance);
  }
};

/// \brief BFS depth from a root (paper Algorithms 2-4).
struct BfsProgram {
  using Value = uint32_t;
  static constexpr Value kInfinity = std::numeric_limits<Value>::max();
  static constexpr bool kMonotoneSkippable = true;

  VertexId root = 0;

  Value Init(VertexId v, uint32_t) const { return v == root ? 0 : kInfinity; }
  static Value Identity() { return kInfinity; }
  Value Gather(const EdgeContext&, const Value& src_value) const {
    return src_value == kInfinity ? kInfinity : src_value + 1;
  }
  static Value Accumulate(const Value& a, const Value& b) {
    return a < b ? a : b;
  }
  Value Apply(VertexId, const Value& acc, const Value& old_value) const {
    return acc < old_value ? acc : old_value;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return old_value != new_value;
  }
  bool InitiallyActive(VertexId v) const { return v == root; }
  /// SeededProgram hooks (src/engine/traversal.h): everything starts at
  /// kInfinity except the root.
  Value DefaultValue() const { return kInfinity; }
  std::vector<VertexId> SeedVertices() const { return {root}; }
  uint64_t StateFingerprint() const {
    return internal::FoldFingerprint(1469598103934665603ull, root);
  }
};

/// \brief Weakly connected components by min-label propagation. Run with
/// EdgeDirection::kBoth so labels flow along and against edges.
struct WccProgram {
  using Value = uint32_t;
  static constexpr bool kMonotoneSkippable = true;

  Value Init(VertexId v, uint32_t) const { return v; }
  static Value Identity() { return std::numeric_limits<Value>::max(); }
  Value Gather(const EdgeContext&, const Value& src_value) const {
    return src_value;
  }
  static Value Accumulate(const Value& a, const Value& b) {
    return a < b ? a : b;
  }
  Value Apply(VertexId, const Value& acc, const Value& old_value) const {
    return acc < old_value ? acc : old_value;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return old_value != new_value;
  }
  bool InitiallyActive(VertexId) const { return true; }
};

/// \brief Single-source shortest paths over non-negative edge weights
/// (Bellman-Ford style synchronous relaxation).
struct SsspProgram {
  using Value = float;
  static constexpr bool kMonotoneSkippable = true;

  VertexId root = 0;
  static constexpr Value kInfinity = std::numeric_limits<Value>::infinity();

  Value Init(VertexId v, uint32_t) const { return v == root ? 0.0f : kInfinity; }
  static Value Identity() { return kInfinity; }
  Value Gather(const EdgeContext& e, const Value& src_value) const {
    return src_value == kInfinity ? kInfinity : src_value + e.weight;
  }
  static Value Accumulate(const Value& a, const Value& b) {
    return a < b ? a : b;
  }
  Value Apply(VertexId, const Value& acc, const Value& old_value) const {
    return acc < old_value ? acc : old_value;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return old_value != new_value;
  }
  bool InitiallyActive(VertexId v) const { return v == root; }
  /// SeededProgram hooks (src/engine/traversal.h).
  Value DefaultValue() const { return kInfinity; }
  std::vector<VertexId> SeedVertices() const { return {root}; }
  uint64_t StateFingerprint() const {
    return internal::FoldFingerprint(1469598103934665603ull, root);
  }
};

/// \brief Forward min-color propagation for the SCC coloring algorithm.
///
/// Assigned vertices carry the sentinel color kDone and neither propagate
/// nor accept colors.
struct SccColorProgram {
  using Value = uint32_t;
  static constexpr Value kDone = std::numeric_limits<Value>::max();
  static constexpr bool kMonotoneSkippable = true;

  /// scc ids assigned so far (kDone-terminated external state); vertices
  /// with an assignment are excluded from the subgraph.
  const uint32_t* assigned = nullptr;  ///< scc_id array, kInvalid == unassigned

  Value Init(VertexId v, uint32_t) const {
    return assigned[v] != kDone ? kDone : v;
  }
  static Value Identity() { return kDone; }
  Value Gather(const EdgeContext&, const Value& src_value) const {
    return src_value;  // kDone from assigned sources is ignored by min
  }
  static Value Accumulate(const Value& a, const Value& b) {
    return a < b ? a : b;
  }
  Value Apply(VertexId, const Value& acc, const Value& old_value) const {
    if (old_value == kDone) return kDone;  // assigned: keep sentinel
    return acc < old_value ? acc : old_value;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return old_value != new_value;
  }
  bool InitiallyActive(VertexId v) const { return assigned[v] == kDone; }
};

/// \brief Backward claim propagation for the SCC coloring algorithm: run on
/// the transpose so a root's claim reaches exactly the vertices that can
/// reach it within the same color.
struct SccClaimProgram {
  using Value = uint32_t;
  static constexpr Value kNone = std::numeric_limits<Value>::max();
  static constexpr bool kMonotoneSkippable = true;

  const uint32_t* colors = nullptr;  ///< forward-propagated colors
  const uint32_t* assigned = nullptr;

  Value Init(VertexId v, uint32_t) const {
    // Roots of the remaining subgraph claim themselves.
    return (assigned[v] == kNone && colors[v] == v) ? v : kNone;
  }
  static Value Identity() { return kNone; }
  Value Gather(const EdgeContext& e, const Value& src_value) const {
    // A claim is only valid if it matches the destination's color.
    return src_value == colors[e.dst] ? src_value : kNone;
  }
  static Value Accumulate(const Value& a, const Value& b) {
    return a < b ? a : b;
  }
  Value Apply(VertexId, const Value& acc, const Value& old_value) const {
    return acc < old_value ? acc : old_value;
  }
  bool Changed(const Value& old_value, const Value& new_value) const {
    return old_value != new_value;
  }
  bool InitiallyActive(VertexId v) const {
    return assigned[v] == kNone && colors[v] == v;
  }
};

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_PROGRAMS_H_
