// HITS (hyperlink-induced topic search): authority/hub scores via
// alternating propagation over the forward and transpose sub-shards — an
// extension beyond the paper's four benchmark algorithms that exercises
// the same engine plumbing as SCC (multi-run orchestration).
#ifndef NXGRAPH_ALGOS_HITS_H_
#define NXGRAPH_ALGOS_HITS_H_

#include <memory>
#include <vector>

#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

struct HitsOptions {
  int iterations = 10;
};

struct HitsResult {
  std::vector<double> authority;  ///< L2-normalized
  std::vector<double> hub;        ///< L2-normalized
  RunStats stats;                 ///< aggregated over all engine runs
};

/// Runs `iterations` rounds of authority = sum of in-neighbour hubs,
/// hub = sum of out-neighbour authorities, normalizing after each half
/// step. Requires a store built with transpose sub-shards.
Result<HitsResult> RunHits(std::shared_ptr<const GraphStore> store,
                           const HitsOptions& options,
                           RunOptions run_options);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_HITS_H_
