// PageRank driver.
#ifndef NXGRAPH_ALGOS_PAGERANK_H_
#define NXGRAPH_ALGOS_PAGERANK_H_

#include <memory>
#include <vector>

#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

struct PageRankOptions {
  double damping = 0.85;
  /// Fixed iteration count (the paper's experiments run 10); set
  /// `tolerance` > 0 to stop earlier on convergence.
  int iterations = 10;
  double tolerance = 0.0;
};

struct PageRankResult {
  std::vector<double> ranks;  ///< by dense vertex id
  RunStats stats;
};

/// Runs PageRank on a prepared graph.
Result<PageRankResult> RunPageRank(std::shared_ptr<const GraphStore> store,
                                   const PageRankOptions& options,
                                   RunOptions run_options);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_PAGERANK_H_
