#include "src/algos/sssp.h"

#include <cmath>

#include "src/algos/programs.h"
#include "src/engine/engine.h"

namespace nxgraph {

Result<SsspResult> RunSssp(std::shared_ptr<const GraphStore> store,
                           VertexId root, RunOptions run_options) {
  if (root >= store->num_vertices()) {
    return Status::InvalidArgument("SSSP root out of range");
  }
  SsspProgram program;
  program.root = root;
  run_options.direction = EdgeDirection::kForward;
  Engine<SsspProgram> engine(store, program, run_options);
  NX_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
  SsspResult result;
  result.stats = std::move(stats);
  result.distances = engine.values();
  for (float d : result.distances) {
    if (std::isfinite(d)) ++result.reached;
  }
  return result;
}

}  // namespace nxgraph
