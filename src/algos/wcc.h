// Weakly connected components driver.
#ifndef NXGRAPH_ALGOS_WCC_H_
#define NXGRAPH_ALGOS_WCC_H_

#include <memory>
#include <vector>

#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

struct WccResult {
  std::vector<uint32_t> labels;  ///< component label = min vertex id in it
  uint64_t num_components = 0;
  RunStats stats;
};

/// Min-label propagation over both edge directions; the store must have
/// been built with transpose sub-shards.
Result<WccResult> RunWcc(std::shared_ptr<const GraphStore> store,
                         RunOptions run_options);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_WCC_H_
