// Strongly connected components via iterative forward-coloring / backward-
// claiming (Orzan-style), built from engine runs over the forward and
// transpose sub-shards.
#ifndef NXGRAPH_ALGOS_SCC_H_
#define NXGRAPH_ALGOS_SCC_H_

#include <memory>
#include <vector>

#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

struct SccResult {
  /// scc id per vertex == min vertex id of its component.
  std::vector<uint32_t> component;
  uint64_t num_components = 0;
  uint64_t largest_component = 0;
  int rounds = 0;              ///< outer color/claim rounds
  RunStats stats;              ///< aggregated over all engine runs
};

/// \brief SCC by repeated rounds over the unassigned subgraph:
///   1. trim: vertices with no remaining in- or out-neighbours are
///      singleton components;
///   2. color: forward min-id propagation to a fixpoint;
///   3. claim: roots (color == own id) propagate their id backwards within
///      their color; claimed vertices form the root's component.
/// Requires a store built with transpose sub-shards.
Result<SccResult> RunScc(std::shared_ptr<const GraphStore> store,
                         RunOptions run_options);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_SCC_H_
