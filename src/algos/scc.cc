#include "src/algos/scc.h"

#include <unordered_map>

#include "src/algos/programs.h"
#include "src/engine/engine.h"

namespace nxgraph {

namespace {

constexpr uint32_t kUnassigned = std::numeric_limits<uint32_t>::max();

// Counts, for each vertex, the edges arriving from unassigned neighbours
// (one engine iteration; run on the transpose to count outgoing edges).
struct TrimCountProgram {
  using Value = uint32_t;
  static constexpr bool kMonotoneSkippable = false;

  const uint32_t* assigned = nullptr;

  Value Init(VertexId, uint32_t) const { return 0; }
  static Value Identity() { return 0; }
  Value Gather(const EdgeContext& e, const Value&) const {
    return assigned[e.src] == kUnassigned ? 1u : 0u;
  }
  static Value Accumulate(const Value& a, const Value& b) { return a + b; }
  Value Apply(VertexId, const Value& acc, const Value&) const { return acc; }
  bool Changed(const Value&, const Value&) const { return false; }
  bool InitiallyActive(VertexId) const { return true; }
};

void Merge(RunStats* total, const RunStats& part) {
  total->iterations += part.iterations;
  total->seconds += part.seconds;
  total->preprocess_seconds += part.preprocess_seconds;
  total->edges_traversed += part.edges_traversed;
  total->bytes_read += part.bytes_read;
  total->bytes_written += part.bytes_written;
  if (total->strategy.empty()) total->strategy = part.strategy;
}

}  // namespace

Result<SccResult> RunScc(std::shared_ptr<const GraphStore> store,
                         RunOptions run_options) {
  if (!store->has_transpose()) {
    return Status::InvalidArgument("SCC requires a store with transpose");
  }
  const uint64_t n = store->num_vertices();
  SccResult result;
  result.component.assign(n, kUnassigned);
  uint64_t assigned_count = 0;

  while (assigned_count < n) {
    ++result.rounds;

    // (1) Trim: unassigned vertices with no unassigned in- or out-
    // neighbours are singleton components. (Cascades across rounds.)
    TrimCountProgram trim;
    trim.assigned = result.component.data();
    RunOptions trim_options = run_options;
    trim_options.max_iterations = 1;
    std::vector<uint32_t> in_counts;
    std::vector<uint32_t> out_counts;
    {
      trim_options.direction = EdgeDirection::kForward;
      Engine<TrimCountProgram> engine(store, trim, trim_options);
      NX_ASSIGN_OR_RETURN(RunStats s, engine.Run());
      Merge(&result.stats, s);
      in_counts = engine.values();
    }
    {
      trim_options.direction = EdgeDirection::kTranspose;
      Engine<TrimCountProgram> engine(store, trim, trim_options);
      NX_ASSIGN_OR_RETURN(RunStats s, engine.Run());
      Merge(&result.stats, s);
      out_counts = engine.values();
    }
    uint64_t trimmed = 0;
    for (uint64_t v = 0; v < n; ++v) {
      if (result.component[v] == kUnassigned &&
          (in_counts[v] == 0 || out_counts[v] == 0)) {
        result.component[v] = static_cast<uint32_t>(v);
        ++trimmed;
      }
    }
    assigned_count += trimmed;
    if (assigned_count >= n) break;

    // (2) Forward min-color propagation to a fixpoint.
    SccColorProgram color_program;
    color_program.assigned = result.component.data();
    RunOptions color_options = run_options;
    color_options.direction = EdgeDirection::kForward;
    color_options.max_iterations = 0;
    Engine<SccColorProgram> color_engine(store, color_program, color_options);
    NX_ASSIGN_OR_RETURN(RunStats color_stats, color_engine.Run());
    Merge(&result.stats, color_stats);
    const std::vector<uint32_t>& colors = color_engine.values();

    // (3) Backward claim propagation within colors.
    SccClaimProgram claim_program;
    claim_program.colors = colors.data();
    claim_program.assigned = result.component.data();
    RunOptions claim_options = run_options;
    claim_options.direction = EdgeDirection::kTranspose;
    claim_options.max_iterations = 0;
    Engine<SccClaimProgram> claim_engine(store, claim_program, claim_options);
    NX_ASSIGN_OR_RETURN(RunStats claim_stats, claim_engine.Run());
    Merge(&result.stats, claim_stats);
    const std::vector<uint32_t>& claims = claim_engine.values();

    // (4) Claimed vertices join the claiming root's component.
    uint64_t newly = 0;
    for (uint64_t v = 0; v < n; ++v) {
      if (result.component[v] == kUnassigned &&
          claims[v] != SccClaimProgram::kNone) {
        result.component[v] = claims[v];
        ++newly;
      }
    }
    assigned_count += newly;
    if (newly == 0 && trimmed == 0) {
      return Status::Aborted(
          "SCC made no progress (invariant violation; please report)");
    }
  }

  std::unordered_map<uint32_t, uint64_t> sizes;
  for (uint32_t c : result.component) ++sizes[c];
  result.num_components = sizes.size();
  for (const auto& [_, size] : sizes) {
    result.largest_component = std::max(result.largest_component, size);
  }
  return result;
}

}  // namespace nxgraph
