// Breadth-first search driver (paper Algorithms 2-4).
#ifndef NXGRAPH_ALGOS_BFS_H_
#define NXGRAPH_ALGOS_BFS_H_

#include <memory>
#include <vector>

#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

struct BfsResult {
  std::vector<uint32_t> depths;  ///< UINT32_MAX == unreachable
  uint32_t max_depth = 0;        ///< the paper's Output(I): spanning depth
  uint64_t reached = 0;          ///< vertices with finite depth
  RunStats stats;
};

/// BFS from `root` over forward edges.
Result<BfsResult> RunBfs(std::shared_ptr<const GraphStore> store,
                         VertexId root, RunOptions run_options);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_BFS_H_
