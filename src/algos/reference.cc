#include "src/algos/reference.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stack>

namespace nxgraph {

namespace {

// Adjacency in CSR form built from a flat edge list.
struct Adjacency {
  std::vector<uint64_t> offsets;
  std::vector<VertexId> targets;
  std::vector<float> weights;

  static Adjacency Build(const ReferenceGraph& g, bool reverse) {
    Adjacency adj;
    adj.offsets.assign(g.num_vertices + 1, 0);
    for (const Edge& e : g.edges) {
      ++adj.offsets[(reverse ? e.dst : e.src) + 1];
    }
    for (uint64_t v = 0; v < g.num_vertices; ++v) {
      adj.offsets[v + 1] += adj.offsets[v];
    }
    adj.targets.resize(g.edges.size());
    const bool weighted = !g.weights.empty();
    if (weighted) adj.weights.resize(g.edges.size());
    std::vector<uint64_t> cursor(adj.offsets.begin(), adj.offsets.end() - 1);
    for (size_t k = 0; k < g.edges.size(); ++k) {
      const Edge& e = g.edges[k];
      const VertexId from = reverse ? e.dst : e.src;
      const VertexId to = reverse ? e.src : e.dst;
      const uint64_t slot = cursor[from]++;
      adj.targets[slot] = to;
      if (weighted) adj.weights[slot] = g.weights[k];
    }
    return adj;
  }
};

}  // namespace

Result<ReferenceGraph> LoadReferenceGraph(const GraphStore& store) {
  ReferenceGraph g;
  g.num_vertices = store.num_vertices();
  g.edges.reserve(store.num_edges());
  const uint32_t p = store.num_intervals();
  for (uint32_t i = 0; i < p; ++i) {
    for (uint32_t j = 0; j < p; ++j) {
      NX_ASSIGN_OR_RETURN(SubShard ss, store.LoadSubShard(i, j));
      for (uint32_t gi = 0; gi < ss.num_dsts(); ++gi) {
        for (uint32_t k = ss.offsets[gi]; k < ss.offsets[gi + 1]; ++k) {
          g.edges.push_back(Edge{ss.srcs[k], ss.dsts[gi]});
          if (!ss.weights.empty()) g.weights.push_back(ss.weights[k]);
        }
      }
    }
  }
  if (g.edges.size() != store.num_edges()) {
    return Status::Corruption("sub-shards do not cover the edge set");
  }
  return g;
}

std::vector<double> ReferencePageRank(const ReferenceGraph& g, double damping,
                                      int iterations) {
  const uint64_t n = g.num_vertices;
  std::vector<uint32_t> out_degree(n, 0);
  for (const Edge& e : g.edges) ++out_degree[e.src];
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    for (const Edge& e : g.edges) {
      next[e.dst] += rank[e.src] / out_degree[e.src];
    }
    for (uint64_t v = 0; v < n; ++v) {
      next[v] = (1.0 - damping) / static_cast<double>(n) + damping * next[v];
    }
    rank.swap(next);
  }
  return rank;
}

std::vector<uint32_t> ReferenceBfs(const ReferenceGraph& g, VertexId root) {
  constexpr uint32_t kInf = std::numeric_limits<uint32_t>::max();
  Adjacency adj = Adjacency::Build(g, /*reverse=*/false);
  std::vector<uint32_t> depth(g.num_vertices, kInf);
  std::queue<VertexId> frontier;
  depth[root] = 0;
  frontier.push(root);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (uint64_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
      const VertexId w = adj.targets[k];
      if (depth[w] == kInf) {
        depth[w] = depth[v] + 1;
        frontier.push(w);
      }
    }
  }
  return depth;
}

std::vector<uint32_t> ReferenceWcc(const ReferenceGraph& g) {
  // Union-find with path halving.
  std::vector<uint32_t> parent(g.num_vertices);
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    parent[v] = static_cast<uint32_t>(v);
  }
  auto find = [&parent](uint32_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const Edge& e : g.edges) {
    const uint32_t a = find(e.src);
    const uint32_t b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  // Canonicalize to the minimum id in each component.
  std::vector<uint32_t> label(g.num_vertices);
  for (uint64_t v = 0; v < g.num_vertices; ++v) {
    label[v] = find(static_cast<uint32_t>(v));
  }
  return label;
}

std::vector<uint32_t> ReferenceScc(const ReferenceGraph& g) {
  // Iterative Tarjan (explicit call stack, safe on deep graphs).
  const uint64_t n = g.num_vertices;
  Adjacency adj = Adjacency::Build(g, /*reverse=*/false);
  constexpr uint32_t kUnset = std::numeric_limits<uint32_t>::max();
  std::vector<uint32_t> index(n, kUnset), lowlink(n, 0), component(n, kUnset);
  std::vector<uint8_t> on_stack(n, 0);
  std::vector<uint32_t> stack;
  uint32_t next_index = 0;

  struct Frame {
    uint32_t v;
    uint64_t edge;
  };
  std::vector<Frame> call_stack;

  for (uint64_t start = 0; start < n; ++start) {
    if (index[start] != kUnset) continue;
    call_stack.push_back({static_cast<uint32_t>(start), adj.offsets[start]});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(static_cast<uint32_t>(start));
    on_stack[start] = 1;
    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const uint32_t v = frame.v;
      if (frame.edge < adj.offsets[v + 1]) {
        const VertexId w = adj.targets[frame.edge++];
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          call_stack.push_back({w, adj.offsets[w]});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          // Pop the component; label with its minimum vertex id.
          size_t first = stack.size();
          while (first > 0 && stack[first - 1] != v) --first;
          --first;
          uint32_t min_id = v;
          for (size_t k = first; k < stack.size(); ++k) {
            min_id = std::min(min_id, stack[k]);
          }
          for (size_t k = first; k < stack.size(); ++k) {
            component[stack[k]] = min_id;
            on_stack[stack[k]] = 0;
          }
          stack.resize(first);
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const uint32_t parent = call_stack.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  return component;
}

std::vector<float> ReferenceSssp(const ReferenceGraph& g, VertexId root) {
  Adjacency adj = Adjacency::Build(g, /*reverse=*/false);
  const float kInf = std::numeric_limits<float>::infinity();
  std::vector<float> dist(g.num_vertices, kInf);
  using Item = std::pair<float, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[root] = 0.0f;
  heap.push({0.0f, root});
  while (!heap.empty()) {
    auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    for (uint64_t k = adj.offsets[v]; k < adj.offsets[v + 1]; ++k) {
      const VertexId w = adj.targets[k];
      const float weight = adj.weights.empty() ? 1.0f : adj.weights[k];
      if (dist[v] + weight < dist[w]) {
        dist[w] = dist[v] + weight;
        heap.push({dist[w], w});
      }
    }
  }
  return dist;
}

}  // namespace nxgraph
