// Single-source shortest paths driver (weighted-graph extension).
#ifndef NXGRAPH_ALGOS_SSSP_H_
#define NXGRAPH_ALGOS_SSSP_H_

#include <memory>
#include <vector>

#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"

namespace nxgraph {

struct SsspResult {
  std::vector<float> distances;  ///< +inf == unreachable
  uint64_t reached = 0;
  RunStats stats;
};

/// Bellman-Ford-style SSSP from `root`. Edge weights must be non-negative;
/// unweighted stores use weight 1.0 per edge (== BFS distances).
Result<SsspResult> RunSssp(std::shared_ptr<const GraphStore> store,
                           VertexId root, RunOptions run_options);

}  // namespace nxgraph

#endif  // NXGRAPH_ALGOS_SSSP_H_
