#include "src/algos/wcc.h"

#include <unordered_set>

#include "src/algos/programs.h"
#include "src/engine/engine.h"

namespace nxgraph {

Result<WccResult> RunWcc(std::shared_ptr<const GraphStore> store,
                         RunOptions run_options) {
  WccProgram program;
  run_options.direction = EdgeDirection::kBoth;
  Engine<WccProgram> engine(store, program, run_options);
  NX_ASSIGN_OR_RETURN(RunStats stats, engine.Run());
  WccResult result;
  result.stats = std::move(stats);
  result.labels = engine.values();
  std::unordered_set<uint32_t> distinct(result.labels.begin(),
                                        result.labels.end());
  result.num_components = distinct.size();
  return result;
}

}  // namespace nxgraph
