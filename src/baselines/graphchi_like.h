// GraphChi-like baseline: source-sorted shards processed with the Parallel
// Sliding Windows discipline — coarse-grained parallelism over contiguous
// edge ranges with atomic scatter writes (paper Table IV's "src-sorted,
// coarse-grained" configuration and the GraphChi series of Figs 9-12).
#ifndef NXGRAPH_BASELINES_GRAPHCHI_LIKE_H_
#define NXGRAPH_BASELINES_GRAPHCHI_LIKE_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/baselines/common.h"
#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace nxgraph {

/// \brief Executes a VertexProgram with GraphChi's storage and parallelism
/// choices: each shard holds the in-edges of one interval, sorted by
/// *source*; iterations load whole shards; threads split a shard into
/// contiguous edge ranges and scatter to destinations with CAS loops.
///
/// Vertex attributes ping-pong in memory (2 n Ba), mirroring the budget the
/// NXgraph engines grant SPU; shards that do not fit the leftover budget
/// are spilled to a scratch file at preparation time and physically
/// re-streamed every iteration.
template <VertexProgram Program>
class GraphChiLikeEngine {
 public:
  using Value = typename Program::Value;

  GraphChiLikeEngine(std::shared_ptr<const GraphStore> store, Program program,
                     RunOptions options)
      : store_(std::move(store)),
        program_(std::move(program)),
        options_(std::move(options)) {}

  Result<RunStats> Run() {
    RunStats stats;
    stats.strategy = "GraphChi-like";
    Timer total;
    NX_RETURN_NOT_OK(Prepare());
    stats.preprocess_seconds = total.ElapsedSeconds();

    Timer loop;
    int iter = 0;
    for (;;) {
      if (options_.max_iterations > 0 && iter >= options_.max_iterations) {
        break;
      }
      if (!any_active_) break;
      Timer iter_timer;
      NX_RETURN_NOT_OK(RunIteration());
      stats.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
      ++iter;
    }
    stats.iterations = iter;
    stats.seconds = loop.ElapsedSeconds();
    stats.edges_traversed = edges_traversed_;
    stats.bytes_read = bytes_read_;
    stats.bytes_written = bytes_written_;
    return stats;
  }

  const std::vector<Value>& values() const { return old_values_; }

 private:
  struct Shard {
    std::vector<baselines::EdgeRecord> edges;  // only when cached
    size_t num_edges = 0;
    size_t forward_count = 0;  // records from forward edges (degree choice)
    uint64_t file_offset = 0;
    uint64_t bytes = 0;
    bool cached = false;
  };

  Status Prepare() {
    const Manifest& m = store_->manifest();
    p_ = m.num_intervals;
    pool_ = std::make_unique<ThreadPool>(std::max(options_.num_threads, 0));
    const bool use_transpose = options_.direction == EdgeDirection::kBoth ||
                               options_.direction == EdgeDirection::kTranspose;
    const bool use_forward = options_.direction != EdgeDirection::kTranspose;
    if (use_transpose && !store_->has_transpose()) {
      return Status::InvalidArgument("direction requires transpose shards");
    }
    NX_ASSIGN_OR_RETURN(out_degrees_, store_->LoadOutDegrees());
    if (use_transpose) {
      NX_ASSIGN_OR_RETURN(in_degrees_, store_->LoadInDegrees());
    }

    const uint64_t n = store_->num_vertices();
    old_values_.resize(n);
    next_values_.reset(new std::atomic<Value>[n]);
    any_active_ = false;
    for (uint64_t v = 0; v < n; ++v) {
      old_values_[v] =
          program_.Init(static_cast<VertexId>(v), out_degrees_[v]);
      any_active_ = any_active_ || program_.InitiallyActive(v);
    }

    const uint64_t state_bytes = 2 * n * sizeof(Value);
    uint64_t cache_budget =
        options_.memory_budget_bytes == 0
            ? UINT64_MAX
            : (options_.memory_budget_bytes > state_bytes
                   ? options_.memory_budget_bytes - state_bytes
                   : 0);

    Env* env = store_->env();
    const std::string scratch = options_.scratch_dir.empty()
                                    ? store_->dir() + "/baseline_chi"
                                    : options_.scratch_dir;
    NX_RETURN_NOT_OK(env->CreateDirs(scratch));
    const std::string shard_path = scratch + "/shards_src_sorted.bin";
    std::unique_ptr<WritableFile> writer;
    NX_RETURN_NOT_OK(env->NewWritableFile(shard_path, &writer));

    shards_.assign(p_, {});
    uint64_t offset = 0;
    for (uint32_t j = 0; j < p_; ++j) {
      Shard& shard = shards_[j];
      for (uint32_t i = 0; use_forward && i < p_; ++i) {
        NX_ASSIGN_OR_RETURN(SubShard ss, store_->LoadSubShard(i, j, false));
        baselines::ExpandSubShard(ss, &shard.edges);
      }
      shard.forward_count = shard.edges.size();
      for (uint32_t i = 0; use_transpose && i < p_; ++i) {
        NX_ASSIGN_OR_RETURN(SubShard ss, store_->LoadSubShard(i, j, true));
        baselines::ExpandSubShard(ss, &shard.edges);
      }
      // GraphChi's defining sort order: by source vertex.
      std::stable_sort(
          shard.edges.begin(), shard.edges.end(),
          [](const baselines::EdgeRecord& a, const baselines::EdgeRecord& b) {
            return a.src < b.src;
          });
      shard.num_edges = shard.edges.size();
      shard.bytes = shard.num_edges * sizeof(baselines::EdgeRecord);
      shard.file_offset = offset;
      NX_RETURN_NOT_OK(writer->Append(shard.edges.data(), shard.bytes));
      offset += shard.bytes;
      if (shard.bytes <= cache_budget) {
        shard.cached = true;
        cache_budget -= shard.bytes;
      } else {
        shard.edges.clear();
        shard.edges.shrink_to_fit();
      }
    }
    NX_RETURN_NOT_OK(writer->Close());
    return env->NewRandomAccessFile(shard_path, &shard_file_);
  }

  Status RunIteration() {
    const uint64_t n = store_->num_vertices();
    for (uint64_t v = 0; v < n; ++v) {
      next_values_[v].store(Program::Identity(), std::memory_order_relaxed);
    }
    std::vector<baselines::EdgeRecord> stream_buf;
    for (uint32_t j = 0; j < p_; ++j) {
      Shard& shard = shards_[j];
      const baselines::EdgeRecord* edges;
      if (shard.cached) {
        edges = shard.edges.data();
      } else {
        stream_buf.resize(shard.num_edges);
        size_t got = 0;
        NX_RETURN_NOT_OK(shard_file_->ReadAt(shard.file_offset, shard.bytes,
                                             stream_buf.data(), &got));
        if (got != shard.bytes) {
          return Status::Corruption("baseline shard truncated");
        }
        bytes_read_ += shard.bytes;
        edges = stream_buf.data();
      }
      edges_traversed_ += shard.num_edges;
      const size_t fwd = shard.forward_count;
      const Value* old_vals = old_values_.data();
      std::atomic<Value>* next = next_values_.get();
      // Coarse-grained parallelism: contiguous edge ranges; conflicting
      // destination writes resolved by CAS (no destination grouping).
      pool_->ParallelFor(
          0, shard.num_edges, 8192,
          [this, edges, fwd, old_vals, next](size_t kb, size_t ke) {
            for (size_t k = kb; k < ke; ++k) {
              const auto& e = edges[k];
              EdgeContext ctx{e.src, e.dst, e.weight,
                              k < fwd ? out_degrees_[e.src]
                                      : in_degrees_[e.src]};
              const Value contribution = program_.Gather(ctx, old_vals[e.src]);
              baselines::AtomicAccumulate<Program>(&next[e.dst], contribution);
            }
          });
    }
    // Apply phase.
    std::atomic<uint8_t> changed{0};
    pool_->ParallelFor(0, n, 8192, [this, &changed](size_t kb, size_t ke) {
      bool local = false;
      for (size_t k = kb; k < ke; ++k) {
        const Value acc = next_values_[k].load(std::memory_order_relaxed);
        const Value next_v =
            program_.Apply(static_cast<VertexId>(k), acc, old_values_[k]);
        local = local || program_.Changed(old_values_[k], next_v);
        next_values_[k].store(next_v, std::memory_order_relaxed);
      }
      if (local) changed.store(1, std::memory_order_relaxed);
    });
    for (uint64_t v = 0; v < n; ++v) {
      old_values_[v] = next_values_[v].load(std::memory_order_relaxed);
    }
    any_active_ = changed.load(std::memory_order_relaxed) != 0;
    return Status::OK();
  }

  std::shared_ptr<const GraphStore> store_;
  Program program_;
  RunOptions options_;

  uint32_t p_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<uint32_t> out_degrees_;
  std::vector<uint32_t> in_degrees_;
  std::vector<Shard> shards_;
  std::unique_ptr<RandomAccessFile> shard_file_;
  std::vector<Value> old_values_;
  std::unique_ptr<std::atomic<Value>[]> next_values_;
  bool any_active_ = false;
  uint64_t edges_traversed_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace nxgraph

#endif  // NXGRAPH_BASELINES_GRAPHCHI_LIKE_H_
