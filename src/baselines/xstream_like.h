// X-Stream-like baseline: edge-centric scatter/gather. The scatter phase
// streams the unsorted edge list and appends (dst, value) update records to
// per-partition on-disk update streams; the gather phase streams each
// partition's updates back and applies them. Update traffic ~ m*(4+Ba)
// bytes in each direction per iteration — the cost profile that makes
// X-Stream slower than shard-based systems in the paper's Tables V/VI.
#ifndef NXGRAPH_BASELINES_XSTREAM_LIKE_H_
#define NXGRAPH_BASELINES_XSTREAM_LIKE_H_

#include <algorithm>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/baselines/common.h"
#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace nxgraph {

/// \brief Executes a VertexProgram with X-Stream's edge-centric discipline.
/// Vertex state stays in memory (X-Stream keeps the active partition's
/// vertices resident); edges and updates stream from/to disk.
template <VertexProgram Program>
class XStreamLikeEngine {
 public:
  using Value = typename Program::Value;

  XStreamLikeEngine(std::shared_ptr<const GraphStore> store, Program program,
                    RunOptions options)
      : store_(std::move(store)),
        program_(std::move(program)),
        options_(std::move(options)) {}

  Result<RunStats> Run() {
    RunStats stats;
    stats.strategy = "X-Stream-like";
    Timer total;
    NX_RETURN_NOT_OK(Prepare());
    stats.preprocess_seconds = total.ElapsedSeconds();

    Timer loop;
    int iter = 0;
    for (;;) {
      if (options_.max_iterations > 0 && iter >= options_.max_iterations) {
        break;
      }
      if (!any_active_) break;
      Timer iter_timer;
      NX_RETURN_NOT_OK(RunIteration());
      stats.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
      ++iter;
    }
    stats.iterations = iter;
    stats.seconds = loop.ElapsedSeconds();
    stats.edges_traversed = edges_traversed_;
    stats.bytes_read = bytes_read_;
    stats.bytes_written = bytes_written_;
    return stats;
  }

  const std::vector<Value>& values() const { return values_; }

 private:
  struct UpdateRecord {
    VertexId dst;
    Value value;
  };

  Status Prepare() {
    const Manifest& m = store_->manifest();
    p_ = m.num_intervals;
    if (options_.direction != EdgeDirection::kForward) {
      return Status::NotSupported(
          "X-Stream-like baseline supports forward runs only");
    }
    pool_ = std::make_unique<ThreadPool>(std::max(options_.num_threads, 0));
    NX_ASSIGN_OR_RETURN(out_degrees_, store_->LoadOutDegrees());

    Env* env = store_->env();
    scratch_ = options_.scratch_dir.empty()
                   ? store_->dir() + "/baseline_xstream"
                   : options_.scratch_dir;
    NX_RETURN_NOT_OK(env->CreateDirs(scratch_));

    // One flat unsorted edge stream.
    const std::string edge_path = scratch_ + "/edges_stream.bin";
    std::unique_ptr<WritableFile> writer;
    NX_RETURN_NOT_OK(env->NewWritableFile(edge_path, &writer));
    std::vector<baselines::EdgeRecord> records;
    num_edges_ = 0;
    for (uint32_t i = 0; i < p_; ++i) {
      for (uint32_t j = 0; j < p_; ++j) {
        records.clear();
        NX_ASSIGN_OR_RETURN(SubShard ss, store_->LoadSubShard(i, j, false));
        baselines::ExpandSubShard(ss, &records);
        baselines::ShuffleEdges(&records, 0xc0ffee + i * p_ + j);
        NX_RETURN_NOT_OK(writer->Append(
            records.data(), records.size() * sizeof(baselines::EdgeRecord)));
        num_edges_ += records.size();
      }
    }
    NX_RETURN_NOT_OK(writer->Close());
    NX_RETURN_NOT_OK(env->NewRandomAccessFile(edge_path, &edge_file_));

    const uint64_t n = store_->num_vertices();
    values_.resize(n);
    any_active_ = false;
    for (uint64_t v = 0; v < n; ++v) {
      values_[v] = program_.Init(static_cast<VertexId>(v), out_degrees_[v]);
      any_active_ = any_active_ || program_.InitiallyActive(v);
    }
    return Status::OK();
  }

  Status RunIteration() {
    const Manifest& m = store_->manifest();
    Env* env = store_->env();

    // ---- Scatter: stream edges, emit updates partitioned by destination
    // interval. ----
    std::vector<std::unique_ptr<WritableFile>> update_files(p_);
    std::vector<std::unique_ptr<std::mutex>> update_mus(p_);
    std::vector<uint64_t> update_counts(p_, 0);
    for (uint32_t j = 0; j < p_; ++j) {
      NX_RETURN_NOT_OK(env->NewWritableFile(
          scratch_ + "/updates_" + std::to_string(j) + ".bin",
          &update_files[j]));
      update_mus[j] = std::make_unique<std::mutex>();
    }

    constexpr size_t kBatch = 1 << 16;  // edges per streamed read
    std::vector<baselines::EdgeRecord> buf(kBatch);
    std::mutex error_mu;
    Status first_error;
    for (uint64_t pos = 0; pos < num_edges_; pos += kBatch) {
      const size_t count =
          static_cast<size_t>(std::min<uint64_t>(kBatch, num_edges_ - pos));
      const uint64_t bytes = count * sizeof(baselines::EdgeRecord);
      size_t got = 0;
      NX_RETURN_NOT_OK(edge_file_->ReadAt(
          pos * sizeof(baselines::EdgeRecord), bytes, buf.data(), &got));
      if (got != bytes) return Status::Corruption("edge stream truncated");
      bytes_read_ += bytes;
      edges_traversed_ += count;

      // Parallel scatter: each chunk buffers its updates per partition and
      // flushes them under that partition's mutex.
      std::atomic<uint64_t> scatter_bytes{0};
      pool_->ParallelFor(
          0, count, 16384,
          [&, this](size_t kb, size_t ke) {
            std::vector<std::string> mine(p_);
            for (size_t k = kb; k < ke; ++k) {
              const auto& e = buf[k];
              EdgeContext ctx{e.src, e.dst, e.weight, out_degrees_[e.src]};
              const Value contribution = program_.Gather(ctx, values_[e.src]);
              UpdateRecord rec{e.dst, contribution};
              const uint32_t j = m.IntervalOf(e.dst);
              mine[j].append(reinterpret_cast<const char*>(&rec),
                             sizeof(rec));
            }
            for (uint32_t j = 0; j < p_; ++j) {
              if (mine[j].empty()) continue;
              std::lock_guard<std::mutex> lock(*update_mus[j]);
              Status s = update_files[j]->Append(mine[j]);
              if (!s.ok()) {
                std::lock_guard<std::mutex> elock(error_mu);
                if (first_error.ok()) first_error = s;
              }
              update_counts[j] += mine[j].size() / sizeof(UpdateRecord);
              scatter_bytes.fetch_add(mine[j].size(),
                                      std::memory_order_relaxed);
            }
          });
      bytes_written_ += scatter_bytes.load(std::memory_order_relaxed);
      if (!first_error.ok()) return first_error;
    }
    for (auto& f : update_files) NX_RETURN_NOT_OK(f->Close());

    // ---- Gather: stream each partition's updates, accumulate, apply. ----
    std::atomic<uint8_t> changed{0};
    std::vector<UpdateRecord> updates;
    for (uint32_t j = 0; j < p_; ++j) {
      const VertexId base = m.interval_begin(j);
      const uint32_t isize = m.interval_size(j);
      std::unique_ptr<std::atomic<Value>[]> acc(new std::atomic<Value>[isize]);
      for (uint32_t k = 0; k < isize; ++k) {
        acc[k].store(Program::Identity(), std::memory_order_relaxed);
      }
      const std::string path =
          scratch_ + "/updates_" + std::to_string(j) + ".bin";
      updates.resize(update_counts[j]);
      if (update_counts[j] > 0) {
        std::unique_ptr<SequentialFile> f;
        NX_RETURN_NOT_OK(env->NewSequentialFile(path, &f));
        size_t got = 0;
        const uint64_t bytes = update_counts[j] * sizeof(UpdateRecord);
        NX_RETURN_NOT_OK(f->Read(bytes, updates.data(), &got));
        if (got != bytes) return Status::Corruption("update stream truncated");
        bytes_read_ += bytes;
      }
      std::atomic<Value>* acc_ptr = acc.get();
      const UpdateRecord* recs = updates.data();
      pool_->ParallelFor(0, update_counts[j], 16384,
                         [acc_ptr, recs, base](size_t kb, size_t ke) {
                           for (size_t k = kb; k < ke; ++k) {
                             baselines::AtomicAccumulate<Program>(
                                 &acc_ptr[recs[k].dst - base], recs[k].value);
                           }
                         });
      std::atomic<uint8_t> local_changed{0};
      pool_->ParallelFor(
          0, isize, 8192,
          [this, acc_ptr, base, &local_changed](size_t kb, size_t ke) {
            bool any = false;
            for (size_t k = kb; k < ke; ++k) {
              const VertexId v = base + static_cast<VertexId>(k);
              const Value a = acc_ptr[k].load(std::memory_order_relaxed);
              const Value next = program_.Apply(v, a, values_[v]);
              any = any || program_.Changed(values_[v], next);
              acc_ptr[k].store(next, std::memory_order_relaxed);
            }
            if (any) local_changed.store(1, std::memory_order_relaxed);
          });
      // Publish after the whole interval is applied (values_ reads above
      // only touch this interval, so in-place publication is safe).
      for (uint32_t k = 0; k < isize; ++k) {
        values_[base + k] = acc_ptr[k].load(std::memory_order_relaxed);
      }
      if (local_changed.load(std::memory_order_relaxed)) {
        changed.store(1, std::memory_order_relaxed);
      }
      NX_RETURN_NOT_OK(env->RemoveFile(path));
    }
    any_active_ = changed.load(std::memory_order_relaxed) != 0;
    return Status::OK();
  }

  std::shared_ptr<const GraphStore> store_;
  Program program_;
  RunOptions options_;

  uint32_t p_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<uint32_t> out_degrees_;
  std::unique_ptr<RandomAccessFile> edge_file_;
  std::string scratch_;
  uint64_t num_edges_ = 0;
  std::vector<Value> values_;
  bool any_active_ = false;
  uint64_t edges_traversed_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace nxgraph

#endif  // NXGRAPH_BASELINES_XSTREAM_LIKE_H_
