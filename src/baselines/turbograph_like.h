// TurboGraph/GridGraph-like baseline: unsorted edge blocks updated with the
// interval-pair paging strategy of paper §III-C. Source intervals are
// re-read from disk once per (source, destination) pair unless an interval
// cache holds them, reproducing the n*P*Ba read term of the analysis.
#ifndef NXGRAPH_BASELINES_TURBOGRAPH_LIKE_H_
#define NXGRAPH_BASELINES_TURBOGRAPH_LIKE_H_

#include <algorithm>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/common.h"
#include "src/engine/options.h"
#include "src/storage/graph_store.h"
#include "src/storage/interval_store.h"
#include "src/util/thread_pool.h"
#include "src/util/timer.h"

namespace nxgraph {

/// \brief Executes a VertexProgram with the TurboGraph-like update
/// discipline: vertex attributes live on disk in interval pages; the
/// engine iterates destination intervals, pages in each source interval in
/// turn, and streams the unsorted (shuffled) edge block between the pair
/// with atomic scatter updates.
template <VertexProgram Program>
class TurboGraphLikeEngine {
 public:
  using Value = typename Program::Value;

  TurboGraphLikeEngine(std::shared_ptr<const GraphStore> store,
                       Program program, RunOptions options)
      : store_(std::move(store)),
        program_(std::move(program)),
        options_(std::move(options)) {}

  Result<RunStats> Run() {
    RunStats stats;
    stats.strategy = "TurboGraph-like";
    Timer total;
    NX_RETURN_NOT_OK(Prepare());
    stats.preprocess_seconds = total.ElapsedSeconds();

    Timer loop;
    int iter = 0;
    for (;;) {
      if (options_.max_iterations > 0 && iter >= options_.max_iterations) {
        break;
      }
      if (!any_active_) break;
      Timer iter_timer;
      NX_RETURN_NOT_OK(RunIteration(iter));
      stats.iteration_seconds.push_back(iter_timer.ElapsedSeconds());
      ++iter;
    }
    stats.iterations = iter;
    stats.seconds = loop.ElapsedSeconds();
    stats.edges_traversed = edges_traversed_;
    stats.bytes_read = bytes_read_;
    stats.bytes_written = bytes_written_;

    // Materialize final values (parity of the last completed iteration).
    final_values_.resize(store_->num_vertices());
    const Manifest& m = store_->manifest();
    std::vector<Value> buf;
    for (uint32_t i = 0; i < p_; ++i) {
      buf.resize(m.interval_size(i));
      NX_RETURN_NOT_OK(values_->Read(i, iter % 2, buf.data()));
      std::copy(buf.begin(), buf.end(),
                final_values_.begin() + m.interval_begin(i));
    }
    return stats;
  }

  const std::vector<Value>& values() const { return final_values_; }

 private:
  struct Block {
    uint64_t file_offset = 0;
    uint64_t bytes = 0;
    size_t num_edges = 0;
  };

  Status Prepare() {
    const Manifest& m = store_->manifest();
    p_ = m.num_intervals;
    if (options_.direction != EdgeDirection::kForward) {
      return Status::NotSupported(
          "TurboGraph-like baseline supports forward runs only");
    }
    pool_ = std::make_unique<ThreadPool>(std::max(options_.num_threads, 0));
    NX_ASSIGN_OR_RETURN(out_degrees_, store_->LoadOutDegrees());

    Env* env = store_->env();
    const std::string scratch = options_.scratch_dir.empty()
                                    ? store_->dir() + "/baseline_turbo"
                                    : options_.scratch_dir;
    NX_RETURN_NOT_OK(env->CreateDirs(scratch));

    // Unsorted edge blocks, one per interval pair (grid cells).
    const std::string block_path = scratch + "/blocks_unsorted.bin";
    std::unique_ptr<WritableFile> writer;
    NX_RETURN_NOT_OK(env->NewWritableFile(block_path, &writer));
    blocks_.assign(static_cast<size_t>(p_) * p_, {});
    uint64_t offset = 0;
    std::vector<baselines::EdgeRecord> records;
    for (uint32_t i = 0; i < p_; ++i) {
      for (uint32_t j = 0; j < p_; ++j) {
        records.clear();
        NX_ASSIGN_OR_RETURN(SubShard ss, store_->LoadSubShard(i, j, false));
        baselines::ExpandSubShard(ss, &records);
        baselines::ShuffleEdges(&records, 0x9e3779b9u + i * p_ + j);
        Block& blk = blocks_[static_cast<size_t>(i) * p_ + j];
        blk.file_offset = offset;
        blk.num_edges = records.size();
        blk.bytes = records.size() * sizeof(baselines::EdgeRecord);
        NX_RETURN_NOT_OK(writer->Append(records.data(), blk.bytes));
        offset += blk.bytes;
      }
    }
    NX_RETURN_NOT_OK(writer->Close());
    NX_RETURN_NOT_OK(env->NewRandomAccessFile(block_path, &block_file_));

    // On-disk ping-pong attribute pages.
    NX_ASSIGN_OR_RETURN(values_, IntervalStore::Create(
                                     env, scratch + "/values.nxi", m,
                                     sizeof(Value)));
    const uint64_t n = store_->num_vertices();
    any_active_ = false;
    std::vector<Value> init;
    for (uint32_t i = 0; i < p_; ++i) {
      const VertexId base = m.interval_begin(i);
      init.resize(m.interval_size(i));
      for (uint32_t k = 0; k < init.size(); ++k) {
        init[k] = program_.Init(base + k, out_degrees_[base + k]);
        any_active_ = any_active_ || program_.InitiallyActive(base + k);
      }
      NX_RETURN_NOT_OK(values_->Write(i, 0, init.data()));
      bytes_written_ += init.size() * sizeof(Value);
    }
    // Interval cache sized from the leftover budget (TurboGraph's buffer
    // pool of slotted pages).
    const uint64_t page_bytes =
        static_cast<uint64_t>(m.interval_size(0)) * sizeof(Value);
    if (options_.memory_budget_bytes == 0) {
      cache_capacity_ = p_;
    } else {
      // Working set: one destination accumulator + one old page + pool.
      const uint64_t pool =
          options_.memory_budget_bytes > 3 * page_bytes
              ? options_.memory_budget_bytes - 3 * page_bytes
              : 0;
      cache_capacity_ = static_cast<uint32_t>(
          std::min<uint64_t>(p_, pool / std::max<uint64_t>(page_bytes, 1)));
    }
    (void)n;
    return Status::OK();
  }

  // Reads interval i's previous-iteration page, via the bounded cache.
  Status GetSourcePage(uint32_t i, int parity,
                       std::shared_ptr<std::vector<Value>>* out) {
    auto it = page_cache_.find(i);
    if (it != page_cache_.end()) {
      *out = it->second;
      return Status::OK();
    }
    auto page = std::make_shared<std::vector<Value>>(
        store_->manifest().interval_size(i));
    NX_RETURN_NOT_OK(values_->Read(i, parity, page->data()));
    bytes_read_ += page->size() * sizeof(Value);
    if (page_cache_.size() < cache_capacity_) {
      page_cache_.emplace(i, page);
    }
    *out = page;
    return Status::OK();
  }

  Status RunIteration(int iter) {
    const Manifest& m = store_->manifest();
    const int read_parity = iter % 2;
    const int write_parity = 1 - read_parity;
    page_cache_.clear();

    std::atomic<uint8_t> changed{0};
    std::vector<baselines::EdgeRecord> stream_buf;
    std::vector<Value> old_buf;
    for (uint32_t j = 0; j < p_; ++j) {
      const VertexId dst_base = m.interval_begin(j);
      const uint32_t isize = m.interval_size(j);
      std::unique_ptr<std::atomic<Value>[]> acc(new std::atomic<Value>[isize]);
      for (uint32_t k = 0; k < isize; ++k) {
        acc[k].store(Program::Identity(), std::memory_order_relaxed);
      }
      for (uint32_t i = 0; i < p_; ++i) {
        const Block& blk = blocks_[static_cast<size_t>(i) * p_ + j];
        if (blk.num_edges == 0) continue;
        std::shared_ptr<std::vector<Value>> src_page;
        NX_RETURN_NOT_OK(GetSourcePage(i, read_parity, &src_page));
        stream_buf.resize(blk.num_edges);
        size_t got = 0;
        NX_RETURN_NOT_OK(block_file_->ReadAt(blk.file_offset, blk.bytes,
                                             stream_buf.data(), &got));
        if (got != blk.bytes) {
          return Status::Corruption("baseline block truncated");
        }
        bytes_read_ += blk.bytes;
        edges_traversed_ += blk.num_edges;
        const VertexId src_base = m.interval_begin(i);
        const Value* src_vals = src_page->data();
        const auto* edges = stream_buf.data();
        std::atomic<Value>* acc_ptr = acc.get();
        pool_->ParallelFor(
            0, blk.num_edges, 8192,
            [this, edges, src_vals, src_base, dst_base, acc_ptr](size_t kb,
                                                                 size_t ke) {
              for (size_t k = kb; k < ke; ++k) {
                const auto& e = edges[k];
                EdgeContext ctx{e.src, e.dst, e.weight,
                                out_degrees_[e.src]};
                const Value contribution =
                    program_.Gather(ctx, src_vals[e.src - src_base]);
                baselines::AtomicAccumulate<Program>(
                    &acc_ptr[e.dst - dst_base], contribution);
              }
            });
      }
      // Apply and write the destination page.
      old_buf.resize(isize);
      NX_RETURN_NOT_OK(values_->Read(j, read_parity, old_buf.data()));
      bytes_read_ += isize * sizeof(Value);
      std::atomic<uint8_t> local_changed{0};
      std::atomic<Value>* acc_ptr = acc.get();
      pool_->ParallelFor(
          0, isize, 8192,
          [this, acc_ptr, &old_buf, dst_base, &local_changed](size_t kb,
                                                              size_t ke) {
            bool any = false;
            for (size_t k = kb; k < ke; ++k) {
              const Value a = acc_ptr[k].load(std::memory_order_relaxed);
              const Value next = program_.Apply(
                  dst_base + static_cast<VertexId>(k), a, old_buf[k]);
              any = any || program_.Changed(old_buf[k], next);
              old_buf[k] = next;
            }
            if (any) local_changed.store(1, std::memory_order_relaxed);
          });
      NX_RETURN_NOT_OK(values_->Write(j, write_parity, old_buf.data()));
      bytes_written_ += isize * sizeof(Value);
      if (local_changed.load(std::memory_order_relaxed)) {
        changed.store(1, std::memory_order_relaxed);
      }
    }
    any_active_ = changed.load(std::memory_order_relaxed) != 0;
    return Status::OK();
  }

  std::shared_ptr<const GraphStore> store_;
  Program program_;
  RunOptions options_;

  uint32_t p_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<uint32_t> out_degrees_;
  std::vector<Block> blocks_;
  std::unique_ptr<RandomAccessFile> block_file_;
  std::unique_ptr<IntervalStore> values_;
  std::unordered_map<uint32_t, std::shared_ptr<std::vector<Value>>>
      page_cache_;
  uint32_t cache_capacity_ = 0;
  std::vector<Value> final_values_;
  bool any_active_ = false;
  uint64_t edges_traversed_ = 0;
  uint64_t bytes_read_ = 0;
  uint64_t bytes_written_ = 0;
};

}  // namespace nxgraph

#endif  // NXGRAPH_BASELINES_TURBOGRAPH_LIKE_H_
