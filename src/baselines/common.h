// Shared helpers for the baseline engines. The baselines exist to measure
// the paper's design deltas on identical substrates:
//   - GraphChi-like:   source-sorted shards, coarse-grained parallelism
//                      (atomic scatter writes), whole-shard loads.
//   - TurboGraph-like: unsorted edge blocks, interval-pair paging
//                      (covers GridGraph's update discipline, §III-C).
//   - X-Stream-like:   edge-centric scatter/gather through an on-disk
//                      updates stream.
#ifndef NXGRAPH_BASELINES_COMMON_H_
#define NXGRAPH_BASELINES_COMMON_H_

#include <atomic>
#include <cstring>
#include <vector>

#include "src/engine/vertex_program.h"
#include "src/storage/graph_store.h"
#include "src/util/random.h"

namespace nxgraph {
namespace baselines {

/// CAS-loop accumulate — the cost the paper's destination sorting avoids.
/// Values must be lock-free-atomic-sized PODs (<= 8 bytes).
template <typename Program>
void AtomicAccumulate(std::atomic<typename Program::Value>* slot,
                      const typename Program::Value& contribution) {
  using Value = typename Program::Value;
  Value expected = slot->load(std::memory_order_relaxed);
  Value desired = Program::Accumulate(expected, contribution);
  while (!slot->compare_exchange_weak(expected, desired,
                                      std::memory_order_relaxed)) {
    desired = Program::Accumulate(expected, contribution);
  }
}

/// Flat weighted edge triple used by the baseline storages.
struct EdgeRecord {
  VertexId src;
  VertexId dst;
  float weight;
};

/// Expands a decoded sub-shard back into flat edge records (drops the CSR
/// structure the baselines do not have).
inline void ExpandSubShard(const SubShard& ss, std::vector<EdgeRecord>* out) {
  const bool weighted = !ss.weights.empty();
  for (uint32_t g = 0; g < ss.num_dsts(); ++g) {
    const VertexId dst = ss.dsts[g];
    for (uint32_t k = ss.offsets[g]; k < ss.offsets[g + 1]; ++k) {
      out->push_back(
          EdgeRecord{ss.srcs[k], dst, weighted ? ss.weights[k] : 1.0f});
    }
  }
}

/// Deterministic in-place shuffle, used to de-sort edge blocks so the
/// unsorted baselines do not accidentally inherit DSSS cache behaviour.
inline void ShuffleEdges(std::vector<EdgeRecord>* edges, uint64_t seed) {
  Xoshiro256 rng(seed);
  for (size_t k = edges->size(); k > 1; --k) {
    const size_t j = rng.NextBounded(k);
    std::swap((*edges)[k - 1], (*edges)[j]);
  }
}

}  // namespace baselines
}  // namespace nxgraph

#endif  // NXGRAPH_BASELINES_COMMON_H_
