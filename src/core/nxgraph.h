// NXgraph public API: single include for library users.
//
// Typical usage:
//
//   #include "src/core/nxgraph.h"
//
//   auto edges = nxgraph::GenerateRmat({.scale = 18, .edge_factor = 16});
//   auto store = nxgraph::BuildGraphStore(edges, "/tmp/g").value();
//   auto pr = nxgraph::RunPageRank(store, {}, {}).value();
//
// See README.md for a walkthrough and DESIGN.md for architecture.
#ifndef NXGRAPH_CORE_NXGRAPH_H_
#define NXGRAPH_CORE_NXGRAPH_H_

#include <memory>
#include <string>

#include "src/algos/bfs.h"
#include "src/algos/hits.h"
#include "src/algos/pagerank.h"
#include "src/algos/scc.h"
#include "src/algos/sssp.h"
#include "src/algos/wcc.h"
#include "src/engine/engine.h"
#include "src/engine/io_model.h"
#include "src/engine/options.h"
#include "src/graph/datasets.h"
#include "src/graph/edge_list.h"
#include "src/graph/generators.h"
#include "src/graph/text_loader.h"
#include "src/io/env.h"
#include "src/storage/graph_store.h"
#include "src/util/result.h"
#include "src/util/status.h"

namespace nxgraph {

/// \brief Preprocessing configuration for BuildGraphStore.
struct BuildOptions {
  /// Number of intervals P (paper Fig. 7: 12-48 all work well).
  uint32_t num_intervals = 16;
  /// Build the transposed sub-shards as well (needed by WCC / SCC).
  bool build_transpose = true;
  /// Drop duplicate (src, dst) pairs during sharding.
  bool dedup = false;
  /// Sub-shard blob encoding (see docs/storage-format.md): NXS2
  /// delta-varint by default (NXGRAPH_SUBSHARD_FORMAT overrides), NXS1 for
  /// the raw fixed-width layout. Stores of either format open identically.
  SubShardFormat subshard_format = DefaultSubShardFormat();
  /// Per-blob source-summary sizing for selective scheduling (manifest v3,
  /// see docs/storage-format.md). Defaults follow NXGRAPH_SELECTIVE;
  /// {0, 0} writes a summary-free store (still manifest v3).
  SummaryParams summary =
      DefaultSelectiveScheduling() ? SummaryParams{} : SummaryParams{0, 0};
  /// Filesystem to build into; nullptr == Env::Default().
  Env* env = nullptr;
};

/// Runs the full preprocessing pipeline (degreeing + sharding) on an edge
/// list and opens the resulting store.
Result<std::shared_ptr<GraphStore>> BuildGraphStore(
    const EdgeList& edges, const std::string& dir,
    const BuildOptions& options = {});

/// Same, reading a text edge list ("src dst [weight]" lines) from
/// `edge_path`.
Result<std::shared_ptr<GraphStore>> BuildGraphStoreFromTextFile(
    const std::string& edge_path, const std::string& dir,
    const BuildOptions& options = {});

/// Opens a previously built store.
Result<std::shared_ptr<GraphStore>> OpenGraphStore(const std::string& dir,
                                                   Env* env = nullptr);

}  // namespace nxgraph

#endif  // NXGRAPH_CORE_NXGRAPH_H_
