#include "src/core/nxgraph.h"
#include "src/prep/degreer.h"
#include "src/prep/sharder.h"

namespace nxgraph {

Result<std::shared_ptr<GraphStore>> BuildGraphStore(
    const EdgeList& edges, const std::string& dir,
    const BuildOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  NX_ASSIGN_OR_RETURN(DegreeResult degrees, RunDegreer(env, edges, dir));
  SharderOptions sharder_options;
  sharder_options.num_intervals = options.num_intervals;
  sharder_options.build_transpose = options.build_transpose;
  sharder_options.dedup = options.dedup;
  sharder_options.format = options.subshard_format;
  sharder_options.summary = options.summary;
  NX_ASSIGN_OR_RETURN(Manifest manifest,
                      RunSharder(env, dir, degrees, sharder_options));
  (void)manifest;
  return GraphStore::Open(env, dir);
}

Result<std::shared_ptr<GraphStore>> BuildGraphStoreFromTextFile(
    const std::string& edge_path, const std::string& dir,
    const BuildOptions& options) {
  Env* env = options.env != nullptr ? options.env : Env::Default();
  NX_ASSIGN_OR_RETURN(EdgeList edges, LoadEdgeListText(env, edge_path));
  return BuildGraphStore(edges, dir, options);
}

Result<std::shared_ptr<GraphStore>> OpenGraphStore(const std::string& dir,
                                                   Env* env) {
  return GraphStore::Open(env != nullptr ? env : Env::Default(), dir);
}

}  // namespace nxgraph
