#include <gtest/gtest.h>

#include <cmath>

#include "src/algos/hits.h"
#include "src/algos/reference.h"
#include "src/core/nxgraph.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

// Straightforward reference HITS on a flat edge list.
void ReferenceHits(const ReferenceGraph& g, int iterations,
                   std::vector<double>* authority,
                   std::vector<double>* hub) {
  const uint64_t n = g.num_vertices;
  authority->assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  hub->assign(n, 1.0 / std::sqrt(static_cast<double>(n)));
  auto normalize = [](std::vector<double>* v) {
    double norm = 0;
    for (double x : *v) norm += x * x;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (double& x : *v) x /= norm;
    }
  };
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next_auth(n, 0.0);
    for (const Edge& e : g.edges) next_auth[e.dst] += (*hub)[e.src];
    normalize(&next_auth);
    *authority = next_auth;
    std::vector<double> next_hub(n, 0.0);
    for (const Edge& e : g.edges) next_hub[e.src] += (*authority)[e.dst];
    normalize(&next_hub);
    *hub = next_hub;
  }
}

TEST(HitsTest, MatchesReferenceOnRandomGraph) {
  EdgeList edges = testing::RandomGraph(200, 1600, 91);
  auto ms = testing::BuildMemStore(edges, 4);
  HitsOptions options;
  options.iterations = 5;
  auto result = RunHits(ms.store, options, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  std::vector<double> expected_auth, expected_hub;
  ReferenceHits(*ref_graph, 5, &expected_auth, &expected_hub);
  for (size_t v = 0; v < expected_auth.size(); ++v) {
    ASSERT_NEAR(result->authority[v], expected_auth[v], 1e-9) << v;
    ASSERT_NEAR(result->hub[v], expected_hub[v], 1e-9) << v;
  }
}

TEST(HitsTest, StarGraphSeparatesAuthorityAndHub) {
  // All spokes point at the center: the center is the sole authority,
  // the spokes are the hubs.
  EdgeList edges;
  for (uint32_t v = 1; v <= 10; ++v) edges.Add(v, 0);
  auto ms = testing::BuildMemStore(edges, 2);
  auto result = RunHits(ms.store, HitsOptions{}, RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->authority[0], 1.0, 1e-9);
  EXPECT_NEAR(result->hub[0], 0.0, 1e-9);
  for (size_t v = 1; v <= 10; ++v) {
    EXPECT_NEAR(result->authority[v], 0.0, 1e-9);
    EXPECT_NEAR(result->hub[v], 1.0 / std::sqrt(10.0), 1e-9);
  }
}

TEST(HitsTest, ScoresAreNormalized) {
  EdgeList edges = testing::RandomGraph(100, 700, 92);
  auto ms = testing::BuildMemStore(edges, 3);
  auto result = RunHits(ms.store, HitsOptions{}, RunOptions{});
  ASSERT_TRUE(result.ok());
  double auth_norm = 0, hub_norm = 0;
  for (double a : result->authority) auth_norm += a * a;
  for (double h : result->hub) hub_norm += h * h;
  EXPECT_NEAR(std::sqrt(auth_norm), 1.0, 1e-9);
  EXPECT_NEAR(std::sqrt(hub_norm), 1.0, 1e-9);
}

TEST(HitsTest, RequiresTranspose) {
  EdgeList edges = testing::RandomGraph(20, 80, 93);
  auto ms = testing::BuildMemStore(edges, 2, /*transpose=*/false);
  auto result = RunHits(ms.store, HitsOptions{}, RunOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(HitsTest, AgreesAcrossStrategies) {
  EdgeList edges = testing::RandomGraph(150, 1200, 94);
  auto ms = testing::BuildMemStore(edges, 4);
  HitsOptions options;
  options.iterations = 3;
  RunOptions spu;
  auto a = RunHits(ms.store, options, spu);
  ASSERT_TRUE(a.ok());
  RunOptions dpu;
  dpu.strategy = UpdateStrategy::kDoublePhase;
  auto b = RunHits(ms.store, options, dpu);
  ASSERT_TRUE(b.ok());
  for (size_t v = 0; v < a->authority.size(); ++v) {
    ASSERT_NEAR(a->authority[v], b->authority[v], 1e-12);
    ASSERT_NEAR(a->hub[v], b->hub[v], 1e-12);
  }
}

}  // namespace
}  // namespace nxgraph
