#include <gtest/gtest.h>

#include "src/graph/edge_list.h"
#include "src/graph/text_loader.h"
#include "src/io/env.h"

namespace nxgraph {
namespace {

TEST(EdgeListTest, AddAndAccess) {
  EdgeList edges;
  edges.Add(1, 2);
  edges.Add(3, 4);
  EXPECT_EQ(edges.num_edges(), 2u);
  EXPECT_EQ(edges.src(0), 1u);
  EXPECT_EQ(edges.dst(1), 4u);
  EXPECT_FALSE(edges.has_weights());
  EXPECT_EQ(edges.weight(0), 1.0f);  // default weight
}

TEST(EdgeListTest, MixedWeightedBackfills) {
  EdgeList edges;
  edges.Add(1, 2);
  edges.AddWeighted(3, 4, 2.5f);
  EXPECT_TRUE(edges.has_weights());
  EXPECT_EQ(edges.weight(0), 1.0f);
  EXPECT_EQ(edges.weight(1), 2.5f);
}

TEST(EdgeListTest, SymmetrizeDoublesEdges) {
  EdgeList edges;
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Symmetrize();
  ASSERT_EQ(edges.num_edges(), 4u);
  EXPECT_EQ(edges.src(2), 2u);
  EXPECT_EQ(edges.dst(2), 1u);
  EXPECT_EQ(edges.src(3), 3u);
  EXPECT_EQ(edges.dst(3), 2u);
}

TEST(EdgeListTest, SymmetrizePreservesWeights) {
  EdgeList edges;
  edges.AddWeighted(1, 2, 0.5f);
  edges.Symmetrize();
  ASSERT_EQ(edges.num_edges(), 2u);
  EXPECT_EQ(edges.weight(1), 0.5f);
}

TEST(EdgeListTest, CountDistinctVertices) {
  EdgeList edges;
  edges.Add(10, 20);
  edges.Add(20, 30);
  edges.Add(10, 30);
  EXPECT_EQ(edges.CountDistinctVertices(), 3u);
}

TEST(TextLoaderTest, ParsesWhitespaceAndComments) {
  auto r = ParseEdgeListText(
      "# comment line\n"
      "% matrix-market comment\n"
      "1 2\n"
      "\n"
      "3\t4\n"
      "  5 6  \n");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_edges(), 3u);
  EXPECT_EQ(r->src(0), 1u);
  EXPECT_EQ(r->dst(2), 6u);
}

TEST(TextLoaderTest, ParsesCommaSeparated) {
  auto r = ParseEdgeListText("1,2\n3,4\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_edges(), 2u);
}

TEST(TextLoaderTest, ParsesWeights) {
  auto r = ParseEdgeListText("1 2 0.5\n3 4 2\n");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_weights());
  EXPECT_FLOAT_EQ(r->weight(0), 0.5f);
  EXPECT_FLOAT_EQ(r->weight(1), 2.0f);
}

TEST(TextLoaderTest, Parses64BitIndices) {
  auto r = ParseEdgeListText("8589934592 17179869184\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->src(0), 8589934592ULL);
  EXPECT_EQ(r->dst(0), 17179869184ULL);
}

TEST(TextLoaderTest, RejectsMissingColumn) {
  auto r = ParseEdgeListText("1 2\n3\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
}

TEST(TextLoaderTest, RejectsNonNumeric) {
  auto r = ParseEdgeListText("a b\n");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(TextLoaderTest, RejectsBadWeight) {
  auto r = ParseEdgeListText("1 2 heavy\n");
  ASSERT_FALSE(r.ok());
}

TEST(TextLoaderTest, NoTrailingNewlineOk) {
  auto r = ParseEdgeListText("1 2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_edges(), 1u);
}

TEST(TextLoaderTest, FileRoundTrip) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(7, 8);
  edges.Add(9, 10);
  ASSERT_TRUE(WriteEdgeListText(env.get(), "g.txt", edges).ok());
  auto r = LoadEdgeListText(env.get(), "g.txt");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->num_edges(), 2u);
  EXPECT_EQ(r->src(0), 7u);
  EXPECT_EQ(r->dst(1), 10u);
}

TEST(TextLoaderTest, WeightedFileRoundTrip) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.AddWeighted(1, 2, 1.25f);
  ASSERT_TRUE(WriteEdgeListText(env.get(), "w.txt", edges).ok());
  auto r = LoadEdgeListText(env.get(), "w.txt");
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_weights());
  EXPECT_FLOAT_EQ(r->weight(0), 1.25f);
}

}  // namespace
}  // namespace nxgraph
