#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "src/io/env.h"
#include "src/util/logging.h"
#include "src/util/timer.h"

namespace nxgraph {
namespace {

// Both Env implementations must satisfy the same contract.
class EnvContractTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "mem") {
      owned_ = NewMemEnv();
      env_ = owned_.get();
      root_ = "root";
    } else {
      env_ = Env::Default();
      char tmpl[] = "/tmp/nxgraph_env_test_XXXXXX";
      root_ = mkdtemp(tmpl);
    }
    ASSERT_TRUE(env_->CreateDirs(root_).ok());
  }

  void TearDown() override {
    ASSERT_TRUE(env_->RemoveDirRecursively(root_).ok());
  }

  std::string Path(const std::string& name) { return root_ + "/" + name; }

  std::unique_ptr<Env> owned_;
  Env* env_ = nullptr;
  std::string root_;
};

TEST_P(EnvContractTest, WriteReadRoundTrip) {
  const std::string path = Path("f");
  ASSERT_TRUE(WriteStringToFile(env_, path, "hello nxgraph").ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, path, &data).ok());
  EXPECT_EQ(data, "hello nxgraph");
}

TEST_P(EnvContractTest, MissingFileIsNotFound) {
  std::string data;
  Status s = ReadFileToString(env_, Path("missing"), &data);
  EXPECT_TRUE(s.IsNotFound()) << s.ToString();
}

TEST_P(EnvContractTest, FileExistsAndSize) {
  const std::string path = Path("sized");
  ASSERT_TRUE(WriteStringToFile(env_, path, std::string(1234, 'x')).ok());
  EXPECT_TRUE(env_->FileExists(path));
  EXPECT_FALSE(env_->FileExists(Path("nope")));
  auto size = env_->GetFileSize(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 1234u);
}

TEST_P(EnvContractTest, SequentialReadStreamsAndEofs) {
  const std::string path = Path("seq");
  ASSERT_TRUE(WriteStringToFile(env_, path, "abcdefghij").ok());
  std::unique_ptr<SequentialFile> f;
  ASSERT_TRUE(env_->NewSequentialFile(path, &f).ok());
  char buf[4];
  size_t n = 0;
  ASSERT_TRUE(f->Read(4, buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "abcd");
  ASSERT_TRUE(f->Skip(2).ok());
  ASSERT_TRUE(f->Read(4, buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "ghij");
  ASSERT_TRUE(f->Read(4, buf, &n).ok());
  EXPECT_EQ(n, 0u);  // EOF
}

TEST_P(EnvContractTest, RandomAccessReadsAt) {
  const std::string path = Path("rand");
  ASSERT_TRUE(WriteStringToFile(env_, path, "0123456789").ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env_->NewRandomAccessFile(path, &f).ok());
  char buf[3];
  size_t n = 0;
  ASSERT_TRUE(f->ReadAt(4, 3, buf, &n).ok());
  EXPECT_EQ(std::string(buf, n), "456");
  ASSERT_TRUE(f->ReadAt(8, 3, buf, &n).ok());
  EXPECT_EQ(n, 2u);  // short read at EOF
}

TEST_P(EnvContractTest, RandomWriteExtendsAndOverwrites) {
  const std::string path = Path("rw");
  std::unique_ptr<RandomWriteFile> f;
  ASSERT_TRUE(env_->NewRandomWriteFile(path, &f).ok());
  ASSERT_TRUE(f->WriteAt(4, "WXYZ", 4).ok());
  ASSERT_TRUE(f->WriteAt(0, "abcd", 4).ok());
  ASSERT_TRUE(f->Close().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, path, &data).ok());
  EXPECT_EQ(data, "abcdWXYZ");
}

TEST_P(EnvContractTest, SyncThenAppendKeepsWriting) {
  // Sync is a durability barrier, not a terminator: appends after it must
  // land, and the durable-write helper must leave no temp file behind.
  const std::string path = Path("synced");
  std::unique_ptr<WritableFile> f;
  ASSERT_TRUE(env_->NewWritableFile(path, &f).ok());
  ASSERT_TRUE(f->Append(std::string("first")).ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append(std::string(" second")).ok());
  ASSERT_TRUE(f->Close().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, path, &data).ok());
  EXPECT_EQ(data, "first second");

  ASSERT_TRUE(WriteStringToFileDurable(env_, Path("durable"), "payload").ok());
  ASSERT_TRUE(ReadFileToString(env_, Path("durable"), &data).ok());
  EXPECT_EQ(data, "payload");
  EXPECT_FALSE(env_->FileExists(Path("durable") + ".tmp"));
}

TEST_P(EnvContractTest, RenameReplaces) {
  ASSERT_TRUE(WriteStringToFile(env_, Path("a"), "A").ok());
  ASSERT_TRUE(env_->RenameFile(Path("a"), Path("b")).ok());
  EXPECT_FALSE(env_->FileExists(Path("a")));
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("b"), &data).ok());
  EXPECT_EQ(data, "A");
}

TEST_P(EnvContractTest, ListDirSeesFiles) {
  ASSERT_TRUE(WriteStringToFile(env_, Path("one"), "1").ok());
  ASSERT_TRUE(WriteStringToFile(env_, Path("two"), "2").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(env_->ListDir(root_, &names).ok());
  EXPECT_NE(std::find(names.begin(), names.end(), "one"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "two"), names.end());
}

TEST_P(EnvContractTest, StatsCountBytes) {
  env_->stats()->Reset();
  ASSERT_TRUE(WriteStringToFile(env_, Path("s"), std::string(100, 'b')).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, Path("s"), &data).ok());
  const auto snap = env_->stats()->snapshot();
  EXPECT_GE(snap.bytes_written, 100u);
  EXPECT_GE(snap.bytes_read, 100u);
  EXPECT_GT(snap.read_ops, 0u);
  EXPECT_GT(snap.write_ops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Envs, EnvContractTest,
                         ::testing::Values("posix", "mem"));

TEST(ThrottledEnvTest, ChargesBandwidth) {
  auto mem = NewMemEnv();
  // 1 MB/s with zero seek cost; 100 KB should take ~0.1 s.
  DeviceProfile profile;
  profile.bandwidth_bytes_per_sec = 1024 * 1024;
  profile.seek_latency_sec = 0;
  auto throttled = NewThrottledEnv(mem.get(), profile);
  const std::string payload(100 * 1024, 'z');
  Timer t;
  ASSERT_TRUE(WriteStringToFile(throttled.get(), "f", payload).ok());
  const double elapsed = t.ElapsedSeconds();
  EXPECT_GE(elapsed, 0.08);
  EXPECT_LT(elapsed, 1.0);
}

TEST(ThrottledEnvTest, HddSeeksCostMoreThanSsd) {
  auto mem = NewMemEnv();
  ASSERT_TRUE(
      WriteStringToFile(mem.get(), "f", std::string(4096, 'x')).ok());
  auto time_seeks = [&](DeviceProfile profile) {
    auto env = NewThrottledEnv(mem.get(), profile);
    std::unique_ptr<RandomAccessFile> f;
    NX_CHECK_OK(env->NewRandomAccessFile("f", &f));
    char buf[16];
    size_t n;
    Timer t;
    for (int i = 0; i < 10; ++i) {
      // Alternating offsets force a seek on every access.
      NX_CHECK_OK(f->ReadAt((i % 2) * 2048, sizeof(buf), buf, &n));
    }
    return t.ElapsedSeconds();
  };
  const double hdd = time_seeks(DeviceProfile::Hdd());
  const double ssd = time_seeks(DeviceProfile::Ssd());
  EXPECT_GT(hdd, ssd * 5);
}

TEST(ThrottledEnvTest, RandomWritesPaySeeksAndFlushPaysSeek) {
  auto mem = NewMemEnv();
  auto time_writes = [&](DeviceProfile profile, bool adjacent, int flushes) {
    auto env = NewThrottledEnv(mem.get(), profile);
    std::unique_ptr<RandomWriteFile> f;
    NX_CHECK_OK(env->NewRandomWriteFile("w", &f));
    NX_CHECK_OK(f->Truncate(1 << 20));
    char buf[16] = {0};
    Timer t;
    for (int i = 0; i < 10; ++i) {
      // Adjacent writes stream; alternating offsets seek every time.
      const uint64_t off = adjacent ? static_cast<uint64_t>(i) * sizeof(buf)
                                    : (i % 2) * 65536;
      NX_CHECK_OK(f->WriteAt(off, buf, sizeof(buf)));
    }
    for (int i = 0; i < flushes; ++i) NX_CHECK_OK(f->Flush());
    return t.ElapsedSeconds();
  };
  // Non-adjacent writes must pay the HDD seek penalty like reads do.
  const double scattered = time_writes(DeviceProfile::Hdd(), false, 0);
  const double sequential = time_writes(DeviceProfile::Hdd(), true, 0);
  EXPECT_GT(scattered, sequential * 5);
  // Durability flushes are charged a seek each.
  const double flushed = time_writes(DeviceProfile::Hdd(), true, 10);
  EXPECT_GT(flushed, sequential + 10 * 0.008 * 0.5);
}

TEST(ThrottledEnvTest, PassesThroughMetadataOps) {
  auto mem = NewMemEnv();
  auto env = NewThrottledEnv(mem.get(), DeviceProfile::Ssd());
  ASSERT_TRUE(env->CreateDirs("d").ok());
  ASSERT_TRUE(WriteStringToFile(env.get(), "d/f", "x").ok());
  EXPECT_TRUE(env->FileExists("d/f"));
  EXPECT_EQ(*env->GetFileSize("d/f"), 1u);
}

}  // namespace
}  // namespace nxgraph
