// Cooperative cancellation tests: the CancelToken primitive (fan-out,
// lazy deadlines, callbacks, interruptible waits), its integration with
// RunWithRetry backoffs, single-flight cache waits, and the query runners
// (cancel at EVERY checkpoint must yield the deterministic partial result
// of the completed rounds), plus the GraphServer lifecycle — Cancel(id),
// deadline cancellation of running queries, Drain, the stall watchdog —
// and resource hygiene: no leaked pins or cache bytes after thousands of
// cancel/complete cycles, including cancels that land mid-retry on a
// flaky device.
#include "src/util/cancel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/algos/programs.h"
#include "src/engine/engine.h"
#include "src/io/flaky_env.h"
#include "src/server/graph_server.h"
#include "src/server/query_runner.h"
#include "src/util/retry.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

using Clock = CancelToken::Clock;

// ---------------------------------------------------------------------------
// CancelToken unit tests
// ---------------------------------------------------------------------------

TEST(CancelTokenTest, LifecycleAndReasonMapping) {
  CancelToken live;
  EXPECT_FALSE(live.cancelled());
  EXPECT_EQ(live.reason(), CancelReason::kNone);
  EXPECT_TRUE(live.ToStatus().ok());
  EXPECT_FALSE(live.has_deadline());

  CancelToken client;
  client.Cancel(CancelReason::kClient);
  EXPECT_TRUE(client.cancelled());
  EXPECT_EQ(client.reason(), CancelReason::kClient);
  EXPECT_TRUE(client.ToStatus().IsCancelled());
  // First reason wins; later cancels are no-ops.
  client.Cancel(CancelReason::kShutdown);
  EXPECT_EQ(client.reason(), CancelReason::kClient);

  CancelToken shutdown;
  shutdown.Cancel(CancelReason::kShutdown);
  EXPECT_TRUE(shutdown.ToStatus().IsCancelled());

  EXPECT_STREQ(CancelReasonName(CancelReason::kNone), "none");
  EXPECT_STREQ(CancelReasonName(CancelReason::kClient), "client");
  EXPECT_STREQ(CancelReasonName(CancelReason::kDeadline), "deadline");
  EXPECT_STREQ(CancelReasonName(CancelReason::kShutdown), "shutdown");
}

TEST(CancelTokenTest, DeadlineFiresLazilyOnObservation) {
  CancelToken expired =
      CancelToken::WithDeadline(Clock::now() - std::chrono::milliseconds(1));
  EXPECT_TRUE(expired.has_deadline());
  EXPECT_LE(expired.RemainingSeconds(), 0.0);
  EXPECT_TRUE(expired.cancelled());
  EXPECT_EQ(expired.reason(), CancelReason::kDeadline);
  EXPECT_TRUE(expired.ToStatus().IsDeadlineExceeded());

  CancelToken future =
      CancelToken::WithDeadline(Clock::now() + std::chrono::hours(1));
  EXPECT_FALSE(future.cancelled());
  EXPECT_GT(future.RemainingSeconds(), 3000.0);
  // An explicit cancel beats a pending deadline.
  future.Cancel(CancelReason::kClient);
  EXPECT_EQ(future.reason(), CancelReason::kClient);

  // No deadline => infinite remaining.
  CancelToken none;
  EXPECT_GT(none.RemainingSeconds(), 1e18);
}

TEST(CancelTokenTest, ChildFanOutAndDeadlineTightening) {
  CancelToken parent;
  CancelToken child = parent.Child();
  CancelToken grandchild = child.Child();
  EXPECT_FALSE(grandchild.cancelled());

  // Cancelling a child never touches the parent.
  CancelToken sibling = parent.Child();
  sibling.Cancel(CancelReason::kClient);
  EXPECT_TRUE(sibling.cancelled());
  EXPECT_FALSE(parent.cancelled());
  EXPECT_FALSE(child.cancelled());

  // Parent cancel fans out transitively with the same reason.
  parent.Cancel(CancelReason::kShutdown);
  EXPECT_TRUE(child.cancelled());
  EXPECT_TRUE(grandchild.cancelled());
  EXPECT_EQ(child.reason(), CancelReason::kShutdown);
  EXPECT_EQ(grandchild.reason(), CancelReason::kShutdown);

  // A child of an already-cancelled parent is born cancelled.
  CancelToken posthumous = parent.Child();
  EXPECT_TRUE(posthumous.cancelled());
  EXPECT_EQ(posthumous.reason(), CancelReason::kShutdown);

  // Children inherit the parent deadline and may only tighten it.
  const auto near = Clock::now() + std::chrono::seconds(10);
  const auto far = Clock::now() + std::chrono::hours(1);
  CancelToken deadlined = CancelToken::WithDeadline(near);
  EXPECT_EQ(deadlined.Child().deadline(), near);
  EXPECT_EQ(deadlined.Child(far).deadline(), near);  // cannot loosen
  const auto nearer = Clock::now() + std::chrono::seconds(1);
  EXPECT_EQ(deadlined.Child(nearer).deadline(), nearer);
}

TEST(CancelTokenTest, CallbacksFireOnceOutsideLocks) {
  CancelToken token;
  std::atomic<int> fired{0};
  // Callbacks may re-enter the token API: they run outside its lock.
  const uint64_t id = token.AddCallback([&] {
    EXPECT_TRUE(token.cancelled());
    fired.fetch_add(1);
  });
  EXPECT_NE(id, 0u);
  std::atomic<int> removed_fired{0};
  const uint64_t removed = token.AddCallback([&] { removed_fired.fetch_add(1); });
  token.RemoveCallback(removed);
  token.Cancel();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(removed_fired.load(), 0);
  token.Cancel();  // idempotent: no second firing
  EXPECT_EQ(fired.load(), 1);

  // Registering on an already-cancelled token runs inline and returns 0.
  std::atomic<int> inline_fired{0};
  EXPECT_EQ(token.AddCallback([&] { inline_fired.fetch_add(1); }), 0u);
  EXPECT_EQ(inline_fired.load(), 1);
}

TEST(CancelTokenTest, WaitForWakesEarlyOnCancel) {
  // A live token rides out the full (short) wait.
  CancelToken live;
  const auto t0 = Clock::now();
  EXPECT_FALSE(live.WaitFor(std::chrono::microseconds(2000)));
  EXPECT_GE(Clock::now() - t0, std::chrono::microseconds(1500));

  // Cancel from another thread interrupts a long wait.
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.Cancel(CancelReason::kClient);
  });
  const auto w0 = Clock::now();
  EXPECT_TRUE(token.WaitFor(std::chrono::microseconds(10'000'000)));
  EXPECT_LT(Clock::now() - w0, std::chrono::seconds(5));
  canceller.join();

  // A deadline interrupts the wait too.
  CancelToken deadlined =
      CancelToken::WithDeadline(Clock::now() + std::chrono::milliseconds(5));
  EXPECT_TRUE(deadlined.WaitFor(std::chrono::microseconds(10'000'000)));
  EXPECT_EQ(deadlined.reason(), CancelReason::kDeadline);
}

// Many threads racing Cancel (distinct reasons) against readers: exactly
// one reason wins, every observer agrees, every callback runs once.
TEST(CancelTokenTest, ConcurrentCancelHammer) {
  for (int iter = 0; iter < 200; ++iter) {
    CancelToken token;
    std::atomic<int> callbacks{0};
    token.AddCallback([&] { callbacks.fetch_add(1); });
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    const CancelReason reasons[] = {CancelReason::kClient,
                                    CancelReason::kDeadline,
                                    CancelReason::kShutdown};
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load()) {
        }
        token.Cancel(reasons[t]);
      });
    }
    std::vector<CancelReason> seen(2, CancelReason::kNone);
    for (int t = 0; t < 2; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load()) {
        }
        while (!token.cancelled()) {
        }
        seen[t] = token.reason();
      });
    }
    go.store(true);
    for (auto& th : threads) th.join();
    EXPECT_EQ(callbacks.load(), 1);
    EXPECT_NE(token.reason(), CancelReason::kNone);
    EXPECT_EQ(seen[0], token.reason());
    EXPECT_EQ(seen[1], token.reason());
  }
}

// ---------------------------------------------------------------------------
// RunWithRetry integration
// ---------------------------------------------------------------------------

TEST(RetryCancelTest, CancelInterruptsBackoffSleep) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_initial_micros = 500'000;  // half-second backoffs
  policy.backoff_max_micros = 500'000;
  policy.op_deadline_seconds = 30;
  CancelToken token;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    token.Cancel(CancelReason::kClient);
  });
  std::atomic<int> attempts{0};
  const auto t0 = Clock::now();
  Status s = RunWithRetry(
      policy, nullptr,
      [&] {
        attempts.fetch_add(1);
        return Status::TransientIOError("hiccup");
      },
      &token);
  canceller.join();
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  // Woke from the first backoff on cancel, far before the 500ms sleep
  // (generous bound for loaded CI machines).
  EXPECT_LT(Clock::now() - t0, std::chrono::milliseconds(400));
  EXPECT_GE(attempts.load(), 1);
}

TEST(RetryCancelTest, TokenDeadlineCapsRetryBudget) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.backoff_initial_micros = 100'000;
  policy.backoff_max_micros = 100'000;
  policy.op_deadline_seconds = 30;  // the token's 50ms must win
  CancelToken token =
      CancelToken::WithDeadline(Clock::now() + std::chrono::milliseconds(50));
  const auto t0 = Clock::now();
  Status s = RunWithRetry(policy, nullptr,
                          [&] { return Status::TransientIOError("hiccup"); },
                          &token);
  // Either the capped backoff budget ran out (the retryable error
  // surfaces) or a backoff wait observed the deadline (DeadlineExceeded);
  // both are correct — what is forbidden is funding the full 30s budget.
  EXPECT_FALSE(s.ok());
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(5));

  // A pre-cancelled token short-circuits before the op ever runs.
  CancelToken fired;
  fired.Cancel(CancelReason::kShutdown);
  std::atomic<int> ops{0};
  Status pre = RunWithRetry(policy, nullptr,
                            [&] {
                              ops.fetch_add(1);
                              return Status::OK();
                            },
                            &fired);
  EXPECT_TRUE(pre.IsCancelled());
  EXPECT_EQ(ops.load(), 0);
}

// ---------------------------------------------------------------------------
// Single-flight cache: follower detach, leader completion
// ---------------------------------------------------------------------------

// Env wrapper whose reads block while "armed": lets a test hold a cache
// leader mid-load while followers queue up behind it.
struct ReadGate {
  std::mutex mu;
  std::condition_variable cv;
  bool armed = false;
  bool open = false;
  int waiting = 0;

  void Block() {
    std::unique_lock<std::mutex> lock(mu);
    if (!armed || open) return;
    ++waiting;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
    --waiting;
  }
  void Arm() {
    std::lock_guard<std::mutex> lock(mu);
    armed = true;
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu);
      open = true;
    }
    cv.notify_all();
  }
  bool WaitForReader(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu);
    return cv.wait_for(lock, timeout, [&] { return waiting > 0; });
  }
};

class GatedEnv : public Env {
 public:
  GatedEnv(Env* base, ReadGate* gate) : base_(base), gate_(gate) {}

  Status NewSequentialFile(const std::string& path,
                           std::unique_ptr<SequentialFile>* out) override {
    NX_RETURN_NOT_OK(base_->NewSequentialFile(path, out));
    *out = std::make_unique<GatedSequential>(std::move(*out), gate_);
    return Status::OK();
  }
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override {
    NX_RETURN_NOT_OK(base_->NewRandomAccessFile(path, out));
    *out = std::make_unique<GatedRandom>(std::move(*out), gate_);
    return Status::OK();
  }
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    return base_->NewWritableFile(path, out);
  }
  Status NewRandomWriteFile(const std::string& path,
                            std::unique_ptr<RandomWriteFile>* out) override {
    return base_->NewRandomWriteFile(path, out);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status CreateDirs(const std::string& path) override {
    return base_->CreateDirs(path);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status RemoveDirRecursively(const std::string& path) override {
    return base_->RemoveDirRecursively(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status ListDir(const std::string& path,
                 std::vector<std::string>* names) override {
    return base_->ListDir(path, names);
  }

 private:
  struct GatedSequential : SequentialFile {
    GatedSequential(std::unique_ptr<SequentialFile> base, ReadGate* gate)
        : base(std::move(base)), gate(gate) {}
    Status Read(size_t n, void* buf, size_t* bytes_read) override {
      gate->Block();
      return base->Read(n, buf, bytes_read);
    }
    Status Skip(uint64_t n) override { return base->Skip(n); }
    std::unique_ptr<SequentialFile> base;
    ReadGate* gate;
  };
  struct GatedRandom : RandomAccessFile {
    GatedRandom(std::unique_ptr<RandomAccessFile> base, ReadGate* gate)
        : base(std::move(base)), gate(gate) {}
    Status ReadAt(uint64_t offset, size_t n, void* buf,
                  size_t* bytes_read) const override {
      gate->Block();
      return base->ReadAt(offset, n, buf, bytes_read);
    }
    std::unique_ptr<RandomAccessFile> base;
    ReadGate* gate;
  };

  Env* base_;
  ReadGate* gate_;
};

// A cancelled follower detaches from the in-flight load immediately; the
// leader (a different tenant) completes, publishes, and later callers are
// served from cache — one query's cancellation never poisons another's.
TEST(CacheCancelTest, FollowerDetachesWithoutPoisoningLeader) {
  EdgeList edges = testing::RandomGraph(80, 800, 91);
  auto ms = testing::BuildMemStore(edges, 2);
  ReadGate gate;
  GatedEnv gated(ms.env.get(), &gate);
  auto store = GraphStore::Open(&gated, "g");
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  SubShardCache cache(*store, /*budget_bytes=*/UINT64_MAX, /*evictable=*/true);

  gate.Arm();
  Status leader_status;
  std::thread leader([&] {
    auto r = cache.GetPinned(0, 0);  // no token: the leader always finishes
    leader_status = r.status();
  });
  ASSERT_TRUE(gate.WaitForReader(std::chrono::milliseconds(5000)))
      << "leader never reached the gated read";

  CancelToken token;
  Status follower_status;
  std::thread follower([&] {
    auto r = cache.GetPinned(0, 0, false, &token);
    follower_status = r.status();
  });
  // Give the follower a moment to join the in-flight wait, then cancel:
  // it must return promptly while the leader is still stuck in the read.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  token.Cancel(CancelReason::kClient);
  follower.join();
  EXPECT_TRUE(follower_status.IsCancelled()) << follower_status.ToString();

  gate.Open();
  leader.join();
  EXPECT_TRUE(leader_status.ok()) << leader_status.ToString();
  EXPECT_TRUE(cache.Contains(0, 0));
  // The published entry serves a third tenant as a plain hit.
  const auto before = cache.counters();
  EXPECT_TRUE(cache.Get(0, 0).ok());
  EXPECT_EQ(cache.counters().hits, before.hits + 1);
  EXPECT_EQ(cache.pinned_entries(), 0u);

  // A token that already fired short-circuits before touching the cache:
  // counted as neither hit nor miss.
  const auto pre = cache.counters();
  CancelToken fired;
  fired.Cancel();
  EXPECT_TRUE(cache.Get(0, 1, false, &fired).status().IsCancelled());
  const auto post = cache.counters();
  EXPECT_EQ(pre.hits, post.hits);
  EXPECT_EQ(pre.misses, post.misses);
}

// ---------------------------------------------------------------------------
// Query-runner race matrix: cancel at EVERY checkpoint
// ---------------------------------------------------------------------------

struct RunnerFixture {
  explicit RunnerFixture(uint32_t intervals, uint64_t seed)
      : ms(testing::BuildMemStore(
            testing::RandomGraph(100, 1200, seed, /*weighted=*/true),
            intervals)),
        cache(ms.store, UINT64_MAX, /*evictable=*/true),
        io_pool(2) {
    auto d = ms.store->LoadOutDegrees();
    NX_CHECK(d.ok());
    out_degrees = *d;
    auto t = ms.store->LoadInDegrees();
    NX_CHECK(t.ok());
    in_degrees = *t;
  }

  QueryContext Context() {
    QueryContext ctx;
    ctx.store = ms.store.get();
    ctx.cache = &cache;
    ctx.io_pool = &io_pool;
    ctx.prefetch_depth = 2;
    ctx.out_degrees = &out_degrees;
    ctx.in_degrees = &in_degrees;
    return ctx;
  }

  testing::MemStore ms;
  SubShardCache cache;
  ThreadPool io_pool;
  std::vector<uint32_t> out_degrees;
  std::vector<uint32_t> in_degrees;
};

// Runs `run(ctx)` cancelling at checkpoint k for every k, and checks each
// partial result against `rerun(ctx, iterations)` — the same query run
// fault-free with its round cap at the iterations the cancelled run
// reports. `seed_only` validates the iterations == 0 partial.
template <typename RunFn, typename RerunFn, typename SeedCheck>
void CancelAtEveryCheckpoint(RunnerFixture& fx, RunFn run, RerunFn rerun,
                             SeedCheck seed_only) {
  // Count the checkpoints of an unperturbed run.
  uint64_t total_checkpoints = 0;
  {
    QueryContext ctx = fx.Context();
    ctx.boundary_hook = [&] { ++total_checkpoints; };
    auto out = run(ctx);
    ASSERT_TRUE(out.status.ok()) << out.status.ToString();
  }
  ASSERT_GT(total_checkpoints, 4u);

  for (uint64_t k = 0; k < total_checkpoints; ++k) {
    SCOPED_TRACE("cancel at checkpoint " + std::to_string(k));
    CancelToken token;
    uint64_t seen = 0;
    QueryContext ctx = fx.Context();
    ctx.cancel = &token;
    ctx.boundary_hook = [&] {
      if (seen++ == k) token.Cancel(CancelReason::kClient);
    };
    auto out = run(ctx);
    ASSERT_TRUE(out.status.IsCancelled()) << out.status.ToString();
    ASSERT_EQ(out.result.stats.cancel_reason, CancelReason::kClient);
    const int iters = out.result.stats.iterations;
    ASSERT_GE(iters, 0);
    if (iters == 0) {
      seed_only(out.result);
    } else {
      QueryContext clean = fx.Context();
      auto expected = rerun(clean, iters);
      ASSERT_TRUE(expected.status.ok()) << expected.status.ToString();
      EXPECT_EQ(out.result.vertices_or_values(),
                expected.result.vertices_or_values());
    }
    EXPECT_EQ(fx.cache.pinned_entries(), 0u)
        << "cancelled run leaked a cache pin";
    const auto c = fx.cache.counters();
    EXPECT_EQ(fx.cache.bytes_cached(), c.inserted_bytes - c.evicted_bytes);
  }
}

// Adapters so point and batch results compare through one helper.
template <typename V>
struct PointCmp {
  std::vector<VertexId> vertices;
  std::vector<V> values;
  QueryStats stats;
  std::pair<std::vector<VertexId>, std::vector<V>> vertices_or_values() const {
    return {vertices, values};
  }
};
template <typename V>
struct BatchCmp {
  std::vector<V> values;
  QueryStats stats;
  const std::vector<V>& vertices_or_values() const { return values; }
};

template <typename V>
Outcome<PointCmp<V>> WrapPoint(Outcome<SparseTraversalResult<V>> o) {
  Outcome<PointCmp<V>> w;
  w.status = std::move(o.status);
  w.result.vertices = std::move(o.result.vertices);
  w.result.values = std::move(o.result.values);
  w.result.stats = o.result.stats;
  return w;
}
template <typename V>
Outcome<BatchCmp<V>> WrapBatch(Outcome<BatchResult<V>> o) {
  Outcome<BatchCmp<V>> w;
  w.status = std::move(o.status);
  w.result.values = std::move(o.result.values);
  w.result.stats = o.result.stats;
  return w;
}

TEST(RunnerCancelTest, BfsCancelAtEveryCheckpointIsDeterministic) {
  RunnerFixture fx(2, 92);
  BfsProgram bfs;
  bfs.root = 3;
  CancelAtEveryCheckpoint(
      fx,
      [&](QueryContext& ctx) {
        return WrapPoint(RunPointTraversal(bfs, ctx, 0, 0));
      },
      [&](QueryContext& ctx, int rounds) {
        return WrapPoint(RunPointTraversal(bfs, ctx, rounds, 0));
      },
      [&](const PointCmp<uint32_t>& r) {
        EXPECT_EQ(r.vertices, std::vector<VertexId>{3});
        EXPECT_EQ(r.values, std::vector<uint32_t>{0});
      });
}

TEST(RunnerCancelTest, SsspCancelAtEveryCheckpointIsDeterministic) {
  RunnerFixture fx(2, 93);
  CostCappedSsspProgram sssp;
  sssp.root = 7;
  CancelAtEveryCheckpoint(
      fx,
      [&](QueryContext& ctx) {
        return WrapPoint(RunPointTraversal(sssp, ctx, 0, 0));
      },
      [&](QueryContext& ctx, int rounds) {
        return WrapPoint(RunPointTraversal(sssp, ctx, rounds, 0));
      },
      [&](const PointCmp<float>& r) {
        EXPECT_EQ(r.vertices, std::vector<VertexId>{7});
        EXPECT_EQ(r.values, std::vector<float>{0.0f});
      });
}

TEST(RunnerCancelTest, PageRankCancelAtEveryCheckpointIsDeterministic) {
  RunnerFixture fx(2, 94);
  PageRankProgram pr;
  pr.num_vertices = fx.ms.store->num_vertices();
  const std::vector<double> init(
      pr.num_vertices, 1.0 / static_cast<double>(pr.num_vertices));
  CancelAtEveryCheckpoint(
      fx,
      [&](QueryContext& ctx) {
        return WrapBatch(
            RunBatchQuery(pr, ctx, EdgeDirection::kForward, 5, 0));
      },
      [&](QueryContext& ctx, int iters) {
        return WrapBatch(
            RunBatchQuery(pr, ctx, EdgeDirection::kForward, iters, 0));
      },
      [&](const BatchCmp<double>& r) {
        // 0 completed iterations: the partial result is the Init values.
        EXPECT_EQ(r.values, init);
      });
}

// ---------------------------------------------------------------------------
// Engine::Run iteration-boundary cancellation
// ---------------------------------------------------------------------------

TEST(EngineCancelTest, RunObservesTokenAtIterationBoundary) {
  EdgeList edges = testing::RandomGraph(150, 2000, 95);
  auto ms = testing::BuildMemStore(edges, 2);
  PageRankProgram pr;
  pr.num_vertices = ms.store->num_vertices();

  RunOptions opt;
  opt.max_iterations = 10;
  // A pre-fired token stops the run at the first boundary.
  CancelToken fired;
  fired.Cancel(CancelReason::kClient);
  opt.cancel = &fired;
  {
    Engine<PageRankProgram> engine(ms.store, pr, opt);
    auto r = engine.Run();
    EXPECT_TRUE(r.status().IsCancelled()) << r.status().ToString();
  }
  // An expired deadline surfaces as DeadlineExceeded.
  CancelToken expired =
      CancelToken::WithDeadline(Clock::now() - std::chrono::milliseconds(1));
  opt.cancel = &expired;
  {
    Engine<PageRankProgram> engine(ms.store, pr, opt);
    EXPECT_TRUE(engine.Run().status().IsDeadlineExceeded());
  }
  // A cancelled run leaves nothing behind that breaks a clean rerun.
  opt.cancel = nullptr;
  Engine<PageRankProgram> engine(ms.store, pr, opt);
  auto r = engine.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->iterations, 10u);
}

// ---------------------------------------------------------------------------
// GraphServer lifecycle
// ---------------------------------------------------------------------------

GraphServer::Options LifecycleOpts(int workers) {
  GraphServer::Options o;
  o.cache_budget_bytes = UINT64_MAX;
  o.num_workers = workers;
  o.io_threads = 2;
  o.prefetch_depth = 2;
  return o;
}

TEST(ServerCancelTest, CancelQueuedQueryCompletesImmediately) {
  EdgeList edges = testing::RandomGraph(80, 800, 96);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = LifecycleOpts(1);
  opts.start_paused = true;
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 0;
  auto f = (*server)->Submit(q);
  ASSERT_NE(f.id(), 0u);
  EXPECT_TRUE((*server)->Cancel(f.id()));
  EXPECT_TRUE(f.Done());  // completed without ever running
  EXPECT_TRUE(f.Wait().status.IsCancelled());
  EXPECT_FALSE((*server)->Cancel(f.id()));   // no longer live
  EXPECT_FALSE((*server)->Cancel(999999u));  // never existed
  (*server)->SetPaused(false);
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServerCancelTest, CancelRunningQueryReturnsDeterministicPartial) {
  EdgeList edges = testing::RandomGraph(150, 2000, 97);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = LifecycleOpts(1);
  // Slow every checkpoint so the cancel reliably lands mid-run.
  opts.boundary_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PageRankProgram pr;
  pr.num_vertices = (*server)->store().num_vertices();
  BatchQuery spec;
  spec.max_iterations = 2000;
  auto f = (*server)->SubmitBatch(pr, spec);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE((*server)->Cancel(f.id()));
  const auto out = f.Wait();
  ASSERT_TRUE(out.status.IsCancelled()) << out.status.ToString();
  EXPECT_EQ(out.result.stats.cancel_reason, CancelReason::kClient);

  // The partial equals the same query capped at the reported iterations.
  const int iters = out.result.stats.iterations;
  if (iters > 0) {
    BatchQuery capped;
    capped.max_iterations = iters;
    const auto expected = (*server)->SubmitBatch(pr, capped).Wait();
    ASSERT_TRUE(expected.status.ok());
    EXPECT_EQ(out.result.values, expected.result.values);
  }
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.deadline_cancelled, 0u);
  EXPECT_EQ((*server)->cache()->pinned_entries(), 0u);
}

TEST(ServerCancelTest, RunningDeadlineCancelCountedSeparatelyFromShed) {
  EdgeList edges = testing::RandomGraph(150, 2000, 98);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = LifecycleOpts(1);
  opts.boundary_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PageRankProgram pr;
  pr.num_vertices = (*server)->store().num_vertices();
  BatchQuery spec;
  spec.max_iterations = 2000;
  spec.limits.deadline = std::chrono::milliseconds(40);
  const auto out = (*server)->SubmitBatch(pr, spec).Wait();
  ASSERT_TRUE(out.status.IsDeadlineExceeded()) << out.status.ToString();
  EXPECT_EQ(out.result.stats.cancel_reason, CancelReason::kDeadline);
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.deadline_cancelled, 1u);  // ran, then hit its deadline
  EXPECT_EQ(stats.shed, 0u);                // never waited it out queued
}

TEST(ServerCancelTest, DrainClosesAdmissionAndCancelsStragglers) {
  EdgeList edges = testing::RandomGraph(150, 2000, 99);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = LifecycleOpts(2);
  opts.boundary_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PageRankProgram pr;
  pr.num_vertices = (*server)->store().num_vertices();
  BatchQuery spec;
  spec.max_iterations = 2000;
  std::vector<QueryFuture<BatchResult<double>>> futures;
  for (int n = 0; n < 6; ++n) futures.push_back((*server)->SubmitBatch(pr, spec));

  const auto t0 = Clock::now();
  EXPECT_TRUE((*server)->Drain(std::chrono::milliseconds(50)).ok());
  // Generous bound: 50ms grace + one checkpoint's unwind, not the 2000
  // iterations the queries asked for.
  EXPECT_LT(Clock::now() - t0, std::chrono::seconds(20));

  uint64_t drained = 0;
  for (auto& f : futures) {
    ASSERT_TRUE(f.Done());  // idle server: every future settled
    const auto& out = f.Wait();
    ASSERT_TRUE(out.status.ok() || out.status.IsCancelled())
        << out.status.ToString();
    if (out.status.IsCancelled()) {
      // A straggler cancelled MID-RUN carries the shutdown reason in its
      // (partial-result) stats; one swept while still queued aborts with
      // empty stats and never ran at all.
      EXPECT_TRUE(out.result.stats.cancel_reason == CancelReason::kShutdown ||
                  out.result.stats.cancel_reason == CancelReason::kNone);
      ++drained;
    }
  }
  const auto stats = (*server)->stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.drain_cancelled, drained);
  EXPECT_EQ(stats.completed + stats.drain_cancelled, 6u);
  EXPECT_EQ(stats.running, 0u);
  EXPECT_EQ(stats.queued, 0u);

  // Admission is closed for good; Drain is idempotent and fast once idle.
  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 0;
  EXPECT_TRUE((*server)->Submit(q).Wait().status.IsAborted());
  EXPECT_TRUE((*server)->Drain(std::chrono::milliseconds(10)).ok());
  EXPECT_EQ((*server)->cache()->pinned_entries(), 0u);
}

TEST(ServerCancelTest, WatchdogFlagsQueryStuckPastItsDeadline) {
  EdgeList edges = testing::RandomGraph(100, 1200, 100);
  auto ms = testing::BuildMemStore(edges, 2);
  GraphServer::Options opts = LifecycleOpts(1);
  opts.watchdog_interval_seconds = 0.002;
  opts.stall_multiplier = 2.0;
  // The hook wedges the (only) query for ~150ms without reaching another
  // checkpoint — exactly the failure mode the watchdog exists to flag.
  opts.boundary_hook = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
  };
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  PointQuery q;
  q.kind = QueryKind::kBfs;
  q.root = 0;
  q.limits.deadline = std::chrono::milliseconds(10);
  auto f = (*server)->Submit(q);

  bool flagged = false;
  for (int poll = 0; poll < 100 && !flagged; ++poll) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    const auto stats = (*server)->stats();
    if (stats.stalled > 0) {
      flagged = true;
      ASSERT_FALSE(stats.stalled_queries.empty());
      EXPECT_EQ(stats.stalled_queries[0].id, f.id());
      EXPECT_GT(stats.stalled_queries[0].running_seconds, 0.02);
    }
  }
  EXPECT_TRUE(flagged) << "watchdog never flagged the wedged query";
  // Once the hook returns, the deadline cancel lands at that checkpoint.
  EXPECT_TRUE(f.Wait().status.IsDeadlineExceeded());
  EXPECT_EQ((*server)->stats().stalled, 1u);  // flagged once, not per scan
}

// ---------------------------------------------------------------------------
// Hygiene soaks: cancel/complete races, cancel-during-retry
// ---------------------------------------------------------------------------

// 10k queries, half racing a client Cancel against their own completion:
// every future settles with OK or Cancelled, the per-reason counters add
// up, and the shared cache ends with zero pins and a consistent byte
// ledger.
TEST(ServerCancelTest, CancelVersusCompleteHammer) {
  EdgeList edges = testing::RandomGraph(60, 500, 101);
  auto ms = testing::BuildMemStore(edges, 2);
  constexpr int kTotal = 10'000;
  constexpr int kWave = 200;
  GraphServer::Options opts = LifecycleOpts(4);
  opts.max_queue = kWave;  // a whole wave may be queued at once
  auto server = GraphServer::Open(ms.env.get(), "g", opts);
  ASSERT_TRUE(server.ok());

  uint64_t completed = 0, cancelled = 0;
  for (int wave = 0; wave < kTotal / kWave; ++wave) {
    std::vector<QueryFuture<PointResult>> futures;
    futures.reserve(kWave);
    for (int n = 0; n < kWave; ++n) {
      PointQuery q;
      q.kind = QueryKind::kBfs;
      q.root = static_cast<VertexId>((wave + n) % 60);
      futures.push_back((*server)->Submit(q));
    }
    // Race cancels against completion from a second thread: every other
    // query gets a Cancel that may land queued, mid-run, or too late.
    std::thread canceller([&] {
      for (int n = 0; n < kWave; n += 2) (*server)->Cancel(futures[n].id());
    });
    std::vector<Status> statuses;
    statuses.reserve(kWave);
    for (auto& f : futures) statuses.push_back(f.Wait().status);
    canceller.join();
    for (const Status& s : statuses) {
      ASSERT_TRUE(s.ok() || s.IsCancelled()) << s.ToString();
      if (s.ok()) {
        ++completed;
      } else {
        ++cancelled;
      }
    }
  }
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.completed, completed);
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ((*server)->cache()->pinned_entries(), 0u)
      << "leaked pins after " << kTotal << " cancel/complete cycles";
  const auto c = stats.cache;
  EXPECT_EQ(stats.cache_bytes_cached, c.inserted_bytes - c.evicted_bytes);
  // With zero pins outstanding, Clear can reclaim every byte.
  (*server)->cache()->Clear();
  EXPECT_EQ((*server)->cache()->bytes_cached(), 0u);
}

// Cancels landing mid-retry on a flaky device: the retry loop's backoff
// sleeps are interruptible and the unwind paths release every pin even
// when loads are failing and re-issuing around them.
TEST(ServerCancelTest, CancelDuringFlakyRetrySoak) {
  EdgeList edges = testing::RandomGraph(100, 1200, 102);
  auto ms = testing::BuildMemStore(edges, 2);
  FlakyFaultRates rates;
  rates.read_error = 0.05;
  rates.seed = 102;
  FlakyEnv flaky(ms.env.get(), rates);

  constexpr int kQueries = 400;
  GraphServer::Options opts = LifecycleOpts(3);
  opts.max_queue = kQueries;  // all submissions may be queued at once
  opts.retry.max_attempts = 6;
  opts.retry.backoff_initial_micros = 200;
  auto server = GraphServer::Open(&flaky, "g", opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::vector<QueryFuture<PointResult>> futures;
  futures.reserve(kQueries);
  for (int n = 0; n < kQueries; ++n) {
    PointQuery q;
    q.kind = n % 2 == 0 ? QueryKind::kBfs : QueryKind::kSssp;
    q.root = static_cast<VertexId>(n % 100);
    if (n % 3 == 0) q.limits.deadline = std::chrono::milliseconds(1 + n % 7);
    futures.push_back((*server)->Submit(q));
  }
  std::thread canceller([&] {
    for (int n = 0; n < kQueries; n += 4) {
      (*server)->Cancel(futures[n].id());
      if (n % 32 == 0) std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  std::vector<Status> statuses;
  statuses.reserve(kQueries);
  for (auto& f : futures) statuses.push_back(f.Wait().status);
  canceller.join();
  uint64_t oks = 0;
  for (const Status& s : statuses) {
    // Every future settles; with retries absorbing the 5% fault rate the
    // only expected terminal states are success and the cancel family.
    ASSERT_TRUE(s.ok() || s.IsCancelled() || s.IsDeadlineExceeded())
        << s.ToString();
    if (s.ok()) ++oks;
  }
  EXPECT_GT(oks, 0u);  // the soak is not vacuous: plenty complete
  EXPECT_EQ((*server)->cache()->pinned_entries(), 0u);
  const auto stats = (*server)->stats();
  EXPECT_EQ(stats.cache_bytes_cached,
            stats.cache.inserted_bytes - stats.cache.evicted_bytes);
  EXPECT_EQ(stats.failed, 0u) << "a fault leaked through as an error";
  (*server)->cache()->Clear();
  EXPECT_EQ((*server)->cache()->bytes_cached(), 0u);
}

}  // namespace
}  // namespace nxgraph
