// End-to-end tests on the real filesystem: text input -> preprocessing ->
// engine runs -> reopening, plus failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "src/algos/reference.h"
#include "src/core/nxgraph.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/nxgraph_integration_XXXXXX";
    root_ = mkdtemp(tmpl);
  }
  void TearDown() override {
    ASSERT_TRUE(Env::Default()->RemoveDirRecursively(root_).ok());
  }
  std::string root_;
};

TEST_F(IntegrationTest, TextFileToPageRankOnDisk) {
  // Write an edge list with sparse indices, comments and weights ignored.
  std::string text = "# tiny crawl\n";
  EdgeList edges = testing::RandomGraph(64, 600, 81, false, 1000);
  for (size_t i = 0; i < edges.num_edges(); ++i) {
    text += std::to_string(edges.src(i)) + " " + std::to_string(edges.dst(i)) +
            "\n";
  }
  const std::string edge_path = root_ + "/graph.txt";
  ASSERT_TRUE(WriteStringToFile(Env::Default(), edge_path, text).ok());

  BuildOptions build;
  build.num_intervals = 4;
  auto store = BuildGraphStoreFromTextFile(edge_path, root_ + "/store", build);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->num_edges(), edges.num_edges());

  auto result = RunPageRank(*store, {}, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.iterations, 10);

  auto ref_graph = LoadReferenceGraph(**store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 10);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result->ranks[v], expected[v], 1e-9);
  }
}

TEST_F(IntegrationTest, ReopenStoreAfterBuild) {
  EdgeList edges = testing::RandomGraph(100, 1000, 82);
  BuildOptions build;
  build.num_intervals = 4;
  auto built = BuildGraphStore(edges, root_ + "/store", build);
  ASSERT_TRUE(built.ok());
  const uint64_t n = (*built)->num_vertices();
  built->reset();

  auto reopened = OpenGraphStore(root_ + "/store");
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->num_vertices(), n);
  auto bfs = RunBfs(*reopened, 0, RunOptions{});
  ASSERT_TRUE(bfs.ok());
}

TEST_F(IntegrationTest, AllStrategiesAgreeOnDisk) {
  EdgeList edges = testing::RandomGraph(500, 5000, 83);
  BuildOptions build;
  build.num_intervals = 8;
  auto store = BuildGraphStore(edges, root_ + "/store", build);
  ASSERT_TRUE(store.ok());

  std::vector<double> baseline;
  for (auto strategy :
       {UpdateStrategy::kSinglePhase, UpdateStrategy::kDoublePhase,
        UpdateStrategy::kMixedPhase}) {
    RunOptions opt;
    opt.strategy = strategy;
    opt.num_threads = 2;
    if (strategy == UpdateStrategy::kMixedPhase) {
      opt.memory_budget_bytes = 500 * sizeof(double);  // ~half resident
    }
    PageRankOptions pr;
    pr.iterations = 6;
    auto result = RunPageRank(*store, pr, opt);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (baseline.empty()) {
      baseline = result->ranks;
    } else {
      for (size_t v = 0; v < baseline.size(); ++v) {
        ASSERT_NEAR(result->ranks[v], baseline[v], 1e-12);
      }
    }
  }
}

TEST_F(IntegrationTest, CorruptManifestFailsToOpen) {
  EdgeList edges = testing::RandomGraph(50, 300, 84);
  auto store = BuildGraphStore(edges, root_ + "/store", {});
  ASSERT_TRUE(store.ok());
  store->reset();

  const std::string manifest_path = root_ + "/store/manifest.nxm";
  std::string data;
  ASSERT_TRUE(ReadFileToString(Env::Default(), manifest_path, &data).ok());
  data[data.size() / 3] ^= 0x10;
  ASSERT_TRUE(WriteStringToFile(Env::Default(), manifest_path, data).ok());

  auto reopened = OpenGraphStore(root_ + "/store");
  ASSERT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(IntegrationTest, TruncatedShardFileFailsLoudly) {
  EdgeList edges = testing::RandomGraph(80, 800, 85);
  auto store = BuildGraphStore(edges, root_ + "/store", {});
  ASSERT_TRUE(store.ok());
  store->reset();

  const std::string shards_path = root_ + "/store/subshards.nxs";
  std::string data;
  ASSERT_TRUE(ReadFileToString(Env::Default(), shards_path, &data).ok());
  data.resize(data.size() / 2);
  ASSERT_TRUE(WriteStringToFile(Env::Default(), shards_path, data).ok());

  auto reopened = OpenGraphStore(root_ + "/store");
  ASSERT_TRUE(reopened.ok());  // manifest is fine
  auto result = RunPageRank(*reopened, {}, RunOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST_F(IntegrationTest, WeightedBuildRunsSssp) {
  EdgeList edges = testing::RandomGraph(120, 960, 86, /*weighted=*/true);
  BuildOptions build;
  build.num_intervals = 4;
  auto store = BuildGraphStore(edges, root_ + "/store", build);
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE((*store)->weighted());
  auto result = RunSssp(*store, 0, RunOptions{});
  ASSERT_TRUE(result.ok());
  auto ref_graph = LoadReferenceGraph(**store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferenceSssp(*ref_graph, 0);
  for (size_t v = 0; v < expected.size(); ++v) {
    if (!std::isinf(expected[v])) {
      ASSERT_NEAR(result->distances[v], expected[v], 1e-4);
    }
  }
}

TEST_F(IntegrationTest, ThrottledEnvEndToEnd) {
  EdgeList edges = testing::RandomGraph(60, 400, 87);
  DeviceProfile fast_ssd;
  fast_ssd.bandwidth_bytes_per_sec = 4.0 * 1024 * 1024 * 1024;
  fast_ssd.seek_latency_sec = 1e-6;
  auto throttled = NewThrottledEnv(Env::Default(), fast_ssd);
  BuildOptions build;
  build.num_intervals = 2;
  build.env = throttled.get();
  auto store = BuildGraphStore(edges, root_ + "/store", build);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  auto result = RunPageRank(*store, {}, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace nxgraph
