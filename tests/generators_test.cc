#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/graph/datasets.h"
#include "src/graph/generators.h"

namespace nxgraph {
namespace {

TEST(RmatTest, ProducesRequestedEdgeCount) {
  RmatOptions opt;
  opt.scale = 10;
  opt.edge_factor = 8;
  EdgeList g = GenerateRmat(opt);
  EXPECT_EQ(g.num_edges(), (1u << 10) * 8);
}

TEST(RmatTest, Deterministic) {
  RmatOptions opt;
  opt.scale = 8;
  opt.seed = 99;
  EdgeList a = GenerateRmat(opt);
  EdgeList b = GenerateRmat(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.num_edges(); i += 97) {
    EXPECT_EQ(a.src(i), b.src(i));
    EXPECT_EQ(a.dst(i), b.dst(i));
  }
}

TEST(RmatTest, IndicesWithinRange) {
  RmatOptions opt;
  opt.scale = 9;
  EdgeList g = GenerateRmat(opt);
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_LT(g.src(i), 1u << 9);
    EXPECT_LT(g.dst(i), 1u << 9);
  }
}

TEST(RmatTest, SkewedDegreeDistribution) {
  RmatOptions opt;
  opt.scale = 12;
  opt.edge_factor = 16;
  EdgeList g = GenerateRmat(opt);
  std::map<VertexIndex, uint64_t> out_degree;
  for (size_t i = 0; i < g.num_edges(); ++i) ++out_degree[g.src(i)];
  uint64_t max_degree = 0;
  for (const auto& [_, d] : out_degree) max_degree = std::max(max_degree, d);
  // R-MAT hubs should far exceed the mean degree (16); uniform graphs
  // would stay within a small constant factor.
  EXPECT_GT(max_degree, 16u * 8);
}

TEST(RmatTest, WeightsArePositive) {
  RmatOptions opt;
  opt.scale = 8;
  opt.with_weights = true;
  EdgeList g = GenerateRmat(opt);
  ASSERT_TRUE(g.has_weights());
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_GT(g.weight(i), 0.0f);
  }
}

TEST(ErdosRenyiTest, SizeAndRange) {
  EdgeList g = GenerateErdosRenyi(100, 1000, 3);
  EXPECT_EQ(g.num_edges(), 1000u);
  for (size_t i = 0; i < g.num_edges(); ++i) {
    EXPECT_LT(g.src(i), 100u);
    EXPECT_LT(g.dst(i), 100u);
  }
}

TEST(ErdosRenyiTest, RoughlyUniformDegrees) {
  EdgeList g = GenerateErdosRenyi(64, 64 * 100, 11);
  std::vector<uint64_t> out_degree(64, 0);
  for (size_t i = 0; i < g.num_edges(); ++i) ++out_degree[g.src(i)];
  for (uint64_t d : out_degree) {
    EXPECT_GT(d, 50u);   // mean 100, generous bounds
    EXPECT_LT(d, 200u);
  }
}

TEST(PowerLawTest, HitsAverageDegreeApproximately) {
  PowerLawOptions opt;
  opt.num_vertices = 1 << 12;
  opt.avg_degree = 8;
  EdgeList g = GeneratePowerLaw(opt);
  const double avg =
      static_cast<double>(g.num_edges()) / static_cast<double>(opt.num_vertices);
  EXPECT_GT(avg, 4.0);
  EXPECT_LT(avg, 12.0);
}

TEST(DelaunayLikeTest, SymmetricEdges) {
  DelaunayLikeOptions opt;
  opt.num_points = 500;
  EdgeList g = GenerateDelaunayLike(opt);
  std::set<std::pair<VertexIndex, VertexIndex>> edges;
  for (size_t i = 0; i < g.num_edges(); ++i) {
    edges.insert({g.src(i), g.dst(i)});
  }
  for (const auto& [s, d] : edges) {
    EXPECT_TRUE(edges.count({d, s})) << s << "->" << d << " missing reverse";
  }
}

TEST(DelaunayLikeTest, AverageDegreeNearSix) {
  DelaunayLikeOptions opt;
  opt.num_points = 1 << 12;
  opt.neighbors = 3;
  EdgeList g = GenerateDelaunayLike(opt);
  const double avg =
      static_cast<double>(g.num_edges()) / static_cast<double>(opt.num_points);
  // 3 nearest neighbours symmetrized: >= 6 minus dedup effects.
  EXPECT_GT(avg, 4.5);
  EXPECT_LT(avg, 8.0);
}

TEST(DelaunayLikeTest, Deterministic) {
  DelaunayLikeOptions opt;
  opt.num_points = 300;
  EdgeList a = GenerateDelaunayLike(opt);
  EdgeList b = GenerateDelaunayLike(opt);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t i = 0; i < a.num_edges(); i += 13) {
    EXPECT_EQ(a.src(i), b.src(i));
    EXPECT_EQ(a.dst(i), b.dst(i));
  }
}

TEST(DatasetsTest, RegistryListsTableThree) {
  auto datasets = ListDatasets();
  ASSERT_GE(datasets.size(), 8u);
  EXPECT_EQ(datasets[0].paper_name, "Live-journal");
  EXPECT_EQ(datasets[1].paper_name, "Twitter");
  EXPECT_EQ(datasets[2].paper_name, "Yahoo-web");
}

TEST(DatasetsTest, MakesAllRegisteredDatasets) {
  for (const auto& info : ListDatasets()) {
    auto g = MakeDataset(info.name, /*scale_divisor=*/512);
    ASSERT_TRUE(g.ok()) << info.name << ": " << g.status().ToString();
    EXPECT_GT(g->num_edges(), 0u) << info.name;
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  auto g = MakeDataset("friendster");
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(DatasetsTest, ScaleDivisorShrinks) {
  auto big = MakeDataset("live-journal-sim", 256);
  auto small = MakeDataset("live-journal-sim", 1024);
  ASSERT_TRUE(big.ok());
  ASSERT_TRUE(small.ok());
  EXPECT_GT(big->num_edges(), small->num_edges());
}

}  // namespace
}  // namespace nxgraph
