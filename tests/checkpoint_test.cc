// Checkpoint/restart: record round-trips, and the restart parity matrix —
// every algorithm resumed at every iteration boundary, across strategies
// and writeback budgets, must reproduce the uninterrupted run bit for bit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/algos/programs.h"
#include "src/engine/checkpoint.h"
#include "src/engine/engine.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

// ---- record unit tests ----------------------------------------------------

CheckpointState SampleState() {
  CheckpointState s;
  s.graph_fingerprint = 0x1234567890ABCDEFull;
  s.program_id = 0xFEDCBA0987654321ull;
  s.program_state = 0x0F1E2D3C4B5A6978ull;
  s.direction = 2;
  s.value_bytes = 8;
  s.num_intervals = 5;
  s.resident_intervals = 2;
  s.iteration = 7;
  s.has_snapshot = 1;
  s.snapshot_parity = 1;
  s.value_parity = {0, 1, 1, 0, 1};
  s.active = {1, 0, 1, 1, 0};
  return s;
}

TEST(CheckpointRecordTest, EncodeDecodeRoundTrip) {
  const CheckpointState s = SampleState();
  auto decoded = CheckpointState::Decode(s.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->graph_fingerprint, s.graph_fingerprint);
  EXPECT_EQ(decoded->program_id, s.program_id);
  EXPECT_EQ(decoded->program_state, s.program_state);
  EXPECT_EQ(decoded->direction, s.direction);
  EXPECT_EQ(decoded->value_bytes, s.value_bytes);
  EXPECT_EQ(decoded->num_intervals, s.num_intervals);
  EXPECT_EQ(decoded->resident_intervals, s.resident_intervals);
  EXPECT_EQ(decoded->iteration, s.iteration);
  EXPECT_EQ(decoded->has_snapshot, s.has_snapshot);
  EXPECT_EQ(decoded->snapshot_parity, s.snapshot_parity);
  EXPECT_EQ(decoded->value_parity, s.value_parity);
  EXPECT_EQ(decoded->active, s.active);
}

TEST(CheckpointRecordTest, CrcCatchesEveryOneByteCorruption) {
  const std::string encoded = SampleState().Encode();
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string bad = encoded;
    bad[i] ^= 0x40;
    auto decoded = CheckpointState::Decode(bad);
    EXPECT_FALSE(decoded.ok()) << "byte " << i;
  }
}

TEST(CheckpointRecordTest, TruncatedAndEmptyRecordsAreErrors) {
  const std::string encoded = SampleState().Encode();
  EXPECT_FALSE(CheckpointState::Decode("").ok());
  EXPECT_FALSE(CheckpointState::Decode("NX").ok());
  EXPECT_FALSE(
      CheckpointState::Decode(encoded.substr(0, encoded.size() / 2)).ok());
}

TEST(CheckpointManagerTest, WriteLoadRemove) {
  auto env = NewMemEnv();
  ASSERT_TRUE(env->CreateDirs("run").ok());
  CheckpointManager mgr(env.get(), "run");
  EXPECT_TRUE(mgr.Load().status().IsNotFound());
  ASSERT_TRUE(mgr.Write(SampleState()).ok());
  auto loaded = mgr.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->iteration, 7u);
  ASSERT_TRUE(mgr.Remove().ok());
  EXPECT_TRUE(mgr.Load().status().IsNotFound());
}

// ---- restart parity matrix ------------------------------------------------

struct MatrixConfig {
  UpdateStrategy strategy;
  uint64_t writeback;
  const char* name;
};

std::vector<MatrixConfig> MatrixConfigs() {
  return {
      {UpdateStrategy::kSinglePhase, 0, "SPU/wb0"},
      {UpdateStrategy::kSinglePhase, 8ull << 20, "SPU/wb8M"},
      {UpdateStrategy::kDoublePhase, 0, "DPU/wb0"},
      {UpdateStrategy::kDoublePhase, 8ull << 20, "DPU/wb8M"},
      {UpdateStrategy::kMixedPhase, 0, "MPU/wb0"},
      {UpdateStrategy::kMixedPhase, 8ull << 20, "MPU/wb8M"},
  };
}

RunOptions MatrixOptions(const MatrixConfig& cfg, EdgeDirection direction,
                         uint64_t mpu_budget, const std::string& scratch) {
  RunOptions opt;
  opt.strategy = cfg.strategy;
  opt.direction = direction;
  opt.num_threads = 2;
  opt.writeback_buffer_bytes = cfg.writeback;
  if (cfg.strategy == UpdateStrategy::kMixedPhase) {
    // Sized per test so 0 < Q < P: genuinely mixed resident/hub phases.
    opt.memory_budget_bytes = mpu_budget;
  }
  opt.scratch_dir = scratch;
  return opt;
}

/// Runs `program`: once uninterrupted, once checkpointed-but-uninterrupted,
/// and then interrupted at every iteration boundary k and resumed — all
/// three must produce bit-identical final values. `max_iters == 0` lets the
/// run terminate by activity.
template <typename Program>
void RestartMatrix(const testing::MemStore& ms, Program program,
                   EdgeDirection direction, uint64_t mpu_budget,
                   int max_iters) {
  int trial = 0;
  for (const MatrixConfig& cfg : MatrixConfigs()) {
    const std::string tag =
        std::string("scratch/") + cfg.name + "/" + std::to_string(trial++);
    RunOptions base = MatrixOptions(cfg, direction, mpu_budget, tag + "/base");
    base.max_iterations = max_iters;
    Engine<Program> baseline(ms.store, program, base);
    auto base_stats = baseline.Run();
    ASSERT_TRUE(base_stats.ok()) << cfg.name << ": "
                                 << base_stats.status().ToString();
    const int total = base_stats->iterations;
    ASSERT_GE(total, 2) << cfg.name << ": matrix needs >= 2 iterations";

    // Checkpointing on, never interrupted: same values, one record per
    // iteration boundary.
    RunOptions full = MatrixOptions(cfg, direction, mpu_budget, tag + "/full");
    full.max_iterations = max_iters;
    full.checkpoint_interval = 1;
    Engine<Program> checkpointed(ms.store, program, full);
    auto full_stats = checkpointed.Run();
    ASSERT_TRUE(full_stats.ok()) << cfg.name;
    EXPECT_EQ(full_stats->resumed_from_iteration, 0) << cfg.name;
    EXPECT_EQ(full_stats->checkpoints_written, total) << cfg.name;
    EXPECT_GE(full_stats->checkpoint_seconds, 0.0);
    EXPECT_EQ(checkpointed.values(), baseline.values()) << cfg.name;

    // Interrupt at every boundary k, then resume to completion.
    for (int k = 1; k < total; ++k) {
      const std::string scratch = tag + "/k" + std::to_string(k);
      RunOptions leg1 = MatrixOptions(cfg, direction, mpu_budget, scratch);
      leg1.max_iterations = k;
      leg1.checkpoint_interval = 1;
      {
        Engine<Program> interrupted(ms.store, program, leg1);
        auto stats = interrupted.Run();
        ASSERT_TRUE(stats.ok()) << cfg.name << " k=" << k;
        ASSERT_EQ(stats->iterations, k);
      }
      RunOptions leg2 = leg1;
      leg2.max_iterations = max_iters;
      Engine<Program> resumed(ms.store, program, leg2);
      auto stats = resumed.Run();
      ASSERT_TRUE(stats.ok()) << cfg.name << " k=" << k;
      EXPECT_EQ(stats->resumed_from_iteration, k) << cfg.name << " k=" << k;
      EXPECT_EQ(stats->iterations, total) << cfg.name << " k=" << k;
      EXPECT_EQ(resumed.values(), baseline.values())
          << cfg.name << " resumed at k=" << k;
    }
  }
}

TEST(CheckpointMatrixTest, PageRankResumesBitIdentical) {
  EdgeList edges = testing::RandomGraph(400, 4000, 51);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RestartMatrix(ms, program, EdgeDirection::kForward,
                /*mpu_budget=*/6000, /*max_iters=*/4);
}

TEST(CheckpointMatrixTest, WccResumesBitIdentical) {
  EdgeList edges = testing::RandomGraph(250, 600, 52);
  auto ms = testing::BuildMemStore(edges, 4);
  RestartMatrix(ms, WccProgram{}, EdgeDirection::kBoth,
                /*mpu_budget=*/3000, /*max_iters=*/0);
}

TEST(CheckpointMatrixTest, BfsResumesBitIdentical) {
  EdgeList edges = testing::RandomGraph(300, 1800, 53);
  auto ms = testing::BuildMemStore(edges, 4);
  BfsProgram program;
  program.root = 0;
  RestartMatrix(ms, program, EdgeDirection::kForward,
                /*mpu_budget=*/2700, /*max_iters=*/0);
}

TEST(CheckpointMatrixTest, SsspResumesBitIdentical) {
  EdgeList edges = testing::RandomGraph(200, 1500, 54, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, 4);
  SsspProgram program;
  program.root = 0;
  RestartMatrix(ms, program, EdgeDirection::kForward,
                /*mpu_budget=*/1800, /*max_iters=*/0);
}

// ---- checkpoint interval > 1 (side snapshot store) ------------------------

TEST(CheckpointIntervalTest, SparseCheckpointsResumeFromLatestBoundary) {
  EdgeList edges = testing::RandomGraph(300, 3000, 55);
  auto ms = testing::BuildMemStore(edges, 5);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();

  for (UpdateStrategy strategy :
       {UpdateStrategy::kDoublePhase, UpdateStrategy::kMixedPhase,
        UpdateStrategy::kSinglePhase}) {
    MatrixConfig cfg{strategy, 8ull << 20, "interval2"};
    const std::string tag =
        "scratch/interval2/" + std::to_string(static_cast<int>(strategy));
    RunOptions base =
        MatrixOptions(cfg, EdgeDirection::kForward, 3200, tag + "/b");
    base.max_iterations = 5;
    Engine<PageRankProgram> baseline(ms.store, program, base);
    ASSERT_TRUE(baseline.Run().ok());

    // Stop at iteration 5 with checkpoints every 2: the latest record is
    // from boundary 4, so the resumed run re-executes iteration 5.
    RunOptions leg1 =
        MatrixOptions(cfg, EdgeDirection::kForward, 3200, tag + "/s");
    leg1.max_iterations = 5;
    leg1.checkpoint_interval = 2;
    {
      Engine<PageRankProgram> interrupted(ms.store, program, leg1);
      auto stats = interrupted.Run();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->checkpoints_written, 2);
    }
    RunOptions leg2 = leg1;
    leg2.max_iterations = 5;
    Engine<PageRankProgram> resumed(ms.store, program, leg2);
    auto stats = resumed.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->resumed_from_iteration, 4);
    EXPECT_EQ(stats->iterations, 5);
    EXPECT_EQ(resumed.values(), baseline.values());
  }
}

// ---- validation fallbacks -------------------------------------------------

TEST(CheckpointFallbackTest, CorruptedRecordFallsBackToFreshStart) {
  EdgeList edges = testing::RandomGraph(200, 2000, 56);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = "scratch/corrupt";
  {
    Engine<PageRankProgram> first(ms.store, program, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  // Flip a byte in the record: resume must fall back to iteration 0 with a
  // warning — not fail, and not silently trust the record.
  const std::string path = std::string("scratch/corrupt/") +
                           kCheckpointFileName;
  std::string data;
  ASSERT_TRUE(ReadFileToString(ms.env.get(), path, &data).ok());
  data[data.size() / 2] ^= 0xFF;
  ASSERT_TRUE(WriteStringToFile(ms.env.get(), path, data).ok());

  opt.max_iterations = 4;
  Engine<PageRankProgram> rerun(ms.store, program, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
  EXPECT_EQ(stats->iterations, 4);

  RunOptions plain = opt;
  plain.checkpoint_interval = 0;
  plain.scratch_dir = "scratch/corrupt_base";
  Engine<PageRankProgram> baseline(ms.store, program, plain);
  ASSERT_TRUE(baseline.Run().ok());
  EXPECT_EQ(rerun.values(), baseline.values());
}

TEST(CheckpointFallbackTest, StrategyChangeFallsBackToFreshStart) {
  EdgeList edges = testing::RandomGraph(200, 2000, 57);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = "scratch/strategy";
  {
    Engine<PageRankProgram> first(ms.store, program, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  // A DPU checkpoint (Q=0) must not seed an SPU run (Q=P).
  opt.strategy = UpdateStrategy::kSinglePhase;
  opt.max_iterations = 3;
  Engine<PageRankProgram> rerun(ms.store, program, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
}

TEST(CheckpointFallbackTest, DifferentAlgorithmFallsBackToFreshStart) {
  // BFS and WCC both use 4-byte values: the record's program identity —
  // not the value size — must reject the cross-resume.
  EdgeList edges = testing::RandomGraph(200, 1200, 61);
  auto ms = testing::BuildMemStore(edges, 4);
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = "scratch/xalgo";
  {
    BfsProgram bfs;
    bfs.root = 0;
    opt.max_iterations = 2;
    Engine<BfsProgram> first(ms.store, bfs, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  opt.direction = EdgeDirection::kBoth;
  opt.max_iterations = 0;
  Engine<WccProgram> rerun(ms.store, WccProgram{}, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);

  RunOptions plain = opt;
  plain.checkpoint_interval = 0;
  plain.scratch_dir = "scratch/xalgo_base";
  Engine<WccProgram> baseline(ms.store, WccProgram{}, plain);
  ASSERT_TRUE(baseline.Run().ok());
  EXPECT_EQ(rerun.values(), baseline.values());
}

TEST(CheckpointFallbackTest, DifferentParametersFallBackToFreshStart) {
  // Same program type, different root: the record's parameter fingerprint
  // must reject the resume — otherwise root-7 distances would silently
  // continue from root-0 state.
  EdgeList edges = testing::RandomGraph(200, 1200, 63);
  auto ms = testing::BuildMemStore(edges, 4);
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.checkpoint_interval = 1;
  opt.max_iterations = 2;
  opt.scratch_dir = "scratch/xroot";
  {
    BfsProgram bfs;
    bfs.root = 0;
    Engine<BfsProgram> first(ms.store, bfs, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  BfsProgram bfs7;
  bfs7.root = 7;
  opt.max_iterations = 0;
  Engine<BfsProgram> rerun(ms.store, bfs7, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
}

TEST(CheckpointFallbackTest, DifferentDirectionFallsBackToFreshStart) {
  // A kBoth WCC checkpoint must not seed a kForward rerun: the hybrid
  // would match neither clean run.
  EdgeList edges = testing::RandomGraph(200, 1200, 64);
  auto ms = testing::BuildMemStore(edges, 4);
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.checkpoint_interval = 1;
  opt.direction = EdgeDirection::kBoth;
  opt.max_iterations = 2;
  opt.scratch_dir = "scratch/xdir";
  {
    Engine<WccProgram> first(ms.store, WccProgram{}, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  opt.direction = EdgeDirection::kForward;
  opt.max_iterations = 0;
  Engine<WccProgram> rerun(ms.store, WccProgram{}, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
}

TEST(CheckpointFallbackTest, NonCheckpointingRunInvalidatesStaleRecord) {
  // Run A checkpoints; run B reuses the scratch with checkpointing off
  // (truncating and overwriting the value stores); run C with
  // checkpointing on must NOT resume from A's stale record.
  EdgeList edges = testing::RandomGraph(200, 2000, 62);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.checkpoint_interval = 1;
  opt.max_iterations = 3;
  opt.scratch_dir = "scratch/stale";
  {
    Engine<PageRankProgram> a(ms.store, program, opt);
    ASSERT_TRUE(a.Run().ok());
  }
  {
    RunOptions no_ckpt = opt;
    no_ckpt.checkpoint_interval = 0;
    no_ckpt.max_iterations = 1;
    Engine<PageRankProgram> b(ms.store, program, no_ckpt);
    ASSERT_TRUE(b.Run().ok());
  }
  opt.max_iterations = 4;
  Engine<PageRankProgram> c(ms.store, program, opt);
  auto stats = c.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
  EXPECT_EQ(stats->iterations, 4);
}

TEST(CheckpointFallbackTest, DifferentGraphFallsBackToFreshStart) {
  EdgeList edges_a = testing::RandomGraph(200, 2000, 58);
  EdgeList edges_b = testing::RandomGraph(210, 2100, 59);
  auto ms = testing::BuildMemStore(edges_a, 4);
  // Second store in the same Env, checkpoint scratch shared between runs.
  BuildOptions build;
  build.num_intervals = 4;
  build.env = ms.env.get();
  auto other = BuildGraphStore(edges_b, "g2", build);
  ASSERT_TRUE(other.ok());

  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = "scratch/xgraph";
  {
    Engine<PageRankProgram> first(ms.store, program, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  PageRankProgram program_b;
  program_b.num_vertices = (*other)->num_vertices();
  Engine<PageRankProgram> rerun(*other, program_b, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
}

TEST(CheckpointFallbackTest, CheckpointBeyondIterationCapFallsBackToFresh) {
  // A record at iteration 3 must not seed a run capped at 2: the resumed
  // run would report more iterations than asked for. Fresh start matches
  // an uninterrupted capped run exactly.
  EdgeList edges = testing::RandomGraph(200, 2000, 65);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.checkpoint_interval = 1;
  opt.max_iterations = 3;
  opt.scratch_dir = "scratch/cap";
  {
    Engine<PageRankProgram> first(ms.store, program, opt);
    ASSERT_TRUE(first.Run().ok());
  }
  opt.max_iterations = 2;
  Engine<PageRankProgram> rerun(ms.store, program, opt);
  auto stats = rerun.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 0);
  EXPECT_EQ(stats->iterations, 2);

  RunOptions plain = opt;
  plain.checkpoint_interval = 0;
  plain.scratch_dir = "scratch/cap_base";
  Engine<PageRankProgram> baseline(ms.store, program, plain);
  ASSERT_TRUE(baseline.Run().ok());
  EXPECT_EQ(rerun.values(), baseline.values());
}

TEST(CheckpointFallbackTest, DisabledCheckpointingWritesNoRecord) {
  EdgeList edges = testing::RandomGraph(150, 1200, 60);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.scratch_dir = "scratch/off";
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->checkpoints_written, 0);
  EXPECT_FALSE(ms.env->FileExists(std::string("scratch/off/") +
                                  kCheckpointFileName));
}

}  // namespace
}  // namespace nxgraph
