// Algorithm drivers against references, including the multi-round SCC.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "src/algos/reference.h"
#include "src/core/nxgraph.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

TEST(PageRankDriverTest, RanksSumBelowOneAndMatchReference) {
  EdgeList edges = testing::RandomGraph(300, 3000, 41);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankOptions pr_opt;
  pr_opt.iterations = 10;
  auto result = RunPageRank(ms.store, pr_opt, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->stats.iterations, 10);

  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 10);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(result->ranks[v], expected[v], 1e-9);
  }
  const double sum =
      std::accumulate(result->ranks.begin(), result->ranks.end(), 0.0);
  EXPECT_GT(sum, 0.1);
  EXPECT_LE(sum, 1.0 + 1e-6);
}

TEST(PageRankDriverTest, HigherInDegreeEarnsHigherRank) {
  EdgeList edges;
  // Star: everyone points at vertex 0; plus a chain so out-degrees exist.
  for (uint32_t v = 1; v <= 20; ++v) edges.Add(v, 0);
  for (uint32_t v = 1; v < 20; ++v) edges.Add(v, v + 1);
  auto ms = testing::BuildMemStore(edges, 3);
  auto result = RunPageRank(ms.store, {}, RunOptions{});
  ASSERT_TRUE(result.ok());
  for (size_t v = 1; v < result->ranks.size(); ++v) {
    EXPECT_GT(result->ranks[0], result->ranks[v]);
  }
}

TEST(BfsDriverTest, DepthsAndSummary) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 3);
  edges.Add(0, 4);
  edges.Add(9, 9);  // self-loop island
  auto ms = testing::BuildMemStore(edges, 2);
  auto result = RunBfs(ms.store, 0, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->depths[0], 0u);
  EXPECT_EQ(result->depths[1], 1u);
  EXPECT_EQ(result->depths[3], 3u);
  EXPECT_EQ(result->depths[4], 1u);
  EXPECT_EQ(result->max_depth, 3u);
  EXPECT_EQ(result->reached, 5u);
}

TEST(BfsDriverTest, RootOutOfRangeRejected) {
  EdgeList edges = testing::RandomGraph(10, 30, 42);
  auto ms = testing::BuildMemStore(edges, 2);
  auto result = RunBfs(ms.store, 10000, RunOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(BfsDriverTest, MatchesReferenceOnRandomGraph) {
  EdgeList edges = testing::RandomGraph(400, 2400, 43);
  auto ms = testing::BuildMemStore(edges, 5);
  auto result = RunBfs(ms.store, 7, RunOptions{});
  ASSERT_TRUE(result.ok());
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  EXPECT_EQ(result->depths, ReferenceBfs(*ref_graph, 7));
}

TEST(WccDriverTest, MatchesUnionFindAndCounts) {
  EdgeList edges = testing::RandomGraph(300, 450, 44);  // sparse
  auto ms = testing::BuildMemStore(edges, 4);
  auto result = RunWcc(ms.store, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferenceWcc(*ref_graph);
  EXPECT_EQ(result->labels, expected);
  std::set<uint32_t> distinct(expected.begin(), expected.end());
  EXPECT_EQ(result->num_components, distinct.size());
}

TEST(WccDriverTest, DisjointCliquesStayDisjoint) {
  EdgeList edges;
  for (uint32_t base : {0u, 10u, 20u}) {
    for (uint32_t a = 0; a < 4; ++a) {
      for (uint32_t b = 0; b < 4; ++b) {
        if (a != b) edges.Add(base + a, base + b);
      }
    }
  }
  auto ms = testing::BuildMemStore(edges, 3);
  auto result = RunWcc(ms.store, RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 3u);
}

TEST(SsspDriverTest, MatchesDijkstra) {
  EdgeList edges = testing::RandomGraph(250, 2000, 45, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, 4);
  auto result = RunSssp(ms.store, 3, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferenceSssp(*ref_graph, 3);
  for (size_t v = 0; v < expected.size(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(result->distances[v]));
    } else {
      EXPECT_NEAR(result->distances[v], expected[v], 1e-4);
    }
  }
}

TEST(SsspDriverTest, UnweightedEqualsBfsDepths) {
  EdgeList edges = testing::RandomGraph(150, 900, 46);
  auto ms = testing::BuildMemStore(edges, 3);
  auto sssp = RunSssp(ms.store, 0, RunOptions{});
  auto bfs = RunBfs(ms.store, 0, RunOptions{});
  ASSERT_TRUE(sssp.ok());
  ASSERT_TRUE(bfs.ok());
  for (size_t v = 0; v < bfs->depths.size(); ++v) {
    if (bfs->depths[v] == std::numeric_limits<uint32_t>::max()) {
      EXPECT_TRUE(std::isinf(sssp->distances[v]));
    } else {
      EXPECT_FLOAT_EQ(sssp->distances[v],
                      static_cast<float>(bfs->depths[v]));
    }
  }
}

class SccTest : public ::testing::TestWithParam<int> {};

TEST_P(SccTest, MatchesTarjanOnRandomGraphs) {
  const int seed = GetParam();
  EdgeList edges = testing::RandomGraph(120, 360, seed);
  auto ms = testing::BuildMemStore(edges, 4);
  auto result = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  EXPECT_EQ(result->component, ReferenceScc(*ref_graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SccTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(SccDriverTest, CycleIsOneComponent) {
  EdgeList edges;
  for (uint32_t v = 0; v < 10; ++v) edges.Add(v, (v + 1) % 10);
  auto ms = testing::BuildMemStore(edges, 2);
  auto result = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 1u);
  EXPECT_EQ(result->largest_component, 10u);
  for (uint32_t c : result->component) EXPECT_EQ(c, 0u);
}

TEST(SccDriverTest, DagIsAllSingletons) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(0, 2);
  auto ms = testing::BuildMemStore(edges, 2);
  auto result = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 3u);
  EXPECT_EQ(result->largest_component, 1u);
}

TEST(SccDriverTest, TwoCyclesBridged) {
  EdgeList edges;
  // Cycle A: 0->1->2->0; cycle B: 3->4->5->3; bridge 2->3.
  edges.Add(0, 1);
  edges.Add(1, 2);
  edges.Add(2, 0);
  edges.Add(3, 4);
  edges.Add(4, 5);
  edges.Add(5, 3);
  edges.Add(2, 3);
  auto ms = testing::BuildMemStore(edges, 2);
  auto result = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_components, 2u);
  EXPECT_EQ(result->component[0], result->component[2]);
  EXPECT_EQ(result->component[3], result->component[5]);
  EXPECT_NE(result->component[0], result->component[3]);
}

TEST(SccDriverTest, RequiresTranspose) {
  EdgeList edges = testing::RandomGraph(20, 60, 47);
  auto ms = testing::BuildMemStore(edges, 2, /*transpose=*/false);
  auto result = RunScc(ms.store, RunOptions{});
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(SccDriverTest, WorksUnderDpu) {
  EdgeList edges = testing::RandomGraph(100, 300, 48);
  auto ms = testing::BuildMemStore(edges, 4);
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  auto result = RunScc(ms.store, opt);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  EXPECT_EQ(result->component, ReferenceScc(*ref_graph));
}

TEST(MtepsTest, ComputedFromStats) {
  RunStats stats;
  stats.edges_traversed = 5'000'000;
  stats.seconds = 2.0;
  EXPECT_DOUBLE_EQ(stats.Mteps(), 2.5);
  RunStats empty;
  EXPECT_EQ(empty.Mteps(), 0.0);
}

}  // namespace
}  // namespace nxgraph
