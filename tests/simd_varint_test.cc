// Differential fuzz + property tests for the bulk varint decoder
// (src/util/simd_varint.h): every supported decode path must agree with the
// strict scalar codec on values, consumed lengths, and the accept/reject
// set — including adversarial streams (truncated, overlong, overflowing,
// max-width, lane-boundary-straddling). All streams are decoded out of
// exactly-sized heap buffers so the ASan CI job catches any out-of-bounds
// window load.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "src/util/random.h"
#include "src/util/simd_varint.h"
#include "src/util/varint.h"

namespace nxgraph {
namespace {

// Fixed fuzz seed, overridable for reproduction; every failure message
// carries the seed and case index.
constexpr uint64_t kFuzzSeed = 0x5eed51bdull;

std::vector<DecodePath> SupportedPaths() {
  std::vector<DecodePath> paths = {DecodePath::kScalar};
  if (DecodePathSupported(DecodePath::kSsse3)) {
    paths.push_back(DecodePath::kSsse3);
  }
  if (DecodePathSupported(DecodePath::kAvx2)) {
    paths.push_back(DecodePath::kAvx2);
  }
  return paths;
}

// Decodes `n` varint32s with the original one-value-at-a-time codec — the
// contract every bulk path must reproduce bit-for-bit.
const char* ReferenceDecode32(const char* p, const char* limit, uint32_t* out,
                              size_t n) {
  for (size_t k = 0; k < n; ++k) {
    p = GetVarint32(p, limit, &out[k]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

const char* ReferenceDecode64(const char* p, const char* limit, uint64_t* out,
                              size_t n) {
  for (size_t k = 0; k < n; ++k) {
    p = GetVarint64(p, limit, &out[k]);
    if (p == nullptr) return nullptr;
  }
  return p;
}

// Largest m <= n such that decoding m values from the stream succeeds — the
// observable "error position" of a malformed stream. Scalar and SIMD must
// agree on it.
template <typename T, typename Decode>
size_t MaxDecodablePrefix(const char* p, const char* limit, size_t n,
                          Decode decode) {
  std::vector<T> scratch(n + 1);
  size_t best = 0;
  for (size_t m = 0; m <= n; ++m) {
    if (decode(p, limit, scratch.data(), m) != nullptr) best = m;
  }
  return best;
}

// Checks that every supported path decodes `bytes` exactly like the
// reference codec: same accept/reject, same end position, same values; on
// reject, the same maximal decodable prefix. The stream is copied into an
// exactly-sized heap buffer so ASan flags any read past `limit`.
void ExpectAllPathsAgree32(const std::string& bytes, size_t n,
                           const std::string& trace) {
  std::vector<char> buf(bytes.begin(), bytes.end());
  const char* p = buf.data();
  const char* limit = p + buf.size();

  std::vector<uint32_t> want(n + 1, 0xDEADBEEF);
  const char* want_end = ReferenceDecode32(p, limit, want.data(), n);

  for (DecodePath path : SupportedPaths()) {
    SCOPED_TRACE(trace + " path=" + DecodePathName(path));
    std::vector<uint32_t> got(n + 1, 0xABAD1DEA);
    const char* got_end = BulkGetVarint32(p, limit, got.data(), n, path);
    if (want_end == nullptr) {
      EXPECT_EQ(got_end, nullptr);
      const size_t want_prefix = MaxDecodablePrefix<uint32_t>(
          p, limit, n, [](const char* q, const char* l, uint32_t* o, size_t m) {
            return ReferenceDecode32(q, l, o, m);
          });
      const size_t got_prefix = MaxDecodablePrefix<uint32_t>(
          p, limit, n,
          [path](const char* q, const char* l, uint32_t* o, size_t m) {
            return BulkGetVarint32(q, l, o, m, path);
          });
      EXPECT_EQ(got_prefix, want_prefix);
    } else {
      ASSERT_NE(got_end, nullptr);
      EXPECT_EQ(got_end - p, want_end - p) << "consumed length";
      for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(got[k], want[k]) << "value index " << k;
      }
    }
  }
}

void ExpectAllPathsAgree64(const std::string& bytes, size_t n,
                           const std::string& trace) {
  std::vector<char> buf(bytes.begin(), bytes.end());
  const char* p = buf.data();
  const char* limit = p + buf.size();

  std::vector<uint64_t> want(n + 1, 0xDEADBEEF);
  const char* want_end = ReferenceDecode64(p, limit, want.data(), n);

  for (DecodePath path : SupportedPaths()) {
    SCOPED_TRACE(trace + " path=" + DecodePathName(path));
    std::vector<uint64_t> got(n + 1, 0xABAD1DEA);
    const char* got_end = BulkGetVarint64(p, limit, got.data(), n, path);
    if (want_end == nullptr) {
      EXPECT_EQ(got_end, nullptr);
      const size_t want_prefix = MaxDecodablePrefix<uint64_t>(
          p, limit, n, [](const char* q, const char* l, uint64_t* o, size_t m) {
            return ReferenceDecode64(q, l, o, m);
          });
      const size_t got_prefix = MaxDecodablePrefix<uint64_t>(
          p, limit, n,
          [path](const char* q, const char* l, uint64_t* o, size_t m) {
            return BulkGetVarint64(q, l, o, m, path);
          });
      EXPECT_EQ(got_prefix, want_prefix);
    } else {
      ASSERT_NE(got_end, nullptr);
      EXPECT_EQ(got_end - p, want_end - p) << "consumed length";
      for (size_t k = 0; k < n; ++k) {
        ASSERT_EQ(got[k], want[k]) << "value index " << k;
      }
    }
  }
}

// Random value whose encoded byte width is uniform over the widths, not the
// value range — otherwise almost every uniform draw is max-width and the
// short-code fast paths go untested.
uint32_t RandomWidthValue32(Xoshiro256& rng) {
  const int bits = 1 + static_cast<int>(rng.NextBounded(32));
  return static_cast<uint32_t>(rng.Next() & ((bits == 32)
                                                 ? 0xFFFFFFFFull
                                                 : ((1ull << bits) - 1)));
}

uint64_t RandomWidthValue64(Xoshiro256& rng) {
  const int bits = 1 + static_cast<int>(rng.NextBounded(64));
  return bits == 64 ? rng.Next() : (rng.Next() & ((1ull << bits) - 1));
}

TEST(SimdVarintTest, DispatchBasics) {
  EXPECT_STREQ(DecodePathName(DecodePath::kScalar), "scalar");
  EXPECT_STREQ(DecodePathName(DecodePath::kSsse3), "ssse3");
  EXPECT_STREQ(DecodePathName(DecodePath::kAvx2), "avx2");

  SimdDecode mode = SimdDecode::kForceSimd;
  EXPECT_TRUE(ParseSimdDecode("auto", &mode));
  EXPECT_EQ(mode, SimdDecode::kAuto);
  EXPECT_TRUE(ParseSimdDecode("scalar", &mode));
  EXPECT_EQ(mode, SimdDecode::kForceScalar);
  EXPECT_TRUE(ParseSimdDecode("force-scalar", &mode));
  EXPECT_EQ(mode, SimdDecode::kForceScalar);
  EXPECT_TRUE(ParseSimdDecode("simd", &mode));
  EXPECT_EQ(mode, SimdDecode::kForceSimd);
  EXPECT_TRUE(ParseSimdDecode("force-simd", &mode));
  EXPECT_EQ(mode, SimdDecode::kForceSimd);
  mode = SimdDecode::kAuto;
  EXPECT_FALSE(ParseSimdDecode("avx512", &mode));
  EXPECT_EQ(mode, SimdDecode::kAuto);  // untouched on parse failure

  EXPECT_TRUE(DecodePathSupported(DecodePath::kScalar));
  EXPECT_TRUE(DecodePathSupported(BestHardwareDecodePath()));
  EXPECT_EQ(ResolveDecodePath(SimdDecode::kForceScalar), DecodePath::kScalar);
  // kForceSimd ignores NXGRAPH_SIMD but never exceeds the hardware.
  EXPECT_TRUE(DecodePathSupported(ResolveDecodePath(SimdDecode::kForceSimd)));
  EXPECT_TRUE(DecodePathSupported(ResolveDecodePath(SimdDecode::kAuto)));
}

TEST(SimdVarintTest, EmptyAndZeroCount) {
  const std::string bytes = "\x01\x02";
  for (DecodePath path : SupportedPaths()) {
    // The out buffer must hold n values even on failure: the decoder may
    // write every value it reached before detecting the truncation.
    uint32_t sink32[3] = {0, 0, 0};
    uint64_t sink64 = 0;
    // n = 0 consumes nothing and cannot fail, even on an empty range.
    EXPECT_EQ(BulkGetVarint32(bytes.data(), bytes.data(), sink32, 0, path),
              bytes.data());
    EXPECT_EQ(BulkGetVarint64(bytes.data(), bytes.data(), &sink64, 0, path),
              bytes.data());
    // n > available values is a truncation.
    EXPECT_EQ(BulkGetVarint32(bytes.data(), bytes.data() + 2, sink32, 3, path),
              nullptr);
  }
}

TEST(SimdVarintTest, AdversarialStreams32) {
  // Each case: raw bytes + the value count to request.
  struct Case {
    const char* name;
    std::string bytes;
    size_t n;
  };
  const std::vector<Case> cases = {
      {"truncated-lone-continuation", "\x80", 1},
      {"truncated-two-continuations", "\xFF\xFF", 1},
      {"truncated-four-continuations", "\xFF\xFF\xFF\xFF", 1},
      {"truncated-mid-stream", std::string("\x05\xAC\x02\x80", 4), 3},
      {"overlong-zero", std::string("\x80\x00", 2), 1},
      {"overlong-value", std::string("\xFF\x80\x00", 3), 1},
      {"overlong-deep", std::string("\x80\x80\x80\x80\x00", 5), 1},
      {"overlong-after-valid-run",
       std::string("\x01\x02\x03\x04\x05\x06\x07\x80\x00", 9), 8},
      {"overflow-five-byte", std::string("\xFF\xFF\xFF\xFF\x1F", 5), 1},
      {"overflow-big-final", std::string("\xFF\xFF\xFF\xFF\x7F", 5), 1},
      {"six-byte-code", std::string("\xFF\xFF\xFF\xFF\xFF\x0F", 6), 1},
      {"max-width-ok", std::string("\xFF\xFF\xFF\xFF\x0F", 5), 1},
      {"max-width-run",
       std::string("\xFF\xFF\xFF\xFF\x0F\xFF\xFF\xFF\xFF\x0F", 10), 2},
      {"empty-nonzero-n", std::string(), 1},
  };
  for (const Case& c : cases) {
    ExpectAllPathsAgree32(c.bytes, c.n, std::string("case=") + c.name);
  }
}

TEST(SimdVarintTest, AdversarialStreams64) {
  const std::string nine_ff(9, '\xFF');
  struct Case {
    const char* name;
    std::string bytes;
    size_t n;
  };
  const std::vector<Case> cases = {
      {"truncated-lone-continuation", "\x80", 1},
      {"truncated-nine-continuations", nine_ff, 1},
      {"overlong-zero", std::string("\x80\x00", 2), 1},
      {"overlong-deep", std::string("\x80\x80\x80\x80\x80\x80\x80\x80\x80\x00",
                                    10), 1},
      {"overflow-tenth-byte", nine_ff + std::string("\x02", 1), 1},
      {"eleven-byte-code", nine_ff + std::string("\xFF\x01", 2), 1},
      {"max-width-ok", nine_ff + std::string("\x01", 1), 1},
      {"max-width-run", nine_ff + "\x01" + nine_ff + "\x01", 2},
      {"truncated-mid-stream", std::string("\x05\xAC\x02\x80", 4), 3},
  };
  for (const Case& c : cases) {
    ExpectAllPathsAgree64(c.bytes, c.n, std::string("case=") + c.name);
  }
}

// Multi-byte codes placed to straddle every 8/16/32-byte window offset a
// SIMD kernel could load at: `lead` single-byte values, then a code of each
// encoded width, then a single-byte tail.
TEST(SimdVarintTest, LaneBoundaryStraddles32) {
  const uint32_t widths[] = {0x45u, 0x1234u, 0x123456u, 0x12345678u,
                             0xFFFFFFFFu};
  for (size_t lead = 0; lead <= 40; ++lead) {
    for (uint32_t wide : widths) {
      std::string bytes;
      size_t n = 0;
      for (size_t k = 0; k < lead; ++k, ++n) {
        PutVarint32(&bytes, static_cast<uint32_t>(k & 0x7F));
      }
      PutVarint32(&bytes, wide);
      ++n;
      for (size_t k = 0; k < 3; ++k, ++n) PutVarint32(&bytes, 7);
      ExpectAllPathsAgree32(
          bytes, n,
          "lead=" + std::to_string(lead) + " wide=" + std::to_string(wide));
    }
  }
}

TEST(SimdVarintTest, LaneBoundaryStraddles64) {
  const uint64_t widths[] = {0x45ull, 0x1234ull, 0x12345678ull,
                             0x123456789ABCDEFull, ~0ull};
  for (size_t lead = 0; lead <= 24; ++lead) {
    for (uint64_t wide : widths) {
      std::string bytes;
      size_t n = 0;
      for (size_t k = 0; k < lead; ++k, ++n) {
        PutVarint64(&bytes, static_cast<uint64_t>(k & 0x7F));
      }
      PutVarint64(&bytes, wide);
      ++n;
      for (size_t k = 0; k < 3; ++k, ++n) PutVarint64(&bytes, 9);
      ExpectAllPathsAgree64(
          bytes, n,
          "lead=" + std::to_string(lead) + " wide=" + std::to_string(wide));
    }
  }
}

// Long all-single-byte streams exercise the 16/32-value fast paths across
// every length remainder.
TEST(SimdVarintTest, AllSingleByteLengthSweep) {
  for (size_t n = 0; n <= 100; ++n) {
    std::string bytes;
    for (size_t k = 0; k < n; ++k) {
      PutVarint32(&bytes, static_cast<uint32_t>((k * 37) & 0x7F));
    }
    ExpectAllPathsAgree32(bytes, n, "single32 n=" + std::to_string(n));
    ExpectAllPathsAgree64(bytes, n, "single64 n=" + std::to_string(n));
  }
}

TEST(SimdVarintTest, DifferentialFuzzVarint32) {
  Xoshiro256 rng(kFuzzSeed);
  for (int iter = 0; iter < 300; ++iter) {
    const std::string trace =
        "seed=" + std::to_string(kFuzzSeed) + " iter=" + std::to_string(iter);
    const size_t n = rng.NextBounded(120);
    std::string bytes;
    for (size_t k = 0; k < n; ++k) PutVarint32(&bytes, RandomWidthValue32(rng));

    ExpectAllPathsAgree32(bytes, n, trace + " valid");

    if (!bytes.empty()) {
      // Truncate at a random point: strictly fewer decodable values.
      std::string trunc = bytes.substr(0, rng.NextBounded(bytes.size()));
      ExpectAllPathsAgree32(trunc, n, trace + " truncated");
      // Flip one random byte: may stay valid (both must agree either way).
      std::string flipped = bytes;
      flipped[rng.NextBounded(flipped.size())] ^=
          static_cast<char>(1u << rng.NextBounded(8));
      ExpectAllPathsAgree32(flipped, n, trace + " bitflip");
      // Force a continuation run off the end.
      std::string runaway = bytes;
      runaway.back() |= '\x80';
      ExpectAllPathsAgree32(runaway, n, trace + " runaway");
    }
  }
}

TEST(SimdVarintTest, DifferentialFuzzVarint64) {
  Xoshiro256 rng(kFuzzSeed ^ 0x64646464ull);
  for (int iter = 0; iter < 300; ++iter) {
    const std::string trace = "seed=" + std::to_string(kFuzzSeed ^ 0x64646464ull) +
                              " iter=" + std::to_string(iter);
    const size_t n = rng.NextBounded(80);
    std::string bytes;
    for (size_t k = 0; k < n; ++k) PutVarint64(&bytes, RandomWidthValue64(rng));

    ExpectAllPathsAgree64(bytes, n, trace + " valid");

    if (!bytes.empty()) {
      std::string trunc = bytes.substr(0, rng.NextBounded(bytes.size()));
      ExpectAllPathsAgree64(trunc, n, trace + " truncated");
      std::string flipped = bytes;
      flipped[rng.NextBounded(flipped.size())] ^=
          static_cast<char>(1u << rng.NextBounded(8));
      ExpectAllPathsAgree64(flipped, n, trace + " bitflip");
      std::string runaway = bytes;
      runaway.back() |= '\x80';
      ExpectAllPathsAgree64(runaway, n, trace + " runaway");
    }
  }
}

// Round-trip property: Encode -> BulkDecode -> re-Encode is byte-identical
// and value-identical under every path, for several value distributions.
TEST(SimdVarintTest, RoundTripProperty) {
  Xoshiro256 rng(kFuzzSeed ^ 0x0707ull);
  const int kDistributions = 4;
  for (int dist = 0; dist < kDistributions; ++dist) {
    for (int iter = 0; iter < 40; ++iter) {
      const std::string trace = "dist=" + std::to_string(dist) +
                                " iter=" + std::to_string(iter) +
                                " seed=" + std::to_string(kFuzzSeed ^ 0x0707ull);
      const size_t n = 1 + rng.NextBounded(200);
      std::vector<uint32_t> vals32(n);
      std::vector<uint64_t> vals64(n);
      for (size_t k = 0; k < n; ++k) {
        switch (dist) {
          case 0:  // uniform over widths
            vals32[k] = RandomWidthValue32(rng);
            vals64[k] = RandomWidthValue64(rng);
            break;
          case 1:  // zipf-ish: mostly tiny, occasionally huge
            vals32[k] = static_cast<uint32_t>(
                rng.Next() >> (33 + rng.NextBounded(31)) << rng.NextBounded(4));
            vals64[k] = rng.Next() >> rng.NextBounded(64);
            break;
          case 2:  // all zero (shortest codes, overlong bait)
            vals32[k] = 0;
            vals64[k] = 0;
            break;
          default:  // all max (widest codes)
            vals32[k] = 0xFFFFFFFFu;
            vals64[k] = ~0ull;
            break;
        }
      }
      std::string enc32, enc64;
      for (size_t k = 0; k < n; ++k) {
        PutVarint32(&enc32, vals32[k]);
        PutVarint64(&enc64, vals64[k]);
      }
      for (DecodePath path : SupportedPaths()) {
        SCOPED_TRACE(trace + " path=" + DecodePathName(path));
        std::vector<uint32_t> dec32(n);
        std::vector<uint64_t> dec64(n);
        const char* end32 = BulkGetVarint32(
            enc32.data(), enc32.data() + enc32.size(), dec32.data(), n, path);
        const char* end64 = BulkGetVarint64(
            enc64.data(), enc64.data() + enc64.size(), dec64.data(), n, path);
        ASSERT_EQ(end32, enc32.data() + enc32.size());
        ASSERT_EQ(end64, enc64.data() + enc64.size());
        EXPECT_EQ(dec32, vals32);
        EXPECT_EQ(dec64, vals64);
        std::string re32, re64;
        for (size_t k = 0; k < n; ++k) {
          PutVarint32(&re32, dec32[k]);
          PutVarint64(&re64, dec64[k]);
        }
        EXPECT_EQ(re32, enc32) << "re-encode not byte-identical";
        EXPECT_EQ(re64, enc64) << "re-encode not byte-identical";
      }
    }
  }
}

TEST(SimdVarintTest, Varint64SizeMatchesEncoding) {
  Xoshiro256 rng(kFuzzSeed ^ 0xBEEFull);
  std::vector<uint64_t> probes = {0, 1, 127, 128, 16383, 16384, ~0ull};
  for (int i = 0; i < 200; ++i) probes.push_back(RandomWidthValue64(rng));
  for (uint64_t v : probes) {
    std::string enc;
    PutVarint64(&enc, v);
    EXPECT_EQ(Varint64Size(v), enc.size()) << "value " << v;
  }
  std::vector<uint32_t> probes32 = {0, 1, 127, 128, 0xFFFFFFFFu};
  for (uint32_t v : probes32) {
    std::string enc;
    PutVarint32(&enc, v);
    EXPECT_EQ(Varint32Size(v), enc.size()) << "value " << v;
  }
}

// DeltaPrefixSumU32: all paths produce identical outputs AND identical exact
// 64-bit totals — including wrap-around cases where the total exceeds
// UINT32_MAX and the caller is about to reject.
TEST(SimdVarintTest, DeltaPrefixSumDifferential) {
  Xoshiro256 rng(kFuzzSeed ^ 0xD17Aull);
  const std::vector<size_t> sizes = {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 100};
  for (uint32_t bias = 0; bias <= 1; ++bias) {
    for (size_t n : sizes) {
      for (int flavor = 0; flavor < 3; ++flavor) {
        std::vector<uint32_t> deltas(n);
        for (size_t k = 0; k < n; ++k) {
          switch (flavor) {
            case 0:  // small: realistic in-range streams
              deltas[k] = static_cast<uint32_t>(rng.NextBounded(1000));
              break;
            case 1:  // huge: guaranteed overflow for n >= 2
              deltas[k] = 0xFFFFFFFFu - static_cast<uint32_t>(rng.NextBounded(3));
              break;
            default:  // mixed widths
              deltas[k] = RandomWidthValue32(rng);
              break;
          }
        }
        std::vector<uint32_t> want(n, 0);
        const uint64_t want_total = DeltaPrefixSumU32(
            deltas.data(), n, bias, want.data(), DecodePath::kScalar);

        // The scalar result must match the definition exactly.
        uint64_t exact = 0;
        uint32_t running = 0;
        for (size_t k = 0; k < n; ++k) {
          running = k == 0 ? deltas[0] : running + deltas[k] + bias;
          exact += deltas[k];
          if (k > 0) exact += bias;
          ASSERT_EQ(want[k], running) << "k=" << k;
        }
        ASSERT_EQ(want_total, exact);

        for (DecodePath path : SupportedPaths()) {
          SCOPED_TRACE(std::string("path=") + DecodePathName(path) +
                       " bias=" + std::to_string(bias) +
                       " n=" + std::to_string(n) +
                       " flavor=" + std::to_string(flavor));
          std::vector<uint32_t> got(n, 0x5A5A5A5A);
          const uint64_t got_total =
              DeltaPrefixSumU32(deltas.data(), n, bias, got.data(), path);
          EXPECT_EQ(got_total, want_total);
          EXPECT_EQ(got, want);
        }
      }
    }
  }
}

}  // namespace
}  // namespace nxgraph
