// Algorithms on adversarial graph shapes: complete graphs, long paths,
// self-loop-only graphs, bipartite structures, stars — the places where
// activity tracking, hub accumulation and termination logic tend to break.
#include <gtest/gtest.h>

#include "src/algos/reference.h"
#include "src/core/nxgraph.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

void ExpectAllAlgorithmsMatchReferences(const EdgeList& edges, uint32_t p,
                                        RunOptions opt = {}) {
  auto ms = testing::BuildMemStore(edges, p);
  auto ref = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref.ok());

  auto pr = RunPageRank(ms.store, PageRankOptions{.iterations = 5}, opt);
  ASSERT_TRUE(pr.ok()) << pr.status().ToString();
  const auto expected_pr = ReferencePageRank(*ref, 0.85, 5);
  for (size_t v = 0; v < expected_pr.size(); ++v) {
    ASSERT_NEAR(pr->ranks[v], expected_pr[v], 1e-9) << "vertex " << v;
  }

  auto bfs = RunBfs(ms.store, 0, opt);
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(bfs->depths, ReferenceBfs(*ref, 0));

  auto wcc = RunWcc(ms.store, opt);
  ASSERT_TRUE(wcc.ok());
  EXPECT_EQ(wcc->labels, ReferenceWcc(*ref));

  auto scc = RunScc(ms.store, opt);
  ASSERT_TRUE(scc.ok()) << scc.status().ToString();
  EXPECT_EQ(scc->component, ReferenceScc(*ref));
}

TEST(TopologyTest, CompleteGraph) {
  EdgeList edges;
  for (uint32_t a = 0; a < 20; ++a) {
    for (uint32_t b = 0; b < 20; ++b) {
      if (a != b) edges.Add(a, b);
    }
  }
  ExpectAllAlgorithmsMatchReferences(edges, 4);
}

TEST(TopologyTest, LongDirectedPath) {
  // Stresses iteration counts: BFS/SCC need O(length) synchronous rounds.
  EdgeList edges;
  for (uint32_t v = 0; v < 200; ++v) edges.Add(v, v + 1);
  ExpectAllAlgorithmsMatchReferences(edges, 8);
}

TEST(TopologyTest, LongCycleIsOneScc) {
  EdgeList edges;
  for (uint32_t v = 0; v < 150; ++v) edges.Add(v, (v + 1) % 150);
  auto ms = testing::BuildMemStore(edges, 6);
  auto scc = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(scc.ok());
  EXPECT_EQ(scc->num_components, 1u);
  EXPECT_EQ(scc->largest_component, 150u);
}

TEST(TopologyTest, SelfLoopsOnly) {
  EdgeList edges;
  for (uint32_t v = 0; v < 10; ++v) edges.Add(v * 5, v * 5);
  auto ms = testing::BuildMemStore(edges, 3);
  auto ref = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref.ok());
  auto scc = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(scc.ok());
  EXPECT_EQ(scc->component, ReferenceScc(*ref));
  EXPECT_EQ(scc->num_components, 10u);
  auto wcc = RunWcc(ms.store, RunOptions{});
  ASSERT_TRUE(wcc.ok());
  EXPECT_EQ(wcc->num_components, 10u);
  // PageRank on pure self-loops: each vertex keeps feeding itself.
  auto pr = RunPageRank(ms.store, PageRankOptions{.iterations = 3},
                        RunOptions{});
  ASSERT_TRUE(pr.ok());
  const auto expected = ReferencePageRank(*ref, 0.85, 3);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(pr->ranks[v], expected[v], 1e-12);
  }
}

TEST(TopologyTest, DirectedBipartite) {
  // All edges left -> right: two BFS levels, all-singleton SCCs, one WCC
  // per connected pair-group.
  EdgeList edges;
  for (uint32_t l = 0; l < 10; ++l) {
    for (uint32_t r = 0; r < 3; ++r) {
      edges.Add(l, 10 + (l + r) % 10);
    }
  }
  ExpectAllAlgorithmsMatchReferences(edges, 4);
}

TEST(TopologyTest, StarInAndOut) {
  EdgeList edges;
  for (uint32_t v = 1; v <= 30; ++v) {
    edges.Add(0, v);   // hub out
    edges.Add(v, 0);   // hub in
  }
  ExpectAllAlgorithmsMatchReferences(edges, 5);
  // The whole star is one SCC through the hub.
  auto ms = testing::BuildMemStore(edges, 5);
  auto scc = RunScc(ms.store, RunOptions{});
  ASSERT_TRUE(scc.ok());
  EXPECT_EQ(scc->num_components, 1u);
}

TEST(TopologyTest, TwoIslandsNeverMix) {
  EdgeList edges;
  for (uint32_t v = 0; v < 20; ++v) edges.Add(v, (v + 1) % 20);
  for (uint32_t v = 100; v < 120; ++v) edges.Add(v, 100 + (v + 1 - 100) % 20);
  auto ms = testing::BuildMemStore(edges, 4);
  auto wcc = RunWcc(ms.store, RunOptions{});
  ASSERT_TRUE(wcc.ok());
  EXPECT_EQ(wcc->num_components, 2u);
  auto bfs = RunBfs(ms.store, 0, RunOptions{});
  ASSERT_TRUE(bfs.ok());
  EXPECT_EQ(bfs->reached, 20u);  // the second island is unreachable
}

TEST(TopologyTest, ParallelEdgesCountInPageRank) {
  // Three parallel edges 0->1 versus one edge 0->2: vertex 1 must absorb
  // three times the contribution share.
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 0);
  edges.Add(2, 0);
  auto ms = testing::BuildMemStore(edges, 2);
  auto ref = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref.ok());
  auto pr = RunPageRank(ms.store, PageRankOptions{.iterations = 10},
                        RunOptions{});
  ASSERT_TRUE(pr.ok());
  const auto expected = ReferencePageRank(*ref, 0.85, 10);
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(pr->ranks[v], expected[v], 1e-12);
  }
  EXPECT_GT(pr->ranks[1], 2.0 * pr->ranks[2]);
}

TEST(TopologyTest, AllAlgorithmsUnderDpuOnPath) {
  EdgeList edges;
  for (uint32_t v = 0; v < 100; ++v) edges.Add(v, v + 1);
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.num_threads = 2;
  ExpectAllAlgorithmsMatchReferences(edges, 8, opt);
}

}  // namespace
}  // namespace nxgraph
