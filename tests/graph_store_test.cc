#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/algos/reference.h"
#include "src/prep/manifest.h"
#include "src/storage/graph_store.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

TEST(GraphStoreTest, OpensBuiltStore) {
  EdgeList edges = testing::RandomGraph(100, 1000, 1);
  auto ms = testing::BuildMemStore(edges, 4);
  EXPECT_EQ(ms.store->num_edges(), 1000u);
  EXPECT_EQ(ms.store->num_intervals(), 4u);
  EXPECT_TRUE(ms.store->has_transpose());
}

TEST(GraphStoreTest, MissingDirectoryIsNotFound) {
  auto env = NewMemEnv();
  auto store = GraphStore::Open(env.get(), "nothing-here");
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsNotFound());
}

TEST(GraphStoreTest, OutOfRangeSubShardRejected) {
  EdgeList edges = testing::RandomGraph(50, 200, 2);
  auto ms = testing::BuildMemStore(edges, 2);
  auto ss = ms.store->LoadSubShard(5, 0);
  ASSERT_FALSE(ss.ok());
  EXPECT_TRUE(ss.status().IsInvalidArgument());
}

TEST(GraphStoreTest, TransposeUnavailableWhenNotBuilt) {
  EdgeList edges = testing::RandomGraph(50, 200, 3);
  auto ms = testing::BuildMemStore(edges, 2, /*transpose=*/false);
  EXPECT_FALSE(ms.store->has_transpose());
  auto ss = ms.store->LoadSubShard(0, 0, /*transpose=*/true);
  ASSERT_FALSE(ss.ok());
  EXPECT_TRUE(ss.status().IsInvalidArgument());
}

TEST(GraphStoreTest, ReassembledEdgesMatchInput) {
  EdgeList edges = testing::RandomGraph(128, 2000, 4, false, 3);
  auto ms = testing::BuildMemStore(edges, 4);
  auto ref = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->edges.size(), edges.num_edges());
  EXPECT_EQ(ref->num_vertices, ms.store->num_vertices());
}

TEST(GraphStoreTest, DegreesMatchEdgeSet) {
  EdgeList edges = testing::RandomGraph(64, 640, 5);
  auto ms = testing::BuildMemStore(edges, 4);
  auto out_d = ms.store->LoadOutDegrees();
  auto in_d = ms.store->LoadInDegrees();
  ASSERT_TRUE(out_d.ok());
  ASSERT_TRUE(in_d.ok());
  auto ref = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref.ok());
  std::vector<uint32_t> expect_out(ms.store->num_vertices(), 0);
  std::vector<uint32_t> expect_in(ms.store->num_vertices(), 0);
  for (const Edge& e : ref->edges) {
    ++expect_out[e.src];
    ++expect_in[e.dst];
  }
  EXPECT_EQ(*out_d, expect_out);
  EXPECT_EQ(*in_d, expect_in);
}

TEST(GraphStoreTest, CorruptShardBlobDetected) {
  EdgeList edges = testing::RandomGraph(50, 400, 6);
  auto ms = testing::BuildMemStore(edges, 2);
  // Flip a byte in the middle of the sub-shards file.
  std::string data;
  ASSERT_TRUE(ReadFileToString(ms.env.get(), "g/subshards.nxs", &data).ok());
  data[data.size() / 2] ^= 0xFF;
  ASSERT_TRUE(WriteStringToFile(ms.env.get(), "g/subshards.nxs", data).ok());
  auto store = GraphStore::Open(ms.env.get(), "g");
  ASSERT_TRUE(store.ok());
  bool saw_corruption = false;
  for (uint32_t i = 0; i < 2 && !saw_corruption; ++i) {
    for (uint32_t j = 0; j < 2 && !saw_corruption; ++j) {
      auto ss = (*store)->LoadSubShard(i, j);
      if (!ss.ok() && ss.status().IsCorruption()) saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(SubShardCacheTest, CachesWithinBudget) {
  EdgeList edges = testing::RandomGraph(100, 2000, 7);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, /*budget=*/UINT64_MAX);
  auto a = cache.Get(0, 0);
  ASSERT_TRUE(a.ok());
  const uint64_t loaded_once = cache.bytes_loaded_from_disk();
  auto b = cache.Get(0, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(cache.bytes_loaded_from_disk(), loaded_once);  // cache hit
  EXPECT_EQ(a->get(), b->get());
}

TEST(SubShardCacheTest, ZeroBudgetAlwaysReloads) {
  EdgeList edges = testing::RandomGraph(100, 2000, 8);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, /*budget=*/0);
  auto a = cache.Get(0, 0);
  ASSERT_TRUE(a.ok());
  const uint64_t first = cache.bytes_loaded_from_disk();
  ASSERT_GT(first, 0u);
  auto b = cache.Get(0, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(cache.bytes_loaded_from_disk(), first);  // transient reload
  EXPECT_EQ(cache.bytes_cached(), 0u);
}

TEST(SubShardCacheTest, ClearEvictsEverything) {
  EdgeList edges = testing::RandomGraph(100, 2000, 9);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, UINT64_MAX);
  ASSERT_TRUE(cache.Get(1, 1).ok());
  ASSERT_GT(cache.bytes_cached(), 0u);
  cache.Clear();
  EXPECT_EQ(cache.bytes_cached(), 0u);
}

TEST(SubShardCacheTest, ConcurrentMissesShareOneLoad) {
  EdgeList edges = testing::RandomGraph(100, 2000, 11);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, UINT64_MAX);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::shared_ptr<const SubShard>> seen(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &seen, t] {
      auto r = cache.Get(0, 0);
      ASSERT_TRUE(r.ok());
      seen[t] = *r;
    });
  }
  for (auto& th : threads) th.join();
  // All callers share the single load's object; the blob was read from
  // disk exactly once.
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(cache.bytes_loaded_from_disk(), seen[0]->MemoryBytes());
}

TEST(SubShardCacheTest, PutWarmsGetWithoutDiskLoad) {
  EdgeList edges = testing::RandomGraph(100, 2000, 12);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, UINT64_MAX);
  auto loaded = ms.store->LoadSubShard(0, 0);
  ASSERT_TRUE(loaded.ok());
  auto ss = std::make_shared<const SubShard>(std::move(loaded).value());
  cache.Put(0, 0, false, ss);
  EXPECT_EQ(cache.bytes_cached(), ss->MemoryBytes());
  auto got = cache.Get(0, 0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->get(), ss.get());
  // The warmed entry served the Get: nothing was loaded from disk and a
  // second Put of the same key does not double-count.
  EXPECT_EQ(cache.bytes_loaded_from_disk(), 0u);
  cache.Put(0, 0, false, ss);
  EXPECT_EQ(cache.bytes_cached(), ss->MemoryBytes());
}

TEST(SubShardCacheTest, PutRespectsBudget) {
  EdgeList edges = testing::RandomGraph(100, 2000, 13);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, /*budget=*/1);
  auto loaded = ms.store->LoadSubShard(0, 0);
  ASSERT_TRUE(loaded.ok());
  cache.Put(0, 0, false,
            std::make_shared<const SubShard>(std::move(loaded).value()));
  EXPECT_EQ(cache.bytes_cached(), 0u);  // over budget: dropped
}

// Decoded footprint of one sub-shard, for sizing eviction tests exactly.
uint64_t SubShardBytes(const testing::MemStore& ms, uint32_t i, uint32_t j) {
  auto ss = ms.store->LoadSubShard(i, j);
  NX_CHECK(ss.ok());
  return ss->MemoryBytes();
}

TEST(SubShardCacheTest, EvictableCacheEvictsLeastRecentlyUsed) {
  EdgeList edges = testing::RandomGraph(100, 2000, 14);
  auto ms = testing::BuildMemStore(edges, 2);
  uint64_t total = 0;
  for (uint32_t i = 0; i < 2; ++i)
    for (uint32_t j = 0; j < 2; ++j) total += SubShardBytes(ms, i, j);
  // One byte short of everything: caching the fourth sub-shard must evict
  // exactly the least-recently-used one.
  SubShardCache cache(ms.store, total - 1, /*evictable=*/true);
  ASSERT_TRUE(cache.Get(0, 0).ok());
  ASSERT_TRUE(cache.Get(0, 1).ok());
  ASSERT_TRUE(cache.Get(1, 0).ok());
  ASSERT_TRUE(cache.Get(1, 1).ok());
  EXPECT_FALSE(cache.Contains(0, 0));  // LRU victim
  EXPECT_TRUE(cache.Contains(0, 1));
  EXPECT_TRUE(cache.Contains(1, 0));
  EXPECT_TRUE(cache.Contains(1, 1));
  const SubShardCache::Counters c = cache.counters();
  EXPECT_EQ(c.evictions, 1u);
  EXPECT_EQ(c.evicted_bytes, SubShardBytes(ms, 0, 0));
  EXPECT_EQ(cache.bytes_cached(), c.inserted_bytes - c.evicted_bytes);

  // A hit refreshes recency: touch (0, 1), then force another eviction —
  // the victim must now be (1, 0), not the freshly-touched entry.
  ASSERT_TRUE(cache.Get(0, 1).ok());
  ASSERT_TRUE(cache.Get(0, 0).ok());
  EXPECT_TRUE(cache.Contains(0, 1));
  EXPECT_FALSE(cache.Contains(1, 0));
}

TEST(SubShardCacheTest, PinnedEntriesCannotBeEvicted) {
  EdgeList edges = testing::RandomGraph(100, 2000, 15);
  auto ms = testing::BuildMemStore(edges, 2);
  uint64_t total = 0;
  for (uint32_t i = 0; i < 2; ++i)
    for (uint32_t j = 0; j < 2; ++j) total += SubShardBytes(ms, i, j);
  SubShardCache cache(ms.store, total - 1, /*evictable=*/true);
  auto pin = cache.GetPinned(0, 0);
  ASSERT_TRUE(pin.ok());
  ASSERT_TRUE(pin->pinned());
  ASSERT_TRUE(cache.Get(0, 1).ok());
  ASSERT_TRUE(cache.Get(1, 0).ok());
  // (0, 0) is the LRU entry but holds a pin: eviction must pass over it
  // and take (0, 1) instead.
  ASSERT_TRUE(cache.Get(1, 1).ok());
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_FALSE(cache.Contains(0, 1));
  // Clear also skips pinned entries...
  cache.Clear();
  EXPECT_TRUE(cache.Contains(0, 0));
  EXPECT_EQ(cache.bytes_cached(), SubShardBytes(ms, 0, 0));
  // ...until the pin is released.
  pin.value().Release();
  cache.Clear();
  EXPECT_FALSE(cache.Contains(0, 0));
  EXPECT_EQ(cache.bytes_cached(), 0u);
}

TEST(SubShardCacheTest, CountersTrackHitsMissesAndBytes) {
  EdgeList edges = testing::RandomGraph(100, 2000, 16);
  auto ms = testing::BuildMemStore(edges, 2);
  SubShardCache cache(ms.store, UINT64_MAX, /*evictable=*/true);
  ASSERT_TRUE(cache.Get(0, 0).ok());        // miss
  ASSERT_TRUE(cache.Get(0, 0).ok());        // hit
  ASSERT_TRUE(cache.GetPinned(0, 1).ok());  // miss
  ASSERT_TRUE(cache.GetPinned(0, 1).ok());  // hit
  const SubShardCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits, 2u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.evictions, 0u);
  EXPECT_EQ(c.inserted_bytes, cache.bytes_cached());
  EXPECT_EQ(cache.bytes_cached(),
            SubShardBytes(ms, 0, 0) + SubShardBytes(ms, 0, 1));
}

// The serving regime: many threads pulling pinned sub-shards through one
// under-budgeted evictable cache. Every returned pin must carry valid data
// regardless of concurrent eviction, and the counters must balance. Run
// under TSan in CI's serving job.
TEST(SubShardCacheTest, ConcurrentPinnedAccessUnderEviction) {
  EdgeList edges = testing::RandomGraph(200, 4000, 17);
  auto ms = testing::BuildMemStore(edges, 4);
  uint64_t total = 0;
  for (uint32_t i = 0; i < 4; ++i)
    for (uint32_t j = 0; j < 4; ++j) total += SubShardBytes(ms, i, j);
  // Roughly a quarter of the working set fits: constant eviction pressure.
  SubShardCache cache(ms.store, total / 4, /*evictable=*/true);
  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &failures, t] {
      uint32_t state = 0x9e3779b9u * static_cast<uint32_t>(t + 1);
      for (int n = 0; n < kIters; ++n) {
        state = state * 1664525u + 1013904223u;
        const uint32_t i = (state >> 8) % 4;
        const uint32_t j = (state >> 16) % 4;
        auto pin = cache.GetPinned(i, j);
        if (!pin.ok() || pin->subshard() == nullptr) {
          failures.fetch_add(1);
          continue;
        }
        // Touch the pinned data; eviction must never invalidate it.
        const SubShard& ss = **pin;
        if (ss.offsets.size() != ss.dsts.size() + 1) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  const SubShardCache::Counters c = cache.counters();
  EXPECT_EQ(c.hits + c.misses,
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_EQ(cache.bytes_cached(), c.inserted_bytes - c.evicted_bytes);
  EXPECT_LE(cache.bytes_cached(), total / 4);
}

TEST(GraphStoreTest, PerBlobVerifyMaskControlsChecksums) {
  EdgeList edges = testing::RandomGraph(80, 1200, 12);
  auto ms = testing::BuildMemStore(edges, 2);
  // Corrupt the second blob of row 0 (flip a byte inside its range).
  std::string data;
  ASSERT_TRUE(ReadFileToString(ms.env.get(), "g/subshards.nxs", &data).ok());
  const auto& meta = ms.store->manifest().subshard(0, 1, false);
  ASSERT_GT(meta.size, 12u);
  data[meta.offset + meta.size / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(ms.env.get(), "g/subshards.nxs", data).ok());
  auto store = GraphStore::Open(ms.env.get(), "g");
  ASSERT_TRUE(store.ok());

  // A mask that verifies only blob 0 lets the row "load" (the corruption
  // may or may not decode structurally)...
  auto lax = (*store)->LoadSubShardRow(0, 0, 2, false, {1, 0});
  // ...while a mask that verifies blob 1 must detect the corruption even
  // though blob 0 (the start of the range) is marked already-verified —
  // this is exactly the verify-once range bug.
  auto strict = (*store)->LoadSubShardRow(0, 0, 2, false, {0, 1});
  ASSERT_FALSE(strict.ok());
  EXPECT_TRUE(strict.status().IsCorruption());
  (void)lax;
}

TEST(GraphStoreTest, RawReadPlusDecodeMatchesDirectLoad) {
  EdgeList edges = testing::RandomGraph(90, 1500, 13);
  auto ms = testing::BuildMemStore(edges, 3);
  auto raw = ms.store->ReadSubShardRowBytes(1, 0, 3, false);
  ASSERT_TRUE(raw.ok());
  auto split = ms.store->DecodeSubShardRow(1, 0, 3, false, {}, *raw);
  ASSERT_TRUE(split.ok());
  auto direct = ms.store->LoadSubShardRow(1, 0, 3, false, {});
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(split->size(), direct->size());
  for (size_t j = 0; j < split->size(); ++j) {
    EXPECT_EQ((*split)[j].dsts, (*direct)[j].dsts);
    EXPECT_EQ((*split)[j].srcs, (*direct)[j].srcs);
    EXPECT_EQ((*split)[j].offsets, (*direct)[j].offsets);
  }
}

TEST(GraphStoreTest, MixedFormatStoreLoadsPerBlobMagic) {
  // A store whose shard file mixes NXS1 and NXS2 blobs must load: decode
  // dispatches on each blob's own magic, the manifest records per-blob
  // format and sizes. This is exactly the compatibility contract that lets
  // old NXS1 stores keep working next to new NXS2 ones.
  EdgeList edges = testing::RandomGraph(120, 1600, 17);
  auto ms = [&edges] {
    testing::MemStore m;
    m.env = NewMemEnv();
    BuildOptions options;
    options.num_intervals = 3;
    options.build_transpose = false;
    options.subshard_format = SubShardFormat::kNxs1;
    options.env = m.env.get();
    auto store = BuildGraphStore(edges, "g", options);
    NX_CHECK(store.ok());
    m.store = *store;
    return m;
  }();

  // Reference decode of every blob from the pure-NXS1 store.
  auto reference = ms.store->LoadSubShardRow(1, 0, 3, false, {});
  ASSERT_TRUE(reference.ok());

  // Rewrite the shard file re-encoding every second blob as NXS2, patching
  // offsets/sizes/formats in the manifest.
  std::string old_bytes;
  ASSERT_TRUE(
      ReadFileToString(ms.env.get(), "g/subshards.nxs", &old_bytes).ok());
  Manifest m = ms.store->manifest();
  std::string new_bytes;
  int blob_index = 0;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      SubShardMeta& meta = m.subshards[i * 3 + j];
      std::string blob = old_bytes.substr(meta.offset, meta.size);
      if (blob_index++ % 2 == 1) {
        auto decoded = SubShard::Decode(blob.data(), blob.size(), i, j);
        ASSERT_TRUE(decoded.ok());
        blob = decoded->Encode(SubShardFormat::kNxs2);
        meta.format = SubShardFormat::kNxs2;
      }
      meta.offset = new_bytes.size();
      meta.size = blob.size();
      new_bytes += blob;
    }
  }
  ASSERT_TRUE(
      WriteStringToFile(ms.env.get(), "g/subshards.nxs", new_bytes).ok());
  ASSERT_TRUE(WriteManifest(ms.env.get(), "g", m).ok());

  auto mixed = GraphStore::Open(ms.env.get(), "g");
  ASSERT_TRUE(mixed.ok());
  auto row = (*mixed)->LoadSubShardRow(1, 0, 3, false, {});
  ASSERT_TRUE(row.ok()) << row.status().ToString();
  ASSERT_EQ(row->size(), reference->size());
  for (size_t j = 0; j < row->size(); ++j) {
    EXPECT_EQ((*row)[j].dsts, (*reference)[j].dsts);
    EXPECT_EQ((*row)[j].offsets, (*reference)[j].offsets);
    EXPECT_EQ((*row)[j].srcs, (*reference)[j].srcs);
  }
  // Single loads and the raw-read/decode split agree as well.
  for (uint32_t i = 0; i < 3; ++i) {
    auto raw = (*mixed)->ReadSubShardRowBytes(i, 0, 3, false);
    ASSERT_TRUE(raw.ok());
    auto split = (*mixed)->DecodeSubShardRow(i, 0, 3, false, {}, *raw);
    ASSERT_TRUE(split.ok());
    for (uint32_t j = 0; j < 3; ++j) {
      auto one = (*mixed)->LoadSubShard(i, j);
      ASSERT_TRUE(one.ok());
      EXPECT_EQ(one->srcs, (*split)[j].srcs);
      EXPECT_EQ(one->dsts, (*split)[j].dsts);
    }
  }
}

TEST(GraphStoreTest, TotalSubShardBytesMatchesMetas) {
  EdgeList edges = testing::RandomGraph(90, 900, 10);
  auto ms = testing::BuildMemStore(edges, 3);
  uint64_t sum = 0;
  const auto& m = ms.store->manifest();
  for (const auto& meta : m.subshards) sum += meta.size;
  EXPECT_EQ(ms.store->TotalSubShardBytes(false), sum);
  auto size = ms.env->GetFileSize("g/subshards.nxs");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, sum);
}

}  // namespace
}  // namespace nxgraph
