#include <gtest/gtest.h>

#include "src/util/byte_size.h"
#include "src/util/crc32c.h"
#include "src/util/macros.h"
#include "src/util/random.h"
#include "src/util/result.h"
#include "src/util/serialize.h"
#include "src/util/status.h"
#include "src/util/varint.h"

namespace nxgraph {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, AllConstructorsProduceMatchingPredicates) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::OutOfMemory("x").IsOutOfMemory());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Corruption("bad bytes");
  Status t = s;
  EXPECT_TRUE(t.IsCorruption());
  EXPECT_EQ(t.message(), "bad bytes");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status FailingHelper() { return Status::Aborted("stop"); }

Status UsesReturnNotOk() {
  NX_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(MacrosTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk().IsAborted());
}

Result<int> ProducesInt() { return 5; }

Status UsesAssignOrReturn(int* out) {
  NX_ASSIGN_OR_RETURN(int v, ProducesInt());
  *out = v;
  return Status::OK();
}

TEST(MacrosTest, AssignOrReturnExtractsValue) {
  int v = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&v).ok());
  EXPECT_EQ(v, 5);
}

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  unsigned char zeros[32] = {0};
  EXPECT_EQ(crc32c::Value(zeros, sizeof(zeros)), 0x8a9136aau);
  // "123456789" standard check value.
  EXPECT_EQ(crc32c::Value("123456789", 9), 0xe3069283u);
}

TEST(Crc32cTest, ExtendMatchesWholeBuffer) {
  const std::string data = "destination sorted sub shard";
  uint32_t whole = crc32c::Value(data.data(), data.size());
  uint32_t split = crc32c::Extend(crc32c::Value(data.data(), 10),
                                  data.data() + 10, data.size() - 10);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, DetectsBitFlip) {
  std::string data(64, 'a');
  const uint32_t before = crc32c::Value(data.data(), data.size());
  data[17] ^= 1;
  EXPECT_NE(before, crc32c::Value(data.data(), data.size()));
}

TEST(ByteSizeTest, Formats) {
  EXPECT_EQ(FormatByteSize(512), "512B");
  EXPECT_EQ(FormatByteSize(1536), "1.5KiB");
  EXPECT_EQ(FormatByteSize(3ULL << 30), "3.0GiB");
}

TEST(ByteSizeTest, ParsesUnits) {
  EXPECT_EQ(*ParseByteSize("64"), 64u);
  EXPECT_EQ(*ParseByteSize("4K"), 4096u);
  EXPECT_EQ(*ParseByteSize("512MB"), 512ULL << 20);
  EXPECT_EQ(*ParseByteSize("1.5GiB"), (3ULL << 30) / 2);
  EXPECT_EQ(*ParseByteSize("2 tb"), 2ULL << 40);
}

TEST(ByteSizeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseByteSize("").ok());
  EXPECT_FALSE(ParseByteSize("lots").ok());
  EXPECT_FALSE(ParseByteSize("12XB").ok());
  EXPECT_FALSE(ParseByteSize("-5K").ok());
}

TEST(SerializeTest, FixedRoundTrip) {
  std::string buf;
  EncodeFixed<uint32_t>(&buf, 0xdeadbeefu);
  EncodeFixed<uint64_t>(&buf, 0x0123456789abcdefULL);
  EncodeFixed<double>(&buf, 2.5);
  SliceReader r(buf);
  uint32_t a = 0;
  uint64_t b = 0;
  double c = 0;
  ASSERT_TRUE(r.Read(&a));
  ASSERT_TRUE(r.Read(&b));
  ASSERT_TRUE(r.Read(&c));
  EXPECT_EQ(a, 0xdeadbeefu);
  EXPECT_EQ(b, 0x0123456789abcdefULL);
  EXPECT_EQ(c, 2.5);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(SerializeTest, UnderflowFails) {
  std::string buf;
  EncodeFixed<uint16_t>(&buf, 7);
  SliceReader r(buf);
  uint64_t big = 0;
  EXPECT_FALSE(r.Read(&big));
}

TEST(SerializeTest, StringRoundTrip) {
  std::string buf;
  EncodeString(&buf, "hello");
  EncodeString(&buf, "");
  SliceReader r(buf);
  std::string a, b;
  ASSERT_TRUE(r.ReadString(&a));
  ASSERT_TRUE(r.ReadString(&b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

TEST(RandomTest, DeterministicAcrossInstances) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, SeedsDiffer) {
  Xoshiro256 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RandomTest, DoubleInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BoundedStaysInBound) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

// ---- varint codec (src/util/varint.h) -------------------------------------

TEST(VarintTest, Roundtrip32AtBoundaries) {
  const uint32_t values[] = {0,          1,          127,        128,
                             16383,      16384,      2097151,    2097152,
                             268435455,  268435456,  UINT32_MAX, 42};
  for (uint32_t v : values) {
    std::string buf;
    PutVarint32(&buf, v);
    EXPECT_EQ(buf.size(), Varint32Size(v));
    uint32_t out = 0;
    const char* end = GetVarint32(buf.data(), buf.data() + buf.size(), &out);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, buf.data() + buf.size());
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, Roundtrip64AtBoundaries) {
  const uint64_t values[] = {0, 1, 127, 128, (1ull << 35) - 1, 1ull << 35,
                             (1ull << 63), UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    PutVarint64(&buf, v);
    uint64_t out = 0;
    const char* end = GetVarint64(buf.data(), buf.data() + buf.size(), &out);
    ASSERT_NE(end, nullptr) << v;
    EXPECT_EQ(end, buf.data() + buf.size());
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, RandomRoundtripIsBijective) {
  Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t v = static_cast<uint32_t>(rng.Next());
    std::string buf;
    PutVarint32(&buf, v);
    uint32_t out = 0;
    ASSERT_NE(GetVarint32(buf.data(), buf.data() + buf.size(), &out), nullptr);
    EXPECT_EQ(out, v);
    // Bijective: re-encoding the decoded value reproduces the bytes.
    std::string again;
    PutVarint32(&again, out);
    EXPECT_EQ(again, buf);
  }
}

TEST(VarintTest, TruncationRejected) {
  std::string buf;
  PutVarint32(&buf, 300);  // 2 bytes
  uint32_t out = 0;
  EXPECT_EQ(GetVarint32(buf.data(), buf.data() + 1, &out), nullptr);
  EXPECT_EQ(GetVarint32(buf.data(), buf.data(), &out), nullptr);
}

TEST(VarintTest, OverlongEncodingRejected) {
  // 0x80 0x00 is a non-canonical encoding of 0.
  const char overlong0[] = {'\x80', '\x00'};
  uint32_t out = 0;
  EXPECT_EQ(GetVarint32(overlong0, overlong0 + 2, &out), nullptr);
  // 0xFF 0x80 0x00: value fits 2 bytes, padded to 3.
  const char overlong1[] = {'\xFF', '\x80', '\x00'};
  EXPECT_EQ(GetVarint32(overlong1, overlong1 + 3, &out), nullptr);
  uint64_t out64 = 0;
  EXPECT_EQ(GetVarint64(overlong0, overlong0 + 2, &out64), nullptr);
}

TEST(VarintTest, OverflowRejected) {
  // 5 continuation bytes: a varint32 must terminate by byte 5.
  const char toolong[] = {'\xFF', '\xFF', '\xFF', '\xFF', '\xFF', '\x01'};
  uint32_t out = 0;
  EXPECT_EQ(GetVarint32(toolong, toolong + 6, &out), nullptr);
  // 5th byte carries payload past bit 32 (max canonical 5th byte is 0x0F).
  const char overflow[] = {'\xFF', '\xFF', '\xFF', '\xFF', '\x10'};
  EXPECT_EQ(GetVarint32(overflow, overflow + 5, &out), nullptr);
  // UINT32_MAX itself is fine.
  const char max[] = {'\xFF', '\xFF', '\xFF', '\xFF', '\x0F'};
  ASSERT_NE(GetVarint32(max, max + 5, &out), nullptr);
  EXPECT_EQ(out, UINT32_MAX);
}

TEST(VarintTest, ArrayDecodeMatchesScalar) {
  Xoshiro256 rng(7);
  std::vector<uint32_t> values(512);
  std::string buf;
  for (auto& v : values) {
    // Mix of tiny deltas (the common case) and full-width values.
    v = rng.NextBounded(8) == 0 ? static_cast<uint32_t>(rng.Next())
                                : static_cast<uint32_t>(rng.NextBounded(128));
    PutVarint32(&buf, v);
  }
  std::vector<uint32_t> out(values.size());
  const char* end = GetVarint32Array(buf.data(), buf.data() + buf.size(),
                                     out.size(), out.data());
  ASSERT_EQ(end, buf.data() + buf.size());
  EXPECT_EQ(out, values);
  // Truncated array decode fails.
  EXPECT_EQ(GetVarint32Array(buf.data(), buf.data() + buf.size() - 1,
                             out.size(), out.data()),
            nullptr);
}

}  // namespace
}  // namespace nxgraph
