// SubShard blob formats (NXS1 raw, NXS2 delta-varint): round-trips,
// invariants, cross-format equality and corruption handling, including
// randomized property sweeps and per-byte truncation robustness.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "src/storage/subshard.h"
#include "src/util/crc32c.h"
#include "src/util/random.h"
#include "src/util/serialize.h"
#include "src/util/varint.h"

namespace nxgraph {
namespace {

// Builds a structurally valid random sub-shard.
SubShard RandomSubShard(uint64_t seed, bool weighted,
                        uint32_t max_dsts = 100) {
  Xoshiro256 rng(seed);
  SubShard ss;
  ss.src_interval = 1;
  ss.dst_interval = 2;
  const uint32_t num_dsts = 1 + rng.NextBounded(max_dsts);
  VertexId dst = 1000;
  ss.offsets.push_back(0);
  for (uint32_t g = 0; g < num_dsts; ++g) {
    dst += 1 + static_cast<VertexId>(rng.NextBounded(5));
    ss.dsts.push_back(dst);
    const uint32_t degree = 1 + rng.NextBounded(8);
    VertexId src = 100;
    for (uint32_t k = 0; k < degree; ++k) {
      src += 1 + static_cast<VertexId>(rng.NextBounded(7));
      ss.srcs.push_back(src);
      if (weighted) {
        ss.weights.push_back(static_cast<float>(rng.NextDouble()) + 0.1f);
      }
    }
    ss.offsets.push_back(static_cast<uint32_t>(ss.srcs.size()));
  }
  return ss;
}

void ExpectEqual(const SubShard& a, const SubShard& b) {
  EXPECT_EQ(a.dsts, b.dsts);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.srcs, b.srcs);
  EXPECT_EQ(a.weights, b.weights);
}

// Decodes under the scalar path AND every SIMD path this CPU supports,
// asserting identical outcomes: same success/failure, same status code and
// message on rejection (a corrupt blob must surface as the same Corruption
// no matter which path decoded it), equal sub-shards on success. Returns
// the scalar outcome for the caller's own assertions.
Result<SubShard> DecodeAllPaths(const char* data, size_t size,
                                uint32_t src_interval, uint32_t dst_interval,
                                bool verify_checksum = true) {
  SubShardDecodeScratch scratch;
  auto scalar = SubShard::Decode(data, size, src_interval, dst_interval,
                                 verify_checksum, &scratch,
                                 DecodePath::kScalar);
  for (DecodePath path : {DecodePath::kSsse3, DecodePath::kAvx2}) {
    if (!DecodePathSupported(path)) continue;
    auto simd = SubShard::Decode(data, size, src_interval, dst_interval,
                                 verify_checksum, &scratch, path);
    EXPECT_EQ(simd.ok(), scalar.ok()) << DecodePathName(path);
    if (!scalar.ok() && !simd.ok()) {
      EXPECT_EQ(simd.status().code(), scalar.status().code())
          << DecodePathName(path);
      EXPECT_EQ(simd.status().message(), scalar.status().message())
          << DecodePathName(path);
    } else if (scalar.ok() && simd.ok()) {
      ExpectEqual(*scalar, *simd);
    }
  }
  return scalar;
}

// (seed, format) sweep: every roundtrip property must hold for both
// on-disk encodings.
using SeedFormat = std::tuple<int, SubShardFormat>;

class SubShardRoundTripTest : public ::testing::TestWithParam<SeedFormat> {
 protected:
  int seed() const { return std::get<0>(GetParam()); }
  SubShardFormat format() const { return std::get<1>(GetParam()); }
};

TEST_P(SubShardRoundTripTest, UnweightedRoundTrip) {
  SubShard ss = RandomSubShard(seed(), false);
  const std::string blob = ss.Encode(format());
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 1, 2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectEqual(ss, *decoded);
  EXPECT_EQ(decoded->src_interval, 1u);
  EXPECT_EQ(decoded->dst_interval, 2u);
}

TEST_P(SubShardRoundTripTest, WeightedRoundTrip) {
  SubShard ss = RandomSubShard(seed() + 1000, true);
  const std::string blob = ss.Encode(format());
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 1, 2);
  ASSERT_TRUE(decoded.ok());
  ExpectEqual(ss, *decoded);
}

TEST_P(SubShardRoundTripTest, AnyBitFlipIsDetected) {
  SubShard ss = RandomSubShard(seed() + 2000, seed() % 2 == 0);
  std::string blob = ss.Encode(format());
  Xoshiro256 rng(seed());
  // Flip several random bits (one at a time) across the blob.
  for (int trial = 0; trial < 8; ++trial) {
    const size_t byte = rng.NextBounded(blob.size());
    const char mask = static_cast<char>(1 << rng.NextBounded(8));
    blob[byte] ^= mask;
    auto decoded = DecodeAllPaths(blob.data(), blob.size(), 1, 2);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << byte << " undetected";
    blob[byte] ^= mask;  // restore
  }
}

TEST_P(SubShardRoundTripTest, EveryTruncationIsRejected) {
  // Cut the blob at EVERY byte boundary; each prefix must fail cleanly —
  // with checksum verification AND without it (the structural checks alone
  // must catch every field-boundary truncation, never read out of bounds).
  SubShard ss = RandomSubShard(seed() + 3000, seed() % 2 == 1, 12);
  const std::string blob = ss.Encode(format());
  for (size_t cut = 0; cut < blob.size(); ++cut) {
    auto strict = DecodeAllPaths(blob.data(), cut, 1, 2, true);
    EXPECT_FALSE(strict.ok()) << "cut at " << cut;
    auto lax = DecodeAllPaths(blob.data(), cut, 1, 2, false);
    EXPECT_FALSE(lax.ok()) << "cut at " << cut << " (no checksum)";
    if (cut >= 14) {
      EXPECT_TRUE(lax.status().IsCorruption()) << "cut at " << cut;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SubShardRoundTripTest,
    ::testing::Combine(::testing::Range(1, 9),
                       ::testing::Values(SubShardFormat::kNxs1,
                                         SubShardFormat::kNxs2)));

// ---- cross-format properties ----------------------------------------------

TEST(SubShardFormatTest, FormatsDecodeToIdenticalSubShards) {
  for (int seed = 1; seed <= 16; ++seed) {
    SubShard ss = RandomSubShard(seed, seed % 3 == 0);
    const std::string v1 = ss.Encode(SubShardFormat::kNxs1);
    const std::string v2 = ss.Encode(SubShardFormat::kNxs2);
    ASSERT_NE(v1, v2);
    auto d1 = SubShard::Decode(v1.data(), v1.size(), 3, 4);
    auto d2 = SubShard::Decode(v2.data(), v2.size(), 3, 4);
    ASSERT_TRUE(d1.ok());
    ASSERT_TRUE(d2.ok());
    ExpectEqual(*d1, *d2);
    EXPECT_EQ(d2->src_interval, 3u);
    EXPECT_EQ(d2->dst_interval, 4u);
  }
}

TEST(SubShardFormatTest, Nxs2IsSmallerOnClusteredIds) {
  // Dense ascending destinations with small source deltas — the shape real
  // sub-shards have after destination sorting. NXS1 pays 4 bytes per value.
  SubShard ss = RandomSubShard(42, false, 400);
  const std::string v1 = ss.Encode(SubShardFormat::kNxs1);
  const std::string v2 = ss.Encode(SubShardFormat::kNxs2);
  EXPECT_LT(v2.size() * 2, v1.size())
      << "NXS2 " << v2.size() << " vs NXS1 " << v1.size();
}

TEST(SubShardFormatTest, EmptyRoundTripBothFormats) {
  SubShard ss;
  ss.offsets.push_back(0);
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    const std::string blob = ss.Encode(f);
    auto decoded = SubShard::Decode(blob.data(), blob.size(), 0, 0);
    ASSERT_TRUE(decoded.ok()) << SubShardFormatName(f);
    EXPECT_EQ(decoded->num_dsts(), 0u);
    EXPECT_EQ(decoded->num_edges(), 0u);
    EXPECT_EQ(decoded->offsets, std::vector<uint32_t>{0});
  }
  // The NXS2 empty blob is the minimal valid blob (header + CRC).
  EXPECT_EQ(ss.Encode(SubShardFormat::kNxs2).size(), 14u);
}

TEST(SubShardFormatTest, SingleDstRoundTrip) {
  SubShard ss;
  ss.dsts = {7};
  ss.offsets = {0, 3};
  ss.srcs = {1, 1, 9};  // parallel edges: equal srcs (delta 0) are legal
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    const std::string blob = ss.Encode(f);
    auto decoded = SubShard::Decode(blob.data(), blob.size(), 0, 0);
    ASSERT_TRUE(decoded.ok()) << SubShardFormatName(f);
    ExpectEqual(ss, *decoded);
  }
}

TEST(SubShardFormatTest, MaxDeltaEdgesRoundTrip) {
  // Extreme id spans: first/last representable destination and a source
  // group spanning the whole 32-bit range (delta == UINT32_MAX - 1).
  SubShard ss;
  ss.dsts = {0, UINT32_MAX};
  ss.offsets = {0, 2, 4};
  ss.srcs = {0, UINT32_MAX - 1, 5, UINT32_MAX};
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    const std::string blob = ss.Encode(f);
    auto decoded = SubShard::Decode(blob.data(), blob.size(), 0, 0);
    ASSERT_TRUE(decoded.ok()) << SubShardFormatName(f);
    ExpectEqual(ss, *decoded);
  }
}

TEST(SubShardFormatTest, ScratchReuseDecodesRepeatedly) {
  SubShardDecodeScratch scratch;
  for (int seed = 1; seed <= 8; ++seed) {
    SubShard ss = RandomSubShard(seed, false);
    const std::string blob = ss.Encode(SubShardFormat::kNxs2);
    auto decoded =
        SubShard::Decode(blob.data(), blob.size(), 1, 2, true, &scratch);
    ASSERT_TRUE(decoded.ok());
    ExpectEqual(ss, *decoded);
  }
}

TEST(SubShardFormatTest, DefaultFormatIsNxs2UnlessOverridden) {
  // The suite may legitimately run under NXGRAPH_SUBSHARD_FORMAT=nxs1 (the
  // CI matrix); assert consistency with the environment rather than a
  // hard-coded default.
  const char* env = std::getenv("NXGRAPH_SUBSHARD_FORMAT");
  SubShardFormat expected = SubShardFormat::kNxs2;
  if (env != nullptr) (void)ParseSubShardFormat(env, &expected);
  EXPECT_EQ(DefaultSubShardFormat(), expected);
  SubShard ss = RandomSubShard(5, false);
  EXPECT_EQ(ss.Encode(), ss.Encode(expected));
}

// ---- NXS2-targeted corruption (structural checks, CRC bypassed) -----------

// Rebuilds a valid CRC over a tampered body so the structural validators —
// not the checksum — are what must reject it.
std::string Recrc(std::string blob) {
  blob.resize(blob.size() - 4);
  const uint32_t crc = crc32c::Value(blob.data(), blob.size());
  EncodeFixed<uint32_t>(&blob, crc);
  return blob;
}

TEST(SubShardFormatTest, OverlongVarintRejectedAsCorruption) {
  SubShard ss;
  ss.dsts = {3};
  ss.offsets = {0, 1};
  ss.srcs = {5};
  std::string blob = ss.Encode(SubShardFormat::kNxs2);
  // Body: magic(4) flags(4) num_dsts(1)=1 num_edges(1)=1 dst0(1)=3
  // count0(1)=1 src0(1)=5 crc(4).
  ASSERT_EQ(blob.size(), 17u);
  // Replace the 1-byte num_dsts varint with an overlong 2-byte encoding of
  // the same value (0x81 0x00 would change it; 0x80|1, 0x00 encodes 1).
  std::string tampered = blob.substr(0, 8);
  tampered += '\x81';
  tampered += '\x00';
  tampered += blob.substr(9);
  tampered = Recrc(tampered);
  auto decoded = DecodeAllPaths(tampered.data(), tampered.size(), 0, 0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(SubShardFormatTest, Nxs1HeaderCountsBeyondBlobRejected) {
  // Same hazard on the NXS1 path: a corrupt header decoded with checksum
  // verification off (the streaming reload path) must fail as Corruption
  // before any allocation, not throw from a multi-gigabyte resize.
  SubShard ss = RandomSubShard(6, false);
  std::string blob = ss.Encode(SubShardFormat::kNxs1);
  // num_edges is the u64 at body offset 12; make it absurd.
  const uint64_t absurd = 1ull << 40;
  std::memcpy(blob.data() + 12, &absurd, 8);
  auto lax = DecodeAllPaths(blob.data(), blob.size(), 0, 0, false);
  ASSERT_FALSE(lax.ok());
  EXPECT_TRUE(lax.status().IsCorruption());
  // And a corrupt num_dsts (u32 at body offset 8) likewise.
  blob = ss.Encode(SubShardFormat::kNxs1);
  const uint32_t absurd32 = 1u << 30;
  std::memcpy(blob.data() + 8, &absurd32, 4);
  lax = DecodeAllPaths(blob.data(), blob.size(), 0, 0, false);
  ASSERT_FALSE(lax.ok());
  EXPECT_TRUE(lax.status().IsCorruption());
}

TEST(SubShardFormatTest, HeaderCountsBeyondBlobRejected) {
  // num_edges claiming more values than the body has bytes must fail fast
  // (before any allocation), even with the checksum valid.
  std::string blob;
  EncodeFixed<uint32_t>(&blob, 0x3253584Eu);  // "NXS2"
  EncodeFixed<uint32_t>(&blob, 0);            // flags
  PutVarint32(&blob, 1);                      // num_dsts
  PutVarint64(&blob, 1ull << 40);             // absurd num_edges
  EncodeFixed<uint32_t>(&blob, crc32c::Value(blob.data(), blob.size()));
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 0, 0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(SubShardFormatTest, CountEdgeMismatchRejected) {
  SubShard ss;
  ss.dsts = {3};
  ss.offsets = {0, 1};
  ss.srcs = {5};
  std::string blob = ss.Encode(SubShardFormat::kNxs2);
  // Bump the per-destination count varint (body offset 11) from 1 to 2:
  // the counts now sum to 2 while the header claims 1 edge.
  blob[11] = 2;
  blob = Recrc(blob);
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 0, 0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(SubShardFormatTest, DstOverflowRejected) {
  // Two destinations whose deltas sum past UINT32_MAX.
  std::string blob;
  EncodeFixed<uint32_t>(&blob, 0x3253584Eu);
  EncodeFixed<uint32_t>(&blob, 0);
  PutVarint32(&blob, 2);           // num_dsts
  PutVarint64(&blob, 0);           // num_edges
  PutVarint32(&blob, UINT32_MAX);  // dst[0]
  PutVarint32(&blob, 0);           // delta-1 == 0 => dst[1] wraps
  PutVarint32(&blob, 0);           // count[0]
  PutVarint32(&blob, 0);           // count[1]
  EncodeFixed<uint32_t>(&blob, crc32c::Value(blob.data(), blob.size()));
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 0, 0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(SubShardFormatTest, SrcOverflowRejected) {
  std::string blob;
  EncodeFixed<uint32_t>(&blob, 0x3253584Eu);
  EncodeFixed<uint32_t>(&blob, 0);
  PutVarint32(&blob, 1);           // num_dsts
  PutVarint64(&blob, 2);           // num_edges
  PutVarint32(&blob, 0);           // dst[0]
  PutVarint32(&blob, 2);           // count[0]
  PutVarint32(&blob, UINT32_MAX);  // src[0]
  PutVarint32(&blob, 1);           // delta => wraps past UINT32_MAX
  EncodeFixed<uint32_t>(&blob, crc32c::Value(blob.data(), blob.size()));
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 0, 0);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(SubShardFormatTest, UnknownMagicRejected) {
  SubShard ss = RandomSubShard(3, false);
  std::string blob = ss.Encode(SubShardFormat::kNxs2);
  blob[3] = '3';  // "NXS3"
  blob = Recrc(blob);
  auto decoded = DecodeAllPaths(blob.data(), blob.size(), 1, 2);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

// ---- format-independent behavior -------------------------------------------

TEST(SubShardTest, SkipChecksumStillValidatesStructure) {
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    SubShard ss = RandomSubShard(7, false);
    std::string blob = ss.Encode(f);
    // Corrupt the CRC only: verify=false must still decode.
    blob[blob.size() - 1] ^= 0xFF;
    auto lax = DecodeAllPaths(blob.data(), blob.size(), 1, 2, false);
    ASSERT_TRUE(lax.ok()) << SubShardFormatName(f);
    auto strict = DecodeAllPaths(blob.data(), blob.size(), 1, 2, true);
    EXPECT_FALSE(strict.ok()) << SubShardFormatName(f);
    // Truncation is caught even without checksum verification.
    auto truncated =
        DecodeAllPaths(blob.data(), blob.size() / 2, 1, 2, false);
    EXPECT_FALSE(truncated.ok()) << SubShardFormatName(f);
  }
}

TEST(SubShardTest, TrailingGarbageDetected) {
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    SubShard ss = RandomSubShard(9, false);
    std::string blob = ss.Encode(f);
    blob.insert(blob.size() - 4, "JUNK");
    // CRC mismatch catches it verified; the trailing-bytes check catches
    // it unverified.
    EXPECT_FALSE(DecodeAllPaths(blob.data(), blob.size(), 1, 2).ok());
    blob = Recrc(blob);
    auto decoded = DecodeAllPaths(blob.data(), blob.size(), 1, 2);
    EXPECT_FALSE(decoded.ok()) << SubShardFormatName(f);
  }
}

TEST(SubShardTest, LowerBoundDst) {
  SubShard ss;
  ss.dsts = {10, 20, 30};
  ss.offsets = {0, 1, 2, 3};
  ss.srcs = {1, 2, 3};
  EXPECT_EQ(ss.LowerBoundDst(0), 0u);
  EXPECT_EQ(ss.LowerBoundDst(10), 0u);
  EXPECT_EQ(ss.LowerBoundDst(11), 1u);
  EXPECT_EQ(ss.LowerBoundDst(20), 1u);
  EXPECT_EQ(ss.LowerBoundDst(30), 2u);
  EXPECT_EQ(ss.LowerBoundDst(31), 3u);
}

TEST(SubShardTest, MemoryBytesTracksContent) {
  SubShard small = RandomSubShard(11, false, 10);
  SubShard large = RandomSubShard(11, false, 90);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(small.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace nxgraph
