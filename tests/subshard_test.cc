// SubShard blob format: round-trips, invariants and corruption handling,
// including randomized property sweeps.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/storage/subshard.h"
#include "src/util/random.h"

namespace nxgraph {
namespace {

// Builds a structurally valid random sub-shard.
SubShard RandomSubShard(uint64_t seed, bool weighted,
                        uint32_t max_dsts = 100) {
  Xoshiro256 rng(seed);
  SubShard ss;
  ss.src_interval = 1;
  ss.dst_interval = 2;
  const uint32_t num_dsts = 1 + rng.NextBounded(max_dsts);
  VertexId dst = 1000;
  ss.offsets.push_back(0);
  for (uint32_t g = 0; g < num_dsts; ++g) {
    dst += 1 + static_cast<VertexId>(rng.NextBounded(5));
    ss.dsts.push_back(dst);
    const uint32_t degree = 1 + rng.NextBounded(8);
    VertexId src = 100;
    for (uint32_t k = 0; k < degree; ++k) {
      src += 1 + static_cast<VertexId>(rng.NextBounded(7));
      ss.srcs.push_back(src);
      if (weighted) {
        ss.weights.push_back(static_cast<float>(rng.NextDouble()) + 0.1f);
      }
    }
    ss.offsets.push_back(static_cast<uint32_t>(ss.srcs.size()));
  }
  return ss;
}

void ExpectEqual(const SubShard& a, const SubShard& b) {
  EXPECT_EQ(a.dsts, b.dsts);
  EXPECT_EQ(a.offsets, b.offsets);
  EXPECT_EQ(a.srcs, b.srcs);
  EXPECT_EQ(a.weights, b.weights);
}

class SubShardRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SubShardRoundTripTest, UnweightedRoundTrip) {
  SubShard ss = RandomSubShard(GetParam(), false);
  const std::string blob = ss.Encode();
  auto decoded = SubShard::Decode(blob.data(), blob.size(), 1, 2);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectEqual(ss, *decoded);
  EXPECT_EQ(decoded->src_interval, 1u);
  EXPECT_EQ(decoded->dst_interval, 2u);
}

TEST_P(SubShardRoundTripTest, WeightedRoundTrip) {
  SubShard ss = RandomSubShard(GetParam() + 1000, true);
  const std::string blob = ss.Encode();
  auto decoded = SubShard::Decode(blob.data(), blob.size(), 1, 2);
  ASSERT_TRUE(decoded.ok());
  ExpectEqual(ss, *decoded);
}

TEST_P(SubShardRoundTripTest, AnyBitFlipIsDetected) {
  SubShard ss = RandomSubShard(GetParam() + 2000, GetParam() % 2 == 0);
  std::string blob = ss.Encode();
  Xoshiro256 rng(GetParam());
  // Flip several random bits (one at a time) across the blob.
  for (int trial = 0; trial < 8; ++trial) {
    const size_t byte = rng.NextBounded(blob.size());
    const char mask = static_cast<char>(1 << rng.NextBounded(8));
    blob[byte] ^= mask;
    auto decoded = SubShard::Decode(blob.data(), blob.size(), 1, 2);
    EXPECT_FALSE(decoded.ok()) << "flip at byte " << byte << " undetected";
    blob[byte] ^= mask;  // restore
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubShardRoundTripTest,
                         ::testing::Range(1, 9));

TEST(SubShardTest, EmptyRoundTrip) {
  SubShard ss;
  ss.offsets.push_back(0);
  const std::string blob = ss.Encode();
  auto decoded = SubShard::Decode(blob.data(), blob.size(), 0, 0);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_dsts(), 0u);
  EXPECT_EQ(decoded->num_edges(), 0u);
}

TEST(SubShardTest, SkipChecksumStillValidatesStructure) {
  SubShard ss = RandomSubShard(7, false);
  std::string blob = ss.Encode();
  // Corrupt the CRC only: verify=false must still decode.
  blob[blob.size() - 1] ^= 0xFF;
  auto lax = SubShard::Decode(blob.data(), blob.size(), 1, 2, false);
  ASSERT_TRUE(lax.ok());
  auto strict = SubShard::Decode(blob.data(), blob.size(), 1, 2, true);
  EXPECT_FALSE(strict.ok());
  // Truncation is caught even without checksum verification.
  auto truncated =
      SubShard::Decode(blob.data(), blob.size() / 2, 1, 2, false);
  EXPECT_FALSE(truncated.ok());
}

TEST(SubShardTest, TrailingGarbageDetected) {
  SubShard ss = RandomSubShard(9, false);
  std::string blob = ss.Encode();
  blob.insert(blob.size() - 4, "JUNK");  // keep CRC position at end wrong
  auto decoded = SubShard::Decode(blob.data(), blob.size(), 1, 2);
  EXPECT_FALSE(decoded.ok());
}

TEST(SubShardTest, LowerBoundDst) {
  SubShard ss;
  ss.dsts = {10, 20, 30};
  ss.offsets = {0, 1, 2, 3};
  ss.srcs = {1, 2, 3};
  EXPECT_EQ(ss.LowerBoundDst(0), 0u);
  EXPECT_EQ(ss.LowerBoundDst(10), 0u);
  EXPECT_EQ(ss.LowerBoundDst(11), 1u);
  EXPECT_EQ(ss.LowerBoundDst(20), 1u);
  EXPECT_EQ(ss.LowerBoundDst(30), 2u);
  EXPECT_EQ(ss.LowerBoundDst(31), 3u);
}

TEST(SubShardTest, MemoryBytesTracksContent) {
  SubShard small = RandomSubShard(11, false, 10);
  SubShard large = RandomSubShard(11, false, 90);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
  EXPECT_GT(small.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace nxgraph
