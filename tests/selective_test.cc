// Selective scheduling: per-blob source summaries (manifest v3) must skip
// inactive sub-shards end-to-end — engine phases and server query planning
// — while keeping every result bit-identical to a summaries-off run.
// Also covers the topology-only fingerprint (checkpoints survive a
// manifest version bump) and the PlanRound budget edge cases.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/algos/programs.h"
#include "src/engine/engine.h"
#include "src/prep/manifest.h"
#include "src/prep/source_summary.h"
#include "src/server/graph_server.h"
#include "src/util/crc32c.h"
#include "src/util/serialize.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

// ---- Summary primitives --------------------------------------------------

TEST(SourceSummaryTest, LayoutSelectsBitmapOrBloom) {
  SummaryParams params;  // defaults: bitmap <= 4096 bits, bloom 512 bits
  const SummaryLayout small = MakeSummaryLayout(params, 100, 4096);
  EXPECT_EQ(small.kind, SummaryKind::kBitmap);
  EXPECT_EQ(small.base, 100u);
  EXPECT_EQ(small.bits, 4096u);
  EXPECT_EQ(small.words(), 64u);

  const SummaryLayout big = MakeSummaryLayout(params, 0, 4097);
  EXPECT_EQ(big.kind, SummaryKind::kBloom);
  EXPECT_EQ(big.bits, 512u);

  const SummaryLayout off = MakeSummaryLayout(SummaryParams{0, 0}, 0, 1000);
  EXPECT_EQ(off.kind, SummaryKind::kNone);
}

TEST(SourceSummaryTest, BitmapIsExact) {
  const SummaryLayout layout = MakeSummaryLayout(SummaryParams{}, 50, 200);
  ASSERT_EQ(layout.kind, SummaryKind::kBitmap);
  std::vector<uint64_t> summary(layout.words(), 0);
  for (VertexId v : {50u, 77u, 249u}) {
    SummaryAddVertex(layout, v, summary.data());
  }
  FrontierFilter f;
  f.layout = layout;
  for (VertexId v = 50; v < 250; ++v) {
    f.ResetToEmpty();
    f.Add(v);
    const bool expect = v == 50 || v == 77 || v == 249;
    EXPECT_EQ(f.MayIntersect(summary), expect) << "v=" << v;
  }
}

TEST(SourceSummaryTest, BloomHasNoFalseNegatives) {
  const SummaryLayout layout = MakeSummaryLayout(SummaryParams{16, 512}, 0, 10000);
  ASSERT_EQ(layout.kind, SummaryKind::kBloom);
  std::vector<uint64_t> summary(layout.words(), 0);
  for (VertexId v = 0; v < 10000; v += 97) {
    SummaryAddVertex(layout, v, summary.data());
  }
  FrontierFilter f;
  f.layout = layout;
  for (VertexId v = 0; v < 10000; v += 97) {
    f.ResetToEmpty();
    f.Add(v);
    EXPECT_TRUE(f.MayIntersect(summary)) << "v=" << v;
  }
}

TEST(SourceSummaryTest, FilterConservativeCases) {
  const SummaryLayout layout = MakeSummaryLayout(SummaryParams{}, 0, 64);
  FrontierFilter f;
  f.layout = layout;
  f.ResetToAll();
  EXPECT_TRUE(f.MayIntersect({}));  // all-pass intersects anything
  f.ResetToEmpty();
  f.Add(3);
  EXPECT_TRUE(f.MayIntersect({}));  // absent summary: conservative
  std::vector<uint64_t> summary(1, 0);
  EXPECT_FALSE(f.MayIntersect(summary));  // present and disjoint: skip
  SummaryAddVertex(layout, 3, summary.data());
  EXPECT_TRUE(f.MayIntersect(summary));
}

// ---- Manifest v3 persistence and compat ----------------------------------

Manifest SampleManifest() {
  Manifest m;
  m.num_vertices = 64;
  m.num_edges = 3;
  m.num_intervals = 2;
  m.has_transpose = false;
  m.summary_bitmap_max_bits = 4096;
  m.summary_bloom_bits = 512;
  m.interval_offsets = {0, 32, 64};
  m.subshards.resize(4);
  SubShardMeta& s = m.subshards[1];  // SS_{0.1}
  s.offset = 0;
  s.size = 40;
  s.num_edges = 3;
  s.num_dsts = 2;
  const SummaryLayout layout = m.summary_layout(0);
  s.summary_kind = layout.kind;
  s.summary.assign(layout.words(), 0);
  SummaryAddVertex(layout, 5, s.summary.data());
  SummaryAddVertex(layout, 17, s.summary.data());
  m.BuildColumnIndex();
  return m;
}

TEST(ManifestV3Test, SummariesSurviveEncodeDecode) {
  const Manifest m = SampleManifest();
  auto decoded = Manifest::Decode(m.Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->summary_bitmap_max_bits, 4096u);
  EXPECT_EQ(decoded->summary_bloom_bits, 512u);
  EXPECT_TRUE(decoded->has_summaries());
  const SubShardMeta& s = decoded->subshard(0, 1);
  EXPECT_EQ(s.summary_kind, SummaryKind::kBitmap);
  EXPECT_EQ(s.summary, m.subshard(0, 1).summary);
  EXPECT_EQ(decoded->TotalSummaryBytes(), m.TotalSummaryBytes());
}

// Encodes `m` in the version-1 or version-2 layout (no summary params, no
// per-entry summaries; v1 additionally has no per-entry format byte) — the
// bytes an older release would have written.
std::string EncodeOldManifest(const Manifest& m, uint32_t version) {
  std::string out;
  EncodeFixed<uint32_t>(&out, kManifestMagic);
  EncodeFixed<uint32_t>(&out, version);
  EncodeFixed<uint64_t>(&out, m.num_vertices);
  EncodeFixed<uint64_t>(&out, m.num_edges);
  EncodeFixed<uint32_t>(&out, m.num_intervals);
  EncodeFixed<uint8_t>(&out, m.weighted ? 1 : 0);
  EncodeFixed<uint8_t>(&out, m.has_transpose ? 1 : 0);
  EncodeFixed<uint64_t>(&out, m.interval_offsets.size());
  for (VertexId v : m.interval_offsets) EncodeFixed<uint32_t>(&out, v);
  for (const auto* table : {&m.subshards, &m.subshards_transpose}) {
    EncodeFixed<uint64_t>(&out, table->size());
    for (const auto& s : *table) {
      EncodeFixed<uint64_t>(&out, s.offset);
      EncodeFixed<uint64_t>(&out, s.size);
      EncodeFixed<uint64_t>(&out, s.num_edges);
      EncodeFixed<uint32_t>(&out, s.num_dsts);
      if (version >= 2) {
        EncodeFixed<uint8_t>(&out, static_cast<uint8_t>(s.format));
      }
    }
  }
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));
  return out;
}

TEST(ManifestV3Test, OlderVersionsDecodeWithSummariesAbsent) {
  const Manifest m = SampleManifest();
  for (uint32_t version : {1u, 2u}) {
    auto decoded = Manifest::Decode(EncodeOldManifest(m, version));
    ASSERT_TRUE(decoded.ok()) << "v" << version << ": "
                              << decoded.status().ToString();
    EXPECT_FALSE(decoded->has_summaries()) << "v" << version;
    EXPECT_EQ(decoded->subshard(0, 1).summary_kind, SummaryKind::kNone);
    EXPECT_TRUE(decoded->subshard(0, 1).summary.empty());
    EXPECT_EQ(decoded->subshard(0, 1).num_edges, 3u);
    // v1 entries imply NXS1; v2 carries the recorded format.
    EXPECT_EQ(decoded->subshard(0, 1).format,
              version == 1 ? SubShardFormat::kNxs1 : m.subshard(0, 1).format);
  }
}

TEST(ManifestV3Test, FingerprintIsTopologyOnly) {
  const Manifest m = SampleManifest();
  const uint64_t fp = m.Fingerprint();

  // Byte-layout churn a re-encode can cause must not move the fingerprint.
  Manifest relayout = SampleManifest();
  relayout.subshards[1].offset = 999;
  relayout.subshards[1].size = 7;
  relayout.subshards[1].format = SubShardFormat::kNxs2;
  relayout.subshards[1].summary_kind = SummaryKind::kNone;
  relayout.subshards[1].summary.clear();
  relayout.summary_bitmap_max_bits = 0;
  relayout.summary_bloom_bits = 0;
  EXPECT_EQ(relayout.Fingerprint(), fp);

  // A v2 round-trip of the same store keeps its identity.
  auto v2 = Manifest::Decode(EncodeOldManifest(m, 2));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->Fingerprint(), fp);

  // Topology changes must move it.
  Manifest other_topology = SampleManifest();
  other_topology.subshards[1].num_edges = 4;
  EXPECT_NE(other_topology.Fingerprint(), fp);
}

TEST(ManifestV3Test, NonEmptyColumnsIndexMatchesTable) {
  Manifest m = SampleManifest();
  ASSERT_NE(m.NonEmptyColumns(0), nullptr);
  EXPECT_EQ(*m.NonEmptyColumns(0), std::vector<uint32_t>{1});
  EXPECT_TRUE(m.NonEmptyColumns(1)->empty());
  // No transpose table: the index is absent and callers fall back to scans.
  EXPECT_EQ(m.NonEmptyColumns(0, /*transpose=*/true), nullptr);
}

// ---- Shared selective-scheduling graph -----------------------------------

// One chain vertex per interval (the interval's first id) linked interval
// to interval, plus background vertices with random out-edges that make
// most (i, j) blobs non-empty yet stay unreachable from the chain. A
// frontier traversal from the chain head activates one interval per round
// with exactly one changed source in it, so summary-aware planning keeps
// ~1 blob per round while summary-blind planning reads the whole row.
EdgeList ChainWithBackground(uint32_t p, uint32_t interval_size,
                             uint64_t seed, bool weighted) {
  const uint64_t n = static_cast<uint64_t>(p) * interval_size;
  EdgeList edges;
  auto add = [&](VertexIndex src, VertexIndex dst, float w) {
    if (weighted) {
      edges.AddWeighted(src, dst, w);
    } else {
      edges.Add(src, dst);
    }
  };
  for (uint32_t i = 0; i + 1 < p; ++i) {
    add(i * interval_size, (i + 1) * interval_size, 1.0f + 0.25f * i);
  }
  Xoshiro256 rng(seed);
  for (uint64_t v = 0; v < n; ++v) {
    if (v % interval_size == 0) continue;  // chain ids get no other edges
    for (int e = 0; e < 4; ++e) {
      uint64_t dst = rng.NextBounded(n);
      if (dst % interval_size == 0) ++dst;  // never target a chain vertex
      if (dst >= n) dst = 1;
      add(v, dst, 0.5f + 0.1f * e);
    }
  }
  return edges;
}

// ---- Engine parity matrix (satellite: tail-iteration parity) -------------

struct SelectiveConfig {
  UpdateStrategy strategy;
  uint64_t memory_budget;
  SubShardFormat format;
  const char* name;
  bool counts_skips;  // strategy streams from disk, so PlanBlob runs
};

std::vector<SelectiveConfig> SelectiveConfigs() {
  return {
      // Unlimited-budget SPU pins everything decoded: no disk reads after
      // warm-up, so only value parity is asserted.
      {UpdateStrategy::kSinglePhase, 0, SubShardFormat::kNxs1, "SPU/NXS1",
       false},
      {UpdateStrategy::kSinglePhase, 0, SubShardFormat::kNxs2, "SPU/NXS2",
       false},
      {UpdateStrategy::kDoublePhase, 0, SubShardFormat::kNxs1, "DPU/NXS1",
       true},
      {UpdateStrategy::kDoublePhase, 0, SubShardFormat::kNxs2, "DPU/NXS2",
       true},
      {UpdateStrategy::kMixedPhase, 16 << 10, SubShardFormat::kNxs1,
       "MPU/NXS1", true},
      {UpdateStrategy::kMixedPhase, 16 << 10, SubShardFormat::kNxs2,
       "MPU/NXS2", true},
  };
}

template <typename Program>
void ExpectEngineParity(const testing::MemStore& ms, Program program,
                        EdgeDirection direction) {
  for (const SelectiveConfig& cfg : SelectiveConfigs()) {
    RunOptions base;
    base.strategy = cfg.strategy;
    base.memory_budget_bytes = cfg.memory_budget;
    base.direction = direction;
    base.num_threads = 2;

    RunOptions off = base;
    off.selective_scheduling = false;
    Engine<Program> engine_off(ms.store, program, off);
    auto stats_off = engine_off.Run();
    ASSERT_TRUE(stats_off.ok()) << cfg.name << ": "
                                << stats_off.status().ToString();
    EXPECT_EQ(stats_off->subshards_skipped, 0u) << cfg.name;

    RunOptions on = base;
    on.selective_scheduling = true;
    Engine<Program> engine_on(ms.store, program, on);
    auto stats_on = engine_on.Run();
    ASSERT_TRUE(stats_on.ok()) << cfg.name;

    // Bit-identical values, same round count.
    EXPECT_EQ(engine_on.values(), engine_off.values()) << cfg.name;
    EXPECT_EQ(stats_on->iterations, stats_off->iterations) << cfg.name;

    if (!cfg.counts_skips) continue;
    EXPECT_GT(stats_on->subshards_skipped, 0u) << cfg.name;
    EXPECT_GT(stats_on->summary_bytes, 0u) << cfg.name;
    EXPECT_GT(stats_on->model_bytes_per_iteration, 0u) << cfg.name;
    // The frontier shrinks to one vertex per round: in the last round that
    // planned any stream I/O the planner must drop more blobs than it
    // reads. (The final recorded round can be the empty convergence check
    // with no planning at all, so scan back to the newest active one.)
    const auto& proc = stats_on->iteration_subshards_processed;
    const auto& skip = stats_on->iteration_subshards_skipped;
    ASSERT_EQ(proc.size(), skip.size()) << cfg.name;
    int tail = -1;
    for (int k = static_cast<int>(proc.size()) - 1; k >= 0; --k) {
      if (proc[k] + skip[k] > 0) {
        tail = k;
        break;
      }
    }
    ASSERT_GE(tail, 0) << cfg.name;
    EXPECT_GT(skip[tail], proc[tail]) << cfg.name;
    // Selective never reads MORE than the summary-blind plan.
    EXPECT_LE(stats_on->bytes_read, stats_off->bytes_read) << cfg.name;
  }
}

TEST(EngineSelectiveTest, BfsLongChainParity) {
  EdgeList edges = ChainWithBackground(16, 64, 101, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 16, /*transpose=*/false);
  ASSERT_TRUE(ms.store->manifest().has_summaries());
  BfsProgram program;
  program.root = 0;
  ExpectEngineParity(ms, program, EdgeDirection::kForward);
}

TEST(EngineSelectiveTest, SsspLongChainParity) {
  EdgeList edges = ChainWithBackground(16, 64, 102, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, 16, /*transpose=*/false);
  SsspProgram program;
  program.root = 0;
  ExpectEngineParity(ms, program, EdgeDirection::kForward);
}

TEST(EngineSelectiveTest, WccDisconnectedParity) {
  // Chain and background form disjoint components; after the background
  // settles in a few rounds, only the chain wavefront stays active.
  EdgeList edges = ChainWithBackground(16, 64, 103, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 16, /*transpose=*/true);
  ExpectEngineParity(ms, WccProgram{}, EdgeDirection::kBoth);
}

TEST(EngineSelectiveTest, PageRankNeverSkips) {
  // Not monotone-skippable: the selective flag must be inert.
  EdgeList edges = ChainWithBackground(8, 32, 104, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 8, /*transpose=*/false);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.selective_scheduling = true;
  opt.max_iterations = 3;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->subshards_skipped, 0u);
}

TEST(EngineSelectiveTest, SummaryFreeStoreRunsConservatively) {
  // A v3 store built with summaries disabled behaves like the off run.
  EdgeList edges = ChainWithBackground(8, 32, 105, /*weighted=*/false);
  BuildOptions build;
  build.num_intervals = 8;
  build.build_transpose = false;
  build.summary = SummaryParams{0, 0};
  auto env = NewMemEnv();
  build.env = env.get();
  auto store = BuildGraphStore(edges, "g", build);
  ASSERT_TRUE(store.ok());
  ASSERT_FALSE((*store)->manifest().has_summaries());

  BfsProgram program;
  program.root = 0;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.selective_scheduling = true;
  Engine<BfsProgram> engine(*store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->subshards_skipped, 0u);
  EXPECT_EQ(stats->summary_bytes, 0u);
}

// ---- Checkpoint upgrade regression (satellite: stable fingerprint) -------

TEST(CheckpointUpgradeTest, ResumeSurvivesManifestVersionBump) {
  EdgeList edges = ChainWithBackground(8, 32, 77, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 8, /*transpose=*/false);

  // Keep the store's v3 manifest bytes, then rewrite the file the way a
  // v2-era release laid it out (no summaries).
  auto v3_manifest = ReadManifest(ms.env.get(), "g");
  ASSERT_TRUE(v3_manifest.ok());
  const std::string v3_bytes = v3_manifest->Encode();
  const std::string path = std::string("g/") + kManifestFileName;
  ASSERT_TRUE(WriteStringToFile(ms.env.get(), path,
                                EncodeOldManifest(*v3_manifest, 2))
                  .ok());
  auto old_store = GraphStore::Open(ms.env.get(), "g");
  ASSERT_TRUE(old_store.ok());
  ASSERT_FALSE((*old_store)->manifest().has_summaries());

  BfsProgram program;
  program.root = 0;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.num_threads = 2;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = "scratch";

  // Baseline on the v2 store.
  std::vector<uint32_t> expected;
  {
    RunOptions base = opt;
    base.scratch_dir = "scratch_base";
    base.checkpoint_interval = 0;
    Engine<BfsProgram> baseline(*old_store, program, base);
    ASSERT_TRUE(baseline.Run().ok());
    expected = baseline.values();
  }

  // Run 3 iterations against the v2 store, checkpointing each boundary.
  {
    RunOptions leg1 = opt;
    leg1.max_iterations = 3;
    Engine<BfsProgram> interrupted(*old_store, program, leg1);
    auto stats = interrupted.Run();
    ASSERT_TRUE(stats.ok());
    ASSERT_EQ(stats->iterations, 3);
  }

  // Upgrade the store to manifest v3 (summaries present) and resume: the
  // topology-only fingerprint must match the checkpoint's, so the run
  // picks up at iteration 3 instead of silently restarting.
  ASSERT_TRUE(WriteStringToFile(ms.env.get(), path, v3_bytes).ok());
  auto new_store = GraphStore::Open(ms.env.get(), "g");
  ASSERT_TRUE(new_store.ok());
  ASSERT_TRUE((*new_store)->manifest().has_summaries());
  Engine<BfsProgram> resumed(*new_store, program, opt);
  auto stats = resumed.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 3);
  EXPECT_EQ(resumed.values(), expected);
}

// ---- Server-side selective scheduling ------------------------------------

GraphServer::Options ServerOpts(bool selective) {
  GraphServer::Options o;
  o.num_workers = 2;
  o.io_threads = 2;
  o.prefetch_depth = 2;
  o.selective = selective;
  return o;
}

TEST(ServerSelectiveTest, PointQueriesSkipAndMatch) {
  EdgeList edges = ChainWithBackground(16, 64, 201, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 16, /*transpose=*/false);

  PointQuery bfs;
  bfs.kind = QueryKind::kBfs;
  bfs.root = 0;

  Outcome<PointResult> on, off;
  {
    auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(true));
    ASSERT_TRUE(server.ok());
    on = (*server)->Submit(bfs).Wait();
  }
  {
    auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(false));
    ASSERT_TRUE(server.ok());
    off = (*server)->Submit(bfs).Wait();
  }
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  ASSERT_TRUE(off.status.ok());
  EXPECT_EQ(on.result.vertices, off.result.vertices);
  EXPECT_EQ(on.result.hops, off.result.hops);
  // Selective planning can detect convergence one round earlier (the last
  // round plans zero blobs instead of reading them to learn nothing moved).
  EXPECT_LE(on.result.stats.iterations, off.result.stats.iterations);
  // The summary-aware plan visits a strict subset and charges fewer bytes.
  EXPECT_GT(on.result.stats.subshards_skipped, 0u);
  EXPECT_LT(on.result.stats.subshards_visited,
            off.result.stats.subshards_visited);
  EXPECT_LT(on.result.stats.bytes_charged, off.result.stats.bytes_charged);
  EXPECT_GT(on.result.stats.summary_bytes, 0u);
  EXPECT_EQ(off.result.stats.subshards_skipped, 0u);
  EXPECT_EQ(off.result.stats.summary_bytes, 0u);
}

TEST(ServerSelectiveTest, BatchWccSkipsAndMatches) {
  EdgeList edges = ChainWithBackground(16, 64, 202, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 16, /*transpose=*/true);

  BatchQuery spec;
  spec.direction = EdgeDirection::kBoth;

  Outcome<BatchResult<uint32_t>> on, off;
  {
    auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(true));
    ASSERT_TRUE(server.ok());
    on = (*server)->SubmitBatch(WccProgram{}, spec).Wait();
  }
  {
    auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(false));
    ASSERT_TRUE(server.ok());
    off = (*server)->SubmitBatch(WccProgram{}, spec).Wait();
  }
  ASSERT_TRUE(on.status.ok());
  ASSERT_TRUE(off.status.ok());
  EXPECT_EQ(on.result.values, off.result.values);
  EXPECT_GT(on.result.stats.subshards_skipped, 0u);
  EXPECT_LT(on.result.stats.subshards_visited,
            off.result.stats.subshards_visited);
}

// ---- PlanRound budget edges (satellite: oversized first blob) ------------

TEST(ServerSelectiveTest, OversizedFirstBlobReturnsRootOnlyPartial) {
  EdgeList edges = ChainWithBackground(4, 32, 203, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 4, /*transpose=*/false);

  for (bool selective : {true, false}) {
    PointQuery bfs;
    bfs.kind = QueryKind::kBfs;
    bfs.root = 0;
    bfs.limits.io_byte_budget = 1;  // smaller than any encoded blob

    auto server = GraphServer::Open(ms.env.get(), "g", ServerOpts(selective));
    ASSERT_TRUE(server.ok());
    // Deterministic: the same truncation twice, independent of the cache.
    for (int trial = 0; trial < 2; ++trial) {
      auto out = (*server)->Submit(bfs).Wait();
      EXPECT_TRUE(out.status.IsResourceExhausted())
          << "selective=" << selective << ": " << out.status.ToString();
      EXPECT_TRUE(out.result.stats.truncated);
      // Nothing was funded, so nothing was visited or charged — but the
      // root itself is still reported at hop 0.
      EXPECT_EQ(out.result.stats.subshards_visited, 0u);
      EXPECT_EQ(out.result.stats.bytes_charged, 0u);
      ASSERT_EQ(out.result.vertices, std::vector<VertexId>{0});
      EXPECT_EQ(out.result.hops, std::vector<uint32_t>{0});
    }
  }
}

TEST(ServerSelectiveTest, UnreachableOversizedBlobCannotTruncate) {
  // With summaries on, a blob the frontier cannot touch is skipped BEFORE
  // the budget check: a budget sized for just the reachable path completes
  // where the summary-blind plan truncates.
  EdgeList edges = ChainWithBackground(8, 64, 204, /*weighted=*/false);
  auto ms = testing::BuildMemStore(edges, 8, /*transpose=*/false);
  const Manifest& m = ms.store->manifest();

  // Budget: the chain blobs only (row i, column i+1), doubled for slack —
  // far below the full per-round row scans the blind plan charges.
  uint64_t chain_bytes = 0;
  for (uint32_t i = 0; i + 1 < m.num_intervals; ++i) {
    chain_bytes += m.subshard(i, i + 1).size;
  }
  PointQuery bfs;
  bfs.kind = QueryKind::kBfs;
  bfs.root = 0;
  bfs.limits.io_byte_budget = 2 * chain_bytes;

  auto on_server = GraphServer::Open(ms.env.get(), "g", ServerOpts(true));
  ASSERT_TRUE(on_server.ok());
  auto on = (*on_server)->Submit(bfs).Wait();
  ASSERT_TRUE(on.status.ok()) << on.status.ToString();
  EXPECT_FALSE(on.result.stats.truncated);
  EXPECT_EQ(on.result.vertices.size(), static_cast<size_t>(m.num_intervals));

  auto off_server = GraphServer::Open(ms.env.get(), "g", ServerOpts(false));
  ASSERT_TRUE(off_server.ok());
  auto off = (*off_server)->Submit(bfs).Wait();
  EXPECT_TRUE(off.status.IsResourceExhausted());
  EXPECT_TRUE(off.result.stats.truncated);
}

}  // namespace
}  // namespace nxgraph
