// Prefetcher unit tests: FIFO ordering, bounded window depth, staged
// decode, error propagation, and early shutdown with jobs still queued.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "src/io/prefetcher.h"

namespace nxgraph {
namespace {

using namespace std::chrono_literals;

TEST(PrefetcherTest, FifoOrderingUnderConcurrentIo) {
  ThreadPool io(4);
  ThreadPool compute(2);
  PrefetchStream<int> stream(&io, &compute, 3);
  constexpr int kJobs = 32;
  for (int k = 0; k < kJobs; ++k) {
    stream.Push([k]() -> Result<int> {
      // Jobs deliberately finish out of order.
      std::this_thread::sleep_for(std::chrono::microseconds((kJobs - k) * 50));
      return k;
    });
  }
  for (int k = 0; k < kJobs; ++k) {
    auto v = stream.Next();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, k) << "results must come back in push order";
  }
  EXPECT_EQ(stream.pending(), 0u);
}

TEST(PrefetcherTest, WindowDepthBoundsIssuedJobs) {
  ThreadPool io(4);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  std::atomic<int> started{0};
  PrefetchStream<int> stream(&io, nullptr, 2);
  for (int k = 0; k < 10; ++k) {
    stream.Push([k, open, &started]() -> Result<int> {
      started.fetch_add(1);
      open.wait();
      return k;
    });
  }
  // Give the I/O pool every chance to over-issue; the window must hold.
  std::this_thread::sleep_for(50ms);
  EXPECT_EQ(started.load(), 2) << "at most `depth` reads may be in flight";
  gate.set_value();
  for (int k = 0; k < 10; ++k) {
    auto v = stream.Next();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, k);
  }
  EXPECT_EQ(started.load(), 10);
}

TEST(PrefetcherTest, DepthZeroRunsSynchronouslyInline) {
  std::atomic<int> ran{0};
  PrefetchStream<int> stream(nullptr, nullptr, 0);
  for (int k = 0; k < 4; ++k) {
    stream.Push([k, &ran]() -> Result<int> {
      ran.fetch_add(1);
      return k * k;
    });
  }
  EXPECT_EQ(ran.load(), 0) << "depth 0 must not start work before Next()";
  for (int k = 0; k < 4; ++k) {
    auto v = stream.Next();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, k * k);
    EXPECT_EQ(ran.load(), k + 1);
  }
  // All synchronous read time is accounted as I/O wait.
  EXPECT_GE(stream.io_wait_seconds(), 0.0);
}

TEST(PrefetcherTest, StagedDecodeProducesValueAndReleasesRaw) {
  ThreadPool io(2);
  ThreadPool compute(2);
  PrefetchStream<std::string> stream(&io, &compute, 2);
  std::atomic<int> decoded{0};
  for (int k = 0; k < 8; ++k) {
    stream.PushStaged(
        [k]() -> Result<std::string> { return std::string(k + 1, 'x'); },
        [&decoded](std::string&& raw) -> Result<std::string> {
          decoded.fetch_add(1);
          return std::to_string(raw.size());
        });
  }
  for (int k = 0; k < 8; ++k) {
    auto v = stream.Next();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, std::to_string(k + 1));
  }
  EXPECT_EQ(decoded.load(), 8);
}

TEST(PrefetcherTest, IoErrorPropagatesToItsSlotOnly) {
  ThreadPool io(2);
  PrefetchStream<int> stream(&io, nullptr, 2);
  for (int k = 0; k < 5; ++k) {
    stream.Push([k]() -> Result<int> {
      if (k == 2) return Status::IOError("disk fell over");
      return k;
    });
  }
  for (int k = 0; k < 5; ++k) {
    auto v = stream.Next();
    if (k == 2) {
      ASSERT_FALSE(v.ok());
      EXPECT_TRUE(v.status().IsIOError());
    } else {
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, k);
    }
  }
}

TEST(PrefetcherTest, DecodeErrorPropagates) {
  ThreadPool io(1);
  ThreadPool compute(1);
  PrefetchStream<int> stream(&io, &compute, 1);
  stream.PushStaged([]() -> Result<std::string> { return std::string("ok"); },
                    [](std::string&&) -> Result<int> {
                      return Status::Corruption("bad blob");
                    });
  auto v = stream.Next();
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsCorruption());
}

TEST(PrefetcherTest, NextPastEndIsInvalidArgument) {
  ThreadPool io(1);
  PrefetchStream<int> stream(&io, nullptr, 2);
  stream.Push([]() -> Result<int> { return 7; });
  ASSERT_TRUE(stream.Next().ok());
  auto past = stream.Next();
  ASSERT_FALSE(past.ok());
  EXPECT_TRUE(past.status().IsInvalidArgument());
}

TEST(PrefetcherTest, EarlyShutdownSkipsQueuedJobs) {
  ThreadPool io(1);
  std::atomic<int> executed{0};
  {
    PrefetchStream<int> stream(&io, nullptr, 2);
    for (int k = 0; k < 20; ++k) {
      stream.Push([k, &executed]() -> Result<int> {
        executed.fetch_add(1);
        std::this_thread::sleep_for(2ms);
        return k;
      });
    }
    auto v = stream.Next();
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, 0);
    // Destructor: cancel, drain in-flight reads, and return without
    // running the ~17 jobs still queued behind the window.
  }
  EXPECT_LE(executed.load(), 6)
      << "destruction must not execute the whole queue";
  EXPECT_GE(executed.load(), 1);
}

TEST(PrefetcherTest, CancelledQueuedJobsReportAborted) {
  ThreadPool io(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  PrefetchStream<int> stream(&io, nullptr, 1);
  std::atomic<int> executed{0};
  std::atomic<bool> head_started{false};
  for (int k = 0; k < 4; ++k) {
    stream.Push([k, open, &executed, &head_started]() -> Result<int> {
      head_started.store(true);
      open.wait();
      executed.fetch_add(1);
      return k;
    });
  }
  // Make sure the head job is past its cancellation check before Cancel().
  while (!head_started.load()) std::this_thread::yield();
  stream.Cancel();
  gate.set_value();
  // Job 0 was already issued before Cancel and completes normally; the
  // jobs still queued come back Aborted without running.
  auto first = stream.Next();
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 0);
  for (int k = 1; k < 4; ++k) {
    auto v = stream.Next();
    ASSERT_FALSE(v.ok());
    EXPECT_TRUE(v.status().IsAborted());
  }
  EXPECT_EQ(executed.load(), 1);
}

}  // namespace
}  // namespace nxgraph
