#include <gtest/gtest.h>

#include <algorithm>

#include "src/graph/binary_io.h"
#include "src/io/env.h"
#include "src/prep/degreer.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

TEST(DegreerTest, AssignsDenseIdsInIndexOrder) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(100, 7);
  edges.Add(7, 1000);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_vertices, 3u);
  // Sorted index order: 7 -> 0, 100 -> 1, 1000 -> 2.
  EXPECT_EQ(r->mapping, (std::vector<VertexIndex>{7, 100, 1000}));
  EXPECT_EQ(IndexToId(r->mapping, 7), 0u);
  EXPECT_EQ(IndexToId(r->mapping, 100), 1u);
  EXPECT_EQ(IndexToId(r->mapping, 1000), 2u);
  EXPECT_EQ(IndexToId(r->mapping, 42), kInvalidVertex);
}

TEST(DegreerTest, ComputesDegrees) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 2);
  edges.Add(1, 2);
  edges.Add(2, 0);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->out_degrees, (std::vector<uint32_t>{2, 1, 1}));
  EXPECT_EQ(r->in_degrees, (std::vector<uint32_t>{1, 1, 2}));
}

TEST(DegreerTest, CountsParallelEdges) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(0, 1);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->out_degrees[0], 3u);
  EXPECT_EQ(r->in_degrees[1], 3u);
}

TEST(DegreerTest, IsolatedIndicesGetNoId) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(5, 500000);  // huge sparse gap: everything between is isolated
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices, 2u);
}

TEST(DegreerTest, SelfLoopCountsBothDegrees) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(3, 3);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->num_vertices, 1u);
  EXPECT_EQ(r->out_degrees[0], 1u);
  EXPECT_EQ(r->in_degrees[0], 1u);
}

TEST(DegreerTest, EmptyEdgeListRejected) {
  auto env = NewMemEnv();
  EdgeList edges;
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(DegreerTest, PreShardContainsRelabelledEdges) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.Add(10, 30);
  edges.Add(30, 20);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  auto reader = EdgeFileReader::Open(env.get(), "d/preshard.nxel");
  ASSERT_TRUE(reader.ok());
  std::vector<Edge> got;
  auto n = (*reader)->ReadBatch(10, &got, nullptr);
  ASSERT_TRUE(n.ok());
  // ids: 10->0, 20->1, 30->2.
  EXPECT_EQ(got[0], (Edge{0, 2}));
  EXPECT_EQ(got[1], (Edge{2, 1}));
}

TEST(DegreerTest, MappingFileRoundTrip) {
  auto env = NewMemEnv();
  EdgeList edges = testing::RandomGraph(200, 1000, 5, false, 17);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  auto mapping = LoadMapping(env.get(), "d");
  ASSERT_TRUE(mapping.ok());
  EXPECT_EQ(*mapping, r->mapping);
  EXPECT_TRUE(std::is_sorted(mapping->begin(), mapping->end()));
}

TEST(DegreerTest, DegreesFileRoundTrip) {
  auto env = NewMemEnv();
  EdgeList edges = testing::RandomGraph(100, 500, 6);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  std::vector<uint32_t> out_d, in_d;
  ASSERT_TRUE(
      LoadDegrees(env.get(), "d", r->num_vertices, &out_d, &in_d).ok());
  EXPECT_EQ(out_d, r->out_degrees);
  EXPECT_EQ(in_d, r->in_degrees);
  // Degree conservation: both sum to m.
  uint64_t out_sum = 0, in_sum = 0;
  for (uint32_t d : out_d) out_sum += d;
  for (uint32_t d : in_d) in_sum += d;
  EXPECT_EQ(out_sum, edges.num_edges());
  EXPECT_EQ(in_sum, edges.num_edges());
}

TEST(DegreerTest, DegreesFileDetectsCountMismatch) {
  auto env = NewMemEnv();
  EdgeList edges = testing::RandomGraph(50, 200, 7);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  std::vector<uint32_t> out_d;
  Status s = LoadDegrees(env.get(), "d", r->num_vertices + 1, &out_d, nullptr);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(DegreerTest, WeightedPreShardPreservesWeights) {
  auto env = NewMemEnv();
  EdgeList edges;
  edges.AddWeighted(1, 2, 0.25f);
  edges.AddWeighted(2, 1, 4.0f);
  auto r = RunDegreer(env.get(), edges, "d");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->weighted);
  auto reader = EdgeFileReader::Open(env.get(), "d/preshard.nxel");
  ASSERT_TRUE(reader.ok());
  std::vector<Edge> got;
  std::vector<float> weights;
  auto n = (*reader)->ReadBatch(10, &got, &weights);
  ASSERT_TRUE(n.ok());
  EXPECT_FLOAT_EQ(weights[0], 0.25f);
  EXPECT_FLOAT_EQ(weights[1], 4.0f);
}

}  // namespace
}  // namespace nxgraph
