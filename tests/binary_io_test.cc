#include <gtest/gtest.h>

#include "src/graph/binary_io.h"
#include "src/io/env.h"

namespace nxgraph {
namespace {

TEST(EdgeFileTest, UnweightedRoundTrip) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "e.nxel", false);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Add(1, 2).ok());
  ASSERT_TRUE((*writer)->Add(3, 4).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  auto reader = EdgeFileReader::Open(env.get(), "e.nxel");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_edges(), 2u);
  EXPECT_FALSE((*reader)->weighted());
  std::vector<Edge> edges;
  auto n = (*reader)->ReadBatch(10, &edges, nullptr);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 2u);
  EXPECT_EQ(edges[0], (Edge{1, 2}));
  EXPECT_EQ(edges[1], (Edge{3, 4}));
  n = (*reader)->ReadBatch(10, &edges, nullptr);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // exhausted
}

TEST(EdgeFileTest, WeightedRoundTrip) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "w.nxel", true);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->AddWeighted(1, 2, 0.5f).ok());
  ASSERT_TRUE((*writer)->Finish().ok());

  auto reader = EdgeFileReader::Open(env.get(), "w.nxel");
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE((*reader)->weighted());
  std::vector<Edge> edges;
  std::vector<float> weights;
  auto n = (*reader)->ReadBatch(10, &edges, &weights);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_FLOAT_EQ(weights[0], 0.5f);
}

TEST(EdgeFileTest, BatchedReads) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "b.nxel", false);
  ASSERT_TRUE(writer.ok());
  for (uint32_t i = 0; i < 100; ++i) {
    ASSERT_TRUE((*writer)->Add(i, i + 1).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());

  auto reader = EdgeFileReader::Open(env.get(), "b.nxel");
  ASSERT_TRUE(reader.ok());
  std::vector<Edge> edges;
  size_t total = 0;
  uint32_t next_src = 0;
  for (;;) {
    auto n = (*reader)->ReadBatch(7, &edges, nullptr);
    ASSERT_TRUE(n.ok());
    if (*n == 0) break;
    for (size_t k = 0; k < *n; ++k) {
      EXPECT_EQ(edges[k].src, next_src++);
    }
    total += *n;
  }
  EXPECT_EQ(total, 100u);
}

TEST(EdgeFileTest, MismatchedAddIsRejected) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "m.nxel", true);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE((*writer)->Add(1, 2).IsInvalidArgument());
  auto writer2 = EdgeFileWriter::Create(env.get(), "m2.nxel", false);
  ASSERT_TRUE(writer2.ok());
  EXPECT_TRUE((*writer2)->AddWeighted(1, 2, 1.0f).IsInvalidArgument());
}

TEST(EdgeFileTest, DetectsBadMagic) {
  auto env = NewMemEnv();
  ASSERT_TRUE(WriteStringToFile(env.get(), "junk", std::string(64, 'j')).ok());
  auto reader = EdgeFileReader::Open(env.get(), "junk");
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(EdgeFileTest, DetectsHeaderBitFlip) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "h.nxel", false);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Add(1, 2).ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env.get(), "h.nxel", &data).ok());
  data[9] ^= 0x40;  // flip a bit inside the header
  ASSERT_TRUE(WriteStringToFile(env.get(), "h.nxel", data).ok());
  auto reader = EdgeFileReader::Open(env.get(), "h.nxel");
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST(EdgeFileTest, DetectsTruncatedPayload) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "t.nxel", false);
  ASSERT_TRUE(writer.ok());
  for (uint32_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*writer)->Add(i, i).ok());
  }
  ASSERT_TRUE((*writer)->Finish().ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env.get(), "t.nxel", &data).ok());
  data.resize(data.size() - 12);  // drop 1.5 edges
  ASSERT_TRUE(WriteStringToFile(env.get(), "t.nxel", data).ok());
  auto reader = EdgeFileReader::Open(env.get(), "t.nxel");
  ASSERT_TRUE(reader.ok());  // header is intact
  std::vector<Edge> edges;
  auto n = (*reader)->ReadBatch(100, &edges, nullptr);
  ASSERT_FALSE(n.ok());
  EXPECT_TRUE(n.status().IsCorruption());
}

TEST(EdgeFileTest, EmptyFileHasZeroEdges) {
  auto env = NewMemEnv();
  auto writer = EdgeFileWriter::Create(env.get(), "z.nxel", false);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Finish().ok());
  auto reader = EdgeFileReader::Open(env.get(), "z.nxel");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_edges(), 0u);
  std::vector<Edge> edges;
  auto n = (*reader)->ReadBatch(10, &edges, nullptr);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);
}

}  // namespace
}  // namespace nxgraph
