#include <gtest/gtest.h>

#include "src/engine/strategy.h"
#include "src/prep/sharder.h"

namespace nxgraph {
namespace {

Manifest TestManifest(uint64_t n, uint32_t p) {
  Manifest m;
  m.num_vertices = n;
  m.num_intervals = p;
  m.interval_offsets = MakeEqualIntervals(n, p);
  m.subshards.assign(static_cast<size_t>(p) * p, SubShardMeta{});
  return m;
}

TEST(StrategyTest, UnlimitedBudgetPicksSpu) {
  RunOptions opt;
  opt.memory_budget_bytes = 0;
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  EXPECT_EQ(d.resident_intervals, 8u);
  EXPECT_EQ(d.name, "SPU");
}

TEST(StrategyTest, LargeBudgetPicksSpu) {
  RunOptions opt;
  opt.memory_budget_bytes = 1 << 20;
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  // Leftover budget goes to the sub-shard cache.
  EXPECT_EQ(d.subshard_cache_budget, (1u << 20) - 2 * 1000 * 8);
}

TEST(StrategyTest, TinyBudgetPicksDpu) {
  RunOptions opt;
  // Less than one interval's ping-pong state.
  opt.memory_budget_bytes = 100;
  auto d = ChooseStrategy(TestManifest(10000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kDoublePhase);
  EXPECT_EQ(d.resident_intervals, 0u);
}

TEST(StrategyTest, MidBudgetPicksMpuWithPaperQ) {
  RunOptions opt;
  const uint64_t n = 10000;
  const uint32_t value_bytes = 8;
  // Half the SPU requirement => Q = P/2 by Q = BM/(2 n Ba) * P.
  opt.memory_budget_bytes = n * value_bytes;  // == 0.5 * 2*n*Ba
  auto d = ChooseStrategy(TestManifest(n, 8), value_bytes, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kMixedPhase);
  EXPECT_EQ(d.resident_intervals, 4u);
  EXPECT_EQ(d.name, "MPU(Q=4/8)");
}

TEST(StrategyTest, FixedOverheadReducesAvailable) {
  RunOptions opt;
  const uint64_t n = 1000;
  opt.memory_budget_bytes = 2 * n * 8;  // exactly SPU-sized...
  auto d = ChooseStrategy(TestManifest(n, 4), 8, /*fixed_overhead=*/4 * n,
                          opt);  // ...but degrees eat into it
  EXPECT_NE(d.strategy, UpdateStrategy::kSinglePhase);
}

TEST(StrategyTest, ForcedSpuHonored) {
  RunOptions opt;
  opt.memory_budget_bytes = 100;  // far too small, but forced
  opt.strategy = UpdateStrategy::kSinglePhase;
  auto d = ChooseStrategy(TestManifest(10000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  EXPECT_EQ(d.resident_intervals, 8u);
  EXPECT_EQ(d.subshard_cache_budget, 0u);  // nothing left over
}

TEST(StrategyTest, ForcedDpuHonored) {
  RunOptions opt;
  opt.memory_budget_bytes = 0;
  opt.strategy = UpdateStrategy::kDoublePhase;
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kDoublePhase);
  EXPECT_EQ(d.resident_intervals, 0u);
}

TEST(StrategyTest, ForcedMpuComputesQ) {
  RunOptions opt;
  opt.strategy = UpdateStrategy::kMixedPhase;
  opt.memory_budget_bytes = 0;  // unlimited => Q == P
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kMixedPhase);
  EXPECT_EQ(d.resident_intervals, 8u);
}

TEST(StrategyTest, AutoMatchesPaperThresholds) {
  const uint64_t n = 8000;
  const uint32_t vb = 8;
  const uint64_t spu_threshold = 2 * n * vb;
  RunOptions opt;

  opt.memory_budget_bytes = spu_threshold;
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kSinglePhase);

  opt.memory_budget_bytes = spu_threshold - 1;
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kMixedPhase);

  opt.memory_budget_bytes = spu_threshold / 8;  // Q == 1
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kMixedPhase);

  opt.memory_budget_bytes = spu_threshold / 8 - 1;  // Q == 0
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kDoublePhase);
}

}  // namespace
}  // namespace nxgraph
