#include <gtest/gtest.h>

#include "src/engine/strategy.h"
#include "src/prep/sharder.h"
#include "src/util/logging.h"

namespace nxgraph {
namespace {

Manifest TestManifest(uint64_t n, uint32_t p) {
  Manifest m;
  m.num_vertices = n;
  m.num_intervals = p;
  m.interval_offsets = MakeEqualIntervals(n, p);
  m.subshards.assign(static_cast<size_t>(p) * p, SubShardMeta{});
  return m;
}

TEST(StrategyTest, UnlimitedBudgetPicksSpu) {
  RunOptions opt;
  opt.memory_budget_bytes = 0;
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  EXPECT_EQ(d.resident_intervals, 8u);
  EXPECT_EQ(d.name, "SPU");
}

TEST(StrategyTest, LargeBudgetPicksSpu) {
  RunOptions opt;
  opt.memory_budget_bytes = 1 << 20;
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  // Leftover budget goes to the sub-shard cache.
  EXPECT_EQ(d.subshard_cache_budget, (1u << 20) - 2 * 1000 * 8);
}

TEST(StrategyTest, TinyBudgetPicksDpu) {
  RunOptions opt;
  // Less than one interval's ping-pong state.
  opt.memory_budget_bytes = 100;
  auto d = ChooseStrategy(TestManifest(10000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kDoublePhase);
  EXPECT_EQ(d.resident_intervals, 0u);
}

TEST(StrategyTest, MidBudgetPicksMpuWithPaperQ) {
  RunOptions opt;
  const uint64_t n = 10000;
  const uint32_t value_bytes = 8;
  // Half the SPU requirement => Q = P/2 by Q = BM/(2 n Ba) * P.
  opt.memory_budget_bytes = n * value_bytes;  // == 0.5 * 2*n*Ba
  auto d = ChooseStrategy(TestManifest(n, 8), value_bytes, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kMixedPhase);
  EXPECT_EQ(d.resident_intervals, 4u);
  EXPECT_EQ(d.name, "MPU(Q=4/8)");
}

TEST(StrategyTest, FixedOverheadReducesAvailable) {
  RunOptions opt;
  const uint64_t n = 1000;
  opt.memory_budget_bytes = 2 * n * 8;  // exactly SPU-sized...
  auto d = ChooseStrategy(TestManifest(n, 4), 8, /*fixed_overhead=*/4 * n,
                          opt);  // ...but degrees eat into it
  EXPECT_NE(d.strategy, UpdateStrategy::kSinglePhase);
}

TEST(StrategyTest, ForcedSpuHonored) {
  RunOptions opt;
  opt.memory_budget_bytes = 100;  // far too small, but forced
  opt.strategy = UpdateStrategy::kSinglePhase;
  auto d = ChooseStrategy(TestManifest(10000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  EXPECT_EQ(d.resident_intervals, 8u);
  EXPECT_EQ(d.subshard_cache_budget, 0u);  // nothing left over
}

TEST(StrategyTest, ForcedDpuHonored) {
  RunOptions opt;
  opt.memory_budget_bytes = 0;
  opt.strategy = UpdateStrategy::kDoublePhase;
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kDoublePhase);
  EXPECT_EQ(d.resident_intervals, 0u);
}

TEST(StrategyTest, ForcedMpuComputesQ) {
  RunOptions opt;
  opt.strategy = UpdateStrategy::kMixedPhase;
  opt.memory_budget_bytes = 0;  // unlimited => Q == P
  auto d = ChooseStrategy(TestManifest(1000, 8), 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kMixedPhase);
  EXPECT_EQ(d.resident_intervals, 8u);
}

// ---- prefetch window funding ----------------------------------------------

// Every blob gets encoded size row_bytes / p and per-blob counts chosen so
// its decoded footprint equals its encoded size exactly (the NXS1-like
// case): DecodedBytes = (2*num_dsts + 1 + num_edges) * 4 == size.
Manifest SizedManifest(uint64_t n, uint32_t p, uint64_t row_bytes) {
  Manifest m = TestManifest(n, p);
  const uint64_t size = row_bytes / p;
  NX_CHECK(size >= 16 && size % 4 == 0);
  for (auto& meta : m.subshards) {
    meta.size = size;
    meta.num_dsts = 1;
    meta.num_edges = size / 4 - 3;
  }
  return m;
}

TEST(StrategyTest, UnlimitedBudgetHonorsRequestedPrefetchDepth) {
  RunOptions opt;
  opt.memory_budget_bytes = 0;
  opt.prefetch_depth = 3;
  Manifest m = SizedManifest(1000, 8, 4096);
  auto d = ChooseStrategy(m, 8, 0, opt);
  EXPECT_EQ(d.prefetch_depth, 3u);
  EXPECT_EQ(d.prefetch_buffer_bytes,
            3u * PrefetchSlotBytes(m, 8, opt.direction));
}

TEST(StrategyTest, PrefetchDepthZeroDisablesWindow) {
  RunOptions opt;
  opt.prefetch_depth = 0;
  auto d = ChooseStrategy(SizedManifest(1000, 8, 4096), 8, 0, opt);
  EXPECT_EQ(d.prefetch_depth, 0u);
  EXPECT_EQ(d.prefetch_buffer_bytes, 0u);
}

TEST(StrategyTest, PrefetchSlotCoversRawDecodeAndValueSegment) {
  // Decoded == encoded in SizedManifest, so the slot is raw + decoded +
  // segment = 2 * row + segment.
  Manifest m = SizedManifest(1000, 8, 4096);  // 8 equal intervals of 125
  EXPECT_EQ(PrefetchSlotBytes(m, 8, EdgeDirection::kForward),
            2 * 4096u + 125 * 8u);
}

TEST(StrategyTest, CompressedBlobsShrinkOnlyTheRawSlotHalf) {
  // An NXS2-like manifest: same decoded footprint, half the encoded bytes.
  // The slot must charge raw and decoded separately — raw shrinks, decoded
  // does not — so the compressed store's slot is smaller by exactly the
  // encoded saving, and the same budget funds deeper windows.
  Manifest m = SizedManifest(1000, 8, 4096);
  Manifest compressed = m;
  for (auto& meta : compressed.subshards) meta.size /= 2;
  const uint64_t slot = PrefetchSlotBytes(m, 8, EdgeDirection::kForward);
  const uint64_t cslot =
      PrefetchSlotBytes(compressed, 8, EdgeDirection::kForward);
  EXPECT_EQ(cslot, slot - 8 * (512 / 2));

  // With the budget that funded `depth` slots of the uncompressed store,
  // the compressed store funds at least as deep a window.
  RunOptions opt;
  opt.prefetch_depth = 6;
  const uint64_t decoded_total = 8 * 4096;  // pin target, format-independent
  // Surplus beyond the pin funds 3 uncompressed slots (with change) but 4
  // compressed ones.
  opt.memory_budget_bytes = 2 * 1000 * 8 + decoded_total + 3 * slot + 3000;
  auto d = ChooseStrategy(m, 8, 0, opt);
  auto dc = ChooseStrategy(compressed, 8, 0, opt);
  EXPECT_EQ(d.prefetch_depth, 4u);   // 1 free slot + 3 funded
  EXPECT_EQ(dc.prefetch_depth, 5u);  // 1 free slot + 4 funded
}

TEST(StrategyTest, DeepPrefetchWindowFundedFromCacheLeftover) {
  const uint64_t n = 1000;
  const uint64_t row = 4096;
  RunOptions opt;
  opt.prefetch_depth = 3;
  Manifest m = SizedManifest(n, 8, row);
  const uint64_t slot = PrefetchSlotBytes(m, 8, opt.direction);
  const uint64_t total = 8 * row;  // all rows pinnable
  // SPU state + room to pin the whole graph + 5 spare slots.
  opt.memory_budget_bytes = 2 * n * 8 + total + 5 * slot;
  auto d = ChooseStrategy(m, 8, 0, opt);
  EXPECT_EQ(d.strategy, UpdateStrategy::kSinglePhase);
  EXPECT_EQ(d.prefetch_depth, 3u);
  EXPECT_EQ(d.prefetch_buffer_bytes, 3 * slot);
  // Slots beyond the first are carved out of the cache surplus.
  EXPECT_EQ(d.subshard_cache_budget, total + 5 * slot - 2 * slot);
}

TEST(StrategyTest, WindowNeverDemotesCachedRunToStreaming) {
  const uint64_t n = 1000;
  const uint64_t row = 4096;
  RunOptions opt;
  opt.prefetch_depth = 4;
  Manifest m = SizedManifest(n, 8, row);
  const uint64_t total = 8 * row;
  // Leftover exactly pins the decoded graph: no surplus to fund deep
  // slots, and the cache budget must stay >= total (cached mode).
  opt.memory_budget_bytes = 2 * n * 8 + total + 100;
  auto d = ChooseStrategy(m, 8, 0, opt);
  EXPECT_EQ(d.prefetch_depth, 1u);
  EXPECT_GE(d.subshard_cache_budget, total);
}

TEST(StrategyTest, TightBudgetClampsPrefetchToDoubleBuffering) {
  const uint64_t n = 1000;
  const uint64_t row = 4096;
  RunOptions opt;
  opt.prefetch_depth = 4;
  opt.memory_budget_bytes = 2 * n * 8 + row / 2;  // not even one spare slot
  Manifest m = SizedManifest(n, 8, row);
  auto d = ChooseStrategy(m, 8, 0, opt);
  // The first window slot rides in the synchronous loader's working-set
  // allowance, so prefetch stays on (double buffering) but no deeper.
  EXPECT_EQ(d.prefetch_depth, 1u);
  EXPECT_EQ(d.prefetch_buffer_bytes, PrefetchSlotBytes(m, 8, opt.direction));
  EXPECT_EQ(d.subshard_cache_budget, row / 2);
}

// ---- write-behind funding -------------------------------------------------

TEST(StrategyTest, FullyResidentRunGetsNoWritebackBuffer) {
  RunOptions opt;
  opt.memory_budget_bytes = 0;  // unlimited => SPU, no out-of-core writes
  auto d = ChooseStrategy(SizedManifest(1000, 8, 4096), 8, 0, opt);
  EXPECT_EQ(d.resident_intervals, 8u);
  EXPECT_EQ(d.writeback_buffer_bytes, 0u);
}

TEST(StrategyTest, UnlimitedBudgetHonorsRequestedWriteback) {
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.memory_budget_bytes = 0;
  opt.writeback_buffer_bytes = 1 << 20;
  auto d = ChooseStrategy(SizedManifest(1000, 8, 4096), 8, 0, opt);
  EXPECT_EQ(d.writeback_buffer_bytes, 1u << 20);
}

TEST(StrategyTest, WritebackZeroDisablesQueue) {
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.writeback_buffer_bytes = 0;
  auto d = ChooseStrategy(SizedManifest(1000, 8, 4096), 8, 0, opt);
  EXPECT_EQ(d.writeback_buffer_bytes, 0u);
}

TEST(StrategyTest, WritebackFundedFromCacheLeftoverAfterPrefetch) {
  const uint64_t n = 1000;
  const uint64_t row = 4096;
  RunOptions opt;
  // Forced DPU with a budget big enough to pin the whole decoded graph in
  // the sub-shard cache plus 10000 bytes of surplus.
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.prefetch_depth = 1;  // first slot rides free: no cache spend
  opt.writeback_buffer_bytes = 3000;
  Manifest m = SizedManifest(n, 8, row);
  const uint64_t total = 8 * row;
  opt.memory_budget_bytes = total + 10000;
  auto d = ChooseStrategy(m, 8, 0, opt);
  ASSERT_EQ(d.resident_intervals, 0u);
  // The request fits the surplus beyond pinning the graph, so it is fully
  // funded out of the cache leftover.
  EXPECT_EQ(d.writeback_buffer_bytes, 3000u);
  EXPECT_GE(d.subshard_cache_budget, total);
}

TEST(StrategyTest, WritebackNeverDemotesCachedRunToStreaming) {
  const uint64_t n = 1000;
  const uint64_t row = 4096;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.prefetch_depth = 1;
  opt.writeback_buffer_bytes = 1 << 20;  // far more than the surplus
  Manifest m = SizedManifest(n, 8, row);
  const uint64_t total = 8 * row;
  opt.memory_budget_bytes = total + 100;  // surplus of 100 bytes
  auto d = ChooseStrategy(m, 8, 0, opt);
  ASSERT_EQ(d.resident_intervals, 0u);
  // The 100-byte surplus is below the largest single payload (an interval
  // segment), so write-behind degrades to synchronous instead of taking a
  // degenerate window — and the cache can still hold every decoded
  // sub-shard, so the run stays cached.
  EXPECT_EQ(d.writeback_buffer_bytes, 0u);
  EXPECT_GE(d.subshard_cache_budget, total);
}

TEST(StrategyTest, TightBudgetClampsWriteback) {
  const uint64_t n = 10000;
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.prefetch_depth = 1;
  opt.writeback_buffer_bytes = 1 << 20;
  opt.memory_budget_bytes = 500;  // streaming: cache budget is tiny
  Manifest m = SizedManifest(n, 8, 4096);
  auto d = ChooseStrategy(m, 8, 0, opt);
  // The tiny leftover cannot hold even one payload, so the window is not
  // worth its overhead: write-behind falls back to synchronous mode.
  EXPECT_EQ(d.writeback_buffer_bytes, 0u);
}

TEST(StrategyTest, AutoMatchesPaperThresholds) {
  const uint64_t n = 8000;
  const uint32_t vb = 8;
  const uint64_t spu_threshold = 2 * n * vb;
  RunOptions opt;

  opt.memory_budget_bytes = spu_threshold;
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kSinglePhase);

  opt.memory_budget_bytes = spu_threshold - 1;
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kMixedPhase);

  opt.memory_budget_bytes = spu_threshold / 8;  // Q == 1
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kMixedPhase);

  opt.memory_budget_bytes = spu_threshold / 8 - 1;  // Q == 0
  EXPECT_EQ(ChooseStrategy(TestManifest(n, 8), vb, 0, opt).strategy,
            UpdateStrategy::kDoublePhase);
}

}  // namespace
}  // namespace nxgraph
