#include <gtest/gtest.h>

#include "src/engine/io_model.h"
#include "src/prep/manifest.h"

namespace nxgraph {
namespace {

// Yahoo-web parameters from paper §III-C.
IoModelParams YahooParams(double budget_gb) {
  IoModelParams p;
  p.n = 7.20e8;
  p.m = 6.63e9;
  p.Ba = 8;
  p.Bv = 4;
  p.Be = 4;
  p.d = 15;
  p.BM = budget_gb * 1024 * 1024 * 1024;
  return p;
}

TEST(IoModelTest, SpuZeroReadWhenEverythingFits) {
  IoModelParams p;
  p.n = 1000;
  p.m = 10000;
  p.BM = 1e12;
  const IoCost c = SpuIoCost(p);
  EXPECT_EQ(c.read_bytes, 0);
  EXPECT_EQ(c.write_bytes, 0);
}

TEST(IoModelTest, SpuReadsShortfallOnly) {
  IoModelParams p;
  p.n = 1000;
  p.m = 10000;
  p.Ba = 8;
  p.Be = 4;
  // m*Be + 2n*Ba = 40000 + 16000 = 56000; budget 50000 => read 6000.
  p.BM = 50000;
  EXPECT_DOUBLE_EQ(SpuIoCost(p).read_bytes, 6000);
  EXPECT_EQ(SpuIoCost(p).write_bytes, 0);
}

TEST(IoModelTest, DpuMatchesTableTwo) {
  IoModelParams p;
  p.n = 1000;
  p.m = 10000;
  p.Ba = 8;
  p.Bv = 4;
  p.Be = 4;
  p.d = 10;
  const IoCost c = DpuIoCost(p);
  const double hub = p.m * (p.Ba + p.Bv) / p.d;  // 12000
  EXPECT_DOUBLE_EQ(c.read_bytes, p.m * p.Be + hub + p.n * p.Ba);
  EXPECT_DOUBLE_EQ(c.write_bytes, hub + p.n * p.Ba);
}

TEST(IoModelTest, DpuIndependentOfBudget) {
  IoModelParams a = YahooParams(1);
  IoModelParams b = YahooParams(32);
  EXPECT_DOUBLE_EQ(DpuIoCost(a).total(), DpuIoCost(b).total());
}

TEST(IoModelTest, MpuDegeneratesToSpuAtFullBudget) {
  IoModelParams p = YahooParams(0);
  p.BM = 2 * p.n * p.Ba;  // exactly the SPU threshold
  const IoCost mpu = MpuIoCost(p);
  EXPECT_DOUBLE_EQ(mpu.read_bytes, p.m * p.Be);
  EXPECT_DOUBLE_EQ(mpu.write_bytes, 0);
  EXPECT_EQ(MpuResidentIntervals(p), static_cast<uint32_t>(p.P));
}

TEST(IoModelTest, MpuDegeneratesToDpuAtZeroBudget) {
  IoModelParams p = YahooParams(0);
  p.BM = 0;
  EXPECT_DOUBLE_EQ(MpuIoCost(p).total(), DpuIoCost(p).total());
  EXPECT_EQ(MpuResidentIntervals(p), 0u);
}

TEST(IoModelTest, MpuMonotoneInBudget) {
  double prev = 1e300;
  for (double gb = 0.5; gb <= 12; gb += 0.5) {
    const double total = MpuIoCost(YahooParams(gb)).total();
    EXPECT_LE(total, prev) << "MPU I/O must not grow with memory";
    prev = total;
  }
}

TEST(IoModelTest, TurboGraphMatchesSectionThreeC) {
  IoModelParams p = YahooParams(4);
  const IoCost c = TurboGraphLikeIoCost(p);
  EXPECT_DOUBLE_EQ(c.read_bytes,
                   p.m * p.Be + 2 * (p.n * p.Ba) * (p.n * p.Ba) / p.BM +
                       p.n * p.Ba);
  EXPECT_DOUBLE_EQ(c.write_bytes, p.n * p.Ba);
}

// Fig. 6's claim: "MPU always outperforms TurboGraph-like strategy".
TEST(IoModelTest, Fig6RatioAlwaysBelowOne) {
  for (double gb = 0.25; gb <= 11.5; gb += 0.25) {
    const double ratio = MpuToTurboGraphRatio(YahooParams(gb));
    EXPECT_GT(ratio, 0.0);
    EXPECT_LT(ratio, 1.0) << "at " << gb << " GB";
  }
}

TEST(IoModelTest, Fig6RatioShape) {
  // At small budgets TurboGraph-like pays 2(nBa)^2/BM, which explodes, so
  // the ratio approaches 0; it then climbs steeply and stays in a band
  // below 1 across the rest of the axis (the paper's headline: "MPU always
  // outperforms TurboGraph-like").
  EXPECT_LT(MpuToTurboGraphRatio(YahooParams(0.25)), 0.3);
  EXPECT_LT(MpuToTurboGraphRatio(YahooParams(0.25)),
            MpuToTurboGraphRatio(YahooParams(2.0)));
  for (double gb = 2.0; gb <= 11.0; gb += 0.5) {
    const double ratio = MpuToTurboGraphRatio(YahooParams(gb));
    EXPECT_GT(ratio, 0.5) << "at " << gb << " GB";
    EXPECT_LT(ratio, 1.0) << "at " << gb << " GB";
  }
}

TEST(IoModelTest, ResidentIntervalsScaleLinearly) {
  IoModelParams p = YahooParams(0);
  p.P = 16;
  p.BM = 0.5 * 2 * p.n * p.Ba;  // half the SPU requirement
  EXPECT_EQ(MpuResidentIntervals(p), 8u);
}

TEST(IoModelTest, ParamsFromManifestUseActualBlobSizes) {
  // Be must be the measured encoded bytes per edge from the manifest's
  // segment table — NOT an assumed constant — so a compressed store's
  // smaller blobs flow straight into every m*Be term.
  Manifest m;
  m.num_vertices = 1000;
  m.num_edges = 500;
  m.num_intervals = 2;
  m.interval_offsets = {0, 500, 1000};
  SubShardMeta a, b;
  a.size = 600;
  a.num_edges = 300;
  a.num_dsts = 100;
  b.size = 400;
  b.num_edges = 200;
  b.num_dsts = 150;
  m.subshards = {a, b, SubShardMeta{}, SubShardMeta{}};

  IoModelParams p = MakeIoModelParams(m, 8, 12345);
  EXPECT_DOUBLE_EQ(p.n, 1000.0);
  EXPECT_DOUBLE_EQ(p.m, 500.0);
  EXPECT_DOUBLE_EQ(p.Ba, 8.0);
  EXPECT_DOUBLE_EQ(p.BM, 12345.0);
  EXPECT_DOUBLE_EQ(p.P, 2.0);
  EXPECT_DOUBLE_EQ(p.Be, 1000.0 / 500.0);  // actual bytes per edge: 2
  EXPECT_DOUBLE_EQ(p.d, 500.0 / 250.0);    // measured avg dst in-degree

  // A compressed store (half the blob bytes) halves Be and with it the
  // m*Be term of every strategy's read cost.
  Manifest compressed = m;
  for (auto& meta : compressed.subshards) meta.size /= 2;
  IoModelParams pc = MakeIoModelParams(compressed, 8, 12345);
  EXPECT_DOUBLE_EQ(pc.Be, p.Be / 2);
  EXPECT_LT(DpuIoCost(pc).read_bytes, DpuIoCost(p).read_bytes);
  EXPECT_DOUBLE_EQ(DpuIoCost(p).read_bytes - DpuIoCost(pc).read_bytes,
                   500.0);  // exactly the saved blob bytes
}

}  // namespace
}  // namespace nxgraph
