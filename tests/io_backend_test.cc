// I/O backend tests: DirectIOEnv alignment edge cases (unaligned logical
// offsets/lengths, short reads at EOF, O_DIRECT-refused fallback, page-cache
// coherency with buffered readers), UringEnv transfers (skipped when the
// kernel/sandbox lacks io_uring), and the engine parity matrix — PageRank
// and WCC results must be bit-identical across buffered/direct/uring on a
// real-disk store, with RunStats reporting the effective backend.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "src/algos/programs.h"
#include "src/engine/engine.h"
#include "src/io/env.h"
#include "src/io/posix_base.h"
#include "src/util/random.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

class IoBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    char tmpl[] = "/tmp/nxgraph_io_backend_XXXXXX";
    root_ = mkdtemp(tmpl);
    ASSERT_FALSE(root_.empty());
  }
  void TearDown() override {
    ASSERT_TRUE(Env::Default()->RemoveDirRecursively(root_).ok());
  }

  std::string Path(const std::string& name) const { return root_ + "/" + name; }

  std::string root_;
};

TEST(IoBackendNamesTest, ParseAndName) {
  IoBackend b = IoBackend::kUring;
  EXPECT_TRUE(ParseIoBackend("buffered", &b));
  EXPECT_EQ(b, IoBackend::kBuffered);
  EXPECT_TRUE(ParseIoBackend("direct", &b));
  EXPECT_EQ(b, IoBackend::kDirect);
  EXPECT_TRUE(ParseIoBackend("uring", &b));
  EXPECT_EQ(b, IoBackend::kUring);
  EXPECT_FALSE(ParseIoBackend("mmap", &b));
  EXPECT_STREQ(IoBackendName(IoBackend::kDirect), "direct");
}

// ---- DirectIOEnv ----------------------------------------------------------

// Writes patterned data at deliberately hostile offsets/lengths through the
// direct Env, then reads every range back through BOTH the direct Env and
// the buffered one: logical offsets/lengths must be preserved exactly, and
// the two views must agree (page-cache coherency across the O_DIRECT and
// buffered fds).
TEST_F(IoBackendTest, DirectUnalignedOffsetsAndLengthsRoundTrip) {
  if (!DirectIOSupported(root_)) GTEST_SKIP() << "no O_DIRECT on /tmp";
  auto direct = NewDirectIOEnv();
  const uint64_t a = kDirectIOAlignment;

  // (offset, length) pairs covering: inside one block, head-only, tail-only,
  // block-spanning unaligned both ends, fully aligned, and > one staging
  // chunk would need (kept modest for test speed).
  const std::vector<std::pair<uint64_t, size_t>> ranges = {
      {3, 17},               // inside the first block
      {a - 7, 14},           // straddles one boundary
      {2 * a, a},            // fully aligned
      {2 * a + 1, 3 * a},    // unaligned head, aligned-size middle
      {7 * a - 3, 2 * a + 9},  // unaligned both ends
      {16 * a + 123, 64 * 1024 + 7},  // multi-block with odd padding
  };

  // Golden model in memory.
  uint64_t file_size = 0;
  for (const auto& [off, len] : ranges) {
    file_size = std::max(file_size, off + len);
  }
  std::string golden(file_size, '\0');
  Xoshiro256 rng(7);
  {
    std::unique_ptr<RandomWriteFile> w;
    ASSERT_TRUE(direct->NewRandomWriteFile(Path("data"), &w).ok());
    for (const auto& [off, len] : ranges) {
      std::string payload(len, '\0');
      for (char& c : payload) {
        c = static_cast<char>('a' + rng.NextBounded(26));
      }
      std::memcpy(golden.data() + off, payload.data(), len);
      ASSERT_TRUE(w->WriteAt(off, payload.data(), payload.size()).ok());
    }
    ASSERT_TRUE(w->Flush().ok());
    ASSERT_TRUE(w->Close().ok());
  }

  for (Env* env : {direct.get(), Env::Default()}) {
    std::unique_ptr<RandomAccessFile> r;
    ASSERT_TRUE(env->NewRandomAccessFile(Path("data"), &r).ok());
    for (const auto& [off, len] : ranges) {
      std::string got(len, '\0');
      size_t n = 0;
      ASSERT_TRUE(r->ReadAt(off, len, got.data(), &n).ok());
      ASSERT_EQ(n, len) << "offset " << off;
      EXPECT_EQ(got, golden.substr(off, len)) << "offset " << off;
    }
    // Whole-file read at offset 0 agrees with the golden model, including
    // the zero gaps between the written ranges.
    std::string all(file_size, 'x');
    size_t n = 0;
    ASSERT_TRUE(r->ReadAt(0, all.size(), all.data(), &n).ok());
    ASSERT_EQ(n, file_size);
    EXPECT_EQ(all, golden);
  }
}

TEST_F(IoBackendTest, DirectShortReadsAtEof) {
  if (!DirectIOSupported(root_)) GTEST_SKIP() << "no O_DIRECT on /tmp";
  auto direct = NewDirectIOEnv();
  const uint64_t a = kDirectIOAlignment;
  // Unaligned file size: the last block is partial on the device.
  const size_t size = 2 * a + 1808;
  {
    std::unique_ptr<RandomWriteFile> w;
    ASSERT_TRUE(direct->NewRandomWriteFile(Path("eof"), &w).ok());
    std::string payload(size, 'e');
    ASSERT_TRUE(w->WriteAt(0, payload.data(), payload.size()).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(direct->NewRandomAccessFile(Path("eof"), &r).ok());
  char buf[4 * 4096];
  size_t n = 0;
  // Read crossing EOF: clamped to the real size, like the buffered contract.
  ASSERT_TRUE(r->ReadAt(2 * a, sizeof(buf), buf, &n).ok());
  EXPECT_EQ(n, 1808u);
  // Read entirely past EOF: zero bytes.
  ASSERT_TRUE(r->ReadAt(size + 12345, 64, buf, &n).ok());
  EXPECT_EQ(n, 0u);
  // Last byte exactly.
  ASSERT_TRUE(r->ReadAt(size - 1, 64, buf, &n).ok());
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(buf[0], 'e');
  // Zero-length read.
  ASSERT_TRUE(r->ReadAt(0, 0, buf, &n).ok());
  EXPECT_EQ(n, 0u);
}

// Disjoint writes that share an alignment block go through the buffered
// byte-granular path, so concurrent writers cannot lose each other's bytes
// to a read-modify-write race.
TEST_F(IoBackendTest, DirectConcurrentDisjointWritesSharingBlocks) {
  if (!DirectIOSupported(root_)) GTEST_SKIP() << "no O_DIRECT on /tmp";
  auto direct = NewDirectIOEnv();
  std::unique_ptr<RandomWriteFile> w;
  ASSERT_TRUE(direct->NewRandomWriteFile(Path("conc"), &w).ok());
  constexpr int kWriters = 8;
  constexpr size_t kChunk = 1500;  // never block-aligned
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      std::string payload(kChunk, static_cast<char>('A' + t));
      ASSERT_TRUE(
          w->WriteAt(static_cast<uint64_t>(t) * kChunk, payload.data(), kChunk)
              .ok());
    });
  }
  for (auto& th : writers) th.join();
  ASSERT_TRUE(w->Flush().ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(direct->NewRandomAccessFile(Path("conc"), &r).ok());
  std::string all(kWriters * kChunk, '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(0, all.size(), all.data(), &n).ok());
  ASSERT_EQ(n, all.size());
  for (int t = 0; t < kWriters; ++t) {
    EXPECT_EQ(all.substr(static_cast<size_t>(t) * kChunk, kChunk),
              std::string(kChunk, static_cast<char>('A' + t)))
        << "writer " << t;
  }
}

// A filesystem that refuses O_DIRECT (tmpfs) must degrade per file to
// buffered I/O, transparently.
TEST(IoBackendFallbackTest, DirectRefusedFallsBackToBufferedPerFile) {
  Env* base = Env::Default();
  if (!base->FileExists("/dev/shm")) GTEST_SKIP() << "no /dev/shm";
  if (DirectIOSupported("/dev/shm")) {
    GTEST_SKIP() << "/dev/shm unexpectedly supports O_DIRECT";
  }
  const std::string dir = "/dev/shm/nxgraph_io_backend_test";
  ASSERT_TRUE(base->CreateDirs(dir).ok());
  auto direct = NewDirectIOEnv();
  const std::string path = dir + "/fallback";
  {
    std::unique_ptr<RandomWriteFile> w;
    ASSERT_TRUE(direct->NewRandomWriteFile(path, &w).ok());
    std::string payload(10000, 'f');
    ASSERT_TRUE(w->WriteAt(3, payload.data(), payload.size()).ok());
    ASSERT_TRUE(w->Flush().ok());
    ASSERT_TRUE(w->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(direct->NewRandomAccessFile(path, &r).ok());
  std::string got(10000, '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(3, got.size(), got.data(), &n).ok());
  EXPECT_EQ(n, got.size());
  EXPECT_EQ(got, std::string(10000, 'f'));
  ASSERT_TRUE(base->RemoveDirRecursively(dir).ok());
}

// Deterministic refusal coverage (modern tmpfs accepts O_DIRECT, so the
// natural refusal vehicle is kernel-dependent): every open refuses, every
// file degrades to buffered, and the data is byte-identical to the direct
// path's.
TEST_F(IoBackendTest, ForcedRefusalFallsBackAndStaysCorrect) {
  auto refusing = internal::NewDirectIOEnvRefusingODirectForTest();
  {
    std::unique_ptr<RandomWriteFile> w;
    ASSERT_TRUE(refusing->NewRandomWriteFile(Path("ref"), &w).ok());
    std::string payload(50000, 'r');
    ASSERT_TRUE(w->WriteAt(7, payload.data(), payload.size()).ok());
    ASSERT_TRUE(w->Flush().ok());
    ASSERT_TRUE(w->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(refusing->NewRandomAccessFile(Path("ref"), &r).ok());
  std::string got(50000, '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(7, got.size(), got.data(), &n).ok());
  EXPECT_EQ(n, got.size());
  EXPECT_EQ(got, std::string(50000, 'r'));
  // Missing files still report NotFound, not a fallback attempt.
  std::unique_ptr<RandomAccessFile> missing;
  EXPECT_TRUE(
      refusing->NewRandomAccessFile(Path("nope"), &missing).IsNotFound());
}

// The buffered base paths (append + the write-temp/Sync/rename commit) must
// behave identically on the direct Env — the checkpoint protocol runs
// through them unchanged.
TEST_F(IoBackendTest, DirectEnvServesDurableCommitProtocol) {
  auto direct = NewDirectIOEnv();
  ASSERT_TRUE(
      WriteStringToFileDurable(direct.get(), Path("rec"), "record v1").ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(direct.get(), Path("rec"), &contents).ok());
  EXPECT_EQ(contents, "record v1");
  ASSERT_TRUE(
      WriteStringToFileDurable(direct.get(), Path("rec"), "record v2").ok());
  ASSERT_TRUE(ReadFileToString(Env::Default(), Path("rec"), &contents).ok());
  EXPECT_EQ(contents, "record v2");
}

// ---- UringEnv -------------------------------------------------------------

TEST_F(IoBackendTest, UringRoundTripAndShortReads) {
  if (!UringSupported()) GTEST_SKIP() << "io_uring unavailable";
  auto uring = NewUringEnv();
  ASSERT_NE(uring, nullptr);
  const size_t size = 100000;  // deliberately unaligned everywhere
  {
    std::unique_ptr<RandomWriteFile> w;
    ASSERT_TRUE(uring->NewRandomWriteFile(Path("u"), &w).ok());
    std::string payload(size, '\0');
    for (size_t k = 0; k < size; ++k) {
      payload[k] = static_cast<char>('a' + k % 26);
    }
    // Two disjoint writes from two threads through the shared ring.
    std::thread other([&] {
      ASSERT_TRUE(
          w->WriteAt(size / 2, payload.data() + size / 2, size - size / 2)
              .ok());
    });
    ASSERT_TRUE(w->WriteAt(0, payload.data(), size / 2).ok());
    other.join();
    ASSERT_TRUE(w->Flush().ok());
    ASSERT_TRUE(w->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(uring->NewRandomAccessFile(Path("u"), &r).ok());
  std::string got(size, '\0');
  size_t n = 0;
  ASSERT_TRUE(r->ReadAt(0, size, got.data(), &n).ok());
  ASSERT_EQ(n, size);
  for (size_t k = 0; k < size; ++k) {
    ASSERT_EQ(got[k], static_cast<char>('a' + k % 26)) << "byte " << k;
  }
  // Short read at EOF.
  char buf[64];
  ASSERT_TRUE(r->ReadAt(size - 10, sizeof(buf), buf, &n).ok());
  EXPECT_EQ(n, 10u);
  ASSERT_TRUE(r->ReadAt(size + 100, sizeof(buf), buf, &n).ok());
  EXPECT_EQ(n, 0u);
}

TEST_F(IoBackendTest, UringConcurrentReaders) {
  if (!UringSupported()) GTEST_SKIP() << "io_uring unavailable";
  auto uring = NewUringEnv();
  ASSERT_NE(uring, nullptr);
  const size_t size = 1 << 20;
  {
    std::unique_ptr<RandomWriteFile> w;
    ASSERT_TRUE(uring->NewRandomWriteFile(Path("cr"), &w).ok());
    std::string payload(size, '\0');
    for (size_t k = 0; k < size; ++k) {
      payload[k] = static_cast<char>(k % 251);
    }
    ASSERT_TRUE(w->WriteAt(0, payload.data(), size).ok());
    ASSERT_TRUE(w->Close().ok());
  }
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(uring->NewRandomAccessFile(Path("cr"), &r).ok());
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      const size_t chunk = size / 8;
      const size_t off = static_cast<size_t>(t) * chunk;
      std::string got(chunk, '\0');
      size_t n = 0;
      ASSERT_TRUE(r->ReadAt(off, chunk, got.data(), &n).ok());
      ASSERT_EQ(n, chunk);
      for (size_t k = 0; k < chunk; ++k) {
        ASSERT_EQ(static_cast<unsigned char>(got[k]), (off + k) % 251);
      }
    });
  }
  for (auto& th : readers) th.join();
}

// ---- engine parity matrix -------------------------------------------------

// Engine results must be bit-identical across io_backend on a real-disk
// store (the acceptance bar for backends: they change timing, never bytes),
// and RunStats must report the backend that actually served the run.
class IoBackendEngineTest : public IoBackendTest {
 protected:
  std::shared_ptr<GraphStore> BuildDiskStore(uint32_t p) {
    EdgeList edges = testing::RandomGraph(500, 6000, 97);
    BuildOptions options;
    options.num_intervals = p;
    options.build_transpose = true;
    auto store = BuildGraphStore(edges, Path("store"), options);
    NX_CHECK(store.ok()) << store.status().ToString();
    return *store;
  }

  static const char* Effective(IoBackend requested) {
    if (requested == IoBackend::kUring && !UringSupported()) return "buffered";
    return IoBackendName(requested);
  }
};

TEST_F(IoBackendEngineTest, PageRankParityAcrossBackends) {
  auto store = BuildDiskStore(6);
  PageRankProgram program;
  program.num_vertices = store->num_vertices();

  std::vector<double> baseline;
  for (UpdateStrategy strategy :
       {UpdateStrategy::kDoublePhase, UpdateStrategy::kMixedPhase}) {
    baseline.clear();
    for (IoBackend backend :
         {IoBackend::kBuffered, IoBackend::kDirect, IoBackend::kUring}) {
      RunOptions opt;
      opt.strategy = strategy;
      if (strategy == UpdateStrategy::kMixedPhase) {
        // About half the intervals resident, nothing left to cache shards:
        // streams rows, writes hubs AND interval segments.
        opt.memory_budget_bytes = store->num_vertices() * sizeof(double) +
                                  store->num_vertices() * 4;
      }
      opt.max_iterations = 4;
      opt.num_threads = 3;
      opt.io_threads = 2;
      opt.io_backend = backend;
      opt.scratch_dir = Path("run_" + std::string(IoBackendName(backend)));
      Engine<PageRankProgram> engine(store, program, opt);
      auto stats = engine.Run();
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->io_backend, Effective(backend));
      if (baseline.empty()) {
        baseline = engine.values();
      } else {
        EXPECT_EQ(engine.values(), baseline)
            << "backend " << IoBackendName(backend);
      }
    }
  }
}

TEST_F(IoBackendEngineTest, WccParityAcrossBackends) {
  auto store = BuildDiskStore(4);
  WccProgram program;

  std::vector<uint32_t> baseline;
  for (IoBackend backend :
       {IoBackend::kBuffered, IoBackend::kDirect, IoBackend::kUring}) {
    RunOptions opt;
    opt.strategy = UpdateStrategy::kDoublePhase;
    opt.direction = EdgeDirection::kBoth;
    opt.num_threads = 3;
    opt.io_threads = 2;
    opt.io_backend = backend;
    opt.scratch_dir = Path("wcc_" + std::string(IoBackendName(backend)));
    Engine<WccProgram> engine(store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->io_backend, Effective(backend));
    if (baseline.empty()) {
      baseline = engine.values();
    } else {
      EXPECT_EQ(engine.values(), baseline)
          << "backend " << IoBackendName(backend);
    }
  }
}

// Checkpoint + resume must work identically through a backend Env (the
// record's commit protocol rides the buffered base paths).
TEST_F(IoBackendEngineTest, DirectBackendCheckpointResumeParity) {
  if (!DirectIOSupported(root_)) GTEST_SKIP() << "no O_DIRECT on /tmp";
  auto store = BuildDiskStore(5);
  PageRankProgram program;
  program.num_vertices = store->num_vertices();

  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 4;
  opt.num_threads = 2;
  opt.io_backend = IoBackend::kDirect;
  opt.checkpoint_interval = 1;
  opt.scratch_dir = Path("ckpt");

  RunOptions full = opt;
  full.scratch_dir = Path("ckpt_full");
  Engine<PageRankProgram> reference(store, program, full);
  ASSERT_TRUE(reference.Run().ok());

  // Run 2 iterations, then "crash" and resume to 4.
  RunOptions half = opt;
  half.max_iterations = 2;
  {
    Engine<PageRankProgram> first(store, program, half);
    ASSERT_TRUE(first.Run().ok());
  }
  Engine<PageRankProgram> resumed(store, program, opt);
  auto stats = resumed.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->resumed_from_iteration, 2);
  EXPECT_EQ(stats->iterations, 4);
  EXPECT_EQ(resumed.values(), reference.values());
}

// The engine may hold the ONLY reference to the store when the backend
// reopen replaces it mid-Prepare; everything bound to the original store
// (its Manifest above all) must stay valid through setup. Run under ASan,
// this is the regression test for the reopen lifetime.
TEST_F(IoBackendEngineTest, EngineOwningSoleStoreReferenceSurvivesReopen) {
  auto store = BuildDiskStore(4);
  PageRankProgram program;
  program.num_vertices = store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.num_threads = 2;
  opt.io_backend = IoBackend::kDirect;
  opt.checkpoint_interval = 1;  // fingerprints the manifest after the reopen
  opt.scratch_dir = Path("sole");
  Engine<PageRankProgram> engine(std::move(store), program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->iterations, 2);
}

// Stores not on the real filesystem keep their own Env: the request is
// downgraded and reported as buffered.
TEST(IoBackendEngineFallbackTest, MemStoreDowngradesToBuffered) {
  EdgeList edges = testing::RandomGraph(200, 2000, 11);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.io_backend = IoBackend::kDirect;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->io_backend, "buffered");
}

}  // namespace
}  // namespace nxgraph
