// Engine correctness: every strategy (SPU/DPU/MPU) under both sync modes
// and several thread counts must match the single-threaded references.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algos/programs.h"
#include "src/algos/reference.h"
#include "src/engine/engine.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

struct EngineConfig {
  UpdateStrategy strategy;
  SyncMode sync;
  int threads;
  uint32_t p;
};

std::string ConfigName(const ::testing::TestParamInfo<EngineConfig>& info) {
  const auto& c = info.param;
  std::string name;
  switch (c.strategy) {
    case UpdateStrategy::kSinglePhase:
      name += "SPU";
      break;
    case UpdateStrategy::kDoublePhase:
      name += "DPU";
      break;
    case UpdateStrategy::kMixedPhase:
      name += "MPU";
      break;
    case UpdateStrategy::kAuto:
      name += "Auto";
      break;
  }
  name += c.sync == SyncMode::kCallback ? "Callback" : "Lock";
  name += "T" + std::to_string(c.threads);
  name += "P" + std::to_string(c.p);
  return name;
}

class EngineStrategyTest : public ::testing::TestWithParam<EngineConfig> {
 protected:
  RunOptions Options() const {
    const EngineConfig& c = GetParam();
    RunOptions opt;
    opt.strategy = c.strategy;
    opt.sync_mode = c.sync;
    opt.num_threads = c.threads;
    if (c.strategy == UpdateStrategy::kMixedPhase) {
      // Budget sized so roughly half the intervals stay resident.
      opt.memory_budget_bytes = 1 << 16;
    }
    return opt;
  }
};

TEST_P(EngineStrategyTest, PageRankMatchesPowerIteration) {
  EdgeList edges = testing::RandomGraph(400, 4000, 21);
  auto ms = testing::BuildMemStore(edges, GetParam().p);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 5);

  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt = Options();
  opt.max_iterations = 5;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->iterations, 5);
  ASSERT_EQ(engine.values().size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    EXPECT_NEAR(engine.values()[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST_P(EngineStrategyTest, BfsMatchesReference) {
  EdgeList edges = testing::RandomGraph(300, 1800, 22);
  auto ms = testing::BuildMemStore(edges, GetParam().p);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferenceBfs(*ref_graph, 0);

  BfsProgram program;
  program.root = 0;
  Engine<BfsProgram> engine(ms.store, program, Options());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(engine.values(), expected);
}

TEST_P(EngineStrategyTest, WccMatchesUnionFind) {
  EdgeList edges = testing::RandomGraph(250, 600, 23);  // sparse: many CCs
  auto ms = testing::BuildMemStore(edges, GetParam().p);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferenceWcc(*ref_graph);

  WccProgram program;
  RunOptions opt = Options();
  opt.direction = EdgeDirection::kBoth;
  Engine<WccProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(engine.values(), expected);
}

TEST_P(EngineStrategyTest, SsspMatchesDijkstra) {
  EdgeList edges = testing::RandomGraph(200, 1500, 24, /*weighted=*/true);
  auto ms = testing::BuildMemStore(edges, GetParam().p);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferenceSssp(*ref_graph, 0);

  SsspProgram program;
  program.root = 0;
  Engine<SsspProgram> engine(ms.store, program, Options());
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(engine.values().size(), expected.size());
  for (size_t v = 0; v < expected.size(); ++v) {
    if (std::isinf(expected[v])) {
      EXPECT_TRUE(std::isinf(engine.values()[v])) << "vertex " << v;
    } else {
      EXPECT_NEAR(engine.values()[v], expected[v], 1e-4) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, EngineStrategyTest,
    ::testing::Values(
        EngineConfig{UpdateStrategy::kSinglePhase, SyncMode::kCallback, 0, 4},
        EngineConfig{UpdateStrategy::kSinglePhase, SyncMode::kCallback, 3, 4},
        EngineConfig{UpdateStrategy::kSinglePhase, SyncMode::kLock, 3, 4},
        EngineConfig{UpdateStrategy::kSinglePhase, SyncMode::kLock, 1, 7},
        EngineConfig{UpdateStrategy::kDoublePhase, SyncMode::kCallback, 0, 4},
        EngineConfig{UpdateStrategy::kDoublePhase, SyncMode::kCallback, 3, 5},
        EngineConfig{UpdateStrategy::kDoublePhase, SyncMode::kLock, 2, 4},
        EngineConfig{UpdateStrategy::kMixedPhase, SyncMode::kCallback, 0, 4},
        EngineConfig{UpdateStrategy::kMixedPhase, SyncMode::kCallback, 3, 6},
        EngineConfig{UpdateStrategy::kMixedPhase, SyncMode::kLock, 2, 5},
        EngineConfig{UpdateStrategy::kAuto, SyncMode::kCallback, 2, 4}),
    ConfigName);

TEST(EngineTest, BfsTerminatesByActivity) {
  // A simple path: BFS needs exactly path-length iterations, then all
  // intervals go inactive.
  EdgeList edges;
  for (uint32_t v = 0; v < 32; ++v) edges.Add(v, v + 1);
  auto ms = testing::BuildMemStore(edges, 4);
  BfsProgram program;
  program.root = 0;
  RunOptions opt;
  opt.num_threads = 2;
  Engine<BfsProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->iterations, 32);
  EXPECT_LE(stats->iterations, 34);
  EXPECT_EQ(engine.values()[32], 32u);
}

TEST(EngineTest, MonotoneSkippingTraversesFewerEdges) {
  // With interval-activity skipping, a BFS from an isolated corner of a
  // disconnected graph should not touch most sub-shards every iteration.
  EdgeList edges;
  for (uint32_t v = 0; v < 64; ++v) edges.Add(v, (v + 1) % 64);  // a cycle
  edges.Add(100, 101);  // tiny far-away component
  auto ms = testing::BuildMemStore(edges, 8);
  BfsProgram program;
  program.root = ms.store->num_vertices() - 2;  // the tiny component
  RunOptions opt;
  Engine<BfsProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  // Full scans would traverse 65 edges * iterations; skipping should keep
  // the traversal close to the component size.
  EXPECT_LT(stats->edges_traversed, 65u * stats->iterations);
}

TEST(EngineTest, MaxIterationsCapsRun) {
  EdgeList edges = testing::RandomGraph(100, 800, 25);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.max_iterations = 3;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->iterations, 3);
  EXPECT_EQ(stats->iteration_seconds.size(), 3u);
}

TEST(EngineTest, PageRankToleranceStopsEarly) {
  EdgeList edges = testing::RandomGraph(100, 800, 26);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  program.tolerance = 1.0;  // everything counts as converged
  RunOptions opt;
  opt.max_iterations = 50;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->iterations, 1);  // one sweep, then all inactive
}

TEST(EngineTest, StatsAccountIo) {
  EdgeList edges = testing::RandomGraph(200, 3000, 27);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->strategy, "DPU");
  // DPU must write hubs + intervals and read them back.
  EXPECT_GT(stats->bytes_written, 0u);
  EXPECT_GT(stats->bytes_read, 0u);
  EXPECT_EQ(stats->edges_traversed, 2u * 3000u);
}

TEST(EngineTest, SpuTraversesEveryEdgeEachIteration) {
  EdgeList edges = testing::RandomGraph(100, 1000, 28);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.max_iterations = 4;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->strategy, "SPU");
  EXPECT_EQ(stats->edges_traversed, 4u * 1000u);
}

TEST(EngineTest, TransposeDirectionRequiresTransposeStore) {
  EdgeList edges = testing::RandomGraph(50, 300, 29);
  auto ms = testing::BuildMemStore(edges, 2, /*transpose=*/false);
  WccProgram program;
  RunOptions opt;
  opt.direction = EdgeDirection::kBoth;
  Engine<WccProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsInvalidArgument());
}

TEST(EngineTest, SpuStreamingRowsMatchesReference) {
  // Force SPU with a budget that fits the vertex state but none of the
  // sub-shards: the engine must take the streamlined row-streaming path
  // and still compute the exact fixpoint.
  EdgeList edges = testing::RandomGraph(300, 4500, 31);
  auto ms = testing::BuildMemStore(edges, 5);
  auto ref_graph = LoadReferenceGraph(*ms.store);
  ASSERT_TRUE(ref_graph.ok());
  const auto expected = ReferencePageRank(*ref_graph, 0.85, 6);

  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kSinglePhase;
  opt.num_threads = 2;
  opt.max_iterations = 6;
  opt.memory_budget_bytes =
      2 * ms.store->num_vertices() * sizeof(double) +
      ms.store->num_vertices() * 4 + 1024;  // state + degrees + scraps
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Streaming re-reads sub-shards every iteration.
  EXPECT_GT(stats->bytes_read,
            5u * ms.store->TotalSubShardBytes(false));
  for (size_t v = 0; v < expected.size(); ++v) {
    ASSERT_NEAR(engine.values()[v], expected[v], 1e-9) << "vertex " << v;
  }
}

TEST(EngineTest, StreamingAndCachedRunsAgreeExactly) {
  EdgeList edges = testing::RandomGraph(250, 3000, 32);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();

  RunOptions cached;
  cached.max_iterations = 5;
  cached.num_threads = 2;
  Engine<PageRankProgram> cached_engine(ms.store, program, cached);
  ASSERT_TRUE(cached_engine.Run().ok());

  RunOptions streaming = cached;
  streaming.strategy = UpdateStrategy::kSinglePhase;
  streaming.memory_budget_bytes =
      2 * ms.store->num_vertices() * sizeof(double) +
      ms.store->num_vertices() * 4 + 1;
  Engine<PageRankProgram> streaming_engine(ms.store, program, streaming);
  ASSERT_TRUE(streaming_engine.Run().ok());

  // Row-major accumulation order is identical in both schedules, so even
  // the floating-point results match bit for bit.
  EXPECT_EQ(cached_engine.values(), streaming_engine.values());
}

// ---- prefetch pipeline ----------------------------------------------------

TEST(EnginePrefetchTest, StreamingParityAcrossPrefetchDepths) {
  // Streaming-vs-cached parity: under a budget that fits vertex state but
  // no sub-shards, every prefetch depth must reproduce the cached run's
  // values bit for bit (FIFO consumption keeps the accumulation order).
  EdgeList edges = testing::RandomGraph(250, 3000, 41);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();

  RunOptions cached;
  cached.max_iterations = 5;
  cached.num_threads = 2;
  Engine<PageRankProgram> cached_engine(ms.store, program, cached);
  ASSERT_TRUE(cached_engine.Run().ok());

  for (int depth : {0, 1, 4}) {
    RunOptions streaming = cached;
    streaming.strategy = UpdateStrategy::kSinglePhase;
    streaming.prefetch_depth = depth;
    streaming.memory_budget_bytes =
        2 * ms.store->num_vertices() * sizeof(double) +
        ms.store->num_vertices() * 4 + 1;
    Engine<PageRankProgram> streaming_engine(ms.store, program, streaming);
    auto stats = streaming_engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->prefetch_depth, depth == 0 ? 0u : 1u)
        << "tiny budget clamps the window to double buffering";
    EXPECT_EQ(cached_engine.values(), streaming_engine.values())
        << "depth " << depth;
  }
}

TEST(EnginePrefetchTest, WccStreamingParityAcrossPrefetchDepths) {
  EdgeList edges = testing::RandomGraph(200, 900, 42);
  auto ms = testing::BuildMemStore(edges, 4);
  WccProgram program;

  RunOptions cached;
  cached.direction = EdgeDirection::kBoth;
  cached.num_threads = 2;
  Engine<WccProgram> cached_engine(ms.store, program, cached);
  ASSERT_TRUE(cached_engine.Run().ok());

  for (int depth : {0, 1, 4}) {
    RunOptions streaming = cached;
    streaming.strategy = UpdateStrategy::kSinglePhase;
    streaming.prefetch_depth = depth;
    streaming.memory_budget_bytes =
        2 * ms.store->num_vertices() * sizeof(uint32_t) +
        2 * ms.store->num_vertices() * 4 + 1;
    Engine<WccProgram> streaming_engine(ms.store, program, streaming);
    auto stats = streaming_engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(cached_engine.values(), streaming_engine.values())
        << "depth " << depth;
  }
}

TEST(EnginePrefetchTest, DpuParityAcrossPrefetchDepths) {
  // Forced DPU exercises the Phase B (interval values + rows) and Phase C
  // (hub reads + write-back values) pipelines.
  EdgeList edges = testing::RandomGraph(300, 4000, 43);
  auto ms = testing::BuildMemStore(edges, 5);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();

  std::vector<double> baseline;
  for (int depth : {0, 2, 4}) {
    RunOptions opt;
    opt.strategy = UpdateStrategy::kDoublePhase;
    opt.max_iterations = 4;
    opt.num_threads = 3;
    opt.prefetch_depth = depth;
    opt.io_threads = 2;
    Engine<PageRankProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->strategy, "DPU");
    if (baseline.empty()) {
      baseline = engine.values();
    } else {
      EXPECT_EQ(engine.values(), baseline) << "depth " << depth;
    }
  }
}

TEST(EnginePrefetchTest, StatsReportPhaseAndIoWaitSeconds) {
  EdgeList edges = testing::RandomGraph(200, 2500, 44);
  auto ms = testing::BuildMemStore(edges, 4);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.num_threads = 2;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok());
  // DPU spends all edge work in phases B and C (A and D are no-op calls
  // whose timing is scheduler noise, so no ratio assertion).
  EXPECT_GT(stats->phase_b_seconds, 0.0);
  EXPECT_GT(stats->phase_c_seconds, 0.0);
  EXPECT_GE(stats->io_wait_seconds, 0.0);
  // Prefetch is on by default for out-of-core runs.
  EXPECT_GE(stats->prefetch_depth, 1u);
  EXPECT_GE(stats->io_threads, 1);
}

TEST(EnginePrefetchTest, CorruptBlobFailsCleanlyMidPipeline) {
  // A checksum failure deep in a prefetched run must surface as a
  // Corruption error and shut the pipeline down without hanging.
  EdgeList edges = testing::RandomGraph(200, 3000, 45);
  auto ms = testing::BuildMemStore(edges, 4);
  std::string data;
  ASSERT_TRUE(ReadFileToString(ms.env.get(), "g/subshards.nxs", &data).ok());
  data[data.size() * 3 / 4] ^= 0xFF;
  ASSERT_TRUE(WriteStringToFile(ms.env.get(), "g/subshards.nxs", data).ok());
  auto store = OpenGraphStore("g", ms.env.get());
  ASSERT_TRUE(store.ok());

  PageRankProgram program;
  program.num_vertices = (*store)->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.num_threads = 2;
  opt.prefetch_depth = 4;
  Engine<PageRankProgram> engine(*store, program, opt);
  auto stats = engine.Run();
  ASSERT_FALSE(stats.ok());
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status().ToString();
}

// ---- sub-shard format parity ----------------------------------------------

// The acceptance matrix for the NXS2 format: every algorithm x strategy
// must produce BIT-IDENTICAL results from an NXS1 store and an NXS2 store
// of the same graph — the format changes bytes on disk, nothing else.
TEST(EngineFormatTest, ResultsBitIdenticalAcrossFormats) {
  EdgeList plain = testing::RandomGraph(300, 3000, 31);
  EdgeList weighted = testing::RandomGraph(300, 3000, 32, /*weighted=*/true);
  struct StrategyCase {
    UpdateStrategy strategy;
    uint64_t budget;
  };
  const StrategyCase strategies[] = {
      {UpdateStrategy::kSinglePhase, 0},
      {UpdateStrategy::kDoublePhase, 0},
      {UpdateStrategy::kMixedPhase, 1 << 16},
  };
  auto ms1 = testing::BuildMemStore(plain, 4, true, SubShardFormat::kNxs1);
  auto ms2 = testing::BuildMemStore(plain, 4, true, SubShardFormat::kNxs2);
  auto msw1 =
      testing::BuildMemStore(weighted, 4, true, SubShardFormat::kNxs1);
  auto msw2 =
      testing::BuildMemStore(weighted, 4, true, SubShardFormat::kNxs2);

  for (const auto& c : strategies) {
    RunOptions opt;
    opt.strategy = c.strategy;
    opt.memory_budget_bytes = c.budget;
    opt.num_threads = 2;

    {
      PageRankProgram program;
      program.num_vertices = ms1.store->num_vertices();
      RunOptions pr = opt;
      pr.max_iterations = 4;
      Engine<PageRankProgram> e1(ms1.store, program, pr);
      Engine<PageRankProgram> e2(ms2.store, program, pr);
      ASSERT_TRUE(e1.Run().ok());
      ASSERT_TRUE(e2.Run().ok());
      EXPECT_EQ(e1.values(), e2.values()) << "PageRank";
    }
    {
      WccProgram program;
      RunOptions wc = opt;
      wc.direction = EdgeDirection::kBoth;
      Engine<WccProgram> e1(ms1.store, program, wc);
      Engine<WccProgram> e2(ms2.store, program, wc);
      ASSERT_TRUE(e1.Run().ok());
      ASSERT_TRUE(e2.Run().ok());
      EXPECT_EQ(e1.values(), e2.values()) << "WCC";
    }
    {
      BfsProgram program;
      program.root = 0;
      Engine<BfsProgram> e1(ms1.store, program, opt);
      Engine<BfsProgram> e2(ms2.store, program, opt);
      ASSERT_TRUE(e1.Run().ok());
      ASSERT_TRUE(e2.Run().ok());
      EXPECT_EQ(e1.values(), e2.values()) << "BFS";
    }
    {
      SsspProgram program;
      program.root = 0;
      Engine<SsspProgram> e1(msw1.store, program, opt);
      Engine<SsspProgram> e2(msw2.store, program, opt);
      ASSERT_TRUE(e1.Run().ok());
      ASSERT_TRUE(e2.Run().ok());
      EXPECT_EQ(e1.values(), e2.values()) << "SSSP";
    }
  }
}

// env_bytes_read measures the compression win at the Env layer: the same
// streamed PageRank moves materially fewer bytes from an NXS2 store.
TEST(EngineFormatTest, EnvCountersMeasureByteReduction) {
  EdgeList edges = testing::RandomGraph(400, 6000, 33);
  auto run = [&edges](SubShardFormat f) {
    auto ms = testing::BuildMemStore(edges, 4, /*transpose=*/false, f);
    PageRankProgram program;
    program.num_vertices = ms.store->num_vertices();
    RunOptions opt;
    opt.strategy = UpdateStrategy::kSinglePhase;
    opt.max_iterations = 3;
    opt.num_threads = 2;
    // Stream mode: state + degrees + one window slot, but far below the
    // decoded graph, so every iteration re-reads the shard file.
    opt.memory_budget_bytes =
        2 * ms.store->num_vertices() * sizeof(double) +
        ms.store->num_vertices() * 4 + 4096;
    Engine<PageRankProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    NX_CHECK(stats.ok()) << stats.status().ToString();
    return std::make_pair(*stats, ms.store->TotalSubShardBytes(false));
  };
  auto [s1, bytes1] = run(SubShardFormat::kNxs1);
  auto [s2, bytes2] = run(SubShardFormat::kNxs2);
  ASSERT_GT(s1.env_bytes_read, 0u);
  ASSERT_GT(s2.env_bytes_read, 0u);
  // The streamed shard reads dominate; the interval/degree traffic is
  // identical across formats, so the measured ratio tracks the store-size
  // ratio. Require a material reduction.
  EXPECT_LT(bytes2, bytes1);
  EXPECT_LT(s2.env_bytes_read + bytes1 - bytes2, s1.env_bytes_read + 1);
  // Engine-accounted reads track the manifest sizes, so they shrink too.
  EXPECT_LT(s2.bytes_read, s1.bytes_read);
}

TEST(EngineTest, EnvCountersCoverReadsAndWrites) {
  // A DPU run must show Env-measured reads AND writes (interval segments +
  // hub payloads land through the Env), and the measured reads can never
  // be smaller than the shard bytes a streamed iteration provably moved.
  EdgeList edges = testing::RandomGraph(200, 2000, 34);
  auto ms = testing::BuildMemStore(edges, 4, false);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  RunOptions opt;
  opt.strategy = UpdateStrategy::kDoublePhase;
  opt.max_iterations = 2;
  opt.num_threads = 2;
  Engine<PageRankProgram> engine(ms.store, program, opt);
  auto stats = engine.Run();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->env_bytes_read,
            ms.store->TotalSubShardBytes(false));  // >= 2 iterations of rows
  EXPECT_GT(stats->env_bytes_written, 0u);
}

TEST(EngineTest, ResultsIdenticalAcrossThreadCounts) {
  EdgeList edges = testing::RandomGraph(500, 6000, 30);
  auto ms = testing::BuildMemStore(edges, 6);
  PageRankProgram program;
  program.num_vertices = ms.store->num_vertices();
  std::vector<double> baseline;
  for (int threads : {0, 1, 2, 4}) {
    RunOptions opt;
    opt.num_threads = threads;
    opt.max_iterations = 4;
    Engine<PageRankProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok());
    if (baseline.empty()) {
      baseline = engine.values();
    } else {
      // Destination-owned accumulation makes the FP reduction order
      // deterministic regardless of the thread count.
      EXPECT_EQ(engine.values(), baseline) << threads << " threads";
    }
  }
}

// The SIMD decode path is a pure accelerator: force-scalar and force-simd
// runs are bit-identical on both on-disk formats, and RunStats reports
// which path ran plus the bulk-decode counters.
TEST(EngineDecodeTest, ResultsBitIdenticalAcrossDecodePaths) {
  EdgeList plain = testing::RandomGraph(300, 3000, 41);
  EdgeList weighted = testing::RandomGraph(300, 3000, 42, /*weighted=*/true);
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    SCOPED_TRACE(SubShardFormatName(f));
    auto ms = testing::BuildMemStore(plain, 4, true, f);
    auto msw = testing::BuildMemStore(weighted, 4, true, f);

    RunOptions scalar;
    scalar.num_threads = 2;
    scalar.simd_decode = SimdDecode::kForceScalar;
    // Stream mode for half the programs so the decode path runs every
    // iteration, not just at first touch.
    RunOptions simd = scalar;
    simd.simd_decode = SimdDecode::kForceSimd;

    {
      PageRankProgram program;
      program.num_vertices = ms.store->num_vertices();
      RunOptions a = scalar, b = simd;
      a.max_iterations = b.max_iterations = 4;
      Engine<PageRankProgram> e1(ms.store, program, a);
      auto s1 = e1.Run();
      ASSERT_TRUE(s1.ok());
      Engine<PageRankProgram> e2(ms.store, program, b);
      auto s2 = e2.Run();
      ASSERT_TRUE(s2.ok());
      EXPECT_EQ(e1.values(), e2.values()) << "PageRank";
      EXPECT_EQ(s1->decode_path, "scalar");
      EXPECT_EQ(s2->decode_path,
                DecodePathName(ResolveDecodePath(SimdDecode::kForceSimd)));
      if (f == SubShardFormat::kNxs2) {
        // NXS2 decoding goes through the bulk API on every path; NXS1 is a
        // raw memcpy format and never does.
        EXPECT_GT(s1->bulk_decode_calls, 0u);
        EXPECT_GT(s2->bulk_decode_calls, 0u);
        EXPECT_EQ(s1->bulk_decode_calls, s2->bulk_decode_calls);
      } else {
        EXPECT_EQ(s1->bulk_decode_calls, 0u);
      }
    }
    {
      SsspProgram program;
      program.root = 0;
      Engine<SsspProgram> e1(msw.store, program, scalar);
      Engine<SsspProgram> e2(msw.store, program, simd);
      ASSERT_TRUE(e1.Run().ok());
      ASSERT_TRUE(e2.Run().ok());
      EXPECT_EQ(e1.values(), e2.values()) << "SSSP";
    }
    {
      // Streaming: a tight budget forces re-reads (and re-decodes) every
      // iteration through the prefetch pipeline.
      WccProgram program;
      RunOptions a = scalar, b = simd;
      a.direction = b.direction = EdgeDirection::kBoth;
      a.memory_budget_bytes = b.memory_budget_bytes =
          2 * ms.store->num_vertices() * sizeof(uint32_t) +
          ms.store->num_vertices() * 4 + 4096;
      a.prefetch_depth = b.prefetch_depth = 2;
      a.io_threads = b.io_threads = 1;
      Engine<WccProgram> e1(ms.store, program, a);
      auto s1 = e1.Run();
      ASSERT_TRUE(s1.ok()) << s1.status().ToString();
      Engine<WccProgram> e2(ms.store, program, b);
      auto s2 = e2.Run();
      ASSERT_TRUE(s2.ok()) << s2.status().ToString();
      EXPECT_EQ(e1.values(), e2.values()) << "WCC streamed";
      if (f == SubShardFormat::kNxs2) {
        EXPECT_EQ(s1->bulk_decode_calls, s2->bulk_decode_calls);
        EXPECT_GT(s2->bulk_decode_calls, 0u);
        EXPECT_GT(s2->decode_seconds, 0.0);
      }
    }
  }
}

// NXGRAPH_SIMD caps the auto path but never affects forced modes.
TEST(EngineDecodeTest, RunStatsReportResolvedDecodePath) {
  EdgeList edges = testing::RandomGraph(100, 800, 43);
  auto ms = testing::BuildMemStore(edges, 2, false, SubShardFormat::kNxs2);
  BfsProgram program;
  program.root = 0;
  for (SimdDecode mode : {SimdDecode::kAuto, SimdDecode::kForceScalar,
                          SimdDecode::kForceSimd}) {
    RunOptions opt;
    opt.simd_decode = mode;
    Engine<BfsProgram> engine(ms.store, program, opt);
    auto stats = engine.Run();
    ASSERT_TRUE(stats.ok());
    EXPECT_EQ(stats->decode_path, DecodePathName(ResolveDecodePath(mode)));
    EXPECT_GT(stats->bulk_decode_calls, 0u);
  }
}

}  // namespace
}  // namespace nxgraph
