#include <gtest/gtest.h>

#include <cstring>

#include "src/prep/sharder.h"
#include "src/storage/hub_file.h"
#include "src/storage/interval_store.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

Manifest SmallManifest(uint64_t n, uint32_t p) {
  Manifest m;
  m.num_vertices = n;
  m.num_edges = 0;
  m.num_intervals = p;
  m.interval_offsets = MakeEqualIntervals(n, p);
  m.subshards.assign(static_cast<size_t>(p) * p, SubShardMeta{});
  return m;
}

TEST(IntervalStoreTest, PingPongRoundTrip) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(100, 4);
  auto store = IntervalStore::Create(env.get(), "v.nxi", m, sizeof(double));
  ASSERT_TRUE(store.ok());
  std::vector<double> ping(m.interval_size(1), 1.5);
  std::vector<double> pong(m.interval_size(1), -2.5);
  ASSERT_TRUE((*store)->Write(1, 0, ping.data()).ok());
  ASSERT_TRUE((*store)->Write(1, 1, pong.data()).ok());
  std::vector<double> got(m.interval_size(1));
  ASSERT_TRUE((*store)->Read(1, 0, got.data()).ok());
  EXPECT_EQ(got, ping);
  ASSERT_TRUE((*store)->Read(1, 1, got.data()).ok());
  EXPECT_EQ(got, pong);
}

TEST(IntervalStoreTest, IntervalsAreIndependent) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(64, 4);
  auto store = IntervalStore::Create(env.get(), "v.nxi", m, sizeof(uint32_t));
  ASSERT_TRUE(store.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    std::vector<uint32_t> vals(m.interval_size(i), i * 100);
    ASSERT_TRUE((*store)->Write(i, 0, vals.data()).ok());
  }
  for (uint32_t i = 0; i < 4; ++i) {
    std::vector<uint32_t> got(m.interval_size(i));
    ASSERT_TRUE((*store)->Read(i, 0, got.data()).ok());
    for (uint32_t v : got) EXPECT_EQ(v, i * 100);
  }
}

TEST(IntervalStoreTest, UnevenIntervalSizes) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(10, 3);  // sizes 3,4,3 (equal partition of 10)
  auto store = IntervalStore::Create(env.get(), "v.nxi", m, sizeof(float));
  ASSERT_TRUE(store.ok());
  for (uint32_t i = 0; i < 3; ++i) {
    std::vector<float> vals(m.interval_size(i), static_cast<float>(i));
    ASSERT_TRUE((*store)->Write(i, 1, vals.data()).ok());
  }
  for (uint32_t i = 0; i < 3; ++i) {
    std::vector<float> got(m.interval_size(i));
    ASSERT_TRUE((*store)->Read(i, 1, got.data()).ok());
    for (float v : got) EXPECT_EQ(v, static_cast<float>(i));
  }
}

TEST(IntervalStoreTest, ZeroValueBytesRejected) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(10, 2);
  auto store = IntervalStore::Create(env.get(), "v.nxi", m, 0);
  ASSERT_FALSE(store.ok());
  EXPECT_TRUE(store.status().IsInvalidArgument());
}

TEST(HubFileTest, WriteReadRoundTrip) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(100, 4);
  // Give sub-shard (2,3) capacity for 5 destinations.
  m.subshards[2 * 4 + 3].num_dsts = 5;
  auto hub = HubFile::Create(env.get(), "h.nxh", m, /*q=*/2, sizeof(double));
  ASSERT_TRUE(hub.ok());

  std::string payload;
  const uint64_t count = 3;
  payload.append(reinterpret_cast<const char*>(&count), 8);
  for (uint32_t k = 0; k < count; ++k) {
    const VertexId dst = 80 + k;
    const double value = k * 1.5;
    payload.append(reinterpret_cast<const char*>(&dst), 4);
    payload.append(reinterpret_cast<const char*>(&value), 8);
  }
  ASSERT_TRUE((*hub)->WriteHub(2, 3, payload.data(), payload.size()).ok());

  std::string got;
  ASSERT_TRUE((*hub)->ReadHub(2, 3, &got).ok());
  EXPECT_EQ(got, payload);
}

TEST(HubFileTest, OverCapacityRejected) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(100, 2);
  m.subshards[0].num_dsts = 1;  // capacity: 8 + 1 * 12 bytes
  auto hub = HubFile::Create(env.get(), "h.nxh", m, /*q=*/0, sizeof(double));
  ASSERT_TRUE(hub.ok());
  std::string too_big(8 + 2 * 12, 'x');
  Status s = (*hub)->WriteHub(0, 0, too_big.data(), too_big.size());
  EXPECT_TRUE(s.IsInvalidArgument());
}

TEST(HubFileTest, SegmentsAreDisjoint) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(100, 2);
  for (auto& meta : m.subshards) meta.num_dsts = 2;
  auto hub = HubFile::Create(env.get(), "h.nxh", m, /*q=*/0, sizeof(uint32_t));
  ASSERT_TRUE(hub.ok());
  auto make_payload = [](uint32_t tag) {
    std::string payload;
    const uint64_t count = 2;
    payload.append(reinterpret_cast<const char*>(&count), 8);
    for (uint32_t k = 0; k < 2; ++k) {
      const VertexId dst = tag * 10 + k;
      const uint32_t value = tag;
      payload.append(reinterpret_cast<const char*>(&dst), 4);
      payload.append(reinterpret_cast<const char*>(&value), 4);
    }
    return payload;
  };
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 2; ++j) {
      const auto payload = make_payload(i * 2 + j);
      ASSERT_TRUE((*hub)->WriteHub(i, j, payload.data(), payload.size()).ok());
    }
  }
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 2; ++j) {
      std::string got;
      ASSERT_TRUE((*hub)->ReadHub(i, j, &got).ok());
      EXPECT_EQ(got, make_payload(i * 2 + j));
    }
  }
}

TEST(HubFileTest, CorruptCountDetected) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(100, 1);
  m.subshards[0].num_dsts = 2;
  auto hub = HubFile::Create(env.get(), "h.nxh", m, /*q=*/0, sizeof(uint32_t));
  ASSERT_TRUE(hub.ok());
  // Claim far more entries than the segment can hold.
  std::string payload;
  const uint64_t count = 1000;
  payload.append(reinterpret_cast<const char*>(&count), 8);
  ASSERT_TRUE((*hub)->WriteHub(0, 0, payload.data(), payload.size()).ok());
  std::string got;
  Status s = (*hub)->ReadHub(0, 0, &got);
  EXPECT_TRUE(s.IsCorruption());
}

TEST(HubFileTest, QLargerThanPRejected) {
  auto env = NewMemEnv();
  Manifest m = SmallManifest(10, 2);
  auto hub = HubFile::Create(env.get(), "h.nxh", m, /*q=*/5, 4);
  ASSERT_FALSE(hub.ok());
  EXPECT_TRUE(hub.status().IsInvalidArgument());
}

}  // namespace
}  // namespace nxgraph
