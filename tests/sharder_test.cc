#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/io/env.h"
#include "src/prep/degreer.h"
#include "src/prep/manifest.h"
#include "src/prep/sharder.h"
#include "src/storage/graph_store.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

struct BuiltGraph {
  std::unique_ptr<Env> env;
  DegreeResult degrees;
  Manifest manifest;
};

BuiltGraph Build(const EdgeList& edges, uint32_t p, bool transpose = true) {
  BuiltGraph b;
  b.env = NewMemEnv();
  auto degrees = RunDegreer(b.env.get(), edges, "g");
  NX_CHECK(degrees.ok()) << degrees.status().ToString();
  b.degrees = *degrees;
  SharderOptions opt;
  opt.num_intervals = p;
  opt.build_transpose = transpose;
  auto manifest = RunSharder(b.env.get(), "g", b.degrees, opt);
  NX_CHECK(manifest.ok()) << manifest.status().ToString();
  b.manifest = *manifest;
  return b;
}

TEST(MakeEqualIntervalsTest, CoversAllVertices) {
  auto offsets = MakeEqualIntervals(100, 7);
  ASSERT_EQ(offsets.size(), 8u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 100u);
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_GE(offsets[i], offsets[i - 1]);
  }
}

TEST(MakeEqualIntervalsTest, BalancedSizes) {
  auto offsets = MakeEqualIntervals(1000, 16);
  for (size_t i = 1; i < offsets.size(); ++i) {
    const uint32_t size = offsets[i] - offsets[i - 1];
    EXPECT_GE(size, 1000u / 16);
    EXPECT_LE(size, 1000u / 16 + 1);
  }
}

TEST(SharderTest, ManifestShape) {
  EdgeList edges = testing::RandomGraph(200, 2000, 1);
  BuiltGraph b = Build(edges, 4);
  EXPECT_EQ(b.manifest.num_intervals, 4u);
  EXPECT_EQ(b.manifest.subshards.size(), 16u);
  EXPECT_EQ(b.manifest.subshards_transpose.size(), 16u);
  EXPECT_EQ(b.manifest.num_edges, edges.num_edges());
}

TEST(SharderTest, EveryEdgeInExactlyOneSubShard) {
  EdgeList edges = testing::RandomGraph(300, 3000, 2);
  BuiltGraph b = Build(edges, 5);
  uint64_t total = 0;
  for (const auto& meta : b.manifest.subshards) total += meta.num_edges;
  EXPECT_EQ(total, edges.num_edges());
  uint64_t total_t = 0;
  for (const auto& meta : b.manifest.subshards_transpose) {
    total_t += meta.num_edges;
  }
  EXPECT_EQ(total_t, edges.num_edges());
}

TEST(SharderTest, SubShardInvariants) {
  EdgeList edges = testing::RandomGraph(256, 4096, 3);
  BuiltGraph b = Build(edges, 4);
  auto store = GraphStore::Open(b.env.get(), "g");
  ASSERT_TRUE(store.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      auto ss = (*store)->LoadSubShard(i, j);
      ASSERT_TRUE(ss.ok()) << ss.status().ToString();
      // Destinations strictly ascending and within interval j.
      for (uint32_t g = 0; g < ss->num_dsts(); ++g) {
        if (g > 0) EXPECT_LT(ss->dsts[g - 1], ss->dsts[g]);
        EXPECT_GE(ss->dsts[g], b.manifest.interval_begin(j));
        EXPECT_LT(ss->dsts[g], b.manifest.interval_end(j));
        // Sources ascending within a destination group and within
        // interval i.
        for (uint32_t k = ss->offsets[g]; k < ss->offsets[g + 1]; ++k) {
          if (k > ss->offsets[g]) {
            EXPECT_LE(ss->srcs[k - 1], ss->srcs[k]);
          }
          EXPECT_GE(ss->srcs[k], b.manifest.interval_begin(i));
          EXPECT_LT(ss->srcs[k], b.manifest.interval_end(i));
        }
      }
      EXPECT_EQ(ss->offsets.size(), ss->dsts.size() + 1);
      if (!ss->dsts.empty()) {
        EXPECT_EQ(ss->offsets.back(), ss->srcs.size());
      }
    }
  }
}

TEST(SharderTest, TransposeIsExactReverse) {
  EdgeList edges = testing::RandomGraph(100, 800, 4);
  BuiltGraph b = Build(edges, 3);
  auto store = GraphStore::Open(b.env.get(), "g");
  ASSERT_TRUE(store.ok());
  std::multiset<std::pair<VertexId, VertexId>> forward, transposed;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      auto f = (*store)->LoadSubShard(i, j, false);
      auto t = (*store)->LoadSubShard(i, j, true);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(t.ok());
      for (uint32_t g = 0; g < f->num_dsts(); ++g) {
        for (uint32_t k = f->offsets[g]; k < f->offsets[g + 1]; ++k) {
          forward.insert({f->srcs[k], f->dsts[g]});
        }
      }
      for (uint32_t g = 0; g < t->num_dsts(); ++g) {
        for (uint32_t k = t->offsets[g]; k < t->offsets[g + 1]; ++k) {
          transposed.insert({t->dsts[g], t->srcs[k]});
        }
      }
    }
  }
  EXPECT_EQ(forward, transposed);
}

TEST(SharderTest, DedupRemovesDuplicates) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(1, 0);
  auto env = NewMemEnv();
  auto degrees = RunDegreer(env.get(), edges, "g");
  ASSERT_TRUE(degrees.ok());
  SharderOptions opt;
  opt.num_intervals = 1;
  opt.dedup = true;
  opt.build_transpose = false;
  auto manifest = RunSharder(env.get(), "g", *degrees, opt);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->subshards[0].num_edges, 2u);
}

TEST(SharderTest, ClampsIntervalsToVertexCount) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  auto env = NewMemEnv();
  auto degrees = RunDegreer(env.get(), edges, "g");
  ASSERT_TRUE(degrees.ok());
  SharderOptions opt;
  opt.num_intervals = 100;  // only 3 vertices exist
  auto manifest = RunSharder(env.get(), "g", *degrees, opt);
  ASSERT_TRUE(manifest.ok());
  EXPECT_LE(manifest->num_intervals, 3u);
}

TEST(SharderTest, SmallBatchSizeStillCorrect) {
  EdgeList edges = testing::RandomGraph(64, 512, 8);
  auto env = NewMemEnv();
  auto degrees = RunDegreer(env.get(), edges, "g");
  ASSERT_TRUE(degrees.ok());
  SharderOptions opt;
  opt.num_intervals = 4;
  opt.batch_edges = 7;  // force many tiny streaming batches
  auto manifest = RunSharder(env.get(), "g", *degrees, opt);
  ASSERT_TRUE(manifest.ok());
  uint64_t total = 0;
  for (const auto& meta : manifest->subshards) total += meta.num_edges;
  EXPECT_EQ(total, edges.num_edges());
}

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  EdgeList edges = testing::RandomGraph(128, 1024, 9);
  BuiltGraph b = Build(edges, 4);
  auto decoded = Manifest::Decode(b.manifest.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_vertices, b.manifest.num_vertices);
  EXPECT_EQ(decoded->num_edges, b.manifest.num_edges);
  EXPECT_EQ(decoded->interval_offsets, b.manifest.interval_offsets);
  EXPECT_EQ(decoded->subshards.size(), b.manifest.subshards.size());
  for (size_t k = 0; k < decoded->subshards.size(); ++k) {
    EXPECT_EQ(decoded->subshards[k].offset, b.manifest.subshards[k].offset);
    EXPECT_EQ(decoded->subshards[k].num_edges,
              b.manifest.subshards[k].num_edges);
  }
}

TEST(ManifestTest, DetectsCorruption) {
  EdgeList edges = testing::RandomGraph(64, 256, 10);
  BuiltGraph b = Build(edges, 2);
  std::string blob = b.manifest.Encode();
  blob[blob.size() / 2] ^= 0x01;
  auto decoded = Manifest::Decode(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ManifestTest, IntervalOfFindsOwner) {
  EdgeList edges = testing::RandomGraph(100, 500, 11);
  BuiltGraph b = Build(edges, 4);
  for (uint32_t i = 0; i < b.manifest.num_intervals; ++i) {
    EXPECT_EQ(b.manifest.IntervalOf(b.manifest.interval_begin(i)), i);
    EXPECT_EQ(b.manifest.IntervalOf(b.manifest.interval_end(i) - 1), i);
  }
}

}  // namespace
}  // namespace nxgraph
