#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/io/env.h"
#include "src/prep/degreer.h"
#include "src/prep/manifest.h"
#include "src/prep/sharder.h"
#include "src/storage/graph_store.h"
#include "src/util/crc32c.h"
#include "src/util/serialize.h"
#include "tests/test_util.h"

namespace nxgraph {
namespace {

struct BuiltGraph {
  std::unique_ptr<Env> env;
  DegreeResult degrees;
  Manifest manifest;
};

BuiltGraph Build(const EdgeList& edges, uint32_t p, bool transpose = true) {
  BuiltGraph b;
  b.env = NewMemEnv();
  auto degrees = RunDegreer(b.env.get(), edges, "g");
  NX_CHECK(degrees.ok()) << degrees.status().ToString();
  b.degrees = *degrees;
  SharderOptions opt;
  opt.num_intervals = p;
  opt.build_transpose = transpose;
  auto manifest = RunSharder(b.env.get(), "g", b.degrees, opt);
  NX_CHECK(manifest.ok()) << manifest.status().ToString();
  b.manifest = *manifest;
  return b;
}

TEST(MakeEqualIntervalsTest, CoversAllVertices) {
  auto offsets = MakeEqualIntervals(100, 7);
  ASSERT_EQ(offsets.size(), 8u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), 100u);
  for (size_t i = 1; i < offsets.size(); ++i) {
    EXPECT_GE(offsets[i], offsets[i - 1]);
  }
}

TEST(MakeEqualIntervalsTest, BalancedSizes) {
  auto offsets = MakeEqualIntervals(1000, 16);
  for (size_t i = 1; i < offsets.size(); ++i) {
    const uint32_t size = offsets[i] - offsets[i - 1];
    EXPECT_GE(size, 1000u / 16);
    EXPECT_LE(size, 1000u / 16 + 1);
  }
}

TEST(SharderTest, ManifestShape) {
  EdgeList edges = testing::RandomGraph(200, 2000, 1);
  BuiltGraph b = Build(edges, 4);
  EXPECT_EQ(b.manifest.num_intervals, 4u);
  EXPECT_EQ(b.manifest.subshards.size(), 16u);
  EXPECT_EQ(b.manifest.subshards_transpose.size(), 16u);
  EXPECT_EQ(b.manifest.num_edges, edges.num_edges());
}

TEST(SharderTest, EveryEdgeInExactlyOneSubShard) {
  EdgeList edges = testing::RandomGraph(300, 3000, 2);
  BuiltGraph b = Build(edges, 5);
  uint64_t total = 0;
  for (const auto& meta : b.manifest.subshards) total += meta.num_edges;
  EXPECT_EQ(total, edges.num_edges());
  uint64_t total_t = 0;
  for (const auto& meta : b.manifest.subshards_transpose) {
    total_t += meta.num_edges;
  }
  EXPECT_EQ(total_t, edges.num_edges());
}

TEST(SharderTest, SubShardInvariants) {
  EdgeList edges = testing::RandomGraph(256, 4096, 3);
  BuiltGraph b = Build(edges, 4);
  auto store = GraphStore::Open(b.env.get(), "g");
  ASSERT_TRUE(store.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      auto ss = (*store)->LoadSubShard(i, j);
      ASSERT_TRUE(ss.ok()) << ss.status().ToString();
      // Destinations strictly ascending and within interval j.
      for (uint32_t g = 0; g < ss->num_dsts(); ++g) {
        if (g > 0) EXPECT_LT(ss->dsts[g - 1], ss->dsts[g]);
        EXPECT_GE(ss->dsts[g], b.manifest.interval_begin(j));
        EXPECT_LT(ss->dsts[g], b.manifest.interval_end(j));
        // Sources ascending within a destination group and within
        // interval i.
        for (uint32_t k = ss->offsets[g]; k < ss->offsets[g + 1]; ++k) {
          if (k > ss->offsets[g]) {
            EXPECT_LE(ss->srcs[k - 1], ss->srcs[k]);
          }
          EXPECT_GE(ss->srcs[k], b.manifest.interval_begin(i));
          EXPECT_LT(ss->srcs[k], b.manifest.interval_end(i));
        }
      }
      EXPECT_EQ(ss->offsets.size(), ss->dsts.size() + 1);
      if (!ss->dsts.empty()) {
        EXPECT_EQ(ss->offsets.back(), ss->srcs.size());
      }
    }
  }
}

TEST(SharderTest, TransposeIsExactReverse) {
  EdgeList edges = testing::RandomGraph(100, 800, 4);
  BuiltGraph b = Build(edges, 3);
  auto store = GraphStore::Open(b.env.get(), "g");
  ASSERT_TRUE(store.ok());
  std::multiset<std::pair<VertexId, VertexId>> forward, transposed;
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t j = 0; j < 3; ++j) {
      auto f = (*store)->LoadSubShard(i, j, false);
      auto t = (*store)->LoadSubShard(i, j, true);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE(t.ok());
      for (uint32_t g = 0; g < f->num_dsts(); ++g) {
        for (uint32_t k = f->offsets[g]; k < f->offsets[g + 1]; ++k) {
          forward.insert({f->srcs[k], f->dsts[g]});
        }
      }
      for (uint32_t g = 0; g < t->num_dsts(); ++g) {
        for (uint32_t k = t->offsets[g]; k < t->offsets[g + 1]; ++k) {
          transposed.insert({t->dsts[g], t->srcs[k]});
        }
      }
    }
  }
  EXPECT_EQ(forward, transposed);
}

TEST(SharderTest, DedupRemovesDuplicates) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(0, 1);
  edges.Add(1, 0);
  auto env = NewMemEnv();
  auto degrees = RunDegreer(env.get(), edges, "g");
  ASSERT_TRUE(degrees.ok());
  SharderOptions opt;
  opt.num_intervals = 1;
  opt.dedup = true;
  opt.build_transpose = false;
  auto manifest = RunSharder(env.get(), "g", *degrees, opt);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->subshards[0].num_edges, 2u);
}

TEST(SharderTest, ClampsIntervalsToVertexCount) {
  EdgeList edges;
  edges.Add(0, 1);
  edges.Add(1, 2);
  auto env = NewMemEnv();
  auto degrees = RunDegreer(env.get(), edges, "g");
  ASSERT_TRUE(degrees.ok());
  SharderOptions opt;
  opt.num_intervals = 100;  // only 3 vertices exist
  auto manifest = RunSharder(env.get(), "g", *degrees, opt);
  ASSERT_TRUE(manifest.ok());
  EXPECT_LE(manifest->num_intervals, 3u);
}

TEST(SharderTest, SmallBatchSizeStillCorrect) {
  EdgeList edges = testing::RandomGraph(64, 512, 8);
  auto env = NewMemEnv();
  auto degrees = RunDegreer(env.get(), edges, "g");
  ASSERT_TRUE(degrees.ok());
  SharderOptions opt;
  opt.num_intervals = 4;
  opt.batch_edges = 7;  // force many tiny streaming batches
  auto manifest = RunSharder(env.get(), "g", *degrees, opt);
  ASSERT_TRUE(manifest.ok());
  uint64_t total = 0;
  for (const auto& meta : manifest->subshards) total += meta.num_edges;
  EXPECT_EQ(total, edges.num_edges());
}

TEST(ManifestTest, EncodeDecodeRoundTrip) {
  EdgeList edges = testing::RandomGraph(128, 1024, 9);
  BuiltGraph b = Build(edges, 4);
  auto decoded = Manifest::Decode(b.manifest.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_vertices, b.manifest.num_vertices);
  EXPECT_EQ(decoded->num_edges, b.manifest.num_edges);
  EXPECT_EQ(decoded->interval_offsets, b.manifest.interval_offsets);
  EXPECT_EQ(decoded->subshards.size(), b.manifest.subshards.size());
  for (size_t k = 0; k < decoded->subshards.size(); ++k) {
    EXPECT_EQ(decoded->subshards[k].offset, b.manifest.subshards[k].offset);
    EXPECT_EQ(decoded->subshards[k].num_edges,
              b.manifest.subshards[k].num_edges);
  }
}

TEST(ManifestTest, DetectsCorruption) {
  EdgeList edges = testing::RandomGraph(64, 256, 10);
  BuiltGraph b = Build(edges, 2);
  std::string blob = b.manifest.Encode();
  blob[blob.size() / 2] ^= 0x01;
  auto decoded = Manifest::Decode(blob);
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(ManifestTest, VersionOneManifestStillDecodes) {
  // Hand-encode a version-1 manifest (no per-blob format byte): stores
  // written before NXS2 must keep opening, with every blob implied NXS1.
  Manifest m;
  m.num_vertices = 10;
  m.num_edges = 3;
  m.num_intervals = 1;
  m.weighted = false;
  m.has_transpose = false;
  m.interval_offsets = {0, 10};
  SubShardMeta meta;
  meta.offset = 0;
  meta.size = 100;
  meta.num_edges = 3;
  meta.num_dsts = 2;
  m.subshards = {meta};

  std::string out;
  EncodeFixed<uint32_t>(&out, kManifestMagic);
  EncodeFixed<uint32_t>(&out, 1);  // version 1
  EncodeFixed<uint64_t>(&out, m.num_vertices);
  EncodeFixed<uint64_t>(&out, m.num_edges);
  EncodeFixed<uint32_t>(&out, m.num_intervals);
  EncodeFixed<uint8_t>(&out, 0);  // weighted
  EncodeFixed<uint8_t>(&out, 0);  // has_transpose
  EncodeFixed<uint64_t>(&out, m.interval_offsets.size());
  for (VertexId v : m.interval_offsets) EncodeFixed<uint32_t>(&out, v);
  // Version-1 sub-shard table: no trailing format byte per entry.
  auto encode_table = [&out](const std::vector<SubShardMeta>& table) {
    EncodeFixed<uint64_t>(&out, table.size());
    for (const auto& t : table) {
      EncodeFixed<uint64_t>(&out, t.offset);
      EncodeFixed<uint64_t>(&out, t.size);
      EncodeFixed<uint64_t>(&out, t.num_edges);
      EncodeFixed<uint32_t>(&out, t.num_dsts);
    }
  };
  encode_table(m.subshards);
  encode_table({});
  EncodeFixed<uint32_t>(&out, crc32c::Value(out.data(), out.size()));

  auto decoded = Manifest::Decode(out);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->num_edges, 3u);
  ASSERT_EQ(decoded->subshards.size(), 1u);
  EXPECT_EQ(decoded->subshards[0].size, 100u);
  EXPECT_EQ(decoded->subshards[0].format, SubShardFormat::kNxs1);
}

TEST(ManifestTest, RecordsPerBlobFormatAndDecodedBytes) {
  EdgeList edges = testing::RandomGraph(128, 1024, 20);
  for (SubShardFormat f : {SubShardFormat::kNxs1, SubShardFormat::kNxs2}) {
    auto env = NewMemEnv();
    auto degrees = RunDegreer(env.get(), edges, "g");
    ASSERT_TRUE(degrees.ok());
    SharderOptions opt;
    opt.num_intervals = 4;
    opt.format = f;
    auto manifest = RunSharder(env.get(), "g", *degrees, opt);
    ASSERT_TRUE(manifest.ok());
    auto reread = ReadManifest(env.get(), "g");
    ASSERT_TRUE(reread.ok());
    uint64_t decoded_total = 0;
    for (const auto& meta : reread->subshards) {
      EXPECT_EQ(meta.format, f);
      // DecodedBytes is the exact in-memory footprint of the decoded blob.
      decoded_total += meta.DecodedBytes(reread->weighted);
    }
    auto store = GraphStore::Open(env.get(), "g");
    ASSERT_TRUE(store.ok());
    uint64_t memory_total = 0;
    for (uint32_t i = 0; i < 4; ++i) {
      for (uint32_t j = 0; j < 4; ++j) {
        auto ss = (*store)->LoadSubShard(i, j);
        ASSERT_TRUE(ss.ok());
        // Empty blobs included: DecodedBytes == MemoryBytes for every blob,
        // so the cache's accounting and the strategy's pin target agree
        // exactly.
        memory_total += ss->MemoryBytes();
      }
    }
    EXPECT_EQ(decoded_total, reread->TotalDecodedSubShardBytes(false));
    EXPECT_EQ(memory_total, decoded_total);
  }
}

TEST(SharderTest, Nxs2StoreIsSmallerAndLoadsIdentically) {
  // A clustered random graph (the id space is dense, like relabeled real
  // graphs): the NXS2 store must be materially smaller, and every sub-shard
  // must decode to exactly the same in-memory representation.
  EdgeList edges = testing::RandomGraph(400, 8000, 21);
  auto build = [&edges](SubShardFormat f) {
    auto env = NewMemEnv();
    auto degrees = RunDegreer(env.get(), edges, "g");
    NX_CHECK(degrees.ok());
    SharderOptions opt;
    opt.num_intervals = 4;
    opt.format = f;
    auto manifest = RunSharder(env.get(), "g", *degrees, opt);
    NX_CHECK(manifest.ok());
    return std::make_pair(std::move(env), *manifest);
  };
  auto [env1, m1] = build(SubShardFormat::kNxs1);
  auto [env2, m2] = build(SubShardFormat::kNxs2);

  auto size1 = env1->GetFileSize("g/subshards.nxs");
  auto size2 = env2->GetFileSize("g/subshards.nxs");
  ASSERT_TRUE(size1.ok());
  ASSERT_TRUE(size2.ok());
  EXPECT_LT(*size2 * 3, *size1 * 2) << "NXS2 " << *size2 << " vs NXS1 "
                                    << *size1;

  // Decoded representations are identical blob for blob.
  auto s1 = GraphStore::Open(env1.get(), "g");
  auto s2 = GraphStore::Open(env2.get(), "g");
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  for (uint32_t i = 0; i < 4; ++i) {
    for (uint32_t j = 0; j < 4; ++j) {
      for (bool transpose : {false, true}) {
        auto a = (*s1)->LoadSubShard(i, j, transpose);
        auto b = (*s2)->LoadSubShard(i, j, transpose);
        ASSERT_TRUE(a.ok());
        ASSERT_TRUE(b.ok());
        EXPECT_EQ(a->dsts, b->dsts);
        EXPECT_EQ(a->offsets, b->offsets);
        EXPECT_EQ(a->srcs, b->srcs);
        EXPECT_EQ(a->weights, b->weights);
      }
    }
  }
  // The decoded footprint is format-independent; the encoded sizes differ.
  EXPECT_EQ(m1.TotalDecodedSubShardBytes(false),
            m2.TotalDecodedSubShardBytes(false));
}

TEST(ManifestTest, IntervalOfFindsOwner) {
  EdgeList edges = testing::RandomGraph(100, 500, 11);
  BuiltGraph b = Build(edges, 4);
  for (uint32_t i = 0; i < b.manifest.num_intervals; ++i) {
    EXPECT_EQ(b.manifest.IntervalOf(b.manifest.interval_begin(i)), i);
    EXPECT_EQ(b.manifest.IntervalOf(b.manifest.interval_end(i) - 1), i);
  }
}

}  // namespace
}  // namespace nxgraph
