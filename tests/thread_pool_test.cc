#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "src/util/thread_pool.h"

namespace nxgraph {
namespace {

TEST(WaitGroupTest, WaitReturnsAfterAllDone) {
  WaitGroup wg;
  wg.Add(3);
  std::atomic<int> done{0};
  std::thread t([&] {
    for (int i = 0; i < 3; ++i) {
      done.fetch_add(1);
      wg.Done();
    }
  });
  wg.Wait();
  EXPECT_EQ(done.load(), 3);
  t.join();
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  WaitGroup wg;
  wg.Add(100);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      wg.Done();
    });
  }
  wg.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 0);
  int x = 0;
  pool.Submit([&] { x = 42; });
  EXPECT_EQ(x, 42);  // inline: done immediately
}

class ParallelForTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(GetParam());
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, hits.size(), 7, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(ParallelForTest, SumMatchesSequential) {
  ThreadPool pool(GetParam());
  std::atomic<long long> sum{0};
  pool.ParallelFor(10, 5000, 64, [&](size_t b, size_t e) {
    long long local = 0;
    for (size_t i = b; i < e; ++i) local += static_cast<long long>(i);
    sum.fetch_add(local);
  });
  long long expected = 0;
  for (size_t i = 10; i < 5000; ++i) expected += static_cast<long long>(i);
  EXPECT_EQ(sum.load(), expected);
}

TEST_P(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(GetParam());
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST_P(ParallelForTest, SingleElement) {
  ThreadPool pool(GetParam());
  std::atomic<int> calls{0};
  pool.ParallelFor(3, 4, 10, [&](size_t b, size_t e) {
    EXPECT_EQ(b, 3u);
    EXPECT_EQ(e, 4u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelForTest,
                         ::testing::Values(0, 1, 2, 4));

TEST(ThreadPoolTest, NestedSubmitDoesNotDeadlock) {
  ThreadPool pool(2);
  WaitGroup wg;
  wg.Add(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&] {
      // Tasks submitting more tasks is the callback-scheduler pattern.
      wg.Done();
    });
  }
  wg.Wait();
}

TEST(ThreadPoolTest, StressManySmallParallelFors) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> total{0};
    pool.ParallelFor(0, 257, 16, [&](size_t b, size_t e) {
      total.fetch_add(e - b);
    });
    ASSERT_EQ(total.load(), 257u);
  }
}

}  // namespace
}  // namespace nxgraph
