// Shared helpers for the NXgraph test suite.
#ifndef NXGRAPH_TESTS_TEST_UTIL_H_
#define NXGRAPH_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>

#include "src/core/nxgraph.h"
#include "src/util/random.h"

namespace nxgraph {
namespace testing {

/// Deterministic random multigraph in a (possibly sparse) index space.
inline EdgeList RandomGraph(uint64_t num_vertices, uint64_t num_edges,
                            uint64_t seed, bool weighted = false,
                            uint64_t index_stride = 1) {
  Xoshiro256 rng(seed);
  EdgeList edges;
  for (uint64_t e = 0; e < num_edges; ++e) {
    const VertexIndex src = rng.NextBounded(num_vertices) * index_stride;
    const VertexIndex dst = rng.NextBounded(num_vertices) * index_stride;
    if (weighted) {
      edges.AddWeighted(src, dst,
                        static_cast<float>(rng.NextDouble()) + 0.01f);
    } else {
      edges.Add(src, dst);
    }
  }
  return edges;
}

/// Builds a store for `edges` in a fresh MemEnv; returns {env, store}.
struct MemStore {
  std::unique_ptr<Env> env;
  std::shared_ptr<GraphStore> store;
};

inline MemStore BuildMemStore(const EdgeList& edges, uint32_t num_intervals,
                              bool transpose = true,
                              SubShardFormat format = DefaultSubShardFormat()) {
  MemStore ms;
  ms.env = NewMemEnv();
  BuildOptions options;
  options.num_intervals = num_intervals;
  options.build_transpose = transpose;
  options.subshard_format = format;
  options.env = ms.env.get();
  auto store = BuildGraphStore(edges, "g", options);
  NX_CHECK(store.ok()) << store.status().ToString();
  ms.store = *store;
  return ms;
}

}  // namespace testing
}  // namespace nxgraph

#endif  // NXGRAPH_TESTS_TEST_UTIL_H_
